// Scaling32: the Fig. 4 / §4.3 case study. A 32-simulation ensemble is
// queried for the halo count and halo mass of the largest halo over all
// timesteps; the workflow completes in five analysis steps and the staging
// footprint stays a tiny fraction of the source ensemble — the property
// that let the paper process 11.2 TB with an 18 GB database.
//
//	go run ./examples/scaling32
package main

import (
	"fmt"
	"log"
	"os"

	"infera/internal/core"
	"infera/internal/hacc"
	"infera/internal/llm"
)

const question = "Can you plot the change in mass of the largest friends-of-friends halos for all timesteps in all simulations? Provide me two plots using both fof_halo_count and fof_halo_mass as metrics for mass."

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "infera-scaling32-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	spec := hacc.Spec{
		Runs:             32,
		Steps:            hacc.StepRange(99, hacc.FinalStep, 53), // 11 snapshots
		HalosPerRun:      400,
		ParticlesPerStep: 12000, // particle bulk the loader must *skip*
		BoxSize:          256,
		Seed:             9,
	}
	log.Printf("generating 32-run ensemble ...")
	cat, err := hacc.Generate(dir, spec)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("source ensemble: %.1f MB in %d files", float64(cat.TotalBytes())/1e6, len(cat.Files))

	assistant, err := core.New(core.Config{
		EnsembleDir: dir,
		Model:       llm.NewSim(llm.SimConfig{Seed: 5, ColumnErrorRate: 1e-9, ToolErrorRate: 1e-9}),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer assistant.Close()

	ans, err := assistant.Ask(question)
	if err != nil {
		log.Fatalf("run failed: %v", err)
	}

	fmt.Printf("\nworkflow: %d analysis steps, completed without failure\n", len(ans.State.Plan.Steps))
	fmt.Println("\nlargest-halo metrics per simulation per timestep (head):")
	fmt.Print(ans.Answer.Head(8).String())

	fmt.Printf("\nsource ensemble:   %10.2f MB (32 simulations)\n", float64(ans.SourceBytes)/1e6)
	fmt.Printf("staging database:  %10.2f MB\n", float64(ans.DBBytes)/1e6)
	fmt.Printf("provenance trail:  %10.2f MB\n", float64(ans.ProvenanceBytes)/1e6)
	fmt.Printf("storage overhead:  %10.4f %% of source\n", 100*ans.StorageOverheadFraction())
	fmt.Printf("tokens used:       %10d\n", ans.State.Usage.Total())
	fmt.Printf("runtime:           %10s\n", ans.Duration.Round(1e6))
	plots := 0
	for _, e := range ans.Artifacts {
		if e.Kind == "plot" {
			plots++
		}
	}
	fmt.Printf("plots produced:    %10d (halo count + halo mass per simulation)\n", plots)
}
