// Quickstart: generate a small synthetic HACC-style ensemble, start the
// assistant, and ask one natural-language question.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"infera/internal/core"
	"infera/internal/hacc"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a small ensemble: 4 runs with varied sub-grid physics
	// parameters, 8 snapshots each.
	dir, err := os.MkdirTemp("", "infera-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cat, err := hacc.Generate(dir, hacc.DefaultSpec())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cat.Describe())

	// 2. Start the assistant (fully automated: no plan-approval prompts).
	assistant, err := core.New(core.Config{EnsembleDir: dir, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer assistant.Close()

	// 3. Ask a question. The multi-agent workflow plans, loads only the
	// needed columns, filters via SQL, analyzes in the sandbox, and records
	// full provenance.
	ans, err := assistant.Ask("Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?")
	if err != nil {
		log.Fatalf("run failed: %v", err)
	}

	fmt.Println("\nAnswer:")
	fmt.Print(ans.Answer.String())
	fmt.Printf("\nplan steps: %d | tokens: %d | storage overhead: %.2f MB (%.4f%% of source)\n",
		len(ans.State.Plan.Steps), ans.State.Usage.Total(),
		float64(ans.DBBytes+ans.ProvenanceBytes)/1e6, 100*ans.StorageOverheadFraction())
	fmt.Printf("provenance session: %s (%d artifacts)\n", ans.SessionID, len(ans.Artifacts))
}
