// Largest halos: the §4.5 "precise, unambiguous query" case study. The
// same question runs ten times; because it targets one entity and one
// characteristic, every run must produce identical data outputs (the paper
// observed exactly this determinism).
//
//	go run ./examples/largesthalos
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"
	"os"

	"infera/internal/core"
	"infera/internal/hacc"
	"infera/internal/llm"
)

const question = "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?"

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "infera-largest-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	spec := hacc.DefaultSpec()
	spec.Steps = []int{99, 250, 498, 624}
	if _, err := hacc.Generate(dir, spec); err != nil {
		log.Fatal(err)
	}

	hashes := map[string]int{}
	completed := 0
	for run := 0; run < 10; run++ {
		work, err := os.MkdirTemp("", "infera-largest-work-*")
		if err != nil {
			log.Fatal(err)
		}
		assistant, err := core.New(core.Config{
			EnsembleDir: dir,
			WorkDir:     work,
			Model:       llm.NewSim(llm.SimConfig{Seed: int64(run) + 1}),
		})
		if err != nil {
			log.Fatal(err)
		}
		ans, askErr := assistant.Ask(question)
		if askErr == nil && ans.Answer != nil {
			completed++
			var buf bytes.Buffer
			if err := ans.Answer.WriteCSV(&buf); err == nil {
				sum := sha256.Sum256(buf.Bytes())
				hashes[hex.EncodeToString(sum[:8])]++
			}
			if run == 0 {
				fmt.Println("top 20 halos (first run):")
				fmt.Print(ans.Answer.Head(5).String())
			}
		} else {
			log.Printf("run %d failed: %v", run, askErr)
		}
		assistant.Close()
		os.RemoveAll(work)
	}

	fmt.Printf("\n%d/10 runs completed; %d distinct data outputs", completed, len(hashes))
	if len(hashes) == 1 {
		fmt.Println(" — identical across all runs, as the paper reports for precise queries.")
	} else {
		fmt.Println(" — unexpected variability for a precise query!")
	}
}
