// SMHM: the Table 1 hard-analysis / hard-semantic question, end to end.
// The assistant joins galaxies to halos, fits the stellar-to-halo mass
// relation per seed mass, ranks by intrinsic scatter, and plots both the
// relation and scatter-vs-seed-mass. The synthetic physics builds in a
// threshold seed mass (~10^5.5 Msun/h) above which assembly efficiency
// saturates and an optimal seed mass (~10^5.75) minimizing scatter, so the
// answer is verifiable.
//
//	go run ./examples/smhm
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"infera/internal/core"
	"infera/internal/hacc"
	"infera/internal/llm"
)

const question = "At timestep 624, how does the slope and intrinsic scatter of the stellar-to-halo mass (SMHM) relation vary as a function of seed mass? Which seed mass values produce the tightest SMHM correlation, and is there a threshold seed mass that maximizes stellar-mass assembly efficiency?"

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "infera-smhm-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	// 8 runs spread the seed-mass axis well.
	spec := hacc.Spec{
		Runs:             8,
		Steps:            []int{350, 624},
		HalosPerRun:      250,
		ParticlesPerStep: 100,
		BoxSize:          256,
		Seed:             7,
	}
	cat, err := hacc.Generate(dir, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ensemble seed masses:")
	for _, r := range cat.Runs {
		fmt.Printf("  sim %d: Mseed = %.3g (log10 = %.2f)\n", r.Index, r.Params.MSeed, math.Log10(r.Params.MSeed))
	}

	assistant, err := core.New(core.Config{
		EnsembleDir: dir,
		Model:       llm.NewSim(llm.SimConfig{Seed: 3, ColumnErrorRate: 1e-9, ToolErrorRate: 1e-9}),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer assistant.Close()

	ans, err := assistant.Ask(question)
	if err != nil {
		log.Fatalf("run failed: %v", err)
	}
	fmt.Println("\nSMHM fits per seed mass (sorted by intrinsic scatter, tightest first):")
	fmt.Print(ans.Answer.String())

	tightest := ans.Answer.MustColumn("m_seed").FloatAt(0)
	fmt.Printf("\ntightest SMHM correlation at Mseed = %.3g (log10 = %.2f)\n", tightest, math.Log10(tightest))
	fmt.Printf("(model ground truth: scatter minimized near log10 Mseed = 5.75, efficiency saturates above 5.5)\n")
	fmt.Printf("\ntokens: %d | plan steps: %d | artifacts: %d\n",
		ans.State.Usage.Total(), len(ans.State.Plan.Steps), len(ans.Artifacts))
}
