package dataframe

import (
	"math"
	"testing"
)

func TestDescribe(t *testing.T) {
	f := MustFromColumns(
		NewInt("tag", []int64{1, 2, 3, 4}),
		NewFloat("mass", []float64{2, 4, 4, 6}),
		NewString("sim", []string{"a", "b", "a", "b"}),
	)
	d := f.Describe()
	if d.NumRows() != 2 { // string column excluded
		t.Fatalf("rows = %d", d.NumRows())
	}
	if d.MustColumn("column").S[1] != "mass" {
		t.Errorf("names = %v", d.MustColumn("column").S)
	}
	if got := d.MustColumn("mean").F[1]; got != 4 {
		t.Errorf("mass mean = %v", got)
	}
	if got := d.MustColumn("std").F[1]; math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Errorf("mass std = %v", got)
	}
	if d.MustColumn("min").F[0] != 1 || d.MustColumn("max").F[0] != 4 {
		t.Errorf("tag range = %v..%v", d.MustColumn("min").F[0], d.MustColumn("max").F[0])
	}
	if d.MustColumn("count").I[1] != 4 {
		t.Errorf("count = %v", d.MustColumn("count").I[1])
	}
}

func TestDescribeHandlesNaNAndEmpty(t *testing.T) {
	f := MustFromColumns(NewFloat("x", []float64{math.NaN(), 1, 3, math.Inf(1)}))
	d := f.Describe()
	if d.MustColumn("count").I[0] != 2 {
		t.Errorf("finite count = %v", d.MustColumn("count").I[0])
	}
	if d.MustColumn("mean").F[0] != 2 {
		t.Errorf("mean = %v", d.MustColumn("mean").F[0])
	}
	allNaN := MustFromColumns(NewFloat("y", []float64{math.NaN()}))
	dd := allNaN.Describe()
	if !math.IsNaN(dd.MustColumn("mean").F[0]) || dd.MustColumn("count").I[0] != 0 {
		t.Errorf("all-NaN describe = %v", dd)
	}
}
