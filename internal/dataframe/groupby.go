package dataframe

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// AggOp enumerates group-by aggregation operators.
type AggOp uint8

// Aggregation operators.
const (
	Sum AggOp = iota
	Mean
	Min
	Max
	Count
	Std   // population standard deviation
	First // first value in group order
	Median
)

// String returns the SQL-ish name of the operator.
func (op AggOp) String() string {
	switch op {
	case Sum:
		return "sum"
	case Mean:
		return "mean"
	case Min:
		return "min"
	case Max:
		return "max"
	case Count:
		return "count"
	case Std:
		return "std"
	case First:
		return "first"
	case Median:
		return "median"
	default:
		return fmt.Sprintf("AggOp(%d)", uint8(op))
	}
}

// ParseAggOp maps a name ("sum", "avg", "mean", ...) to an operator.
func ParseAggOp(name string) (AggOp, error) {
	switch strings.ToLower(name) {
	case "sum":
		return Sum, nil
	case "mean", "avg", "average":
		return Mean, nil
	case "min":
		return Min, nil
	case "max":
		return Max, nil
	case "count":
		return Count, nil
	case "std", "stddev":
		return Std, nil
	case "first":
		return First, nil
	case "median":
		return Median, nil
	default:
		return 0, fmt.Errorf("dataframe: unknown aggregate %q", name)
	}
}

// Agg describes one aggregation: apply Op to column Col, naming the result
// As (defaulting to "op_col").
type Agg struct {
	Col string
	Op  AggOp
	As  string
}

func (a Agg) outName() string {
	if a.As != "" {
		return a.As
	}
	return a.Op.String() + "_" + a.Col
}

// GroupBy groups rows by the exact values of the key columns and applies
// each aggregation within every group. Groups appear in order of first
// occurrence. Key columns are carried through with their first-row values.
func (f *Frame) GroupBy(keys []string, aggs []Agg) (*Frame, error) {
	keyCols := make([]*Column, len(keys))
	for i, k := range keys {
		c, err := f.Column(k)
		if err != nil {
			return nil, err
		}
		keyCols[i] = c
	}
	for _, a := range aggs {
		if a.Op != Count || a.Col != "" {
			if _, err := f.Column(a.Col); err != nil {
				return nil, err
			}
		}
	}

	groupOf := map[string]int{}
	var groups [][]int
	var sb strings.Builder
	for r := 0; r < f.NumRows(); r++ {
		sb.Reset()
		for _, c := range keyCols {
			sb.WriteString(c.StringAt(r))
			sb.WriteByte('\x1f')
		}
		k := sb.String()
		g, ok := groupOf[k]
		if !ok {
			g = len(groups)
			groupOf[k] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], r)
	}

	out := New()
	for i, kc := range keyCols {
		firsts := make([]int, len(groups))
		for g, rows := range groups {
			firsts[g] = rows[0]
		}
		col := kc.gather(firsts)
		col.Name = keys[i]
		if err := out.AddColumn(col); err != nil {
			return nil, err
		}
	}
	for _, a := range aggs {
		col, err := f.aggregate(a, groups)
		if err != nil {
			return nil, err
		}
		if err := out.AddColumn(col); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (f *Frame) aggregate(a Agg, groups [][]int) (*Column, error) {
	name := a.outName()
	if a.Op == Count {
		vals := make([]int64, len(groups))
		for g, rows := range groups {
			vals[g] = int64(len(rows))
		}
		return NewInt(name, vals), nil
	}
	src, err := f.Column(a.Col)
	if err != nil {
		return nil, err
	}
	if a.Op == First {
		firsts := make([]int, len(groups))
		for g, rows := range groups {
			firsts[g] = rows[0]
		}
		col := src.gather(firsts)
		col.Name = name
		return col, nil
	}
	vals := make([]float64, len(groups))
	for g, rows := range groups {
		vals[g] = reduce(src, rows, a.Op)
	}
	return NewFloat(name, vals), nil
}

func reduce(c *Column, rows []int, op AggOp) float64 {
	switch op {
	case Sum, Mean, Std:
		var sum, sumsq float64
		n := 0
		for _, r := range rows {
			v := c.FloatAt(r)
			if math.IsNaN(v) {
				continue
			}
			sum += v
			sumsq += v * v
			n++
		}
		if n == 0 {
			return math.NaN()
		}
		switch op {
		case Sum:
			return sum
		case Mean:
			return sum / float64(n)
		default:
			m := sum / float64(n)
			v := sumsq/float64(n) - m*m
			if v < 0 {
				v = 0
			}
			return math.Sqrt(v)
		}
	case Min, Max:
		best := math.NaN()
		for _, r := range rows {
			v := c.FloatAt(r)
			if math.IsNaN(v) {
				continue
			}
			if math.IsNaN(best) || (op == Min && v < best) || (op == Max && v > best) {
				best = v
			}
		}
		return best
	case Median:
		vals := make([]float64, 0, len(rows))
		for _, r := range rows {
			v := c.FloatAt(r)
			if !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return math.NaN()
		}
		sort.Float64s(vals)
		mid := len(vals) / 2
		if len(vals)%2 == 1 {
			return vals[mid]
		}
		return (vals[mid-1] + vals[mid]) / 2
	default:
		return math.NaN()
	}
}
