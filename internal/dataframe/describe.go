package dataframe

import "math"

// Describe returns per-numeric-column summary statistics (count of finite
// values, mean, population std, min, max) as a frame with one row per
// column — the quick-look record the documentation agent attaches to
// intermediate results.
func (f *Frame) Describe() *Frame {
	var names []string
	var counts []int64
	var means, stds, mins, maxs []float64
	for i := 0; i < f.NumCols(); i++ {
		c := f.ColumnAt(i)
		if c.Kind == String {
			continue
		}
		var sum, sumsq float64
		lo, hi := math.Inf(1), math.Inf(-1)
		n := 0
		for r := 0; r < c.Len(); r++ {
			v := c.FloatAt(r)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			sum += v
			sumsq += v * v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			n++
		}
		names = append(names, c.Name)
		counts = append(counts, int64(n))
		if n == 0 {
			means = append(means, math.NaN())
			stds = append(stds, math.NaN())
			mins = append(mins, math.NaN())
			maxs = append(maxs, math.NaN())
			continue
		}
		m := sum / float64(n)
		v := sumsq/float64(n) - m*m
		if v < 0 {
			v = 0
		}
		means = append(means, m)
		stds = append(stds, math.Sqrt(v))
		mins = append(mins, lo)
		maxs = append(maxs, hi)
	}
	return MustFromColumns(
		NewString("column", names),
		NewInt("count", counts),
		NewFloat("mean", means),
		NewFloat("std", stds),
		NewFloat("min", mins),
		NewFloat("max", maxs),
	)
}
