package dataframe

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Frame {
	return MustFromColumns(
		NewInt("fof_halo_tag", []int64{10, 11, 12, 13, 14}),
		NewFloat("fof_halo_mass", []float64{5.5, 3.5, 9.5, 1.5, 7.5}),
		NewString("sim", []string{"s0", "s1", "s0", "s1", "s0"}),
	)
}

func TestFromColumnsValidation(t *testing.T) {
	_, err := FromColumns(
		NewInt("a", []int64{1, 2}),
		NewInt("a", []int64{3, 4}),
	)
	if err == nil {
		t.Fatal("expected duplicate-name error")
	}
	_, err = FromColumns(
		NewInt("a", []int64{1, 2}),
		NewInt("b", []int64{3}),
	)
	if err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestColumnAccessors(t *testing.T) {
	f := sample()
	c := f.MustColumn("fof_halo_mass")
	if got := c.FloatAt(2); got != 9.5 {
		t.Errorf("FloatAt = %v, want 9.5", got)
	}
	if got := f.MustColumn("fof_halo_tag").IntAt(0); got != 10 {
		t.Errorf("IntAt = %v, want 10", got)
	}
	if got := f.MustColumn("sim").StringAt(1); got != "s1" {
		t.Errorf("StringAt = %v, want s1", got)
	}
	if got := f.MustColumn("fof_halo_tag").FloatAt(4); got != 14 {
		t.Errorf("int FloatAt = %v, want 14", got)
	}
}

func TestColumnErrorIsKeyErrorShaped(t *testing.T) {
	f := sample()
	_, err := f.Column("halo_mass")
	var ce *ColumnError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ColumnError, got %T", err)
	}
	if !strings.Contains(err.Error(), "KeyError") {
		t.Errorf("error %q should contain KeyError marker", err)
	}
	if !strings.Contains(err.Error(), "fof_halo_mass") {
		t.Errorf("error %q should list available columns", err)
	}
}

func TestSelectAndDrop(t *testing.T) {
	f := sample()
	sel, err := f.Select("sim", "fof_halo_mass")
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.Names(); !reflect.DeepEqual(got, []string{"sim", "fof_halo_mass"}) {
		t.Errorf("Select names = %v", got)
	}
	if _, err := f.Select("nope"); err == nil {
		t.Error("Select unknown column should fail")
	}
	d := f.Drop("sim", "missing")
	if d.Has("sim") || d.NumCols() != 2 {
		t.Errorf("Drop failed: %v", d.Names())
	}
}

func TestFilterHeadSlice(t *testing.T) {
	f := sample()
	mass := f.MustColumn("fof_halo_mass")
	big := f.Filter(func(i int) bool { return mass.F[i] > 4.0 })
	if big.NumRows() != 3 {
		t.Errorf("Filter rows = %d, want 3", big.NumRows())
	}
	if h := f.Head(2); h.NumRows() != 2 {
		t.Errorf("Head rows = %d", h.NumRows())
	}
	if h := f.Head(100); h.NumRows() != 5 {
		t.Errorf("Head overflow rows = %d", h.NumRows())
	}
	if s := f.Slice(1, 3); s.NumRows() != 2 || s.MustColumn("fof_halo_tag").I[0] != 11 {
		t.Errorf("Slice wrong: %v", s)
	}
}

func TestSortBy(t *testing.T) {
	f := sample()
	sorted, err := f.SortBy(SortKey{Col: "fof_halo_mass", Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	got := sorted.MustColumn("fof_halo_mass").F
	want := []float64{9.5, 7.5, 5.5, 3.5, 1.5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sorted = %v, want %v", got, want)
	}
	// Multi-key: sim asc then mass desc.
	sorted, err = f.SortBy(SortKey{Col: "sim"}, SortKey{Col: "fof_halo_mass", Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	if sims := sorted.MustColumn("sim").S; sims[0] != "s0" || sims[3] != "s1" {
		t.Errorf("multi-key sims = %v", sims)
	}
	if m := sorted.MustColumn("fof_halo_mass").F; m[0] != 9.5 || m[1] != 7.5 {
		t.Errorf("multi-key masses = %v", m)
	}
}

func TestSortNaNLast(t *testing.T) {
	f := MustFromColumns(NewFloat("x", []float64{3, math.NaN(), 1}))
	s, err := f.SortBy(SortKey{Col: "x"})
	if err != nil {
		t.Fatal(err)
	}
	got := s.MustColumn("x").F
	if got[0] != 1 || got[1] != 3 || !math.IsNaN(got[2]) {
		t.Errorf("NaN ordering = %v", got)
	}
}

func TestAppend(t *testing.T) {
	a := sample()
	b := sample()
	if err := a.Append(b); err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 10 {
		t.Errorf("rows after append = %d", a.NumRows())
	}
	bad := MustFromColumns(NewInt("x", []int64{1}))
	if err := a.Append(bad); err == nil {
		t.Error("append with schema mismatch should fail")
	}
}

func TestGroupBy(t *testing.T) {
	f := sample()
	g, err := f.GroupBy([]string{"sim"}, []Agg{
		{Col: "fof_halo_mass", Op: Mean, As: "mean_mass"},
		{Col: "fof_halo_mass", Op: Max},
		{Op: Count, As: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 2 {
		t.Fatalf("groups = %d, want 2", g.NumRows())
	}
	// s0 rows: masses 5.5, 9.5, 7.5 -> mean 7.5, max 9.5, count 3.
	if m := g.MustColumn("mean_mass").F[0]; m != 7.5 {
		t.Errorf("mean s0 = %v, want 7.5", m)
	}
	if m := g.MustColumn("max_fof_halo_mass").F[0]; m != 9.5 {
		t.Errorf("max s0 = %v, want 9.5", m)
	}
	if n := g.MustColumn("n").I[0]; n != 3 {
		t.Errorf("count s0 = %v, want 3", n)
	}
	if _, err := f.GroupBy([]string{"nope"}, nil); err == nil {
		t.Error("groupby unknown key should fail")
	}
}

func TestGroupByStdMedianFirst(t *testing.T) {
	f := MustFromColumns(
		NewString("g", []string{"a", "a", "a", "a"}),
		NewFloat("v", []float64{2, 4, 4, 6}),
	)
	g, err := f.GroupBy([]string{"g"}, []Agg{
		{Col: "v", Op: Std, As: "s"},
		{Col: "v", Op: Median, As: "med"},
		{Col: "v", Op: First, As: "f"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := g.MustColumn("s").F[0]; math.Abs(s-math.Sqrt(2)) > 1e-12 {
		t.Errorf("std = %v, want sqrt(2)", s)
	}
	if med := g.MustColumn("med").F[0]; med != 4 {
		t.Errorf("median = %v, want 4", med)
	}
	if fv := g.MustColumn("f").F[0]; fv != 2 {
		t.Errorf("first = %v, want 2", fv)
	}
}

func TestParseAggOp(t *testing.T) {
	for name, want := range map[string]AggOp{
		"sum": Sum, "AVG": Mean, "mean": Mean, "min": Min, "max": Max,
		"count": Count, "std": Std, "first": First, "median": Median,
	} {
		got, err := ParseAggOp(name)
		if err != nil || got != want {
			t.Errorf("ParseAggOp(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseAggOp("mode"); err == nil {
		t.Error("unknown agg should fail")
	}
}

func TestJoinInner(t *testing.T) {
	halos := MustFromColumns(
		NewInt("fof_halo_tag", []int64{1, 2, 3}),
		NewFloat("fof_halo_mass", []float64{100, 200, 300}),
	)
	gals := MustFromColumns(
		NewInt("fof_halo_tag", []int64{2, 2, 3, 9}),
		NewFloat("gal_stellar_mass", []float64{1, 2, 3, 4}),
	)
	j, err := Join(halos, gals, "fof_halo_tag", Inner)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 3 {
		t.Fatalf("inner join rows = %d, want 3", j.NumRows())
	}
	if m := j.MustColumn("fof_halo_mass").F; m[0] != 200 || m[1] != 200 || m[2] != 300 {
		t.Errorf("join masses = %v", m)
	}
}

func TestJoinLeftAndCollision(t *testing.T) {
	l := MustFromColumns(
		NewInt("k", []int64{1, 2}),
		NewFloat("v", []float64{10, 20}),
	)
	r := MustFromColumns(
		NewInt("k", []int64{2}),
		NewFloat("v", []float64{99}),
	)
	j, err := Join(l, r, "k", Left)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 2 {
		t.Fatalf("left join rows = %d", j.NumRows())
	}
	vr := j.MustColumn("v_right").F
	if !math.IsNaN(vr[0]) || vr[1] != 99 {
		t.Errorf("v_right = %v", vr)
	}
	if _, err := Join(l, MustFromColumns(NewString("k", []string{"x"})), "k", Inner); err == nil {
		t.Error("kind-mismatched join key should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f := sample()
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(f, back) {
		t.Errorf("round trip mismatch:\n%v\nvs\n%v", f, back)
	}
}

func TestReadCSVTypeInference(t *testing.T) {
	in := "a,b,c\n1,1.5,x\n2,2.5,y\n"
	f, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.MustColumn("a").Kind != Int || f.MustColumn("b").Kind != Float || f.MustColumn("c").Kind != String {
		t.Errorf("kinds = %v %v %v", f.MustColumn("a").Kind, f.MustColumn("b").Kind, f.MustColumn("c").Kind)
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty csv should fail")
	}
}

func TestRenameAndClone(t *testing.T) {
	f := sample()
	r, err := f.Rename("sim", "simulation")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Has("simulation") || r.Has("sim") {
		t.Errorf("rename names = %v", r.Names())
	}
	if !f.Has("sim") {
		t.Error("rename mutated original")
	}
	c := f.Clone()
	c.MustColumn("fof_halo_mass").F[0] = -1
	if f.MustColumn("fof_halo_mass").F[0] == -1 {
		t.Error("clone shares storage")
	}
}

func TestStringRendering(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "fof_halo_tag") || !strings.Contains(s, "s1") {
		t.Errorf("String() = %q", s)
	}
	big := MustFromColumns(NewInt("x", make([]int64, 50)))
	if !strings.Contains(big.String(), "50 rows total") {
		t.Error("String() should note truncation")
	}
}

// randomFrame builds a deterministic pseudo-random frame for property tests.
func randomFrame(rng *rand.Rand, rows int) *Frame {
	fv := make([]float64, rows)
	iv := make([]int64, rows)
	sv := make([]string, rows)
	for i := 0; i < rows; i++ {
		fv[i] = rng.NormFloat64() * 100
		iv[i] = rng.Int63n(1000)
		sv[i] = string(rune('a' + rng.Intn(5)))
	}
	return MustFromColumns(NewFloat("f", fv), NewInt("i", iv), NewString("s", sv))
}

func TestQuickCSVRoundTrip(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomFrame(rng, int(n%64)+1)
		var buf bytes.Buffer
		if err := f.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		// Type inference may narrow float column to int when all values
		// happen to be integral; compare cell-by-cell as floats/strings.
		if back.NumRows() != f.NumRows() || back.NumCols() != f.NumCols() {
			return false
		}
		for j := 0; j < f.NumCols(); j++ {
			a, b := f.ColumnAt(j), back.ColumnAt(j)
			for r := 0; r < f.NumRows(); r++ {
				if a.StringAt(r) != b.StringAt(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickSortIsPermutationAndOrdered(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomFrame(rng, int(n%64)+1)
		s, err := f.SortBy(SortKey{Col: "f"})
		if err != nil {
			return false
		}
		got := s.MustColumn("f").F
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		// Same multiset: compare sums (floats are random; exact sum works
		// since gather copies bit-identical values and addition order is
		// the only variance — compare sorted copies instead).
		want := append([]float64(nil), f.MustColumn("f").F...)
		have := append([]float64(nil), got...)
		sortFloats(want)
		sortFloats(have)
		return reflect.DeepEqual(want, have)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestQuickGroupCountsSumToRows(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomFrame(rng, int(n%64)+1)
		g, err := f.GroupBy([]string{"s"}, []Agg{{Op: Count, As: "n"}})
		if err != nil {
			return false
		}
		var total int64
		for _, c := range g.MustColumn("n").I {
			total += c
		}
		return total == int64(f.NumRows())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcat(t *testing.T) {
	mk := func(base int64) *Frame {
		return MustFromColumns(
			NewInt("i", []int64{base, base + 1}),
			NewFloat("f", []float64{float64(base), float64(base) + 0.5}),
			NewString("s", []string{"a", "b"}),
		)
	}
	a, b, c := mk(0), mk(10), mk(20)
	out, err := Concat(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 6 || out.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", out.NumRows(), out.NumCols())
	}
	wantI := []int64{0, 1, 10, 11, 20, 21}
	for r, w := range wantI {
		if got := out.MustColumn("i").I[r]; got != w {
			t.Fatalf("row %d: got %d want %d", r, got, w)
		}
	}
	// Inputs are untouched and not aliased: mutating the output must not
	// reach the sources.
	out.MustColumn("i").I[0] = 999
	if a.MustColumn("i").I[0] != 0 {
		t.Fatal("Concat aliased an input vector")
	}
	if a.NumRows() != 2 || b.NumRows() != 2 {
		t.Fatal("Concat mutated an input")
	}

	// Empty and single-frame cases.
	empty, err := Concat()
	if err != nil || empty.NumRows() != 0 || empty.NumCols() != 0 {
		t.Fatalf("Concat() = %v %v", empty, err)
	}
	one, err := Concat(a)
	if err != nil || one.NumRows() != 2 {
		t.Fatalf("Concat(a) = %v %v", one, err)
	}

	// Schema mismatches fail.
	if _, err := Concat(a, MustFromColumns(NewInt("x", []int64{1}))); err == nil {
		t.Fatal("want column-count mismatch error")
	}
	bad := MustFromColumns(
		NewInt("i", []int64{1}),
		NewInt("f", []int64{1}), // kind differs
		NewString("s", []string{"a"}),
	)
	if _, err := Concat(a, bad); err == nil {
		t.Fatal("want kind mismatch error")
	}
}
