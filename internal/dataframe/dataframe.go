// Package dataframe implements a typed, columnar, in-memory table.
//
// It is the unit of data exchange across InferA: the data-loading agent
// materializes gio column selections into frames, the SQL engine returns
// frames, the analysis DSL operates on frames, and the provenance store
// serializes frames to CSV artifacts. The design mirrors a small subset of
// pandas: named, homogeneously typed columns of equal length with
// filter/select/derive/sort/group-by/join verbs.
package dataframe

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Kind enumerates the supported column element types.
type Kind uint8

// Column element kinds.
const (
	Float  Kind = iota // float64
	Int                // int64
	String             // string
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Int:
		return "int"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Column is a named, homogeneously typed vector. Exactly one of F, I, S is
// populated, according to Kind.
type Column struct {
	Name string
	Kind Kind
	F    []float64
	I    []int64
	S    []string
	// shared marks the backing vector as aliased beyond this frame — by the
	// staging cache, a resident sqldb table, or a zero-copy Concat. Shared
	// vectors are immutable: in-place growth (Frame.Append) copies first
	// (copy-on-write), so every alias keeps seeing the value it was handed.
	// The flag must be set before the column is published to concurrent
	// readers; it is copied along with the struct by shell-building verbs.
	shared bool
}

// NewFloat returns a float column over vals (not copied).
func NewFloat(name string, vals []float64) *Column {
	return &Column{Name: name, Kind: Float, F: vals}
}

// NewInt returns an int column over vals (not copied).
func NewInt(name string, vals []int64) *Column {
	return &Column{Name: name, Kind: Int, I: vals}
}

// NewString returns a string column over vals (not copied).
func NewString(name string, vals []string) *Column {
	return &Column{Name: name, Kind: String, S: vals}
}

// MarkShared flags the column's backing vector as aliased by another
// holder (cache entry, resident table, concatenated frame). Mutating verbs
// copy-on-write instead of growing it in place. Returns c for chaining.
//
// The flag write is skipped when already set: a column published to many
// goroutines (e.g. a staging-cache vector) is marked before publication,
// so concurrent re-marks stay read-only and race-free. Only
// single-goroutine-owned columns ever transition the flag.
func (c *Column) MarkShared() *Column {
	if !c.shared {
		c.shared = true
	}
	return c
}

// IsShared reports whether the backing vector is marked shared.
func (c *Column) IsShared() bool { return c.shared }

// Len returns the number of elements in the column.
func (c *Column) Len() int {
	switch c.Kind {
	case Float:
		return len(c.F)
	case Int:
		return len(c.I)
	default:
		return len(c.S)
	}
}

// Value returns element i as an any (float64, int64 or string).
func (c *Column) Value(i int) any {
	switch c.Kind {
	case Float:
		return c.F[i]
	case Int:
		return c.I[i]
	default:
		return c.S[i]
	}
}

// FloatAt returns element i coerced to float64. String elements yield NaN.
func (c *Column) FloatAt(i int) float64 {
	switch c.Kind {
	case Float:
		return c.F[i]
	case Int:
		return float64(c.I[i])
	default:
		if v, err := strconv.ParseFloat(c.S[i], 64); err == nil {
			return v
		}
		return math.NaN()
	}
}

// IntAt returns element i coerced to int64 (floats truncate; strings parse
// or yield 0).
func (c *Column) IntAt(i int) int64 {
	switch c.Kind {
	case Float:
		return int64(c.F[i])
	case Int:
		return c.I[i]
	default:
		v, _ := strconv.ParseInt(c.S[i], 10, 64)
		return v
	}
}

// StringAt returns element i formatted as a string.
func (c *Column) StringAt(i int) string {
	switch c.Kind {
	case Float:
		return strconv.FormatFloat(c.F[i], 'g', -1, 64)
	case Int:
		return strconv.FormatInt(c.I[i], 10)
	default:
		return c.S[i]
	}
}

// Floats returns the column as a []float64, converting if necessary.
// For Float columns the backing slice is returned without copying.
func (c *Column) Floats() []float64 {
	if c.Kind == Float {
		return c.F
	}
	out := make([]float64, c.Len())
	for i := range out {
		out[i] = c.FloatAt(i)
	}
	return out
}

// Clone returns a deep copy of the column.
func (c *Column) Clone() *Column {
	cp := &Column{Name: c.Name, Kind: c.Kind}
	switch c.Kind {
	case Float:
		cp.F = append([]float64(nil), c.F...)
	case Int:
		cp.I = append([]int64(nil), c.I...)
	default:
		cp.S = append([]string(nil), c.S...)
	}
	return cp
}

// gather returns a new column holding the elements at idx, in order.
func (c *Column) gather(idx []int) *Column {
	out := &Column{Name: c.Name, Kind: c.Kind}
	switch c.Kind {
	case Float:
		out.F = make([]float64, len(idx))
		gatherInto(out.F, c.F, idx)
	case Int:
		out.I = make([]int64, len(idx))
		gatherInto(out.I, c.I, idx)
	default:
		out.S = make([]string, len(idx))
		gatherInto(out.S, c.S, idx)
	}
	return out
}

// gatherInto copies src[idx[j]] into dst[j] for every j, batching runs of
// consecutive indices into single copy calls. Selection vectors produced by
// the SQL engine are mostly long ascending runs (whole blocks surviving a
// filter, Head/Slice windows), where bulk copy beats element-wise moves.
func gatherInto[T any](dst, src []T, idx []int) {
	j := 0
	for j < len(idx) {
		start := idx[j]
		k := j + 1
		for k < len(idx) && idx[k] == idx[k-1]+1 {
			k++
		}
		copy(dst[j:k], src[start:start+(k-j)])
		j = k
	}
}

// Frame is an ordered collection of equal-length columns with unique names.
// The zero value is an empty frame ready for AddColumn.
type Frame struct {
	cols  []*Column
	index map[string]int
}

// New returns an empty frame.
func New() *Frame { return &Frame{index: map[string]int{}} }

// FromColumns builds a frame from cols, validating unique names and equal
// lengths.
func FromColumns(cols ...*Column) (*Frame, error) {
	f := New()
	for _, c := range cols {
		if err := f.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// MustFromColumns is FromColumns that panics on error; intended for tests
// and literals with statically known shape.
func MustFromColumns(cols ...*Column) *Frame {
	f, err := FromColumns(cols...)
	if err != nil {
		panic(err)
	}
	return f
}

// AddColumn appends c to the frame. It fails if the name already exists or
// the length disagrees with existing columns.
func (f *Frame) AddColumn(c *Column) error {
	if f.index == nil {
		f.index = map[string]int{}
	}
	if _, dup := f.index[c.Name]; dup {
		return fmt.Errorf("dataframe: duplicate column %q", c.Name)
	}
	if len(f.cols) > 0 && c.Len() != f.NumRows() {
		return fmt.Errorf("dataframe: column %q has %d rows, frame has %d", c.Name, c.Len(), f.NumRows())
	}
	f.index[c.Name] = len(f.cols)
	f.cols = append(f.cols, c)
	return nil
}

// NumRows returns the row count (0 for an empty frame).
func (f *Frame) NumRows() int {
	if len(f.cols) == 0 {
		return 0
	}
	return f.cols[0].Len()
}

// NumCols returns the column count.
func (f *Frame) NumCols() int { return len(f.cols) }

// Names returns the column names in order.
func (f *Frame) Names() []string {
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.Name
	}
	return out
}

// Has reports whether a column named name exists.
func (f *Frame) Has(name string) bool {
	_, ok := f.index[name]
	return ok
}

// Column returns the column named name.
func (f *Frame) Column(name string) (*Column, error) {
	i, ok := f.index[name]
	if !ok {
		return nil, &ColumnError{Name: name, Available: f.Names()}
	}
	return f.cols[i], nil
}

// MustColumn is Column that panics if the column is missing.
func (f *Frame) MustColumn(name string) *Column {
	c, err := f.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// ColumnAt returns the i'th column.
func (f *Frame) ColumnAt(i int) *Column { return f.cols[i] }

// ColumnError reports a reference to a nonexistent column; its message is
// deliberately Python-KeyError-like because the QA agent parses it to guide
// code repair.
type ColumnError struct {
	Name      string
	Available []string
}

func (e *ColumnError) Error() string {
	return fmt.Sprintf("KeyError: column %q not found (available: %v)", e.Name, e.Available)
}

// Select returns a new frame with only the named columns, in the given
// order. Columns are shared, not copied.
func (f *Frame) Select(names ...string) (*Frame, error) {
	out := New()
	for _, n := range names {
		c, err := f.Column(n)
		if err != nil {
			return nil, err
		}
		if err := out.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Drop returns a new frame without the named columns. Unknown names are
// ignored.
func (f *Frame) Drop(names ...string) *Frame {
	dropped := map[string]bool{}
	for _, n := range names {
		dropped[n] = true
	}
	out := New()
	for _, c := range f.cols {
		if !dropped[c.Name] {
			_ = out.AddColumn(c)
		}
	}
	return out
}

// Rename returns a new frame with column old renamed to new; column data is
// shared.
func (f *Frame) Rename(old, new string) (*Frame, error) {
	c, err := f.Column(old)
	if err != nil {
		return nil, err
	}
	out := New()
	for _, col := range f.cols {
		use := col
		if col == c {
			cc := *col
			cc.Name = new
			use = &cc
		}
		if err := out.AddColumn(use); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	out := New()
	for _, c := range f.cols {
		_ = out.AddColumn(c.Clone())
	}
	return out
}

// Shallow returns a fresh frame shell sharing every column of f. Callers
// may add or drop columns on the shell without affecting f; the shared
// column data itself must be treated as immutable (see MarkShared).
func (f *Frame) Shallow() *Frame {
	out := New()
	for _, c := range f.cols {
		_ = out.AddColumn(c)
	}
	return out
}

// MarkShared flags every column of f as shared (see Column.MarkShared) and
// returns f — used when a frame is published as a long-lived alias, e.g. a
// resident database table.
func (f *Frame) MarkShared() *Frame {
	for _, c := range f.cols {
		c.MarkShared()
	}
	return f
}

// Gather returns a new frame containing the rows at idx, in order.
func (f *Frame) Gather(idx []int) *Frame {
	out := New()
	for _, c := range f.cols {
		_ = out.AddColumn(c.gather(idx))
	}
	return out
}

// Filter returns the rows for which pred returns true.
func (f *Frame) Filter(pred func(row int) bool) *Frame {
	var idx []int
	for i := 0; i < f.NumRows(); i++ {
		if pred(i) {
			idx = append(idx, i)
		}
	}
	return f.Gather(idx)
}

// Head returns the first n rows (all rows if n exceeds NumRows).
func (f *Frame) Head(n int) *Frame {
	if n > f.NumRows() {
		n = f.NumRows()
	}
	if n < 0 {
		n = 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return f.Gather(idx)
}

// Slice returns rows [lo, hi).
func (f *Frame) Slice(lo, hi int) *Frame {
	if lo < 0 {
		lo = 0
	}
	if hi > f.NumRows() {
		hi = f.NumRows()
	}
	if hi < lo {
		hi = lo
	}
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	return f.Gather(idx)
}

// SortKey names a column and direction for SortBy.
type SortKey struct {
	Col  string
	Desc bool
}

// SortBy returns a new frame stably sorted by the given keys.
func (f *Frame) SortBy(keys ...SortKey) (*Frame, error) {
	cols := make([]*Column, len(keys))
	for i, k := range keys {
		c, err := f.Column(k.Col)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	idx := make([]int, f.NumRows())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		for j, c := range cols {
			cmp := compareCell(c, ia, ib)
			if keys[j].Desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return f.Gather(idx), nil
}

func compareCell(c *Column, i, j int) int {
	switch c.Kind {
	case Float:
		a, b := c.F[i], c.F[j]
		// NaN sorts last in ascending order.
		switch {
		case math.IsNaN(a) && math.IsNaN(b):
			return 0
		case math.IsNaN(a):
			return 1
		case math.IsNaN(b):
			return -1
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case Int:
		a, b := c.I[i], c.I[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	default:
		a, b := c.S[i], c.S[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
}

// Append concatenates other below f. Schemas (names, order, kinds) must
// match exactly. Columns marked shared are not grown in place: the frame
// re-points at a freshly copied vector (copy-on-write), so aliases holding
// the shared vector — cache entries, resident tables, sibling shells —
// keep seeing the pre-append data.
func (f *Frame) Append(other *Frame) error {
	if f.NumCols() != other.NumCols() {
		return fmt.Errorf("dataframe: append schema mismatch: %d vs %d columns", f.NumCols(), other.NumCols())
	}
	for i, c := range f.cols {
		oc := other.cols[i]
		if c.Name != oc.Name || c.Kind != oc.Kind {
			return fmt.Errorf("dataframe: append schema mismatch at column %d: %s/%s vs %s/%s",
				i, c.Name, c.Kind, oc.Name, oc.Kind)
		}
	}
	for i, c := range f.cols {
		oc := other.cols[i]
		if c.shared {
			// Copy-on-write: the Column object itself may be aliased by other
			// frame shells, so the copy replaces this frame's pointer rather
			// than mutating the shared object.
			c = c.Clone()
			f.cols[i] = c
		}
		switch c.Kind {
		case Float:
			c.F = append(c.F, oc.F...)
		case Int:
			c.I = append(c.I, oc.I...)
		default:
			c.S = append(c.S, oc.S...)
		}
	}
	return nil
}

// Concat returns a new frame holding the rows of all frames in order.
// Schemas must match (same column names and kinds, same order). Unlike
// chained Append calls, Concat allocates each destination vector exactly
// once, so concatenating k frames costs one copy of the data instead of
// O(k) re-copies.
//
// Concatenating a single frame is zero-copy: the result shares the input's
// column vectors, and both sides are marked shared so any later in-place
// growth copies first (copy-on-write). The multi-frame path never aliases
// or mutates its inputs, which makes Concat safe over frames sharing
// immutable cached column vectors.
func Concat(frames ...*Frame) (*Frame, error) {
	if len(frames) == 0 {
		return New(), nil
	}
	if len(frames) == 1 {
		// Zero-copy fast path: a fresh shell over the same vectors. Marking
		// the columns shared makes growth on either alias copy-on-write.
		out := New()
		src := frames[0]
		for i := 0; i < src.NumCols(); i++ {
			if err := out.AddColumn(src.ColumnAt(i).MarkShared()); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	first := frames[0]
	total := 0
	for fi, f := range frames {
		if f.NumCols() != first.NumCols() {
			return nil, fmt.Errorf("dataframe: concat schema mismatch: frame %d has %d columns, want %d", fi, f.NumCols(), first.NumCols())
		}
		for i, c := range first.cols {
			oc := f.cols[i]
			if c.Name != oc.Name || c.Kind != oc.Kind {
				return nil, fmt.Errorf("dataframe: concat schema mismatch at frame %d column %d: %s/%s vs %s/%s",
					fi, i, oc.Name, oc.Kind, c.Name, c.Kind)
			}
		}
		total += f.NumRows()
	}
	out := New()
	for i, c := range first.cols {
		var merged *Column
		switch c.Kind {
		case Float:
			vals := make([]float64, 0, total)
			for _, f := range frames {
				vals = append(vals, f.cols[i].F...)
			}
			merged = NewFloat(c.Name, vals)
		case Int:
			vals := make([]int64, 0, total)
			for _, f := range frames {
				vals = append(vals, f.cols[i].I...)
			}
			merged = NewInt(c.Name, vals)
		default:
			vals := make([]string, 0, total)
			for _, f := range frames {
				vals = append(vals, f.cols[i].S...)
			}
			merged = NewString(c.Name, vals)
		}
		if err := out.AddColumn(merged); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Equal reports whether a and b have identical schemas and cell values.
// Float cells compare with exact equality except NaN==NaN.
func Equal(a, b *Frame) bool {
	if a.NumCols() != b.NumCols() || a.NumRows() != b.NumRows() {
		return false
	}
	for i := range a.cols {
		ca, cb := a.cols[i], b.cols[i]
		if ca.Name != cb.Name || ca.Kind != cb.Kind {
			return false
		}
		for r := 0; r < ca.Len(); r++ {
			switch ca.Kind {
			case Float:
				x, y := ca.F[r], cb.F[r]
				if x != y && !(math.IsNaN(x) && math.IsNaN(y)) {
					return false
				}
			case Int:
				if ca.I[r] != cb.I[r] {
					return false
				}
			default:
				if ca.S[r] != cb.S[r] {
					return false
				}
			}
		}
	}
	return true
}

// String renders the frame as an aligned text table (at most 20 rows),
// suitable for logs and the documentation agent.
func (f *Frame) String() string {
	const maxRows = 20
	n := f.NumRows()
	shown := n
	if shown > maxRows {
		shown = maxRows
	}
	widths := make([]int, f.NumCols())
	cells := make([][]string, shown+1)
	cells[0] = f.Names()
	for j, name := range cells[0] {
		widths[j] = len(name)
	}
	for r := 0; r < shown; r++ {
		row := make([]string, f.NumCols())
		for j, c := range f.cols {
			s := c.StringAt(r)
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
			row[j] = s
		}
		cells[r+1] = row
	}
	var out []byte
	for _, row := range cells {
		for j, s := range row {
			if j > 0 {
				out = append(out, ' ', ' ')
			}
			out = append(out, []byte(fmt.Sprintf("%-*s", widths[j], s))...)
		}
		out = append(out, '\n')
	}
	if n > shown {
		out = append(out, []byte(fmt.Sprintf("... (%d rows total)\n", n))...)
	}
	return string(out)
}
