package dataframe

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the frame as RFC-4180 CSV with a header row. It is the
// on-disk artifact format used by the provenance store (§4.2.1 of the
// paper: "systematically recording all intermediate CSV files").
func (f *Frame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.Names()); err != nil {
		return err
	}
	row := make([]string, f.NumCols())
	for r := 0; r < f.NumRows(); r++ {
		for j, c := range f.cols {
			row[j] = c.StringAt(r)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a CSV with a header row, inferring each column's kind:
// a column is Int if every cell parses as an integer, else Float if every
// cell parses as a float, else String. Empty input yields an error.
func ReadCSV(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataframe: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataframe: read csv: empty input")
	}
	header := records[0]
	rows := records[1:]
	for i, rec := range rows {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataframe: read csv: row %d has %d fields, header has %d", i+1, len(rec), len(header))
		}
	}

	out := New()
	for j, name := range header {
		isInt, isFloat := true, true
		for _, rec := range rows {
			cell := rec[j]
			if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
				isInt = false
			}
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				isFloat = false
			}
			if !isInt && !isFloat {
				break
			}
		}
		var col *Column
		switch {
		case isInt:
			vals := make([]int64, len(rows))
			for i, rec := range rows {
				vals[i], _ = strconv.ParseInt(rec[j], 10, 64)
			}
			col = NewInt(name, vals)
		case isFloat:
			vals := make([]float64, len(rows))
			for i, rec := range rows {
				vals[i], _ = strconv.ParseFloat(rec[j], 64)
			}
			col = NewFloat(name, vals)
		default:
			vals := make([]string, len(rows))
			for i, rec := range rows {
				vals[i] = rec[j]
			}
			col = NewString(name, vals)
		}
		if err := out.AddColumn(col); err != nil {
			return nil, err
		}
	}
	return out, nil
}
