package dataframe

import (
	"math"
	"testing"
)

func TestComputeStats(t *testing.T) {
	fc := NewFloat("f", []float64{3.5, math.NaN(), -2, 7, math.NaN()})
	s := ComputeStats(fc)
	if !s.Valid || s.Min != -2 || s.Max != 7 || s.NaNs != 2 || s.N != 5 {
		t.Errorf("float stats = %+v", s)
	}

	ic := NewInt("i", []int64{5, -9, 12})
	s = ComputeStats(ic)
	if !s.Valid || s.Min != -9 || s.Max != 12 || s.NaNs != 0 || s.N != 3 {
		t.Errorf("int stats = %+v", s)
	}

	sc := NewString("s", []string{"a", "b"})
	if s = ComputeStats(sc); s.Valid {
		t.Errorf("string stats should be invalid, got %+v", s)
	}

	// Empty and all-NaN columns keep the inverted sentinel range, which the
	// pruner relies on to classify them as matching nothing numeric.
	s = ComputeStats(NewFloat("e", nil))
	if !s.Valid || !math.IsInf(s.Min, 1) || !math.IsInf(s.Max, -1) || s.N != 0 {
		t.Errorf("empty stats = %+v", s)
	}
	s = ComputeStats(NewFloat("n", []float64{math.NaN(), math.NaN()}))
	if !s.Valid || !math.IsInf(s.Min, 1) || !math.IsInf(s.Max, -1) || s.NaNs != 2 {
		t.Errorf("all-NaN stats = %+v", s)
	}
}

// TestGatherRuns covers the run-batched gather fast path: consecutive
// index runs (the common shape of selection vectors) must copy correctly
// alongside scattered and repeated indices.
func TestGatherRuns(t *testing.T) {
	f := MustFromColumns(
		NewInt("i", []int64{10, 11, 12, 13, 14, 15, 16, 17}),
		NewFloat("f", []float64{0, 1, 2, 3, 4, 5, 6, 7}),
		NewString("s", []string{"a", "b", "c", "d", "e", "f", "g", "h"}),
	)
	for _, tc := range []struct {
		name string
		idx  []int
		want []int64
	}{
		{"full run", []int{0, 1, 2, 3, 4, 5, 6, 7}, []int64{10, 11, 12, 13, 14, 15, 16, 17}},
		{"two runs", []int{0, 1, 2, 5, 6, 7}, []int64{10, 11, 12, 15, 16, 17}},
		{"scattered", []int{7, 0, 3}, []int64{17, 10, 13}},
		{"repeats", []int{2, 2, 3, 3}, []int64{12, 12, 13, 13}},
		{"descending", []int{3, 2, 1}, []int64{13, 12, 11}},
		{"empty", nil, nil},
	} {
		g := f.Gather(tc.idx)
		if g.NumRows() != len(tc.idx) {
			t.Fatalf("%s: rows = %d, want %d", tc.name, g.NumRows(), len(tc.idx))
		}
		gi := g.MustColumn("i").I
		for j, want := range tc.want {
			if gi[j] != want {
				t.Errorf("%s: i[%d] = %d, want %d", tc.name, j, gi[j], want)
			}
			if gf := g.MustColumn("f").F[j]; gf != float64(want-10) {
				t.Errorf("%s: f[%d] = %v", tc.name, j, gf)
			}
			if gs := g.MustColumn("s").S[j]; gs != string(rune('a'+want-10)) {
				t.Errorf("%s: s[%d] = %q", tc.name, j, gs)
			}
		}
	}
}
