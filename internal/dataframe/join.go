package dataframe

import "fmt"

// JoinKind selects the join semantics.
type JoinKind uint8

// Join kinds.
const (
	Inner JoinKind = iota
	Left
)

// Join performs an equi-join of left and right on the column named on,
// which must exist in both frames with the same kind. Right-side columns
// that collide with left-side names are suffixed "_right" (pandas-style).
// Row order follows the left frame; multiple matches expand pairwise.
func Join(left, right *Frame, on string, kind JoinKind) (*Frame, error) {
	lc, err := left.Column(on)
	if err != nil {
		return nil, fmt.Errorf("join left: %w", err)
	}
	rc, err := right.Column(on)
	if err != nil {
		return nil, fmt.Errorf("join right: %w", err)
	}
	if lc.Kind != rc.Kind {
		return nil, fmt.Errorf("dataframe: join key %q kind mismatch: %s vs %s", on, lc.Kind, rc.Kind)
	}

	// Hash the right side by key string form (exact for ints/strings; for
	// floats the formatted value is exact round-trip via strconv 'g' -1).
	rIdx := map[string][]int{}
	for r := 0; r < right.NumRows(); r++ {
		k := rc.StringAt(r)
		rIdx[k] = append(rIdx[k], r)
	}

	var lRows, rRows []int // rRows[i] == -1 marks an unmatched left row
	for l := 0; l < left.NumRows(); l++ {
		matches := rIdx[lc.StringAt(l)]
		if len(matches) == 0 {
			if kind == Left {
				lRows = append(lRows, l)
				rRows = append(rRows, -1)
			}
			continue
		}
		for _, r := range matches {
			lRows = append(lRows, l)
			rRows = append(rRows, r)
		}
	}

	out := left.Gather(lRows)
	for _, c := range right.cols {
		if c.Name == on {
			continue
		}
		name := c.Name
		if out.Has(name) {
			name += "_right"
		}
		col := gatherWithMissing(c, rRows)
		col.Name = name
		if err := out.AddColumn(col); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// gatherWithMissing is Column.gather extended with -1 indices producing the
// kind's null surrogate (NaN / 0 / "").
func gatherWithMissing(c *Column, idx []int) *Column {
	out := &Column{Name: c.Name, Kind: c.Kind}
	switch c.Kind {
	case Float:
		out.F = make([]float64, len(idx))
		for j, i := range idx {
			if i < 0 {
				out.F[j] = nan()
			} else {
				out.F[j] = c.F[i]
			}
		}
	case Int:
		out.I = make([]int64, len(idx))
		for j, i := range idx {
			if i >= 0 {
				out.I[j] = c.I[i]
			}
		}
	default:
		out.S = make([]string, len(idx))
		for j, i := range idx {
			if i >= 0 {
				out.S[j] = c.S[i]
			}
		}
	}
	return out
}

func nan() float64 {
	var z float64
	return z / z
}
