package dataframe

import "testing"

// TestSharedAppendCopiesOnWrite: growing a frame whose columns are marked
// shared must re-point at fresh vectors, leaving every alias — the other
// Concat side, cache entries, resident tables — untouched.
func TestSharedAppendCopiesOnWrite(t *testing.T) {
	src := MustFromColumns(
		NewInt("i", []int64{1, 2}),
		NewString("s", []string{"a", "b"}),
	)
	alias, err := Concat(src) // zero-copy: shares and marks src's vectors
	if err != nil {
		t.Fatal(err)
	}
	if alias.MustColumn("i") != src.MustColumn("i") {
		t.Fatal("single-frame Concat must share vectors, not copy")
	}
	if !src.MustColumn("i").IsShared() || !alias.MustColumn("i").IsShared() {
		t.Fatal("both aliases must be marked shared")
	}

	more := MustFromColumns(
		NewInt("i", []int64{3}),
		NewString("s", []string{"c"}),
	)
	if err := alias.Append(more); err != nil {
		t.Fatal(err)
	}
	if alias.NumRows() != 3 {
		t.Fatalf("grown alias rows = %d, want 3", alias.NumRows())
	}
	if src.NumRows() != 2 || src.MustColumn("i").I[1] != 2 || src.MustColumn("s").S[1] != "b" {
		t.Fatalf("COW violated: source mutated to %d rows: %v", src.NumRows(), src.MustColumn("i").I)
	}
	// The grown columns are fresh private vectors: a second append grows in
	// place without further copying.
	grown := alias.MustColumn("i")
	if grown == src.MustColumn("i") {
		t.Fatal("append must have re-pointed the grown column")
	}
	if grown.IsShared() {
		t.Fatal("the private copy must not stay marked shared")
	}

	// Shallow shells share without marking — existing discipline (callers
	// never mutate cells of shells) keeps them safe, and MarkShared opts
	// into the COW contract explicitly.
	shell := src.Shallow()
	if shell.MustColumn("i") != src.MustColumn("i") {
		t.Fatal("Shallow must share columns")
	}
	if err := shell.AddColumn(NewInt("extra", []int64{9, 9})); err != nil {
		t.Fatal(err)
	}
	if src.Has("extra") {
		t.Fatal("shells must be independent at the frame level")
	}
}
