package dataframe

import "math"

// Stats summarizes one column's value distribution for predicate pruning:
// the SQL planner compares WHERE bounds against per-segment Min/Max to skip
// whole segments without touching a vector. Min/Max cover the non-NaN
// elements (Min=+Inf, Max=-Inf when there are none); NaNs counts float NaN
// elements, which matter because SQL comparison semantics let NaN rows
// satisfy <= and >= (see sqldb's tree-walk evaluator). String columns
// report Valid=false and are never pruned.
type Stats struct {
	Valid bool
	Min   float64
	Max   float64
	NaNs  int
	N     int
}

// ComputeStats scans c once and returns its Stats. The scan is O(n) and
// allocation-free; callers cache the result per shared column vector.
func ComputeStats(c *Column) Stats {
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1), N: c.Len()}
	switch c.Kind {
	case Float:
		s.Valid = true
		for _, v := range c.F {
			if math.IsNaN(v) {
				s.NaNs++
				continue
			}
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
		}
	case Int:
		s.Valid = true
		for _, v := range c.I {
			f := float64(v)
			if f < s.Min {
				s.Min = f
			}
			if f > s.Max {
				s.Max = f
			}
		}
	default:
		// Strings carry no numeric range; pruning treats them as unknown.
	}
	return s
}
