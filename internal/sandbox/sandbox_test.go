package sandbox

import (
	"strings"
	"testing"

	"infera/internal/dataframe"
)

func halosFrame() *dataframe.Frame {
	return dataframe.MustFromColumns(
		dataframe.NewInt("fof_halo_tag", []int64{1, 2, 3}),
		dataframe.NewFloat("fof_halo_mass", []float64{3e14, 2e14, 1e14}),
	)
}

func TestExecutorRunsAndReturnsFrame(t *testing.T) {
	ex := &Executor{}
	res := ex.Exec(`
h = load_table("halos")
top = head(sort(h, "fof_halo_mass", true), 2)
result(top)
`, map[string]*dataframe.Frame{"halos": halosFrame()})
	if !res.OK {
		t.Fatalf("exec failed: %s", res.Error)
	}
	if res.Frame.NumRows() != 2 || res.Frame.MustColumn("fof_halo_tag").I[0] != 1 {
		t.Errorf("frame = %v", res.Frame)
	}
	if !strings.Contains(res.Preview(), "result frame: 2 rows") {
		t.Errorf("preview = %q", res.Preview())
	}
}

func TestExecutorInputIsolation(t *testing.T) {
	// The code must not be able to modify the caller's frame.
	ex := &Executor{}
	orig := halosFrame()
	res := ex.Exec(`
h = load_table("halos")
h = derive_scale(h, "fof_halo_mass", "fof_halo_mass", 0)
result(h)
`, map[string]*dataframe.Frame{"halos": orig})
	if !res.OK {
		t.Fatal(res.Error)
	}
	if orig.MustColumn("fof_halo_mass").F[0] != 3e14 {
		t.Error("sandbox mutated the original frame")
	}
	if res.Frame.MustColumn("fof_halo_mass").F[0] != 0 {
		t.Error("derived result wrong")
	}
}

func TestExecutorReportsErrors(t *testing.T) {
	ex := &Executor{}
	res := ex.Exec(`h = load_table("halos")`+"\n"+`x = filter_gt(h, "halo_mass", 1)`,
		map[string]*dataframe.Frame{"halos": halosFrame()})
	if res.OK {
		t.Fatal("expected failure")
	}
	if !strings.Contains(res.Error, "KeyError") || !strings.Contains(res.Error, "line 2") {
		t.Errorf("error = %q", res.Error)
	}
	if !strings.Contains(res.Preview(), "ERROR") {
		t.Errorf("preview = %q", res.Preview())
	}
}

func TestServerClientRoundTrip(t *testing.T) {
	srv := NewServer(&Executor{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewClient(srv.Addr())
	res := client.Exec(`
h = load_table("halos")
save_csv(h, "copy.csv")
hist_plot(h, "fof_halo_mass", 3, "masses", "hist.svg")
result(h)
`, map[string]*dataframe.Frame{"halos": halosFrame()})
	if !res.OK {
		t.Fatalf("exec failed: %s", res.Error)
	}
	if res.Frame.NumRows() != 3 {
		t.Errorf("frame rows = %d", res.Frame.NumRows())
	}
	if _, ok := res.Artifacts["hist.svg"]; !ok {
		t.Error("artifact hist.svg missing over HTTP")
	}
	if _, ok := res.Artifacts["copy.csv"]; !ok {
		t.Error("artifact copy.csv missing over HTTP")
	}
}

func TestServerClientErrorPath(t *testing.T) {
	srv := NewServer(&Executor{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewClient(srv.Addr())
	res := client.Exec(`x = nope()`, nil)
	if res.OK || !strings.Contains(res.Error, "NameError") {
		t.Errorf("result = %+v", res)
	}
}

func TestClientConnectionError(t *testing.T) {
	client := NewClient("127.0.0.1:1") // nothing listens there
	res := client.Exec("result(x)", nil)
	if res.OK || !strings.Contains(res.Error, "ConnectionError") {
		t.Errorf("result = %+v", res)
	}
}
