package sandbox

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"infera/internal/dataframe"
)

// wire types for the HTTP execution contract.
type execRequest struct {
	Code   string            `json:"code"`
	Tables map[string]string `json:"tables"` // name -> CSV text
}

type execResponse struct {
	OK        bool              `json:"ok"`
	Error     string            `json:"error,omitempty"`
	ResultCSV string            `json:"result_csv,omitempty"`
	Artifacts map[string]string `json:"artifacts,omitempty"` // name -> base64
	Stdout    []string          `json:"stdout,omitempty"`
	FuelUsed  int64             `json:"fuel_used,omitempty"`
}

// Server exposes the executor over HTTP on a loopback port — the process
// boundary that keeps code execution separated from code generation.
type Server struct {
	exec *Executor
	http *http.Server
	ln   net.Listener
}

// NewServer returns an unstarted server wrapping exec.
func NewServer(exec *Executor) *Server {
	s := &Server{exec: exec}
	mux := http.NewServeMux()
	mux.HandleFunc("/execute", s.handleExecute)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.http = &http.Server{Handler: mux, ReadTimeout: 30 * time.Second}
	return s
}

// Start listens on 127.0.0.1:0 and serves in a background goroutine.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	s.ln = ln
	go func() { _ = s.http.Serve(ln) }()
	return nil
}

// Addr returns the listening address (host:port); empty before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.http.Shutdown(ctx)
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req execRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	tables := map[string]*dataframe.Frame{}
	for name, csvText := range req.Tables {
		f, err := dataframe.ReadCSV(bytes.NewReader([]byte(csvText)))
		if err != nil {
			WriteJSON(w, execResponse{Error: "ValueError: table " + name + ": " + err.Error()})
			return
		}
		tables[name] = f
	}
	res := s.exec.Exec(req.Code, tables)
	resp := execResponse{OK: res.OK, Error: res.Error, Stdout: res.Stdout, FuelUsed: res.FuelUsed}
	if res.Frame != nil {
		var buf bytes.Buffer
		if err := res.Frame.WriteCSV(&buf); err == nil {
			resp.ResultCSV = buf.String()
		}
	}
	if len(res.Artifacts) > 0 {
		resp.Artifacts = map[string]string{}
		for name, data := range res.Artifacts {
			resp.Artifacts[name] = base64.StdEncoding.EncodeToString(data)
		}
	}
	WriteJSON(w, resp)
}

// WriteJSON encodes v as the JSON response body — the wire idiom shared by
// the sandbox execution server and the query service HTTP API.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// Client calls a sandbox Server over HTTP.
type Client struct {
	BaseURL string // e.g. "http://127.0.0.1:45123"
	HTTP    *http.Client
}

// NewClient returns a client for addr (host:port).
func NewClient(addr string) *Client {
	return &Client{BaseURL: "http://" + addr, HTTP: &http.Client{Timeout: 60 * time.Second}}
}

// Exec mirrors Executor.Exec across the HTTP boundary.
func (c *Client) Exec(code string, tables map[string]*dataframe.Frame) Result {
	req := execRequest{Code: code, Tables: map[string]string{}}
	for name, f := range tables {
		var buf bytes.Buffer
		if err := f.WriteCSV(&buf); err != nil {
			return Result{Error: "OSError: encoding table " + name + ": " + err.Error()}
		}
		req.Tables[name] = buf.String()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return Result{Error: "OSError: " + err.Error()}
	}
	httpResp, err := c.HTTP.Post(c.BaseURL+"/execute", "application/json", bytes.NewReader(body))
	if err != nil {
		return Result{Error: "ConnectionError: " + err.Error()}
	}
	defer httpResp.Body.Close()
	var resp execResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return Result{Error: "ValueError: bad server response: " + err.Error()}
	}
	out := Result{OK: resp.OK, Error: resp.Error, Stdout: resp.Stdout, FuelUsed: resp.FuelUsed}
	if resp.ResultCSV != "" {
		if f, err := dataframe.ReadCSV(bytes.NewReader([]byte(resp.ResultCSV))); err == nil {
			out.Frame = f
		}
	}
	if len(resp.Artifacts) > 0 {
		out.Artifacts = map[string][]byte{}
		for name, b64 := range resp.Artifacts {
			if data, err := base64.StdEncoding.DecodeString(b64); err == nil {
				out.Artifacts[name] = data
			}
		}
	}
	return out
}

// Runner abstracts in-process and HTTP execution so agents can use either.
type Runner interface {
	Exec(code string, tables map[string]*dataframe.Frame) Result
}

var (
	_ Runner = (*Executor)(nil)
	_ Runner = (*Client)(nil)
)
