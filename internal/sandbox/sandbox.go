// Package sandbox executes agent-generated analysis code in isolation from
// the ground-truth data, reproducing §3.2: "the system transmits code and a
// temporary data copy to the server. The server executes the code, performs
// error detection, and returns either a complete error-free pandas
// dataframe or detailed error messages."
//
// Two entry points share one execution core: Executor runs in-process, and
// Server/Client speak the same contract over HTTP on 127.0.0.1 (the
// ASGI-gateway analog of the paper's Uvicorn/FastAPI server).
//
// Execution is budgeted: Limits caps instructions (fuel), tracked
// allocation, wall clock, artifact bytes and stdout lines, and a recover()
// barrier converts any interpreter or builtin panic into a Python-like
// Result.Error — one pathological generated script degrades into a repair
// hint instead of taking down the shard.
package sandbox

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"infera/internal/dataframe"
	"infera/internal/script"
	"infera/internal/telemetry"
)

// Result is the outcome of one sandboxed execution.
type Result struct {
	OK        bool
	Error     string            // Python-like error text when !OK
	Frame     *dataframe.Frame  // the frame passed to result(), may be nil
	Artifacts map[string][]byte // plots, CSVs and scenes produced by the code
	Stdout    []string
	FuelUsed  int64 // instruction budget consumed (backend-independent)
}

// Limits bounds one sandboxed execution. Zero-valued fields are
// unlimited, so the zero Limits preserves the historical unbudgeted
// behavior; daemons apply DefaultLimits at the flag layer instead.
type Limits struct {
	MaxFuel          int64         // instruction budget (0 = unlimited)
	MaxMemBytes      int64         // cumulative tracked allocation (0 = unlimited)
	MaxWall          time.Duration // wall-clock cap per execution (0 = none)
	MaxArtifactBytes int64         // total artifact payload (0 = unlimited)
	MaxStdoutLines   int           // print() lines (0 = unlimited)
}

// DefaultLimits is the production default applied by the cmd flag layer:
// generous enough for any legitimate analysis script, small enough that a
// runaway one fails in seconds, not shards.
func DefaultLimits() Limits {
	return Limits{
		MaxFuel:          50_000_000,
		MaxMemBytes:      1 << 30, // 1 GiB tracked allocation
		MaxWall:          30 * time.Second,
		MaxArtifactBytes: 64 << 20, // 64 MiB
		MaxStdoutLines:   10_000,
	}
}

// Script execution backends.
const (
	// BackendVM compiles to bytecode and runs the stack-machine dispatch
	// loop — the production default.
	BackendVM = "vm"
	// BackendTreeWalk runs the reference tree-walk interpreter, kept for
	// differential testing and as an escape hatch.
	BackendTreeWalk = "treewalk"
)

// Executor runs scripts against temporary copies of input tables.
type Executor struct {
	// Registry is the function set available to executed code. Defaults to
	// script.DefaultRegistry when nil.
	Registry script.Registry
	// BaseDir is where per-execution temp dirs are created ("" = system
	// temp dir).
	BaseDir string
	// Limits bounds each execution; the zero value runs unrestricted.
	Limits Limits
	// Backend selects the script engine: BackendVM (default when empty)
	// or BackendTreeWalk.
	Backend string
	// Metrics, when non-nil, receives infera_script_fuel_used and
	// infera_script_budget_exceeded_total{kind} with MetricLabels attached.
	Metrics      *telemetry.Registry
	MetricLabels []telemetry.Label
}

// Exec copies the input tables into a fresh temporary directory as CSVs,
// runs the code there, and tears the directory down afterwards. The input
// frames themselves are never handed to the code — only copies — so the
// original data cannot be modified. Budgets from e.Limits are enforced
// during the run, and any panic in the interpreter or a builtin is
// recovered into a Python-like error string.
func (e *Executor) Exec(code string, tables map[string]*dataframe.Frame) (res Result) {
	dir, err := os.MkdirTemp(e.BaseDir, "infera-sandbox-*")
	if err != nil {
		return Result{Error: "OSError: " + err.Error()}
	}
	defer os.RemoveAll(dir)

	for name, f := range tables {
		var buf bytes.Buffer
		if err := f.WriteCSV(&buf); err != nil {
			return Result{Error: "OSError: staging table " + name + ": " + err.Error()}
		}
		if err := os.WriteFile(filepath.Join(dir, name+".csv"), buf.Bytes(), 0o644); err != nil {
			return Result{Error: "OSError: " + err.Error()}
		}
	}

	reg := e.Registry
	if reg == nil {
		reg = script.DefaultRegistry()
	}
	env := script.NewEnv(reg, dir)
	env.Budgets = script.Budgets{
		MaxFuel:          e.Limits.MaxFuel,
		MaxMemBytes:      e.Limits.MaxMemBytes,
		MaxArtifactBytes: e.Limits.MaxArtifactBytes,
		MaxStdoutLines:   e.Limits.MaxStdoutLines,
	}
	if e.Limits.MaxWall > 0 {
		env.Budgets.Deadline = time.Now().Add(e.Limits.MaxWall)
	}

	// The recover barrier: a crasher in the parser, the VM, or a builtin
	// becomes a structured error the QA repair loop can consume, with
	// whatever artifacts/stdout/fuel accrued before the crash preserved.
	defer func() {
		if r := recover(); r != nil {
			res = Result{
				Error:     fmt.Sprintf("RuntimeError: interpreter panic: %v", r),
				Artifacts: env.Artifacts,
				Stdout:    env.Stdout,
				FuelUsed:  env.FuelUsed,
			}
			e.observe(env.FuelUsed, nil)
		}
	}()

	backend, err := e.compile(code)
	if err != nil {
		return Result{Error: err.Error(), Stdout: env.Stdout}
	}
	if err := backend.Run(env); err != nil {
		e.observe(env.FuelUsed, err)
		return Result{
			Error:     err.Error(),
			Artifacts: env.Artifacts,
			Stdout:    env.Stdout,
			FuelUsed:  env.FuelUsed,
		}
	}
	e.observe(env.FuelUsed, nil)
	return Result{
		OK:        true,
		Frame:     env.Result,
		Artifacts: env.Artifacts,
		Stdout:    env.Stdout,
		FuelUsed:  env.FuelUsed,
	}
}

// compile parses code for the configured backend.
func (e *Executor) compile(code string) (script.Backend, error) {
	if e.Backend == BackendTreeWalk {
		return script.Parse(code)
	}
	return script.Compile(code)
}

// observe records fuel spend and budget-exhaustion kind on the metrics
// registry, if one is attached.
func (e *Executor) observe(fuel int64, runErr error) {
	if e.Metrics == nil {
		return
	}
	e.Metrics.SetHelp("infera_script_fuel_used", "Total script instruction budget (fuel) consumed by sandboxed executions.")
	e.Metrics.Counter("infera_script_fuel_used", e.MetricLabels...).Add(fuel)
	var be *script.BudgetError
	if errors.As(runErr, &be) {
		e.Metrics.SetHelp("infera_script_budget_exceeded_total", "Sandboxed executions aborted for exceeding a budget, by kind (fuel|mem|wall|artifact|stdout).")
		labels := append(append([]telemetry.Label{}, e.MetricLabels...), telemetry.L("kind", be.Kind))
		e.Metrics.Counter("infera_script_budget_exceeded_total", labels...).Inc()
	}
}

// ResultPreview renders a short text preview of an execution for QA
// assessment and provenance records.
func (r Result) Preview() string {
	if !r.OK {
		return "ERROR: " + r.Error
	}
	out := ""
	if r.Frame != nil {
		out += fmt.Sprintf("result frame: %d rows x %d cols (%v)\n", r.Frame.NumRows(), r.Frame.NumCols(), r.Frame.Names())
		out += r.Frame.Head(5).String()
	} else {
		out += "no result frame\n"
	}
	if len(r.Artifacts) > 0 {
		out += fmt.Sprintf("artifacts: %d file(s)\n", len(r.Artifacts))
	}
	return out
}
