// Package sandbox executes agent-generated analysis code in isolation from
// the ground-truth data, reproducing §3.2: "the system transmits code and a
// temporary data copy to the server. The server executes the code, performs
// error detection, and returns either a complete error-free pandas
// dataframe or detailed error messages."
//
// Two entry points share one execution core: Executor runs in-process, and
// Server/Client speak the same contract over HTTP on 127.0.0.1 (the
// ASGI-gateway analog of the paper's Uvicorn/FastAPI server).
package sandbox

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"infera/internal/dataframe"
	"infera/internal/script"
)

// Result is the outcome of one sandboxed execution.
type Result struct {
	OK        bool
	Error     string            // Python-like error text when !OK
	Frame     *dataframe.Frame  // the frame passed to result(), may be nil
	Artifacts map[string][]byte // plots, CSVs and scenes produced by the code
	Stdout    []string
}

// Executor runs scripts against temporary copies of input tables.
type Executor struct {
	// Registry is the function set available to executed code. Defaults to
	// script.DefaultRegistry when nil.
	Registry script.Registry
	// BaseDir is where per-execution temp dirs are created ("" = system
	// temp dir).
	BaseDir string
}

// Exec copies the input tables into a fresh temporary directory as CSVs,
// runs the code there, and tears the directory down afterwards. The input
// frames themselves are never handed to the code — only copies — so the
// original data cannot be modified.
func (e *Executor) Exec(code string, tables map[string]*dataframe.Frame) Result {
	dir, err := os.MkdirTemp(e.BaseDir, "infera-sandbox-*")
	if err != nil {
		return Result{Error: "OSError: " + err.Error()}
	}
	defer os.RemoveAll(dir)

	for name, f := range tables {
		var buf bytes.Buffer
		if err := f.WriteCSV(&buf); err != nil {
			return Result{Error: "OSError: staging table " + name + ": " + err.Error()}
		}
		if err := os.WriteFile(filepath.Join(dir, name+".csv"), buf.Bytes(), 0o644); err != nil {
			return Result{Error: "OSError: " + err.Error()}
		}
	}

	reg := e.Registry
	if reg == nil {
		reg = script.DefaultRegistry()
	}
	env := script.NewEnv(reg, dir)
	prog, err := script.Parse(code)
	if err != nil {
		return Result{Error: err.Error(), Stdout: env.Stdout}
	}
	if err := prog.Run(env); err != nil {
		return Result{Error: err.Error(), Artifacts: env.Artifacts, Stdout: env.Stdout}
	}
	return Result{
		OK:        true,
		Frame:     env.Result,
		Artifacts: env.Artifacts,
		Stdout:    env.Stdout,
	}
}

// ResultPreview renders a short text preview of an execution for QA
// assessment and provenance records.
func (r Result) Preview() string {
	if !r.OK {
		return "ERROR: " + r.Error
	}
	out := ""
	if r.Frame != nil {
		out += fmt.Sprintf("result frame: %d rows x %d cols (%v)\n", r.Frame.NumRows(), r.Frame.NumCols(), r.Frame.Names())
		out += r.Frame.Head(5).String()
	} else {
		out += "no result frame\n"
	}
	if len(r.Artifacts) > 0 {
		out += fmt.Sprintf("artifacts: %d file(s)\n", len(r.Artifacts))
	}
	return out
}
