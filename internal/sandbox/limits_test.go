package sandbox

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"infera/internal/dataframe"
	"infera/internal/script"
	"infera/internal/telemetry"
)

// bigListScript builds a single statement whose evaluation charges well
// over wallCheckInterval fuel, so wall-clock deadlines are observed even
// though the DSL has no loops.
func bigListScript(n int) string {
	elems := make([]string, n)
	for i := range elems {
		elems[i] = fmt.Sprint(i)
	}
	return "x = [" + strings.Join(elems, ", ") + "]\nprint(nrows(load_table(\"halos\")))"
}

func limitedExec(t *testing.T, lim Limits, backend, code string) Result {
	t.Helper()
	ex := &Executor{Limits: lim, Backend: backend}
	return ex.Exec(code, map[string]*dataframe.Frame{"halos": halosFrame()})
}

// TestExecutorBudgetExhaustion drives each budget axis to exhaustion on
// both backends and checks the structured Python-like error text. The
// executor must return a clean Result — never panic — and keep the fuel
// counter it got to.
func TestExecutorBudgetExhaustion(t *testing.T) {
	cases := []struct {
		name    string
		lim     Limits
		code    string
		wantErr string
	}{
		{
			name:    "fuel",
			lim:     Limits{MaxFuel: 5},
			code:    bigListScript(100),
			wantErr: "TimeoutError: script exceeded its instruction budget",
		},
		{
			name:    "memory",
			lim:     Limits{MaxMemBytes: 128},
			code:    bigListScript(100),
			wantErr: "MemoryError: script exceeded its memory budget",
		},
		{
			name:    "wall",
			lim:     Limits{MaxWall: time.Nanosecond},
			code:    bigListScript(600),
			wantErr: "TimeoutError: script exceeded its wall-clock limit",
		},
		{
			name: "artifact",
			lim:  Limits{MaxArtifactBytes: 8},
			code: `h = load_table("halos")` + "\n" + `save_csv(h, "out.csv")`,
			wantErr: "MemoryError: artifact budget exceeded",
		},
		{
			name: "stdout",
			lim:  Limits{MaxStdoutLines: 2},
			code: "print(1)\nprint(2)\nprint(3)",
			wantErr: "MemoryError: stdout line budget exceeded",
		},
	}
	for _, tc := range cases {
		for _, backend := range []string{BackendVM, BackendTreeWalk} {
			t.Run(tc.name+"/"+backend, func(t *testing.T) {
				res := limitedExec(t, tc.lim, backend, tc.code)
				if res.OK {
					t.Fatalf("expected budget error, got OK result")
				}
				if !strings.Contains(res.Error, tc.wantErr) {
					t.Fatalf("error = %q, want substring %q", res.Error, tc.wantErr)
				}
				if tc.name == "fuel" && res.FuelUsed == 0 {
					t.Fatal("fuel exhaustion reported zero fuel used")
				}
			})
		}
	}
}

// TestExecutorWithinBudgetSucceeds proves generous limits do not perturb a
// normal run and that fuel accounting reaches the result.
func TestExecutorWithinBudgetSucceeds(t *testing.T) {
	for _, backend := range []string{BackendVM, BackendTreeWalk} {
		res := limitedExec(t, DefaultLimits(), backend,
			`h = load_table("halos")`+"\n"+`result(head(sort(h, "fof_halo_mass", true), 2))`)
		if !res.OK {
			t.Fatalf("%s: exec failed: %s", backend, res.Error)
		}
		if res.FuelUsed == 0 {
			t.Fatalf("%s: fuel not accounted", backend)
		}
		if res.Frame == nil || res.Frame.NumRows() != 2 {
			t.Fatalf("%s: frame = %v", backend, res.Frame)
		}
	}
}

// TestExecutorRecoversInterpreterPanic proves a panicking builtin becomes a
// structured RuntimeError instead of taking the process down.
func TestExecutorRecoversInterpreterPanic(t *testing.T) {
	reg := script.DefaultRegistry()
	reg["explode"] = func(env *script.Env, args []script.Value) (script.Value, error) {
		panic("kaboom")
	}
	for _, backend := range []string{BackendVM, BackendTreeWalk} {
		ex := &Executor{Registry: reg, Backend: backend}
		res := ex.Exec("print(1)\nexplode()", nil)
		if res.OK {
			t.Fatalf("%s: expected failure", backend)
		}
		if !strings.Contains(res.Error, "RuntimeError: interpreter panic") ||
			!strings.Contains(res.Error, "kaboom") {
			t.Fatalf("%s: error = %q", backend, res.Error)
		}
		// Output produced before the panic survives.
		if len(res.Stdout) != 1 || res.Stdout[0] != "1" {
			t.Fatalf("%s: stdout = %v", backend, res.Stdout)
		}
	}
}

// TestExecutorBudgetMetrics checks the fuel counter and the per-kind
// exceeded counter land in the telemetry registry.
func TestExecutorBudgetMetrics(t *testing.T) {
	metrics := telemetry.NewRegistry()
	ex := &Executor{
		Limits:  Limits{MaxFuel: 5},
		Metrics: metrics,
	}
	res := ex.Exec(bigListScript(100), map[string]*dataframe.Frame{"halos": halosFrame()})
	if res.OK {
		t.Fatal("expected fuel exhaustion")
	}
	if got := metrics.Counter("infera_script_fuel_used").Value(); got == 0 {
		t.Fatal("infera_script_fuel_used not recorded")
	}
	if got := metrics.Counter("infera_script_budget_exceeded_total", telemetry.L("kind", "fuel")).Value(); got != 1 {
		t.Fatalf("infera_script_budget_exceeded_total{kind=fuel} = %d, want 1", got)
	}
}

// TestExecutorConcurrentBudgetedRuns exercises eight budgeted executions
// in parallel; run under -race this proves the budget accounting is
// per-environment with no shared mutable state.
func TestExecutorConcurrentBudgetedRuns(t *testing.T) {
	lim := DefaultLimits()
	lim.MaxFuel = 10_000
	metrics := telemetry.NewRegistry()
	var wg sync.WaitGroup
	errs := make([]Result, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			backend := BackendVM
			if i%2 == 1 {
				backend = BackendTreeWalk
			}
			ex := &Executor{Limits: lim, Backend: backend, Metrics: metrics}
			errs[i] = ex.Exec(
				`h = load_table("halos")`+"\n"+
					fmt.Sprintf(`f = filter_gt(h, "fof_halo_mass", %d)`, i)+"\n"+
					`result(f)`,
				map[string]*dataframe.Frame{"halos": halosFrame()})
		}(i)
	}
	wg.Wait()
	for i, res := range errs {
		if !res.OK {
			t.Fatalf("run %d failed: %s", i, res.Error)
		}
		if res.FuelUsed == 0 {
			t.Fatalf("run %d: fuel not accounted", i)
		}
	}
	if metrics.Counter("infera_script_fuel_used").Value() == 0 {
		t.Fatal("aggregate fuel counter empty")
	}
}

// TestServerSurvivesBudgetError proves a sandbox server keeps answering
// after a budget-exceeding request: the error is returned in-band, the
// next request succeeds.
func TestServerSurvivesBudgetError(t *testing.T) {
	srv := NewServer(&Executor{Limits: Limits{MaxFuel: 5}})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewClient(srv.Addr())

	res := client.Exec(bigListScript(100), map[string]*dataframe.Frame{"halos": halosFrame()})
	if res.OK {
		t.Fatal("expected budget error over the wire")
	}
	if !strings.Contains(res.Error, "TimeoutError: script exceeded its instruction budget") {
		t.Fatalf("error = %q", res.Error)
	}

	// The same server instance still serves cheap requests.
	ok := client.Exec("print(1)", nil)
	if !ok.OK {
		t.Fatalf("server stopped serving after budget error: %s", ok.Error)
	}
	if ok.FuelUsed == 0 {
		t.Fatal("fuel not threaded through the wire protocol")
	}
}
