package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	fit, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v", fit)
	}
	if math.Abs(fit.R-1) > 1e-12 || fit.Scatter > 1e-9 {
		t.Errorf("perfect line should have R=1, scatter=0: %+v", fit)
	}
	if fit.N != 5 {
		t.Errorf("N = %d", fit.N)
	}
}

func TestLinearFitNoisyRecoversSlope(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 5000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 10
		y[i] = 3*x[i] - 2 + rng.NormFloat64()*0.5
	}
	fit, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 0.05 || math.Abs(fit.Intercept+2) > 0.1 {
		t.Errorf("fit = %+v", fit)
	}
	if math.Abs(fit.Scatter-0.5) > 0.05 {
		t.Errorf("scatter = %v, want ~0.5", fit.Scatter)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should fail")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("zero-variance x should fail")
	}
}

func TestLinearFitIgnoresNaN(t *testing.T) {
	fit, err := LinearFit([]float64{0, 1, math.NaN(), 2}, []float64{0, 2, 5, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 3 || math.Abs(fit.Slope-2) > 1e-12 {
		t.Errorf("fit = %+v", fit)
	}
}

func TestMeanStd(t *testing.T) {
	x := []float64{2, 4, 4, 6}
	if m := Mean(x); m != 4 {
		t.Errorf("mean = %v", m)
	}
	if s := Std(x); math.Abs(s-math.Sqrt(2)) > 1e-12 {
		t.Errorf("std = %v", s)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty should be NaN")
	}
}

func TestZScores(t *testing.T) {
	z := ZScores([]float64{2, 4, 4, 6})
	if math.Abs(Mean(z)) > 1e-12 || math.Abs(Std(z)-1) > 1e-12 {
		t.Errorf("zscores not standardized: %v", z)
	}
	if z := ZScores([]float64{5, 5, 5}); z[0] != 0 || z[1] != 0 {
		t.Errorf("constant vector zscores = %v", z)
	}
}

func TestPearsonSpearman(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 4, 9, 16, 25} // monotone but nonlinear
	p, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("spearman = %v, want 1", s)
	}
	if p >= s {
		t.Errorf("pearson %v should be below spearman %v for convex data", p, s)
	}
}

func TestCorrMatrix(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	c := []float64{4, 3, 2, 1}
	m, err := CorrMatrix([][]float64{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[0][1]-1) > 1e-12 || math.Abs(m[0][2]+1) > 1e-12 {
		t.Errorf("matrix = %v", m)
	}
	for i := range m {
		if m[i][i] != 1 {
			t.Errorf("diagonal %d = %v", i, m[i][i])
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Error("matrix not symmetric")
			}
		}
	}
}

func TestHistogram(t *testing.T) {
	centers, counts, err := Histogram([]float64{0, 0.1, 0.9, 1.0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != 2 || counts[0] != 2 || counts[1] != 2 {
		t.Errorf("hist = %v %v", centers, counts)
	}
	if _, _, err := Histogram([]float64{math.NaN()}, 2); err == nil {
		t.Error("all-NaN histogram should fail")
	}
	if _, _, err := Histogram([]float64{1}, 0); err == nil {
		t.Error("zero bins should fail")
	}
	// Constant data still bins.
	if _, counts, err := Histogram([]float64{3, 3, 3}, 4); err != nil || sum(counts) != 3 {
		t.Errorf("constant hist: %v %v", counts, err)
	}
}

func sum(x []int) int {
	s := 0
	for _, v := range x {
		s += v
	}
	return s
}

func TestEmbed2DSeparatesClusters(t *testing.T) {
	// Two well-separated clusters in 4-D must separate along PC1.
	var feats [][]float64
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		base := 0.0
		if i >= 20 {
			base = 10
		}
		feats = append(feats, []float64{
			base + rng.NormFloat64()*0.1,
			base + rng.NormFloat64()*0.1,
			-base + rng.NormFloat64()*0.1,
			rng.NormFloat64() * 0.1,
		})
	}
	xs, _, err := Embed2D(feats)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster means along PC1 must be far apart relative to within-cluster
	// spread.
	m1, m2 := Mean(xs[:20]), Mean(xs[20:])
	s1, s2 := Std(xs[:20]), Std(xs[20:])
	if math.Abs(m1-m2) < 5*(s1+s2+1e-9) {
		t.Errorf("clusters not separated: means %v %v stds %v %v", m1, m2, s1, s2)
	}
}

func TestEmbed2DErrors(t *testing.T) {
	if _, _, err := Embed2D(nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, _, err := Embed2D([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged input should fail")
	}
	xs, ys, err := Embed2D([][]float64{{1}, {2}, {3}})
	if err != nil || len(xs) != 3 || ys[0] != 0 {
		t.Errorf("1-D embed: %v %v %v", xs, ys, err)
	}
}

func TestQuickFitResidualOrthogonality(t *testing.T) {
	// OLS property: residuals are uncorrelated with x (sum r_i*x_i ~ 0).
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 3
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 5
			y[i] = rng.NormFloat64() * 5
		}
		fit, err := LinearFit(x, y)
		if err != nil {
			return true // degenerate draw
		}
		var dot, scale float64
		for i := range x {
			r := y[i] - (fit.Slope*x[i] + fit.Intercept)
			dot += r * x[i]
			scale += math.Abs(r * x[i])
		}
		return math.Abs(dot) <= 1e-6*(scale+1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
