// Package stats provides the numerical routines the paper's analyses lean
// on NumPy/SciPy for: least-squares fits with intrinsic scatter, Pearson
// and Spearman correlation, correlation matrices, z-scores, histogram
// binning and a deterministic PCA-based 2-D embedding standing in for UMAP.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// FitResult holds a simple linear regression y = Slope*x + Intercept.
type FitResult struct {
	Slope     float64
	Intercept float64
	R         float64 // Pearson correlation of x and y
	Scatter   float64 // RMS of residuals ("intrinsic scatter" in dex when
	// inputs are logarithmic)
	N int
}

// LinearFit fits y against x by ordinary least squares, ignoring pairs with
// NaN in either coordinate.
func LinearFit(x, y []float64) (FitResult, error) {
	if len(x) != len(y) {
		return FitResult{}, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	var sx, sy, sxx, sxy, syy float64
	n := 0
	for i := range x {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			continue
		}
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
		n++
	}
	if n < 2 {
		return FitResult{}, fmt.Errorf("stats: need at least 2 points, got %d", n)
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return FitResult{}, fmt.Errorf("stats: degenerate x (zero variance)")
	}
	slope := (fn*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / fn

	// Residual RMS and correlation.
	var ssRes float64
	for i := range x {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			continue
		}
		r := y[i] - (slope*x[i] + intercept)
		ssRes += r * r
	}
	varX := sxx/fn - (sx/fn)*(sx/fn)
	varY := syy/fn - (sy/fn)*(sy/fn)
	r := 0.0
	if varX > 0 && varY > 0 {
		r = (sxy/fn - (sx/fn)*(sy/fn)) / math.Sqrt(varX*varY)
	}
	return FitResult{
		Slope:     slope,
		Intercept: intercept,
		R:         r,
		Scatter:   math.Sqrt(ssRes / fn),
		N:         n,
	}, nil
}

// Mean returns the arithmetic mean, ignoring NaNs.
func Mean(x []float64) float64 {
	var sum float64
	n := 0
	for _, v := range x {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Std returns the population standard deviation, ignoring NaNs.
func Std(x []float64) float64 {
	m := Mean(x)
	var ss float64
	n := 0
	for _, v := range x {
		if !math.IsNaN(v) {
			d := v - m
			ss += d * d
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Sqrt(ss / float64(n))
}

// Pearson returns the Pearson correlation of x and y.
func Pearson(x, y []float64) (float64, error) {
	fit, err := LinearFit(x, y)
	if err != nil {
		return 0, err
	}
	return fit.R, nil
}

// Spearman returns the Spearman rank correlation of x and y.
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	return Pearson(ranks(x), ranks(y))
}

func ranks(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	out := make([]float64, len(x))
	for r, i := range idx {
		out[i] = float64(r)
	}
	return out
}

// ZScores standardizes x to zero mean, unit standard deviation. A constant
// vector maps to all zeros.
func ZScores(x []float64) []float64 {
	m, s := Mean(x), Std(x)
	out := make([]float64, len(x))
	for i, v := range x {
		if s == 0 || math.IsNaN(s) {
			out[i] = 0
			continue
		}
		out[i] = (v - m) / s
	}
	return out
}

// CorrMatrix returns the Pearson correlation matrix of the columns.
func CorrMatrix(cols [][]float64) ([][]float64, error) {
	n := len(cols)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		out[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r, err := Pearson(cols[i], cols[j])
			if err != nil {
				return nil, err
			}
			out[i][j] = r
			out[j][i] = r
		}
	}
	return out, nil
}

// Histogram bins x into nbins equal-width bins over [min, max] and returns
// bin centers and counts.
func Histogram(x []float64, nbins int) (centers []float64, counts []int, err error) {
	if nbins < 1 {
		return nil, nil, fmt.Errorf("stats: need at least 1 bin")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range x {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > hi {
		return nil, nil, fmt.Errorf("stats: no finite values to bin")
	}
	if lo == hi {
		hi = lo + 1
	}
	width := (hi - lo) / float64(nbins)
	centers = make([]float64, nbins)
	counts = make([]int, nbins)
	for i := range centers {
		centers[i] = lo + (float64(i)+0.5)*width
	}
	for _, v := range x {
		if math.IsNaN(v) {
			continue
		}
		b := int((v - lo) / width)
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return centers, counts, nil
}

// Embed2D projects rows of the feature matrix onto their first two
// principal components — a deterministic stand-in for UMAP that preserves
// the "similar rows land together" property the interestingness-score
// question needs. Features are z-scored first. Rows with fewer than two
// features project onto (feature, 0).
func Embed2D(features [][]float64) (xs, ys []float64, err error) {
	n := len(features)
	if n == 0 {
		return nil, nil, fmt.Errorf("stats: no rows to embed")
	}
	d := len(features[0])
	for _, row := range features {
		if len(row) != d {
			return nil, nil, fmt.Errorf("stats: ragged feature matrix")
		}
	}
	if d == 0 {
		return nil, nil, fmt.Errorf("stats: no feature columns")
	}
	// Standardize columns.
	std := make([][]float64, d)
	for j := 0; j < d; j++ {
		col := make([]float64, n)
		for i := range features {
			col[i] = features[i][j]
		}
		std[j] = ZScores(col)
	}
	if d == 1 {
		ys = make([]float64, n)
		return std[0], ys, nil
	}
	// Covariance matrix.
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
		for j := range cov[i] {
			var s float64
			for r := 0; r < n; r++ {
				s += std[i][r] * std[j][r]
			}
			cov[i][j] = s / float64(n)
		}
	}
	pc1 := powerIteration(cov, nil)
	pc2 := powerIteration(cov, pc1)
	xs = make([]float64, n)
	ys = make([]float64, n)
	for r := 0; r < n; r++ {
		for j := 0; j < d; j++ {
			xs[r] += std[j][r] * pc1[j]
			ys[r] += std[j][r] * pc2[j]
		}
	}
	return xs, ys, nil
}

// powerIteration finds the dominant eigenvector of sym, deflated against
// orth when non-nil. Deterministic: starts from a fixed vector.
func powerIteration(sym [][]float64, orth []float64) []float64 {
	d := len(sym)
	v := make([]float64, d)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(d)+float64(i)) // fixed, slightly asymmetric start
	}
	tmp := make([]float64, d)
	for iter := 0; iter < 100; iter++ {
		if orth != nil {
			project(v, orth)
		}
		for i := 0; i < d; i++ {
			var s float64
			for j := 0; j < d; j++ {
				s += sym[i][j] * v[j]
			}
			tmp[i] = s
		}
		norm := 0.0
		for _, t := range tmp {
			norm += t * t
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}
		for i := range v {
			v[i] = tmp[i] / norm
		}
	}
	if orth != nil {
		project(v, orth)
	}
	return v
}

// project removes the component of v along unit-ish vector u, in place.
func project(v, u []float64) {
	var dot, uu float64
	for i := range v {
		dot += v[i] * u[i]
		uu += u[i] * u[i]
	}
	if uu == 0 {
		return
	}
	f := dot / uu
	for i := range v {
		v[i] -= f * u[i]
	}
}
