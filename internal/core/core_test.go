package core

import (
	"errors"
	"strings"
	"testing"

	"infera/internal/agent"
	"infera/internal/hacc"
	"infera/internal/llm"
)

func testEnsemble(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	spec := hacc.Spec{
		Runs:             2,
		Steps:            []int{99, 350, 498, 624},
		HalosPerRun:      100,
		ParticlesPerStep: 100,
		BoxSize:          128,
		Seed:             3,
	}
	if _, err := hacc.Generate(dir, spec); err != nil {
		t.Fatal(err)
	}
	return dir
}

func newAssistant(t *testing.T, cfg Config) *Assistant {
	t.Helper()
	if cfg.EnsembleDir == "" {
		cfg.EnsembleDir = testEnsemble(t)
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = t.TempDir()
	}
	if cfg.Model == nil {
		// Error-free model for deterministic pipeline tests.
		cfg.Model = llm.NewSim(llm.SimConfig{Seed: 1, ColumnErrorRate: 1e-9, ToolErrorRate: 1e-9})
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func TestAskTopNQuestion(t *testing.T) {
	a := newAssistant(t, Config{})
	ans, err := a.Ask("Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?")
	if err != nil {
		t.Fatalf("ask: %v", err)
	}
	if !ans.State.Done || ans.State.Failed {
		t.Fatalf("state = %+v", ans.State)
	}
	if ans.Answer == nil || ans.Answer.NumRows() != 20 {
		t.Fatalf("answer rows = %v", ans.Answer)
	}
	// Largest halo of sim 0 carries tag 0 (rank order) and masses descend.
	masses := ans.Answer.MustColumn("fof_halo_mass").Floats()
	for i := 1; i < len(masses); i++ {
		if masses[i] > masses[i-1] {
			t.Errorf("masses not descending at %d", i)
		}
	}
	if got := ans.Answer.MustColumn("fof_halo_tag").IntAt(0); got != 0 {
		t.Errorf("top halo tag = %d, want 0", got)
	}
	// Only simulation 0 and step 498 loaded.
	if len(ans.State.LoadedSims) != 1 || ans.State.LoadedSims[0] != 0 {
		t.Errorf("loaded sims = %v", ans.State.LoadedSims)
	}
	if len(ans.State.LoadedSteps) != 1 || ans.State.LoadedSteps[0] != 498 {
		t.Errorf("loaded steps = %v", ans.State.LoadedSteps)
	}
	if ans.TaskCompleteness() != 1 {
		t.Errorf("completeness = %v", ans.TaskCompleteness())
	}
	if ans.State.Usage.Total() == 0 {
		t.Error("no token usage recorded")
	}
	if ans.DBBytes <= 0 || ans.SourceBytes <= 0 {
		t.Errorf("sizes: db=%d source=%d", ans.DBBytes, ans.SourceBytes)
	}
	if ans.StorageOverheadFraction() <= 0 {
		t.Error("storage overhead fraction should be positive")
	}
}

func TestAskAggregateAcrossSimsAndSteps(t *testing.T) {
	a := newAssistant(t, Config{})
	ans, err := a.Ask("Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?")
	if err != nil {
		t.Fatalf("ask: %v", err)
	}
	if ans.Answer == nil || ans.Answer.NumRows() != 4 { // one row per step
		t.Fatalf("answer = %v", ans.Answer)
	}
	if !ans.Answer.Has("avg_fof_halo_count") {
		t.Errorf("columns = %v", ans.Answer.Names())
	}
	// Average halo size grows with time in the synthetic physics.
	avg := ans.Answer.MustColumn("avg_fof_halo_count").Floats()
	if avg[len(avg)-1] <= avg[0] {
		t.Errorf("average size should grow: %v", avg)
	}
}

func TestAskSMHMHardQuestion(t *testing.T) {
	a := newAssistant(t, Config{})
	ans, err := a.Ask("At timestep 624, how does the slope and intrinsic scatter of the stellar-to-halo mass (SMHM) relation vary as a function of seed mass? Which seed mass values produce the tightest SMHM correlation, and is there a threshold seed mass that maximizes stellar-mass assembly efficiency?")
	if err != nil {
		t.Fatalf("ask: %v", err)
	}
	// The analysis table holds per-seed-mass fits sorted by scatter.
	if ans.Answer == nil || !ans.Answer.Has("scatter") || !ans.Answer.Has("m_seed") {
		t.Fatalf("answer = %v", ans.Answer.Names())
	}
	if ans.Answer.NumRows() != 2 { // one fit per simulation/seed mass
		t.Errorf("fits = %d", ans.Answer.NumRows())
	}
	// Artifacts include both requested plots.
	var plots int
	for _, e := range ans.Artifacts {
		if e.Kind == "plot" {
			plots++
		}
	}
	if plots < 2 {
		t.Errorf("plots recorded = %d, want >= 2", plots)
	}
}

func TestAskTrackQuestionProducesTwoPlots(t *testing.T) {
	a := newAssistant(t, Config{})
	ans, err := a.Ask("Can you plot the change in mass of the largest friends-of-friends halos for all timesteps in all simulations? Provide me two plots using both fof_halo_count and fof_halo_mass as metrics for mass.")
	if err != nil {
		t.Fatalf("ask: %v", err)
	}
	names := map[string]bool{}
	for _, e := range ans.Artifacts {
		names[e.Name] = true
	}
	if !names["halo_count.svg"] || !names["halo_mass.svg"] {
		t.Errorf("artifacts = %v", names)
	}
	if ans.Answer == nil || !ans.Answer.Has("max_mass") {
		t.Fatalf("answer = %v", ans.Answer)
	}
	// All sims and all steps loaded.
	if len(ans.State.LoadedSims) != 2 || len(ans.State.LoadedSteps) != 4 {
		t.Errorf("loaded %v sims %v steps", ans.State.LoadedSims, ans.State.LoadedSteps)
	}
}

func TestAskNeighborhoodParaview(t *testing.T) {
	a := newAssistant(t, Config{})
	ans, err := a.Ask("Visualize a target dark matter halo and all surrounding halos within 20 megaparsec radius in simulation 0 using Paraview.")
	if err != nil {
		t.Fatalf("ask: %v", err)
	}
	var scene bool
	for _, e := range ans.Artifacts {
		if e.Kind == "scene" && strings.HasSuffix(e.Name, ".vtk") {
			scene = true
		}
	}
	if !scene {
		t.Error("no ParaView scene artifact recorded")
	}
}

func TestProvenanceTrailIsComplete(t *testing.T) {
	a := newAssistant(t, Config{})
	ans, err := a.Ask("Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, e := range ans.Artifacts {
		kinds[e.Kind]++
	}
	for _, want := range []string{"plan", "retrieval", "report", "code", "data", "checkpoint", "summary"} {
		if kinds[want] == 0 {
			t.Errorf("provenance missing kind %q (have %v)", want, kinds)
		}
	}
	// The full trail verifies.
	sess, err := a.Store().OpenSession(ans.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := sess.Verify()
	if err != nil || len(bad) != 0 {
		t.Errorf("verify: %v %v", bad, err)
	}
}

func TestHTTPServerSandboxMode(t *testing.T) {
	a := newAssistant(t, Config{UseServer: true})
	ans, err := a.Ask("Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?")
	if err != nil {
		t.Fatalf("ask over HTTP sandbox: %v", err)
	}
	if ans.Answer == nil || ans.Answer.NumRows() != 20 {
		t.Fatalf("answer = %v", ans.Answer)
	}
}

func TestFailingRunReportsPartialProgress(t *testing.T) {
	// A QA agent that rejects nearly everything exhausts the revision
	// budget deterministically.
	model := llm.NewSim(llm.SimConfig{Seed: 9, ColumnErrorRate: 1e-9, BinaryQA: true, QAFalseNegRate: 0.999})
	a := newAssistant(t, Config{Model: model})
	ans, err := a.Ask("Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?")
	var fe *agent.ErrFailed
	if !errors.As(err, &fe) {
		t.Fatalf("want ErrFailed, got %v", err)
	}
	if !ans.State.Failed || ans.State.Done {
		t.Errorf("state = %+v", ans.State)
	}
	if ans.TaskCompleteness() >= 1 || ans.TaskCompleteness() < 0 {
		t.Errorf("completeness = %v", ans.TaskCompleteness())
	}
	if ans.State.RedoCount < 5 {
		t.Errorf("redo count = %d, want >= MaxRevisions", ans.State.RedoCount)
	}
	// Failed runs still document themselves.
	if ans.Summary == "" || !strings.Contains(ans.Summary, "Limitations") {
		t.Errorf("summary = %q", ans.Summary)
	}
}

func TestHumanHintRepairsImmediately(t *testing.T) {
	// With an always-corrupting model but a human supplying the correct
	// column name, the run should still fail *less*: the hint removes the
	// corrupted name from the retry pool. Use a hinting Feedback.
	model := llm.NewSim(llm.SimConfig{Seed: 4, ColumnErrorRate: 0.95, RetryDecay: 0.2})
	a := newAssistant(t, Config{Model: model, Feedback: agent.AutoHinter{}})
	ans, err := a.Ask("Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?")
	if err != nil {
		t.Fatalf("ask with hints: %v", err)
	}
	if ans.State.PlanRounds < 1 {
		t.Error("plan review did not run")
	}
}

func TestTrimHistoryReducesTokens(t *testing.T) {
	q := "Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?"
	run := func(trim bool) int {
		model := llm.NewSim(llm.SimConfig{Seed: 11, ColumnErrorRate: 1e-9, ToolErrorRate: 1e-9})
		a := newAssistant(t, Config{Model: model, TrimHistory: trim})
		ans, err := a.Ask(q)
		if err != nil {
			t.Fatal(err)
		}
		return ans.State.Usage.Total()
	}
	full := run(false)
	trimmed := run(true)
	if trimmed >= full {
		t.Errorf("trimmed history tokens %d should be below full %d", trimmed, full)
	}
}

func TestCheckpointBranching(t *testing.T) {
	a := newAssistant(t, Config{})
	ans, err := a.Ask("Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := a.Store().OpenSession(ans.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := sess.LastCheckpoint()
	if !ok {
		t.Fatal("no checkpoint recorded")
	}
	data, err := sess.Read(cp)
	if err != nil {
		t.Fatal(err)
	}
	st, err := agent.RestoreState(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Question == "" || !st.Done {
		t.Errorf("restored state = %+v", st)
	}
	branch, err := a.Store().Branch(sess, ans.SessionID+"-alt", cp.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(branch.Manifest()) == 0 {
		t.Error("branch is empty")
	}
}
