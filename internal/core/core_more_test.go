package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"infera/internal/llm"
)

const preciseQ = "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?"

func TestVerifyAndBranchSession(t *testing.T) {
	a := newAssistant(t, Config{})
	ans, err := a.Ask(preciseQ)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := a.VerifySession(ans.SessionID)
	if err != nil || len(bad) != 0 {
		t.Fatalf("verify: %v %v", bad, err)
	}
	// Branch from the midpoint of the trail.
	mid := ans.Artifacts[len(ans.Artifacts)/2].Seq
	branchID, err := a.BranchSession(ans.SessionID, mid)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(branchID, ans.SessionID) {
		t.Errorf("branch id = %q", branchID)
	}
	branch, err := a.Store().OpenSession(branchID)
	if err != nil {
		t.Fatal(err)
	}
	m := branch.Manifest()
	if len(m) == 0 || len(m) >= len(ans.Artifacts) {
		t.Errorf("branch has %d artifacts, source %d", len(m), len(ans.Artifacts))
	}
	if badB, err := branch.Verify(); err != nil || len(badB) != 0 {
		t.Errorf("branch verify: %v %v", badB, err)
	}
	// Tamper and re-verify.
	target := ans.Artifacts[0]
	sess, _ := a.Store().OpenSession(ans.SessionID)
	full := filepath.Join(sess.Dir(), target.File)
	if err := os.WriteFile(full, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad, err = a.VerifySession(ans.SessionID)
	if err != nil || len(bad) != 1 {
		t.Errorf("tamper detection: %v %v", bad, err)
	}
}

func TestBranchUnknownSession(t *testing.T) {
	a := newAssistant(t, Config{})
	if _, err := a.BranchSession("nope", 3); err == nil {
		t.Error("branching unknown session should fail")
	}
	if _, err := a.VerifySession("nope"); err == nil {
		t.Error("verifying unknown session should fail")
	}
}

func TestSkipDocumentationSavesTokensAndSummary(t *testing.T) {
	run := func(skip bool) (*Answer, error) {
		model := llm.NewSim(llm.SimConfig{Seed: 8, ColumnErrorRate: 1e-9, ToolErrorRate: 1e-9})
		a := newAssistant(t, Config{Model: model, SkipDocumentation: skip})
		return a.Ask(preciseQ)
	}
	withDoc, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	without, err := run(true)
	if err != nil {
		t.Fatal(err)
	}
	if !without.State.Done {
		t.Error("skip-doc run should still complete")
	}
	if without.Summary != "" {
		t.Errorf("skip-doc run has a summary: %q", without.Summary)
	}
	if withDoc.Summary == "" {
		t.Error("documented run missing summary")
	}
	if without.State.Usage.Total() >= withDoc.State.Usage.Total() {
		t.Errorf("skip-doc tokens %d should be below %d", without.State.Usage.Total(), withDoc.State.Usage.Total())
	}
}

func TestLocalModelDegradesGracefully(t *testing.T) {
	// The weaker local-model profile must still run the pipeline; failures
	// terminate with ErrFailed and partial provenance, never panics.
	a := newAssistant(t, Config{Model: llm.NewSim(llm.LocalSimConfig(4))})
	ans, err := a.Ask("At timestep 624, how does the slope and intrinsic scatter of the stellar-to-halo mass (SMHM) relation vary as a function of seed mass?")
	if ans == nil {
		t.Fatalf("no answer object: %v", err)
	}
	if ans.State.Usage.Total() == 0 {
		t.Error("no token usage")
	}
	if len(ans.Artifacts) == 0 {
		t.Error("no provenance artifacts")
	}
}

func TestAmbiguousStrategyRecorded(t *testing.T) {
	a := newAssistant(t, Config{})
	ans, err := a.Ask("Can you make an inference on the direction of the FSN and VEL parameters in order to increase the halo count of the 100 largest halos in timestep 624? Also plot a summary of the differences in halo characteristics between the two simulations.")
	if err != nil {
		t.Fatalf("ambiguous run failed: %v", err)
	}
	if ans.State.Strategy < 0 || ans.State.Strategy > 2 {
		t.Errorf("strategy = %d", ans.State.Strategy)
	}
}

func TestMultipleQuestionsShareAssistant(t *testing.T) {
	a := newAssistant(t, Config{})
	first, err := a.Ask(preciseQ)
	if err != nil {
		t.Fatal(err)
	}
	second, err := a.Ask("What is the average gas mass (sod_halo_MGas500c) of halos at timestep 498 in simulation 0?")
	if err != nil {
		t.Fatal(err)
	}
	if first.SessionID == second.SessionID {
		t.Error("sessions must be distinct")
	}
	ids, err := a.Store().Sessions()
	if err != nil || len(ids) != 2 {
		t.Errorf("sessions = %v, %v", ids, err)
	}
}
