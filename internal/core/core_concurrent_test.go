package core

import (
	"fmt"
	"sync"
	"testing"

	"infera/internal/llm"
)

// TestConcurrentAsk exercises one Assistant from 8 goroutines under -race:
// session IDs must stay unique, every run must complete, and every
// provenance trail must verify. This pins the fix for the unsynchronized
// nextID increment the single-user REPL never noticed.
func TestConcurrentAsk(t *testing.T) {
	a := newAssistant(t, Config{})
	const parallel = 8
	questions := []string{
		"Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?",
		"Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?",
	}

	var wg sync.WaitGroup
	answers := make([]*Answer, parallel)
	errs := make([]error, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			answers[i], errs[i] = a.AskWith(questions[i%len(questions)], AskOptions{
				Model: llm.NewSim(llm.SimConfig{Seed: int64(i) + 1, ColumnErrorRate: 1e-9, ToolErrorRate: 1e-9}),
			})
		}(i)
	}
	wg.Wait()

	seen := map[string]bool{}
	for i := 0; i < parallel; i++ {
		if errs[i] != nil {
			t.Fatalf("ask %d: %v", i, errs[i])
		}
		if answers[i].Answer == nil || !answers[i].State.Done {
			t.Fatalf("ask %d incomplete: %+v", i, answers[i].State)
		}
		if seen[answers[i].SessionID] {
			t.Fatalf("duplicate session ID %q", answers[i].SessionID)
		}
		seen[answers[i].SessionID] = true
		bad, err := a.VerifySession(answers[i].SessionID)
		if err != nil || len(bad) != 0 {
			t.Fatalf("ask %d provenance verify: bad=%v err=%v", i, bad, err)
		}
	}
}

// TestAskWithExplicitSessionID checks service-style session naming and the
// duplicate-ID failure mode.
func TestAskWithExplicitSessionID(t *testing.T) {
	a := newAssistant(t, Config{})
	ans, err := a.AskWith("Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?",
		AskOptions{SessionID: "svc-0001"})
	if err != nil {
		t.Fatal(err)
	}
	if ans.SessionID != "svc-0001" {
		t.Fatalf("session ID = %q, want svc-0001", ans.SessionID)
	}
	if _, err := a.AskWith("anything", AskOptions{SessionID: "svc-0001"}); err == nil {
		t.Fatal("duplicate session ID should fail")
	}
}

// TestConcurrentSessionIDAllocation hammers allocSessionID alone — a pure
// -race probe independent of workflow runtime.
func TestConcurrentSessionIDAllocation(t *testing.T) {
	a := newAssistant(t, Config{})
	const n = 64
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = a.allocSessionID()
		}(i)
	}
	wg.Wait()
	seen := map[string]bool{}
	for i, id := range ids {
		if id == "" || seen[id] {
			t.Fatalf("slot %d: bad or duplicate id %q (%v)", i, id, ids)
		}
		seen[id] = true
	}
	if want := fmt.Sprintf("session-%03d", n); !seen[want] {
		t.Errorf("missing final id %s", want)
	}
}
