// Package core is InferA's public API: point an Assistant at a HACC-style
// ensemble and ask natural-language questions. Each question runs the full
// two-stage multi-agent workflow (plan -> approve -> supervised analysis)
// against a per-question staging database, an isolated sandbox, and a
// provenance session recording every intermediate artifact.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"infera/internal/agent"
	"infera/internal/hacc"
	"infera/internal/llm"
	"infera/internal/provenance"
	"infera/internal/rag"
	"infera/internal/sandbox"
	"infera/internal/script"
	"infera/internal/sqldb"
	"infera/internal/stage"
	"infera/internal/telemetry"
	"infera/internal/tools"
)

// Config configures an Assistant.
type Config struct {
	// EnsembleDir is the root of a generated ensemble (hacc.Generate).
	EnsembleDir string
	// Catalog reuses an already-loaded ensemble catalog — it is read-only
	// after load, so a serving layer pooling many Assistants over one
	// ensemble loads it once and shares it. Nil loads EnsembleDir.
	Catalog *hacc.Catalog
	// WorkDir holds staging databases and provenance sessions; a temp dir
	// is created when empty.
	WorkDir string
	// Model is the language model; defaults to llm.NewSim with Seed.
	Model llm.Client
	// Seed seeds the default simulated model.
	Seed int64
	// Feedback enables the human-in-the-loop hooks; nil runs automated.
	Feedback agent.Feedback
	// TrimHistory applies the supervisor-context token optimization.
	TrimHistory bool
	// SkipDocumentation drops the documentation agent's summary (§4.1.4).
	SkipDocumentation bool
	// UseServer executes sandbox code over a loopback HTTP server instead
	// of in-process, exercising the full §3.2 isolation boundary.
	UseServer bool
	// ScriptLimits budgets every sandboxed script execution (fuel, memory,
	// wall clock, artifact bytes, stdout lines). The zero value runs
	// unrestricted; daemons default it to sandbox.DefaultLimits via flags.
	ScriptLimits sandbox.Limits
	// ScriptBackend selects the script engine: sandbox.BackendVM (default
	// when empty) or sandbox.BackendTreeWalk.
	ScriptBackend string
	// Stage is the staging cache raw snapshot decodes are shared through;
	// nil uses the process-wide stage.Shared() cache. Set an isolated cache
	// in tests or benchmarks that assert on cache counters.
	Stage *stage.Cache
	// DurableStaging writes each question's staging database through to
	// disk as it is built (sqldb.Create) instead of the default zero-copy
	// in-memory staging (sqldb.CreateStaged, which never touches disk —
	// the session DB is normally reclaimed right after the answer). Set it
	// when the staging DBs themselves are the product to inspect post hoc;
	// the serving layer wires it to its keep-staging-DBs switch.
	DurableStaging bool
	// MaxRevisions caps QA-guided retries per step (default 5).
	MaxRevisions int
	// Logf receives progress lines when set.
	Logf func(format string, args ...any)
	// Metrics, when set, receives per-phase ask span histograms and SQL
	// query timings for every question. Nil records nothing.
	Metrics *telemetry.Registry
	// MetricLabels are attached to every series this assistant records;
	// the serving layer sets ensemble=<shard> here.
	MetricLabels []telemetry.Label
}

// Assistant answers questions over one ensemble. It is safe for concurrent
// use: Ask may be called from multiple goroutines, each call running against
// its own session, staging database and sandbox runner. The shared pieces —
// catalog, retrieval index, script registry — are read-only after New, and
// session-ID/workdir allocation is guarded by mu.
type Assistant struct {
	cfg      Config
	catalog  *hacc.Catalog
	model    llm.Client
	store    *provenance.Store
	retr     *rag.Retriever
	registry script.Registry
	server   *sandbox.Server
	workDir  string

	mu     sync.Mutex
	nextID int
}

// New opens the ensemble and prepares the assistant.
func New(cfg Config) (*Assistant, error) {
	cat := cfg.Catalog
	if cat == nil {
		var err error
		cat, err = hacc.Load(cfg.EnsembleDir)
		if err != nil {
			return nil, err
		}
	}
	workDir := cfg.WorkDir
	if workDir == "" {
		var err error
		workDir, err = os.MkdirTemp("", "infera-work-*")
		if err != nil {
			return nil, err
		}
	}
	store, err := provenance.NewStore(filepath.Join(workDir, "sessions"))
	if err != nil {
		return nil, err
	}
	model := cfg.Model
	if model == nil {
		model = llm.NewSim(llm.SimConfig{Seed: cfg.Seed})
	}
	reg := script.DefaultRegistry()
	tools.Register(reg, cat, cfg.Stage)

	// Teach the staging cache this ensemble's access pattern: after one
	// timestep of a (run, type) series is staged, the next timestep's file
	// is the likely follow-up, so the cache's prefetcher can pull the same
	// column set into its disk tier ahead of the request. Re-registering
	// the same catalog root is idempotent.
	sc := cfg.Stage
	if sc == nil {
		sc = stage.Shared()
	}
	sc.RegisterNeighbors(cat.Dir, nextStepNeighbors(cat))

	a := &Assistant{
		cfg:      cfg,
		catalog:  cat,
		model:    model,
		store:    store,
		retr:     rag.NewRetriever(rag.BuildHACCIndex()),
		registry: reg,
		workDir:  workDir,
	}
	if cfg.UseServer {
		srv := sandbox.NewServer(a.newExecutor())
		if err := srv.Start(); err != nil {
			return nil, fmt.Errorf("core: start sandbox server: %w", err)
		}
		a.server = srv
	}
	return a, nil
}

// nextStepNeighbors precomputes the catalog's successor map: each data
// file's absolute path maps to the file of the same (run, type) at the
// next recorded timestep. Per-run files (step < 0, e.g. merger trees)
// have no successor. The closure is read-only after build, so it is safe
// for the cache to call from background goroutines.
func nextStepNeighbors(cat *hacc.Catalog) func(path string) []string {
	type series struct {
		run  int
		typ  string
	}
	bySeries := map[series][]hacc.FileEntry{}
	for _, f := range cat.Files {
		if f.Step < 0 {
			continue
		}
		k := series{run: f.Run, typ: f.Type}
		bySeries[k] = append(bySeries[k], f)
	}
	next := make(map[string][]string, len(cat.Files))
	for _, files := range bySeries {
		sort.Slice(files, func(i, j int) bool { return files[i].Step < files[j].Step })
		for i := 0; i+1 < len(files); i++ {
			next[cat.AbsPath(files[i])] = []string{cat.AbsPath(files[i+1])}
		}
	}
	return func(path string) []string { return next[path] }
}

// newExecutor builds a budgeted sandbox executor with the assistant's
// registry, limits, backend choice and metric sink.
func (a *Assistant) newExecutor() *sandbox.Executor {
	return &sandbox.Executor{
		Registry:     a.registry,
		Limits:       a.cfg.ScriptLimits,
		Backend:      a.cfg.ScriptBackend,
		Metrics:      a.cfg.Metrics,
		MetricLabels: a.cfg.MetricLabels,
	}
}

// Close releases the sandbox server, if any.
func (a *Assistant) Close() error {
	if a.server != nil {
		return a.server.Close()
	}
	return nil
}

// Catalog exposes the loaded ensemble catalog.
func (a *Assistant) Catalog() *hacc.Catalog { return a.catalog }

// WorkDir returns the directory holding staging databases and sessions.
func (a *Assistant) WorkDir() string { return a.workDir }

// RemoveStagingDB deletes the staging database created for sessionID —
// scratch space once the answer is computed, which a serving layer
// reclaims to keep disk usage bounded. The provenance trail is unaffected.
func (a *Assistant) RemoveStagingDB(sessionID string) error {
	return os.RemoveAll(filepath.Join(a.workDir, "db", sessionID))
}

// Model exposes the configured language model.
func (a *Assistant) Model() llm.Client { return a.model }

// Store exposes the provenance store for session inspection and branching.
func (a *Assistant) Store() *provenance.Store { return a.store }

// Answer is the outcome of one question.
type Answer struct {
	*agent.Result
	SessionID string
	// DBBytes is the staging database size — the storage-overhead
	// numerator of §4.1.3.
	DBBytes int64
	// ProvenanceBytes is the artifact trail size.
	ProvenanceBytes int64
	// SourceBytes is the ensemble size (the overhead denominator).
	SourceBytes int64
}

// StorageOverheadFraction returns (DB + provenance) / source size.
func (ans *Answer) StorageOverheadFraction() float64 {
	if ans.SourceBytes == 0 {
		return 0
	}
	return float64(ans.DBBytes+ans.ProvenanceBytes) / float64(ans.SourceBytes)
}

// VerifySession re-hashes every artifact of a session against its
// manifest, returning the entries that fail — the reproducibility audit of
// §4.2.1. An empty slice means the trail is intact.
func (a *Assistant) VerifySession(sessionID string) ([]provenance.Entry, error) {
	sess, err := a.store.OpenSession(sessionID)
	if err != nil {
		return nil, err
	}
	return sess.Verify()
}

// BranchSession copies a session's artifact trail up to and including
// sequence number upTo into a new session, so alternative follow-up steps
// can explore from an established processing stage without recomputation
// (the workflow-branching feature of §4.2.1). It returns the new session
// ID.
func (a *Assistant) BranchSession(sessionID string, upTo int) (string, error) {
	src, err := a.store.OpenSession(sessionID)
	if err != nil {
		return "", err
	}
	newID := fmt.Sprintf("%s-branch-%d", sessionID, upTo)
	if _, err := a.store.Branch(src, newID, upTo); err != nil {
		return "", err
	}
	return newID, nil
}

// AskOptions customizes a single question without reconfiguring the
// Assistant — the per-request knobs the serving layer needs.
type AskOptions struct {
	// Model overrides the Assistant's model for this question only (e.g. a
	// per-request seed). Nil uses the configured model.
	Model llm.Client
	// SessionID names the provenance session explicitly. Empty allocates
	// the next sequential "session-NNN" ID.
	SessionID string
	// Feedback overrides the Assistant's feedback hook for this question
	// only (e.g. a channel-backed approval gate for an interactive session).
	// Nil keeps the configured hook.
	Feedback agent.Feedback
	// Events, when set, receives the run's typed lifecycle event stream
	// (plan_proposed ... answer). The caller owns the log's lifetime; the
	// workflow only appends.
	Events *agent.EventLog
}

// Ask runs the full workflow for one question. The returned error is
// non-nil when the run terminated before completing its plan; the Answer
// still carries partial state, usage and provenance.
func (a *Assistant) Ask(question string) (*Answer, error) {
	return a.AskWith(question, AskOptions{})
}

// allocSessionID hands out the next sequential session ID under the lock;
// concurrent Asks therefore never collide on session directories or
// staging-database paths, which are both derived from it.
func (a *Assistant) allocSessionID() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextID++
	return fmt.Sprintf("session-%03d", a.nextID)
}

// AskWith runs the full workflow for one question with per-request options.
// It is safe to call concurrently: every invocation gets its own provenance
// session, staging database directory and sandbox runner.
func (a *Assistant) AskWith(question string, opts AskOptions) (*Answer, error) {
	sessionID := opts.SessionID
	if sessionID == "" {
		sessionID = a.allocSessionID()
	}
	sess, err := a.store.NewSession(sessionID)
	if err != nil {
		return nil, err
	}
	dbDir := filepath.Join(a.workDir, "db", sessionID)
	// Staged by default: the session DB ingests cached snapshot frames by
	// reference (no per-cell copy, no eager encode+write) and is usually
	// reclaimed right after the answer, so it never has to touch disk.
	create := sqldb.CreateStaged
	if a.cfg.DurableStaging {
		create = sqldb.Create
	}
	db, err := create(dbDir)
	if err != nil {
		return nil, err
	}
	db.SetMetrics(a.cfg.Metrics, a.cfg.MetricLabels...)

	var runner sandbox.Runner
	if a.server != nil {
		runner = sandbox.NewClient(a.server.Addr())
	} else {
		runner = a.newExecutor()
	}

	model := opts.Model
	if model == nil {
		model = a.model
	}
	feedback := opts.Feedback
	if feedback == nil {
		feedback = a.cfg.Feedback
	}
	rt := &agent.Runtime{
		Model:             model,
		Catalog:           a.catalog,
		DB:                db,
		Sandbox:           runner,
		Session:           sess,
		Retriever:         a.retr,
		Stage:             a.cfg.Stage,
		Events:            opts.Events,
		Feedback:          feedback,
		MaxRevisions:      a.cfg.MaxRevisions,
		TrimHistory:       a.cfg.TrimHistory,
		SkipDocumentation: a.cfg.SkipDocumentation,
		Logf:              a.cfg.Logf,
		Metrics:           a.cfg.Metrics,
		MetricLabels:      a.cfg.MetricLabels,
	}
	res, runErr := agent.Run(rt, question)
	ans := &Answer{
		Result:          res,
		SessionID:       sessionID,
		DBBytes:         db.SizeBytes(),
		ProvenanceBytes: sess.SizeBytes(),
		SourceBytes:     a.catalog.TotalBytes(),
	}
	return ans, runErr
}
