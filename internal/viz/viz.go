// Package viz renders analysis results to inspectable artifacts: 2-D plots
// as standalone SVG documents (the Matplotlib stand-in) and 3-D halo/galaxy
// scenes as VTK legacy-ASCII polydata files consumable by ParaView — the
// two visualization backends of the paper's workflow.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// PlotKind enumerates supported chart types.
type PlotKind string

// Supported chart kinds.
const (
	Line    PlotKind = "line"
	Scatter PlotKind = "scatter"
	Hist    PlotKind = "hist"
)

// Series is one named data series.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// PlotSpec describes a 2-D chart.
type PlotSpec struct {
	Kind   PlotKind
	Title  string
	XLabel string
	YLabel string
	Series []Series
	LogY   bool
	// Highlight marks point indices of series 0 to emphasize (drawn larger
	// in a distinct color), used by "highlight the top N" requests.
	Highlight []int
}

// Validate reports structural problems (empty series, length mismatches,
// unsupported kinds) before rendering; the evaluation judge calls this to
// score "valid code that would generate valid visualizations".
func (s *PlotSpec) Validate() error {
	switch s.Kind {
	case Line, Scatter, Hist:
	default:
		return fmt.Errorf("viz: unsupported plot kind %q", s.Kind)
	}
	if len(s.Series) == 0 {
		return fmt.Errorf("viz: plot %q has no series", s.Title)
	}
	for _, ser := range s.Series {
		if len(ser.X) == 0 {
			return fmt.Errorf("viz: series %q is empty", ser.Name)
		}
		if len(ser.X) != len(ser.Y) {
			return fmt.Errorf("viz: series %q has %d x values and %d y values", ser.Name, len(ser.X), len(ser.Y))
		}
	}
	return nil
}

var palette = []string{"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f"}

const (
	width   = 720.0
	height  = 480.0
	marginL = 70.0
	marginR = 20.0
	marginT = 40.0
	marginB = 50.0
)

// RenderSVG renders the spec as a self-contained SVG document.
func RenderSVG(s *PlotSpec) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, ser := range s.Series {
		for i := range ser.X {
			x, y := ser.X[i], ser.Y[i]
			if s.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX > maxX {
		return nil, fmt.Errorf("viz: no finite data points in plot %q", s.Title)
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}
	sx := func(x float64) float64 {
		return marginL + (x-minX)/(maxX-minX)*(width-marginL-marginR)
	}
	sy := func(y float64) float64 {
		if s.LogY {
			y = math.Log10(math.Max(y, 1e-300))
		}
		return height - marginB - (y-minY)/(maxY-minY)*(height-marginT-marginB)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n", width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginL, marginT, marginL, height-marginB)
	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%g" y="24" text-anchor="middle" font-size="16">%s</text>`+"\n", width/2, escape(s.Title))
	fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle" font-size="12">%s</text>`+"\n", width/2, height-12, escape(s.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" text-anchor="middle" font-size="12" transform="rotate(-90 16 %g)">%s</text>`+"\n", height/2, height/2, escape(ylabel(s)))
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		fy := minY + (maxY-minY)*float64(i)/4
		px := sx(fx)
		py := height - marginB - (fy-minY)/(maxY-minY)*(height-marginT-marginB)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", px, height-marginB, px, height-marginB+5)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle" font-size="10">%s</text>`+"\n", px, height-marginB+18, fmtTick(fx))
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginL-5, py, marginL, py)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end" font-size="10">%s</text>`+"\n", marginL-8, py+4, fmtTick(fy))
	}

	highlight := map[int]bool{}
	for _, h := range s.Highlight {
		highlight[h] = true
	}

	for si, ser := range s.Series {
		color := palette[si%len(palette)]
		switch s.Kind {
		case Line:
			var pts []string
			type pair struct{ x, y float64 }
			ordered := make([]pair, 0, len(ser.X))
			for i := range ser.X {
				if math.IsNaN(ser.X[i]) || math.IsNaN(ser.Y[i]) || (s.LogY && ser.Y[i] <= 0) {
					continue
				}
				ordered = append(ordered, pair{ser.X[i], ser.Y[i]})
			}
			sort.Slice(ordered, func(a, b int) bool { return ordered[a].x < ordered[b].x })
			for _, p := range ordered {
				pts = append(pts, fmt.Sprintf("%.2f,%.2f", sx(p.x), sy(p.y)))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", strings.Join(pts, " "), color)
		case Scatter:
			for i := range ser.X {
				if math.IsNaN(ser.X[i]) || math.IsNaN(ser.Y[i]) || (s.LogY && ser.Y[i] <= 0) {
					continue
				}
				r, fill := 2.5, color
				if si == 0 && highlight[i] {
					r, fill = 5.0, "#d62728"
				}
				fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="%g" fill="%s" fill-opacity="0.7"/>`+"\n", sx(ser.X[i]), sy(ser.Y[i]), r, fill)
			}
		case Hist:
			// X are bin centers, Y are counts; bars span bin width.
			barW := (width - marginL - marginR) / float64(len(ser.X)) * 0.9
			for i := range ser.X {
				x := sx(ser.X[i])
				y := sy(ser.Y[i])
				fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="0.8"/>`+"\n",
					x-barW/2, y, barW, height-marginB-y, color)
			}
		}
		// Legend.
		if ser.Name != "" {
			lx := width - marginR - 150
			ly := marginT + 16*float64(si)
			fmt.Fprintf(&b, `<rect x="%g" y="%g" width="10" height="10" fill="%s"/>`+"\n", lx, ly, color)
			fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="11">%s</text>`+"\n", lx+14, ly+9, escape(ser.Name))
		}
	}
	b.WriteString("</svg>\n")
	return []byte(b.String()), nil
}

func ylabel(s *PlotSpec) string {
	if s.LogY {
		return "log10 " + s.YLabel
	}
	return s.YLabel
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	if av != 0 && (av >= 1e5 || av < 1e-3) {
		return fmt.Sprintf("%.2g", v)
	}
	return strings.TrimSuffix(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Point3 is one point of a 3-D scene with a scalar attribute and a
// highlight flag (highlighted points get scalar value 1 in the "highlight"
// array, which ParaView can color red).
type Point3 struct {
	X, Y, Z   float64
	Scalar    float64 // e.g. halo mass
	Highlight bool
}

// WriteVTK renders points as a VTK legacy-ASCII polydata file with two
// point-data arrays: "scalar" and "highlight". This is the Fig. 5 artifact
// (target halo highlighted among neighbours).
func WriteVTK(title string, points []Point3) []byte {
	var b strings.Builder
	b.WriteString("# vtk DataFile Version 3.0\n")
	b.WriteString(strings.ReplaceAll(title, "\n", " ") + "\n")
	b.WriteString("ASCII\nDATASET POLYDATA\n")
	fmt.Fprintf(&b, "POINTS %d float\n", len(points))
	for _, p := range points {
		fmt.Fprintf(&b, "%.6f %.6f %.6f\n", p.X, p.Y, p.Z)
	}
	fmt.Fprintf(&b, "VERTICES %d %d\n", len(points), 2*len(points))
	for i := range points {
		fmt.Fprintf(&b, "1 %d\n", i)
	}
	fmt.Fprintf(&b, "POINT_DATA %d\n", len(points))
	b.WriteString("SCALARS scalar float 1\nLOOKUP_TABLE default\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%.6g\n", p.Scalar)
	}
	b.WriteString("SCALARS highlight float 1\nLOOKUP_TABLE default\n")
	for _, p := range points {
		if p.Highlight {
			b.WriteString("1\n")
		} else {
			b.WriteString("0\n")
		}
	}
	return []byte(b.String())
}
