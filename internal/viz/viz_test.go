package viz

import (
	"math"
	"strings"
	"testing"
)

func linePlot() *PlotSpec {
	return &PlotSpec{
		Kind:   Line,
		Title:  "halo mass vs step",
		XLabel: "step",
		YLabel: "mass",
		Series: []Series{
			{Name: "sim 0", X: []float64{1, 2, 3}, Y: []float64{10, 20, 15}},
			{Name: "sim 1", X: []float64{1, 2, 3}, Y: []float64{12, 18, 22}},
		},
	}
}

func TestRenderLineSVG(t *testing.T) {
	svg, err := RenderSVG(linePlot())
	if err != nil {
		t.Fatal(err)
	}
	s := string(svg)
	for _, want := range []string{"<svg", "polyline", "halo mass vs step", "sim 0", "sim 1", "</svg>"} {
		if !strings.Contains(s, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if got := strings.Count(s, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
}

func TestRenderScatterWithHighlight(t *testing.T) {
	spec := &PlotSpec{
		Kind: Scatter, Title: "umap", XLabel: "x", YLabel: "y",
		Series:    []Series{{X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}}},
		Highlight: []int{0, 1},
	}
	svg, err := RenderSVG(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := string(svg)
	if got := strings.Count(s, "<circle"); got != 4 {
		t.Errorf("circles = %d", got)
	}
	if got := strings.Count(s, "#d62728"); got != 2 {
		t.Errorf("highlighted = %d, want 2", got)
	}
}

func TestRenderHist(t *testing.T) {
	spec := &PlotSpec{
		Kind: Hist, Title: "mass function", XLabel: "mass", YLabel: "count",
		Series: []Series{{X: []float64{1, 2, 3}, Y: []float64{5, 2, 1}}},
	}
	svg, err := RenderSVG(spec)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(svg), "<rect") < 4 { // background + 3 bars
		t.Error("missing histogram bars")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []*PlotSpec{
		{Kind: "pie", Series: []Series{{X: []float64{1}, Y: []float64{1}}}},
		{Kind: Line},
		{Kind: Line, Series: []Series{{X: []float64{}, Y: []float64{}}}},
		{Kind: Line, Series: []Series{{X: []float64{1, 2}, Y: []float64{1}}}},
	}
	for i, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestRenderAllNaNFails(t *testing.T) {
	spec := &PlotSpec{
		Kind:   Line,
		Series: []Series{{X: []float64{math.NaN()}, Y: []float64{math.NaN()}}},
	}
	if _, err := RenderSVG(spec); err == nil {
		t.Error("all-NaN plot should fail")
	}
}

func TestLogYSkipsNonPositive(t *testing.T) {
	spec := &PlotSpec{
		Kind: Scatter, LogY: true, YLabel: "mass",
		Series: []Series{{X: []float64{1, 2, 3}, Y: []float64{-5, 0, 100}}},
	}
	svg, err := RenderSVG(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(svg), "<circle"); got != 1 {
		t.Errorf("log-y scatter drew %d points, want 1", got)
	}
	if !strings.Contains(string(svg), "log10 mass") {
		t.Error("log axis label missing")
	}
}

func TestEscape(t *testing.T) {
	spec := linePlot()
	spec.Title = `<script>"x" & y</script>`
	svg, err := RenderSVG(spec)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(svg), "<script>") {
		t.Error("title not escaped")
	}
}

func TestWriteVTK(t *testing.T) {
	pts := []Point3{
		{X: 1, Y: 2, Z: 3, Scalar: 1e14, Highlight: true},
		{X: 4, Y: 5, Z: 6, Scalar: 5e13},
	}
	vtk := string(WriteVTK("target halo and neighbours", pts))
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DATASET POLYDATA",
		"POINTS 2 float",
		"VERTICES 2 4",
		"POINT_DATA 2",
		"SCALARS scalar float 1",
		"SCALARS highlight float 1",
	} {
		if !strings.Contains(vtk, want) {
			t.Errorf("vtk missing %q", want)
		}
	}
	// Highlight array: exactly one 1 and one 0 after its header.
	idx := strings.Index(vtk, "SCALARS highlight")
	tail := vtk[idx:]
	if !strings.Contains(tail, "1\n") || !strings.Contains(tail, "0\n") {
		t.Error("highlight values wrong")
	}
}
