package service

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// CachedFingerprint must serve from the memo inside the TTL, re-walk after
// expiry, and honor explicit invalidation.
func TestCachedFingerprintTTL(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.bin"), []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	const ttl = 80 * time.Millisecond

	fp1, err := CachedFingerprint(dir, ttl)
	if err != nil {
		t.Fatal(err)
	}
	// Change the dir: inside the TTL the memoized value must still serve.
	if err := os.WriteFile(filepath.Join(dir, "b.bin"), []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	fp2, err := CachedFingerprint(dir, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if fp2 != fp1 {
		t.Fatal("memoized fingerprint must serve inside the TTL")
	}
	// After expiry the change is seen.
	time.Sleep(ttl + 20*time.Millisecond)
	fp3, err := CachedFingerprint(dir, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Fatal("expired memo must re-walk and see the change")
	}
	// Explicit invalidation skips the wait.
	if err := os.WriteFile(filepath.Join(dir, "c.bin"), []byte("three"), 0o644); err != nil {
		t.Fatal(err)
	}
	InvalidateFingerprint(dir)
	fp4, err := CachedFingerprint(dir, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if fp4 == fp3 {
		t.Fatal("InvalidateFingerprint must force a re-walk")
	}
	// The direct walk agrees with the memoized value.
	direct, err := Fingerprint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if direct != fp4 {
		t.Fatalf("memo %s != direct %s", fp4, direct)
	}
}

// Concurrent lookups after invalidation single-flight into one walk and
// all agree (-race covers the memo's locking).
func TestCachedFingerprintConcurrent(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.bin"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	InvalidateFingerprint(dir)
	const n = 16
	out := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fp, err := CachedFingerprint(dir, time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			out[i] = fp
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if out[i] != out[0] {
			t.Fatalf("divergent fingerprints: %q vs %q", out[i], out[0])
		}
	}
	// Errors are not memoized: a missing dir fails every time.
	if _, err := CachedFingerprint(filepath.Join(dir, "missing"), time.Second); err == nil {
		t.Fatal("want error for missing dir")
	}
}
