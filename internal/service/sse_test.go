package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"infera/internal/agent"
)

// sseConn is a raw server-sent-events reader, deliberately independent of
// internal/client so these tests exercise the wire format itself.
type sseConn struct {
	resp *http.Response
	br   *bufio.Reader
}

func openSSE(t *testing.T, base, eid, id string, lastEventID int) *sseConn {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/ensembles/"+eid+"/sessions/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastEventID))
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("events stream: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	return &sseConn{resp: resp, br: bufio.NewReader(resp.Body)}
}

// next reads one SSE frame; done reports the terminal sentinel.
func (c *sseConn) next(t *testing.T) (ev agent.Event, done bool) {
	t.Helper()
	var kind string
	var data []byte
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			t.Fatalf("sse read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if kind == "done" {
				return agent.Event{}, true
			}
			if len(data) == 0 {
				kind = ""
				continue
			}
			if err := json.Unmarshal(data, &ev); err != nil {
				t.Fatalf("sse frame %q: %v", data, err)
			}
			if string(ev.Kind) != kind {
				t.Fatalf("frame type %q != payload kind %q", kind, ev.Kind)
			}
			return ev, false
		case strings.HasPrefix(line, "event: "):
			kind = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):]...)
		}
	}
}

func (c *sseConn) close() { c.resp.Body.Close() }

func postJSON(t *testing.T, url string, body any, into any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func startInteractive(t *testing.T, base, eid, question string, seed int64) SessionInfo {
	t.Helper()
	var info SessionInfo
	code := postJSON(t, base+"/v1/ensembles/"+eid+"/ask",
		AskRequest{Question: question, Seed: seed, Interactive: true}, &info)
	if code != http.StatusAccepted || info.ID == "" || !info.Interactive {
		t.Fatalf("interactive ask: code=%d info=%+v", code, info)
	}
	return info
}

func submitPlan(t *testing.T, base, eid, id string, d agent.PlanDecision) int {
	t.Helper()
	return postJSON(t, fmt.Sprintf("%s/v1/ensembles/%s/sessions/%s/plan", base, eid, id), d, nil)
}

// TestHTTPInteractiveSSEResume is the acceptance + resume check: an HTTP
// client starts an interactive ask, receives plan_proposed over SSE, kills
// the connection mid-plan, reconnects with Last-Event-ID, POSTs a
// revision, receives plan_revised, approves, and streams step events
// through to the terminal answer — with no event lost or duplicated across
// the reconnect — while sibling interactive sessions run and approve
// concurrently. Run under -race.
func TestHTTPInteractiveSSEResume(t *testing.T) {
	_, base := startServer(t, Config{Workers: 4, QueueDepth: 16, ApprovalTimeout: 60 * time.Second})

	// Sibling sessions on the same shard: start, approve over the long-poll
	// fallback, drain to completion — concurrency on the approval gate and
	// the event logs while the main session does the kill/resume dance.
	const siblings = 3
	var wg sync.WaitGroup
	for i := 0; i < siblings; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info := startInteractive(t, base, "default", topHalosQ, int64(i)+2)
			after, approved, done := 0, false, false
			deadline := time.Now().Add(120 * time.Second)
			for !done {
				if time.Now().After(deadline) {
					t.Errorf("sibling %d: never finished", i)
					return
				}
				var page EventsPage
				url := fmt.Sprintf("%s/v1/ensembles/default/sessions/%s/events?after=%d&wait=2s", base, info.ID, after)
				if code := getJSON(t, url, &page); code != http.StatusOK {
					t.Errorf("sibling %d: poll code %d", i, code)
					return
				}
				after = page.After
				done = page.Done
				for _, ev := range page.Events {
					if !approved && (ev.Kind == agent.EventPlanProposed || ev.Kind == agent.EventPlanRevised) {
						if code := submitPlan(t, base, "default", info.ID, agent.PlanDecision{Approve: true}); code != http.StatusOK && code != http.StatusConflict {
							t.Errorf("sibling %d: approve code %d", i, code)
							return
						}
						approved = true
					}
				}
			}
			var res AskResult
			if code := getJSON(t, fmt.Sprintf("%s/v1/ensembles/default/sessions/%s/result", base, info.ID), &res); code != http.StatusOK || res.Rows != 20 {
				t.Errorf("sibling %d: result code=%d res=%+v", i, code, &res)
			}
		}(i)
	}

	// Main session: SSE with a mid-plan reconnect.
	info := startInteractive(t, base, "default", topHalosQ, 1)
	conn := openSSE(t, base, "default", info.ID, 0)
	var seqs []int
	var kinds []agent.EventKind
	// The stream opens with queue_position frames (one on enqueue, more as
	// the queue drains) and then plan_proposed; consume up to it.
	var first agent.Event
	for {
		ev, done := conn.next(t)
		if done {
			t.Fatalf("stream ended before plan_proposed: %v", kinds)
		}
		seqs = append(seqs, ev.Seq)
		kinds = append(kinds, ev.Kind)
		if ev.Kind == agent.EventQueuePosition {
			if ev.Position < 1 {
				t.Fatalf("queue_position frame with position %d: %+v", ev.Position, ev)
			}
			continue
		}
		if ev.Kind != agent.EventPlanProposed || ev.Plan == nil || len(ev.Plan.Steps) == 0 {
			t.Fatalf("expected plan_proposed frame, got %+v", ev)
		}
		first = ev
		break
	}
	// Kill the connection mid-plan, before any decision.
	conn.close()

	// Reconnect with Last-Event-ID and drive the session to completion.
	conn2 := openSSE(t, base, "default", info.ID, first.Seq)
	if code := submitPlan(t, base, "default", info.ID, agent.PlanDecision{Approve: false, Comment: "also include halo mass"}); code != http.StatusOK {
		t.Fatalf("revise code = %d", code)
	}
	approved := false
	for {
		ev, done := conn2.next(t)
		if done {
			break
		}
		seqs = append(seqs, ev.Seq)
		kinds = append(kinds, ev.Kind)
		if ev.Kind == agent.EventPlanRevised && !approved {
			if code := submitPlan(t, base, "default", info.ID, agent.PlanDecision{Approve: true}); code != http.StatusOK {
				t.Fatalf("approve code = %d", code)
			}
			approved = true
		}
	}
	conn2.close()

	// No event lost, none duplicated: the union of both connections is
	// exactly 1..N.
	for i, seq := range seqs {
		if seq != i+1 {
			t.Fatalf("event %d has seq %d — lost or duplicated across resume: %v", i, seq, seqs)
		}
	}
	var sawRevised, sawStart, sawFinish, sawQA, sawAnswer bool
	for _, k := range kinds {
		switch k {
		case agent.EventPlanRevised:
			sawRevised = true
		case agent.EventStepStarted:
			sawStart = true
		case agent.EventStepFinished:
			sawFinish = true
		case agent.EventQAVerdict:
			sawQA = true
		case agent.EventAnswer:
			sawAnswer = true
		}
	}
	if !sawRevised || !sawStart || !sawFinish || !sawQA || !sawAnswer {
		t.Fatalf("lifecycle incomplete: revised=%v start=%v finish=%v qa=%v answer=%v (%v)",
			sawRevised, sawStart, sawFinish, sawQA, sawAnswer, kinds)
	}
	if kinds[len(kinds)-1] != agent.EventAnswer {
		t.Fatalf("stream must end with answer, got %v", kinds[len(kinds)-1])
	}

	var res AskResult
	if code := getJSON(t, fmt.Sprintf("%s/v1/ensembles/default/sessions/%s/result", base, info.ID), &res); code != http.StatusOK {
		t.Fatalf("result code = %d", code)
	}
	if res.Error != "" || res.Rows != 20 || res.Cached {
		t.Fatalf("result = %+v", &res)
	}
	// The session record reflects two plan rounds (proposed + revised).
	var rec SessionInfo
	if code := getJSON(t, fmt.Sprintf("%s/v1/ensembles/default/sessions/%s", base, info.ID), &rec); code != http.StatusOK || rec.Status != "done" || !rec.Interactive {
		t.Fatalf("record = %d %+v", code, rec)
	}

	wg.Wait()

	// Long-poll after completion returns the full page immediately, done.
	var page EventsPage
	if code := getJSON(t, fmt.Sprintf("%s/v1/ensembles/default/sessions/%s/events?after=0&wait=0s", base, info.ID), &page); code != http.StatusOK {
		t.Fatalf("replay poll code = %d", code)
	}
	if !page.Done || len(page.Events) != len(seqs) {
		t.Fatalf("replay = done=%v %d events, want %d", page.Done, len(page.Events), len(seqs))
	}
}

// TestHTTPEventsErrors: bad session IDs and non-interactive records map to
// proper statuses on the event/plan/result sub-resources.
func TestHTTPEventsErrors(t *testing.T) {
	_, base := startServer(t, Config{Workers: 1})

	// Unknown session.
	resp, err := http.Get(base + "/v1/ensembles/default/sessions/q-9999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown events code = %d", resp.StatusCode)
	}

	// A blocking ask's record has no event log: 409.
	res, code := postAsk(t, base, AskRequest{Question: topHalosQ})
	if code != http.StatusOK {
		t.Fatal("seed ask failed")
	}
	for _, sub := range []string{"events", "result"} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/ensembles/default/sessions/%s/%s", base, res.RequestID, sub))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s on non-interactive = %d, want 409", sub, resp.StatusCode)
		}
	}
	if code := submitPlan(t, base, "default", res.RequestID, agent.PlanDecision{Approve: true}); code != http.StatusConflict {
		t.Fatalf("plan on non-interactive = %d, want 409", code)
	}
}

// TestHTTPShardAdmin covers the registry satellites over the wire:
// per-shard overrides on POST /v1/ensembles, POST .../warm and
// DELETE /v1/ensembles/{eid} with provenance purge.
func TestHTTPShardAdmin(t *testing.T) {
	cfg := Config{Workers: 2, NewModel: errFreeModel, Seed: 1}
	dir := testEnsemble(t)
	work := t.TempDir()
	reg := NewRegistry(RegistryConfig{Defaults: cfg, WorkDir: work})
	if _, err := reg.Register("default", dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	srv := NewServer(reg)
	if err := srv.Start(""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	base := "http://" + srv.Addr()

	// Register with per-shard overrides of the daemon defaults.
	var created ShardInfo
	code := postJSON(t, base+"/v1/ensembles",
		RegisterRequest{Name: "tuned", Dir: testEnsembleSeeded(t, 7), Workers: 1, CacheCapacity: 2}, &created)
	if code != http.StatusCreated || created.Overrides == nil || created.Overrides.Workers != 1 || created.Overrides.CacheSize != 2 {
		t.Fatalf("register with overrides: %d %+v", code, created)
	}

	// Warm spins the pool up with the overrides applied, before any ask.
	var warmed ShardInfo
	if code := postJSON(t, base+"/v1/ensembles/tuned/warm", nil, &warmed); code != http.StatusOK {
		t.Fatalf("warm code = %d", code)
	}
	if warmed.State != "live" || warmed.Workers != 1 || warmed.Opens != 1 || warmed.Fingerprint == "" {
		t.Fatalf("warmed = %+v", warmed)
	}

	// The warm pool serves the first ask without a spin-up (Opens stays 1).
	var res AskResult
	if code := postJSON(t, base+"/v1/ensembles/tuned/ask", AskRequest{Question: topHalosQ}, &res); code != http.StatusOK || res.Error != "" {
		t.Fatalf("tuned ask: %d %+v", code, &res)
	}
	var detail ShardInfo
	if code := getJSON(t, base+"/v1/ensembles/tuned", &detail); code != http.StatusOK || detail.Opens != 1 {
		t.Fatalf("post-warm detail = %d %+v", code, detail)
	}

	// DELETE unregisters, closing the live shard; its work dir persists
	// without purge.
	tunedWork := filepath.Join(work, "shards", "tuned")
	doDelete := func(path string) int {
		req, err := http.NewRequest(http.MethodDelete, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := doDelete("/v1/ensembles/tuned"); code != http.StatusNoContent {
		t.Fatalf("delete code = %d", code)
	}
	if _, err := os.Stat(tunedWork); err != nil {
		t.Fatalf("work dir must survive an unpurged delete: %v", err)
	}
	var list []ShardInfo
	if code := getJSON(t, base+"/v1/ensembles", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("post-delete list = %d %+v", code, list)
	}
	if code := doDelete("/v1/ensembles/tuned"); code != http.StatusNotFound {
		t.Fatalf("double delete code = %d", code)
	}

	// Re-register and purge: the on-disk trail goes too.
	if code := postJSON(t, base+"/v1/ensembles", RegisterRequest{Name: "tuned", Dir: testEnsembleSeeded(t, 7)}, nil); code != http.StatusCreated {
		t.Fatalf("re-register code = %d", code)
	}
	if code := postJSON(t, base+"/v1/ensembles/tuned/ask", AskRequest{Question: topHalosQ}, nil); code != http.StatusOK {
		t.Fatalf("re-register ask code = %d", code)
	}
	if code := doDelete("/v1/ensembles/tuned?purge=provenance"); code != http.StatusNoContent {
		t.Fatalf("purge delete code = %d", code)
	}
	if _, err := os.Stat(tunedWork); !os.IsNotExist(err) {
		t.Fatalf("purged work dir still present: %v", err)
	}

	// Deleting the default shard promotes the remaining one for the legacy
	// flat routes — covered here by deleting "default" and hitting /metrics.
	if code := postJSON(t, base+"/v1/ensembles", RegisterRequest{Name: "backup", Dir: dir}, nil); code != http.StatusCreated {
		t.Fatalf("backup register code = %d", code)
	}
	if code := doDelete("/v1/ensembles/default"); code != http.StatusNoContent {
		t.Fatalf("delete default code = %d", code)
	}
	var m Metrics
	if code := getJSON(t, base+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("legacy metrics after default delete = %d (promotion failed?)", code)
	}
}
