package service

import "testing"

func TestNormalizeQuestion(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Top 20 largest halos?", "top 20 largest halos"},
		{"  top 20   LARGEST halos ", "top 20 largest halos"},
		{"top 20 largest halos!!", "top 20 largest halos"},
		{"plot mass (fof_halo_mass) over time", "plot mass (fof_halo_mass) over time"},
	}
	for _, c := range cases {
		if got := NormalizeQuestion(c.in); got != c.want {
			t.Errorf("NormalizeQuestion(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func key(q string) CacheKey { return CacheKey{Fingerprint: "fp", Question: q, Seed: 1} }

func TestCacheHitMissEviction(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put(key("a"), &AskResult{SessionID: "a"})
	c.Put(key("b"), &AskResult{SessionID: "b"})
	if got, ok := c.Get(key("a")); !ok || got.SessionID != "a" {
		t.Fatalf("get a = %v %v", got, ok)
	}
	// "b" is now LRU; inserting "c" evicts it.
	c.Put(key("c"), &AskResult{SessionID: "c"})
	if _, ok := c.Get(key("b")); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get(key("a")); !ok {
		t.Fatal("a should have survived eviction")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 1 || st.Len != 2 || st.Cap != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	c := NewCache(8)
	c.Put(CacheKey{Fingerprint: "fp1", Question: "q", Seed: 1}, &AskResult{SessionID: "s1"})
	// Different fingerprint, question or seed must all miss.
	for _, k := range []CacheKey{
		{Fingerprint: "fp2", Question: "q", Seed: 1},
		{Fingerprint: "fp1", Question: "q2", Seed: 1},
		{Fingerprint: "fp1", Question: "q", Seed: 2},
	} {
		if _, ok := c.Get(k); ok {
			t.Errorf("key %+v should miss", k)
		}
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCache(2)
	c.Put(key("a"), &AskResult{SessionID: "a1"})
	c.Put(key("a"), &AskResult{SessionID: "a2"})
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if got, _ := c.Get(key("a")); got.SessionID != "a2" {
		t.Errorf("refresh lost: %v", got)
	}
}
