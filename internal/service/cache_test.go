package service

import "testing"

func TestNormalizeQuestion(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Top 20 largest halos?", "top 20 largest halos"},
		{"  top 20   LARGEST halos ", "top 20 largest halos"},
		{"top 20 largest halos!!", "top 20 largest halos"},
		{"plot mass (fof_halo_mass) over time", "plot mass (fof_halo_mass) over time"},
	}
	for _, c := range cases {
		if got := NormalizeQuestion(c.in); got != c.want {
			t.Errorf("NormalizeQuestion(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func key(q string) CacheKey { return CacheKey{Fingerprint: "fp", Question: q, Seed: 1} }

func TestCacheHitMissEviction(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put(key("a"), &AskResult{SessionID: "a"})
	c.Put(key("b"), &AskResult{SessionID: "b"})
	if got, ok := c.Get(key("a")); !ok || got.SessionID != "a" {
		t.Fatalf("get a = %v %v", got, ok)
	}
	// "b" is now LRU; inserting "c" evicts it.
	c.Put(key("c"), &AskResult{SessionID: "c"})
	if _, ok := c.Get(key("b")); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get(key("a")); !ok {
		t.Fatal("a should have survived eviction")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 1 || st.Len != 2 || st.Cap != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	c := NewCache(8)
	c.Put(CacheKey{Fingerprint: "fp1", Question: "q", Seed: 1}, &AskResult{SessionID: "s1"})
	// Different fingerprint, question or seed must all miss.
	for _, k := range []CacheKey{
		{Fingerprint: "fp2", Question: "q", Seed: 1},
		{Fingerprint: "fp1", Question: "q2", Seed: 1},
		{Fingerprint: "fp1", Question: "q", Seed: 2},
	} {
		if _, ok := c.Get(k); ok {
			t.Errorf("key %+v should miss", k)
		}
	}
}

func TestCacheSnapshotRestore(t *testing.T) {
	c := NewCache(4)
	c.Put(key("a"), &AskResult{SessionID: "a"})
	c.Put(key("b"), &AskResult{SessionID: "b"})
	c.Put(key("c"), &AskResult{SessionID: "c"})
	c.Get(key("a")) // recency: a, c, b

	snap := c.Snapshot()
	if len(snap) != 3 || snap[0].Result.SessionID != "a" || snap[2].Result.SessionID != "b" {
		t.Fatalf("snapshot order = %v", snap)
	}

	// Restore into a fresh cache preserves recency: with capacity 2, the MRU
	// two entries survive and the LRU one is evicted.
	small := NewCache(2)
	if kept := small.Restore(snap, nil); kept != 3 {
		t.Fatalf("kept = %d, want 3 inserted", kept)
	}
	if _, ok := small.Get(key("a")); !ok {
		t.Error("MRU entry a should survive restore into a smaller cache")
	}
	if _, ok := small.Get(key("b")); ok {
		t.Error("LRU entry b should be evicted on restore into a smaller cache")
	}

	// The keep filter drops entries (the fingerprint re-validation hook).
	filtered := NewCache(4)
	kept := filtered.Restore(snap, func(k CacheKey) bool { return k.Question != "b" })
	if kept != 2 || filtered.Len() != 2 {
		t.Fatalf("filtered restore kept %d (len %d), want 2", kept, filtered.Len())
	}
	if _, ok := filtered.Get(key("b")); ok {
		t.Error("filtered entry must not be restored")
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCache(2)
	c.Put(key("a"), &AskResult{SessionID: "a1"})
	c.Put(key("a"), &AskResult{SessionID: "a2"})
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if got, _ := c.Get(key("a")); got.SessionID != "a2" {
		t.Errorf("refresh lost: %v", got)
	}
}
