package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"infera/internal/agent"
	"infera/internal/hacc"
	"infera/internal/provenance"
	"infera/internal/stage"
	"infera/internal/telemetry"
)

// Registry multiplexes many named ensemble shards through one process: each
// shard is an independent Service (assistant pool + answer cache +
// fingerprint memo) over its own ensemble directory, while every shard
// shares one staging cache so overlapping decodes dedupe across ensembles
// too. Shards spin up lazily on first request, and an LRU idle policy
// closes the coldest idle shard whenever the live count exceeds
// MaxLiveShards — closing drains the pool and persists the answer cache to
// the shard's WorkDir (persist.go), so a revived shard keeps its on-disk
// provenance and its hit rate. The versioned /v1/ensembles HTTP API
// (http.go) is a thin layer over this type.
type Registry struct {
	cfg      RegistryConfig
	workRoot string

	mu          sync.Mutex
	closed      bool
	shards      map[string]*shard
	defaultName string
	opens       int64
	evictions   int64
	// retired accumulates the final counters of every closed shard
	// incarnation, so aggregate metrics survive eviction/revival cycles.
	retired ShardTotals

	started time.Time
}

// RegistryConfig configures a Registry.
type RegistryConfig struct {
	// Defaults is the Config template every shard starts from. EnsembleDir
	// and WorkDir are managed per shard; a nil Stage is replaced by the
	// process-wide stage.Shared() cache so all shards share decodes.
	Defaults Config
	// WorkDir is the root under which each shard gets
	// WorkDir/shards/<name>; a temp root is created when empty (provenance
	// and persisted caches then survive shard close/reopen, but not process
	// exit in any discoverable place).
	WorkDir string
	// MaxLiveShards bounds concurrently open shards; opening one more
	// closes the least-recently-used idle shard. Default
	// DefaultMaxLiveShards. Shards with requests in flight are never
	// closed, so a burst across many shards can briefly overshoot.
	MaxLiveShards int
	// Logf receives progress lines when set (also forwarded to shards that
	// don't set their own).
	Logf func(format string, args ...any)
	// NodeID names this process in a fleet — surfaced in the /healthz
	// detail and in the router's fleet status. Empty is fine for
	// single-node daemons.
	NodeID string
	// MaxConcurrentAsks, when positive, caps ask execution concurrency
	// across ALL shards in this process: one semaphore is shared by every
	// shard's worker pool (Config.AskSlots), so the per-shard Workers
	// setting governs queue ownership while this governs how many asks a
	// node actually executes at once.
	MaxConcurrentAsks int
}

// DefaultMaxLiveShards is the live-shard budget when RegistryConfig leaves
// MaxLiveShards unset.
const DefaultMaxLiveShards = 4

// Errors returned by Registry methods.
var (
	ErrUnknownEnsemble = errors.New("service: unknown ensemble")
	ErrEnsembleExists  = errors.New("service: ensemble name already registered to a different directory")
	ErrBadEnsembleName = errors.New("service: ensemble name must be non-empty [a-zA-Z0-9._-] and not start with '.'")
	ErrRegistryClosed  = errors.New("service: registry closed")
	ErrShardCold       = errors.New("service: shard is cold (no live session state)")
)

// ShardOptions are per-shard overrides of the registry-wide defaults,
// applied at every spin-up of the shard's Service.
type ShardOptions struct {
	// Workers overrides the assistant-pool size (0 keeps the default).
	Workers int `json:"workers,omitempty"`
	// CacheSize overrides the answer-cache capacity (0 keeps the default).
	// The wire name matches RegisterRequest's cache_capacity so the echoed
	// overrides object round-trips back into a register payload.
	CacheSize int `json:"cache_capacity,omitempty"`
	// ScriptFuel / ScriptMemBytes / ScriptTimeoutMS override the shard's
	// sandbox execution budgets (0 keeps the registry default) — a shard
	// serving a huge ensemble can buy its scripts more fuel without
	// loosening the whole fleet.
	ScriptFuel      int64 `json:"script_fuel,omitempty"`
	ScriptMemBytes  int64 `json:"script_mem_bytes,omitempty"`
	ScriptTimeoutMS int64 `json:"script_timeout_ms,omitempty"`
}

// shard is one registered ensemble. Fields below the comment are guarded by
// Registry.mu; open/close work happens outside the lock, serialized by the
// opening/closing channels (waiters block on them and retry).
type shard struct {
	name    string
	dir     string
	workDir string
	opts    ShardOptions

	// guarded by Registry.mu:
	svc        *Service
	opening    chan struct{}
	closing    chan struct{}
	refs       int
	registered time.Time
	lastUsed   time.Time
	opens      int64
	lastFP     string
	lastFPAt   time.Time
	// coldEntries/coldSavedAt describe the persisted cache while svc == nil.
	coldEntries int
	coldSavedAt time.Time
}

// ShardInfo is the wire form of one shard's state — the GET
// /v1/ensembles[/{eid}] payload.
type ShardInfo struct {
	Name string `json:"name"`
	Dir  string `json:"dir"`
	// State is "live" (assistant pool open) or "cold" (registered; spins up
	// on the next ask).
	State      string    `json:"state"`
	Default    bool      `json:"default,omitempty"`
	Registered time.Time `json:"registered"`
	LastUsed   time.Time `json:"last_used"`
	// Opens counts spin-ups: 0 = never asked, >1 = revived after eviction.
	Opens    int64 `json:"opens"`
	InFlight int   `json:"in_flight"`
	// Workers is the live assistant-pool size (0 when cold).
	Workers int `json:"workers,omitempty"`
	// CacheEntries is the live answer-cache length, or for cold shards the
	// entry count of the persisted cache.json awaiting revival.
	CacheEntries int `json:"cache_entries"`
	// Fingerprint is the last resolved ensemble fingerprint and
	// FingerprintAge how long ago it was resolved (stale data detection for
	// operators; cold shards report their close-time values).
	Fingerprint    string        `json:"fingerprint,omitempty"`
	FingerprintAge time.Duration `json:"fingerprint_age_ns,omitempty"`
	// Overrides echoes the shard's per-shard worker/cache overrides, if any.
	Overrides *ShardOptions `json:"overrides,omitempty"`
	// PendingApprovals counts live interactive sessions blocked on a plan
	// decision (0 when cold).
	PendingApprovals int `json:"pending_approvals,omitempty"`
}

// ShardTotals are the per-shard counters that aggregate across the fleet.
type ShardTotals struct {
	Queued      int64 `json:"queued_total"`
	Completed   int64 `json:"completed_total"`
	Failed      int64 `json:"failed_total"`
	Rejected    int64 `json:"rejected_total"`
	CachedTotal int64 `json:"cached_total"`
	Interactive int64 `json:"interactive_total"`
	Tokens      int64 `json:"tokens_total"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
}

func (t *ShardTotals) add(m Metrics) {
	t.Queued += m.Queued
	t.Completed += m.Completed
	t.Failed += m.Failed
	t.Rejected += m.Rejected
	t.CachedTotal += m.CachedTotal
	t.Interactive += m.Interactive
	t.Tokens += m.Tokens
	t.CacheHits += m.Cache.Hits
	t.CacheMisses += m.Cache.Misses
}

// RegistryMetrics is the aggregate /v1/metrics snapshot: fleet shape plus
// lifetime counters summed over live shards and every retired shard
// incarnation.
type RegistryMetrics struct {
	Shards        int `json:"shards"`
	Live          int `json:"live"`
	Cold          int `json:"cold"`
	MaxLiveShards int `json:"max_live_shards"`
	// ShardOpens/ShardEvictions count pool spin-ups and idle-LRU closes.
	ShardOpens     int64 `json:"shard_opens"`
	ShardEvictions int64 `json:"shard_evictions"`
	ShardTotals
	// Stage reports the staging cache all shards share. Per-shard Metrics
	// snapshots mirror the SAME shared counters (see Metrics.Stage), so
	// the aggregate includes them exactly once here, at top level —
	// summing the per-shard copies would multi-count every hit, miss,
	// partial_hit and stat_save by the number of live shards.
	Stage stage.Stats `json:"stage"`
}

// NewRegistry returns an empty registry; add shards with Register.
// Telemetry defaults to the process-wide registry so a stock daemon's
// /v1/metrics/prometheus is populated without any wiring; set
// Defaults.Metrics explicitly to isolate (tests) — there is no way to
// disable recording, matching how Stage defaults to the shared cache.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.MaxLiveShards <= 0 {
		cfg.MaxLiveShards = DefaultMaxLiveShards
	}
	if cfg.Defaults.Stage == nil {
		cfg.Defaults.Stage = stage.Shared()
	}
	if cfg.Defaults.Metrics == nil {
		cfg.Defaults.Metrics = telemetry.Default()
	}
	cfg.Defaults.Stage.SetMetrics(cfg.Defaults.Metrics)
	if cfg.Defaults.Logf == nil {
		cfg.Defaults.Logf = cfg.Logf
	}
	if cfg.MaxConcurrentAsks > 0 && cfg.Defaults.AskSlots == nil {
		cfg.Defaults.AskSlots = make(chan struct{}, cfg.MaxConcurrentAsks)
	}
	return &Registry{cfg: cfg, shards: map[string]*shard{}, started: time.Now()}
}

// Telemetry exposes the registry all shards record into — the source the
// Prometheus endpoint encodes.
func (r *Registry) Telemetry() *telemetry.Registry {
	return r.cfg.Defaults.Metrics
}

// HealthInfo is the GET /healthz payload — cheap node detail a fleet
// router's prober reads on every probe, so it must stay lock-light.
type HealthInfo struct {
	Status string `json:"status"`
	// Node is this process's fleet identity (RegistryConfig.NodeID; empty
	// for single-node daemons).
	Node string `json:"node,omitempty"`
	// Shards / Live count registered and currently-open shards.
	Shards int `json:"shards"`
	Live   int `json:"live"`
	// UptimeSeconds since the registry was created.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// MaxConcurrentAsks echoes the node-level ask budget (0 = uncapped).
	MaxConcurrentAsks int `json:"max_concurrent_asks,omitempty"`
}

// Health snapshots node liveness detail for /healthz.
func (r *Registry) Health() HealthInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := HealthInfo{
		Status:            "ok",
		Node:              r.cfg.NodeID,
		Shards:            len(r.shards),
		UptimeSeconds:     time.Since(r.started).Seconds(),
		MaxConcurrentAsks: r.cfg.MaxConcurrentAsks,
	}
	for _, sh := range r.shards {
		if sh.svc != nil {
			h.Live++
		}
	}
	if r.closed {
		h.Status = "closing"
	}
	return h
}

func (r *Registry) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// ValidEnsembleName reports whether name is usable as a shard name (it
// appears in URL paths and directory names).
func ValidEnsembleName(name string) bool {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// Register adds a named ensemble shard with the registry-wide defaults.
// See RegisterWith.
func (r *Registry) Register(name, dir string) (ShardInfo, error) {
	return r.RegisterWith(name, dir, ShardOptions{})
}

// RegisterWith adds a named ensemble shard without opening it (shards spin
// up on first ask), with per-shard overrides of the registry defaults. The
// directory must hold a loadable ensemble catalog. Registering the same
// name+dir again is idempotent and updates the stored overrides — they
// apply at the shard's next spin-up, not retroactively to a live pool; the
// same name with a different dir fails with ErrEnsembleExists. The first
// registered shard becomes the default target of the legacy (unversioned)
// HTTP routes.
func (r *Registry) RegisterWith(name, dir string, opts ShardOptions) (ShardInfo, error) {
	if !ValidEnsembleName(name) {
		return ShardInfo{}, ErrBadEnsembleName
	}
	if opts.Workers < 0 || opts.CacheSize < 0 ||
		opts.ScriptFuel < 0 || opts.ScriptMemBytes < 0 || opts.ScriptTimeoutMS < 0 {
		return ShardInfo{}, fmt.Errorf("service: negative shard overrides: %+v", opts)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return ShardInfo{}, fmt.Errorf("service: resolve ensemble dir: %w", err)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ShardInfo{}, ErrRegistryClosed
	}
	if sh, ok := r.shards[name]; ok {
		if sh.dir != abs {
			return ShardInfo{}, fmt.Errorf("%w: %q -> %s", ErrEnsembleExists, name, sh.dir)
		}
		// Only explicit overrides replace the stored ones: a plain
		// re-Register (zero opts) must stay a true no-op, not silently wipe
		// an operator's earlier tuning.
		if opts != (ShardOptions{}) {
			sh.opts = opts
		}
		return r.infoLocked(sh), nil
	}
	// Validate now so POST /v1/ensembles rejects junk immediately rather
	// than failing the first ask: the catalog read is one small JSON file.
	if _, err := hacc.Load(abs); err != nil {
		return ShardInfo{}, fmt.Errorf("service: register %q: %w", name, err)
	}
	workDir, err := r.shardWorkDirLocked(name)
	if err != nil {
		return ShardInfo{}, err
	}
	sh := &shard{name: name, dir: abs, workDir: workDir, opts: opts, registered: time.Now()}
	// A cache persisted by a previous daemon run describes the cold shard
	// until its first spin-up revalidates it.
	if fi, ok := ReadCacheFileInfo(workDir); ok {
		sh.coldEntries, sh.coldSavedAt = fi.Entries, fi.SavedAt
		sh.lastFP, sh.lastFPAt = fi.Fingerprint, fi.SavedAt
	}
	r.shards[name] = sh
	if r.defaultName == "" {
		r.defaultName = name
	}
	r.logf("registry: registered ensemble %q -> %s", name, abs)
	return r.infoLocked(sh), nil
}

// shardWorkDirLocked resolves (creating parents) the stable per-shard work
// directory.
func (r *Registry) shardWorkDirLocked(name string) (string, error) {
	root := r.cfg.WorkDir
	if root == "" {
		if r.workRoot == "" {
			tmp, err := os.MkdirTemp("", "infera-registry-*")
			if err != nil {
				return "", err
			}
			r.workRoot = tmp
		}
		root = r.workRoot
	}
	dir := filepath.Join(root, "shards", name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return dir, nil
}

// DefaultShard returns the shard name legacy routes resolve to ("" before
// any Register).
func (r *Registry) DefaultShard() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.defaultName
}

// Ensembles lists every registered shard, sorted by name.
func (r *Registry) Ensembles() []ShardInfo {
	r.mu.Lock()
	shards := make([]*shard, 0, len(r.shards))
	for _, sh := range r.shards {
		shards = append(shards, sh)
	}
	r.mu.Unlock()
	out := make([]ShardInfo, 0, len(shards))
	for _, sh := range shards {
		r.refreshFingerprint(sh)
		r.mu.Lock()
		out = append(out, r.infoLocked(sh))
		r.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Ensemble returns one shard's state — the GET /v1/ensembles/{eid} detail.
func (r *Registry) Ensemble(name string) (ShardInfo, error) {
	r.mu.Lock()
	sh, ok := r.shards[name]
	r.mu.Unlock()
	if !ok {
		return ShardInfo{}, ErrUnknownEnsemble
	}
	r.refreshFingerprint(sh)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.infoLocked(sh), nil
}

// refreshFingerprint re-resolves a live shard's fingerprint OUTSIDE the
// registry lock — the memoized walk can stat a whole ensemble tree, and
// one slow directory must not stall routing for the fleet.
func (r *Registry) refreshFingerprint(sh *shard) {
	r.mu.Lock()
	svc := sh.svc
	r.mu.Unlock()
	if svc == nil {
		return
	}
	if fp, err := svc.fingerprint(); err == nil {
		r.mu.Lock()
		sh.lastFP, sh.lastFPAt = fp, time.Now()
		r.mu.Unlock()
	}
}

func (r *Registry) infoLocked(sh *shard) ShardInfo {
	info := ShardInfo{
		Name:       sh.name,
		Dir:        sh.dir,
		State:      "cold",
		Default:    sh.name == r.defaultName,
		Registered: sh.registered,
		LastUsed:   sh.lastUsed,
		Opens:      sh.opens,
		InFlight:   sh.refs,
	}
	if sh.svc != nil {
		info.State = "live"
		info.Workers = sh.svc.Workers()
		info.CacheEntries = sh.svc.CacheLen()
		info.PendingApprovals = sh.svc.PendingApprovals()
	} else {
		info.CacheEntries = sh.coldEntries
	}
	if sh.opts != (ShardOptions{}) {
		o := sh.opts
		info.Overrides = &o
	}
	info.Fingerprint = sh.lastFP
	if !sh.lastFPAt.IsZero() {
		info.FingerprintAge = time.Since(sh.lastFPAt)
	}
	return info
}

// acquire pins shard name live: it opens the shard if cold (waiting out any
// concurrent open/close of the same shard) and increments its in-flight
// count. Callers must release. Opening over budget schedules an LRU idle
// eviction, performed after the lock is dropped.
func (r *Registry) acquire(name string) (*shard, *Service, error) {
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return nil, nil, ErrRegistryClosed
		}
		sh, ok := r.shards[name]
		if !ok {
			r.mu.Unlock()
			return nil, nil, ErrUnknownEnsemble
		}
		if ch := sh.closing; ch != nil {
			r.mu.Unlock()
			<-ch
			continue
		}
		if sh.svc != nil {
			sh.refs++
			sh.lastUsed = time.Now()
			svc := sh.svc
			r.mu.Unlock()
			return sh, svc, nil
		}
		if ch := sh.opening; ch != nil {
			r.mu.Unlock()
			<-ch
			continue
		}
		// This request opens the shard.
		ch := make(chan struct{})
		sh.opening = ch
		r.mu.Unlock()

		svc, err := r.openShard(sh)
		var fp string
		if err == nil {
			// Resolve outside the lock: the first walk stats the whole tree.
			fp, _ = svc.fingerprint()
		}

		r.mu.Lock()
		sh.opening = nil
		if err != nil {
			r.mu.Unlock()
			close(ch)
			return nil, nil, err
		}
		sh.svc = svc
		sh.refs++
		sh.opens++
		r.opens++
		sh.lastUsed = time.Now()
		sh.coldEntries, sh.coldSavedAt = 0, time.Time{}
		if fp != "" {
			sh.lastFP, sh.lastFPAt = fp, time.Now()
		}
		victims := r.victimsLocked()
		r.mu.Unlock()
		close(ch)
		// Victims close in the background: their drain-and-persist must not
		// delay this request (the closing channel keeps revival correct —
		// an acquire of a closing shard waits for the persist to finish).
		for _, v := range victims {
			go r.closeShard(v, true)
		}
		return sh, svc, nil
	}
}

// openShard builds the shard's Service from the registry defaults. Called
// without the registry lock (pool construction stages nothing but does load
// the catalog and spawn workers).
func (r *Registry) openShard(sh *shard) (*Service, error) {
	cfg := r.cfg.Defaults
	cfg.EnsembleDir = sh.dir
	cfg.WorkDir = sh.workDir
	cfg.Name = sh.name
	if sh.opts.Workers > 0 {
		cfg.Workers = sh.opts.Workers
	}
	if sh.opts.CacheSize > 0 {
		cfg.CacheSize = sh.opts.CacheSize
	}
	if sh.opts.ScriptFuel > 0 {
		cfg.ScriptLimits.MaxFuel = sh.opts.ScriptFuel
	}
	if sh.opts.ScriptMemBytes > 0 {
		cfg.ScriptLimits.MaxMemBytes = sh.opts.ScriptMemBytes
	}
	if sh.opts.ScriptTimeoutMS > 0 {
		cfg.ScriptLimits.MaxWall = time.Duration(sh.opts.ScriptTimeoutMS) * time.Millisecond
	}
	svc, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("service: open shard %q: %w", sh.name, err)
	}
	r.logf("registry: shard %q live (%d workers, %d revived cache entries)",
		sh.name, svc.Workers(), svc.CacheLen())
	return svc, nil
}

// release unpins a shard and, now that a slot may have become idle,
// enforces the live budget. Evictions run in the background so the
// releasing request's response is never held back by another shard's
// shutdown I/O.
func (r *Registry) release(sh *shard) {
	r.mu.Lock()
	sh.refs--
	sh.lastUsed = time.Now()
	victims := r.victimsLocked()
	r.mu.Unlock()
	for _, v := range victims {
		go r.closeShard(v, true)
	}
}

// victimsLocked picks idle live shards to close, least recently used first,
// until the live count fits the budget. Shards with in-flight requests (or
// mid-open/close) are skipped — the budget can overshoot under a wide
// burst and recovers as requests release.
func (r *Registry) victimsLocked() []*shard {
	var victims []*shard
	live := 0
	for _, sh := range r.shards {
		// A shard mid-close is already leaving the live set.
		if sh.svc != nil && sh.closing == nil {
			live++
		}
	}
	for live > r.cfg.MaxLiveShards {
		var lru *shard
		for _, sh := range r.shards {
			if sh.svc == nil || sh.refs > 0 || sh.closing != nil || sh.opening != nil {
				continue
			}
			if lru == nil || sh.lastUsed.Before(lru.lastUsed) {
				lru = sh
			}
		}
		if lru == nil {
			break
		}
		// Mark closing and detach under the lock so concurrent acquires wait
		// on the channel instead of pinning a dying Service.
		lru.closing = make(chan struct{})
		victims = append(victims, lru)
		live--
	}
	return victims
}

// closeShard drains and closes a shard marked closing by victimsLocked (or
// by Close), persisting its answer cache and recording its final counters.
func (r *Registry) closeShard(sh *shard, evicted bool) {
	svc := sh.svc
	final := svc.Metrics()
	entries := svc.CacheLen()
	if err := svc.Close(); err != nil {
		r.logf("registry: close shard %q: %v", sh.name, err)
	}
	r.mu.Lock()
	sh.svc = nil
	ch := sh.closing
	sh.closing = nil
	sh.coldEntries = entries
	sh.coldSavedAt = time.Now()
	if final.Fingerprint != "" {
		sh.lastFP, sh.lastFPAt = final.Fingerprint, time.Now()
	}
	r.retired.add(final)
	if evicted {
		r.evictions++
	}
	r.mu.Unlock()
	close(ch)
	if evicted {
		r.logf("registry: shard %q closed (idle LRU, %d cache entries persisted)", sh.name, entries)
	}
}

// Ask routes one question to shard name, spinning the shard up if cold.
func (r *Registry) Ask(name string, req AskRequest) (*AskResult, error) {
	sh, svc, err := r.acquire(name)
	if err != nil {
		return nil, err
	}
	defer r.release(sh)
	return svc.Ask(req)
}

// resultGrace keeps an interactive session's shard pinned briefly after
// the worker finishes, so a client that drains the event stream and then
// fetches GET .../result never finds the shard (and the stored result)
// evicted in between.
const resultGrace = 30 * time.Second

// AskInteractive starts a streaming session on shard name, spinning the
// shard up if cold, and returns its session record immediately. The shard
// stays pinned (never idle-evicted) until the session's worker finishes
// plus resultGrace — an interactive session's event log, approval gate and
// stored result live in the shard's memory, so the pool must survive the
// review and the client's result fetch.
func (r *Registry) AskInteractive(name string, req AskRequest) (SessionInfo, error) {
	sh, svc, err := r.acquire(name)
	if err != nil {
		return SessionInfo{}, err
	}
	info, done, err := svc.AskInteractive(req)
	if err != nil {
		r.release(sh)
		return SessionInfo{}, err
	}
	go func() {
		<-done
		time.Sleep(resultGrace)
		r.release(sh)
	}()
	return info, nil
}

// CheckInteractive verifies session id exists as a streaming session on a
// live shard name, without copying any events — the cheap pre-stream
// existence check.
func (r *Registry) CheckInteractive(name, id string) error {
	sh, svc, err := r.pinLive(name)
	if err != nil {
		return err
	}
	defer r.release(sh)
	_, err = svc.lookupInteractive(id)
	return err
}

// Events returns shard name's session id events past after (see
// Service.Events). A cold shard has no live event logs: ErrShardCold.
func (r *Registry) Events(name, id string, after int) ([]agent.Event, bool, error) {
	sh, svc, err := r.pinLive(name)
	if err != nil {
		return nil, false, err
	}
	defer r.release(sh)
	return svc.Events(id, after)
}

// WaitEvents long-polls shard name's session id for events past after. The
// shard stays pinned for the duration of the wait, so a watched session's
// shard is never idle-evicted under it.
func (r *Registry) WaitEvents(ctx context.Context, name, id string, after int) ([]agent.Event, bool, error) {
	sh, svc, err := r.pinLive(name)
	if err != nil {
		return nil, false, err
	}
	defer r.release(sh)
	return svc.WaitEvents(ctx, id, after)
}

// SubmitPlan delivers a plan decision to shard name's session id.
func (r *Registry) SubmitPlan(name, id string, d agent.PlanDecision) error {
	sh, svc, err := r.pinLive(name)
	if err != nil {
		return err
	}
	defer r.release(sh)
	return svc.SubmitPlan(id, d)
}

// Result returns the stored final result of shard name's interactive
// session id (ErrNotFinished while the worker is still running).
func (r *Registry) Result(name, id string) (*AskResult, error) {
	sh, svc, err := r.pinLive(name)
	if err != nil {
		return nil, err
	}
	defer r.release(sh)
	return svc.Result(id)
}

// Warm spins shard name up ahead of a burst: the assistant pool opens (or
// is touched, if already live), the persisted answer cache revives, and
// the ensemble fingerprint resolves — so the first real question pays none
// of that latency. Returns the shard's post-warm state.
func (r *Registry) Warm(name string) (ShardInfo, error) {
	sh, _, err := r.acquire(name)
	if err != nil {
		return ShardInfo{}, err
	}
	defer r.release(sh)
	// acquire resolves the fingerprint on a cold open; refresh covers the
	// already-live case so Warm always returns a current value.
	r.refreshFingerprint(sh)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.infoLocked(sh), nil
}

// Unregister removes shard name from the registry, draining and closing it
// first if live (its answer cache persists as usual). With purge the
// shard's on-disk trail — provenance sessions, staging state and the
// persisted cache under its work directory — is removed too. Asks racing
// an Unregister either drain before the close or fail with
// ErrUnknownEnsemble after removal.
func (r *Registry) Unregister(name string, purge bool) error {
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return ErrRegistryClosed
		}
		sh, ok := r.shards[name]
		if !ok {
			r.mu.Unlock()
			return ErrUnknownEnsemble
		}
		if ch := sh.opening; ch != nil {
			r.mu.Unlock()
			<-ch
			continue
		}
		if ch := sh.closing; ch != nil {
			r.mu.Unlock()
			<-ch
			continue
		}
		if sh.svc != nil {
			sh.closing = make(chan struct{})
			r.mu.Unlock()
			r.closeShard(sh, false)
			continue // re-check: a racing ask may have reopened it
		}
		delete(r.shards, name)
		if r.defaultName == name {
			// Promote the lexicographically-first remaining shard so the
			// legacy flat routes keep a target.
			r.defaultName = ""
			for n := range r.shards {
				if r.defaultName == "" || n < r.defaultName {
					r.defaultName = n
				}
			}
		}
		// Purge under the lock: a re-Register of the same name recreates the
		// same work directory, and an async RemoveAll would race it and
		// delete the new shard's state. The dir is small (provenance trails
		// + cache.json) and unregister is a rare admin operation.
		var purgeErr error
		if purge {
			purgeErr = os.RemoveAll(sh.workDir)
		}
		r.mu.Unlock()
		r.logf("registry: unregistered ensemble %q (purge=%v)", name, purge)
		return purgeErr
	}
}

// pinLive pins shard name only if it is already live: the session and
// metrics read paths must not spin up (or keep hot) a pool just to report
// state. Cold shards have no in-memory session state — their records died
// with the pool; provenance remains on disk under the shard WorkDir.
func (r *Registry) pinLive(name string) (*shard, *Service, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, nil, ErrRegistryClosed
	}
	sh, ok := r.shards[name]
	if !ok {
		return nil, nil, ErrUnknownEnsemble
	}
	if sh.svc == nil || sh.closing != nil {
		return nil, nil, ErrShardCold
	}
	sh.refs++
	return sh, sh.svc, nil
}

// Sessions lists shard name's session records; a cold shard reports none.
func (r *Registry) Sessions(name string) ([]SessionInfo, error) {
	sh, svc, err := r.pinLive(name)
	if errors.Is(err, ErrShardCold) {
		return []SessionInfo{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer r.release(sh)
	return svc.Sessions(), nil
}

// Session returns one session record of shard name.
func (r *Registry) Session(name, id string) (SessionInfo, error) {
	sh, svc, err := r.pinLive(name)
	if err != nil {
		return SessionInfo{}, err
	}
	defer r.release(sh)
	info, ok := svc.Session(id)
	if !ok {
		return SessionInfo{}, fmt.Errorf("service: unknown session %q", id)
	}
	return info, nil
}

// Provenance returns the artifact manifest behind one session record of
// shard name.
func (r *Registry) Provenance(name, id string) ([]provenance.Entry, error) {
	sh, svc, err := r.pinLive(name)
	if err != nil {
		return nil, err
	}
	defer r.release(sh)
	return svc.Provenance(id)
}

// VerifySession re-hashes the artifact trail behind one session record of
// shard name, returning failing entries.
func (r *Registry) VerifySession(name, id string) ([]provenance.Entry, error) {
	sh, svc, err := r.pinLive(name)
	if err != nil {
		return nil, err
	}
	defer r.release(sh)
	return svc.VerifySession(id)
}

// ShardMetrics returns shard name's Metrics. A cold shard reports a stub:
// zero counters (they reset with the pool; lifetime totals live in the
// aggregate Metrics), the close-time fingerprint and the persisted cache
// length.
func (r *Registry) ShardMetrics(name string) (Metrics, error) {
	sh, svc, err := r.pinLive(name)
	if errors.Is(err, ErrShardCold) {
		r.mu.Lock()
		defer r.mu.Unlock()
		m := Metrics{Fingerprint: r.shards[name].lastFP}
		m.Cache.Len = r.shards[name].coldEntries
		m.Stage = r.cfg.Defaults.Stage.Stats()
		return m, nil
	}
	if err != nil {
		return Metrics{}, err
	}
	defer r.release(sh)
	return svc.Metrics(), nil
}

// Metrics returns the aggregate fleet snapshot.
func (r *Registry) Metrics() RegistryMetrics {
	r.mu.Lock()
	m := RegistryMetrics{
		Shards:         len(r.shards),
		MaxLiveShards:  r.cfg.MaxLiveShards,
		ShardOpens:     r.opens,
		ShardEvictions: r.evictions,
		ShardTotals:    r.retired,
	}
	var liveSvcs []*Service
	for _, sh := range r.shards {
		if sh.svc != nil {
			m.Live++
			liveSvcs = append(liveSvcs, sh.svc)
		} else {
			m.Cold++
		}
	}
	r.mu.Unlock()
	// Per-shard snapshots outside the registry lock: Metrics() resolves a
	// (memoized) fingerprint.
	for _, svc := range liveSvcs {
		m.ShardTotals.add(svc.Metrics())
	}
	m.Stage = r.cfg.Defaults.Stage.Stats()
	return m
}

// Close closes every live shard (persisting answer caches) and rejects
// further use. Waits out in-flight opens/closes; shards with requests in
// flight drain through Service.Close.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	for {
		r.mu.Lock()
		var target *shard
		var wait chan struct{}
		for _, sh := range r.shards {
			if sh.opening != nil {
				wait = sh.opening
				break
			}
			if sh.closing != nil {
				wait = sh.closing
				break
			}
			if sh.svc != nil && target == nil {
				target = sh
			}
		}
		if wait == nil && target != nil {
			target.closing = make(chan struct{})
		}
		r.mu.Unlock()
		if wait != nil {
			<-wait
			continue
		}
		if target == nil {
			return nil
		}
		r.closeShard(target, false)
	}
}
