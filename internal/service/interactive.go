package service

import (
	"context"
	"fmt"

	"infera/internal/agent"
	"infera/internal/llm"
)

// interactive is the server-side state of one streaming session: the event
// log consumers resume from, the channel-backed approval gate the planner
// blocks on, and the final result once the worker finishes. It lives in
// Service.interactive until the session record is trimmed.
type interactive struct {
	events   *agent.EventLog
	feedback *agent.AsyncFeedback
	done     chan struct{} // closed after result is stored and events closed
	result   *AskResult    // guarded by Service.mu
}

// AskInteractive runs one question as a streaming session: it enqueues the
// job and returns the session record immediately, with a channel that
// closes once the result is stored. Lifecycle events (plan_proposed ...
// answer) flow through Events/WaitEvents; plan decisions arrive through
// SubmitPlan, or the ApprovalTimeout auto-approves (the abandoned-session
// expiry). Interactive answers bypass the answer cache and single-flight
// coalescing — a reviewer may reshape the plan, so no two sessions are
// interchangeable.
func (s *Service) AskInteractive(req AskRequest) (SessionInfo, <-chan struct{}, error) {
	if req.Question == "" {
		return SessionInfo{}, nil, ErrEmptyQuestion
	}
	if req.Seed == 0 {
		req.Seed = s.cfg.Seed
	}
	info := s.newSessionRecord(req, "queued")
	ia := &interactive{
		events: agent.NewEventLog(s.cfg.EventBuffer),
		done:   make(chan struct{}),
	}
	ia.feedback = &agent.AsyncFeedback{
		AutoApprove: s.cfg.ApprovalTimeout,
		Hinter:      agent.AutoHinter{},
		// Surface the review window as a session status so operators (and
		// the registry) can see which sessions are blocked on a human.
		OnAwait:   func(llm.Plan) { s.markAwaiting(info, true) },
		OnResolve: func(bool) { s.markAwaiting(info, false) },
	}
	t := &task{info: info, req: req, done: make(chan *AskResult, 1), ia: ia}

	s.mu.Lock()
	if s.closed {
		s.m.Rejected++
		s.mu.Unlock()
		s.finishRecord(info, "rejected", 0, ErrClosed.Error())
		return SessionInfo{}, nil, ErrClosed
	}
	info.Interactive = true
	s.interactive[info.ID] = ia
	select {
	case s.queue <- t:
		s.m.Queued++
		s.m.Interactive++
		s.enqueuedLocked(t)
		// Snapshot under the lock: a worker may already be mutating info.
		snap := *info
		s.mu.Unlock()
		return snap, ia.done, nil
	default:
		delete(s.interactive, info.ID)
		// The record never became a streaming session: clear the flag so its
		// sub-resources answer "unknown/not interactive" consistently with
		// the rejected state instead of advertising an event log it lost.
		info.Interactive = false
		s.m.Rejected++
		s.mu.Unlock()
		s.finishRecord(info, "rejected", 0, ErrQueueFull.Error())
		return SessionInfo{}, nil, ErrQueueFull
	}
}

// lookupInteractive resolves a session-record ID to its interactive state.
func (s *Service) lookupInteractive(id string) (*interactive, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ia, ok := s.interactive[id]
	if !ok {
		if _, exists := s.sessions[id]; exists {
			return nil, fmt.Errorf("%w: %q", ErrNotInteractive, id)
		}
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	return ia, nil
}

// Events returns session id's retained events with Seq > after, plus
// whether the stream is complete (the terminal answer event has been
// appended and no more will arrive).
func (s *Service) Events(id string, after int) ([]agent.Event, bool, error) {
	ia, err := s.lookupInteractive(id)
	if err != nil {
		return nil, false, err
	}
	events, closed := ia.events.Since(after)
	return events, closed, nil
}

// WaitEvents blocks until session id has events past after, its stream
// completes, or ctx is done — the long-poll and SSE substrate.
func (s *Service) WaitEvents(ctx context.Context, id string, after int) ([]agent.Event, bool, error) {
	ia, err := s.lookupInteractive(id)
	if err != nil {
		return nil, false, err
	}
	return ia.events.Wait(ctx, after)
}

// SubmitPlan delivers a plan decision to session id's blocked review.
// agent.ErrNoPendingPlan reports that no plan is currently awaiting one
// (not proposed yet, already decided, or auto-approved by deadline).
func (s *Service) SubmitPlan(id string, d agent.PlanDecision) error {
	ia, err := s.lookupInteractive(id)
	if err != nil {
		return err
	}
	return ia.feedback.Submit(d)
}

// Result returns session id's final AskResult once the worker has stored
// it; before that it fails with ErrNotFinished.
func (s *Service) Result(id string) (*AskResult, error) {
	ia, err := s.lookupInteractive(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-ia.done:
	default:
		return nil, fmt.Errorf("%w: %q", ErrNotFinished, id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := *ia.result
	return &out, nil
}

// PendingApprovals gauges how many sessions are blocked in plan review.
func (s *Service) PendingApprovals() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingApprovals
}

// markAwaiting flips session id's status for the duration of one review
// window and maintains the pending gauge.
func (s *Service) markAwaiting(info *SessionInfo, awaiting bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if awaiting {
		info.Status = "awaiting_approval"
		s.pendingApprovals++
	} else {
		if info.Status == "awaiting_approval" {
			info.Status = "running"
		}
		s.pendingApprovals--
	}
	s.approvals.Set(int64(s.pendingApprovals))
}
