package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// Answer-cache persistence stub (ROADMAP "Answer-cache persistence"): a
// service whose WorkDir is stable serializes its LRU entries to
// WorkDir/cache.json on Close and reloads them on New, so daemon restarts
// and shard close/reopen cycles (registry.go) keep their hit rate. Entries
// are keyed by ensemble fingerprint, so reloading re-validates against the
// live directory and silently drops answers computed against stale data.

// CacheFileName is the answer-cache serialization file inside a service's
// WorkDir.
const CacheFileName = "cache.json"

// cacheFileVersion guards the on-disk schema; unknown versions are ignored
// rather than mis-parsed.
const cacheFileVersion = 1

// cacheFile is the on-disk form of a persisted answer cache.
type cacheFile struct {
	Version int `json:"version"`
	// Fingerprint is the ensemble fingerprint at save time (informational;
	// validation is per entry, since entries may span fingerprints).
	Fingerprint string           `json:"fingerprint,omitempty"`
	SavedAt     time.Time        `json:"saved_at"`
	Entries     []PersistedEntry `json:"entries"`
}

// SaveCacheFile snapshots c into dir/cache.json (atomically, via a rename).
// fingerprint annotates the file; it may be empty.
func SaveCacheFile(dir string, c *Cache, fingerprint string) error {
	f := cacheFile{
		Version:     cacheFileVersion,
		Fingerprint: fingerprint,
		SavedAt:     time.Now(),
		Entries:     c.Snapshot(),
	}
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return fmt.Errorf("service: marshal cache: %w", err)
	}
	tmp := filepath.Join(dir, CacheFileName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("service: write cache file: %w", err)
	}
	return os.Rename(tmp, filepath.Join(dir, CacheFileName))
}

// LoadCacheFile reads dir/cache.json. A missing file is not an error: it
// returns (nil, nil).
func LoadCacheFile(dir string) (*cacheFile, error) {
	data, err := os.ReadFile(filepath.Join(dir, CacheFileName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: read cache file: %w", err)
	}
	var f cacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("service: parse cache file: %w", err)
	}
	if f.Version != cacheFileVersion {
		return nil, nil
	}
	return &f, nil
}

// CacheFileInfo summarizes a persisted cache without loading it into an
// LRU — the registry uses it to describe cold shards.
type CacheFileInfo struct {
	Entries     int
	Fingerprint string
	SavedAt     time.Time
}

// ReadCacheFileInfo returns the persisted-cache summary for dir, or ok=false
// when no (readable, current-version) cache file exists.
func ReadCacheFileInfo(dir string) (CacheFileInfo, bool) {
	f, err := LoadCacheFile(dir)
	if err != nil || f == nil {
		return CacheFileInfo{}, false
	}
	return CacheFileInfo{Entries: len(f.Entries), Fingerprint: f.Fingerprint, SavedAt: f.SavedAt}, true
}

// persistCache serializes the answer cache to WorkDir/cache.json. No-op
// without a stable WorkDir (temp-dir services have nowhere durable to put
// it).
func (s *Service) persistCache() error {
	if s.cfg.WorkDir == "" {
		return nil
	}
	fp, _ := s.fingerprint()
	return SaveCacheFile(s.cfg.WorkDir, s.cache, fp)
}

// loadPersistedCache restores WorkDir/cache.json into the fresh cache,
// keeping only entries whose fingerprint matches the ensemble directory as
// it stands now — the re-validation step that makes a stale snapshot safe.
// It returns how many entries were revived.
func (s *Service) loadPersistedCache() int {
	if s.cfg.WorkDir == "" {
		return 0
	}
	f, err := LoadCacheFile(s.cfg.WorkDir)
	if err != nil {
		s.logf("service: ignoring persisted cache: %v", err)
		return 0
	}
	if f == nil || len(f.Entries) == 0 {
		return 0
	}
	// One uncached walk at open time: the TTL memo could hand back a
	// pre-restart fingerprint, and validation must see the directory as it
	// is now.
	fp, err := Fingerprint(s.cfg.EnsembleDir)
	if err != nil {
		return 0
	}
	kept := s.cache.Restore(f.Entries, func(k CacheKey) bool { return k.Fingerprint == fp })
	if kept > 0 {
		s.logf("service: revived %d/%d persisted cache entries", kept, len(f.Entries))
	}
	return kept
}
