package service

import (
	"errors"
	"sync"
	"testing"
	"time"

	"infera/internal/agent"
	"infera/internal/hacc"
	"infera/internal/stage"
)

// testRegistry builds a registry over an isolated staging cache with stable
// per-shard work dirs, registering one shard per (name, seed) pair.
func testRegistry(t *testing.T, maxLive int, shards map[string]int64) (*Registry, *stage.Cache) {
	t.Helper()
	st := stage.New(1<<30, 4)
	reg := NewRegistry(RegistryConfig{
		Defaults: Config{
			Workers:  2,
			Seed:     1,
			NewModel: errFreeModel,
			Stage:    st,
		},
		WorkDir:       t.TempDir(),
		MaxLiveShards: maxLive,
	})
	for name, seed := range shards {
		if _, err := reg.Register(name, testEnsembleSeeded(t, seed)); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { reg.Close() })
	return reg, st
}

func TestRegistryLazyOpenAndPerShardIsolation(t *testing.T) {
	reg, _ := testRegistry(t, 4, map[string]int64{"a": 3, "b": 11, "c": 19})

	// Nothing is live before the first question.
	for _, info := range reg.Ensembles() {
		if info.State != "cold" || info.Opens != 0 {
			t.Fatalf("pre-traffic shard = %+v", info)
		}
	}

	// The same question against each shard is three distinct computations
	// over three distinct ensembles.
	answers := map[string]*AskResult{}
	for _, name := range []string{"a", "b", "c"} {
		res, err := reg.Ask(name, AskRequest{Question: topHalosQ})
		if err != nil {
			t.Fatalf("ask %s: %v", name, err)
		}
		if res.Error != "" || res.Cached || res.Rows != 20 {
			t.Fatalf("ask %s = %+v", name, res)
		}
		answers[name] = res
	}
	if answers["a"].AnswerCSV == answers["b"].AnswerCSV || answers["b"].AnswerCSV == answers["c"].AnswerCSV {
		t.Fatal("shards answered from the same ensemble")
	}

	// Re-asking hits only the owning shard's cache.
	hit, err := reg.Ask("b", AskRequest{Question: topHalosQ})
	if err != nil || !hit.Cached || hit.SessionID != answers["b"].SessionID {
		t.Fatalf("shard-b re-ask = %+v (%v)", hit, err)
	}

	// Fingerprints are per shard and distinct.
	fps := map[string]bool{}
	for _, name := range []string{"a", "b", "c"} {
		m, err := reg.ShardMetrics(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Fingerprint == "" || fps[m.Fingerprint] {
			t.Fatalf("shard %s fingerprint %q not unique", name, m.Fingerprint)
		}
		fps[m.Fingerprint] = true
		if m.Completed != 1 {
			t.Errorf("shard %s completed = %d, want 1", name, m.Completed)
		}
	}

	// Aggregate metrics see the whole fleet.
	am := reg.Metrics()
	if am.Shards != 3 || am.Live != 3 || am.Cold != 0 || am.ShardOpens != 3 ||
		am.Completed != 3 || am.CachedTotal != 1 {
		t.Errorf("aggregate = %+v", am)
	}

	// Unknown shard fails typed.
	if _, err := reg.Ask("nope", AskRequest{Question: topHalosQ}); !errors.Is(err, ErrUnknownEnsemble) {
		t.Errorf("unknown shard err = %v", err)
	}
}

// TestRegistryConcurrentShardRouting is the -race satellite: >= 8 concurrent
// sessions spread over >= 3 shards, asserting per-shard cache/fingerprint
// isolation and that the staging cache is shared across shards — each
// underlying gio file still decodes exactly once process-wide.
func TestRegistryConcurrentShardRouting(t *testing.T) {
	names := []string{"a", "b", "c"}
	reg, st := testRegistry(t, 4, map[string]int64{"a": 3, "b": 11, "c": 19})

	// This question stages the halos table for all sims and steps; distinct
	// seeds within a shard force distinct workflow computations.
	const q = "Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?"
	const perShard = 3 // 9 concurrent sessions over 3 shards
	type slot struct {
		res *AskResult
		err error
	}
	results := make([]slot, len(names)*perShard)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := reg.Ask(names[i%len(names)], AskRequest{Question: q, Seed: int64(i/len(names)) + 1})
			results[i] = slot{res, err}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("ask %d: %v", i, r.err)
		}
		if r.res.Error != "" || r.res.Cached {
			t.Fatalf("ask %d = %+v", i, r.res)
		}
	}

	// Per-shard answer caches saw only their own traffic: each shard
	// computed exactly perShard times and was never polluted by another
	// shard's identical (question, seed) keys.
	fps := map[string]bool{}
	for _, name := range names {
		m, err := reg.ShardMetrics(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Completed != perShard || m.Cache.Misses != perShard || m.Cache.Hits != 0 {
			t.Fatalf("shard %s metrics = %+v, want %d isolated computations", name, m, perShard)
		}
		if fps[m.Fingerprint] {
			t.Fatalf("shard %s shares a fingerprint", name)
		}
		fps[m.Fingerprint] = true
	}

	// Stage-cache sharing across shards: every halo file of every ensemble
	// decoded exactly once, no matter how many sessions or shards staged it.
	var haloFiles int64
	for _, info := range reg.Ensembles() {
		cat, err := hacc.Load(info.Dir)
		if err != nil {
			t.Fatal(err)
		}
		haloFiles += int64(len(cat.FilesOf(-1, -1, hacc.FileHalos)))
	}
	stats := st.Stats()
	if stats.Opens != haloFiles {
		t.Fatalf("decode-once across shards: opens = %d, want %d (stats %+v)", stats.Opens, haloFiles, stats)
	}
	if stats.Hits == 0 {
		t.Fatal("concurrent sessions must share decodes")
	}
}

// waitShardState polls until shard name reaches the wanted state —
// evictions drain and persist in the background, off the request path.
func waitShardState(t *testing.T, reg *Registry, name, want string) ShardInfo {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		info, err := reg.Ensemble(name)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == want {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %s stuck in %q, want %q (%+v)", name, info.State, want, info)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRegistryEvictionAndRevival is the acceptance check for the live-shard
// budget: exceeding -max-live-shards closes the LRU idle shard (persisting
// its answer cache), and re-asking it revives the shard with its cache
// intact.
func TestRegistryEvictionAndRevival(t *testing.T) {
	reg, _ := testRegistry(t, 2, map[string]int64{"a": 3, "b": 11, "c": 19})

	resA, err := reg.Ask("a", AskRequest{Question: topHalosQ})
	if err != nil || resA.Error != "" {
		t.Fatalf("ask a: %v %+v", err, resA)
	}
	if _, err := reg.Ask("b", AskRequest{Question: topHalosQ}); err != nil {
		t.Fatal(err)
	}
	// Two live shards fill the budget; opening "c" must evict "a" (the
	// least recently used).
	if _, err := reg.Ask("c", AskRequest{Question: topHalosQ}); err != nil {
		t.Fatal(err)
	}

	info := waitShardState(t, reg, "a", "cold")
	if info.CacheEntries != 1 || info.Opens != 1 {
		t.Fatalf("evicted shard a = %+v", info)
	}
	for _, name := range []string{"b", "c"} {
		info, err := reg.Ensemble(name)
		if err != nil || info.State != "live" {
			t.Fatalf("shard %s = %+v (%v)", name, info, err)
		}
	}
	m := reg.Metrics()
	if m.Live != 2 || m.Cold != 1 || m.ShardEvictions != 1 {
		t.Fatalf("metrics after eviction = %+v", m)
	}
	// A cold shard has no live session state but stays inspectable.
	if sessions, err := reg.Sessions("a"); err != nil || len(sessions) != 0 {
		t.Fatalf("cold sessions = %v %v", sessions, err)
	}
	if _, err := reg.Provenance("a", resA.RequestID); !errors.Is(err, ErrShardCold) {
		t.Fatalf("cold provenance err = %v", err)
	}

	// Revival: asking "a" again reopens it (evicting the current LRU, "b")
	// and serves the original answer from the persisted cache.
	hit, err := reg.Ask("a", AskRequest{Question: topHalosQ})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.SessionID != resA.SessionID {
		t.Fatalf("revived shard should hit its persisted cache: %+v", hit)
	}
	// The revived hit's provenance resolves from the shard's on-disk trail,
	// which eviction preserved.
	if entries, err := reg.Provenance("a", hit.RequestID); err != nil || len(entries) == 0 {
		t.Fatalf("revived provenance: %v (%d entries)", err, len(entries))
	}
	info, err = reg.Ensemble("a")
	if err != nil || info.State != "live" || info.Opens != 2 {
		t.Fatalf("revived shard a = %+v (%v)", info, err)
	}
	if infoB := waitShardState(t, reg, "b", "cold"); infoB.Opens != 1 {
		t.Fatalf("LRU shard b should have been evicted: %+v", infoB)
	}

	// Lifetime aggregates survive the eviction/revival cycle: 3 computed
	// answers and 1 cache hit, even though two pools were torn down.
	m = reg.Metrics()
	if m.Completed != 3 || m.CachedTotal != 1 || m.ShardOpens != 4 || m.ShardEvictions != 2 {
		t.Fatalf("lifetime aggregate = %+v", m)
	}
}

// TestRegistryPersistenceAcrossRestart: a new registry over the same work
// root revives a shard's answer cache from disk — the daemon-restart story.
func TestRegistryPersistenceAcrossRestart(t *testing.T) {
	dir := testEnsemble(t)
	work := t.TempDir()
	build := func() *Registry {
		reg := NewRegistry(RegistryConfig{
			Defaults: Config{Workers: 1, Seed: 1, NewModel: errFreeModel},
			WorkDir:  work,
		})
		if _, err := reg.Register("default", dir); err != nil {
			t.Fatal(err)
		}
		return reg
	}

	first := build()
	res, err := first.Ask("default", AskRequest{Question: topHalosQ})
	if err != nil || res.Error != "" {
		t.Fatalf("ask: %v %+v", err, res)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second := build()
	defer second.Close()
	// Before any traffic, the cold shard already reports its persisted
	// cache and close-time fingerprint.
	info, err := second.Ensemble("default")
	if err != nil || info.State != "cold" || info.CacheEntries != 1 || info.Fingerprint == "" {
		t.Fatalf("restarted cold shard = %+v (%v)", info, err)
	}
	hit, err := second.Ask("default", AskRequest{Question: topHalosQ})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.SessionID != res.SessionID {
		t.Fatalf("restart should serve the persisted answer: %+v", hit)
	}
	if entries, err := second.Provenance("default", hit.RequestID); err != nil || len(entries) == 0 {
		t.Fatalf("provenance across restart: %v (%d entries)", err, len(entries))
	}
}

// TestRegistryInteractivePinning: a shard with an interactive session in
// flight stays pinned — sibling opens past the live budget must evict some
// other shard, never the one whose event log and approval gate are live.
func TestRegistryInteractivePinning(t *testing.T) {
	reg, _ := testRegistry(t, 1, map[string]int64{"a": 3, "b": 11})

	info, err := reg.AskInteractive("a", AskRequest{Question: topHalosQ, Interactive: true})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the plan is actually awaiting review.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := reg.SubmitPlan("a", info.ID, agent.PlanDecision{Approve: false, Comment: "hold"}); err == nil {
			break
		} else if !errors.Is(err, agent.ErrNoPendingPlan) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("plan never became pending")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Push the fleet past the budget of 1: shard a must survive because its
	// interactive session pins it.
	if _, err := reg.Ask("b", AskRequest{Question: topHalosQ}); err != nil {
		t.Fatal(err)
	}
	if i, err := reg.Ensemble("a"); err != nil || i.State != "live" {
		t.Fatalf("pinned shard a = %+v (%v)", i, err)
	}

	// Approve the (revised) plan and drain the session.
	for {
		if err := reg.SubmitPlan("a", info.ID, agent.PlanDecision{Approve: true}); err == nil {
			break
		} else if !errors.Is(err, agent.ErrNoPendingPlan) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("revised plan never became pending")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for {
		res, err := reg.Result("a", info.ID)
		if err == nil {
			if res.Error != "" || res.Rows != 20 {
				t.Fatalf("result = %+v", res)
			}
			break
		}
		if !errors.Is(err, ErrNotFinished) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("interactive session never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRegistryRegisterValidation(t *testing.T) {
	reg, _ := testRegistry(t, 2, nil)

	if _, err := reg.Register("ok name", t.TempDir()); !errors.Is(err, ErrBadEnsembleName) {
		t.Errorf("space in name err = %v", err)
	}
	if _, err := reg.Register("", t.TempDir()); !errors.Is(err, ErrBadEnsembleName) {
		t.Errorf("empty name err = %v", err)
	}
	// A directory without an ensemble catalog is rejected at register time.
	if _, err := reg.Register("empty", t.TempDir()); err == nil {
		t.Error("catalog-less dir should fail registration")
	}

	dir := testEnsemble(t)
	info, err := reg.Register("a", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Default {
		t.Error("first registered shard should be the default")
	}
	// Idempotent for the same dir, conflict for a different one.
	if again, err := reg.Register("a", dir); err != nil || again.Name != "a" {
		t.Errorf("idempotent re-register: %+v %v", again, err)
	}
	if _, err := reg.Register("a", testEnsemble(t)); !errors.Is(err, ErrEnsembleExists) {
		t.Errorf("conflicting re-register err = %v", err)
	}

	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("late", dir); !errors.Is(err, ErrRegistryClosed) {
		t.Errorf("register after close err = %v", err)
	}
	if _, err := reg.Ask("a", AskRequest{Question: topHalosQ}); !errors.Is(err, ErrRegistryClosed) {
		t.Errorf("ask after close err = %v", err)
	}
}
