package service

import (
	"container/list"
	"strings"
	"sync"
	"unicode"
)

// CacheKey identifies one answerable unit of work: the same question (after
// normalization) against the same ensemble state with the same model seed is
// the same computation, so its answer can be served from memory. The JSON
// tags are the on-disk form used by the cache persistence stub (persist.go).
type CacheKey struct {
	Fingerprint string `json:"fingerprint"`
	Question    string `json:"question"` // normalized
	Seed        int64  `json:"seed"`
}

// NormalizeQuestion canonicalizes a question for cache lookup: lower-cased,
// whitespace collapsed, trailing punctuation dropped. "Top 20 halos?" and
// "top 20  halos" hit the same entry.
func NormalizeQuestion(q string) string {
	q = strings.Join(strings.Fields(q), " ")
	q = strings.ToLower(q)
	return strings.TrimRightFunc(q, func(r rune) bool {
		return unicode.IsPunct(r) || unicode.IsSpace(r)
	})
}

// CacheStats are the cache's monotonic counters, surfaced on /metrics.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Len       int   `json:"len"`
	Cap       int   `json:"cap"`
}

// Cache is a bounded LRU over completed answers. All methods are safe for
// concurrent use.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[CacheKey]*list.Element
	stats CacheStats
}

type cacheEntry struct {
	key CacheKey
	val *AskResult
}

// NewCache returns an LRU holding at most capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, ll: list.New(), items: map[CacheKey]*list.Element{}}
}

// Get returns the cached result for key, marking it most recently used.
func (c *Cache) Get(key CacheKey) (*AskResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts or refreshes key, evicting the least recently used entry when
// over capacity.
func (c *Cache) Put(key CacheKey, val *AskResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// PersistedEntry is one cache entry in serializable form.
type PersistedEntry struct {
	Key    CacheKey   `json:"key"`
	Result *AskResult `json:"result"`
}

// Snapshot returns every entry most-recently-used first — the order Restore
// expects back.
func (c *Cache) Snapshot() []PersistedEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PersistedEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		out = append(out, PersistedEntry{Key: e.key, Result: e.val})
	}
	return out
}

// Restore loads entries (given MRU-first, as Snapshot produces) into the
// cache, skipping those keep rejects (nil keeps all) and any with a nil
// result. It preserves recency order and respects capacity, and returns how
// many entries were kept. Restored entries do not touch the hit/miss
// counters.
func (c *Cache) Restore(entries []PersistedEntry, keep func(CacheKey) bool) int {
	kept := 0
	// Insert LRU-first so Put's push-front leaves the MRU entry at the front.
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if e.Result == nil || (keep != nil && !keep(e.Key)) {
			continue
		}
		c.Put(e.Key, e.Result)
		kept++
	}
	return kept
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Len = c.ll.Len()
	st.Cap = c.cap
	return st
}
