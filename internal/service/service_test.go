package service

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"infera/internal/hacc"
	"infera/internal/llm"
	"infera/internal/stage"
)

func testEnsemble(t *testing.T) string {
	t.Helper()
	return testEnsembleSeeded(t, 3)
}

// testEnsembleSeeded generates a small ensemble whose data differs by seed,
// so multi-shard tests can tell answers from different ensembles apart.
func testEnsembleSeeded(t *testing.T, seed int64) string {
	t.Helper()
	dir := t.TempDir()
	spec := hacc.Spec{
		Runs:             2,
		Steps:            []int{99, 350, 498, 624},
		HalosPerRun:      100,
		ParticlesPerStep: 100,
		BoxSize:          128,
		Seed:             seed,
	}
	if _, err := hacc.Generate(dir, spec); err != nil {
		t.Fatal(err)
	}
	return dir
}

// errFreeModel keeps workflow runs deterministic for tests.
func errFreeModel(seed int64) llm.Client {
	return llm.NewSim(llm.SimConfig{Seed: seed, ColumnErrorRate: 1e-9, ToolErrorRate: 1e-9})
}

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.EnsembleDir == "" {
		cfg.EnsembleDir = testEnsemble(t)
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = t.TempDir()
	}
	if cfg.NewModel == nil {
		cfg.NewModel = errFreeModel
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

const topHalosQ = "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?"

func TestServiceAskAndCacheHit(t *testing.T) {
	svc := newService(t, Config{Workers: 1})

	first, err := svc.Ask(AskRequest{Question: topHalosQ})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Error != "" || first.Rows != 20 || first.AnswerCSV == "" {
		t.Fatalf("first = %+v", first)
	}
	if first.Tokens == 0 || first.PlanSteps == 0 || len(first.Artifacts) == 0 {
		t.Fatalf("first missing workflow metadata: %+v", first)
	}

	// A trivially different phrasing of the same question must hit.
	second, err := svc.Ask(AskRequest{Question: "  can you find me the TOP 20 largest friends-of-friends halos from timestep 498 in simulation 0  "})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatalf("second ask should be cached: %+v", second)
	}
	if second.SessionID != first.SessionID || second.AnswerCSV != first.AnswerCSV {
		t.Fatalf("cached answer diverged: %q vs %q", second.SessionID, first.SessionID)
	}
	if second.RequestID == first.RequestID {
		t.Fatal("cached request should get its own record ID")
	}

	// A different seed is a different computation.
	third, err := svc.Ask(AskRequest{Question: topHalosQ, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("different seed should miss the cache")
	}

	st := svc.Metrics()
	if st.Cache.Hits != 1 || st.Cache.Misses != 2 {
		t.Errorf("cache stats = %+v", st.Cache)
	}
	if st.Completed != 2 || st.CachedTotal != 1 || st.Failed != 0 {
		t.Errorf("metrics = %+v", st)
	}

	// Session records: done, cached (with source), done.
	sessions := svc.Sessions()
	if len(sessions) != 3 {
		t.Fatalf("sessions = %d", len(sessions))
	}
	if sessions[0].Status != "done" || sessions[1].Status != "cached" || sessions[2].Status != "done" {
		t.Errorf("statuses = %s %s %s", sessions[0].Status, sessions[1].Status, sessions[2].Status)
	}
	if sessions[1].SourceSession != first.SessionID {
		t.Errorf("cached record source = %q, want %q", sessions[1].SourceSession, first.SessionID)
	}

	// Provenance resolves for both the computed and the cached record, and
	// the cached record's trail is the original's.
	orig, err := svc.Provenance(first.RequestID)
	if err != nil || len(orig) == 0 {
		t.Fatalf("provenance(first): %v %d", err, len(orig))
	}
	viaCache, err := svc.Provenance(second.RequestID)
	if err != nil || len(viaCache) != len(orig) {
		t.Fatalf("provenance(cached): %v %d vs %d", err, len(viaCache), len(orig))
	}
	if bad, err := svc.VerifySession(second.RequestID); err != nil || len(bad) != 0 {
		t.Fatalf("verify: %v %v", bad, err)
	}
}

func TestServiceFingerprintInvalidation(t *testing.T) {
	dir := testEnsemble(t)
	svc := newService(t, Config{Workers: 1, EnsembleDir: dir})

	fp1, err := Fingerprint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ask(AskRequest{Question: topHalosQ}); err != nil {
		t.Fatal(err)
	}

	// Simulate the ensemble being regenerated: add a file to the dir. The
	// service memoizes its fingerprint for DefaultFingerprintTTL, so wait
	// out the window — the bounded staleness the memoization trades for
	// skipping the stat walk on every request.
	if err := os.WriteFile(filepath.Join(dir, "extra-run.bin"), []byte("new data"), 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(DefaultFingerprintTTL + 50*time.Millisecond)
	fp2, err := Fingerprint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp2 {
		t.Fatal("fingerprint unchanged after ensemble dir changed")
	}

	res, err := svc.Ask(AskRequest{Question: topHalosQ})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("changed ensemble must invalidate the cached answer")
	}
}

func TestFingerprintStable(t *testing.T) {
	dir := testEnsemble(t)
	fp1, err := Fingerprint(dir)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := Fingerprint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprint not stable: %s vs %s", fp1, fp2)
	}
}

// TestServiceConcurrentAsk drives >= 8 parallel sessions through a 4-worker
// pool under -race and audits every provenance trail.
func TestServiceConcurrentAsk(t *testing.T) {
	svc := newService(t, Config{Workers: 4, QueueDepth: 32})

	questions := []string{
		topHalosQ,
		"Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?",
	}
	const parallel = 8
	results := make([]*AskResult, parallel)
	errs := make([]error, parallel)
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds force distinct computations (no cache hits).
			results[i], errs[i] = svc.Ask(AskRequest{Question: questions[i%len(questions)], Seed: int64(i) + 1})
		}(i)
	}
	wg.Wait()

	seen := map[string]bool{}
	for i := 0; i < parallel; i++ {
		if errs[i] != nil {
			t.Fatalf("ask %d: %v", i, errs[i])
		}
		if results[i].Error != "" || results[i].Cached || results[i].Rows == 0 {
			t.Fatalf("ask %d result = %+v", i, results[i])
		}
		if seen[results[i].RequestID] {
			t.Fatalf("duplicate request ID %q", results[i].RequestID)
		}
		seen[results[i].RequestID] = true
		bad, err := svc.VerifySession(results[i].RequestID)
		if err != nil || len(bad) != 0 {
			t.Fatalf("ask %d provenance: bad=%v err=%v", i, bad, err)
		}
	}
	m := svc.Metrics()
	if m.Completed != parallel || m.Failed != 0 || m.Running != 0 {
		t.Errorf("metrics = %+v", m)
	}
}

// blockingModel gates the first Complete call so tests can hold a worker
// busy deterministically.
type blockingModel struct {
	llm.Client
	release chan struct{}
	once    sync.Once
	started chan struct{}
}

func (b *blockingModel) Complete(req llm.Request) (llm.Response, error) {
	b.once.Do(func() {
		close(b.started)
		<-b.release
	})
	return b.Client.Complete(req)
}

func TestServiceQueueFullBackpressure(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var gateOnce sync.Once
	svc := newService(t, Config{
		Workers:    1,
		QueueDepth: 1,
		NewModel: func(seed int64) llm.Client {
			m := llm.Client(errFreeModel(seed))
			// Only the first request blocks; the rest run normally.
			gateOnce.Do(func() {
				m = &blockingModel{Client: m, release: release, started: started}
			})
			return m
		},
	})

	// Request 1 occupies the single worker.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := svc.Ask(AskRequest{Question: topHalosQ, Seed: 1}); err != nil {
			t.Errorf("blocked ask: %v", err)
		}
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never reached the model")
	}

	// Request 2 sits in the queue slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := svc.Ask(AskRequest{Question: topHalosQ, Seed: 2}); err != nil {
			t.Errorf("queued ask: %v", err)
		}
	}()
	// Wait until the queue slot is actually occupied.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Metrics().QueueLen == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Request 3 must be rejected with backpressure, not block.
	if _, err := svc.Ask(AskRequest{Question: topHalosQ, Seed: 3}); err != ErrQueueFull {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	m := svc.Metrics()
	if m.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", m.Rejected)
	}
	// Backpressure is not workflow failure: the record says "rejected" and
	// the Failed counter stays clean.
	if m.Failed != 0 {
		t.Errorf("failed = %d, want 0 (rejection is not failure)", m.Failed)
	}
	var rejected int
	for _, s := range svc.Sessions() {
		if s.Status == "rejected" {
			rejected++
		}
	}
	if rejected != 1 {
		t.Errorf("rejected records = %d, want 1", rejected)
	}

	close(release)
	wg.Wait()
}

// TestServiceSingleFlight: concurrent identical cache misses must coalesce
// into one workflow computation, with the followers served from the cache.
func TestServiceSingleFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var gateOnce sync.Once
	svc := newService(t, Config{
		Workers:    2,
		QueueDepth: 8,
		NewModel: func(seed int64) llm.Client {
			m := llm.Client(errFreeModel(seed))
			gateOnce.Do(func() {
				m = &blockingModel{Client: m, release: release, started: started}
			})
			return m
		},
	})

	const parallel = 4
	results := make([]*AskResult, parallel)
	errs := make([]error, parallel)
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Ask(AskRequest{Question: topHalosQ, Seed: 7})
		}(i)
	}
	// Once the leader reaches the model, the other three must be waiting on
	// the in-flight key, not queued as separate computations.
	<-started
	close(release)
	wg.Wait()

	var computed, cached int
	for i := 0; i < parallel; i++ {
		if errs[i] != nil {
			t.Fatalf("ask %d: %v", i, errs[i])
		}
		if results[i].Cached {
			cached++
		} else {
			computed++
		}
	}
	if computed != 1 || cached != parallel-1 {
		t.Fatalf("computed=%d cached=%d, want 1 and %d", computed, cached, parallel-1)
	}
	m := svc.Metrics()
	if m.Completed != 1 {
		t.Errorf("completed = %d, want 1 (single-flight)", m.Completed)
	}
	// Coalesced followers must not inflate the miss counter: one miss (the
	// leader's), one hit per follower.
	if m.Cache.Misses != 1 || m.Cache.Hits != int64(parallel-1) {
		t.Errorf("cache stats = %+v, want 1 miss / %d hits", m.Cache, parallel-1)
	}
}

// TestServiceSessionRetention: the record history is bounded by
// MaxSessions, dropping the oldest finished records.
func TestServiceSessionRetention(t *testing.T) {
	svc := newService(t, Config{Workers: 1, MaxSessions: 2})
	for i := 0; i < 4; i++ {
		if _, err := svc.Ask(AskRequest{Question: topHalosQ, Seed: int64(i) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	sessions := svc.Sessions()
	if len(sessions) != 2 {
		t.Fatalf("retained %d records, want 2", len(sessions))
	}
	if sessions[0].ID != "q-0003" || sessions[1].ID != "q-0004" {
		t.Errorf("retained = %s %s, want q-0003 q-0004", sessions[0].ID, sessions[1].ID)
	}
	// Trimmed records no longer resolve.
	if _, err := svc.Provenance("q-0001"); err == nil {
		t.Error("trimmed record should not resolve provenance")
	}

	// Cache entries outlive trimmed records: a hit whose source session
	// record was trimmed must still resolve provenance from the on-disk
	// trail (pool-store fallback).
	hit, err := svc.Ask(AskRequest{Question: topHalosQ, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.SessionID != "q-0001" {
		t.Fatalf("expected cache hit serving trimmed q-0001, got %+v", hit)
	}
	entries, err := svc.Provenance(hit.RequestID)
	if err != nil || len(entries) == 0 {
		t.Fatalf("provenance via trimmed source: %v (%d entries)", err, len(entries))
	}
	if bad, err := svc.VerifySession(hit.RequestID); err != nil || len(bad) != 0 {
		t.Fatalf("verify via trimmed source: %v %v", bad, err)
	}
}

func TestServiceClosedRejectsAsks(t *testing.T) {
	svc := newService(t, Config{Workers: 1})
	// Warm the cache so the closed check is provably ahead of the cache.
	if _, err := svc.Ask(AskRequest{Question: topHalosQ}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// Even a cached question must fail after Close.
	if _, err := svc.Ask(AskRequest{Question: topHalosQ}); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := svc.Ask(AskRequest{Question: "never seen"}); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	// Idempotent close.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServiceFailedRunIsRecordedNotCached(t *testing.T) {
	// A QA profile that rejects nearly everything fails deterministically.
	svc := newService(t, Config{
		Workers: 1,
		NewModel: func(seed int64) llm.Client {
			return llm.NewSim(llm.SimConfig{Seed: seed, ColumnErrorRate: 1e-9, BinaryQA: true, QAFalseNegRate: 0.999})
		},
	})
	res, err := svc.Ask(AskRequest{Question: topHalosQ})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error == "" {
		t.Fatalf("expected workflow failure, got %+v", res)
	}
	// Failures must not be served from cache.
	res2, err := svc.Ask(AskRequest{Question: topHalosQ})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cached {
		t.Fatal("failed run must not populate the cache")
	}
	m := svc.Metrics()
	if m.Failed != 2 || m.Completed != 0 {
		t.Errorf("metrics = %+v", m)
	}
	// The failed session still has an inspectable (partial) trail.
	if _, err := svc.Provenance(res.RequestID); err != nil {
		t.Errorf("failed session provenance: %v", err)
	}
	if got, ok := svc.Session(res.RequestID); !ok || got.Status != "failed" {
		t.Errorf("session record = %+v %v", got, ok)
	}
}

// TestServiceStagingDBReclaimed: the per-question staging database is
// scratch space and must be deleted once the answer is computed (the
// provenance trail stays), unless KeepStagingDBs opts out.
func TestServiceStagingDBReclaimed(t *testing.T) {
	work := t.TempDir()
	svc := newService(t, Config{Workers: 1, WorkDir: work})
	res, err := svc.Ask(AskRequest{Question: topHalosQ})
	if err != nil || res.Error != "" {
		t.Fatalf("ask: %v %+v", err, res)
	}
	dbDir := filepath.Join(work, "worker-00", "db", res.RequestID)
	if _, err := os.Stat(dbDir); !os.IsNotExist(err) {
		t.Errorf("staging DB %s should be reclaimed (stat err = %v)", dbDir, err)
	}
	// The provenance trail must survive reclamation.
	if bad, err := svc.VerifySession(res.RequestID); err != nil || len(bad) != 0 {
		t.Fatalf("verify after reclaim: %v %v", bad, err)
	}

	work2 := t.TempDir()
	keep := newService(t, Config{Workers: 1, WorkDir: work2, KeepStagingDBs: true})
	res2, err := keep.Ask(AskRequest{Question: topHalosQ})
	if err != nil || res2.Error != "" {
		t.Fatalf("ask: %v %+v", err, res2)
	}
	if _, err := os.Stat(filepath.Join(work2, "worker-00", "db", res2.RequestID)); err != nil {
		t.Errorf("KeepStagingDBs should preserve the staging DB: %v", err)
	}
}

// TestServiceCachePersistence: a service with a stable WorkDir serializes
// its answer cache on Close and a successor over the same WorkDir revives
// it — unless the ensemble changed, in which case the stale entries are
// dropped at load (fingerprint re-validation).
func TestServiceCachePersistence(t *testing.T) {
	dir := testEnsemble(t)
	work := t.TempDir()

	first := newService(t, Config{Workers: 1, EnsembleDir: dir, WorkDir: work})
	res, err := first.Ask(AskRequest{Question: topHalosQ})
	if err != nil || res.Error != "" {
		t.Fatalf("ask: %v %+v", err, res)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(work, CacheFileName)); err != nil {
		t.Fatalf("cache file not persisted: %v", err)
	}
	if fi, ok := ReadCacheFileInfo(work); !ok || fi.Entries != 1 {
		t.Fatalf("cache file info = %+v %v", fi, ok)
	}

	// Simulate a pool shrink across the restart: the original worker dir is
	// orphaned (no assistant owns it), but its provenance sessions are still
	// referenced by the persisted cache.
	if err := os.Rename(filepath.Join(work, "worker-00"), filepath.Join(work, "worker-07")); err != nil {
		t.Fatal(err)
	}

	// Restart: the same question is a hit without any computation, and its
	// provenance still resolves from the (now orphaned) on-disk trail.
	second := newService(t, Config{Workers: 1, EnsembleDir: dir, WorkDir: work})
	hit, err := second.Ask(AskRequest{Question: topHalosQ})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.SessionID != res.SessionID {
		t.Fatalf("restart should serve from the persisted cache: %+v", hit)
	}
	if entries, err := second.Provenance(hit.RequestID); err != nil || len(entries) == 0 {
		t.Fatalf("provenance after restart: %v (%d entries)", err, len(entries))
	}
	if err := second.Close(); err != nil {
		t.Fatal(err)
	}

	// Change the ensemble: the persisted entries no longer validate, so the
	// next incarnation starts cold for safety.
	if err := os.WriteFile(filepath.Join(dir, "extra-run.bin"), []byte("new data"), 0o644); err != nil {
		t.Fatal(err)
	}
	InvalidateFingerprint(dir)
	third := newService(t, Config{Workers: 1, EnsembleDir: dir, WorkDir: work})
	if third.CacheLen() != 0 {
		t.Fatalf("stale persisted entries must be dropped, cache len = %d", third.CacheLen())
	}
	miss, err := third.Ask(AskRequest{Question: topHalosQ})
	if err != nil {
		t.Fatal(err)
	}
	if miss.Cached {
		t.Fatal("changed ensemble must not serve persisted answers")
	}
	// The ID sequence resumed past the orphaned worker's sessions, so the
	// new computation can never shadow the old q-0001 trail.
	if miss.RequestID == res.RequestID {
		t.Fatalf("restarted service reused session ID %s", miss.RequestID)
	}
}

func TestServiceSessionIDsAreSequential(t *testing.T) {
	svc := newService(t, Config{Workers: 2})
	for i := 0; i < 3; i++ {
		if _, err := svc.Ask(AskRequest{Question: topHalosQ, Seed: int64(i) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	sessions := svc.Sessions()
	for i, s := range sessions {
		if want := fmt.Sprintf("q-%04d", i+1); s.ID != want {
			t.Errorf("session %d ID = %q, want %q", i, s.ID, want)
		}
	}
}

// TestServiceSharedStagingDedupe drives >= 8 concurrent sessions that all
// stage the same overlapping (sim, step) slices through one service and
// proves the shared staging cache decodes each underlying gio file exactly
// once — the cross-request batching property. Run under -race.
func TestServiceSharedStagingDedupe(t *testing.T) {
	dir := testEnsemble(t)
	st := stage.New(1<<30, 4) // isolated cache so counters are exact
	svc := newService(t, Config{EnsembleDir: dir, Workers: 4, QueueDepth: 32, Stage: st})

	// This question stages the halos table for all sims and steps; distinct
	// seeds force distinct workflow computations (no answer-cache hits),
	// which is exactly the overlapping-slices scenario.
	const q = "Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?"
	const parallel = 8
	var wg sync.WaitGroup
	errs := make([]error, parallel)
	results := make([]*AskResult, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Ask(AskRequest{Question: q, Seed: int64(i) + 1})
		}(i)
	}
	wg.Wait()
	for i := 0; i < parallel; i++ {
		if errs[i] != nil {
			t.Fatalf("ask %d: %v", i, errs[i])
		}
		if results[i].Error != "" || results[i].Cached {
			t.Fatalf("ask %d result = %+v", i, results[i])
		}
	}

	cat, err := hacc.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	haloFiles := len(cat.FilesOf(-1, -1, hacc.FileHalos))
	if haloFiles == 0 {
		t.Fatal("no halo files in ensemble")
	}
	stats := st.Stats()
	if stats.Opens != int64(haloFiles) {
		t.Fatalf("each halo file must decode exactly once across %d sessions: opens = %d, want %d (stats %+v)",
			parallel, stats.Opens, haloFiles, stats)
	}
	if stats.Hits == 0 {
		t.Fatal("overlapping sessions must share decodes")
	}
}
