package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"infera/internal/provenance"
)

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	svc := newService(t, cfg)
	srv := NewServer(svc)
	if err := srv.Start(""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, "http://" + srv.Addr()
}

func postAsk(t *testing.T, base string, req AskRequest) (*AskResult, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/ask", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out AskResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHTTPAskSessionsProvenanceMetrics(t *testing.T) {
	_, base := startServer(t, Config{Workers: 2})

	// healthz first.
	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	res, code := postAsk(t, base, AskRequest{Question: topHalosQ})
	if code != http.StatusOK || res.Error != "" || res.Rows != 20 {
		t.Fatalf("ask: code=%d res=%+v", code, res)
	}

	// Repeat over the wire: cache hit.
	res2, _ := postAsk(t, base, AskRequest{Question: topHalosQ})
	if !res2.Cached || res2.SessionID != res.SessionID {
		t.Fatalf("second ask = %+v", res2)
	}

	var sessions []SessionInfo
	if code := getJSON(t, base+"/sessions", &sessions); code != http.StatusOK || len(sessions) != 2 {
		t.Fatalf("sessions: %d %v", code, sessions)
	}

	var one SessionInfo
	if code := getJSON(t, base+"/sessions/"+res.RequestID, &one); code != http.StatusOK || one.Status != "done" {
		t.Fatalf("session: %d %+v", code, one)
	}

	var entries []provenance.Entry
	if code := getJSON(t, base+"/sessions/"+res.RequestID+"/provenance", &entries); code != http.StatusOK || len(entries) == 0 {
		t.Fatalf("provenance: %d %d entries", code, len(entries))
	}
	// The cached record resolves to the same trail.
	var viaCache []provenance.Entry
	if code := getJSON(t, base+"/sessions/"+res2.RequestID+"/provenance", &viaCache); code != http.StatusOK || len(viaCache) != len(entries) {
		t.Fatalf("cached provenance: %d %d vs %d", code, len(viaCache), len(entries))
	}

	var m Metrics
	if code := getJSON(t, base+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.Completed != 1 || m.CachedTotal != 1 || m.Cache.Hits != 1 || m.Fingerprint == "" {
		t.Errorf("metrics = %+v", m)
	}
	// The staging cache is surfaced on /metrics: budget configured and the
	// ask's snapshot decodes accounted for.
	if m.Stage.BudgetBytes <= 0 || m.Stage.Opens == 0 {
		t.Errorf("stage metrics = %+v", m.Stage)
	}

	// Unknown session -> 404.
	var dummy SessionInfo
	if code := getJSON(t, base+"/sessions/q-9999", &dummy); code != http.StatusNotFound {
		t.Errorf("unknown session code = %d", code)
	}
	// Bad body -> 400.
	badResp, err := http.Post(base+"/ask", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body code = %d", badResp.StatusCode)
	}
	// Empty question -> 400 (validation, not a server error).
	emptyResp, err := http.Post(base+"/ask", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	emptyResp.Body.Close()
	if emptyResp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty question code = %d", emptyResp.StatusCode)
	}
	// Oversized body -> rejected before it can buffer unbounded memory.
	huge := append([]byte(`{"question": "`), bytes.Repeat([]byte("x"), maxAskBody+1024)...)
	huge = append(huge, []byte(`"}`)...)
	hugeResp, err := http.Post(base+"/ask", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	hugeResp.Body.Close()
	if hugeResp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body code = %d", hugeResp.StatusCode)
	}
}

// TestHTTPConcurrentAsks is the acceptance check: >= 8 concurrent POST /ask
// against one daemon, per-session provenance intact.
func TestHTTPConcurrentAsks(t *testing.T) {
	srv, base := startServer(t, Config{Workers: 4, QueueDepth: 32})

	questions := []string{
		topHalosQ,
		"Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?",
	}
	const parallel = 8
	results := make([]*AskResult, parallel)
	codes := make([]int, parallel)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], codes[i] = postAsk(t, base, AskRequest{
				Question: questions[i%len(questions)],
				Seed:     int64(i) + 1,
			})
		}(i)
	}
	wg.Wait()
	t.Logf("%d concurrent asks served in %s", parallel, time.Since(start).Round(time.Millisecond))

	seen := map[string]bool{}
	for i := 0; i < parallel; i++ {
		if codes[i] != http.StatusOK || results[i] == nil || results[i].Error != "" {
			t.Fatalf("ask %d: code=%d res=%+v", i, codes[i], results[i])
		}
		if seen[results[i].SessionID] {
			t.Fatalf("duplicate session %q", results[i].SessionID)
		}
		seen[results[i].SessionID] = true
		var entries []provenance.Entry
		if code := getJSON(t, fmt.Sprintf("%s/sessions/%s/provenance", base, results[i].RequestID), &entries); code != http.StatusOK || len(entries) == 0 {
			t.Fatalf("ask %d provenance: %d with %d entries", i, code, len(entries))
		}
		if bad, err := srv.svc.VerifySession(results[i].RequestID); err != nil || len(bad) != 0 {
			t.Fatalf("ask %d verify: %v %v", i, bad, err)
		}
	}
}
