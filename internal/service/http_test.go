package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"infera/internal/provenance"
)

// startServer serves one "default" shard built from cfg through a registry,
// mirroring the pre-registry single-ensemble daemon (the legacy routes
// alias onto it).
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.EnsembleDir == "" {
		cfg.EnsembleDir = testEnsemble(t)
	}
	if cfg.NewModel == nil {
		cfg.NewModel = errFreeModel
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	dir := cfg.EnsembleDir
	cfg.EnsembleDir, cfg.WorkDir = "", "" // per-shard, registry-managed
	reg := NewRegistry(RegistryConfig{Defaults: cfg, WorkDir: t.TempDir()})
	if _, err := reg.Register("default", dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	srv := NewServer(reg)
	if err := srv.Start(""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, "http://" + srv.Addr()
}

func postAsk(t *testing.T, base string, req AskRequest) (*AskResult, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/ask", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out AskResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHTTPAskSessionsProvenanceMetrics(t *testing.T) {
	_, base := startServer(t, Config{Workers: 2})

	// healthz first.
	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	res, code := postAsk(t, base, AskRequest{Question: topHalosQ})
	if code != http.StatusOK || res.Error != "" || res.Rows != 20 {
		t.Fatalf("ask: code=%d res=%+v", code, res)
	}

	// Repeat over the wire: cache hit.
	res2, _ := postAsk(t, base, AskRequest{Question: topHalosQ})
	if !res2.Cached || res2.SessionID != res.SessionID {
		t.Fatalf("second ask = %+v", res2)
	}

	var sessions []SessionInfo
	if code := getJSON(t, base+"/sessions", &sessions); code != http.StatusOK || len(sessions) != 2 {
		t.Fatalf("sessions: %d %v", code, sessions)
	}

	var one SessionInfo
	if code := getJSON(t, base+"/sessions/"+res.RequestID, &one); code != http.StatusOK || one.Status != "done" {
		t.Fatalf("session: %d %+v", code, one)
	}

	var entries []provenance.Entry
	if code := getJSON(t, base+"/sessions/"+res.RequestID+"/provenance", &entries); code != http.StatusOK || len(entries) == 0 {
		t.Fatalf("provenance: %d %d entries", code, len(entries))
	}
	// The cached record resolves to the same trail.
	var viaCache []provenance.Entry
	if code := getJSON(t, base+"/sessions/"+res2.RequestID+"/provenance", &viaCache); code != http.StatusOK || len(viaCache) != len(entries) {
		t.Fatalf("cached provenance: %d %d vs %d", code, len(viaCache), len(entries))
	}

	var m Metrics
	if code := getJSON(t, base+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.Completed != 1 || m.CachedTotal != 1 || m.Cache.Hits != 1 || m.Fingerprint == "" {
		t.Errorf("metrics = %+v", m)
	}
	// The staging cache is surfaced on /metrics: budget configured and the
	// ask's snapshot decodes accounted for.
	if m.Stage.BudgetBytes <= 0 || m.Stage.Opens == 0 {
		t.Errorf("stage metrics = %+v", m.Stage)
	}

	// Unknown session -> 404.
	var dummy SessionInfo
	if code := getJSON(t, base+"/sessions/q-9999", &dummy); code != http.StatusNotFound {
		t.Errorf("unknown session code = %d", code)
	}
	// Bad body -> 400.
	badResp, err := http.Post(base+"/ask", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body code = %d", badResp.StatusCode)
	}
	// Empty question -> 400 (validation, not a server error).
	emptyResp, err := http.Post(base+"/ask", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	emptyResp.Body.Close()
	if emptyResp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty question code = %d", emptyResp.StatusCode)
	}
	// Oversized body -> 413, not a generic 400: the body limit is a size
	// condition the client can act on, distinct from malformed JSON.
	huge := append([]byte(`{"question": "`), bytes.Repeat([]byte("x"), maxAskBody+1024)...)
	huge = append(huge, []byte(`"}`)...)
	hugeResp, err := http.Post(base+"/ask", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	hugeResp.Body.Close()
	if hugeResp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body code = %d, want 413", hugeResp.StatusCode)
	}

	// Legacy routes answer but advertise their deprecation and successor.
	depResp, err := http.Get(base + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	depResp.Body.Close()
	if depResp.Header.Get("Deprecation") != "true" || depResp.Header.Get("Link") == "" {
		t.Errorf("legacy route headers = %v", depResp.Header)
	}
}

// TestHTTPV1EnsembleResources exercises the versioned resource API
// end-to-end: runtime registration, per-shard ask/sessions/provenance
// routing, the shard detail endpoint and the aggregate /v1/metrics.
func TestHTTPV1EnsembleResources(t *testing.T) {
	_, base := startServer(t, Config{Workers: 1})

	// Register a second ensemble over the wire.
	dirB := testEnsembleSeeded(t, 11)
	body, _ := json.Marshal(RegisterRequest{Name: "survey-b", Dir: dirB})
	resp, err := http.Post(base+"/v1/ensembles", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var created ShardInfo
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.Name != "survey-b" || created.State != "cold" {
		t.Fatalf("register: %d %+v", resp.StatusCode, created)
	}

	// Conflicting re-registration -> 409; bad name -> 400.
	conflict, _ := json.Marshal(RegisterRequest{Name: "survey-b", Dir: t.TempDir()})
	resp, err = http.Post(base+"/v1/ensembles", "application/json", bytes.NewReader(conflict))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("conflicting register = %d, want 409", resp.StatusCode)
	}
	badName, _ := json.Marshal(RegisterRequest{Name: "no/slashes", Dir: dirB})
	resp, err = http.Post(base+"/v1/ensembles", "application/json", bytes.NewReader(badName))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad name register = %d, want 400", resp.StatusCode)
	}

	var list []ShardInfo
	if code := getJSON(t, base+"/v1/ensembles", &list); code != http.StatusOK || len(list) != 2 {
		t.Fatalf("list: %d %v", code, list)
	}

	// Ask through each shard; answers come from different ensembles.
	askV1 := func(eid, q string) *AskResult {
		t.Helper()
		body, _ := json.Marshal(AskRequest{Question: q})
		resp, err := http.Post(base+"/v1/ensembles/"+eid+"/ask", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ask %s: %d", eid, resp.StatusCode)
		}
		var out AskResult
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return &out
	}
	resA := askV1("default", topHalosQ)
	resB := askV1("survey-b", topHalosQ)
	if resA.Error != "" || resB.Error != "" || resA.AnswerCSV == resB.AnswerCSV {
		t.Fatalf("shard answers must come from their own ensembles: %+v vs %+v", resA, resB)
	}

	// Sessions and provenance are shard-scoped.
	var sessB []SessionInfo
	if code := getJSON(t, base+"/v1/ensembles/survey-b/sessions", &sessB); code != http.StatusOK || len(sessB) != 1 {
		t.Fatalf("survey-b sessions: %d %v", code, sessB)
	}
	var entries []provenance.Entry
	if code := getJSON(t, base+"/v1/ensembles/survey-b/sessions/"+resB.RequestID+"/provenance", &entries); code != http.StatusOK || len(entries) == 0 {
		t.Fatalf("survey-b provenance: %d %d entries", code, len(entries))
	}
	// The same record ID does not exist on the other shard.
	var miss SessionInfo
	if code := getJSON(t, base+"/v1/ensembles/survey-b/sessions/q-9999", &miss); code != http.StatusNotFound {
		t.Errorf("cross-shard session = %d, want 404", code)
	}

	// Detail endpoint: live shard with workers, cache entry and a resolved
	// fingerprint.
	var detail ShardInfo
	if code := getJSON(t, base+"/v1/ensembles/survey-b", &detail); code != http.StatusOK {
		t.Fatalf("detail: %d", code)
	}
	if detail.State != "live" || detail.Workers != 1 || detail.CacheEntries != 1 ||
		detail.Fingerprint == "" || detail.Opens != 1 {
		t.Errorf("detail = %+v", detail)
	}
	if code := getJSON(t, base+"/v1/ensembles/nope", &detail); code != http.StatusNotFound {
		t.Errorf("unknown detail = %d, want 404", code)
	}

	// Per-shard and aggregate metrics.
	var sm Metrics
	if code := getJSON(t, base+"/v1/ensembles/survey-b/metrics", &sm); code != http.StatusOK || sm.Completed != 1 {
		t.Fatalf("shard metrics: %d %+v", code, sm)
	}
	var am RegistryMetrics
	if code := getJSON(t, base+"/v1/metrics", &am); code != http.StatusOK {
		t.Fatalf("aggregate metrics: %d", code)
	}
	if am.Shards != 2 || am.Live != 2 || am.Completed != 2 || am.ShardOpens != 2 {
		t.Errorf("aggregate = %+v", am)
	}
}

// TestHTTPConcurrentAsks is the acceptance check: >= 8 concurrent POST /ask
// against one daemon, per-session provenance intact.
func TestHTTPConcurrentAsks(t *testing.T) {
	srv, base := startServer(t, Config{Workers: 4, QueueDepth: 32})

	questions := []string{
		topHalosQ,
		"Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?",
	}
	const parallel = 8
	results := make([]*AskResult, parallel)
	codes := make([]int, parallel)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], codes[i] = postAsk(t, base, AskRequest{
				Question: questions[i%len(questions)],
				Seed:     int64(i) + 1,
			})
		}(i)
	}
	wg.Wait()
	t.Logf("%d concurrent asks served in %s", parallel, time.Since(start).Round(time.Millisecond))

	seen := map[string]bool{}
	for i := 0; i < parallel; i++ {
		if codes[i] != http.StatusOK || results[i] == nil || results[i].Error != "" {
			t.Fatalf("ask %d: code=%d res=%+v", i, codes[i], results[i])
		}
		if seen[results[i].SessionID] {
			t.Fatalf("duplicate session %q", results[i].SessionID)
		}
		seen[results[i].SessionID] = true
		var entries []provenance.Entry
		if code := getJSON(t, fmt.Sprintf("%s/sessions/%s/provenance", base, results[i].RequestID), &entries); code != http.StatusOK || len(entries) == 0 {
			t.Fatalf("ask %d provenance: %d with %d entries", i, code, len(entries))
		}
		if bad, err := srv.reg.VerifySession("default", results[i].RequestID); err != nil || len(bad) != 0 {
			t.Fatalf("ask %d verify: %v %v", i, bad, err)
		}
	}
}
