package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"infera/internal/sandbox"
)

// Server exposes a Service over HTTP, reusing the JSON wire idiom of the
// sandbox execution server. Endpoints:
//
//	POST /ask                        {"question": ..., "seed": ...} -> AskResult
//	GET  /sessions                   -> []SessionInfo
//	GET  /sessions/{id}              -> SessionInfo
//	GET  /sessions/{id}/provenance   -> []provenance.Entry
//	GET  /healthz                    -> "ok"
//	GET  /metrics                    -> Metrics
type Server struct {
	svc  *Service
	http *http.Server
	ln   net.Listener
}

// NewServer returns an unstarted HTTP front-end for svc.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ask", s.handleAsk)
	mux.HandleFunc("GET /sessions", s.handleSessions)
	mux.HandleFunc("GET /sessions/{id}", s.handleSession)
	mux.HandleFunc("GET /sessions/{id}/provenance", s.handleProvenance)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		sandbox.WriteJSON(w, s.svc.Metrics())
	})
	s.http = &http.Server{Handler: mux, ReadTimeout: 30 * time.Second}
	return s
}

// Start listens on addr ("" = 127.0.0.1:0) and serves in the background.
func (s *Server) Start(addr string) error {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() { _ = s.http.Serve(ln) }()
	return nil
}

// Addr returns the listening address (host:port); empty before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close gracefully shuts the HTTP listener down, waiting for active
// handlers (the Service itself is closed separately by its owner — close
// it first so handlers blocked in Ask drain rather than hang here).
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	return s.http.Shutdown(ctx)
}

// errorBody is the wire form of a failed request.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// maxAskBody bounds the /ask request body; questions are sentences, so
// anything past 1 MB is abuse, not traffic.
const maxAskBody = 1 << 20

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req AskRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAskBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	res, err := s.svc.Ask(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrEmptyQuestion):
		writeError(w, http.StatusBadRequest, err)
		return
	case err != nil:
		// Anything else is a server-side condition (e.g. the ensemble dir
		// became unreadable mid-fingerprint), not a client mistake.
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Workflow failures still return 200 with res.Error set: the request
	// was served and its partial state is inspectable via provenance.
	sandbox.WriteJSON(w, res)
}

func (s *Server) handleSessions(w http.ResponseWriter, _ *http.Request) {
	sandbox.WriteJSON(w, s.svc.Sessions())
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	info, ok := s.svc.Session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	sandbox.WriteJSON(w, info)
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	entries, err := s.svc.Provenance(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	sandbox.WriteJSON(w, entries)
}
