package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"infera/internal/agent"
	"infera/internal/sandbox"
	"infera/internal/telemetry"
)

// Server exposes a shard Registry over HTTP as a versioned resource API,
// reusing the JSON wire idiom of the sandbox execution server:
//
//	GET    /v1/ensembles                                 -> []ShardInfo
//	POST   /v1/ensembles                                 {"name", "dir", "workers"?, "cache_capacity"?} -> ShardInfo (201)
//	GET    /v1/ensembles/{eid}                           -> ShardInfo (live/cold, workers, cache, fingerprint age)
//	DELETE /v1/ensembles/{eid}[?purge=provenance]        -> 204 (unregister; purge removes the on-disk trail)
//	POST   /v1/ensembles/{eid}/warm                      -> ShardInfo (spin the pool + fingerprint up before a burst)
//	POST   /v1/ensembles/{eid}/ask                       {"question", "seed"?} -> AskResult
//	                                                     {..., "interactive": true} -> SessionInfo (202)
//	GET    /v1/ensembles/{eid}/sessions                  -> []SessionInfo
//	GET    /v1/ensembles/{eid}/sessions/{id}             -> SessionInfo
//	GET    /v1/ensembles/{eid}/sessions/{id}/events      -> SSE stream (Last-Event-ID resume; ?after=N long-poll JSON)
//	POST   /v1/ensembles/{eid}/sessions/{id}/plan        {"approve", "comment"?} -> 200 / 409 when nothing pending
//	GET    /v1/ensembles/{eid}/sessions/{id}/result      -> AskResult (409 until the session finishes)
//	GET    /v1/ensembles/{eid}/sessions/{id}/provenance  -> []provenance.Entry
//	GET    /v1/ensembles/{eid}/metrics                   -> Metrics (one shard)
//	GET    /v1/metrics                                   -> RegistryMetrics (aggregate)
//	GET    /v1/metrics/prometheus                        -> Prometheus text exposition (fleet-wide, ensemble=<shard> labels)
//	GET    /healthz                                      -> HealthInfo (node identity, shard counts, uptime)
//
// The pre-registry flat routes — POST /ask, GET /sessions[/{id}[/provenance]]
// and GET /metrics — survive as deprecated aliases onto the registry's
// default shard (the first one registered), answering with a Deprecation
// header that points clients at the /v1 resources.
type Server struct {
	reg  *Registry
	http *http.Server
	ln   net.Listener
}

// NewServer returns an unstarted HTTP front-end for reg.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/ensembles", s.handleList)
	mux.HandleFunc("POST /v1/ensembles", s.handleRegister)
	mux.HandleFunc("GET /v1/ensembles/{eid}", s.handleDetail)
	mux.HandleFunc("DELETE /v1/ensembles/{eid}", s.handleUnregister)
	mux.HandleFunc("POST /v1/ensembles/{eid}/warm", s.handleWarm)
	mux.HandleFunc("POST /v1/ensembles/{eid}/ask", s.handleAsk)
	mux.HandleFunc("GET /v1/ensembles/{eid}/sessions", s.handleSessions)
	mux.HandleFunc("GET /v1/ensembles/{eid}/sessions/{id}", s.handleSession)
	mux.HandleFunc("GET /v1/ensembles/{eid}/sessions/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/ensembles/{eid}/sessions/{id}/plan", s.handleSubmitPlan)
	mux.HandleFunc("GET /v1/ensembles/{eid}/sessions/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/ensembles/{eid}/sessions/{id}/provenance", s.handleProvenance)
	mux.HandleFunc("GET /v1/ensembles/{eid}/metrics", s.handleShardMetrics)
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		sandbox.WriteJSON(w, s.reg.Metrics())
	})
	mux.HandleFunc("GET /v1/metrics/prometheus", s.handlePrometheus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		// JSON node detail (identity, shard counts, uptime) for fleet
		// probers; plain liveness checks only need the 200.
		sandbox.WriteJSON(w, s.reg.Health())
	})
	// Legacy aliases: the flat single-ensemble API, routed to the default
	// shard. Deprecated — new clients should use /v1/ensembles/{eid}/...;
	// these remain so pre-registry clients keep working unchanged.
	mux.HandleFunc("POST /ask", s.legacy(s.handleAsk))
	mux.HandleFunc("GET /sessions", s.legacy(s.handleSessions))
	mux.HandleFunc("GET /sessions/{id}", s.legacy(s.handleSession))
	mux.HandleFunc("GET /sessions/{id}/provenance", s.legacy(s.handleProvenance))
	mux.HandleFunc("GET /metrics", s.legacy(s.handleShardMetrics))
	s.http = &http.Server{Handler: mux, ReadTimeout: 30 * time.Second}
	return s
}

// legacy adapts a /v1 shard handler to a flat route: it advertises the
// deprecation and aims the handler at the default shard.
func (s *Server) legacy(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/ensembles>; rel="successor-version"`)
		name := s.reg.DefaultShard()
		if name == "" {
			writeError(w, http.StatusServiceUnavailable, errors.New("no ensembles registered"))
			return
		}
		r.SetPathValue("eid", name)
		h(w, r)
	}
}

// Start listens on addr ("" = 127.0.0.1:0) and serves in the background.
func (s *Server) Start(addr string) error {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() { _ = s.http.Serve(ln) }()
	return nil
}

// Addr returns the listening address (host:port); empty before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close gracefully shuts the HTTP listener down, waiting for active
// handlers (the Registry itself is closed separately by its owner — close
// it first so handlers blocked in Ask drain rather than hang here).
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	return s.http.Shutdown(ctx)
}

// Abort hard-closes the server: the listener and every active connection
// die immediately, in-flight requests included. This simulates a node
// crash for fleet failover tests — production shutdown is Close.
func (s *Server) Abort() error {
	return s.http.Close()
}

// errorBody is the wire form of a failed request.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// writeRegistryError maps registry/shard errors onto HTTP statuses shared
// by every eid-scoped handler.
func writeRegistryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownEnsemble), errors.Is(err, ErrUnknownSession):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrShardCold):
		// The resource exists but has no live session state; 404 on the
		// sub-resource with the reason spelled out.
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrNotInteractive):
		// The record exists but has no event log / approval gate.
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, ErrNotFinished), errors.Is(err, agent.ErrNoPendingPlan):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrClosed), errors.Is(err, ErrRegistryClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrEmptyQuestion):
		writeError(w, http.StatusBadRequest, err)
	default:
		// Anything else is a server-side condition (e.g. the ensemble dir
		// became unreadable mid-fingerprint), not a client mistake.
		writeError(w, http.StatusInternalServerError, err)
	}
}

// maxAskBody bounds the ask request body; questions are sentences, so
// anything past 1 MB is abuse, not traffic.
const maxAskBody = 1 << 20

// RegisterRequest is the POST /v1/ensembles payload. Workers and
// CacheCapacity, when set, override the daemon-wide defaults for this shard
// (applied at every spin-up).
type RegisterRequest struct {
	Name string `json:"name"`
	Dir  string `json:"dir"`
	// Workers overrides the shard's assistant-pool size (0 inherits).
	Workers int `json:"workers,omitempty"`
	// CacheCapacity overrides the shard's answer-cache capacity (0 inherits).
	CacheCapacity int `json:"cache_capacity,omitempty"`
	// ScriptFuel / ScriptMemBytes / ScriptTimeoutMS override the shard's
	// sandbox execution budgets (0 inherits the daemon-wide -script-* flags).
	ScriptFuel      int64 `json:"script_fuel,omitempty"`
	ScriptMemBytes  int64 `json:"script_mem_bytes,omitempty"`
	ScriptTimeoutMS int64 `json:"script_timeout_ms,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	sandbox.WriteJSON(w, s.reg.Ensembles())
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAskBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	info, err := s.reg.RegisterWith(req.Name, req.Dir, ShardOptions{
		Workers: req.Workers, CacheSize: req.CacheCapacity,
		ScriptFuel: req.ScriptFuel, ScriptMemBytes: req.ScriptMemBytes, ScriptTimeoutMS: req.ScriptTimeoutMS,
	})
	switch {
	case errors.Is(err, ErrEnsembleExists):
		writeError(w, http.StatusConflict, err)
		return
	case errors.Is(err, ErrBadEnsembleName):
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, ErrRegistryClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		// An unloadable catalog is the client's mistake: wrong directory.
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Headers must precede WriteHeader, or WriteJSON's Content-Type is lost.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	sandbox.WriteJSON(w, info)
}

func (s *Server) handleDetail(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.Ensemble(r.PathValue("eid"))
	if err != nil {
		writeRegistryError(w, err)
		return
	}
	sandbox.WriteJSON(w, info)
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req AskRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAskBody)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	if req.Interactive {
		info, err := s.reg.AskInteractive(r.PathValue("eid"), req)
		if err != nil {
			writeRegistryError(w, err)
			return
		}
		// 202: the job is accepted and running; follow the session's event
		// stream and submit plan decisions while it does.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Location", fmt.Sprintf("/v1/ensembles/%s/sessions/%s", r.PathValue("eid"), info.ID))
		w.WriteHeader(http.StatusAccepted)
		sandbox.WriteJSON(w, info)
		return
	}
	res, err := s.reg.Ask(r.PathValue("eid"), req)
	if err != nil {
		writeRegistryError(w, err)
		return
	}
	// Workflow failures still return 200 with res.Error set: the request
	// was served and its partial state is inspectable via provenance.
	sandbox.WriteJSON(w, res)
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	sessions, err := s.reg.Sessions(r.PathValue("eid"))
	if err != nil {
		writeRegistryError(w, err)
		return
	}
	sandbox.WriteJSON(w, sessions)
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.Session(r.PathValue("eid"), r.PathValue("id"))
	if err != nil {
		if errors.Is(err, ErrUnknownEnsemble) || errors.Is(err, ErrRegistryClosed) {
			writeRegistryError(w, err)
			return
		}
		writeError(w, http.StatusNotFound, err)
		return
	}
	sandbox.WriteJSON(w, info)
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	entries, err := s.reg.Provenance(r.PathValue("eid"), r.PathValue("id"))
	if err != nil {
		if errors.Is(err, ErrUnknownEnsemble) || errors.Is(err, ErrRegistryClosed) {
			writeRegistryError(w, err)
			return
		}
		writeError(w, http.StatusNotFound, err)
		return
	}
	sandbox.WriteJSON(w, entries)
}

func (s *Server) handleShardMetrics(w http.ResponseWriter, r *http.Request) {
	m, err := s.reg.ShardMetrics(r.PathValue("eid"))
	if err != nil {
		writeRegistryError(w, err)
		return
	}
	sandbox.WriteJSON(w, m)
}

// handlePrometheus encodes the shared telemetry registry in the
// Prometheus text exposition format. One endpoint serves the whole
// fleet: per-shard series are distinguished by their ensemble=<name>
// label rather than per-shard scrape targets.
func (s *Server) handlePrometheus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", telemetry.TextContentType)
	if err := s.reg.Telemetry().WritePrometheus(w); err != nil {
		// Headers are already out; all we can do is drop the connection.
		s.reg.logf("http: prometheus encode: %v", err)
	}
}

func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	purge := r.URL.Query().Get("purge") == "provenance"
	if err := s.reg.Unregister(r.PathValue("eid"), purge); err != nil {
		writeRegistryError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.Warm(r.PathValue("eid"))
	if err != nil {
		writeRegistryError(w, err)
		return
	}
	sandbox.WriteJSON(w, info)
}

func (s *Server) handleSubmitPlan(w http.ResponseWriter, r *http.Request) {
	var d agent.PlanDecision
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAskBody)).Decode(&d); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	if err := s.reg.SubmitPlan(r.PathValue("eid"), r.PathValue("id"), d); err != nil {
		writeRegistryError(w, err)
		return
	}
	sandbox.WriteJSON(w, map[string]string{"status": "accepted"})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.reg.Result(r.PathValue("eid"), r.PathValue("id"))
	if err != nil {
		writeRegistryError(w, err)
		return
	}
	sandbox.WriteJSON(w, res)
}

// EventsPage is the long-poll (?after=) wire form of an event-stream read.
type EventsPage struct {
	Events []agent.Event `json:"events"`
	// After is the cursor to pass back on the next poll.
	After int `json:"after"`
	// Done marks a complete stream: the terminal answer event has been
	// delivered and no more will arrive.
	Done bool `json:"done"`
}

// maxPollWait caps the ?wait= long-poll window.
const maxPollWait = 60 * time.Second

// sseHeartbeat is how often an idle SSE stream emits a comment frame.
const sseHeartbeat = 15 * time.Second

// handleEvents streams a session's event log. Default is server-sent
// events: one frame per event with id == Seq, resumable via the standard
// Last-Event-ID header (or ?from=N), terminated by an "event: done"
// sentinel once the stream completes. With ?after=N it degrades to a JSON
// long-poll that waits up to ?wait= (default 25s) for events past N.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	eid, id := r.PathValue("eid"), r.PathValue("id")
	if afterStr := r.URL.Query().Get("after"); afterStr != "" {
		s.pollEvents(w, r, eid, id, afterStr)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	// An unparseable resume cursor must fail loudly: silently restarting
	// from 0 would replay the whole stream and break the no-duplication
	// contract for consumers that trust it.
	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad Last-Event-ID %q", v))
			return
		}
		after = n
	} else if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad from cursor %q", v))
			return
		}
		after = n
	}
	// Validate the session before committing to the stream content type, so
	// a bad ID still gets a proper JSON error status.
	if err := s.reg.CheckInteractive(eid, id); err != nil {
		writeRegistryError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	ctx := r.Context()
	for {
		// Each wait is bounded by the heartbeat interval: an idle stream
		// (e.g. a plan sitting in review) emits a comment frame every
		// sseHeartbeat so intermediaries with idle timeouts keep the
		// connection open and clients can tell alive from dead.
		waitCtx, cancel := context.WithTimeout(ctx, sseHeartbeat)
		events, done, err := s.reg.WaitEvents(waitCtx, eid, id, after)
		cancel()
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			fmt.Fprint(w, ": ping\n\n")
			flusher.Flush()
			continue
		}
		if err != nil {
			// Client went away, or the shard closed under the stream; either
			// way the stream is over. A resuming client reconnects with
			// Last-Event-ID and picks up exactly where it left off.
			return
		}
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
			after = ev.Seq
		}
		flusher.Flush()
		if done {
			fmt.Fprint(w, "event: done\ndata: {}\n\n")
			flusher.Flush()
			return
		}
	}
}

// pollEvents is the JSON long-poll fallback of handleEvents.
func (s *Server) pollEvents(w http.ResponseWriter, r *http.Request, eid, id, afterStr string) {
	after, err := strconv.Atoi(afterStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad after cursor %q", afterStr))
		return
	}
	wait := 25 * time.Second
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait %q", v))
			return
		}
		wait = min(d, maxPollWait)
	}
	var (
		events []agent.Event
		done   bool
	)
	if wait <= 0 {
		events, done, err = s.reg.Events(eid, id, after)
	} else {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		defer cancel()
		events, done, err = s.reg.WaitEvents(ctx, eid, id, after)
	}
	if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		writeRegistryError(w, err)
		return
	}
	page := EventsPage{Events: events, After: after, Done: done}
	if page.Events == nil {
		page.Events = []agent.Event{}
	}
	for _, ev := range events {
		if ev.Seq > page.After {
			page.After = ev.Seq
		}
	}
	sandbox.WriteJSON(w, page)
}
