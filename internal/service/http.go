package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"infera/internal/sandbox"
)

// Server exposes a shard Registry over HTTP as a versioned resource API,
// reusing the JSON wire idiom of the sandbox execution server:
//
//	GET  /v1/ensembles                                   -> []ShardInfo
//	POST /v1/ensembles                                   {"name": ..., "dir": ...} -> ShardInfo (201)
//	GET  /v1/ensembles/{eid}                             -> ShardInfo (live/cold, workers, cache, fingerprint age)
//	POST /v1/ensembles/{eid}/ask                         {"question": ..., "seed": ...} -> AskResult
//	GET  /v1/ensembles/{eid}/sessions                    -> []SessionInfo
//	GET  /v1/ensembles/{eid}/sessions/{id}               -> SessionInfo
//	GET  /v1/ensembles/{eid}/sessions/{id}/provenance    -> []provenance.Entry
//	GET  /v1/ensembles/{eid}/metrics                     -> Metrics (one shard)
//	GET  /v1/metrics                                     -> RegistryMetrics (aggregate)
//	GET  /healthz                                        -> "ok"
//
// The pre-registry flat routes — POST /ask, GET /sessions[/{id}[/provenance]]
// and GET /metrics — survive as deprecated aliases onto the registry's
// default shard (the first one registered), answering with a Deprecation
// header that points clients at the /v1 resources.
type Server struct {
	reg  *Registry
	http *http.Server
	ln   net.Listener
}

// NewServer returns an unstarted HTTP front-end for reg.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/ensembles", s.handleList)
	mux.HandleFunc("POST /v1/ensembles", s.handleRegister)
	mux.HandleFunc("GET /v1/ensembles/{eid}", s.handleDetail)
	mux.HandleFunc("POST /v1/ensembles/{eid}/ask", s.handleAsk)
	mux.HandleFunc("GET /v1/ensembles/{eid}/sessions", s.handleSessions)
	mux.HandleFunc("GET /v1/ensembles/{eid}/sessions/{id}", s.handleSession)
	mux.HandleFunc("GET /v1/ensembles/{eid}/sessions/{id}/provenance", s.handleProvenance)
	mux.HandleFunc("GET /v1/ensembles/{eid}/metrics", s.handleShardMetrics)
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		sandbox.WriteJSON(w, s.reg.Metrics())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Legacy aliases: the flat single-ensemble API, routed to the default
	// shard. Deprecated — new clients should use /v1/ensembles/{eid}/...;
	// these remain so pre-registry clients keep working unchanged.
	mux.HandleFunc("POST /ask", s.legacy(s.handleAsk))
	mux.HandleFunc("GET /sessions", s.legacy(s.handleSessions))
	mux.HandleFunc("GET /sessions/{id}", s.legacy(s.handleSession))
	mux.HandleFunc("GET /sessions/{id}/provenance", s.legacy(s.handleProvenance))
	mux.HandleFunc("GET /metrics", s.legacy(s.handleShardMetrics))
	s.http = &http.Server{Handler: mux, ReadTimeout: 30 * time.Second}
	return s
}

// legacy adapts a /v1 shard handler to a flat route: it advertises the
// deprecation and aims the handler at the default shard.
func (s *Server) legacy(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/ensembles>; rel="successor-version"`)
		name := s.reg.DefaultShard()
		if name == "" {
			writeError(w, http.StatusServiceUnavailable, errors.New("no ensembles registered"))
			return
		}
		r.SetPathValue("eid", name)
		h(w, r)
	}
}

// Start listens on addr ("" = 127.0.0.1:0) and serves in the background.
func (s *Server) Start(addr string) error {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() { _ = s.http.Serve(ln) }()
	return nil
}

// Addr returns the listening address (host:port); empty before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close gracefully shuts the HTTP listener down, waiting for active
// handlers (the Registry itself is closed separately by its owner — close
// it first so handlers blocked in Ask drain rather than hang here).
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	return s.http.Shutdown(ctx)
}

// errorBody is the wire form of a failed request.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// writeRegistryError maps registry/shard errors onto HTTP statuses shared
// by every eid-scoped handler.
func writeRegistryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownEnsemble):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrShardCold):
		// The resource exists but has no live session state; 404 on the
		// sub-resource with the reason spelled out.
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrClosed), errors.Is(err, ErrRegistryClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrEmptyQuestion):
		writeError(w, http.StatusBadRequest, err)
	default:
		// Anything else is a server-side condition (e.g. the ensemble dir
		// became unreadable mid-fingerprint), not a client mistake.
		writeError(w, http.StatusInternalServerError, err)
	}
}

// maxAskBody bounds the ask request body; questions are sentences, so
// anything past 1 MB is abuse, not traffic.
const maxAskBody = 1 << 20

// RegisterRequest is the POST /v1/ensembles payload.
type RegisterRequest struct {
	Name string `json:"name"`
	Dir  string `json:"dir"`
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	sandbox.WriteJSON(w, s.reg.Ensembles())
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAskBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	info, err := s.reg.Register(req.Name, req.Dir)
	switch {
	case errors.Is(err, ErrEnsembleExists):
		writeError(w, http.StatusConflict, err)
		return
	case errors.Is(err, ErrBadEnsembleName):
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, ErrRegistryClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		// An unloadable catalog is the client's mistake: wrong directory.
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Headers must precede WriteHeader, or WriteJSON's Content-Type is lost.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	sandbox.WriteJSON(w, info)
}

func (s *Server) handleDetail(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.Ensemble(r.PathValue("eid"))
	if err != nil {
		writeRegistryError(w, err)
		return
	}
	sandbox.WriteJSON(w, info)
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req AskRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAskBody)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	res, err := s.reg.Ask(r.PathValue("eid"), req)
	if err != nil {
		writeRegistryError(w, err)
		return
	}
	// Workflow failures still return 200 with res.Error set: the request
	// was served and its partial state is inspectable via provenance.
	sandbox.WriteJSON(w, res)
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	sessions, err := s.reg.Sessions(r.PathValue("eid"))
	if err != nil {
		writeRegistryError(w, err)
		return
	}
	sandbox.WriteJSON(w, sessions)
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.Session(r.PathValue("eid"), r.PathValue("id"))
	if err != nil {
		if errors.Is(err, ErrUnknownEnsemble) || errors.Is(err, ErrRegistryClosed) {
			writeRegistryError(w, err)
			return
		}
		writeError(w, http.StatusNotFound, err)
		return
	}
	sandbox.WriteJSON(w, info)
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	entries, err := s.reg.Provenance(r.PathValue("eid"), r.PathValue("id"))
	if err != nil {
		if errors.Is(err, ErrUnknownEnsemble) || errors.Is(err, ErrRegistryClosed) {
			writeRegistryError(w, err)
			return
		}
		writeError(w, http.StatusNotFound, err)
		return
	}
	sandbox.WriteJSON(w, entries)
}

func (s *Server) handleShardMetrics(w http.ResponseWriter, r *http.Request) {
	m, err := s.reg.ShardMetrics(r.PathValue("eid"))
	if err != nil {
		writeRegistryError(w, err)
		return
	}
	sandbox.WriteJSON(w, m)
}
