package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
)

// Fingerprint hashes an ensemble directory's structure — every file's
// relative path, size and modification time — into a stable hex digest.
// It is the cache-key component that invalidates answers when the
// underlying data changes: touching, replacing or adding any file under
// the ensemble root yields a different fingerprint without reading file
// contents, so the per-request cost stays at a stat walk.
func Fingerprint(dir string) (string, error) {
	type stamp struct {
		rel   string
		size  int64
		mtime int64
	}
	var stamps []stamp
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		stamps = append(stamps, stamp{rel: rel, size: info.Size(), mtime: info.ModTime().UnixNano()})
		return nil
	})
	if err != nil {
		return "", fmt.Errorf("service: fingerprint %s: %w", dir, err)
	}
	sort.Slice(stamps, func(a, b int) bool { return stamps[a].rel < stamps[b].rel })
	h := sha256.New()
	for _, s := range stamps {
		fmt.Fprintf(h, "%s\x00%d\x00%d\x00", s.rel, s.size, s.mtime)
	}
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}
