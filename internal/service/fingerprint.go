package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Fingerprint hashes an ensemble directory's structure — every file's
// relative path, size and modification time — into a stable hex digest.
// It is the cache-key component that invalidates answers when the
// underlying data changes: touching, replacing or adding any file under
// the ensemble root yields a different fingerprint without reading file
// contents, so the per-request cost stays at a stat walk.
func Fingerprint(dir string) (string, error) {
	type stamp struct {
		rel   string
		size  int64
		mtime int64
	}
	var stamps []stamp
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		stamps = append(stamps, stamp{rel: rel, size: info.Size(), mtime: info.ModTime().UnixNano()})
		return nil
	})
	if err != nil {
		return "", fmt.Errorf("service: fingerprint %s: %w", dir, err)
	}
	sort.Slice(stamps, func(a, b int) bool { return stamps[a].rel < stamps[b].rel })
	h := sha256.New()
	for _, s := range stamps {
		fmt.Fprintf(h, "%s\x00%d\x00%d\x00", s.rel, s.size, s.mtime)
	}
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// DefaultFingerprintTTL is the memoization window CachedFingerprint (and
// the service, by default) uses. It bounds how long a changed ensemble can
// keep serving stale cached answers, so it stays deliberately short — the
// point is only to take the stat-walk off every request on the cached-path
// floor, not to stop re-validating.
const DefaultFingerprintTTL = 250 * time.Millisecond

type fpMemoEntry struct {
	fp string
	at time.Time
}

var fpMemo = struct {
	mu       sync.Mutex
	entries  map[string]fpMemoEntry
	inflight map[string]chan struct{}
	// gens invalidates walks that were already in flight when
	// InvalidateFingerprint ran: a walk only memoizes its result if the
	// dir's generation is unchanged since the walk started.
	gens map[string]uint64
}{entries: map[string]fpMemoEntry{}, inflight: map[string]chan struct{}{}, gens: map[string]uint64{}}

// CachedFingerprint is Fingerprint memoized per ensemble directory for
// ttl (<= 0 uses DefaultFingerprintTTL). Concurrent refreshes of one dir
// single-flight into a single walk; errors are never memoized.
func CachedFingerprint(dir string, ttl time.Duration) (string, error) {
	if ttl <= 0 {
		ttl = DefaultFingerprintTTL
	}
	for {
		fpMemo.mu.Lock()
		if e, ok := fpMemo.entries[dir]; ok && time.Since(e.at) < ttl {
			fpMemo.mu.Unlock()
			return e.fp, nil
		}
		if wait := fpMemo.inflight[dir]; wait != nil {
			fpMemo.mu.Unlock()
			<-wait
			// The walk that just finished refreshed the entry (or failed);
			// loop to pick its result up under the lock.
			continue
		}
		done := make(chan struct{})
		fpMemo.inflight[dir] = done
		gen := fpMemo.gens[dir]
		fpMemo.mu.Unlock()

		fp, err := Fingerprint(dir)
		fpMemo.mu.Lock()
		delete(fpMemo.inflight, dir)
		switch {
		case err != nil:
			delete(fpMemo.entries, dir)
		case fpMemo.gens[dir] == gen:
			fpMemo.entries[dir] = fpMemoEntry{fp: fp, at: time.Now()}
		default:
			// InvalidateFingerprint ran mid-walk: this result may predate the
			// change, so return it without memoizing — the next lookup
			// re-walks.
		}
		fpMemo.mu.Unlock()
		close(done)
		return fp, err
	}
}

// InvalidateFingerprint drops dir's memoized fingerprint so the next
// lookup re-walks immediately — for callers that know they just changed
// the ensemble. A walk already in flight is invalidated too: its result is
// returned to its waiters but not memoized.
func InvalidateFingerprint(dir string) {
	fpMemo.mu.Lock()
	delete(fpMemo.entries, dir)
	fpMemo.gens[dir]++
	fpMemo.mu.Unlock()
}
