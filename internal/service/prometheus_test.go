package service

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"infera/internal/telemetry"
)

func getText(t *testing.T, url string) (string, string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type"), resp.StatusCode
}

// TestHTTPPrometheusEndpoint is the observability acceptance check: after a
// cache-miss ask, a cache-hit repeat, and an interactive ask, the Prometheus
// endpoint must expose latency histograms for at least four ask phases with
// per-ensemble labels, ask histograms split by cache and mode, and the
// queue/stage/SQL series.
func TestHTTPPrometheusEndpoint(t *testing.T) {
	treg := telemetry.NewRegistry()
	_, base := startServer(t, Config{
		Workers: 2, QueueDepth: 8,
		ApprovalTimeout: 100 * time.Millisecond, // auto-approve the interactive ask
		Metrics:         treg,
	})

	// Miss, then hit.
	if res, code := postAsk(t, base, AskRequest{Question: topHalosQ}); code != http.StatusOK || res.Error != "" {
		t.Fatalf("ask: code=%d res=%+v", code, res)
	}
	if res, code := postAsk(t, base, AskRequest{Question: topHalosQ}); code != http.StatusOK || !res.Cached {
		t.Fatalf("repeat ask: code=%d res=%+v", code, res)
	}

	// Interactive ask, driven to completion by the approval deadline.
	info := startInteractive(t, base, "default", topHalosQ, 7)
	deadline := time.Now().Add(60 * time.Second)
	for {
		var res AskResult
		if code := getJSON(t, fmt.Sprintf("%s/v1/ensembles/default/sessions/%s/result", base, info.ID), &res); code == http.StatusOK {
			if res.Error != "" {
				t.Fatalf("interactive result = %+v", &res)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interactive ask never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	body, ctype, code := getText(t, base+"/v1/metrics/prometheus")
	if code != http.StatusOK {
		t.Fatalf("prometheus endpoint code = %d", code)
	}
	if ctype != telemetry.TextContentType {
		t.Fatalf("content type = %q", ctype)
	}

	// At least four distinct ask phases, each labeled with the ensemble.
	phaseRe := regexp.MustCompile(`infera_ask_phase_seconds_count\{ensemble="default",phase="([a-z]+)"\} ([0-9]+)`)
	phases := map[string]bool{}
	for _, m := range phaseRe.FindAllStringSubmatch(body, -1) {
		if m[2] != "0" {
			phases[m[1]] = true
		}
	}
	if len(phases) < 4 {
		t.Errorf("ask phases with observations = %v, want >= 4", phases)
	}
	for _, phase := range []string{"plan", "stage", "query", "qa", "total"} {
		if !phases[phase] {
			t.Errorf("phase %q missing from prometheus output", phase)
		}
	}

	// Ask latency split by cache and mode. Three asks total: one automated
	// miss, one automated hit, one interactive miss.
	for _, want := range []string{
		`infera_ask_seconds_count{cache="miss",ensemble="default",mode="automated"} 1`,
		`infera_ask_seconds_count{cache="hit",ensemble="default",mode="automated"} 1`,
		`infera_ask_seconds_count{cache="miss",ensemble="default",mode="interactive"} 1`,
		`infera_asks_total{cache="miss",ensemble="default",mode="automated"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}

	// Queue, stage and SQL series are present and typed.
	for _, want := range []string{
		`infera_queue_depth{ensemble="default"} 8`,
		`# TYPE infera_queue_len gauge`,
		`# TYPE infera_queue_wait_seconds histogram`,
		`# TYPE infera_stage_decode_seconds histogram`,
		`infera_sql_query_seconds_count{backend="vectorized",ensemble="default"}`,
		`infera_sql_scanned_bytes_total{ensemble="default"}`,
		`# TYPE infera_sql_segments_pruned_total counter`,
		`# TYPE infera_sql_rows_filtered_total counter`,
		`infera_stage_decoded_bytes_total`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}

	// The JSON endpoint is untouched by the text exposition.
	var rm RegistryMetrics
	if code := getJSON(t, base+"/v1/metrics", &rm); code != http.StatusOK {
		t.Fatalf("/v1/metrics code = %d", code)
	}
	if rm.Completed == 0 || rm.Stage.BudgetBytes <= 0 {
		t.Errorf("registry metrics = %+v", rm)
	}
}
