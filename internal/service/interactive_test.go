package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"infera/internal/agent"
)

// driveToPending starts an interactive ask and blocks until its plan is
// awaiting approval, returning the session info and done channel.
func driveToPending(t *testing.T, svc *Service, req AskRequest) (SessionInfo, <-chan struct{}) {
	t.Helper()
	info, done, err := svc.AskInteractive(req)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, info.ID, "awaiting_approval")
	return info, done
}

func waitStatus(t *testing.T, svc *Service, id, want string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, ok := svc.Session(id)
		if ok && got.Status == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s never reached %q (last %+v)", id, want, got)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitDone(t *testing.T, done <-chan struct{}) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("interactive session never finished")
	}
}

// TestInteractiveAskFlow drives one full streaming session: plan proposed,
// revision submitted, plan revised, approved, steps stream through to the
// terminal answer event, and the stored result is fetchable.
func TestInteractiveAskFlow(t *testing.T) {
	svc := newService(t, Config{Workers: 1, ApprovalTimeout: 30 * time.Second})
	info, done := driveToPending(t, svc, AskRequest{Question: topHalosQ, Interactive: true})
	if !info.Interactive {
		t.Fatalf("info = %+v", info)
	}
	if svc.PendingApprovals() != 1 {
		t.Fatalf("pending gauge = %d", svc.PendingApprovals())
	}

	// The proposed plan is in the log before any decision, preceded only by
	// the queue_position frame stamped at enqueue time.
	events, closed, err := svc.Events(info.ID, 0)
	if err != nil || closed {
		t.Fatalf("events: %v closed=%v", err, closed)
	}
	if len(events) < 2 || events[0].Kind != agent.EventQueuePosition || events[0].Position != 1 {
		t.Fatalf("first event = %+v", events)
	}
	if events[1].Kind != agent.EventPlanProposed || events[1].Plan == nil {
		t.Fatalf("second event = %+v", events)
	}

	// Revise, then approve the revision.
	if err := svc.SubmitPlan(info.ID, agent.PlanDecision{Approve: false, Comment: "revise"}); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, info.ID, "awaiting_approval")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	revised, _, err := svc.WaitEvents(ctx, info.ID, events[len(events)-1].Seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(revised) == 0 || revised[0].Kind != agent.EventPlanRevised {
		t.Fatalf("revision events = %+v", revised)
	}
	if err := svc.SubmitPlan(info.ID, agent.PlanDecision{Approve: true}); err != nil {
		t.Fatal(err)
	}
	waitDone(t, done)

	// The stream is complete and ends with the answer event.
	all, closed, err := svc.Events(info.ID, 0)
	if err != nil || !closed {
		t.Fatalf("final events: %v closed=%v", err, closed)
	}
	last := all[len(all)-1]
	if last.Kind != agent.EventAnswer || last.Answer == nil || last.Answer.Failed {
		t.Fatalf("last event = %+v", last)
	}
	for i, ev := range all {
		if ev.Seq != i+1 {
			t.Fatalf("event %d seq %d: stream not contiguous", i, ev.Seq)
		}
	}

	res, err := svc.Result(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != "" || res.Rows != 20 || res.Cached {
		t.Fatalf("result = %+v", res)
	}
	if got, _ := svc.Session(info.ID); got.Status != "done" {
		t.Fatalf("final status = %q", got.Status)
	}
	m := svc.Metrics()
	if m.Interactive != 1 || m.PendingApprovals != 0 || m.Completed != 1 {
		t.Fatalf("metrics = %+v", m)
	}

	// Interactive answers are never cached: the same question again computes.
	res2, err := svc.Ask(AskRequest{Question: topHalosQ})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cached {
		t.Fatal("interactive answer must not populate the cache")
	}
}

// TestInteractiveApprovalTimeout: an abandoned session auto-approves at the
// deadline and completes on its own.
func TestInteractiveApprovalTimeout(t *testing.T) {
	svc := newService(t, Config{Workers: 1, ApprovalTimeout: 50 * time.Millisecond})
	info, done, err := svc.AskInteractive(AskRequest{Question: topHalosQ, Interactive: true})
	if err != nil {
		t.Fatal(err)
	}
	// Nobody ever reviews; the deadline must drive it to completion.
	waitDone(t, done)
	res, err := svc.Result(info.ID)
	if err != nil || res.Error != "" || res.Rows != 20 {
		t.Fatalf("result = %+v (%v)", res, err)
	}
	if svc.PendingApprovals() != 0 {
		t.Fatalf("pending gauge = %d", svc.PendingApprovals())
	}
}

// TestInteractiveErrors covers the typed failure modes of the session
// sub-resources.
func TestInteractiveErrors(t *testing.T) {
	svc := newService(t, Config{Workers: 1, ApprovalTimeout: 30 * time.Second})

	if _, _, err := svc.Events("q-9999", 0); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("unknown session err = %v", err)
	}
	if err := svc.SubmitPlan("q-9999", agent.PlanDecision{Approve: true}); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("unknown submit err = %v", err)
	}

	// A blocking ask's record is not interactive.
	res, err := svc.Ask(AskRequest{Question: topHalosQ})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Events(res.RequestID, 0); !errors.Is(err, ErrNotInteractive) {
		t.Fatalf("non-interactive events err = %v", err)
	}

	info, done := driveToPending(t, svc, AskRequest{Question: topHalosQ, Seed: 5, Interactive: true})
	// Result before completion -> ErrNotFinished.
	if _, err := svc.Result(info.ID); !errors.Is(err, ErrNotFinished) {
		t.Fatalf("early result err = %v", err)
	}
	if err := svc.SubmitPlan(info.ID, agent.PlanDecision{Approve: true}); err != nil {
		t.Fatal(err)
	}
	waitDone(t, done)
	// No plan pending after the run -> ErrNoPendingPlan.
	if err := svc.SubmitPlan(info.ID, agent.PlanDecision{Approve: true}); !errors.Is(err, agent.ErrNoPendingPlan) {
		t.Fatalf("late submit err = %v", err)
	}

	// Empty question rejected up front.
	if _, _, err := svc.AskInteractive(AskRequest{Interactive: true}); !errors.Is(err, ErrEmptyQuestion) {
		t.Fatalf("empty question err = %v", err)
	}
}

// TestInteractiveCloseDrains: Close with a session blocked in review must
// abort the review (auto-approve) and drain rather than hang on the
// approval deadline.
func TestInteractiveCloseDrains(t *testing.T) {
	svc := newService(t, Config{Workers: 1, ApprovalTimeout: time.Hour})
	_, done := driveToPending(t, svc, AskRequest{Question: topHalosQ, Interactive: true})
	start := time.Now()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 90*time.Second {
		t.Fatalf("close took %s (held by approval deadline?)", elapsed)
	}
	waitDone(t, done)
}
