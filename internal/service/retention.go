package service

import (
	"sort"
	"time"

	"infera/internal/provenance"
)

// sweepProvenance garbage-collects on-disk session artifact trails per the
// ProvenanceMaxAge / ProvenanceMaxBytes retention policy. It runs at Close
// — shard close or daemon shutdown — after the answer cache has been
// persisted, so the spare set is exactly the sessions a revived shard can
// still serve provenance for. Trails referenced by resident cache entries
// are never removed; among the rest, anything older than MaxAge goes, then
// the oldest go until the total fits MaxBytes. The daemon's live request
// path never pays for this walk.
func (s *Service) sweepProvenance() (removed int, freed int64) {
	maxAge, maxBytes := s.cfg.ProvenanceMaxAge, s.cfg.ProvenanceMaxBytes
	if maxAge <= 0 && maxBytes <= 0 {
		return 0, 0
	}
	spare := map[string]bool{}
	for _, e := range s.cache.Snapshot() {
		if e.Result != nil {
			spare[e.Result.SessionID] = true
		}
	}

	type trail struct {
		store  *provenance.Store
		id     string
		bytes  int64
		newest time.Time
	}
	stores := make([]*provenance.Store, 0, len(s.assistants)+len(s.extraStores))
	for _, a := range s.assistants {
		stores = append(stores, a.Store())
	}
	stores = append(stores, s.extraStores...)

	var trails []trail
	var total int64
	for _, store := range stores {
		ids, err := store.Sessions()
		if err != nil {
			continue
		}
		for _, id := range ids {
			bytes, newest, err := store.SessionStat(id)
			if err != nil {
				continue
			}
			total += bytes
			if spare[id] {
				continue // referenced by the persisted answer cache
			}
			trails = append(trails, trail{store: store, id: id, bytes: bytes, newest: newest})
		}
	}

	drop := func(t trail) {
		if err := t.store.RemoveSession(t.id); err != nil {
			s.logf("service: provenance sweep: remove %s: %v", t.id, err)
			return
		}
		removed++
		freed += t.bytes
		total -= t.bytes
	}

	// Age rule first: everything past MaxAge goes regardless of budget.
	remaining := trails[:0]
	now := time.Now()
	for _, t := range trails {
		if maxAge > 0 && now.Sub(t.newest) > maxAge {
			drop(t)
			continue
		}
		remaining = append(remaining, t)
	}
	// Size rule: oldest unreferenced trails leave until the total fits.
	// Note total still counts spared trails — the budget bounds the whole
	// directory, and spared sessions simply cannot be chosen.
	if maxBytes > 0 && total > maxBytes {
		sort.Slice(remaining, func(i, j int) bool { return remaining[i].newest.Before(remaining[j].newest) })
		for _, t := range remaining {
			if total <= maxBytes {
				break
			}
			drop(t)
		}
	}
	return removed, freed
}
