package service

import (
	"strings"
	"testing"

	"infera/internal/stage"
)

// TestShardScriptLimitOverrides proves the per-shard script budget plumbing
// end to end: a shard registered with a starvation-level fuel override
// surfaces a structured TimeoutError in its answer, while a sibling shard
// with default limits — and the registry as a whole — keeps answering.
func TestShardScriptLimitOverrides(t *testing.T) {
	st := stage.New(1<<30, 4)
	reg := NewRegistry(RegistryConfig{
		Defaults: Config{
			Workers:  2,
			Seed:     1,
			NewModel: errFreeModel,
			Stage:    st,
		},
		WorkDir:       t.TempDir(),
		MaxLiveShards: 4,
	})
	t.Cleanup(func() { reg.Close() })

	if _, err := reg.RegisterWith("tight", testEnsembleSeeded(t, 3), ShardOptions{
		ScriptFuel: 5, // every analysis script exceeds this immediately
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("roomy", testEnsembleSeeded(t, 11)); err != nil {
		t.Fatal(err)
	}

	// The starved shard answers in-band with the structured budget error —
	// no panic, no hung worker.
	res, err := reg.Ask("tight", AskRequest{Question: topHalosQ})
	if err != nil {
		t.Fatalf("ask tight: transport error %v", err)
	}
	if res.Error == "" {
		t.Fatalf("starved shard produced a clean answer: %+v", res)
	}
	if !strings.Contains(res.Error, "TimeoutError: script exceeded its instruction budget") {
		t.Fatalf("error = %q, want structured fuel TimeoutError", res.Error)
	}

	// The sibling shard with default limits is unaffected.
	ok, err := reg.Ask("roomy", AskRequest{Question: topHalosQ})
	if err != nil {
		t.Fatalf("ask roomy: %v", err)
	}
	if ok.Error != "" || ok.Rows != 20 {
		t.Fatalf("roomy shard = %+v", ok)
	}

	// The starved shard itself still serves requests after the failure.
	again, err := reg.Ask("tight", AskRequest{Question: "How many friends-of-friends halos does timestep 99 of simulation 0 have?"})
	if err != nil {
		t.Fatalf("tight shard stopped serving: %v", err)
	}
	_ = again // in-band error is acceptable; the shard must simply answer
}

// TestShardScriptLimitValidation locks in rejection of negative overrides.
func TestShardScriptLimitValidation(t *testing.T) {
	st := stage.New(1<<30, 4)
	reg := NewRegistry(RegistryConfig{
		Defaults: Config{Workers: 1, Seed: 1, NewModel: errFreeModel, Stage: st},
		WorkDir:  t.TempDir(),
	})
	t.Cleanup(func() { reg.Close() })

	dir := testEnsembleSeeded(t, 3)
	for _, opts := range []ShardOptions{
		{ScriptFuel: -1},
		{ScriptMemBytes: -1},
		{ScriptTimeoutMS: -1},
	} {
		if _, err := reg.RegisterWith("bad", dir, opts); err == nil {
			t.Fatalf("opts %+v: negative override accepted", opts)
		}
	}
}
