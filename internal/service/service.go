// Package service turns the one-shot core.Assistant into a concurrent
// multi-session query service: a session manager owns a pool of
// per-ensemble Assistants, a bounded worker pool drains a request queue so
// N questions run concurrently against isolated staging databases, and an
// LRU answer cache keyed by (ensemble fingerprint, normalized question,
// seed) short-circuits repeat questions. Concurrent identical misses
// single-flight into one computation, and the session-record history is
// bounded by MaxSessions. The HTTP API in http.go exposes the whole thing
// as a daemon (cmd/inferad).
package service

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"infera/internal/agent"
	"infera/internal/core"
	"infera/internal/hacc"
	"infera/internal/llm"
	"infera/internal/provenance"
	"infera/internal/sandbox"
	"infera/internal/stage"
	"infera/internal/telemetry"
)

// Config configures a Service.
type Config struct {
	// EnsembleDir is the root of a generated ensemble (required).
	EnsembleDir string
	// Name identifies this service in telemetry: every series it records
	// carries ensemble=<Name>. The registry sets it to the shard name;
	// empty records unlabeled series (single-ensemble daemons).
	Name string
	// Metrics is the telemetry registry ask latency histograms, queue
	// gauges and per-phase workflow spans are recorded into. Nil records
	// nothing; the JSON /metrics snapshot is unaffected either way.
	Metrics *telemetry.Registry
	// WorkDir holds per-worker staging state; temp dirs when empty.
	WorkDir string
	// Workers is the assistant-pool size — the concurrency bound. Defaults
	// to min(4, GOMAXPROCS).
	Workers int
	// QueueDepth bounds pending requests beyond the running ones; a full
	// queue rejects with ErrQueueFull (backpressure, not OOM). Default 64.
	QueueDepth int
	// CacheSize is the answer-cache capacity in entries. Default 128.
	CacheSize int
	// MaxSessions bounds the in-memory session-record history; the oldest
	// finished records are dropped past it (their on-disk provenance
	// remains, but /sessions no longer lists them). Default 4096.
	MaxSessions int
	// Seed is the default model seed for requests that don't set one.
	Seed int64
	// NewModel builds the per-request model from the request seed. Defaults
	// to llm.NewSim(llm.SimConfig{Seed: seed}).
	NewModel func(seed int64) llm.Client
	// TrimHistory, SkipDocumentation and MaxRevisions are forwarded to
	// every pooled Assistant.
	TrimHistory       bool
	SkipDocumentation bool
	MaxRevisions      int
	// UseServer executes sandbox code over loopback HTTP per assistant.
	UseServer bool
	// ScriptLimits budgets every sandboxed script execution (fuel, memory,
	// wall clock, artifact bytes, stdout lines); forwarded to every pooled
	// Assistant. The zero value runs unrestricted; the daemons default it
	// to sandbox.DefaultLimits via the -script-* flags.
	ScriptLimits sandbox.Limits
	// ScriptBackend selects the script engine (sandbox.BackendVM when
	// empty, or sandbox.BackendTreeWalk as the reference escape hatch).
	ScriptBackend string
	// Stage is the staging cache the assistant pool shares, so concurrent
	// sessions staging overlapping (sim, step) slices decode each source
	// file once. Nil uses the process-wide stage.Shared() cache; set an
	// isolated cache in tests that assert on its counters.
	Stage *stage.Cache
	// FingerprintTTL memoizes the per-request ensemble fingerprint walk
	// for this long: 0 uses DefaultFingerprintTTL, negative disables
	// memoization (every request re-walks, the pre-memoization behavior).
	FingerprintTTL time.Duration
	// KeepStagingDBs preserves per-question staging databases after the
	// answer is computed. Off by default: the daemon reclaims them once
	// the workflow finishes (the provenance trail, which /sessions serves,
	// is kept either way), so sustained unique-question load doesn't grow
	// disk without bound.
	KeepStagingDBs bool
	// ProvenanceMaxAge, when positive, garbage-collects session artifact
	// trails older than this at Close (shard close, daemon shutdown).
	// Trails whose sessions are still referenced by the answer cache are
	// spared — a revived shard must be able to resolve the provenance
	// behind its persisted answers.
	ProvenanceMaxAge time.Duration
	// ProvenanceMaxBytes, when positive, bounds the total on-disk size of
	// session trails at Close: oldest unreferenced trails are removed until
	// the rest fit.
	ProvenanceMaxBytes int64
	// ApprovalTimeout bounds how long an interactive session's plan review
	// blocks its worker before auto-approving — the expiry for abandoned
	// sessions whose client never comes back. 0 uses
	// agent.DefaultAutoApprove; it applies per review round.
	ApprovalTimeout time.Duration
	// EventBuffer caps each interactive session's in-memory event log
	// (oldest events drop past it). 0 uses agent.DefaultEventCapacity.
	EventBuffer int
	// AskSlots, when non-nil, is a process-wide semaphore bounding ask
	// execution across every Service sharing the channel: a worker acquires
	// a slot before running a task and releases it after, so N shards with
	// M workers each still execute at most cap(AskSlots) asks at once. The
	// registry wires one channel into all its shards when
	// RegistryConfig.MaxConcurrentAsks is set — a node-level capacity
	// budget beneath the per-shard pools.
	AskSlots chan struct{}
	// Logf receives progress lines when set.
	Logf func(format string, args ...any)
}

// Errors returned by Ask and the interactive-session methods.
var (
	ErrQueueFull      = errors.New("service: request queue full")
	ErrClosed         = errors.New("service: closed")
	ErrEmptyQuestion  = errors.New("service: empty question")
	ErrUnknownSession = errors.New("service: unknown session")
	ErrNotInteractive = errors.New("service: session is not interactive")
	ErrNotFinished    = errors.New("service: session not finished")
)

// ArtifactRef is the wire form of a provenance artifact pointer.
type ArtifactRef struct {
	Kind  string `json:"kind"`
	Name  string `json:"name"`
	File  string `json:"file"`
	Bytes int64  `json:"bytes"`
}

// AskRequest is one question for the service.
type AskRequest struct {
	Question string `json:"question"`
	// Seed selects the model stream; 0 uses the service default.
	Seed int64 `json:"seed,omitempty"`
	// Interactive runs the ask as a streaming session: the call returns a
	// session handle immediately (HTTP: 202), lifecycle events stream from
	// the session's event log, and the plan blocks for approval/revision
	// until submitted or the approval deadline auto-approves. Interactive
	// answers bypass the answer cache — a human may have reshaped the plan,
	// so the result is not a pure function of (fingerprint, question, seed).
	Interactive bool `json:"interactive,omitempty"`
}

// AskResult is the wire answer for one request.
type AskResult struct {
	// RequestID is the service-level session record for this request.
	RequestID string `json:"request_id"`
	// SessionID is the provenance session holding the artifact trail; for
	// cached answers it points at the session that originally computed it.
	SessionID string `json:"session_id"`
	Question  string `json:"question"`
	Seed      int64  `json:"seed"`
	Cached    bool   `json:"cached"`

	Summary      string        `json:"summary,omitempty"`
	AnswerCSV    string        `json:"answer_csv,omitempty"`
	Rows         int           `json:"rows"`
	PlanSteps    int           `json:"plan_steps"`
	Tokens       int           `json:"tokens"`
	RedoCount    int           `json:"redo_count"`
	StorageBytes int64         `json:"storage_bytes"`
	Artifacts    []ArtifactRef `json:"artifacts,omitempty"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	Error        string        `json:"error,omitempty"`
}

// SessionInfo is the service-level record of one request's lifecycle.
type SessionInfo struct {
	ID       string `json:"id"`
	Question string `json:"question"`
	Seed     int64  `json:"seed"`
	// Status is "queued", "running", "awaiting_approval" (interactive: plan
	// proposed, review pending), "done", "failed", "cached" or "rejected"
	// (backpressure: the request never ran).
	Status string `json:"status"`
	Worker int    `json:"worker"`
	// Interactive marks a streaming session with an event log and plan
	// approval gate.
	Interactive bool `json:"interactive,omitempty"`
	// SourceSession, for cached requests, names the session whose answer
	// was served; its provenance trail answers /provenance for this record.
	SourceSession string    `json:"source_session,omitempty"`
	Enqueued      time.Time `json:"enqueued"`
	Started       time.Time `json:"started"`
	Finished      time.Time `json:"finished"`
	Tokens        int       `json:"tokens"`
	Error         string    `json:"error,omitempty"`
}

// Metrics is the /metrics snapshot.
type Metrics struct {
	Workers     int   `json:"workers"`
	QueueDepth  int   `json:"queue_depth"`
	QueueLen    int   `json:"queue_len"`
	Queued      int64 `json:"queued_total"`
	Running     int64 `json:"running"`
	Completed   int64 `json:"completed_total"`
	Failed      int64 `json:"failed_total"`
	Rejected    int64 `json:"rejected_total"`
	CachedTotal int64 `json:"cached_total"`
	Tokens      int64 `json:"tokens_total"`
	// Interactive counts streaming sessions started; PendingApprovals is
	// the gauge of sessions blocked on a plan decision right now.
	Interactive      int64      `json:"interactive_total"`
	PendingApprovals int        `json:"pending_approvals"`
	Cache            CacheStats `json:"cache"`
	// Stage reports the staging cache this service decodes through. The
	// cache is normally the process-wide stage.Shared() instance, shared
	// by every shard in the registry — so these counters (including
	// stat_saves and partial_hits) are process totals, identical on every
	// shard's snapshot, not per-shard slices. Aggregate consumers must
	// count them once, never sum them across shards; RegistryMetrics does
	// exactly that by reporting the shared cache once at top level.
	Stage       stage.Stats `json:"stage"`
	Fingerprint string      `json:"fingerprint"`
	// FingerprintError reports a failed ensemble-dir walk (e.g. unmounted
	// volume) so monitors can tell a broken fingerprint from a real one.
	FingerprintError string `json:"fingerprint_error,omitempty"`
}

type task struct {
	info *SessionInfo
	req  AskRequest
	key  CacheKey
	done chan *AskResult
	// ia is the interactive-session state (event log + approval gate); nil
	// for blocking asks.
	ia *interactive
}

// Service is the concurrent multi-session query front-end over a pool of
// Assistants. Create with New, serve over HTTP with NewServer, release with
// Close.
type Service struct {
	cfg        Config
	assistants []*core.Assistant
	// extraStores are provenance stores from worker dirs of a previous
	// incarnation beyond the current pool size (a restart with fewer
	// workers); revived cache entries may reference sessions in them.
	extraStores []*provenance.Store
	cache       *Cache
	queue       chan *task
	wg          sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	nextID   int
	sessions map[string]*SessionInfo
	order    []string
	// interactive holds the event log, approval gate and final result of
	// each streaming session, dropped when its record is trimmed.
	interactive map[string]*interactive
	// pendingApprovals gauges sessions blocked in plan review.
	pendingApprovals int
	// sessionWorker maps provenance session ID -> assistant index, so the
	// provenance endpoint can find the right store.
	sessionWorker map[string]int
	// inflight coalesces concurrent identical cache misses: the first
	// request for a key computes, the rest wait on its done channel and
	// then serve from the freshly populated cache (single-flight).
	inflight map[CacheKey]chan struct{}
	m        Metrics

	// pending mirrors the queue channel's FIFO contents (guarded by mu) so
	// queued interactive sessions can be told their 1-based position; the
	// channel itself cannot be inspected. Entries are appended on enqueue
	// and removed when a worker picks the task up.
	pending []*task

	// labels and the pre-resolved instruments below record telemetry when
	// cfg.Metrics is set; all are safe no-ops otherwise.
	labels     []telemetry.Label
	queueLen   *telemetry.Gauge
	queueWait  *telemetry.Histogram
	approvals  *telemetry.Gauge
	queueDepth *telemetry.Gauge
}

// New builds the assistant pool and starts the workers.
func New(cfg Config) (*Service, error) {
	if cfg.EnsembleDir == "" {
		return nil, errors.New("service: EnsembleDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
		if cfg.Workers > 4 {
			cfg.Workers = 4
		}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 128
	}
	if cfg.NewModel == nil {
		cfg.NewModel = func(seed int64) llm.Client {
			return llm.NewSim(llm.SimConfig{Seed: seed})
		}
	}

	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 4096
	}
	if cfg.Stage == nil {
		cfg.Stage = stage.Shared()
	}

	s := &Service{
		cfg:           cfg,
		cache:         NewCache(cfg.CacheSize),
		queue:         make(chan *task, cfg.QueueDepth),
		sessions:      map[string]*SessionInfo{},
		sessionWorker: map[string]int{},
		inflight:      map[CacheKey]chan struct{}{},
		interactive:   map[string]*interactive{},
	}
	if cfg.Name != "" {
		s.labels = []telemetry.Label{telemetry.L("ensemble", cfg.Name)}
	}
	if r := cfg.Metrics; r != nil {
		r.SetHelp("infera_ask_seconds", "End-to-end ask latency, labeled by cache hit/miss and interactive/automated mode.")
		r.SetHelp("infera_asks_total", "Total asks served, labeled like infera_ask_seconds.")
		r.SetHelp("infera_queue_wait_seconds", "Time an ask spent waiting in the bounded worker queue.")
		r.SetHelp("infera_queue_len", "Asks currently waiting in the worker queue.")
		r.SetHelp("infera_queue_depth", "Capacity of the bounded worker queue.")
		r.SetHelp("infera_pending_approvals", "Interactive sessions currently blocked on a plan decision.")
		r.SetHelp(agent.MetricAskPhaseSeconds, "Per-ask wall-clock time by workflow phase (plan, stage, query, qa, python, viz, total).")
		s.queueLen = r.Gauge("infera_queue_len", s.labels...)
		s.queueWait = r.Histogram("infera_queue_wait_seconds", nil, s.labels...)
		s.approvals = r.Gauge("infera_pending_approvals", s.labels...)
		s.queueDepth = r.Gauge("infera_queue_depth", s.labels...)
		s.queueDepth.Set(int64(cfg.QueueDepth))
	}
	// The catalog is read-only after load; one load serves the whole pool.
	cat, err := hacc.Load(cfg.EnsembleDir)
	if err != nil {
		return nil, fmt.Errorf("service: load ensemble: %w", err)
	}
	for i := 0; i < cfg.Workers; i++ {
		workDir := ""
		if cfg.WorkDir != "" {
			workDir = filepath.Join(cfg.WorkDir, fmt.Sprintf("worker-%02d", i))
		}
		a, err := core.New(core.Config{
			EnsembleDir:       cfg.EnsembleDir,
			Catalog:           cat,
			WorkDir:           workDir,
			Seed:              cfg.Seed,
			TrimHistory:       cfg.TrimHistory,
			SkipDocumentation: cfg.SkipDocumentation,
			MaxRevisions:      cfg.MaxRevisions,
			UseServer:         cfg.UseServer,
			ScriptLimits:      cfg.ScriptLimits,
			ScriptBackend:     cfg.ScriptBackend,
			Stage:             cfg.Stage,
			// Kept staging DBs must survive on disk, so only then does the
			// session DB pay eager persistence; the default reclaim path
			// stages zero-copy in memory.
			DurableStaging: cfg.KeepStagingDBs,
			Logf:           cfg.Logf,
			Metrics:        cfg.Metrics,
			MetricLabels:   s.labels,
		})
		if err != nil {
			for _, prev := range s.assistants {
				prev.Close()
			}
			return nil, fmt.Errorf("service: assistant %d: %w", i, err)
		}
		s.assistants = append(s.assistants, a)
	}
	// Revive the persisted answer cache (if any) before traffic arrives;
	// entries from a changed ensemble are dropped by fingerprint.
	s.loadPersistedCache()
	// A stable WorkDir may hold provenance sessions from a previous
	// incarnation (daemon restart, shard revival); resume the ID sequence
	// past ALL of them — including worker dirs beyond the current pool
	// size, whose sessions persisted cache entries may still reference —
	// so new sessions never collide with (or shadow) on-disk trails. The
	// orphaned dirs' stores stay readable for provenance resolution.
	if cfg.WorkDir != "" {
		current := map[string]bool{}
		for _, a := range s.assistants {
			current[a.WorkDir()] = true
		}
		workerDirs, _ := filepath.Glob(filepath.Join(cfg.WorkDir, "worker-*"))
		for _, w := range workerDirs {
			entries, err := os.ReadDir(filepath.Join(w, "sessions"))
			if err != nil {
				continue
			}
			for _, e := range entries {
				var n int
				if _, err := fmt.Sscanf(e.Name(), "q-%d", &n); err == nil && n > s.nextID {
					s.nextID = n
				}
			}
			if !current[w] && len(entries) > 0 {
				if store, err := provenance.NewStore(filepath.Join(w, "sessions")); err == nil {
					s.extraStores = append(s.extraStores, store)
				}
			}
		}
	}
	for i, a := range s.assistants {
		s.wg.Add(1)
		go s.worker(i, a)
	}
	return s, nil
}

// Close drains the queue, stops the workers, persists the answer cache
// (when WorkDir is stable — see persist.go) and releases the assistants.
// Pending requests complete; new Asks fail with ErrClosed.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Unblock plan reviews (current and queued) with immediate auto-approval
	// so the drain below is never held back by a full approval deadline.
	for _, ia := range s.interactive {
		ia.feedback.Abort()
	}
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
	var first error
	// All workers have stopped, so the cache is quiescent: this snapshot is
	// complete, including answers computed by the final drain.
	if err := s.persistCache(); err != nil {
		first = err
	}
	// Retention sweep after the persist: the snapshot just written defines
	// exactly which sessions the revived cache can still reference.
	if removed, freed := s.sweepProvenance(); removed > 0 {
		s.logf("service: provenance sweep removed %d session trail(s), %d bytes", removed, freed)
	}
	for _, a := range s.assistants {
		if err := a.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Ask answers one question, serving from the cache when possible and
// otherwise queueing it for a pooled worker. Concurrent identical misses
// coalesce: one request computes, the rest wait and serve from the freshly
// populated cache. Ask blocks until the answer is ready; concurrency comes
// from calling it from many goroutines (each HTTP request does). A full
// queue fails fast with ErrQueueFull.
func (s *Service) Ask(req AskRequest) (*AskResult, error) {
	if req.Question == "" {
		return nil, ErrEmptyQuestion
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.Seed
	}
	req.Seed = seed
	start := time.Now()
	fp, err := s.fingerprint()
	if err != nil {
		return nil, err
	}
	key := CacheKey{Fingerprint: fp, Question: NormalizeQuestion(req.Question), Seed: seed}

	// Cache lookup and leader election are one atomic step under mu, so a
	// burst of identical questions yields exactly one miss (the leader's);
	// followers wait without touching the counters and score a hit once
	// the leader has populated the cache.
	var done chan struct{}
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		wait := s.inflight[key]
		if wait == nil {
			if hit, ok := s.cache.Get(key); ok {
				s.mu.Unlock()
				return s.serveCached(req, hit, start), nil
			}
			done = make(chan struct{})
			s.inflight[key] = done
			s.mu.Unlock()
			break // this request is the leader: compute below
		}
		s.mu.Unlock()
		// Another request is computing this exact key; wait for it, then
		// re-check (a failed leader leaves the cache unpopulated, and the
		// next pass elects a new leader).
		<-wait
	}
	defer func() {
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(done)
	}()

	info := s.newSessionRecord(req, "queued")
	t := &task{info: info, req: req, key: key, done: make(chan *AskResult, 1)}
	s.mu.Lock()
	if s.closed {
		s.m.Rejected++
		s.mu.Unlock()
		s.finishRecord(info, "rejected", 0, ErrClosed.Error())
		return nil, ErrClosed
	}
	select {
	case s.queue <- t:
		s.m.Queued++
		s.enqueuedLocked(t)
		s.mu.Unlock()
	default:
		s.m.Rejected++
		s.mu.Unlock()
		s.finishRecord(info, "rejected", 0, ErrQueueFull.Error())
		return nil, ErrQueueFull
	}
	res := <-t.done
	s.observeAsk("miss", "automated", res.Elapsed)
	return res, nil
}

// observeAsk records one completed ask into the latency histogram and
// total counter, split by cache hit/miss and interactive/automated mode.
// A no-op without a metrics registry.
func (s *Service) observeAsk(cache, mode string, elapsed time.Duration) {
	r := s.cfg.Metrics
	if r == nil {
		return
	}
	labels := make([]telemetry.Label, 0, len(s.labels)+2)
	labels = append(labels, s.labels...)
	labels = append(labels, telemetry.L("cache", cache), telemetry.L("mode", mode))
	r.Histogram("infera_ask_seconds", nil, labels...).ObserveDuration(elapsed)
	r.Counter("infera_asks_total", labels...).Inc()
}

// enqueuedLocked mirrors a just-queued task into the pending list and
// tells an interactive session its 1-based queue position (1 = next to be
// picked up). Caller holds mu — the channel send and the mirror append
// are one atomic step, so mirror order matches channel FIFO order.
func (s *Service) enqueuedLocked(t *task) {
	s.pending = append(s.pending, t)
	s.queueLen.Set(int64(len(s.pending)))
	if t.ia != nil {
		t.ia.events.Append(agent.Event{Kind: agent.EventQueuePosition, Position: len(s.pending)})
	}
}

// dequeued removes a task a worker just picked up from the pending mirror
// and re-announces the updated position to every interactive session
// still waiting — each SSE stream sees its position count down to 1
// before its own step events begin. The queue is depth-bounded, so the
// O(pending) re-announce is trivially cheap.
func (s *Service) dequeued(t *task) {
	s.mu.Lock()
	for i, p := range s.pending {
		if p == t {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	s.queueLen.Set(int64(len(s.pending)))
	// Re-announce under mu: a task's removal and every announce targeting
	// it are serialized by the lock, so a session's queue_position events
	// always precede its worker's first step event.
	for i, p := range s.pending {
		if p.ia != nil {
			p.ia.events.Append(agent.Event{Kind: agent.EventQueuePosition, Position: i + 1})
		}
	}
	s.mu.Unlock()
	s.queueWait.ObserveDuration(time.Since(t.info.Enqueued))
}

// serveCached records and returns a cache hit.
func (s *Service) serveCached(req AskRequest, hit *AskResult, start time.Time) *AskResult {
	info := s.newSessionRecord(req, "cached")
	now := time.Now()
	s.mu.Lock()
	info.SourceSession = hit.SessionID
	info.Started, info.Finished = now, now
	info.Tokens = 0 // served from memory: no model calls
	s.m.CachedTotal++
	s.mu.Unlock()
	out := *hit
	out.RequestID = info.ID
	out.Question = req.Question // echo this request's phrasing, not the original's
	out.Cached = true
	out.Elapsed = time.Since(start)
	s.observeAsk("hit", "automated", out.Elapsed)
	s.logf("service: %s cache hit for %q (session %s)", info.ID, req.Question, hit.SessionID)
	return &out
}

// newSessionRecord allocates the next service session ID and records it,
// dropping the oldest finished records past MaxSessions so a long-running
// daemon's history stays bounded.
func (s *Service) newSessionRecord(req AskRequest, status string) *SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	info := &SessionInfo{
		ID:       fmt.Sprintf("q-%04d", s.nextID),
		Question: req.Question,
		Seed:     req.Seed,
		Status:   status,
		Worker:   -1,
		Enqueued: time.Now(),
	}
	s.sessions[info.ID] = info
	s.order = append(s.order, info.ID)
	for len(s.order) > s.cfg.MaxSessions {
		oldest := s.sessions[s.order[0]]
		if oldest.Status == "queued" || oldest.Status == "running" || oldest.Status == "awaiting_approval" {
			break // never drop live requests; trim resumes once they finish
		}
		delete(s.sessions, oldest.ID)
		delete(s.sessionWorker, oldest.ID)
		// A trimmed interactive record releases its event log and stored
		// result with it — the expiry path for long-abandoned streams.
		delete(s.interactive, oldest.ID)
		s.order = s.order[1:]
	}
	return info
}

func (s *Service) finishRecord(info *SessionInfo, status string, tokens int, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info.Status = status
	info.Finished = time.Now()
	info.Tokens = tokens
	info.Error = errMsg
	switch status {
	case "done":
		s.m.Completed++
	case "failed":
		s.m.Failed++
	}
	s.m.Tokens += int64(tokens)
}

// worker drains the queue with exclusive ownership of one Assistant.
func (s *Service) worker(idx int, a *core.Assistant) {
	defer s.wg.Done()
	for t := range s.queue {
		s.dequeued(t)
		s.mu.Lock()
		t.info.Status = "running"
		t.info.Worker = idx
		t.info.Started = time.Now()
		s.sessionWorker[t.info.ID] = idx
		s.m.Running++
		s.mu.Unlock()

		// The node-wide ask budget (when configured) is held only for the
		// execution itself — queueing above stays unbounded by it.
		if s.cfg.AskSlots != nil {
			s.cfg.AskSlots <- struct{}{}
		}
		res := s.runTask(idx, a, t)
		if s.cfg.AskSlots != nil {
			<-s.cfg.AskSlots
		}

		s.mu.Lock()
		s.m.Running--
		if t.ia != nil {
			t.ia.result = res
		}
		s.mu.Unlock()
		if t.ia != nil {
			// Store-then-close ordering: a reader that drains the stream to
			// its close is guaranteed to find the result.
			t.ia.events.Close()
			close(t.ia.done)
			// Interactive asks resolve here, not in a blocked Ask call, so
			// their latency is recorded by the worker that finished them.
			s.observeAsk("miss", "interactive", res.Elapsed)
		}
		t.done <- res
	}
}

func (s *Service) runTask(idx int, a *core.Assistant, t *task) *AskResult {
	start := time.Now()
	opts := core.AskOptions{
		Model:     s.cfg.NewModel(t.req.Seed),
		SessionID: t.info.ID,
	}
	if t.ia != nil {
		opts.Feedback = t.ia.feedback
		opts.Events = t.ia.events
	}
	ans, runErr := a.AskWith(t.req.Question, opts)
	res := &AskResult{
		RequestID: t.info.ID,
		SessionID: t.info.ID,
		Question:  t.req.Question,
		Seed:      t.req.Seed,
		Elapsed:   time.Since(start),
	}
	if ans == nil {
		res.Error = runErr.Error()
		s.finishRecord(t.info, "failed", 0, res.Error)
		return res
	}
	res.Summary = ans.Summary
	res.PlanSteps = len(ans.State.Plan.Steps)
	res.Tokens = ans.State.Usage.Total()
	res.RedoCount = ans.State.RedoCount
	res.StorageBytes = ans.DBBytes + ans.ProvenanceBytes
	for _, e := range ans.Artifacts {
		res.Artifacts = append(res.Artifacts, ArtifactRef{Kind: e.Kind, Name: e.Name, File: e.File, Bytes: e.Bytes})
	}
	if ans.Answer != nil {
		res.Rows = ans.Answer.NumRows()
		res.AnswerCSV = frameCSV(ans)
	}
	if !s.cfg.KeepStagingDBs {
		// The staging DB is scratch space once the run finishes; artifacts
		// live in the provenance trail.
		_ = a.RemoveStagingDB(t.info.ID)
	}
	if runErr != nil {
		res.Error = runErr.Error()
		s.finishRecord(t.info, "failed", res.Tokens, res.Error)
		return res
	}
	s.finishRecord(t.info, "done", res.Tokens, "")
	if t.ia != nil {
		// Interactive answers are not cached: a reviewer may have reshaped
		// the plan, so the result is not reproducible from the cache key.
		s.logf("service: %s answered interactive %q on worker %d in %s (%d tokens)",
			t.info.ID, t.req.Question, idx, res.Elapsed.Round(time.Millisecond), res.Tokens)
		return res
	}
	// Cache only under a fingerprint that still matches the ensemble. The
	// key was resolved (possibly from the TTL memo) at enqueue time, but
	// the workflow staged whatever bytes were on disk during the run — if
	// the ensemble changed in between, this answer must not be keyed to
	// the old state. One uncached walk per computed answer is noise next
	// to the workflow itself; the memoization win is on the cached path.
	if fp, err := Fingerprint(s.cfg.EnsembleDir); err == nil && fp == t.key.Fingerprint {
		s.cache.Put(t.key, res)
	}
	s.logf("service: %s answered %q on worker %d in %s (%d tokens)",
		t.info.ID, t.req.Question, idx, res.Elapsed.Round(time.Millisecond), res.Tokens)
	return res
}

func frameCSV(ans *core.Answer) string {
	var buf bytes.Buffer
	if err := ans.Answer.WriteCSV(&buf); err != nil {
		return ""
	}
	return buf.String()
}

// Sessions returns the session records in creation order.
func (s *Service) Sessions() []SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionInfo, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.sessions[id])
	}
	return out
}

// Session returns one record by ID.
func (s *Service) Session(id string) (SessionInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.sessions[id]
	if !ok {
		return SessionInfo{}, false
	}
	return *info, true
}

// resolveTarget maps a session-record ID to the provenance session that
// holds its artifact trail (itself, or SourceSession for cached requests),
// opened from the store that contains it. When the backing record was
// trimmed from the bounded history — or revived from a persisted cache and
// computed by a previous incarnation — the trail is still on disk, so
// resolution falls back to scanning the pool's stores and any orphaned
// worker stores a restart left behind.
func (s *Service) resolveTarget(id string) (*provenance.Session, error) {
	s.mu.Lock()
	info, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: unknown session %q", id)
	}
	target := info.ID
	if info.SourceSession != "" {
		target = info.SourceSession
	}
	idx, ok := s.sessionWorker[target]
	s.mu.Unlock()
	if ok {
		return s.assistants[idx].Store().OpenSession(target)
	}
	stores := make([]*provenance.Store, 0, len(s.assistants)+len(s.extraStores))
	for _, a := range s.assistants {
		stores = append(stores, a.Store())
	}
	stores = append(stores, s.extraStores...)
	for _, store := range stores {
		if sess, err := store.OpenSession(target); err == nil {
			return sess, nil
		}
	}
	return nil, fmt.Errorf("service: session %q has no provenance", id)
}

// Provenance returns the manifest of the provenance session backing record
// id, following SourceSession for cached requests.
func (s *Service) Provenance(id string) ([]provenance.Entry, error) {
	sess, err := s.resolveTarget(id)
	if err != nil {
		return nil, err
	}
	return sess.Manifest(), nil
}

// VerifySession re-hashes the artifact trail backing record id (§4.2.1
// audit), returning failing entries.
func (s *Service) VerifySession(id string) ([]provenance.Entry, error) {
	sess, err := s.resolveTarget(id)
	if err != nil {
		return nil, err
	}
	return sess.Verify()
}

// fingerprint resolves the ensemble fingerprint, memoized per
// FingerprintTTL so the cached-answer path skips the stat walk.
func (s *Service) fingerprint() (string, error) {
	if s.cfg.FingerprintTTL < 0 {
		return Fingerprint(s.cfg.EnsembleDir)
	}
	return CachedFingerprint(s.cfg.EnsembleDir, s.cfg.FingerprintTTL)
}

// Workers returns the assistant-pool size.
func (s *Service) Workers() int { return len(s.assistants) }

// CacheLen returns the current answer-cache entry count.
func (s *Service) CacheLen() int { return s.cache.Len() }

// Metrics returns a point-in-time snapshot of the counters.
func (s *Service) Metrics() Metrics {
	fp, fpErr := s.fingerprint()
	s.mu.Lock()
	m := s.m
	m.PendingApprovals = s.pendingApprovals
	s.mu.Unlock()
	m.Workers = len(s.assistants)
	m.QueueDepth = cap(s.queue)
	m.QueueLen = len(s.queue)
	m.Cache = s.cache.Stats()
	m.Stage = s.cfg.Stage.Stats()
	m.Fingerprint = fp
	if fpErr != nil {
		m.FingerprintError = fpErr.Error()
	}
	return m
}
