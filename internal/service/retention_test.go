package service

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"infera/internal/llm"
)

// retentionService builds a service with a stable WorkDir, a 1-entry
// answer cache (so earlier answers become unreferenced) and the given
// retention policy.
func retentionService(t *testing.T, dir, work string, maxAge time.Duration, maxBytes int64) *Service {
	t.Helper()
	svc, err := New(Config{
		EnsembleDir:        dir,
		WorkDir:            work,
		Workers:            1,
		CacheSize:          1,
		Seed:               1,
		ProvenanceMaxAge:   maxAge,
		ProvenanceMaxBytes: maxBytes,
		NewModel: func(seed int64) llm.Client {
			return llm.NewSim(llm.SimConfig{Seed: seed, ColumnErrorRate: 1e-9, ToolErrorRate: 1e-9})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// sessionDirs lists the provenance session directories under every worker.
func sessionDirs(t *testing.T, work string) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	workers, _ := filepath.Glob(filepath.Join(work, "worker-*"))
	for _, w := range workers {
		entries, err := os.ReadDir(filepath.Join(w, "sessions"))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() {
				out[e.Name()] = true
			}
		}
	}
	return out
}

// TestProvenanceRetentionSweep: closing a service with an age-based
// retention policy removes old unreferenced session trails but spares the
// sessions the persisted answer cache still references.
func TestProvenanceRetentionSweep(t *testing.T) {
	dir := testEnsemble(t)
	work := t.TempDir()
	// MaxAge 1ns: at close, every trail is "old"; only cache references
	// protect a trail.
	svc := retentionService(t, dir, work, time.Nanosecond, 0)

	q1 := "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?"
	q2 := "Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?"
	r1, err := svc.Ask(AskRequest{Question: q1})
	if err != nil || r1.Error != "" {
		t.Fatalf("ask 1: %v %+v", err, r1)
	}
	// The 1-entry cache evicts q1's answer when q2 lands, leaving q1's
	// session trail unreferenced.
	r2, err := svc.Ask(AskRequest{Question: q2})
	if err != nil || r2.Error != "" {
		t.Fatalf("ask 2: %v %+v", err, r2)
	}
	before := sessionDirs(t, work)
	if !before[r1.SessionID] || !before[r2.SessionID] {
		t.Fatalf("expected both trails on disk before close: %v", before)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	after := sessionDirs(t, work)
	if after[r1.SessionID] {
		t.Fatalf("unreferenced old trail %s must be swept", r1.SessionID)
	}
	if !after[r2.SessionID] {
		t.Fatalf("cache-referenced trail %s must be spared", r2.SessionID)
	}

	// The spared trail still resolves provenance after revival.
	svc2 := retentionService(t, dir, work, time.Nanosecond, 0)
	defer svc2.Close()
	if svc2.CacheLen() != 1 {
		t.Fatalf("revived cache entries = %d, want 1", svc2.CacheLen())
	}
	r3, err := svc2.Ask(AskRequest{Question: q2})
	if err != nil || !r3.Cached {
		t.Fatalf("revived ask: %v %+v", err, r3)
	}
	if _, err := svc2.Provenance(r3.RequestID); err != nil {
		t.Fatalf("provenance behind spared trail: %v", err)
	}
}

// TestProvenanceRetentionByBytes: a byte budget removes oldest
// unreferenced trails until the directory fits.
func TestProvenanceRetentionByBytes(t *testing.T) {
	dir := testEnsemble(t)
	work := t.TempDir()
	// 1-byte budget: nothing unreferenced can stay.
	svc := retentionService(t, dir, work, 0, 1)

	questions := []string{
		"Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?",
		"Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?",
		"Can you find me the top 10 largest friends-of-friends halos from timestep 498 in simulation 1?",
	}
	var last string
	for _, q := range questions {
		r, err := svc.Ask(AskRequest{Question: q})
		if err != nil || r.Error != "" {
			t.Fatalf("ask %q: %v %+v", q, err, r)
		}
		last = r.SessionID
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	after := sessionDirs(t, work)
	if len(after) != 1 || !after[last] {
		t.Fatalf("byte budget must keep only the cache-referenced trail %s, got %v", last, after)
	}
}
