package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type for the Prometheus text
// exposition format produced by WritePrometheus.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus encodes every registered family in the Prometheus
// text exposition format (version 0.0.4). Families are emitted in name
// order and series in sorted-label order, so output is deterministic
// for a fixed set of observations.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		if len(f.series) == 0 {
			continue
		}
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		// Snapshot the series list; instruments themselves are
		// read atomically below.
		r.mu.Lock()
		ss := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ss = append(ss, s)
		}
		help, kind, bounds := f.help, f.kind, f.bounds
		r.mu.Unlock()
		sort.Slice(ss, func(i, j int) bool { return ss[i].sig < ss[j].sig })

		if help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, typeName(kind))
		for _, s := range ss {
			switch kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(s.labels, "", 0), s.c.Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(s.labels, "", 0), s.g.Value())
			case kindHistogram:
				cum, sum, count := s.h.snapshot()
				for i, bound := range bounds {
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(s.labels, "le", bound), cum[i])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(s.labels, "le", math.Inf(1)), cum[len(cum)-1])
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labelString(s.labels, "", 0), formatFloat(sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labelString(s.labels, "", 0), count)
			}
		}
	}
	return bw.Flush()
}

func typeName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// labelString renders {k="v",...}, optionally appending an le bound
// for histogram bucket lines. Returns "" when there is nothing to
// render.
func labelString(labels []Label, leKey string, leBound float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		b.WriteString(formatFloat(leBound))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
