// Package telemetry provides lock-free metric primitives — counters,
// gauges and fixed-bucket histograms — plus a Prometheus text-format
// encoder. It has no external dependencies.
//
// Metrics are registered lazily: Counter/Gauge/Histogram return the
// existing instrument when one with the same name and label set already
// exists, so callers on the hot path can hold a reference once and then
// record with plain atomic operations. A nil *Registry is valid and all
// instruments obtained from it are no-ops, which lets instrumented
// packages run without telemetry wired up (e.g. in unit tests).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is a single name/value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// LatencyBuckets are the default histogram upper bounds, in seconds, on
// a 1-2.5-5 log scale from 100µs to 60s. They cover everything from a
// cached-answer hit to a full multi-round agent ask.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 25, 60,
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one to the counter. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by delta. Negative deltas are ignored.
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Bucket counts are
// stored non-cumulatively and summed at encode time; the observation
// sum is maintained with a CAS loop over the float64 bit pattern. All
// recording methods are lock-free and safe for concurrent use.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // math.Float64bits of the running sum
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records a single value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Binary search for the first bound >= v.
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns cumulative bucket counts aligned with h.bounds plus
// a trailing +Inf entry, along with sum and count, read best-effort
// (individual loads are atomic; the set is not a consistent cut).
func (h *Histogram) snapshot() (cum []int64, sum float64, count int64) {
	cum = make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, h.Sum(), h.Count()
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// series is one labeled instance of a family.
type series struct {
	labels []Label // sorted by key
	sig    string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	kind   metricKind
	help   string
	bounds []float64 // histograms only
	series map[string]*series
}

// Registry holds metric families. Instrument lookup takes a mutex;
// recording on the returned instrument is lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry, creating it on first use.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

// SetHelp attaches HELP text to a metric family. It may be called
// before or after the family's first instrument is created.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, series: make(map[string]*series)}
		r.families[name] = f
	}
	f.help = help
}

func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// lookup finds or creates the series for (name, labels). kind mismatch
// on an existing family panics: it is a programming error, not a
// runtime condition.
func (r *Registry) lookup(name string, kind metricKind, bounds []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		if kind == kindHistogram {
			f.bounds = bounds
		}
		r.families[name] = f
	} else if len(f.series) > 0 && f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as different kind", name))
	} else if len(f.series) == 0 {
		f.kind = kind
		if kind == kindHistogram {
			f.bounds = bounds
		}
	}
	ls := sortLabels(labels)
	sig := labelSig(ls)
	s := f.series[sig]
	if s == nil {
		s = &series{labels: ls, sig: sig}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = newHistogram(f.bounds)
		}
		f.series[sig] = s
	}
	return s
}

// Counter returns the counter series for name with the given labels,
// creating it if needed. On a nil registry it returns a no-op counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter, nil, labels).c
}

// Gauge returns the gauge series for name with the given labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge, nil, labels).g
}

// Histogram returns the histogram series for name with the given
// bucket upper bounds and labels. Bounds are fixed by the first caller
// for a given name; later callers share them.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	return r.lookup(name, kindHistogram, bounds, labels).h
}
