package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", L("mode", "auto"))
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same instrument.
	if r.Counter("reqs_total", L("mode", "auto")) != c {
		t.Fatal("expected identical counter instance for same series")
	}
	g := r.Gauge("queue_len")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	h := r.Histogram("z", nil)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil-registry histogram must be a no-op")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	cum, sum, count := h.snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if math.Abs(sum-105.65) > 1e-9 {
		t.Fatalf("sum = %v, want 105.65", sum)
	}
	// le=0.1 -> 2 (0.05, 0.1 inclusive), le=1 -> 3, le=10 -> 4, +Inf -> 5
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative bucket %d = %d, want %d (all: %v)", i, cum[i], w, cum)
		}
	}
}

// TestConcurrentHistogram hammers one histogram from many goroutines
// while another goroutine encodes the registry; run with -race.
func TestConcurrentHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", nil, L("ensemble", "e1"))
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent encoder
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Errorf("encode: %v", err)
					return
				}
			}
		}
	}()
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(float64(seed*perG+j) * 1e-6)
				r.Counter("conc_total").Inc()
			}
		}(i)
	}
	for i := 0; i < goroutines; i++ {
		// also exercise concurrent series creation
		r.Histogram("conc_seconds", nil, L("ensemble", "e2")).Observe(0.001)
	}
	// Wait for the recorders, then stop the encoder.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	go func() {
		// Recorders are the last goroutines besides the encoder to
		// finish; signal the encoder once counts settle.
		for h.Count() < goroutines*perG {
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	<-done
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("observations = %d, want %d", got, goroutines*perG)
	}
	if got := r.Counter("conc_total").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

// TestWritePrometheusGolden checks the exact text exposition output for
// a small fixed registry.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("infera_asks_total", "Total asks served.")
	r.Counter("infera_asks_total", L("ensemble", "euclid"), L("cache", "hit")).Add(3)
	r.Counter("infera_asks_total", L("ensemble", "euclid"), L("cache", "miss")).Inc()
	r.Gauge("infera_queue_len", L("ensemble", "euclid")).Set(2)
	h := r.Histogram("infera_ask_seconds", []float64{0.5, 1}, L("ensemble", "eu\"clid\\x"))
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(4)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE infera_ask_seconds histogram
infera_ask_seconds_bucket{ensemble="eu\"clid\\x",le="0.5"} 1
infera_ask_seconds_bucket{ensemble="eu\"clid\\x",le="1"} 2
infera_ask_seconds_bucket{ensemble="eu\"clid\\x",le="+Inf"} 3
infera_ask_seconds_sum{ensemble="eu\"clid\\x"} 5
infera_ask_seconds_count{ensemble="eu\"clid\\x"} 3
# HELP infera_asks_total Total asks served.
# TYPE infera_asks_total counter
infera_asks_total{cache="hit",ensemble="euclid"} 3
infera_asks_total{cache="miss",ensemble="euclid"} 1
# TYPE infera_queue_len gauge
infera_queue_len{ensemble="euclid"} 2
`
	if got := sb.String(); got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestDefaultRegistrySingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() must return a single process-wide registry")
	}
}
