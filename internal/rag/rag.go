// Package rag implements the retrieval-augmented metadata lookup of §3.1:
// the column and file dictionaries are chunked into one small document per
// column label (at most 80 tokens), embedded with a deterministic hashed
// bag-of-words model (standing in for text-embedding-3-small), and
// retrieved with cosine similarity re-ranked by maximum marginal relevance
// (MMR). The Retriever applies the paper's multi-prompt policy: top-k for
// the user query, the delegated task, the full plan, and an "[IMPORTANT]"
// prompt that surfaces columns tagged important, up to a global cap.
package rag

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Dim is the embedding dimensionality.
const Dim = 256

// Tokenize lower-cases text and splits it on non-alphanumeric boundaries,
// including underscores, so column labels like "sod_halo_MGas500c" yield
// searchable parts ("sod", "halo", "mgas500c").
func Tokenize(text string) []string {
	var toks []string
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			toks = append(toks, sb.String())
			sb.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			sb.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return toks
}

// TokenCount returns the token count of text; the llm package uses it for
// usage accounting, and chunking uses it for the 80-token budget.
func TokenCount(text string) int { return len(Tokenize(text)) }

// fnv1a hashes a string to a bucket in [0, Dim).
func fnv1a(s string) int {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return int(h % Dim)
}

// Embed maps text to a unit-norm Dim-dimensional vector from hashed
// unigrams and bigrams with sub-linear term-frequency weighting.
func Embed(text string) []float64 {
	toks := Tokenize(text)
	counts := map[string]float64{}
	for i, t := range toks {
		counts[t]++
		if i+1 < len(toks) {
			counts[t+" "+toks[i+1]] += 0.5
		}
	}
	vec := make([]float64, Dim)
	for term, c := range counts {
		vec[fnv1a(term)] += 1 + math.Log(c)
	}
	norm := 0.0
	for _, v := range vec {
		norm += v * v
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range vec {
			vec[i] /= norm
		}
	}
	return vec
}

// Cosine returns the cosine similarity of two equal-length vectors.
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Document is one retrievable chunk.
type Document struct {
	ID        string            // unique id, e.g. "haloproperties/fof_halo_mass"
	Text      string            // the chunk content (≤ MaxChunkTokens enforced at Add)
	Meta      map[string]string // free-form metadata (column, file type, ...)
	Important bool              // tagged for the "[IMPORTANT]" retrieval prompt
}

// MaxChunkTokens is the per-document token budget of §3.1.
const MaxChunkTokens = 80

// TruncateTokens returns text cut to at most n tokens (whole tokens,
// original casing preserved).
func TruncateTokens(text string, n int) string {
	if TokenCount(text) <= n {
		return text
	}
	count := 0
	inTok := false
	for i, r := range text {
		isTok := unicode.IsLetter(r) || unicode.IsDigit(r)
		if isTok && !inTok {
			count++
			if count > n {
				return strings.TrimRight(text[:i], " \t\n")
			}
		}
		inTok = isTok
	}
	return text
}

// Index is an in-memory vector index over documents.
type Index struct {
	docs []Document
	vecs [][]float64
}

// NewIndex returns an empty index.
func NewIndex() *Index { return &Index{} }

// Add embeds and stores doc, truncating its text to MaxChunkTokens first —
// the fine-grained chunking rule that keeps each column's description a
// separate retrieval unit.
func (ix *Index) Add(doc Document) {
	doc.Text = TruncateTokens(doc.Text, MaxChunkTokens)
	ix.docs = append(ix.docs, doc)
	ix.vecs = append(ix.vecs, Embed(doc.Text))
}

// Len returns the document count.
func (ix *Index) Len() int { return len(ix.docs) }

// Docs returns the stored documents.
func (ix *Index) Docs() []Document { return append([]Document(nil), ix.docs...) }

// Scored pairs a document with its retrieval score.
type Scored struct {
	Doc   Document
	Score float64
}

// Search returns the top-k documents by cosine similarity to query.
func (ix *Index) Search(query string, k int) []Scored {
	q := Embed(query)
	scored := make([]Scored, len(ix.docs))
	for i := range ix.docs {
		scored[i] = Scored{Doc: ix.docs[i], Score: Cosine(q, ix.vecs[i])}
	}
	sort.SliceStable(scored, func(a, b int) bool { return scored[a].Score > scored[b].Score })
	if k > len(scored) {
		k = len(scored)
	}
	return scored[:k]
}

// MMR returns k documents selected by maximum marginal relevance: each pick
// maximizes lambda·sim(query, d) − (1−lambda)·max sim(d, already picked),
// trading relevance against redundancy (Carbonell & Goldstein 1998).
func (ix *Index) MMR(query string, k int, lambda float64) []Scored {
	if k > len(ix.docs) {
		k = len(ix.docs)
	}
	q := Embed(query)
	rel := make([]float64, len(ix.docs))
	for i := range ix.docs {
		rel[i] = Cosine(q, ix.vecs[i])
	}
	picked := make([]int, 0, k)
	used := make([]bool, len(ix.docs))
	out := make([]Scored, 0, k)
	for len(picked) < k {
		best, bestScore := -1, math.Inf(-1)
		for i := range ix.docs {
			if used[i] {
				continue
			}
			redundancy := 0.0
			for _, p := range picked {
				if s := Cosine(ix.vecs[i], ix.vecs[p]); s > redundancy {
					redundancy = s
				}
			}
			score := lambda*rel[i] - (1-lambda)*redundancy
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		picked = append(picked, best)
		out = append(out, Scored{Doc: ix.docs[best], Score: bestScore})
	}
	return out
}

// NaiveChunks concatenates all document texts and re-splits them into
// fixed-size token windows, ignoring content boundaries — the conventional
// size-based chunking the paper argues against. It exists for the ablation
// benchmark comparing retrieval precision.
func NaiveChunks(docs []Document, window int) *Index {
	var all []string
	for _, d := range docs {
		all = append(all, Tokenize(d.Text)...)
	}
	ix := NewIndex()
	for i := 0; i < len(all); i += window {
		j := i + window
		if j > len(all) {
			j = len(all)
		}
		ix.Add(Document{
			ID:   "chunk-" + itoa(i/window),
			Text: strings.Join(all[i:j], " "),
		})
	}
	return ix
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
