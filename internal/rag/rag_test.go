package rag

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"infera/internal/hacc"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("sod_halo_MGas500c: mass enclosed, density 500x!")
	want := []string{"sod", "halo", "mgas500c", "mass", "enclosed", "density", "500x"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if n := TokenCount("a b c"); n != 3 {
		t.Errorf("TokenCount = %d", n)
	}
}

func TestTruncateTokens(t *testing.T) {
	text := "one two three four five"
	if got := TruncateTokens(text, 3); got != "one two three" {
		t.Errorf("TruncateTokens = %q", got)
	}
	if got := TruncateTokens(text, 10); got != text {
		t.Errorf("no-op truncate changed text: %q", got)
	}
}

func TestEmbedUnitNormAndDeterministic(t *testing.T) {
	v := Embed("friends of friends halo mass in Msun")
	w := Embed("friends of friends halo mass in Msun")
	var norm float64
	for i := range v {
		norm += v[i] * v[i]
		if v[i] != w[i] {
			t.Fatal("embedding not deterministic")
		}
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("norm = %v, want 1", norm)
	}
	if len(v) != Dim {
		t.Errorf("dim = %d", len(v))
	}
}

func TestCosineSimilarityOrdering(t *testing.T) {
	a := Embed("halo mass friends of friends")
	b := Embed("total halo mass friends of friends in Msun")
	c := Embed("galaxy star formation rate per year")
	if Cosine(a, b) <= Cosine(a, c) {
		t.Errorf("related texts should score higher: %v vs %v", Cosine(a, b), Cosine(a, c))
	}
	if math.Abs(Cosine(a, a)-1) > 1e-9 {
		t.Errorf("self-cosine = %v", Cosine(a, a))
	}
}

func TestSearchFindsRelevantColumn(t *testing.T) {
	ix := BuildHACCIndex()
	hits := ix.Search("gas mass enclosed at 500 times critical density spherical overdensity", 5)
	found := false
	for _, h := range hits {
		if h.Doc.Meta["column"] == "sod_halo_MGas500c" {
			found = true
		}
	}
	if !found {
		t.Errorf("sod_halo_MGas500c not in top-5: %+v", ids(hits))
	}
}

func TestSearchHandlesAmbiguousLabelSemantics(t *testing.T) {
	// The paper's motivating example: a user asking about "largest halos"
	// by size should surface fof_halo_count even though "largest" appears
	// nowhere in the label.
	ix := BuildHACCIndex()
	hits := ix.Search("number of particles belonging to the halo, proxy for halo size, largest halos", 5)
	if len(hits) == 0 || !contains(hits, "fof_halo_count") {
		t.Errorf("fof_halo_count not retrieved: %v", ids(hits))
	}
}

func contains(hits []Scored, column string) bool {
	for _, h := range hits {
		if h.Doc.Meta["column"] == column {
			return true
		}
	}
	return false
}

func ids(hits []Scored) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.Doc.ID
	}
	return out
}

func TestMMRDiversifies(t *testing.T) {
	ix := NewIndex()
	// Three near-duplicates and one distinct doc; MMR at k=2 should pick
	// one duplicate and the distinct doc, plain search picks two dupes.
	ix.Add(Document{ID: "a1", Text: "halo mass in Msun total mass"})
	ix.Add(Document{ID: "a2", Text: "halo mass in Msun the total mass"})
	ix.Add(Document{ID: "a3", Text: "halo mass in Msun total mass value"})
	ix.Add(Document{ID: "b", Text: "halo position coordinates mass center"})
	query := "halo mass"
	plain := ix.Search(query, 2)
	mmr := ix.MMR(query, 2, 0.5)
	if !strings.HasPrefix(plain[0].Doc.ID, "a") || !strings.HasPrefix(plain[1].Doc.ID, "a") {
		t.Skipf("plain search unexpectedly diverse: %v", ids(plain))
	}
	if mmr[1].Doc.ID != "b" {
		t.Errorf("MMR second pick = %s, want b (diversity)", mmr[1].Doc.ID)
	}
}

func TestIndexChunkTruncation(t *testing.T) {
	ix := NewIndex()
	long := strings.Repeat("word ", 200)
	ix.Add(Document{ID: "x", Text: long})
	if got := TokenCount(ix.Docs()[0].Text); got > MaxChunkTokens {
		t.Errorf("chunk has %d tokens, cap is %d", got, MaxChunkTokens)
	}
}

func TestRetrieverPolicy(t *testing.T) {
	ix := BuildHACCIndex()
	r := NewRetriever(ix)
	docs := r.Retrieve(
		"find the largest 100 halos by particle count at timestep 498",
		"load halo data and select relevant columns",
		"1. load data 2. filter halos 3. sort by count 4. plot",
	)
	if len(docs) == 0 || len(docs) > r.MaxDocs {
		t.Fatalf("retrieved %d docs (cap %d)", len(docs), r.MaxDocs)
	}
	seen := map[string]bool{}
	importantSeen := false
	for _, d := range docs {
		if seen[d.ID] {
			t.Fatalf("duplicate doc %s", d.ID)
		}
		seen[d.ID] = true
		if d.Important {
			importantSeen = true
		}
	}
	if !importantSeen {
		t.Error("important-tagged docs missing from retrieval")
	}
	cols := Columns(docs)
	if len(cols) == 0 {
		t.Fatal("no column refs extracted")
	}
	foundCount := false
	for _, c := range cols {
		if c.Column == "fof_halo_count" && c.FileType == hacc.FileHalos {
			foundCount = true
		}
	}
	if !foundCount {
		t.Error("fof_halo_count should be retrieved for a 'largest halos by particle count' query")
	}
}

func TestRetrieverEmptyPrompts(t *testing.T) {
	ix := BuildHACCIndex()
	r := NewRetriever(ix)
	docs := r.Retrieve("", "compute stellar mass for galaxies", "")
	if len(docs) == 0 {
		t.Fatal("task-only retrieval returned nothing")
	}
}

func TestFineGrainedBeatsNaiveChunking(t *testing.T) {
	// Ablation backing §3.1: per-column chunking should rank the target
	// column's content above naive fixed-window chunks for a pointed query.
	docs := BuildHACCIndex().Docs()
	fine := NewIndex()
	for _, d := range docs {
		fine.Add(d)
	}
	naive := NaiveChunks(docs, 80)
	query := "hot gas mass enclosed 500 times critical density"
	fineTop := fine.Search(query, 1)[0]
	naiveTop := naive.Search(query, 1)[0]
	if !strings.Contains(fineTop.Doc.Text, "MGas500c") {
		t.Errorf("fine-grained top doc wrong: %s", fineTop.Doc.ID)
	}
	// The naive chunk mixes unrelated columns; its top score should not
	// beat the focused chunk's score.
	if naiveTop.Score > fineTop.Score {
		t.Errorf("naive chunking outscored fine-grained: %v > %v", naiveTop.Score, fineTop.Score)
	}
}

func TestQuickCosineBounds(t *testing.T) {
	prop := func(a, b string) bool {
		va, vb := Embed(a), Embed(b)
		c := Cosine(va, vb)
		return c >= -1.000001 && c <= 1.000001 && !math.IsNaN(c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickMMRSubsetOfIndex(t *testing.T) {
	ix := BuildHACCIndex()
	prop := func(q string, kRaw uint8) bool {
		k := int(kRaw % 30)
		hits := ix.MMR(q, k, 0.7)
		if len(hits) > k {
			return false
		}
		seen := map[string]bool{}
		for _, h := range hits {
			if seen[h.Doc.ID] {
				return false
			}
			seen[h.Doc.ID] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
