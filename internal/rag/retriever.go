package rag

import "infera/internal/hacc"

// BuildHACCIndex chunks the HACC metadata dictionaries into the retrieval
// index: one document per (file type, column) pair plus one per file
// family. Column documents carry the column label, its file type and the
// dictionary description; the Important flag follows the dictionary tag.
func BuildHACCIndex() *Index {
	ix := NewIndex()
	for _, fd := range hacc.FileDictionary() {
		ix.Add(Document{
			ID:   "file/" + fd.FileType,
			Text: fd.FileType + ": " + fd.Description,
			Meta: map[string]string{"kind": "file", "file_type": fd.FileType},
		})
	}
	for _, cd := range hacc.ColumnDictionary() {
		ix.Add(Document{
			ID:   cd.FileType + "/" + cd.Column,
			Text: cd.Column + ": " + cd.Description,
			Meta: map[string]string{
				"kind":      "column",
				"file_type": cd.FileType,
				"column":    cd.Column,
			},
			Important: cd.Important,
		})
	}
	return ix
}

// Retriever applies the multi-prompt retrieval policy of §3.1.
type Retriever struct {
	Index     *Index
	PerPrompt int     // top-k per prompt (paper: 20)
	MaxDocs   int     // global cap across prompts (paper: 80)
	Lambda    float64 // MMR relevance/diversity trade-off
}

// NewRetriever returns a retriever with the paper's defaults.
func NewRetriever(ix *Index) *Retriever {
	return &Retriever{Index: ix, PerPrompt: 20, MaxDocs: 80, Lambda: 0.7}
}

// Retrieve runs MMR retrieval for each non-empty prompt — the original user
// query, the delegated task, the complete plan — plus the "[IMPORTANT]"
// prompt that pulls in columns tagged important, deduplicating by document
// ID up to MaxDocs. Order reflects first retrieval rank.
func (r *Retriever) Retrieve(query, task, plan string) []Document {
	seen := map[string]bool{}
	var out []Document
	add := func(docs []Scored) {
		for _, s := range docs {
			if len(out) >= r.MaxDocs {
				return
			}
			if seen[s.Doc.ID] {
				continue
			}
			seen[s.Doc.ID] = true
			out = append(out, s.Doc)
		}
	}
	for _, prompt := range []string{query, task, plan} {
		if prompt == "" {
			continue
		}
		add(r.Index.MMR(prompt, r.PerPrompt, r.Lambda))
	}
	// The [IMPORTANT] prompt: important-tagged documents ranked against the
	// user query.
	important := NewIndex()
	for _, d := range r.Index.docs {
		if d.Important {
			important.Add(d)
		}
	}
	if important.Len() > 0 {
		q := query
		if q == "" {
			q = task
		}
		add(important.Search("[IMPORTANT] "+q, r.PerPrompt))
	}
	return out
}

// Columns extracts the distinct (fileType, column) pairs from retrieved
// documents, preserving order.
func Columns(docs []Document) []ColumnRef {
	var out []ColumnRef
	seen := map[string]bool{}
	for _, d := range docs {
		if d.Meta["kind"] != "column" {
			continue
		}
		key := d.Meta["file_type"] + "/" + d.Meta["column"]
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, ColumnRef{FileType: d.Meta["file_type"], Column: d.Meta["column"]})
	}
	return out
}

// ColumnRef names a column within a file family.
type ColumnRef struct {
	FileType string
	Column   string
}
