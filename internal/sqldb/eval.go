package sqldb

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"infera/internal/dataframe"
)

// value is a runtime SQL value: one of float, int or string. Booleans are
// ints 0/1.
type value struct {
	kind dataframe.Kind
	f    float64
	i    int64
	s    string
}

func floatVal(f float64) value { return value{kind: dataframe.Float, f: f} }
func intVal(i int64) value     { return value{kind: dataframe.Int, i: i} }
func stringVal(s string) value { return value{kind: dataframe.String, s: s} }
func boolVal(b bool) value {
	if b {
		return intVal(1)
	}
	return intVal(0)
}

func (v value) asFloat() float64 {
	switch v.kind {
	case dataframe.Float:
		return v.f
	case dataframe.Int:
		return float64(v.i)
	default:
		return math.NaN()
	}
}

func (v value) truthy() bool {
	switch v.kind {
	case dataframe.Float:
		return v.f != 0 && !math.IsNaN(v.f)
	case dataframe.Int:
		return v.i != 0
	default:
		return v.s != ""
	}
}

func (v value) display() string {
	switch v.kind {
	case dataframe.Float:
		return fmt.Sprintf("%g", v.f)
	case dataframe.Int:
		return fmt.Sprintf("%d", v.i)
	default:
		return v.s
	}
}

// evalContext resolves identifiers during expression evaluation.
type evalContext interface {
	lookup(name string) (value, error)
	// aggValue resolves a pre-computed aggregate node (group queries only).
	aggValue(e *aggExpr) (value, bool)
}

// rowContext evaluates over one row of a frame.
type rowContext struct {
	frame *dataframe.Frame
	row   int
}

func (c *rowContext) lookup(name string) (value, error) {
	col, err := c.frame.Column(name)
	if err != nil {
		return value{}, err
	}
	switch col.Kind {
	case dataframe.Float:
		return floatVal(col.F[c.row]), nil
	case dataframe.Int:
		return intVal(col.I[c.row]), nil
	default:
		return stringVal(col.S[c.row]), nil
	}
}

func (c *rowContext) aggValue(*aggExpr) (value, bool) { return value{}, false }

// EvalError reports a runtime evaluation failure.
type EvalError struct{ Msg string }

func (e *EvalError) Error() string { return "SQL evaluation error: " + e.Msg }

func evalErrf(format string, args ...any) error {
	return &EvalError{Msg: fmt.Sprintf(format, args...)}
}

func evalExpr(e expr, ctx evalContext) (value, error) {
	switch v := e.(type) {
	case *numberExpr:
		if v.val == math.Trunc(v.val) && math.Abs(v.val) < 1e15 {
			return intVal(int64(v.val)), nil
		}
		return floatVal(v.val), nil
	case *stringExpr:
		return stringVal(v.val), nil
	case *identExpr:
		return ctx.lookup(v.name)
	case *unaryExpr:
		sub, err := evalExpr(v.sub, ctx)
		if err != nil {
			return value{}, err
		}
		switch v.op {
		case "-":
			if sub.kind == dataframe.Int {
				return intVal(-sub.i), nil
			}
			return floatVal(-sub.asFloat()), nil
		case "NOT":
			return boolVal(!sub.truthy()), nil
		}
		return value{}, evalErrf("unknown unary operator %q", v.op)
	case *binaryExpr:
		return evalBinary(v, ctx)
	case *inExpr:
		sub, err := evalExpr(v.sub, ctx)
		if err != nil {
			return value{}, err
		}
		found := false
		for _, item := range v.list {
			iv, err := evalExpr(item, ctx)
			if err != nil {
				return value{}, err
			}
			if valuesEqual(sub, iv) {
				found = true
				break
			}
		}
		return boolVal(found != v.negate), nil
	case *betweenExpr:
		sub, err := evalExpr(v.sub, ctx)
		if err != nil {
			return value{}, err
		}
		lo, err := evalExpr(v.lo, ctx)
		if err != nil {
			return value{}, err
		}
		hi, err := evalExpr(v.hi, ctx)
		if err != nil {
			return value{}, err
		}
		x := sub.asFloat()
		in := x >= lo.asFloat() && x <= hi.asFloat()
		return boolVal(in != v.negate), nil
	case *callExpr:
		return evalCall(v, ctx)
	case *aggExpr:
		if val, ok := ctx.aggValue(v); ok {
			return val, nil
		}
		return value{}, evalErrf("aggregate %s used outside an aggregating query", v.fn)
	}
	return value{}, evalErrf("unhandled expression %T", e)
}

func valuesEqual(a, b value) bool {
	if a.kind == dataframe.String || b.kind == dataframe.String {
		return a.kind == b.kind && a.s == b.s
	}
	return a.asFloat() == b.asFloat()
}

func evalBinary(e *binaryExpr, ctx evalContext) (value, error) {
	// Short-circuit boolean operators.
	switch e.op {
	case "AND":
		l, err := evalExpr(e.left, ctx)
		if err != nil {
			return value{}, err
		}
		if !l.truthy() {
			return boolVal(false), nil
		}
		r, err := evalExpr(e.right, ctx)
		if err != nil {
			return value{}, err
		}
		return boolVal(r.truthy()), nil
	case "OR":
		l, err := evalExpr(e.left, ctx)
		if err != nil {
			return value{}, err
		}
		if l.truthy() {
			return boolVal(true), nil
		}
		r, err := evalExpr(e.right, ctx)
		if err != nil {
			return value{}, err
		}
		return boolVal(r.truthy()), nil
	}
	l, err := evalExpr(e.left, ctx)
	if err != nil {
		return value{}, err
	}
	r, err := evalExpr(e.right, ctx)
	if err != nil {
		return value{}, err
	}
	switch e.op {
	case "+", "-", "*", "/", "%":
		if l.kind == dataframe.String || r.kind == dataframe.String {
			return value{}, evalErrf("arithmetic on string operand")
		}
		if l.kind == dataframe.Int && r.kind == dataframe.Int && e.op != "/" {
			switch e.op {
			case "+":
				return intVal(l.i + r.i), nil
			case "-":
				return intVal(l.i - r.i), nil
			case "*":
				return intVal(l.i * r.i), nil
			case "%":
				if r.i == 0 {
					return value{}, evalErrf("integer modulo by zero")
				}
				return intVal(l.i % r.i), nil
			}
		}
		lf, rf := l.asFloat(), r.asFloat()
		switch e.op {
		case "+":
			return floatVal(lf + rf), nil
		case "-":
			return floatVal(lf - rf), nil
		case "*":
			return floatVal(lf * rf), nil
		case "/":
			return floatVal(lf / rf), nil
		case "%":
			return floatVal(math.Mod(lf, rf)), nil
		}
	case "=", "!=":
		eq := valuesEqual(l, r)
		return boolVal(eq == (e.op == "=")), nil
	case "<", "<=", ">", ">=":
		var cmp int
		if l.kind == dataframe.String && r.kind == dataframe.String {
			cmp = strings.Compare(l.s, r.s)
		} else {
			lf, rf := l.asFloat(), r.asFloat()
			switch {
			case lf < rf:
				cmp = -1
			case lf > rf:
				cmp = 1
			}
		}
		switch e.op {
		case "<":
			return boolVal(cmp < 0), nil
		case "<=":
			return boolVal(cmp <= 0), nil
		case ">":
			return boolVal(cmp > 0), nil
		default:
			return boolVal(cmp >= 0), nil
		}
	case "LIKE":
		if l.kind != dataframe.String || r.kind != dataframe.String {
			return value{}, evalErrf("LIKE requires string operands")
		}
		return boolVal(likeMatch(l.s, r.s)), nil
	}
	return value{}, evalErrf("unknown operator %q", e.op)
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one char).
// Two-pointer greedy matching with single backtrack point: on mismatch,
// retry from the most recent %, consuming one more source byte. O(len(s) *
// len(pattern)) worst case — no exponential blowup on patterns like
// %a%a%a%… that the old recursive expansion choked on.
func likeMatch(s, pattern string) bool {
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star, mark = pi, si
			pi++
		case star >= 0:
			mark++
			si, pi = mark, star+1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

func evalCall(e *callExpr, ctx evalContext) (value, error) {
	args := make([]float64, len(e.args))
	for i, a := range e.args {
		v, err := evalExpr(a, ctx)
		if err != nil {
			return value{}, err
		}
		if v.kind == dataframe.String {
			return value{}, evalErrf("function %s applied to string argument", e.fn)
		}
		args[i] = v.asFloat()
	}
	switch e.fn {
	case "ABS":
		return floatVal(math.Abs(args[0])), nil
	case "SQRT":
		return floatVal(math.Sqrt(args[0])), nil
	case "LOG10":
		return floatVal(math.Log10(args[0])), nil
	case "LOG":
		return floatVal(math.Log(args[0])), nil
	case "EXP":
		return floatVal(math.Exp(args[0])), nil
	case "FLOOR":
		return floatVal(math.Floor(args[0])), nil
	case "CEIL":
		return floatVal(math.Ceil(args[0])), nil
	case "ROUND":
		return floatVal(math.Round(args[0])), nil
	case "POW":
		return floatVal(math.Pow(args[0], args[1])), nil
	}
	return value{}, evalErrf("unknown function %q", e.fn)
}

// aggAccumulator accumulates one aggregate over a group.
type aggAccumulator struct {
	fn    string
	n     int64
	sum   float64
	sumsq float64
	min   float64
	max   float64
	vals  []float64 // MEDIAN only
}

func newAccumulator(fn string) *aggAccumulator {
	return &aggAccumulator{fn: fn, min: math.Inf(1), max: math.Inf(-1)}
}

func (a *aggAccumulator) add(v value) { a.addFloat(v.asFloat()) }

// addFloat is the hot path shared with the vectorized engine, which feeds
// aggregate arguments as raw float blocks. COUNT ignores the value; NaN
// counts toward n (AVG divides by it) but never contributes to the moments.
func (a *aggAccumulator) addFloat(f float64) {
	a.n++
	if a.fn == "COUNT" {
		return
	}
	if math.IsNaN(f) {
		return
	}
	a.sum += f
	a.sumsq += f * f
	if f < a.min {
		a.min = f
	}
	if f > a.max {
		a.max = f
	}
	if a.fn == "MEDIAN" {
		a.vals = append(a.vals, f)
	}
}

func (a *aggAccumulator) result() value {
	switch a.fn {
	case "COUNT":
		return intVal(a.n)
	case "SUM":
		return floatVal(a.sum)
	case "AVG":
		if a.n == 0 {
			return floatVal(math.NaN())
		}
		return floatVal(a.sum / float64(a.n))
	case "MIN":
		if a.n == 0 {
			return floatVal(math.NaN())
		}
		return floatVal(a.min)
	case "MAX":
		if a.n == 0 {
			return floatVal(math.NaN())
		}
		return floatVal(a.max)
	case "STDDEV":
		if a.n == 0 {
			return floatVal(math.NaN())
		}
		m := a.sum / float64(a.n)
		v := a.sumsq/float64(a.n) - m*m
		if v < 0 {
			v = 0
		}
		return floatVal(math.Sqrt(v))
	case "MEDIAN":
		if len(a.vals) == 0 {
			return floatVal(math.NaN())
		}
		sort.Float64s(a.vals)
		mid := len(a.vals) / 2
		if len(a.vals)%2 == 1 {
			return floatVal(a.vals[mid])
		}
		return floatVal((a.vals[mid-1] + a.vals[mid]) / 2)
	}
	return floatVal(math.NaN())
}
