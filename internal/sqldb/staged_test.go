package sqldb

import (
	"path/filepath"
	"testing"

	"infera/internal/dataframe"
)

func stagedFrame(rows int, base float64) *dataframe.Frame {
	tags := make([]int64, rows)
	mass := make([]float64, rows)
	for i := range tags {
		tags[i] = int64(i)
		mass[i] = base + float64(i)
	}
	return dataframe.MustFromColumns(
		dataframe.NewInt("tag", tags),
		dataframe.NewFloat("mass", mass),
	)
}

// TestStagedBulkAppendZeroCopyAllocs proves ingestion into a staged DB
// allocates O(columns), not O(cells): quadrupling the row count must not
// change the allocation count of BulkAppend.
func TestStagedBulkAppendZeroCopyAllocs(t *testing.T) {
	measure := func(rows int) float64 {
		db, err := CreateStaged(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		frames := []*dataframe.Frame{stagedFrame(rows, 0), stagedFrame(rows, 1), stagedFrame(rows, 2)}
		i := 0
		return testing.AllocsPerRun(50, func() {
			name := "t" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
			i++
			if err := db.BulkAppend(name, frames...); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(100)
	large := measure(400_000)
	if small > 200 {
		t.Errorf("staged BulkAppend allocates too much: %.0f allocs for 3 frames", small)
	}
	// O(cells) ingestion of 400k rows would show thousands of times more
	// allocations (or at least the big backing arrays); O(columns) is flat.
	if large > small*2 {
		t.Errorf("allocations must not scale with cells: %.0f (100 rows) -> %.0f (400k rows)", small, large)
	}
}

// TestStagedReadTableSharesResident: reads serve fresh shells over the
// resident vectors without copying, and downstream growth on a returned
// frame is copy-on-write — it never corrupts the stored table.
func TestStagedReadTableSharesResident(t *testing.T) {
	db, err := CreateStaged(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.BulkAppend("t", stagedFrame(4, 0), stagedFrame(4, 100)); err != nil {
		t.Fatal(err)
	}
	a, err := db.ReadTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 8 {
		t.Fatalf("rows = %d, want 8", a.NumRows())
	}
	// The resident vectors are shared: the same column object backs every
	// read shell, and it is marked for copy-on-write.
	b, err := db.ReadTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if a.MustColumn("tag") != b.MustColumn("tag") {
		t.Fatal("reads must share the resident vector, not copy it")
	}
	if !a.MustColumn("tag").IsShared() {
		t.Fatal("resident columns must be marked shared")
	}
	// Shells are independent; growing one leaves the table intact.
	if err := a.Append(b); err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 16 {
		t.Fatalf("grown shell rows = %d", a.NumRows())
	}
	c, err := db.ReadTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRows() != 8 || b.NumRows() != 8 {
		t.Fatalf("COW violated: table rows = %d, sibling shell rows = %d", c.NumRows(), b.NumRows())
	}
}

// TestStagedFlushPersists: a staged DB touches disk only at Flush, after
// which a fresh Open serves identical data.
func TestStagedFlushPersists(t *testing.T) {
	dir := t.TempDir()
	db, err := CreateStaged(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.BulkAppend("t", stagedFrame(8, 0), stagedFrame(8, 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("staged DB must not be openable before Flush")
	}
	want, err := db.ReadTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if db.SizeBytes() <= 0 {
		t.Fatal("staged SizeBytes must estimate encoded size")
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.ReadTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if !dataframe.Equal(want, got) {
		t.Fatalf("flushed table differs:\n%v\nvs\n%v", got, want)
	}
}

// TestStagedQueriesMatchDurable: the staged fast path must be
// semantically invisible — identical query results to a durable DB.
func TestStagedQueriesMatchDurable(t *testing.T) {
	frames := []*dataframe.Frame{stagedFrame(16, 0), stagedFrame(16, 8)}
	staged, err := CreateStaged(filepath.Join(t.TempDir(), "staged"))
	if err != nil {
		t.Fatal(err)
	}
	durable, err := Create(filepath.Join(t.TempDir(), "durable"))
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []*DB{staged, durable} {
		if err := db.BulkAppend("t", frames...); err != nil {
			t.Fatal(err)
		}
	}
	for _, sql := range []string{
		"SELECT * FROM t",
		"SELECT tag, mass FROM t WHERE mass > 10 ORDER BY mass DESC LIMIT 5",
		"SELECT COUNT(*) AS n, AVG(mass) AS m FROM t",
	} {
		a, err := staged.Query(sql)
		if err != nil {
			t.Fatalf("staged %q: %v", sql, err)
		}
		b, err := durable.Query(sql)
		if err != nil {
			t.Fatalf("durable %q: %v", sql, err)
		}
		if !dataframe.Equal(a, b) {
			t.Fatalf("%q: staged and durable disagree:\n%v\nvs\n%v", sql, a, b)
		}
	}
	// Scan accounting still prunes: a one-column query scans fewer bytes
	// than SELECT * on the resident path too.
	before := staged.BytesScanned()
	if _, err := staged.Query("SELECT tag FROM t"); err != nil {
		t.Fatal(err)
	}
	narrow := staged.BytesScanned() - before
	before = staged.BytesScanned()
	if _, err := staged.Query("SELECT * FROM t"); err != nil {
		t.Fatal(err)
	}
	if wide := staged.BytesScanned() - before; narrow >= wide {
		t.Errorf("resident scan accounting must prune: narrow %d >= wide %d", narrow, wide)
	}
}
