package sqldb

import (
	"math"
	"sort"
	"strings"

	"infera/internal/dataframe"
)

// blockSize is the number of rows evaluated per batch in filters and
// aggregations; it bounds transient allocation independent of table size.
const blockSize = 8192

// execute runs a parsed statement over a source frame whose columns have
// already been pruned to stmt.referencedColumns() (or the full schema if a
// star projection is present). st (nil-tolerant) receives scan counts.
func execute(stmt *selectStmt, src *dataframe.Frame, st *execStats) (*dataframe.Frame, error) {
	keep, err := filterRows(stmt, src)
	if err != nil {
		return nil, err
	}
	if st != nil {
		st.rowsScanned += int64(src.NumRows())
		st.rowsFiltered += int64(src.NumRows() - len(keep))
	}

	var out *dataframe.Frame
	if stmt.hasAggregates() || len(stmt.groupBy) > 0 {
		// Grouped path: ORDER BY resolves against the output frame.
		out, err = executeGrouped(stmt, src, keep)
		if err != nil {
			return nil, err
		}
		if stmt.distinct {
			out = distinctRows(out)
		}
		if len(stmt.orderBy) > 0 {
			out, err = orderRows(stmt, out)
			if err != nil {
				return nil, err
			}
		}
	} else {
		// Row path: ORDER BY may reference input columns that the
		// projection drops, so sort the kept row indices first.
		if len(stmt.orderBy) > 0 {
			keep, err = orderKeep(stmt, src, keep)
			if err != nil {
				return nil, err
			}
		}
		out, err = project(stmt, src, keep)
		if err != nil {
			return nil, err
		}
		if stmt.distinct {
			out = distinctRows(out)
		}
	}
	if stmt.limit >= 0 {
		out = out.Head(stmt.limit)
	}
	return out, nil
}

// orderKeep stably sorts filtered row indices by the ORDER BY expressions
// evaluated over the source frame.
func orderKeep(stmt *selectStmt, src *dataframe.Frame, keep []int) ([]int, error) {
	nOrd := len(stmt.orderBy)
	// ORDER BY may name an output alias; resolve it to the select item's
	// expression when the source has no such column (SQL lets source
	// columns shadow aliases).
	ordExprs := make([]expr, nOrd)
	for oi, item := range stmt.orderBy {
		ordExprs[oi] = item.ex
		if id, ok := item.ex.(*identExpr); ok && !src.Has(id.name) {
			for _, sel := range stmt.items {
				if !sel.star && sel.outName() == id.name {
					ordExprs[oi] = sel.ex
					break
				}
			}
		}
	}
	kv := make([][]value, len(keep)) // per kept row, per order item
	ctx := &rowContext{frame: src}
	for j, r := range keep {
		ctx.row = r
		vals := make([]value, nOrd)
		for oi := range stmt.orderBy {
			v, err := evalExpr(ordExprs[oi], ctx)
			if err != nil {
				return nil, err
			}
			vals[oi] = v
		}
		kv[j] = vals
	}
	idx := make([]int, len(keep))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for oi, item := range stmt.orderBy {
			cmp := compareValues(kv[idx[a]][oi], kv[idx[b]][oi])
			if item.desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	out := make([]int, len(keep))
	for i, j := range idx {
		out[i] = keep[j]
	}
	return out, nil
}

// compareValues orders two SQL values; NaN sorts last ascending.
func compareValues(a, b value) int {
	if a.kind == dataframe.String && b.kind == dataframe.String {
		return strings.Compare(a.s, b.s)
	}
	x, y := a.asFloat(), b.asFloat()
	switch {
	case math.IsNaN(x) && math.IsNaN(y):
		return 0
	case math.IsNaN(x):
		return 1
	case math.IsNaN(y):
		return -1
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}

// filterRows applies WHERE block by block and returns surviving row indices.
func filterRows(stmt *selectStmt, src *dataframe.Frame) ([]int, error) {
	n := src.NumRows()
	keep := make([]int, 0, n)
	if stmt.where == nil {
		for i := 0; i < n; i++ {
			keep = append(keep, i)
		}
		return keep, nil
	}
	ctx := &rowContext{frame: src}
	for lo := 0; lo < n; lo += blockSize {
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		for r := lo; r < hi; r++ {
			ctx.row = r
			v, err := evalExpr(stmt.where, ctx)
			if err != nil {
				return nil, err
			}
			if v.truthy() {
				keep = append(keep, r)
			}
		}
	}
	return keep, nil
}

// project evaluates a non-aggregating select list over the kept rows.
func project(stmt *selectStmt, src *dataframe.Frame, keep []int) (*dataframe.Frame, error) {
	out := dataframe.New()
	ctx := &rowContext{frame: src}
	for _, item := range stmt.items {
		if item.star {
			sub := src.Gather(keep)
			for i := 0; i < sub.NumCols(); i++ {
				if err := out.AddColumn(sub.ColumnAt(i)); err != nil {
					return nil, err
				}
			}
			continue
		}
		// Fast path: plain column reference passes through with its kind.
		if id, ok := item.ex.(*identExpr); ok {
			sel, err := src.Select(id.name)
			if err != nil {
				return nil, err
			}
			col := sel.Gather(keep).ColumnAt(0)
			col.Name = item.outName()
			if err := out.AddColumn(col); err != nil {
				return nil, err
			}
			continue
		}
		vals := make([]value, len(keep))
		for j, r := range keep {
			ctx.row = r
			v, err := evalExpr(item.ex, ctx)
			if err != nil {
				return nil, err
			}
			vals[j] = v
		}
		col, err := valuesToColumn(item.outName(), vals)
		if err != nil {
			return nil, err
		}
		if err := out.AddColumn(col); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// valuesToColumn converts evaluated values to a typed column: all-int stays
// Int, any float promotes to Float, any string forces String.
func valuesToColumn(name string, vals []value) (*dataframe.Column, error) {
	allInt, anyString := true, false
	for _, v := range vals {
		if v.kind != dataframe.Int {
			allInt = false
		}
		if v.kind == dataframe.String {
			anyString = true
		}
	}
	switch {
	case anyString:
		out := make([]string, len(vals))
		for i, v := range vals {
			out[i] = v.display()
		}
		return dataframe.NewString(name, out), nil
	case allInt:
		out := make([]int64, len(vals))
		for i, v := range vals {
			out[i] = v.i
		}
		return dataframe.NewInt(name, out), nil
	default:
		out := make([]float64, len(vals))
		for i, v := range vals {
			out[i] = v.asFloat()
		}
		return dataframe.NewFloat(name, out), nil
	}
}

// groupContext serves identifier lookups from a group's first row and
// aggregate lookups from the accumulated results.
type groupContext struct {
	row  *rowContext
	aggs map[*aggExpr]value
}

func (c *groupContext) lookup(name string) (value, error) { return c.row.lookup(name) }
func (c *groupContext) aggValue(e *aggExpr) (value, bool) {
	v, ok := c.aggs[e]
	return v, ok
}

// aggGroup is one accumulated group: an exemplar row (frame + row index)
// for non-aggregate select items, and one accumulator per aggregate node.
// The synthetic empty global group has row = -1 and never resolves
// identifiers (renderGroups rejects non-pure-aggregate items first).
type aggGroup struct {
	frame *dataframe.Frame
	row   int
	accs  []*aggAccumulator
}

// executeGrouped handles aggregate and GROUP BY queries. Group keys are the
// GROUP BY expressions (or one global group when absent); each aggregate
// node accumulates per group in a single streaming pass.
func executeGrouped(stmt *selectStmt, src *dataframe.Frame, keep []int) (*dataframe.Frame, error) {
	// Collect distinct aggregate nodes across select items.
	var aggNodes []*aggExpr
	for _, item := range stmt.items {
		if item.star {
			return nil, evalErrf("SELECT * cannot be combined with aggregates")
		}
		collectAggs(item.ex, &aggNodes)
	}

	groupOf := map[string]*aggGroup{}
	var order []*aggGroup
	ctx := &rowContext{frame: src}
	var sb strings.Builder

	for _, r := range keep {
		ctx.row = r
		sb.Reset()
		for _, g := range stmt.groupBy {
			v, err := evalExpr(g, ctx)
			if err != nil {
				return nil, err
			}
			sb.WriteString(v.display())
			sb.WriteByte('\x1f')
		}
		key := sb.String()
		grp, ok := groupOf[key]
		if !ok {
			grp = &aggGroup{frame: src, row: r, accs: newAccs(aggNodes)}
			groupOf[key] = grp
			order = append(order, grp)
		}
		for i, a := range aggNodes {
			if a.star {
				grp.accs[i].add(intVal(1))
				continue
			}
			v, err := evalExpr(a.arg, ctx)
			if err != nil {
				return nil, err
			}
			grp.accs[i].add(v)
		}
	}
	// A global aggregate over zero rows still yields one row (COUNT = 0).
	if len(stmt.groupBy) == 0 && len(order) == 0 {
		order = append(order, &aggGroup{frame: src, row: -1, accs: newAccs(aggNodes)})
	}
	return renderGroups(stmt, aggNodes, order)
}

// renderGroups evaluates the select list once per accumulated group and
// assembles the output frame. Shared by the tree-walk and vectorized
// backends, so grouped projection semantics cannot diverge.
func renderGroups(stmt *selectStmt, aggNodes []*aggExpr, order []*aggGroup) (*dataframe.Frame, error) {
	itemVals := make([][]value, len(stmt.items))
	for i := range itemVals {
		itemVals[i] = make([]value, len(order))
	}
	for gi, grp := range order {
		aggs := make(map[*aggExpr]value, len(aggNodes))
		for i, a := range aggNodes {
			aggs[a] = grp.accs[i].result()
		}
		gctx := &groupContext{row: &rowContext{frame: grp.frame, row: grp.row}, aggs: aggs}
		for ii, item := range stmt.items {
			if grp.row < 0 && !isPureAggregate(item.ex) {
				return nil, evalErrf("non-aggregate select item over empty input")
			}
			v, err := evalExpr(item.ex, gctx)
			if err != nil {
				return nil, err
			}
			itemVals[ii][gi] = v
		}
	}

	out := dataframe.New()
	for ii, item := range stmt.items {
		col, err := valuesToColumn(item.outName(), itemVals[ii])
		if err != nil {
			return nil, err
		}
		if err := out.AddColumn(col); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func isPureAggregate(e expr) bool {
	switch v := e.(type) {
	case *aggExpr:
		return true
	case *numberExpr, *stringExpr:
		return true
	case *unaryExpr:
		return isPureAggregate(v.sub)
	case *binaryExpr:
		return isPureAggregate(v.left) && isPureAggregate(v.right)
	case *callExpr:
		for _, a := range v.args {
			if !isPureAggregate(a) {
				return false
			}
		}
		return true
	}
	return false
}

func collectAggs(e expr, dst *[]*aggExpr) {
	switch v := e.(type) {
	case *aggExpr:
		*dst = append(*dst, v)
	case *unaryExpr:
		collectAggs(v.sub, dst)
	case *binaryExpr:
		collectAggs(v.left, dst)
		collectAggs(v.right, dst)
	case *callExpr:
		for _, a := range v.args {
			collectAggs(a, dst)
		}
	case *inExpr:
		collectAggs(v.sub, dst)
	case *betweenExpr:
		collectAggs(v.sub, dst)
		collectAggs(v.lo, dst)
		collectAggs(v.hi, dst)
	}
}

func distinctRows(f *dataframe.Frame) *dataframe.Frame {
	seen := map[string]bool{}
	var keep []int
	var sb strings.Builder
	for r := 0; r < f.NumRows(); r++ {
		sb.Reset()
		for c := 0; c < f.NumCols(); c++ {
			sb.WriteString(f.ColumnAt(c).StringAt(r))
			sb.WriteByte('\x1f')
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			keep = append(keep, r)
		}
	}
	return f.Gather(keep)
}

// orderRows sorts the output frame by the ORDER BY items, which must be
// resolvable against output column names.
func orderRows(stmt *selectStmt, out *dataframe.Frame) (*dataframe.Frame, error) {
	keys := make([]dataframe.SortKey, 0, len(stmt.orderBy))
	tempCols := []string{}
	work := out
	for oi, item := range stmt.orderBy {
		if id, ok := item.ex.(*identExpr); ok && work.Has(id.name) {
			keys = append(keys, dataframe.SortKey{Col: id.name, Desc: item.desc})
			continue
		}
		// Computed sort key: evaluate against output columns into a
		// temporary column, dropped after sorting.
		vals := make([]value, work.NumRows())
		ctx := &rowContext{frame: work}
		for r := 0; r < work.NumRows(); r++ {
			ctx.row = r
			v, err := evalExpr(item.ex, ctx)
			if err != nil {
				return nil, err
			}
			vals[r] = v
		}
		name := "__order_" + itoa(oi)
		col, err := valuesToColumn(name, vals)
		if err != nil {
			return nil, err
		}
		// A shallow shell shares the output's column vectors but owns its
		// column list, so temp sort keys never mutate the caller's frame.
		// One shell serves every computed key (the old code deep-cloned the
		// whole frame per key).
		if work == out {
			work = out.Shallow()
		}
		if err := work.AddColumn(col); err != nil {
			return nil, err
		}
		tempCols = append(tempCols, name)
		keys = append(keys, dataframe.SortKey{Col: name, Desc: item.desc})
	}
	sorted, err := work.SortBy(keys...)
	if err != nil {
		return nil, err
	}
	if len(tempCols) > 0 {
		sorted = sorted.Drop(tempCols...)
	}
	return sorted, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
