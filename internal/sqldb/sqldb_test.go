package sqldb

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"infera/internal/dataframe"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	halos := dataframe.MustFromColumns(
		dataframe.NewInt("fof_halo_tag", []int64{1, 2, 3, 4, 5, 6}),
		dataframe.NewInt("sim", []int64{0, 0, 0, 1, 1, 1}),
		dataframe.NewInt("fof_halo_count", []int64{1000, 500, 250, 900, 450, 200}),
		dataframe.NewFloat("fof_halo_mass", []float64{2e14, 1e14, 5e13, 1.8e14, 9e13, 4e13}),
		dataframe.NewString("note", []string{"big", "mid", "small", "big", "mid", "small"}),
	)
	if err := db.CreateTable("halos", halos); err != nil {
		t.Fatal(err)
	}
	return db
}

func query(t *testing.T, db *DB, sql string) *dataframe.Frame {
	t.Helper()
	f, err := db.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return f
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT * FROM halos")
	if f.NumRows() != 6 || f.NumCols() != 5 {
		t.Errorf("shape = %dx%d", f.NumRows(), f.NumCols())
	}
}

func TestWhereAndProjection(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT fof_halo_tag, fof_halo_mass FROM halos WHERE sim = 0 AND fof_halo_mass > 6e13")
	if f.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", f.NumRows())
	}
	if tags := f.MustColumn("fof_halo_tag").I; tags[0] != 1 || tags[1] != 2 {
		t.Errorf("tags = %v", tags)
	}
	if f.NumCols() != 2 {
		t.Errorf("cols = %d", f.NumCols())
	}
}

func TestOrderLimitDesc(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT fof_halo_tag FROM halos ORDER BY fof_halo_mass DESC LIMIT 3")
	want := []int64{1, 4, 2}
	got := f.MustColumn("fof_halo_tag").I
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestComputedColumnsAndAlias(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT fof_halo_tag, fof_halo_mass / 1e14 AS mass14, LOG10(fof_halo_mass) AS lg FROM halos WHERE fof_halo_tag = 1")
	if v := f.MustColumn("mass14").F[0]; math.Abs(v-2) > 1e-12 {
		t.Errorf("mass14 = %v", v)
	}
	if v := f.MustColumn("lg").F[0]; math.Abs(v-math.Log10(2e14)) > 1e-12 {
		t.Errorf("lg = %v", v)
	}
}

func TestGlobalAggregates(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT COUNT(*) AS n, AVG(fof_halo_mass) AS avg_mass, MAX(fof_halo_count) AS maxc, MIN(fof_halo_count) AS minc, SUM(fof_halo_count) AS sumc FROM halos")
	if f.NumRows() != 1 {
		t.Fatalf("rows = %d", f.NumRows())
	}
	if n := f.MustColumn("n").I[0]; n != 6 {
		t.Errorf("count = %d", n)
	}
	wantAvg := (2e14 + 1e14 + 5e13 + 1.8e14 + 9e13 + 4e13) / 6
	if v := f.MustColumn("avg_mass").F[0]; math.Abs(v-wantAvg) > 1 {
		t.Errorf("avg = %v, want %v", v, wantAvg)
	}
	if v := f.MustColumn("maxc").F[0]; v != 1000 {
		t.Errorf("max = %v", v)
	}
	if v := f.MustColumn("minc").F[0]; v != 200 {
		t.Errorf("min = %v", v)
	}
	if v := f.MustColumn("sumc").F[0]; v != 3300 {
		t.Errorf("sum = %v", v)
	}
}

func TestGroupBy(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT sim, COUNT(*) AS n, AVG(fof_halo_count) AS avg_count FROM halos GROUP BY sim ORDER BY sim")
	if f.NumRows() != 2 {
		t.Fatalf("groups = %d", f.NumRows())
	}
	if n := f.MustColumn("n").I; n[0] != 3 || n[1] != 3 {
		t.Errorf("counts = %v", n)
	}
	want0 := (1000.0 + 500 + 250) / 3
	if v := f.MustColumn("avg_count").F[0]; math.Abs(v-want0) > 1e-9 {
		t.Errorf("avg sim0 = %v, want %v", v, want0)
	}
}

func TestStddevMedian(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT STDDEV(fof_halo_count) AS s, MEDIAN(fof_halo_count) AS m FROM halos WHERE sim = 0")
	// counts: 1000, 500, 250 -> mean 583.33, median 500
	if m := f.MustColumn("m").F[0]; m != 500 {
		t.Errorf("median = %v", m)
	}
	mean := (1000.0 + 500 + 250) / 3
	variance := ((1000-mean)*(1000-mean) + (500-mean)*(500-mean) + (250-mean)*(250-mean)) / 3
	if s := f.MustColumn("s").F[0]; math.Abs(s-math.Sqrt(variance)) > 1e-9 {
		t.Errorf("stddev = %v, want %v", s, math.Sqrt(variance))
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT DISTINCT note FROM halos ORDER BY note")
	if f.NumRows() != 3 {
		t.Errorf("distinct rows = %d", f.NumRows())
	}
}

func TestInBetweenLikeNot(t *testing.T) {
	db := testDB(t)
	if f := query(t, db, "SELECT fof_halo_tag FROM halos WHERE fof_halo_tag IN (2, 4, 99)"); f.NumRows() != 2 {
		t.Errorf("IN rows = %d", f.NumRows())
	}
	if f := query(t, db, "SELECT fof_halo_tag FROM halos WHERE fof_halo_tag NOT IN (2, 4)"); f.NumRows() != 4 {
		t.Errorf("NOT IN rows = %d", f.NumRows())
	}
	if f := query(t, db, "SELECT fof_halo_tag FROM halos WHERE fof_halo_mass BETWEEN 5e13 AND 1.5e14"); f.NumRows() != 3 {
		t.Errorf("BETWEEN rows = %d", f.NumRows())
	}
	if f := query(t, db, "SELECT fof_halo_tag FROM halos WHERE note LIKE 'b%'"); f.NumRows() != 2 {
		t.Errorf("LIKE rows = %d", f.NumRows())
	}
	if f := query(t, db, "SELECT fof_halo_tag FROM halos WHERE NOT (sim = 0)"); f.NumRows() != 3 {
		t.Errorf("NOT rows = %d", f.NumRows())
	}
}

func TestOrderByComputedKey(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT fof_halo_tag, fof_halo_mass FROM halos ORDER BY fof_halo_mass / fof_halo_tag DESC LIMIT 1")
	if f.MustColumn("fof_halo_tag").I[0] != 1 {
		t.Errorf("computed order wrong: %v", f)
	}
	if f.NumCols() != 2 {
		t.Errorf("temporary order column leaked: %v", f.Names())
	}
}

func TestErrorsAreInformative(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		sql  string
		want string
	}{
		{"SELEC * FROM halos", "syntax error"},
		{"SELECT * FROM missing", "Catalog Error"},
		{"SELECT halo_mass FROM halos", "KeyError"},
		{"SELECT fof_halo_mass FROM halos WHERE", "syntax error"},
		{"SELECT NOPEFN(fof_halo_mass) FROM halos", "unknown function"},
		{"SELECT SUM(*) FROM halos", "COUNT"},
		{"SELECT note + 1 FROM halos", "string"},
	}
	for _, c := range cases {
		_, err := db.Query(c.sql)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Query(%q) error = %v, want containing %q", c.sql, err, c.want)
		}
	}
}

func TestScanPruning(t *testing.T) {
	db := testDB(t)
	before := db.BytesScanned()
	query(t, db, "SELECT fof_halo_tag FROM halos WHERE fof_halo_tag > 3")
	narrow := db.BytesScanned() - before
	before = db.BytesScanned()
	query(t, db, "SELECT * FROM halos")
	wide := db.BytesScanned() - before
	if narrow >= wide {
		t.Errorf("pruned scan read %d bytes, full scan %d", narrow, wide)
	}
	table, cols, err := Explain("SELECT fof_halo_tag FROM halos WHERE sim = 1 ORDER BY fof_halo_mass")
	if err != nil || table != "halos" {
		t.Fatalf("Explain: %v %v", table, err)
	}
	if len(cols) != 3 {
		t.Errorf("Explain cols = %v", cols)
	}
}

func TestCreateAppendDropPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := dataframe.MustFromColumns(
		dataframe.NewInt("a", []int64{1, 2}),
		dataframe.NewFloat("b", []float64{1.5, 2.5}),
	)
	if err := db.CreateTable("t", f); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("t", f); err == nil {
		t.Error("duplicate CreateTable should fail")
	}
	if err := db.AppendTable("t", f); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify.
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.ReadTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 4 {
		t.Errorf("rows after append+reopen = %d", got.NumRows())
	}
	if db2.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	if err := db2.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := db2.DropTable("t"); err == nil {
		t.Error("double drop should fail")
	}
	if _, err := db2.Query("SELECT * FROM t"); err == nil {
		t.Error("query after drop should fail")
	}
}

func TestAppendSchemaMismatch(t *testing.T) {
	db := testDB(t)
	bad := dataframe.MustFromColumns(dataframe.NewInt("x", []int64{1}))
	if err := db.AppendTable("halos", bad); err == nil {
		t.Error("append with wrong schema should fail")
	}
}

func TestEmptyResultAndEmptyAggregate(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT fof_halo_tag FROM halos WHERE fof_halo_mass > 1e20")
	if f.NumRows() != 0 {
		t.Errorf("rows = %d", f.NumRows())
	}
	f = query(t, db, "SELECT COUNT(*) AS n FROM halos WHERE fof_halo_mass > 1e20")
	if f.MustColumn("n").I[0] != 0 {
		t.Errorf("empty count = %v", f.MustColumn("n").I[0])
	}
	// GROUP BY over empty input yields zero groups.
	f = query(t, db, "SELECT sim, COUNT(*) AS n FROM halos WHERE fof_halo_mass > 1e20 GROUP BY sim")
	if f.NumRows() != 0 {
		t.Errorf("empty groups = %d", f.NumRows())
	}
}

func TestAggregateArithmetic(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT SUM(fof_halo_mass) / COUNT(*) AS mean_mass FROM halos")
	wantAvg := (2e14 + 1e14 + 5e13 + 1.8e14 + 9e13 + 4e13) / 6
	if v := f.MustColumn("mean_mass").F[0]; math.Abs(v-wantAvg) > 1 {
		t.Errorf("mean = %v, want %v", v, wantAvg)
	}
}

func TestStringEscapesAndComments(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT fof_halo_tag FROM halos -- comment\n WHERE note = 'big'")
	if f.NumRows() != 2 {
		t.Errorf("rows = %d", f.NumRows())
	}
	if _, err := db.Query("SELECT 'unterminated FROM halos"); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"halo", "h%", true},
		{"halo", "%lo", true},
		{"halo", "h_lo", true},
		{"halo", "h_l", false},
		{"", "%", true},
		{"abc", "abc", true},
		{"abc", "a%c%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v", c.s, c.p, got)
		}
	}
}

// Property: SQL aggregates agree with direct dataframe computation.
func TestQuickAggregatesMatchDataframe(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	iter := 0
	prop := func(seed int64, nRaw uint8) bool {
		iter++
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		vals := make([]float64, n)
		groups := make([]int64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
			groups[i] = int64(rng.Intn(3))
		}
		f := dataframe.MustFromColumns(
			dataframe.NewInt("g", groups),
			dataframe.NewFloat("v", vals),
		)
		name := "q" + itoa(iter)
		if err := db.CreateOrReplaceTable(name, f); err != nil {
			return false
		}
		got, err := db.Query("SELECT g, SUM(v) AS s, COUNT(*) AS n FROM " + name + " GROUP BY g ORDER BY g")
		if err != nil {
			return false
		}
		want, err := f.GroupBy([]string{"g"}, []dataframe.Agg{
			{Col: "v", Op: dataframe.Sum, As: "s"},
			{Op: dataframe.Count, As: "n"},
		})
		if err != nil {
			return false
		}
		want, err = want.SortBy(dataframe.SortKey{Col: "g"})
		if err != nil {
			return false
		}
		if got.NumRows() != want.NumRows() {
			return false
		}
		for i := 0; i < got.NumRows(); i++ {
			if got.MustColumn("g").IntAt(i) != want.MustColumn("g").IntAt(i) {
				return false
			}
			if math.Abs(got.MustColumn("s").F[i]-want.MustColumn("s").F[i]) > 1e-9 {
				return false
			}
			if got.MustColumn("n").I[i] != want.MustColumn("n").I[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: WHERE filtering never returns rows violating the predicate.
func TestQuickWhereSound(t *testing.T) {
	db := testDB(t)
	prop := func(thresholdRaw uint16) bool {
		threshold := float64(thresholdRaw) * 1e12
		f, err := db.Query("SELECT fof_halo_mass FROM halos WHERE fof_halo_mass > " + formatFloat(threshold))
		if err != nil {
			return false
		}
		for _, v := range f.MustColumn("fof_halo_mass").F {
			if v <= threshold {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
