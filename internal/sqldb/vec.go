package sqldb

import (
	"fmt"
	"math"
	"sort"

	"infera/internal/dataframe"
)

// This file is the vectorized expression backend: the parsed AST compiles
// into a tree of typed kernels that evaluate whole column blocks at a time,
// instead of boxing one value per row through evalExpr. Compilation is
// conservative — any shape with row-at-a-time semantics the kernels cannot
// reproduce exactly (dynamic integer modulo, aggregates in scalar position,
// arithmetic over strings) returns notVectorizable and the planner falls
// back to the tree-walk engine, so behavior never diverges.

// notVectorizable explains why an expression or statement has to run on the
// tree-walk backend. It is a planning signal, not a user-facing error.
type notVectorizable struct{ reason string }

func (e *notVectorizable) Error() string { return e.reason }

func fallbackf(format string, args ...any) error {
	return &notVectorizable{reason: fmt.Sprintf(format, args...)}
}

// vec is one expression result over a block: a typed vector of block length,
// or a single broadcast constant (cnst). Exactly one of f/i/s is populated
// per kind, and non-constant float/int/string slices may alias resident
// column storage — they are read-only.
type vec struct {
	kind dataframe.Kind
	cnst bool
	f    []float64
	i    []int64
	s    []string
}

// floats returns the vector as a dense []float64 of length n, applying the
// same coercions as value.asFloat: ints convert, strings are NaN (the SQL
// layer never parses strings as numbers).
func (v vec) floats(n int) []float64 {
	switch v.kind {
	case dataframe.Float:
		if !v.cnst {
			return v.f
		}
		out := make([]float64, n)
		for j := range out {
			out[j] = v.f[0]
		}
		return out
	case dataframe.Int:
		out := make([]float64, n)
		if v.cnst {
			c := float64(v.i[0])
			for j := range out {
				out[j] = c
			}
		} else {
			for j, x := range v.i {
				out[j] = float64(x)
			}
		}
		return out
	default:
		out := make([]float64, n)
		nan := math.NaN()
		for j := range out {
			out[j] = nan
		}
		return out
	}
}

// ints returns the vector as a dense []int64 of length n; only valid for
// Int-kind vectors.
func (v vec) ints(n int) []int64 {
	if !v.cnst {
		return v.i
	}
	out := make([]int64, n)
	for j := range out {
		out[j] = v.i[0]
	}
	return out
}

// strs returns the vector as a dense []string of length n; only valid for
// String-kind vectors.
func (v vec) strs(n int) []string {
	if !v.cnst {
		return v.s
	}
	out := make([]string, n)
	for j := range out {
		out[j] = v.s[0]
	}
	return out
}

// truthyMask reports value.truthy per element.
func (v vec) truthyMask(n int) []bool {
	out := make([]bool, n)
	switch v.kind {
	case dataframe.Float:
		f := v.floats(n)
		for j, x := range f {
			out[j] = x != 0 && !math.IsNaN(x)
		}
	case dataframe.Int:
		i := v.ints(n)
		for j, x := range i {
			out[j] = x != 0
		}
	default:
		s := v.strs(n)
		for j, x := range s {
			out[j] = x != ""
		}
	}
	return out
}

// block is one evaluation window: rows [lo, hi) of a resident segment.
// Column lookups are cached per block so a kernel tree touching the same
// column repeatedly resolves it once, not once per node per batch.
type block struct {
	seg    *dataframe.Frame
	lo, hi int
	cols   map[string]*dataframe.Column
}

func (b *block) n() int { return b.hi - b.lo }

func (b *block) column(name string) *dataframe.Column {
	if c, ok := b.cols[name]; ok {
		return c
	}
	c := b.seg.MustColumn(name) // compile validated the name against the schema
	if b.cols == nil {
		b.cols = map[string]*dataframe.Column{}
	}
	b.cols[name] = c
	return c
}

// vecNode is one compiled kernel. kind is the statically known result kind —
// it matches the dynamic kind evalExpr would produce for every row, which is
// what lets the planner build typed output columns without inspecting
// values. eval never fails: the only dynamic error in the row engine
// (integer modulo by zero) is excluded at compile time.
type vecNode interface {
	kind() dataframe.Kind
	eval(b *block) vec
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// colNode streams a column slice zero-copy.
type colNode struct {
	name string
	k    dataframe.Kind
}

func (nd *colNode) kind() dataframe.Kind { return nd.k }
func (nd *colNode) eval(b *block) vec {
	c := b.column(nd.name)
	switch c.Kind {
	case dataframe.Float:
		return vec{kind: dataframe.Float, f: c.F[b.lo:b.hi]}
	case dataframe.Int:
		return vec{kind: dataframe.Int, i: c.I[b.lo:b.hi]}
	default:
		return vec{kind: dataframe.String, s: c.S[b.lo:b.hi]}
	}
}

// constNode broadcasts a literal.
type constNode struct{ v value }

func (nd *constNode) kind() dataframe.Kind { return nd.v.kind }
func (nd *constNode) eval(*block) vec {
	switch nd.v.kind {
	case dataframe.Float:
		return vec{kind: dataframe.Float, cnst: true, f: []float64{nd.v.f}}
	case dataframe.Int:
		return vec{kind: dataframe.Int, cnst: true, i: []int64{nd.v.i}}
	default:
		return vec{kind: dataframe.String, cnst: true, s: []string{nd.v.s}}
	}
}

// arithNode is + - * / % with the row engine's promotion rule: Int op Int
// stays Int except "/", everything else computes in float64.
type arithNode struct {
	op   string
	l, r vecNode
	k    dataframe.Kind
}

func (nd *arithNode) kind() dataframe.Kind { return nd.k }
func (nd *arithNode) eval(b *block) vec {
	n := b.n()
	lv, rv := nd.l.eval(b), nd.r.eval(b)
	if nd.k == dataframe.Int {
		li, ri := lv.ints(n), rv.ints(n)
		out := make([]int64, n)
		switch nd.op {
		case "+":
			for j := range out {
				out[j] = li[j] + ri[j]
			}
		case "-":
			for j := range out {
				out[j] = li[j] - ri[j]
			}
		case "*":
			for j := range out {
				out[j] = li[j] * ri[j]
			}
		case "%":
			// Compilation only admits a constant nonzero divisor.
			for j := range out {
				out[j] = li[j] % ri[j]
			}
		}
		return vec{kind: dataframe.Int, i: out}
	}
	lf, rf := lv.floats(n), rv.floats(n)
	out := make([]float64, n)
	switch nd.op {
	case "+":
		for j := range out {
			out[j] = lf[j] + rf[j]
		}
	case "-":
		for j := range out {
			out[j] = lf[j] - rf[j]
		}
	case "*":
		for j := range out {
			out[j] = lf[j] * rf[j]
		}
	case "/":
		for j := range out {
			out[j] = lf[j] / rf[j]
		}
	case "%":
		for j := range out {
			out[j] = math.Mod(lf[j], rf[j])
		}
	}
	return vec{kind: dataframe.Float, f: out}
}

// cmpNode is = != < <= > >=, reproducing evalBinary exactly: string/string
// compares lexicographically, mixed string/number equality is always false,
// and ordering over NaN keeps the row engine's cmp==0 quirk (NaN < x is
// false, but NaN <= x is true) by negating the opposite strict comparison.
type cmpNode struct {
	op   string
	l, r vecNode
}

// tryFusedCmp handles the hot "column op constant" comparison shapes
// without materializing the constant as a block-wide slice or the Int
// column as a converted float slice. The per-element semantics are
// identical to the generic path: Int elements still go through float64,
// and the NaN quirk (<= as negated >) is preserved. Returns false when the
// shape is not column-vs-numeric-constant, leaving the generic path to run.
func tryFusedCmp(out []int64, op string, lv, rv vec) bool {
	if lv.cnst && !rv.cnst {
		lv, rv = rv, lv
		op = flipCmp(op)
	}
	if !rv.cnst || lv.cnst {
		return false
	}
	var c float64
	switch rv.kind {
	case dataframe.Float:
		c = rv.f[0]
	case dataframe.Int:
		c = float64(rv.i[0])
	default:
		return false
	}
	switch lv.kind {
	case dataframe.Float:
		cmpFloatConst(out, op, lv.f, c)
	case dataframe.Int:
		cmpIntConst(out, op, lv.i, c)
	default:
		return false
	}
	return true
}

func cmpFloatConst(out []int64, op string, lf []float64, c float64) {
	switch op {
	case "=":
		for j, x := range lf {
			out[j] = b2i(x == c)
		}
	case "!=":
		for j, x := range lf {
			out[j] = b2i(x != c)
		}
	case "<":
		for j, x := range lf {
			out[j] = b2i(x < c)
		}
	case "<=":
		for j, x := range lf {
			out[j] = b2i(!(x > c))
		}
	case ">":
		for j, x := range lf {
			out[j] = b2i(x > c)
		}
	default:
		for j, x := range lf {
			out[j] = b2i(!(x < c))
		}
	}
}

func cmpIntConst(out []int64, op string, li []int64, c float64) {
	switch op {
	case "=":
		for j, x := range li {
			out[j] = b2i(float64(x) == c)
		}
	case "!=":
		for j, x := range li {
			out[j] = b2i(float64(x) != c)
		}
	case "<":
		for j, x := range li {
			out[j] = b2i(float64(x) < c)
		}
	case "<=":
		for j, x := range li {
			out[j] = b2i(!(float64(x) > c))
		}
	case ">":
		for j, x := range li {
			out[j] = b2i(float64(x) > c)
		}
	default:
		for j, x := range li {
			out[j] = b2i(!(float64(x) < c))
		}
	}
}

func (nd *cmpNode) kind() dataframe.Kind { return dataframe.Int }
func (nd *cmpNode) eval(b *block) vec {
	n := b.n()
	lv, rv := nd.l.eval(b), nd.r.eval(b)
	lk, rk := nd.l.kind(), nd.r.kind()
	out := make([]int64, n)
	switch nd.op {
	case "=", "!=":
		want := nd.op == "="
		switch {
		case lk == dataframe.String && rk == dataframe.String:
			ls, rs := lv.strs(n), rv.strs(n)
			for j := range out {
				out[j] = b2i((ls[j] == rs[j]) == want)
			}
		case lk == dataframe.String || rk == dataframe.String:
			// valuesEqual over mismatched kinds is false for every row.
			c := b2i(!want)
			for j := range out {
				out[j] = c
			}
		default:
			if !tryFusedCmp(out, nd.op, lv, rv) {
				lf, rf := lv.floats(n), rv.floats(n)
				for j := range out {
					out[j] = b2i((lf[j] == rf[j]) == want)
				}
			}
		}
	default:
		if lk == dataframe.String && rk == dataframe.String {
			ls, rs := lv.strs(n), rv.strs(n)
			switch nd.op {
			case "<":
				for j := range out {
					out[j] = b2i(ls[j] < rs[j])
				}
			case "<=":
				for j := range out {
					out[j] = b2i(ls[j] <= rs[j])
				}
			case ">":
				for j := range out {
					out[j] = b2i(ls[j] > rs[j])
				}
			default:
				for j := range out {
					out[j] = b2i(ls[j] >= rs[j])
				}
			}
			break
		}
		if tryFusedCmp(out, nd.op, lv, rv) {
			break
		}
		lf, rf := lv.floats(n), rv.floats(n)
		switch nd.op {
		case "<":
			for j := range out {
				out[j] = b2i(lf[j] < rf[j])
			}
		case "<=":
			for j := range out {
				out[j] = b2i(!(lf[j] > rf[j]))
			}
		case ">":
			for j := range out {
				out[j] = b2i(lf[j] > rf[j])
			}
		default:
			for j := range out {
				out[j] = b2i(!(lf[j] < rf[j]))
			}
		}
	}
	return vec{kind: dataframe.Int, i: out}
}

// logicNode is AND/OR. Both sides evaluate fully — safe because compiled
// kernels cannot fail at runtime, so skipping the row engine's
// short-circuit changes nothing observable.
type logicNode struct {
	op   string
	l, r vecNode
}

func (nd *logicNode) kind() dataframe.Kind { return dataframe.Int }
func (nd *logicNode) eval(b *block) vec {
	n := b.n()
	lv, rv := nd.l.eval(b), nd.r.eval(b)
	out := make([]int64, n)
	// Comparison and logic kernels yield non-const Int vectors whose
	// truthiness is simply != 0; combining them directly skips two
	// intermediate bool masks on the hot predicate path.
	if lv.kind == dataframe.Int && rv.kind == dataframe.Int && !lv.cnst && !rv.cnst {
		li, ri := lv.i, rv.i
		if nd.op == "AND" {
			for j := range out {
				out[j] = b2i(li[j] != 0 && ri[j] != 0)
			}
		} else {
			for j := range out {
				out[j] = b2i(li[j] != 0 || ri[j] != 0)
			}
		}
		return vec{kind: dataframe.Int, i: out}
	}
	lm, rm := lv.truthyMask(n), rv.truthyMask(n)
	if nd.op == "AND" {
		for j := range out {
			out[j] = b2i(lm[j] && rm[j])
		}
	} else {
		for j := range out {
			out[j] = b2i(lm[j] || rm[j])
		}
	}
	return vec{kind: dataframe.Int, i: out}
}

type notNode struct{ sub vecNode }

func (nd *notNode) kind() dataframe.Kind { return dataframe.Int }
func (nd *notNode) eval(b *block) vec {
	n := b.n()
	m := nd.sub.eval(b).truthyMask(n)
	out := make([]int64, n)
	for j := range out {
		out[j] = b2i(!m[j])
	}
	return vec{kind: dataframe.Int, i: out}
}

// negNode is unary minus: Int negates in place, everything else negates the
// float coercion (strings become -NaN, matching the row engine).
type negNode struct{ sub vecNode }

func (nd *negNode) kind() dataframe.Kind {
	if nd.sub.kind() == dataframe.Int {
		return dataframe.Int
	}
	return dataframe.Float
}
func (nd *negNode) eval(b *block) vec {
	n := b.n()
	sv := nd.sub.eval(b)
	if nd.sub.kind() == dataframe.Int {
		in := sv.ints(n)
		out := make([]int64, n)
		for j := range out {
			out[j] = -in[j]
		}
		return vec{kind: dataframe.Int, i: out}
	}
	in := sv.floats(n)
	out := make([]float64, n)
	for j := range out {
		out[j] = -in[j]
	}
	return vec{kind: dataframe.Float, f: out}
}

// inNode is IN/NOT IN over a constant member list. valuesEqual semantics:
// string subjects match only string members, numeric subjects compare as
// float64 against numeric members, and NaN never equals anything.
type inNode struct {
	sub    vecNode
	negate bool
	nums   []float64
	strsL  []string
}

func (nd *inNode) kind() dataframe.Kind { return dataframe.Int }
func (nd *inNode) eval(b *block) vec {
	n := b.n()
	sv := nd.sub.eval(b)
	out := make([]int64, n)
	if nd.sub.kind() == dataframe.String {
		ss := sv.strs(n)
		for j := range out {
			found := false
			for _, m := range nd.strsL {
				if ss[j] == m {
					found = true
					break
				}
			}
			out[j] = b2i(found != nd.negate)
		}
		return vec{kind: dataframe.Int, i: out}
	}
	sf := sv.floats(n)
	for j := range out {
		found := false
		for _, m := range nd.nums {
			if sf[j] == m {
				found = true
				break
			}
		}
		out[j] = b2i(found != nd.negate)
	}
	return vec{kind: dataframe.Int, i: out}
}

// betweenNode is BETWEEN/NOT BETWEEN over float coercions, exactly the row
// engine's x >= lo && x <= hi (NaN subjects fail, so NOT BETWEEN keeps
// them).
type betweenNode struct {
	sub, lo, hi vecNode
	negate      bool
}

func (nd *betweenNode) kind() dataframe.Kind { return dataframe.Int }
func (nd *betweenNode) eval(b *block) vec {
	n := b.n()
	x := nd.sub.eval(b).floats(n)
	lo := nd.lo.eval(b).floats(n)
	hi := nd.hi.eval(b).floats(n)
	out := make([]int64, n)
	for j := range out {
		in := x[j] >= lo[j] && x[j] <= hi[j]
		out[j] = b2i(in != nd.negate)
	}
	return vec{kind: dataframe.Int, i: out}
}

// likeNode is LIKE over two string-kind operands.
type likeNode struct{ l, r vecNode }

func (nd *likeNode) kind() dataframe.Kind { return dataframe.Int }
func (nd *likeNode) eval(b *block) vec {
	n := b.n()
	ls := nd.l.eval(b).strs(n)
	ps := nd.r.eval(b).strs(n)
	out := make([]int64, n)
	for j := range out {
		out[j] = b2i(likeMatch(ls[j], ps[j]))
	}
	return vec{kind: dataframe.Int, i: out}
}

// callNode applies a scalar math function over float coercions.
type callNode struct {
	args []vecNode
	f1   func(float64) float64 // single-argument functions
	f2   func(a, b float64) float64
}

func (nd *callNode) kind() dataframe.Kind { return dataframe.Float }
func (nd *callNode) eval(b *block) vec {
	n := b.n()
	a0 := nd.args[0].eval(b).floats(n)
	out := make([]float64, n)
	if nd.f2 != nil {
		a1 := nd.args[1].eval(b).floats(n)
		for j := range out {
			out[j] = nd.f2(a0[j], a1[j])
		}
	} else {
		for j := range out {
			out[j] = nd.f1(a0[j])
		}
	}
	return vec{kind: dataframe.Float, f: out}
}

var scalarKernels = map[string]func(float64) float64{
	"ABS":   math.Abs,
	"SQRT":  math.Sqrt,
	"LOG10": math.Log10,
	"LOG":   math.Log,
	"EXP":   math.Exp,
	"FLOOR": math.Floor,
	"CEIL":  math.Ceil,
	"ROUND": math.Round,
}

// constValue extracts the literal value of an expression the way evalExpr
// would produce it: integral numbers under 1e15 are Int, unary minus folds.
func constValue(e expr) (value, bool) {
	switch v := e.(type) {
	case *numberExpr:
		if v.val == math.Trunc(v.val) && math.Abs(v.val) < 1e15 {
			return intVal(int64(v.val)), true
		}
		return floatVal(v.val), true
	case *stringExpr:
		return stringVal(v.val), true
	case *unaryExpr:
		if v.op != "-" {
			return value{}, false
		}
		sub, ok := constValue(v.sub)
		if !ok {
			return value{}, false
		}
		if sub.kind == dataframe.Int {
			return intVal(-sub.i), true
		}
		return floatVal(-sub.asFloat()), true
	}
	return value{}, false
}

// compileVec lowers an expression to a kernel tree, or reports why it must
// run on the tree-walk backend. kinds is the table schema.
func compileVec(e expr, kinds map[string]dataframe.Kind) (vecNode, error) {
	switch v := e.(type) {
	case *numberExpr, *stringExpr:
		cv, _ := constValue(v)
		return &constNode{v: cv}, nil
	case *identExpr:
		k, ok := kinds[v.name]
		if !ok {
			return nil, fallbackf("column %q not in table schema", v.name)
		}
		return &colNode{name: v.name, k: k}, nil
	case *unaryExpr:
		sub, err := compileVec(v.sub, kinds)
		if err != nil {
			return nil, err
		}
		switch v.op {
		case "-":
			if c, ok := sub.(*constNode); ok && c.v.kind != dataframe.String {
				if c.v.kind == dataframe.Int {
					return &constNode{v: intVal(-c.v.i)}, nil
				}
				return &constNode{v: floatVal(-c.v.f)}, nil
			}
			return &negNode{sub: sub}, nil
		case "NOT":
			return &notNode{sub: sub}, nil
		}
		return nil, fallbackf("unary operator %q", v.op)
	case *binaryExpr:
		l, err := compileVec(v.left, kinds)
		if err != nil {
			return nil, err
		}
		r, err := compileVec(v.right, kinds)
		if err != nil {
			return nil, err
		}
		switch v.op {
		case "AND", "OR":
			return &logicNode{op: v.op, l: l, r: r}, nil
		case "+", "-", "*", "/", "%":
			if l.kind() == dataframe.String || r.kind() == dataframe.String {
				return nil, fallbackf("arithmetic over string operand")
			}
			k := dataframe.Float
			if l.kind() == dataframe.Int && r.kind() == dataframe.Int && v.op != "/" {
				k = dataframe.Int
			}
			if v.op == "%" && k == dataframe.Int {
				// Integer modulo is the one kernel with a dynamic error
				// (modulo by zero), and AND/OR short-circuiting can make the
				// row engine skip it; only a provably nonzero constant
				// divisor is vectorized.
				c, ok := r.(*constNode)
				if !ok || c.v.i == 0 {
					return nil, fallbackf("integer modulo with non-constant or zero divisor")
				}
			}
			return &arithNode{op: v.op, l: l, r: r, k: k}, nil
		case "=", "!=", "<", "<=", ">", ">=":
			return &cmpNode{op: v.op, l: l, r: r}, nil
		case "LIKE":
			if l.kind() != dataframe.String || r.kind() != dataframe.String {
				return nil, fallbackf("LIKE over non-string operands")
			}
			return &likeNode{l: l, r: r}, nil
		}
		return nil, fallbackf("operator %q", v.op)
	case *inExpr:
		sub, err := compileVec(v.sub, kinds)
		if err != nil {
			return nil, err
		}
		nd := &inNode{sub: sub, negate: v.negate}
		for _, item := range v.list {
			cv, ok := constValue(item)
			if !ok {
				return nil, fallbackf("non-constant IN list member %s", item)
			}
			if cv.kind == dataframe.String {
				nd.strsL = append(nd.strsL, cv.s)
			} else {
				nd.nums = append(nd.nums, cv.asFloat())
			}
		}
		return nd, nil
	case *betweenExpr:
		sub, err := compileVec(v.sub, kinds)
		if err != nil {
			return nil, err
		}
		lo, err := compileVec(v.lo, kinds)
		if err != nil {
			return nil, err
		}
		hi, err := compileVec(v.hi, kinds)
		if err != nil {
			return nil, err
		}
		return &betweenNode{sub: sub, lo: lo, hi: hi, negate: v.negate}, nil
	case *callExpr:
		args := make([]vecNode, len(v.args))
		for i, a := range v.args {
			an, err := compileVec(a, kinds)
			if err != nil {
				return nil, err
			}
			if an.kind() == dataframe.String {
				return nil, fallbackf("function %s over string argument", v.fn)
			}
			args[i] = an
		}
		if v.fn == "POW" {
			return &callNode{args: args, f2: math.Pow}, nil
		}
		if f1, ok := scalarKernels[v.fn]; ok {
			return &callNode{args: args, f1: f1}, nil
		}
		return nil, fallbackf("function %s has no kernel", v.fn)
	case *aggExpr:
		return nil, fallbackf("aggregate %s in scalar position", v.fn)
	}
	return nil, fallbackf("expression %T has no kernel", e)
}

// exprColumns returns the sorted set of column names referenced by exprs.
func exprColumns(exprs ...expr) []string {
	set := map[string]bool{}
	for _, e := range exprs {
		if e != nil {
			e.columns(set)
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	// Deterministic ordering keeps compacted mini-frames stable.
	sort.Strings(out)
	return out
}
