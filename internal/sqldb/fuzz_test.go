package sqldb

import (
	"strings"
	"testing"

	"infera/internal/dataframe"
)

var fuzzSQLSeeds = []string{
	"SELECT * FROM parts",
	"SELECT tag, val FROM parts WHERE cnt > 100 ORDER BY val DESC LIMIT 5",
	"SELECT grp, COUNT(*) AS n, AVG(val) FROM parts GROUP BY grp ORDER BY n",
	"SELECT tag FROM parts WHERE name LIKE '%a%' AND NOT (grp = 2)",
	"SELECT tag FROM parts WHERE cnt BETWEEN 10 AND 400",
	"SELECT tag FROM parts WHERE grp IN (0, 1, 2)",
	"SELECT SQRT(ABS(val)) FROM parts WHERE val != 0",
	"SELECT tag % 0 FROM parts",
	"SELECT nope FROM parts",
	"SELECT",
	"SELECT * FROM",
	"SELECT (((((tag))))) FROM parts",
	"SELECT - - - - tag FROM parts",
	"SELECT tag FROM parts WHERE NOT NOT NOT grp = 1",
	"select lower, keywords FROM parts",
	"SELECT 'unterminated FROM parts",
	"SELECT tag FROM parts LIMIT -1",
}

// FuzzSQLParse asserts the lexer/parser never panic and recursion stays
// bounded on arbitrary statement text.
func FuzzSQLParse(f *testing.F) {
	for _, s := range fuzzSQLSeeds {
		f.Add(s)
	}
	// The known crasher class: unbounded expression recursion.
	f.Add("SELECT " + strings.Repeat("(", 2000) + "1")
	f.Add("SELECT tag FROM parts WHERE " + strings.Repeat("NOT ", 2000) + "1 = 1")
	f.Add("SELECT " + strings.Repeat("- ", 2000) + "1 FROM parts")
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := parseSelect(sql)
		if err == nil && stmt == nil {
			t.Fatal("nil statement without error")
		}
	})
}

// FuzzSQLQuery runs arbitrary statements through both engines over the
// differential table and asserts no panic plus result agreement whenever
// both succeed.
func FuzzSQLQuery(f *testing.F) {
	for _, s := range fuzzSQLSeeds {
		f.Add(s)
	}
	dbTW := diffDB(f)
	dbVec := diffDB(f)
	f.Fuzz(func(t *testing.T, sql string) {
		if len(sql) > 2048 {
			return
		}
		tw, twErr := dbTW.QueryBackend(sql, BackendTreeWalk)
		auto, autoErr := dbVec.QueryBackend(sql, BackendAuto)
		if (twErr == nil) != (autoErr == nil) {
			t.Fatalf("%q: error divergence: treewalk=%v auto=%v", sql, twErr, autoErr)
		}
		if twErr == nil && !dataframe.Equal(tw, auto) {
			t.Fatalf("%q: frames diverge:\ntreewalk:\n%v\nauto:\n%v", sql, tw, auto)
		}
	})
}

// TestSQLParserDepthBound locks in the recursion guard directly.
func TestSQLParserDepthBound(t *testing.T) {
	for _, sql := range []string{
		"SELECT " + strings.Repeat("(", 100_000) + "1",
		"SELECT tag FROM parts WHERE " + strings.Repeat("NOT ", 100_000) + "1 = 1",
		"SELECT " + strings.Repeat("- ", 100_000) + "1 FROM parts",
	} {
		_, err := parseSelect(sql)
		if err == nil || !strings.Contains(err.Error(), "too deeply nested") {
			t.Fatalf("statement %.40q...: err = %v, want nesting SyntaxError", sql, err)
		}
	}
	// Reasonable nesting still parses (each paren level costs two depth
	// frames: orExpr + notExpr).
	ok := "SELECT " + strings.Repeat("(", 40) + "tag" + strings.Repeat(")", 40) + " FROM parts"
	if _, err := parseSelect(ok); err != nil {
		t.Fatalf("depth-40 expression rejected: %v", err)
	}
}
