package sqldb

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"infera/internal/dataframe"
)

// diffFrames builds a deterministic multi-segment table exercising every
// engine edge: negative ints, NaN floats, duplicate and empty strings,
// LIKE metacharacters in data, and a segment-clustered column (seg) whose
// min/max stats make pruning decidable.
func diffFrames() []*dataframe.Frame {
	rng := rand.New(rand.NewSource(99))
	names := []string{"alpha", "beta", "gamma", "delta", "a%b_c", ""}
	var frames []*dataframe.Frame
	tag := int64(0)
	for s := 0; s < 5; s++ {
		n := 37 + 11*s
		tags := make([]int64, n)
		segs := make([]int64, n)
		grps := make([]int64, n)
		cnts := make([]int64, n)
		vals := make([]float64, n)
		nms := make([]string, n)
		for i := 0; i < n; i++ {
			tag++
			tags[i] = tag
			segs[i] = int64(s)
			grps[i] = rng.Int63n(4)
			cnts[i] = rng.Int63n(2000) - 500
			v := rng.NormFloat64() * 1e14
			if i%9 == 4 {
				v = math.NaN()
			}
			vals[i] = v
			nms[i] = names[rng.Intn(len(names))]
		}
		frames = append(frames, dataframe.MustFromColumns(
			dataframe.NewInt("tag", tags),
			dataframe.NewInt("seg", segs),
			dataframe.NewInt("grp", grps),
			dataframe.NewInt("cnt", cnts),
			dataframe.NewFloat("val", vals),
			dataframe.NewString("name", nms),
		))
	}
	return frames
}

func diffDB(t testing.TB) *DB {
	t.Helper()
	db, err := CreateStaged(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.BulkAppend("parts", diffFrames()...); err != nil {
		t.Fatal(err)
	}
	return db
}

// diffCorpus is the hand-written statement corpus: projections, computed
// expressions, every predicate form, functions, aggregates, DISTINCT,
// ORDER BY (plain/desc/multi/alias/computed/strings), LIMIT with and
// without ORDER BY, empty results, and error cases. Statements the
// vectorizer cannot compile are part of the corpus on purpose — they must
// fall back with identical results.
var diffCorpus = []string{
	"SELECT * FROM parts",
	"SELECT tag, val FROM parts",
	"SELECT tag AS t, val * 2 AS v2 FROM parts WHERE cnt > 100",
	"SELECT tag FROM parts WHERE val >= 0 AND cnt < 700",
	"SELECT tag FROM parts WHERE NOT (grp = 2) OR val < -1e13",
	"SELECT tag FROM parts WHERE cnt BETWEEN 10 AND 400",
	"SELECT tag FROM parts WHERE cnt NOT BETWEEN 10 AND 400",
	"SELECT tag FROM parts WHERE val BETWEEN -5e13 AND 5e13",
	"SELECT tag FROM parts WHERE val NOT BETWEEN -5e13 AND 5e13",
	"SELECT tag FROM parts WHERE grp IN (1, 3)",
	"SELECT tag FROM parts WHERE grp NOT IN (1, 3)",
	"SELECT tag FROM parts WHERE name IN ('alpha', 'delta')",
	"SELECT tag FROM parts WHERE name LIKE 'a%'",
	"SELECT tag FROM parts WHERE name LIKE '%ta'",
	"SELECT tag FROM parts WHERE name LIKE '%a%b%'",
	"SELECT tag FROM parts WHERE name LIKE 'a__h_'",
	"SELECT tag FROM parts WHERE name = 'beta'",
	"SELECT tag FROM parts WHERE name != ''",
	"SELECT tag FROM parts WHERE name < 'delta'",
	"SELECT tag FROM parts WHERE name >= 'beta'",
	"SELECT tag FROM parts WHERE name = grp",
	"SELECT ABS(val) AS a, SQRT(ABS(val)) FROM parts WHERE tag % 7 = 0",
	"SELECT tag, ROUND(val / 1e13) AS r, FLOOR(cnt / 10), CEIL(cnt / 10) FROM parts WHERE grp = 1",
	"SELECT tag, POW(grp, 2) FROM parts WHERE seg > 2",
	"SELECT tag, LOG10(ABS(val) + 1), EXP(grp / 10) FROM parts WHERE cnt >= 0",
	"SELECT tag, cnt + grp, cnt - 2 * grp, -cnt AS neg FROM parts",
	"SELECT tag, cnt / grp FROM parts",
	"SELECT tag FROM parts WHERE val <= 0",
	"SELECT tag FROM parts WHERE val > 0",
	"SELECT tag FROM parts WHERE val != 0",
	"SELECT tag FROM parts WHERE val = val",
	"SELECT tag FROM parts WHERE val",
	"SELECT tag FROM parts WHERE NOT name",
	"SELECT tag FROM parts WHERE 5e13 < val",
	"SELECT tag FROM parts WHERE 2 >= grp",
	"SELECT DISTINCT grp FROM parts",
	"SELECT DISTINCT grp, name FROM parts ORDER BY grp DESC, name",
	"SELECT DISTINCT grp FROM parts LIMIT 2",
	"SELECT DISTINCT grp * 2 AS g2 FROM parts",
	"SELECT tag FROM parts LIMIT 7",
	"SELECT tag FROM parts LIMIT 0",
	"SELECT tag FROM parts LIMIT 1000",
	"SELECT tag FROM parts WHERE grp = 3 LIMIT 5",
	"SELECT tag, val FROM parts ORDER BY val DESC LIMIT 5",
	"SELECT tag, val FROM parts ORDER BY val",
	"SELECT tag, val FROM parts ORDER BY val DESC",
	"SELECT tag FROM parts ORDER BY val DESC, tag LIMIT 9",
	"SELECT tag FROM parts ORDER BY grp, cnt DESC, tag LIMIT 12",
	"SELECT tag, val * 2 AS dub FROM parts ORDER BY dub LIMIT 4",
	"SELECT tag FROM parts ORDER BY cnt % 5, tag LIMIT 10",
	"SELECT name FROM parts ORDER BY name LIMIT 6",
	"SELECT name, tag FROM parts ORDER BY name DESC, tag LIMIT 6",
	"SELECT tag FROM parts WHERE cnt > 0 ORDER BY cnt LIMIT 3",
	"SELECT tag, cnt FROM parts ORDER BY cnt LIMIT 200",
	"SELECT grp, COUNT(*) AS n, SUM(val), AVG(val), MIN(val), MAX(val) FROM parts GROUP BY grp",
	"SELECT grp, STDDEV(cnt), MEDIAN(cnt) FROM parts GROUP BY grp ORDER BY grp",
	"SELECT grp, name, COUNT(*) AS n FROM parts GROUP BY grp, name ORDER BY grp, name",
	"SELECT COUNT(*) FROM parts WHERE val > 1e14",
	"SELECT COUNT(*) FROM parts WHERE val > 1e30",
	"SELECT SUM(cnt) FROM parts WHERE grp = 9",
	"SELECT COUNT(*) AS n, SUM(val) / COUNT(*) AS mean FROM parts",
	"SELECT MEDIAN(val) FROM parts",
	"SELECT name, COUNT(*) AS n FROM parts GROUP BY name ORDER BY n DESC, name",
	"SELECT grp, COUNT(*) AS n FROM parts WHERE name LIKE '%a%' GROUP BY grp ORDER BY grp LIMIT 3",
	"SELECT grp + 1 AS g1, AVG(val / 1e14) FROM parts GROUP BY grp + 1 ORDER BY g1",
	"SELECT seg, MAX(cnt) AS m FROM parts WHERE seg >= 3 GROUP BY seg",
	"SELECT tag FROM parts WHERE seg = 2",
	"SELECT tag FROM parts WHERE seg = 2 AND val < 1e16",
	"SELECT tag FROM parts WHERE seg = 99",
	"SELECT tag FROM parts WHERE seg BETWEEN 1 AND 2 ORDER BY tag DESC LIMIT 8",
	"SELECT tag * 2 AS d FROM parts WHERE 1 = 0",
	"SELECT tag, name FROM parts WHERE 1 = 0",
	// Fallback and error parity.
	"SELECT tag FROM parts WHERE grp IN (tag, 1)",
	"SELECT tag, tag % grp FROM parts",
	"SELECT tag % 0 FROM parts",
	"SELECT nope FROM parts",
	"SELECT tag FROM parts WHERE name + 1 > 0",
	"SELECT SQRT(name) FROM parts",
	"SELECT NOSUCHFN(tag) FROM parts",
}

// runDiff executes sql on both backends (forcing the vectorized engine
// when the planner accepts the statement) and reports whether the
// vectorized engine served it.
func runDiff(t *testing.T, dbTW, dbVec *DB, sql string) bool {
	t.Helper()
	info, ierr := dbVec.ExplainQuery(sql)
	vecServed := ierr == nil && info.Backend == BackendVectorized.String()

	tw, twErr := dbTW.QueryBackend(sql, BackendTreeWalk)
	var vf *dataframe.Frame
	var vErr error
	if vecServed {
		vf, vErr = dbVec.QueryBackend(sql, BackendVectorized)
	} else {
		vf, vErr = dbVec.QueryBackend(sql, BackendAuto)
	}

	if (twErr == nil) != (vErr == nil) {
		t.Errorf("%q: error divergence: treewalk=%v, vectorized=%v", sql, twErr, vErr)
		return vecServed
	}
	if twErr != nil {
		if twErr.Error() != vErr.Error() {
			t.Errorf("%q: error text divergence:\n  treewalk:   %v\n  vectorized: %v", sql, twErr, vErr)
		}
		return vecServed
	}
	if !dataframe.Equal(tw, vf) {
		t.Errorf("%q: frames diverge (backend=%s):\ntreewalk %dx%d:\n%v\nvectorized %dx%d:\n%v",
			sql, info.Backend, tw.NumRows(), tw.NumCols(), tw, vf.NumRows(), vf.NumCols(), vf)
	}
	return vecServed
}

// TestDifferentialBackends runs the corpus plus generated predicates
// through both engines and requires identical frames (or identical
// errors). Separate databases keep the vectorized side multi-segment: the
// tree-walk's ReadTable would otherwise collapse the segments after the
// first statement.
func TestDifferentialBackends(t *testing.T) {
	dbTW := diffDB(t)
	dbVec := diffDB(t)

	corpus := append([]string{}, diffCorpus...)
	rng := rand.New(rand.NewSource(12345))
	ops := []string{"<", "<=", ">", ">=", "=", "!="}
	for i := 0; i < 80; i++ {
		var col, thr string
		switch rng.Intn(4) {
		case 0:
			col, thr = "val", fmt.Sprintf("%g", rng.NormFloat64()*1e14)
		case 1:
			col, thr = "cnt", fmt.Sprintf("%d", rng.Int63n(2500)-600)
		case 2:
			col, thr = "grp", fmt.Sprintf("%d", rng.Int63n(6)-1)
		default:
			col, thr = "seg", fmt.Sprintf("%d", rng.Int63n(7)-1)
		}
		op := ops[rng.Intn(len(ops))]
		corpus = append(corpus, fmt.Sprintf("SELECT tag, %s FROM parts WHERE %s %s %s", col, col, op, thr))
	}

	vectorized := 0
	for _, sql := range corpus {
		if runDiff(t, dbTW, dbVec, sql) {
			vectorized++
		}
	}
	// The engine exists to serve the analysis workload; if most of the
	// corpus falls back, the compiler has silently regressed.
	if min := 2 * len(corpus) / 3; vectorized < min {
		t.Errorf("vectorized backend served %d/%d statements, want >= %d", vectorized, len(corpus), min)
	}
}

// TestDifferentialSingleSegment reruns the corpus against single-segment
// (durable, materialized) tables, covering the collapsed-residency shape
// production queries hit after a flush.
func TestDifferentialSingleSegment(t *testing.T) {
	mk := func() *DB {
		db, err := Create(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		all, err := dataframe.Concat(diffFrames()...)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.CreateTable("parts", all); err != nil {
			t.Fatal(err)
		}
		return db
	}
	dbTW, dbVec := mk(), mk()
	for _, sql := range diffCorpus {
		runDiff(t, dbTW, dbVec, sql)
	}
}
