package sqldb

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"infera/internal/dataframe"
	"infera/internal/gio"
)

// ColumnMeta describes one table column in the database catalog.
type ColumnMeta struct {
	Name string         `json:"name"`
	Kind dataframe.Kind `json:"kind"`
}

// TableInfo describes one table.
type TableInfo struct {
	Name    string       `json:"name"`
	Rows    int          `json:"rows"`
	Columns []ColumnMeta `json:"columns"`
	File    string       `json:"file"` // relative to the DB directory
	Bytes   int64        `json:"bytes"`
}

// DB is an on-disk analytical database: one gio column file per table plus
// a JSON catalog. All operations are safe for concurrent use.
type DB struct {
	mu        sync.Mutex
	dir       string
	tables    map[string]TableInfo
	bytesRead int64
}

const dbCatalogName = "db.json"

// Create initializes an empty database at dir (created if absent).
func Create(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{dir: dir, tables: map[string]TableInfo{}}
	if err := db.saveCatalog(); err != nil {
		return nil, err
	}
	return db, nil
}

// Open loads an existing database.
func Open(dir string) (*DB, error) {
	data, err := os.ReadFile(filepath.Join(dir, dbCatalogName))
	if err != nil {
		return nil, fmt.Errorf("sqldb: open %s: %w", dir, err)
	}
	var infos []TableInfo
	if err := json.Unmarshal(data, &infos); err != nil {
		return nil, fmt.Errorf("sqldb: catalog: %w", err)
	}
	db := &DB{dir: dir, tables: map[string]TableInfo{}}
	for _, ti := range infos {
		db.tables[ti.Name] = ti
	}
	return db, nil
}

// Dir returns the database directory.
func (db *DB) Dir() string { return db.dir }

func (db *DB) saveCatalog() error {
	infos := make([]TableInfo, 0, len(db.tables))
	for _, ti := range db.tables {
		infos = append(infos, ti)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	data, err := json.MarshalIndent(infos, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(db.dir, dbCatalogName), data, 0o644)
}

// CatalogError reports table-level failures with a DuckDB-like message
// shape that the QA agent can parse.
type CatalogError struct{ Msg string }

func (e *CatalogError) Error() string { return "Catalog Error: " + e.Msg }

// CreateTable writes frame as a new table; it fails if the name exists.
func (db *DB) CreateTable(name string, f *dataframe.Frame) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return &CatalogError{Msg: fmt.Sprintf("table %q already exists", name)}
	}
	return db.writeTable(name, f)
}

// CreateOrReplaceTable writes frame, replacing any existing table.
func (db *DB) CreateOrReplaceTable(name string, f *dataframe.Frame) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.writeTable(name, f)
}

// AppendTable appends frame to an existing table (schemas must match), or
// creates the table if absent. For multi-frame loads prefer BulkAppend: a
// k-frame accumulation via AppendTable re-reads and rewrites the whole
// table per call (O(k²) data movement), while BulkAppend writes once.
func (db *DB) AppendTable(name string, f *dataframe.Frame) error {
	return db.BulkAppend(name, f)
}

// BulkAppend appends frames to name in a single staging build: the
// existing table (if any) is read once, all frames are concatenated with
// exact preallocation, and the table file is written exactly once — the
// bulk path the data loader uses so a k-snapshot load writes each table
// once instead of k times. Schemas must match; frames are not mutated.
func (db *DB) BulkAppend(name string, frames ...*dataframe.Frame) error {
	if len(frames) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	// Merge the caller's frames first, so a schema mismatch among them is
	// reported with the caller's frame indices; a mismatch against the
	// stored table is attributed separately below.
	add := frames[0]
	if len(frames) > 1 {
		merged, err := dataframe.Concat(frames...)
		if err != nil {
			return fmt.Errorf("sqldb: bulk append to %q: %w", name, err)
		}
		add = merged
	}
	ti, exists := db.tables[name]
	if !exists {
		return db.writeTable(name, add)
	}
	r, err := gio.Open(filepath.Join(db.dir, ti.File))
	if err != nil {
		return err
	}
	existing, err := r.ReadAll()
	r.Close()
	if err != nil {
		return err
	}
	merged, err := dataframe.Concat(existing, add)
	if err != nil {
		return fmt.Errorf("sqldb: append to %q: schema mismatch with existing table: %w", name, err)
	}
	return db.writeTable(name, merged)
}

// writeTable persists f under name; caller holds the lock.
func (db *DB) writeTable(name string, f *dataframe.Frame) error {
	file := name + ".gio"
	path := filepath.Join(db.dir, file)
	if err := gio.WriteFile(path, f, map[string]string{"table": name}); err != nil {
		return err
	}
	cols := make([]ColumnMeta, f.NumCols())
	for i := 0; i < f.NumCols(); i++ {
		c := f.ColumnAt(i)
		cols[i] = ColumnMeta{Name: c.Name, Kind: c.Kind}
	}
	var size int64
	if st, err := os.Stat(path); err == nil {
		size = st.Size()
	}
	db.tables[name] = TableInfo{Name: name, Rows: f.NumRows(), Columns: cols, File: file, Bytes: size}
	return db.saveCatalog()
}

// DropTable removes a table and its file.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	ti, exists := db.tables[name]
	if !exists {
		return &CatalogError{Msg: fmt.Sprintf("table %q not found", name)}
	}
	if err := os.Remove(filepath.Join(db.dir, ti.File)); err != nil && !os.IsNotExist(err) {
		return err
	}
	delete(db.tables, name)
	return db.saveCatalog()
}

// Tables lists the catalog, sorted by name.
func (db *DB) Tables() []TableInfo {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]TableInfo, 0, len(db.tables))
	for _, ti := range db.tables {
		out = append(out, ti)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Table returns one table's catalog entry.
func (db *DB) Table(name string) (TableInfo, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	ti, ok := db.tables[name]
	return ti, ok
}

// SizeBytes returns the total on-disk size of all table files — the
// storage-overhead numerator in the paper's §4.1.3 metric.
func (db *DB) SizeBytes() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var total int64
	for _, ti := range db.tables {
		total += ti.Bytes
	}
	return total
}

// BytesScanned reports cumulative data-block bytes read by queries.
func (db *DB) BytesScanned() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.bytesRead
}

// ReadTable loads selected columns of a table directly (no SQL); names
// empty means all columns.
func (db *DB) ReadTable(name string, columns ...string) (*dataframe.Frame, error) {
	db.mu.Lock()
	ti, ok := db.tables[name]
	db.mu.Unlock()
	if !ok {
		return nil, &CatalogError{Msg: fmt.Sprintf("table %q not found", name)}
	}
	r, err := gio.Open(filepath.Join(db.dir, ti.File))
	if err != nil {
		return nil, err
	}
	defer func() {
		db.mu.Lock()
		db.bytesRead += r.BytesRead()
		db.mu.Unlock()
		r.Close()
	}()
	if len(columns) == 0 {
		return r.ReadAll()
	}
	return r.ReadColumns(columns...)
}

// Query parses and executes a SELECT, reading only the columns the
// statement references.
func (db *DB) Query(sql string) (*dataframe.Frame, error) {
	stmt, err := parseSelect(sql)
	if err != nil {
		return nil, err
	}
	var cols []string
	star := false
	for _, it := range stmt.items {
		if it.star {
			star = true
		}
	}
	if !star {
		cols = stmt.referencedColumns()
	}
	src, err := db.ReadTable(stmt.table, cols...)
	if err != nil {
		return nil, err
	}
	return execute(stmt, src)
}

// Explain returns the pruned column set a query would scan, for
// provenance records and tests of scan pruning.
func Explain(sql string) (table string, columns []string, err error) {
	stmt, err := parseSelect(sql)
	if err != nil {
		return "", nil, err
	}
	cols := stmt.referencedColumns()
	sort.Strings(cols)
	return stmt.table, cols, nil
}
