package sqldb

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"infera/internal/dataframe"
	"infera/internal/gio"
	"infera/internal/telemetry"
)

// ColumnMeta describes one table column in the database catalog.
type ColumnMeta struct {
	Name string         `json:"name"`
	Kind dataframe.Kind `json:"kind"`
}

// TableInfo describes one table.
type TableInfo struct {
	Name    string       `json:"name"`
	Rows    int          `json:"rows"`
	Columns []ColumnMeta `json:"columns"`
	File    string       `json:"file"` // relative to the DB directory
	// Bytes is the table's encoded size: the gio file size once persisted,
	// or the estimated encoded block sum for staged tables that have not
	// been flushed to disk yet.
	Bytes int64 `json:"bytes"`
}

// table is one resident table: staged frames are held as segments by
// reference (zero-copy; their columns are marked shared), concatenated
// into a single materialized frame on first read. dirty marks a staged
// table not yet persisted to disk.
type table struct {
	info     TableInfo
	segments []*dataframe.Frame
	mat      *dataframe.Frame
	dirty    bool
	// colStats lazily caches per-segment column stats for WHERE pruning,
	// keyed by column identity. Shared columns are immutable, so an entry
	// stays valid as long as its column is referenced by a live segment;
	// the map is dropped whenever the segment list is replaced.
	colStats map[*dataframe.Column]dataframe.Stats
}

// DB is an analytical database: named column tables served from resident
// in-memory frames, persisted as one gio column file per table plus a JSON
// catalog. All operations are safe for concurrent use.
//
// Two persistence modes exist. A durable DB (Create/Open) writes every
// table mutation through to disk immediately — the original behavior, for
// databases that outlive the process. A staged DB (CreateStaged) is the
// zero-copy fast path for per-session staging: BulkAppend stores frame
// references instead of copying cells (O(columns) per frame, not
// O(cells)), reads are served from the resident frames under the shared
// immutability contract (see dataframe.Column.MarkShared), and nothing
// touches disk until Flush — which a staging database that is reclaimed
// after its session never pays.
type DB struct {
	mu        sync.Mutex
	dir       string
	staged    bool
	tables    map[string]*table
	bytesRead int64

	// Pre-resolved telemetry instruments (SetMetrics); nil records nothing.
	queryTreeSeconds *telemetry.Histogram
	queryVecSeconds  *telemetry.Histogram
	scannedBytes     *telemetry.Counter
	segmentsPruned   *telemetry.Counter
	rowsFiltered     *telemetry.Counter
}

const dbCatalogName = "db.json"

// Create initializes an empty durable database at dir (created if
// absent): every mutation persists immediately.
func Create(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{dir: dir, tables: map[string]*table{}}
	if err := db.saveCatalog(); err != nil {
		return nil, err
	}
	return db, nil
}

// CreateStaged initializes an empty staged database at dir: tables live as
// resident shared-vector frames, ingestion is zero-copy, and disk is only
// touched by an explicit Flush. The staging-path default — a per-session
// staging DB that is deleted after the answer never pays encode or write
// I/O at all.
func CreateStaged(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DB{dir: dir, staged: true, tables: map[string]*table{}}, nil
}

// Open loads an existing database.
func Open(dir string) (*DB, error) {
	data, err := os.ReadFile(filepath.Join(dir, dbCatalogName))
	if err != nil {
		return nil, fmt.Errorf("sqldb: open %s: %w", dir, err)
	}
	var infos []TableInfo
	if err := json.Unmarshal(data, &infos); err != nil {
		return nil, fmt.Errorf("sqldb: catalog: %w", err)
	}
	db := &DB{dir: dir, tables: map[string]*table{}}
	for _, ti := range infos {
		db.tables[ti.Name] = &table{info: ti}
	}
	return db, nil
}

// Dir returns the database directory.
func (db *DB) Dir() string { return db.dir }

func (db *DB) saveCatalog() error {
	infos := make([]TableInfo, 0, len(db.tables))
	for _, t := range db.tables {
		infos = append(infos, t.info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	data, err := json.MarshalIndent(infos, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(db.dir, dbCatalogName), data, 0o644)
}

// CatalogError reports table-level failures with a DuckDB-like message
// shape that the QA agent can parse.
type CatalogError struct{ Msg string }

func (e *CatalogError) Error() string { return "Catalog Error: " + e.Msg }

// CreateTable writes frame as a new table; it fails if the name exists.
func (db *DB) CreateTable(name string, f *dataframe.Frame) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return &CatalogError{Msg: fmt.Sprintf("table %q already exists", name)}
	}
	return db.setTableLocked(name, f)
}

// CreateOrReplaceTable writes frame, replacing any existing table.
func (db *DB) CreateOrReplaceTable(name string, f *dataframe.Frame) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.setTableLocked(name, f)
}

// AppendTable appends frame to an existing table (schemas must match), or
// creates the table if absent. For multi-frame loads prefer BulkAppend: a
// k-frame accumulation via AppendTable re-validates per call, while
// BulkAppend takes the whole batch at once.
func (db *DB) AppendTable(name string, f *dataframe.Frame) error {
	return db.BulkAppend(name, f)
}

// BulkAppend appends frames to name, creating the table if absent. In a
// staged DB this is zero-copy: each frame is retained as a table segment
// by reference — O(columns) bookkeeping per frame, no cell is touched —
// with its columns marked shared, so staging a cached snapshot costs
// column pointers instead of a deep copy. The segments concatenate into
// one contiguous frame lazily, on the table's first read. A durable DB
// additionally persists the updated table before returning. Schemas must
// match; frames are never mutated.
func (db *DB) BulkAppend(name string, frames ...*dataframe.Frame) error {
	if len(frames) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	t, exists := db.tables[name]
	if !exists {
		// Validate the full batch against frame 0's schema (it trivially
		// matches itself) so mismatch errors carry the caller's frame index.
		if err := db.validateBatch(name, schemaOf(frames[0]), frames); err != nil {
			return err
		}
		return db.setSegmentsLocked(name, frames)
	}
	if t.mat == nil && len(t.segments) == 0 {
		// A table opened from disk: load it so the append extends it.
		if err := db.loadLocked(t); err != nil {
			return err
		}
	}
	if err := db.validateBatch(name, t.info.Columns, frames); err != nil {
		return fmt.Errorf("sqldb: append to %q: schema mismatch with existing table: %w", name, err)
	}
	for _, f := range frames {
		t.segments = append(t.segments, f.Shallow().MarkShared())
		t.info.Rows += f.NumRows()
		t.info.Bytes += estimatedBytes(f)
	}
	t.mat = nil
	t.dirty = true
	if !db.staged {
		return db.persistLocked(t)
	}
	return nil
}

// schemaOf extracts a frame's column metadata.
func schemaOf(f *dataframe.Frame) []ColumnMeta {
	cols := make([]ColumnMeta, f.NumCols())
	for i := 0; i < f.NumCols(); i++ {
		c := f.ColumnAt(i)
		cols[i] = ColumnMeta{Name: c.Name, Kind: c.Kind}
	}
	return cols
}

// validateBatch checks every frame against the schema, attributing
// mismatches by batch index.
func (db *DB) validateBatch(name string, schema []ColumnMeta, frames []*dataframe.Frame) error {
	for fi, f := range frames {
		if f.NumCols() != len(schema) {
			return fmt.Errorf("sqldb: bulk append to %q: frame %d has %d columns, want %d", name, fi, f.NumCols(), len(schema))
		}
		for i, cm := range schema {
			c := f.ColumnAt(i)
			if c.Name != cm.Name || c.Kind != cm.Kind {
				return fmt.Errorf("sqldb: bulk append to %q: frame %d column %d: %s/%s vs %s/%s",
					name, fi, i, c.Name, c.Kind, cm.Name, cm.Kind)
			}
		}
	}
	return nil
}

// setTableLocked stores f as the table's single segment, replacing any
// previous content. Caller holds mu.
func (db *DB) setTableLocked(name string, f *dataframe.Frame) error {
	return db.setSegmentsLocked(name, []*dataframe.Frame{f})
}

// setSegmentsLocked (re)creates a table over the given segments by
// reference. Caller holds mu.
func (db *DB) setSegmentsLocked(name string, frames []*dataframe.Frame) error {
	t := &table{info: TableInfo{Name: name, Columns: schemaOf(frames[0]), File: name + ".gio"}}
	for _, f := range frames {
		t.segments = append(t.segments, f.Shallow().MarkShared())
		t.info.Rows += f.NumRows()
		t.info.Bytes += estimatedBytes(f)
	}
	if len(t.segments) == 1 {
		t.mat = t.segments[0]
	}
	t.dirty = true
	db.tables[name] = t
	if !db.staged {
		return db.persistLocked(t)
	}
	return nil
}

// materializeLocked resolves the table's single contiguous frame,
// concatenating staged segments (one copy, amortized over every later
// read) or loading the gio file for tables opened from disk. Caller holds
// mu.
func (db *DB) materializeLocked(t *table) (*dataframe.Frame, error) {
	if t.mat != nil {
		return t.mat, nil
	}
	if len(t.segments) == 0 {
		if err := db.loadLocked(t); err != nil {
			return nil, err
		}
		return t.mat, nil
	}
	mat, err := dataframe.Concat(t.segments...)
	if err != nil {
		return nil, fmt.Errorf("sqldb: materialize %q: %w", t.info.Name, err)
	}
	mat.MarkShared()
	t.mat = mat
	// Collapse the segments so the pre-concat frames (and any cache vectors
	// they alias) can be released. Cached stats point at the old segment
	// columns, so they go too.
	t.segments = []*dataframe.Frame{mat}
	t.colStats = nil
	return mat, nil
}

// loadLocked reads a persisted table into residency. The one-time load is
// not charged to BytesScanned — reads account the columns they serve (see
// ReadTable), which keeps the scan metric pruned to what queries
// reference rather than inflated by the residency load. Caller holds mu.
func (db *DB) loadLocked(t *table) error {
	r, err := gio.Open(filepath.Join(db.dir, t.info.File))
	if err != nil {
		return err
	}
	f, rerr := r.ReadAll()
	r.Close()
	if rerr != nil {
		return rerr
	}
	f.MarkShared()
	t.mat = f
	t.segments = []*dataframe.Frame{f}
	return nil
}

// persistLocked writes the table's gio file and catalog entry. Caller
// holds mu.
func (db *DB) persistLocked(t *table) error {
	f, err := db.materializeLocked(t)
	if err != nil {
		return err
	}
	path := filepath.Join(db.dir, t.info.File)
	if err := gio.WriteFile(path, f, map[string]string{"table": t.info.Name}); err != nil {
		return err
	}
	if st, err := os.Stat(path); err == nil {
		t.info.Bytes = st.Size()
	}
	t.dirty = false
	return db.saveCatalog()
}

// Flush persists every staged-but-unwritten table (and the catalog) to
// disk, after which Open(dir) sees the full database. A durable DB is
// already persistent: Flush is a no-op.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, t := range db.tables {
		if !t.dirty {
			continue
		}
		if err := db.persistLocked(t); err != nil {
			return err
		}
	}
	// Re-save unconditionally so drops since the last persist are reflected
	// even when no table was dirty.
	return db.saveCatalog()
}

// DropTable removes a table, its residency and its file.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, exists := db.tables[name]
	if !exists {
		return &CatalogError{Msg: fmt.Sprintf("table %q not found", name)}
	}
	if err := os.Remove(filepath.Join(db.dir, t.info.File)); err != nil && !os.IsNotExist(err) {
		return err
	}
	delete(db.tables, name)
	if !db.staged {
		return db.saveCatalog()
	}
	return nil
}

// Tables lists the catalog, sorted by name.
func (db *DB) Tables() []TableInfo {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]TableInfo, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Table returns one table's catalog entry.
func (db *DB) Table(name string) (TableInfo, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return TableInfo{}, false
	}
	return t.info, true
}

// SizeBytes returns the total encoded size of all tables — the
// storage-overhead numerator in the paper's §4.1.3 metric. Persisted
// tables report their file size; staged tables their estimated encoded
// size (identical block payloads, minus the file header).
func (db *DB) SizeBytes() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var total int64
	for _, t := range db.tables {
		total += t.info.Bytes
	}
	return total
}

// SetMetrics points the database at a telemetry registry: every Query
// observes its wall-clock duration into infera_sql_query_seconds (labelled
// by the execution backend that served it), every read charges its pruned
// column bytes to infera_sql_scanned_bytes_total, and the vectorized
// engine counts pruned segments and filtered rows. All series carry the
// given labels (the serving layer passes ensemble=<shard>). A nil registry
// records nothing.
func (db *DB) SetMetrics(r *telemetry.Registry, labels ...telemetry.Label) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if r == nil {
		db.queryTreeSeconds, db.queryVecSeconds = nil, nil
		db.scannedBytes, db.segmentsPruned, db.rowsFiltered = nil, nil, nil
		return
	}
	r.SetHelp("infera_sql_query_seconds", "Wall-clock duration of one SQL query against a staging database, by execution backend.")
	r.SetHelp("infera_sql_scanned_bytes_total", "Cumulative encoded-size bytes of columns served to reads and queries.")
	r.SetHelp("infera_sql_segments_pruned_total", "Table segments skipped entirely by min/max WHERE pruning.")
	r.SetHelp("infera_sql_rows_filtered_total", "Rows scanned by SQL queries and rejected by the WHERE clause.")
	withBackend := func(be Backend) []telemetry.Label {
		ls := make([]telemetry.Label, 0, len(labels)+1)
		ls = append(ls, labels...)
		return append(ls, telemetry.L("backend", be.String()))
	}
	db.queryTreeSeconds = r.Histogram("infera_sql_query_seconds", nil, withBackend(BackendTreeWalk)...)
	db.queryVecSeconds = r.Histogram("infera_sql_query_seconds", nil, withBackend(BackendVectorized)...)
	db.scannedBytes = r.Counter("infera_sql_scanned_bytes_total", labels...)
	db.segmentsPruned = r.Counter("infera_sql_segments_pruned_total", labels...)
	db.rowsFiltered = r.Counter("infera_sql_rows_filtered_total", labels...)
}

// BytesScanned reports cumulative data-block bytes served to reads and
// queries, as encoded-size equivalents of the columns each read actually
// selected. Column pruning keeps this proportional to what a query
// references, resident or not; the one-time residency load of a
// disk-opened table is not charged.
func (db *DB) BytesScanned() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.bytesRead
}

// ReadTable returns selected columns of a table (no SQL); names empty
// means all columns. The result is a fresh frame shell over the table's
// resident shared vectors — no cell is copied, and callers must treat the
// column data as immutable (growth via Append is copy-on-write). Tables
// opened from disk are loaded into residency on first read, so repeated
// reads — e.g. the sandbox work-table set rebuilt per analysis attempt —
// decode the file once instead of every call.
func (db *DB) ReadTable(name string, columns ...string) (*dataframe.Frame, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, &CatalogError{Msg: fmt.Sprintf("table %q not found", name)}
	}
	mat, err := db.materializeLocked(t)
	if err != nil {
		return nil, err
	}
	var out *dataframe.Frame
	if len(columns) == 0 {
		out = mat.Shallow()
	} else {
		out, err = mat.Select(columns...)
		if err != nil {
			return nil, err
		}
	}
	var scanned int64
	for i := 0; i < out.NumCols(); i++ {
		scanned += gio.EncodedSize(out.ColumnAt(i))
	}
	db.bytesRead += scanned
	db.scannedBytes.Add(scanned)
	return out, nil
}

// Backend identifies which execution engine serves a query.
type Backend int

const (
	// BackendAuto compiles to the vectorized engine when the statement is
	// vectorizable and falls back to the tree-walk evaluator otherwise.
	BackendAuto Backend = iota
	// BackendTreeWalk forces the row-at-a-time reference engine.
	BackendTreeWalk
	// BackendVectorized requires the compiled engine; statements it cannot
	// compile fail instead of falling back. Used by differential tests and
	// benchmarks.
	BackendVectorized
)

func (b Backend) String() string {
	switch b {
	case BackendTreeWalk:
		return "treewalk"
	case BackendVectorized:
		return "vectorized"
	default:
		return "auto"
	}
}

// Query parses and executes a SELECT, serving only the columns the
// statement references from the resident table. Vectorizable statements
// compile to batch kernels that run directly over the table's resident
// segments — no concat materialization — with min/max segment pruning;
// anything else runs on the tree-walk evaluator with identical semantics.
func (db *DB) Query(sql string) (*dataframe.Frame, error) {
	return db.QueryBackend(sql, BackendAuto)
}

// QueryBackend is Query with an explicit engine choice.
func (db *DB) QueryBackend(sql string, force Backend) (*dataframe.Frame, error) {
	start := time.Now()
	stmt, err := parseSelect(sql)
	if err != nil {
		db.finishQuery(BackendTreeWalk, start, nil)
		return nil, err
	}
	var st execStats
	if force != BackendTreeWalk {
		f, handled, err := db.queryVectorized(stmt, force, &st)
		if handled {
			db.finishQuery(BackendVectorized, start, &st)
			return f, err
		}
	}
	f, err := db.queryTreeWalk(stmt, &st)
	db.finishQuery(BackendTreeWalk, start, &st)
	return f, err
}

// finishQuery records latency (to the serving backend's series) and the
// query's filtered-row count.
func (db *DB) finishQuery(be Backend, start time.Time, st *execStats) {
	db.mu.Lock()
	hist := db.queryTreeSeconds
	if be == BackendVectorized {
		hist = db.queryVecSeconds
	}
	rf := db.rowsFiltered
	db.mu.Unlock()
	hist.ObserveDuration(time.Since(start))
	if st != nil {
		rf.Add(st.rowsFiltered)
	}
}

// queryTreeWalk materializes the referenced columns and runs the row
// engine.
func (db *DB) queryTreeWalk(stmt *selectStmt, st *execStats) (*dataframe.Frame, error) {
	var cols []string
	star := false
	for _, it := range stmt.items {
		if it.star {
			star = true
		}
	}
	if !star {
		cols = stmt.referencedColumns()
	}
	src, err := db.ReadTable(stmt.table, cols...)
	if err != nil {
		return nil, err
	}
	return execute(stmt, src, st)
}

// queryVectorized compiles and runs stmt on the vectorized engine.
// handled=false means the statement is not vectorizable and the caller
// should fall back (only possible when force is BackendAuto).
func (db *DB) queryVectorized(stmt *selectStmt, force Backend, st *execStats) (_ *dataframe.Frame, handled bool, _ error) {
	db.mu.Lock()
	t, ok := db.tables[stmt.table]
	if !ok {
		db.mu.Unlock()
		return nil, true, &CatalogError{Msg: fmt.Sprintf("table %q not found", stmt.table)}
	}
	plan, perr := planVectorized(stmt, t.info.Columns)
	if perr != nil {
		db.mu.Unlock()
		if force == BackendVectorized {
			return nil, true, fmt.Errorf("sqldb: statement is not vectorizable: %w", perr)
		}
		return nil, false, nil
	}
	if t.mat == nil && len(t.segments) == 0 {
		if err := db.loadLocked(t); err != nil {
			db.mu.Unlock()
			return nil, true, err
		}
	}
	// Snapshot the segment list; shared columns are immutable, so the scan
	// needs no lock. Prune segments whose stats prove WHERE matches nothing.
	segs := make([]*dataframe.Frame, len(t.segments))
	copy(segs, t.segments)
	pruned := make([]bool, len(segs))
	prunedCount := 0
	if stmt.where != nil {
		for i, seg := range segs {
			seg := seg
			verdict := pruneExpr(stmt.where, func(name string) (dataframe.Stats, bool) {
				return db.segStatsLocked(t, seg, name)
			})
			if verdict == triFalse {
				pruned[i] = true
				prunedCount++
			}
		}
	}
	// Charge the scan: referenced columns over surviving segments only —
	// the same accounting ReadTable applies, minus what pruning skipped.
	star := false
	for _, it := range stmt.items {
		if it.star {
			star = true
		}
	}
	cols := stmt.referencedColumns()
	var scanned int64
	for i, seg := range segs {
		if pruned[i] {
			continue
		}
		if star {
			for ci := 0; ci < seg.NumCols(); ci++ {
				scanned += gio.EncodedSize(seg.ColumnAt(ci))
			}
			continue
		}
		for _, name := range cols {
			if c, err := seg.Column(name); err == nil {
				scanned += gio.EncodedSize(c)
			}
		}
	}
	db.bytesRead += scanned
	scannedC, prunedC := db.scannedBytes, db.segmentsPruned
	db.mu.Unlock()

	scannedC.Add(scanned)
	prunedC.Add(int64(prunedCount))
	f, err := plan.run(segScan{segs: segs, pruned: pruned}, st)
	return f, true, err
}

// segStatsLocked returns (computing and caching on first use) one
// column's stats within one segment. Caller holds mu.
func (db *DB) segStatsLocked(t *table, seg *dataframe.Frame, name string) (dataframe.Stats, bool) {
	c, err := seg.Column(name)
	if err != nil {
		return dataframe.Stats{}, false
	}
	if s, ok := t.colStats[c]; ok {
		return s, true
	}
	s := dataframe.ComputeStats(c)
	if t.colStats == nil {
		t.colStats = map[*dataframe.Column]dataframe.Stats{}
	}
	t.colStats[c] = s
	return s, true
}

// Explain returns the pruned column set a query would scan, for
// provenance records and tests of scan pruning.
func Explain(sql string) (table string, columns []string, err error) {
	stmt, err := parseSelect(sql)
	if err != nil {
		return "", nil, err
	}
	cols := stmt.referencedColumns()
	sort.Strings(cols)
	return stmt.table, cols, nil
}

// ExplainInfo is DB.ExplainQuery's report: what a statement would scan and
// how it would run, without executing it.
type ExplainInfo struct {
	Table          string   `json:"table"`
	Columns        []string `json:"columns"`
	Backend        string   `json:"backend"`
	FallbackReason string   `json:"fallback_reason,omitempty"`
	Segments       int      `json:"segments"`
	SegmentsPruned int      `json:"segments_pruned"`
}

// ExplainQuery reports the execution plan for sql against this database:
// the referenced columns, the backend that would serve it (with the
// compiler's reason when it falls back to the tree-walk), and — for
// vectorized plans with a WHERE clause — how many resident segments
// min/max stats would prune from the scan.
func (db *DB) ExplainQuery(sql string) (ExplainInfo, error) {
	stmt, err := parseSelect(sql)
	if err != nil {
		return ExplainInfo{}, err
	}
	cols := stmt.referencedColumns()
	sort.Strings(cols)
	info := ExplainInfo{Table: stmt.table, Columns: cols, Backend: BackendTreeWalk.String()}
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[stmt.table]
	if !ok {
		return ExplainInfo{}, &CatalogError{Msg: fmt.Sprintf("table %q not found", stmt.table)}
	}
	if _, perr := planVectorized(stmt, t.info.Columns); perr != nil {
		info.FallbackReason = perr.Error()
		return info, nil
	}
	info.Backend = BackendVectorized.String()
	if t.mat == nil && len(t.segments) == 0 {
		if err := db.loadLocked(t); err != nil {
			return ExplainInfo{}, err
		}
	}
	info.Segments = len(t.segments)
	if stmt.where != nil {
		for _, seg := range t.segments {
			seg := seg
			verdict := pruneExpr(stmt.where, func(name string) (dataframe.Stats, bool) {
				return db.segStatsLocked(t, seg, name)
			})
			if verdict == triFalse {
				info.SegmentsPruned++
			}
		}
	}
	return info, nil
}

// estimatedBytes prices a frame at its gio-encoded block size without
// encoding anything (gio.EncodedSize per column). No allocation — the
// zero-copy ingestion path stays O(columns) in allocations.
func estimatedBytes(f *dataframe.Frame) int64 {
	var total int64
	for i := 0; i < f.NumCols(); i++ {
		total += gio.EncodedSize(f.ColumnAt(i))
	}
	return total
}
