package sqldb

import (
	"strings"
	"testing"
	"time"

	"infera/internal/dataframe"
	"infera/internal/telemetry"
)

func explain(t *testing.T, db *DB, sql string) ExplainInfo {
	t.Helper()
	info, err := db.ExplainQuery(sql)
	if err != nil {
		t.Fatalf("ExplainQuery(%q): %v", sql, err)
	}
	return info
}

func TestExplainQueryPruning(t *testing.T) {
	db := diffDB(t) // 5 segments; seg column is min=max=segment index

	info := explain(t, db, "SELECT tag FROM parts WHERE seg = 2")
	if info.Backend != "vectorized" || info.Segments != 5 || info.SegmentsPruned != 4 {
		t.Fatalf("seg=2 explain = %+v, want vectorized 5 segments 4 pruned", info)
	}
	f := query(t, db, "SELECT tag FROM parts WHERE seg = 2")
	if f.NumRows() != 59 { // segment 2 holds 37+11*2 rows
		t.Errorf("seg=2 rows = %d, want 59", f.NumRows())
	}

	if info := explain(t, db, "SELECT tag FROM parts WHERE seg = 99"); info.SegmentsPruned != 5 {
		t.Errorf("seg=99 pruned = %d, want 5", info.SegmentsPruned)
	}
	if f := query(t, db, "SELECT tag FROM parts WHERE seg = 99"); f.NumRows() != 0 {
		t.Errorf("seg=99 rows = %d, want 0", f.NumRows())
	}

	// AND narrows: a provably-true conjunct keeps the decision on seg.
	if info := explain(t, db, "SELECT tag FROM parts WHERE seg = 2 AND cnt > -10000"); info.SegmentsPruned != 4 {
		t.Errorf("seg=2 AND cnt>-10000 pruned = %d, want 4", info.SegmentsPruned)
	}
	// OR widens: two satisfiable alternatives keep two segments.
	if info := explain(t, db, "SELECT tag FROM parts WHERE seg = 2 OR seg = 4"); info.SegmentsPruned != 3 {
		t.Errorf("seg=2 OR seg=4 pruned = %d, want 3", info.SegmentsPruned)
	}
	if info := explain(t, db, "SELECT tag FROM parts WHERE seg IN (1, 3)"); info.SegmentsPruned != 3 {
		t.Errorf("seg IN (1,3) pruned = %d, want 3", info.SegmentsPruned)
	}
	if info := explain(t, db, "SELECT tag FROM parts WHERE seg BETWEEN 3 AND 4"); info.SegmentsPruned != 3 {
		t.Errorf("seg BETWEEN 3 AND 4 pruned = %d, want 3", info.SegmentsPruned)
	}
	// An impossible float range prunes everything even with NaNs present
	// (NaN < c is false), …
	if info := explain(t, db, "SELECT tag FROM parts WHERE val < -1e30"); info.SegmentsPruned != 5 {
		t.Errorf("val<-1e30 pruned = %d, want 5", info.SegmentsPruned)
	}
	// … but <= must NOT prune on the false side while NaNs exist: the
	// engine's cmp quirk makes NaN <= c true for every c.
	if info := explain(t, db, "SELECT tag FROM parts WHERE val <= 1e30"); info.SegmentsPruned != 0 {
		t.Errorf("val<=1e30 pruned = %d, want 0", info.SegmentsPruned)
	}
	if f := query(t, db, "SELECT tag FROM parts WHERE val <= 1e30"); f.NumRows() != 295 {
		t.Errorf("val<=1e30 rows = %d, want all 295 (NaN rows satisfy <=)", f.NumRows())
	}

	// Non-vectorizable statements report the fallback and its reason.
	info = explain(t, db, "SELECT tag FROM parts WHERE grp IN (tag, 1)")
	if info.Backend != "treewalk" || info.FallbackReason == "" {
		t.Errorf("fallback explain = %+v, want treewalk with a reason", info)
	}
}

func TestVectorizedMetrics(t *testing.T) {
	db := diffDB(t)
	reg := telemetry.NewRegistry()
	lbl := telemetry.L("ensemble", "t")
	db.SetMetrics(reg, lbl)

	if _, err := db.Query("SELECT tag FROM parts WHERE seg = 2 AND cnt % 2 = 0"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("infera_sql_segments_pruned_total", lbl).Value(); got != 4 {
		t.Errorf("segments_pruned = %d, want 4", got)
	}
	if got := reg.Counter("infera_sql_rows_filtered_total", lbl).Value(); got <= 0 || got >= 59 {
		t.Errorf("rows_filtered = %d, want in (0, 59)", got)
	}
	if got := reg.Counter("infera_sql_scanned_bytes_total", lbl).Value(); got <= 0 {
		t.Errorf("scanned_bytes = %d, want > 0", got)
	}
	vecHist := reg.Histogram("infera_sql_query_seconds", nil, lbl, telemetry.L("backend", "vectorized"))
	treeHist := reg.Histogram("infera_sql_query_seconds", nil, lbl, telemetry.L("backend", "treewalk"))
	if vecHist.Count() != 1 || treeHist.Count() != 0 {
		t.Errorf("histogram counts = vec %d tree %d, want 1/0", vecHist.Count(), treeHist.Count())
	}

	// A forced tree-walk run lands on the other series.
	if _, err := db.QueryBackend("SELECT tag FROM parts LIMIT 1", BackendTreeWalk); err != nil {
		t.Fatal(err)
	}
	if vecHist.Count() != 1 || treeHist.Count() != 1 {
		t.Errorf("after treewalk: histogram counts = vec %d tree %d, want 1/1", vecHist.Count(), treeHist.Count())
	}
}

// TestVectorizedEmptyComputedKind pins the projection parity rule: a
// computed column over zero surviving rows collapses to Int, exactly like
// the row engine's valuesToColumn over no values.
func TestVectorizedEmptyComputedKind(t *testing.T) {
	db := diffDB(t)
	f, err := db.QueryBackend("SELECT tag + 1 AS x, name FROM parts WHERE 1 = 0", BackendVectorized)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 0 {
		t.Fatalf("rows = %d", f.NumRows())
	}
	if k := f.MustColumn("x").Kind; k != dataframe.Int {
		t.Errorf("computed empty column kind = %v, want Int", k)
	}
	if k := f.MustColumn("name").Kind; k != dataframe.String {
		t.Errorf("pass-through empty column kind = %v, want String", k)
	}
}

// TestTopKStability: with heavy key ties, the bounded heap must return the
// same rows in the same order as the tree-walk's stable full sort.
func TestTopKStability(t *testing.T) {
	dbTW, dbVec := diffDB(t), diffDB(t)
	for _, sql := range []string{
		"SELECT tag FROM parts ORDER BY grp LIMIT 10",
		"SELECT tag FROM parts ORDER BY grp DESC LIMIT 10",
		"SELECT tag FROM parts ORDER BY seg DESC LIMIT 15",
		"SELECT tag, name FROM parts ORDER BY name LIMIT 25",
		"SELECT tag FROM parts ORDER BY val LIMIT 300",
	} {
		runDiff(t, dbTW, dbVec, sql)
	}
}

func TestLikeMatchTable(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"", "", true},
		{"", "%", true},
		{"a", "", false},
		{"abc", "abc", true},
		{"abc", "a_c", true},
		{"abc", "a_", false},
		{"abc", "%c", true},
		{"abc", "ab%", true},
		{"abc", "%b%", true},
		{"abc", "%d%", false},
		{"abc", "abc%", true},
		{"abc", "%abc", true},
		{"abc", "%%a%%b%%c%%", true},
		{"aXbYc", "a%b%c", true},
		{"mississippi", "%iss%pi", true},
		{"mississippi", "%issp%", false},
		{"mississippi", "%iss%ppi", true},
		{"a%b", "a%b", true}, // % in data happens to match literally via wildcard
		{"", "_", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

// TestLikeMatchPathological guards the satellite fix: the old recursive %
// expansion was O(2^n) on alternating patterns; the two-pointer rewrite
// must answer well inside the timeout on both matching and non-matching
// adversarial inputs.
func TestLikeMatchPathological(t *testing.T) {
	type tc struct {
		s, p string
		want bool
	}
	cases := []tc{
		{strings.Repeat("a", 64) + "b", strings.Repeat("%a", 24) + "%", true},
		{strings.Repeat("a", 64), strings.Repeat("a%", 32) + "b", false},
		{strings.Repeat("ab", 40), strings.Repeat("%a", 30) + "%c", false},
	}
	done := make(chan []bool, 1)
	go func() {
		got := make([]bool, len(cases))
		for i, c := range cases {
			got[i] = likeMatch(c.s, c.p)
		}
		done <- got
	}()
	select {
	case got := <-done:
		for i, c := range cases {
			if got[i] != c.want {
				t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got[i], c.want)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("likeMatch did not terminate on pathological patterns (exponential backtracking regression)")
	}
}
