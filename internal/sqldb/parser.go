package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

type parser struct {
	toks  []token
	pos   int
	depth int
}

// maxParseDepth bounds expression recursion (nested parens, NOT/unary
// chains, function arguments) so pathological generated SQL fails with a
// SyntaxError instead of overflowing the goroutine stack.
const maxParseDepth = 100

// enter guards one level of expression recursion; callers must pair a
// successful enter with leave.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.errf("expression too deeply nested")
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

// parseSelect parses one SELECT statement; trailing tokens are an error.
func parseSelect(sql string) (*selectStmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errf("expected %q, found %q", sym, p.cur().text)
	}
	return nil
}

func (p *parser) selectStmt() (*selectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &selectStmt{limit: -1}
	st.distinct = p.acceptKeyword("DISTINCT")

	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.items = append(st.items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if p.cur().kind != tokIdent {
		return nil, p.errf("expected table name, found %q", p.cur().text)
	}
	st.table = p.cur().text
	p.pos++

	if p.acceptKeyword("WHERE") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			st.groupBy = append(st.groupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			item := orderItem{ex: e}
			if p.acceptKeyword("DESC") {
				item.desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.orderBy = append(st.orderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		if p.cur().kind != tokNumber {
			return nil, p.errf("expected LIMIT count, found %q", p.cur().text)
		}
		n, err := strconv.Atoi(p.cur().text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT count %q", p.cur().text)
		}
		st.limit = n
		p.pos++
	}
	return st, nil
}

func (p *parser) selectItem() (selectItem, error) {
	if p.acceptSymbol("*") {
		return selectItem{star: true}, nil
	}
	e, err := p.orExpr()
	if err != nil {
		return selectItem{}, err
	}
	item := selectItem{ex: e}
	if p.acceptKeyword("AS") {
		if p.cur().kind != tokIdent {
			return selectItem{}, p.errf("expected alias after AS, found %q", p.cur().text)
		}
		item.alias = p.cur().text
		p.pos++
	} else if p.cur().kind == tokIdent {
		// Implicit alias: SELECT expr name
		item.alias = p.cur().text
		p.pos++
	}
	return item, nil
}

// Expression grammar, loosest first:
//
//	or     := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | cmp
//	cmp    := add ((=|!=|<>|<|<=|>|>=|LIKE) add | [NOT] IN (...) | [NOT] BETWEEN add AND add)?
//	add    := mul ((+|-) mul)*
//	mul    := unary ((*|/|%) unary)*
//	unary  := - unary | primary
//	primary:= number | string | ident | func(args) | agg | ( or )
func (p *parser) orExpr() (expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "OR", left: left, right: right}
	}
	return left, nil
}

func (p *parser) andExpr() (expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "AND", left: left, right: right}
	}
	return left, nil
}

func (p *parser) notExpr() (expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if p.acceptKeyword("NOT") {
		sub, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: "NOT", sub: sub}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (expr, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	negate := false
	if p.cur().kind == tokKeyword && p.cur().text == "NOT" &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokKeyword &&
		(p.toks[p.pos+1].text == "IN" || p.toks[p.pos+1].text == "BETWEEN") {
		negate = true
		p.pos++
	}
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []expr
		for {
			e, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &inExpr{sub: left, list: list, negate: negate}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &betweenExpr{sub: left, lo: lo, hi: hi, negate: negate}, nil
	case p.acceptKeyword("LIKE"):
		right, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &binaryExpr{op: "LIKE", left: left, right: right}, nil
	}
	for _, op := range []string{"=", "!=", "<>", "<=", ">=", "<", ">"} {
		if p.acceptSymbol(op) {
			right, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if op == "<>" {
				op = "!="
			}
			return &binaryExpr{op: op, left: left, right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) addExpr() (expr, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			right, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			left = &binaryExpr{op: "+", left: left, right: right}
		case p.acceptSymbol("-"):
			right, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			left = &binaryExpr{op: "-", left: left, right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) mulExpr() (expr, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("*"):
			right, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			left = &binaryExpr{op: "*", left: left, right: right}
		case p.acceptSymbol("/"):
			right, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			left = &binaryExpr{op: "/", left: left, right: right}
		case p.acceptSymbol("%"):
			right, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			left = &binaryExpr{op: "%", left: left, right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) unaryExpr() (expr, error) {
	if p.acceptSymbol("-") {
		if err := p.enter(); err != nil {
			return nil, err
		}
		defer p.leave()
		sub, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: "-", sub: sub}, nil
	}
	return p.primary()
}

var aggNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"STDDEV": true, "MEDIAN": true,
}

var scalarFuncs = map[string]int{ // name -> arity (-1 variadic>=1)
	"ABS": 1, "SQRT": 1, "LOG10": 1, "LOG": 1, "EXP": 1, "FLOOR": 1,
	"CEIL": 1, "POW": 2, "ROUND": 1,
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		p.pos++
		return &numberExpr{val: v}, nil
	case tokString:
		p.pos++
		return &stringExpr{val: t.text}, nil
	case tokKeyword:
		if aggNames[t.text] {
			fn := t.text
			p.pos++
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			if p.acceptSymbol("*") {
				if fn != "COUNT" {
					return nil, p.errf("%s(*) is only valid for COUNT", fn)
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &aggExpr{fn: fn, star: true}, nil
			}
			arg, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &aggExpr{fn: fn, arg: arg}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)
	case tokIdent:
		name := t.text
		// Function call?
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			up := strings.ToUpper(name)
			arity, ok := scalarFuncs[up]
			if !ok {
				return nil, p.errf("unknown function %q", name)
			}
			p.pos += 2 // ident and "("
			var args []expr
			for {
				e, err := p.orExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, e)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			if arity >= 0 && len(args) != arity {
				return nil, p.errf("function %s expects %d arguments, got %d", up, arity, len(args))
			}
			return &callExpr{fn: up, args: args}, nil
		}
		p.pos++
		return &identExpr{name: name}, nil
	case tokSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q", t.text)
}
