package sqldb

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"infera/internal/dataframe"
)

// Additional coverage: expression corners, parser recovery, concurrency.

func TestArithmeticSemantics(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		sql  string
		want float64
	}{
		{"SELECT 2 + 3 * 4 AS v FROM halos LIMIT 1", 14},
		{"SELECT (2 + 3) * 4 AS v FROM halos LIMIT 1", 20},
		{"SELECT -2 + 5 AS v FROM halos LIMIT 1", 3},
		{"SELECT 7 % 3 AS v FROM halos LIMIT 1", 1},
		{"SELECT 7 / 2 AS v FROM halos LIMIT 1", 3.5},
		{"SELECT ABS(-4) AS v FROM halos LIMIT 1", 4},
		{"SELECT POW(2, 10) AS v FROM halos LIMIT 1", 1024},
		{"SELECT FLOOR(2.7) + CEIL(2.1) AS v FROM halos LIMIT 1", 5},
		{"SELECT ROUND(2.5) AS v FROM halos LIMIT 1", 3},
		{"SELECT SQRT(16) AS v FROM halos LIMIT 1", 4},
		{"SELECT EXP(0) AS v FROM halos LIMIT 1", 1},
		{"SELECT LOG(EXP(1)) AS v FROM halos LIMIT 1", 1},
	}
	for _, c := range cases {
		f := query(t, db, c.sql)
		got := f.ColumnAt(0).FloatAt(0)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.sql, got, c.want)
		}
	}
}

func TestIntegerArithmeticStaysInt(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT fof_halo_tag * 2 AS v FROM halos WHERE fof_halo_tag = 3")
	if f.ColumnAt(0).Kind != dataframe.Int {
		t.Errorf("int*int kind = %v", f.ColumnAt(0).Kind)
	}
	if f.MustColumn("v").I[0] != 6 {
		t.Errorf("v = %v", f.MustColumn("v").I[0])
	}
	// Division promotes to float.
	f = query(t, db, "SELECT fof_halo_tag / 2 AS v FROM halos WHERE fof_halo_tag = 3")
	if f.ColumnAt(0).Kind != dataframe.Float || f.MustColumn("v").F[0] != 1.5 {
		t.Errorf("division = %+v", f.ColumnAt(0))
	}
}

func TestModuloByZeroErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query("SELECT fof_halo_tag % 0 AS v FROM halos"); err == nil {
		t.Error("integer modulo by zero should fail")
	}
}

func TestStringComparisonsAndOrdering(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT note FROM halos WHERE note >= 'mid' ORDER BY note DESC LIMIT 2")
	got := f.MustColumn("note").S
	if got[0] != "small" || got[1] != "small" {
		t.Errorf("string ordering = %v", got)
	}
}

func TestImplicitAlias(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT fof_halo_mass m FROM halos LIMIT 1")
	if !f.Has("m") {
		t.Errorf("implicit alias missing: %v", f.Names())
	}
}

func TestMultipleOrderKeys(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT sim, fof_halo_tag FROM halos ORDER BY sim DESC, fof_halo_tag ASC")
	sims := f.MustColumn("sim").I
	tags := f.MustColumn("fof_halo_tag").I
	if sims[0] != 1 || tags[0] != 4 {
		t.Errorf("multi-key order: sims=%v tags=%v", sims, tags)
	}
}

func TestGroupByExpression(t *testing.T) {
	db := testDB(t)
	// Group by a computed bucket.
	f := query(t, db, "SELECT FLOOR(fof_halo_mass / 1e14) AS bucket, COUNT(*) AS n FROM halos GROUP BY FLOOR(fof_halo_mass / 1e14) ORDER BY bucket")
	if f.NumRows() < 2 {
		t.Fatalf("buckets = %d", f.NumRows())
	}
	var total int64
	for _, n := range f.MustColumn("n").I {
		total += n
	}
	if total != 6 {
		t.Errorf("bucket counts sum to %d", total)
	}
}

func TestAggregateInsideExpression(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT MAX(fof_halo_mass) - MIN(fof_halo_mass) AS span FROM halos")
	if got := f.MustColumn("span").F[0]; got != 2e14-4e13 {
		t.Errorf("span = %v", got)
	}
}

func TestLimitZeroAndExactRows(t *testing.T) {
	db := testDB(t)
	if f := query(t, db, "SELECT * FROM halos LIMIT 0"); f.NumRows() != 0 {
		t.Errorf("LIMIT 0 rows = %d", f.NumRows())
	}
	if f := query(t, db, "SELECT * FROM halos LIMIT 100"); f.NumRows() != 6 {
		t.Errorf("LIMIT over-count rows = %d", f.NumRows())
	}
}

func TestDistinctOnExpression(t *testing.T) {
	db := testDB(t)
	f := query(t, db, "SELECT DISTINCT sim * 10 AS s FROM halos ORDER BY s")
	if f.NumRows() != 2 || f.MustColumn("s").I[1] != 10 {
		t.Errorf("distinct expr = %v", f)
	}
}

func TestParserRejections(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"SELECT FROM halos",
		"SELECT * halos",
		"SELECT * FROM halos GROUP sim",
		"SELECT * FROM halos ORDER fof_halo_mass",
		"SELECT * FROM halos LIMIT -1",
		"SELECT * FROM halos LIMIT many",
		"SELECT a, FROM halos",
		"SELECT COUNT(* FROM halos",
		"SELECT * FROM halos WHERE a IN 1, 2",
		"SELECT * FROM halos WHERE a BETWEEN 1",
		"SELECT * FROM halos extra",
		"SELECT POW(1) FROM halos",
	}
	for _, sql := range bad {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("Query(%q) should fail", sql)
		}
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	db := testDB(t)
	f := query(t, db, `SELECT "fof_halo_mass" FROM halos LIMIT 1`)
	if !f.Has("fof_halo_mass") {
		t.Errorf("quoted ident failed: %v", f.Names())
	}
}

func TestConcurrentQueries(t *testing.T) {
	db := testDB(t)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			_, err := db.Query("SELECT sim, AVG(fof_halo_mass) AS m FROM halos GROUP BY sim")
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentWritesAndReads(t *testing.T) {
	db, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := dataframe.MustFromColumns(dataframe.NewInt("a", []int64{1}))
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			name := "t" + string(rune('a'+i))
			if err := db.CreateOrReplaceTable(name, f); err != nil {
				done <- err
				return
			}
			_, err := db.ReadTable(name)
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if len(db.Tables()) != 8 {
		t.Errorf("tables = %d", len(db.Tables()))
	}
}

func TestOpenMissingDB(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("opening a directory without a catalog should fail")
	}
}

func TestSyntaxErrorPositions(t *testing.T) {
	_, err := parseSelect("SELECT * FROM halos WHERE @")
	var se *SyntaxError
	if !asSyntax(err, &se) {
		t.Fatalf("want SyntaxError, got %v", err)
	}
	if se.Pos < 20 {
		t.Errorf("position = %d, should point into WHERE clause", se.Pos)
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("message = %q", err)
	}
}

func asSyntax(err error, out **SyntaxError) bool {
	if e, ok := err.(*SyntaxError); ok {
		*out = e
		return true
	}
	return false
}

// BulkAppend must equal a chain of AppendTable calls while writing the
// table file only once.
func TestBulkAppendMatchesAppendChain(t *testing.T) {
	mk := func(base int64) *dataframe.Frame {
		return dataframe.MustFromColumns(
			dataframe.NewInt("tag", []int64{base, base + 1}),
			dataframe.NewFloat("mass", []float64{float64(base), float64(base) + 0.5}),
		)
	}
	frames := []*dataframe.Frame{mk(0), mk(10), mk(20), mk(30)}

	chainDB, err := Create(filepath.Join(t.TempDir(), "chain"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := chainDB.AppendTable("t", f); err != nil {
			t.Fatal(err)
		}
	}
	bulkDB, err := Create(filepath.Join(t.TempDir(), "bulk"))
	if err != nil {
		t.Fatal(err)
	}
	if err := bulkDB.BulkAppend("t", frames...); err != nil {
		t.Fatal(err)
	}
	want, err := chainDB.ReadTable("t")
	if err != nil {
		t.Fatal(err)
	}
	got, err := bulkDB.ReadTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if !dataframe.Equal(want, got) {
		t.Fatalf("bulk result differs from append chain:\n%v\nvs\n%v", got, want)
	}

	// Appending in bulk to an existing table reads it once and extends it.
	if err := bulkDB.BulkAppend("t", mk(40), mk(50)); err != nil {
		t.Fatal(err)
	}
	ti, _ := bulkDB.Table("t")
	if ti.Rows != 12 {
		t.Fatalf("rows = %d, want 12", ti.Rows)
	}
	// No-op and mismatch cases.
	if err := bulkDB.BulkAppend("t"); err != nil {
		t.Fatal("empty BulkAppend must be a no-op")
	}
	bad := dataframe.MustFromColumns(dataframe.NewInt("x", []int64{1}))
	if err := bulkDB.BulkAppend("t", bad); err == nil {
		t.Fatal("want schema mismatch error")
	}
}
