package sqldb

import (
	"fmt"
	"strings"
)

// Expression AST. Expressions appear in select lists, WHERE, GROUP BY and
// ORDER BY clauses.
type expr interface {
	// columns appends the column names the expression references.
	columns(dst map[string]bool)
	String() string
}

type identExpr struct{ name string }

func (e *identExpr) columns(dst map[string]bool) { dst[e.name] = true }
func (e *identExpr) String() string              { return e.name }

type numberExpr struct{ val float64 }

func (e *numberExpr) columns(map[string]bool) {}
func (e *numberExpr) String() string          { return fmt.Sprintf("%g", e.val) }

type stringExpr struct{ val string }

func (e *stringExpr) columns(map[string]bool) {}
func (e *stringExpr) String() string          { return "'" + e.val + "'" }

type unaryExpr struct {
	op  string // "-" or "NOT"
	sub expr
}

func (e *unaryExpr) columns(dst map[string]bool) { e.sub.columns(dst) }
func (e *unaryExpr) String() string              { return e.op + " " + e.sub.String() }

type binaryExpr struct {
	op          string // + - * / % = != < <= > >= AND OR LIKE
	left, right expr
}

func (e *binaryExpr) columns(dst map[string]bool) {
	e.left.columns(dst)
	e.right.columns(dst)
}
func (e *binaryExpr) String() string {
	return "(" + e.left.String() + " " + e.op + " " + e.right.String() + ")"
}

type inExpr struct {
	sub    expr
	list   []expr
	negate bool
}

func (e *inExpr) columns(dst map[string]bool) {
	e.sub.columns(dst)
	for _, l := range e.list {
		l.columns(dst)
	}
}
func (e *inExpr) String() string {
	items := make([]string, len(e.list))
	for i, l := range e.list {
		items[i] = l.String()
	}
	op := " IN ("
	if e.negate {
		op = " NOT IN ("
	}
	return e.sub.String() + op + strings.Join(items, ", ") + ")"
}

type betweenExpr struct {
	sub, lo, hi expr
	negate      bool
}

func (e *betweenExpr) columns(dst map[string]bool) {
	e.sub.columns(dst)
	e.lo.columns(dst)
	e.hi.columns(dst)
}
func (e *betweenExpr) String() string {
	op := " BETWEEN "
	if e.negate {
		op = " NOT BETWEEN "
	}
	return e.sub.String() + op + e.lo.String() + " AND " + e.hi.String()
}

type callExpr struct {
	fn   string // upper-cased function name
	args []expr
}

func (e *callExpr) columns(dst map[string]bool) {
	for _, a := range e.args {
		a.columns(dst)
	}
}
func (e *callExpr) String() string {
	items := make([]string, len(e.args))
	for i, a := range e.args {
		items[i] = a.String()
	}
	return e.fn + "(" + strings.Join(items, ", ") + ")"
}

// aggExpr is an aggregate invocation: COUNT(*), SUM(x), AVG(x), MIN, MAX,
// STDDEV, MEDIAN.
type aggExpr struct {
	fn   string // upper-cased
	arg  expr   // nil for COUNT(*)
	star bool
}

func (e *aggExpr) columns(dst map[string]bool) {
	if e.arg != nil {
		e.arg.columns(dst)
	}
}
func (e *aggExpr) String() string {
	if e.star {
		return e.fn + "(*)"
	}
	return e.fn + "(" + e.arg.String() + ")"
}

// selectItem is one projection in the select list.
type selectItem struct {
	ex    expr
	alias string
	star  bool // bare "*"
}

func (s selectItem) outName() string {
	if s.alias != "" {
		return s.alias
	}
	if id, ok := s.ex.(*identExpr); ok {
		return id.name
	}
	return s.ex.String()
}

type orderItem struct {
	ex   expr
	desc bool
}

// selectStmt is a parsed SELECT.
type selectStmt struct {
	distinct bool
	items    []selectItem
	table    string
	where    expr
	groupBy  []expr
	orderBy  []orderItem
	limit    int // -1 if absent
}

// referencedColumns lists every input column the statement touches — the
// scan-pruning set.
func (s *selectStmt) referencedColumns() []string {
	set := map[string]bool{}
	for _, it := range s.items {
		if !it.star && it.ex != nil {
			it.ex.columns(set)
		}
	}
	if s.where != nil {
		s.where.columns(set)
	}
	for _, g := range s.groupBy {
		g.columns(set)
	}
	// ORDER BY identifiers that name a select alias resolve against the
	// output, not the scan; don't request them from storage.
	aliases := map[string]bool{}
	for _, it := range s.items {
		if !it.star && it.alias != "" {
			aliases[it.alias] = true
		}
	}
	for _, o := range s.orderBy {
		if id, ok := o.ex.(*identExpr); ok && aliases[id.name] {
			continue
		}
		o.ex.columns(set)
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

// hasAggregates reports whether any select item contains an aggregate call.
func (s *selectStmt) hasAggregates() bool {
	for _, it := range s.items {
		if it.star {
			continue
		}
		if containsAgg(it.ex) {
			return true
		}
	}
	return false
}

func containsAgg(e expr) bool {
	switch v := e.(type) {
	case *aggExpr:
		return true
	case *unaryExpr:
		return containsAgg(v.sub)
	case *binaryExpr:
		return containsAgg(v.left) || containsAgg(v.right)
	case *callExpr:
		for _, a := range v.args {
			if containsAgg(a) {
				return true
			}
		}
	case *inExpr:
		if containsAgg(v.sub) {
			return true
		}
	case *betweenExpr:
		return containsAgg(v.sub) || containsAgg(v.lo) || containsAgg(v.hi)
	}
	return false
}
