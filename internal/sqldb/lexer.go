// Package sqldb implements the on-disk analytical database InferA stages
// query results in — the paper uses DuckDB for this role (§3: "Selected
// data is written to a DuckDB database, avoiding in-memory storage").
//
// Tables persist as gio column files under a database directory; queries
// are a SQL subset (SELECT with WHERE / GROUP BY / ORDER BY / LIMIT /
// DISTINCT, arithmetic, comparison and boolean expressions, scalar math
// functions and the usual aggregates). The executor reads only the columns
// a query references and evaluates filters and aggregates block-by-block,
// keeping memory proportional to referenced columns, not table width.
package sqldb

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokKeyword
	tokSymbol // ( ) , * + - / % = != <> < <= > >=
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "BETWEEN": true, "DISTINCT": true, "ASC": true,
	"DESC": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true,
	"MAX": true, "STDDEV": true, "MEDIAN": true, "NULL": true, "LIKE": true,
}

// SyntaxError reports a lexical or grammatical error with its position; the
// message shape feeds the QA repair loop.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("SQL syntax error at offset %d: %s", e.Pos, e.Msg)
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			for i < n && (unicode.IsDigit(rune(input[i])) || input[i] == '.' ||
				input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '+' || input[i] == '-') && i > start && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, &SyntaxError{start, "unterminated string literal"}
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case c == '"':
			start := i
			i++
			j := strings.IndexByte(input[i:], '"')
			if j < 0 {
				return nil, &SyntaxError{start, "unterminated quoted identifier"}
			}
			toks = append(toks, token{tokIdent, input[i : i+j], start})
			i += j + 1
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "!=", "<>", "<=", ">=":
				toks = append(toks, token{tokSymbol, two, start})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>':
				toks = append(toks, token{tokSymbol, string(c), start})
				i++
			default:
				return nil, &SyntaxError{i, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
