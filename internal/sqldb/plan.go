package sqldb

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"infera/internal/dataframe"
)

// This file is the vectorized query planner and executor. A SELECT compiles
// into a vecPlan — kernel trees for the WHERE predicate, projections,
// order keys, group keys and aggregate arguments — that runs directly over
// a table's resident shared-vector segments in blocks of <= blockSize rows:
// no up-front materialization of the segment concat. The plan is
// segment-aware: per-column min/max/NaN stats let WHERE skip whole
// segments, LIMIT without ORDER BY stops at the first k surviving rows,
// and ORDER BY + LIMIT keeps a bounded top-k heap instead of sorting every
// survivor. Statements that don't compile run on the tree-walk engine with
// identical semantics.

// execStats counts scan work for telemetry, filled by both backends.
type execStats struct {
	rowsScanned  int64
	rowsFiltered int64
}

// segScan is the input to a vectorized run: a snapshot of the table's
// resident segments plus per-segment prune decisions.
type segScan struct {
	segs   []*dataframe.Frame
	pruned []bool
}

// rowRef addresses one row inside a segment list.
type rowRef struct {
	seg, row int32
}

// vecOut is one output column of a non-aggregating plan: either a
// pass-through of source column src, or a computed kernel tree.
type vecOut struct {
	name string
	src  string
	node vecNode
	kind dataframe.Kind
}

// vecPlan is a compiled SELECT.
type vecPlan struct {
	stmt  *selectStmt
	kinds map[string]dataframe.Kind

	where   vecNode // nil when the statement has no WHERE
	grouped bool

	// Non-aggregating plans.
	outs        []vecOut
	computeCols []string // columns referenced by computed outputs
	orderNodes  []vecNode
	orderDesc   []bool
	orderStr    []bool
	orderCols   []string // columns referenced by order keys

	// Aggregating plans.
	aggNodes  []*aggExpr
	aggArgs   []vecNode // parallel to aggNodes; nil for COUNT(*)
	groupKeys []vecNode
	groupCols []string // columns referenced by group keys and agg arguments
}

// planVectorized compiles stmt against a table schema, or reports why the
// statement must run on the tree-walk backend.
func planVectorized(stmt *selectStmt, schema []ColumnMeta) (*vecPlan, error) {
	kinds := make(map[string]dataframe.Kind, len(schema))
	for _, cm := range schema {
		kinds[cm.Name] = cm.Kind
	}
	p := &vecPlan{stmt: stmt, kinds: kinds}
	if stmt.where != nil {
		w, err := compileVec(stmt.where, kinds)
		if err != nil {
			return nil, err
		}
		p.where = w
	}

	if stmt.hasAggregates() || len(stmt.groupBy) > 0 {
		p.grouped = true
		for _, item := range stmt.items {
			if item.star {
				// The row engine rejects this shape at runtime; let it.
				return nil, fallbackf("star projection combined with aggregates")
			}
			collectAggs(item.ex, &p.aggNodes)
		}
		var refExprs []expr
		for _, a := range p.aggNodes {
			if a.star {
				p.aggArgs = append(p.aggArgs, nil)
				continue
			}
			an, err := compileVec(a.arg, kinds)
			if err != nil {
				return nil, err
			}
			p.aggArgs = append(p.aggArgs, an)
			refExprs = append(refExprs, a.arg)
		}
		for _, g := range stmt.groupBy {
			gn, err := compileVec(g, kinds)
			if err != nil {
				return nil, err
			}
			p.groupKeys = append(p.groupKeys, gn)
			refExprs = append(refExprs, g)
		}
		// Select items render per group through the row evaluator
		// (renderGroups) over O(groups) rows, so they need no kernels —
		// any expression shape is fine there, as is grouped ORDER BY,
		// which sorts the output frame.
		p.groupCols = exprColumns(refExprs...)
		return p, nil
	}

	var computeExprs []expr
	for _, item := range stmt.items {
		if item.star {
			for _, cm := range schema {
				p.outs = append(p.outs, vecOut{name: cm.Name, src: cm.Name, kind: cm.Kind})
			}
			continue
		}
		if id, ok := item.ex.(*identExpr); ok {
			k, found := kinds[id.name]
			if !found {
				return nil, fallbackf("column %q not in table schema", id.name)
			}
			p.outs = append(p.outs, vecOut{name: item.outName(), src: id.name, kind: k})
			continue
		}
		nd, err := compileVec(item.ex, kinds)
		if err != nil {
			return nil, err
		}
		p.outs = append(p.outs, vecOut{name: item.outName(), node: nd, kind: nd.kind()})
		computeExprs = append(computeExprs, item.ex)
	}
	p.computeCols = exprColumns(computeExprs...)

	if len(stmt.orderBy) > 0 {
		// Mirror orderKeep's alias rule: an ORDER BY identifier resolves to
		// the select item it aliases only when the scanned source has no
		// column of that name (source columns shadow aliases).
		srcHas := map[string]bool{}
		star := false
		for _, it := range stmt.items {
			if it.star {
				star = true
			}
		}
		if star {
			for _, cm := range schema {
				srcHas[cm.Name] = true
			}
		} else {
			for _, name := range stmt.referencedColumns() {
				if _, ok := kinds[name]; ok {
					srcHas[name] = true
				}
			}
		}
		var ordExprs []expr
		for _, o := range stmt.orderBy {
			ex := o.ex
			if id, ok := o.ex.(*identExpr); ok && !srcHas[id.name] {
				for _, sel := range stmt.items {
					if !sel.star && sel.outName() == id.name {
						ex = sel.ex
						break
					}
				}
			}
			nd, err := compileVec(ex, kinds)
			if err != nil {
				return nil, err
			}
			p.orderNodes = append(p.orderNodes, nd)
			p.orderDesc = append(p.orderDesc, o.desc)
			p.orderStr = append(p.orderStr, nd.kind() == dataframe.String)
			ordExprs = append(ordExprs, ex)
		}
		p.orderCols = exprColumns(ordExprs...)
	}
	return p, nil
}

// run executes the plan over the segment scan.
func (p *vecPlan) run(scan segScan, st *execStats) (*dataframe.Frame, error) {
	if p.grouped {
		return p.runGrouped(scan, st)
	}
	if len(p.stmt.orderBy) > 0 {
		return p.runOrdered(scan, st)
	}
	return p.runRows(scan, st)
}

// selection evaluates WHERE over the block and appends surviving local row
// indices to sel.
func (p *vecPlan) selection(b *block, sel []int) []int {
	n := b.n()
	if p.where == nil {
		for j := 0; j < n; j++ {
			sel = append(sel, j)
		}
		return sel
	}
	mask := p.where.eval(b).truthyMask(n)
	for j, m := range mask {
		if m {
			sel = append(sel, j)
		}
	}
	return sel
}

// scanBlocks walks every unpruned segment in blocks, filters each block,
// and hands surviving rows to fn. Column-lookup caches persist per segment.
func (p *vecPlan) scanBlocks(scan segScan, st *execStats, fn func(si int, b *block, sel []int) error) error {
	sel := make([]int, 0, blockSize)
	for si, seg := range scan.segs {
		if scan.pruned[si] {
			continue
		}
		b := &block{seg: seg}
		n := seg.NumRows()
		for lo := 0; lo < n; lo += blockSize {
			hi := lo + blockSize
			if hi > n {
				hi = n
			}
			b.lo, b.hi = lo, hi
			sel = p.selection(b, sel[:0])
			st.rowsScanned += int64(hi - lo)
			st.rowsFiltered += int64(hi - lo - len(sel))
			if len(sel) == 0 {
				continue
			}
			if err := fn(si, b, sel); err != nil {
				return err
			}
		}
	}
	return nil
}

// compactBlock gathers the named columns at the selected rows into a small
// owned frame, so projection/key kernels evaluate only surviving rows.
func compactBlock(b *block, sel []int, names []string) (*block, error) {
	idx := make([]int, len(sel))
	for j, s := range sel {
		idx[j] = b.lo + s
	}
	sub, err := b.seg.Select(names...)
	if err != nil {
		return nil, err
	}
	return &block{seg: sub.Gather(idx), lo: 0, hi: len(sel)}, nil
}

// colBuilder accumulates one typed output column across blocks. A computed
// output that ends up empty collapses to Int, matching valuesToColumn over
// zero values; pass-through outputs keep their column kind.
type colBuilder struct {
	name     string
	kind     dataframe.Kind
	computed bool
	n        int
	f        []float64
	i        []int64
	s        []string
}

func (cb *colBuilder) appendColumnRows(c *dataframe.Column, lo int, sel []int) {
	switch cb.kind {
	case dataframe.Float:
		for _, j := range sel {
			cb.f = append(cb.f, c.F[lo+j])
		}
	case dataframe.Int:
		for _, j := range sel {
			cb.i = append(cb.i, c.I[lo+j])
		}
	default:
		for _, j := range sel {
			cb.s = append(cb.s, c.S[lo+j])
		}
	}
	cb.n += len(sel)
}

func (cb *colBuilder) appendVec(v vec, n int) {
	switch cb.kind {
	case dataframe.Float:
		cb.f = append(cb.f, v.floats(n)...)
	case dataframe.Int:
		cb.i = append(cb.i, v.ints(n)...)
	default:
		cb.s = append(cb.s, v.strs(n)...)
	}
	cb.n += n
}

func (cb *colBuilder) column() *dataframe.Column {
	if cb.computed && cb.n == 0 {
		return dataframe.NewInt(cb.name, []int64{})
	}
	switch cb.kind {
	case dataframe.Float:
		if cb.f == nil {
			cb.f = []float64{}
		}
		return dataframe.NewFloat(cb.name, cb.f)
	case dataframe.Int:
		if cb.i == nil {
			cb.i = []int64{}
		}
		return dataframe.NewInt(cb.name, cb.i)
	default:
		if cb.s == nil {
			cb.s = []string{}
		}
		return dataframe.NewString(cb.name, cb.s)
	}
}

func (p *vecPlan) newBuilders() []*colBuilder {
	bs := make([]*colBuilder, len(p.outs))
	for i, o := range p.outs {
		bs[i] = &colBuilder{name: o.name, kind: o.kind, computed: o.node != nil}
	}
	return bs
}

func buildersFrame(builders []*colBuilder) (*dataframe.Frame, error) {
	out := dataframe.New()
	for _, cb := range builders {
		if err := out.AddColumn(cb.column()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runRows executes a non-aggregating, unordered plan in one streaming pass.
// With a LIMIT and no DISTINCT it stops as soon as k rows survive.
func (p *vecPlan) runRows(scan segScan, st *execStats) (*dataframe.Frame, error) {
	builders := p.newBuilders()
	earlyStop := p.stmt.limit >= 0 && !p.stmt.distinct
	if !(earlyStop && p.stmt.limit == 0) {
		total := 0
		sel := make([]int, 0, blockSize)
	scanLoop:
		for si, seg := range scan.segs {
			if scan.pruned[si] {
				continue
			}
			b := &block{seg: seg}
			n := seg.NumRows()
			for lo := 0; lo < n; lo += blockSize {
				hi := lo + blockSize
				if hi > n {
					hi = n
				}
				b.lo, b.hi = lo, hi
				sel = p.selection(b, sel[:0])
				st.rowsScanned += int64(hi - lo)
				st.rowsFiltered += int64(hi - lo - len(sel))
				if earlyStop && total+len(sel) > p.stmt.limit {
					sel = sel[:p.stmt.limit-total]
				}
				if err := p.appendOutputs(builders, b, sel); err != nil {
					return nil, err
				}
				total += len(sel)
				if earlyStop && total >= p.stmt.limit {
					break scanLoop
				}
			}
		}
	}
	out, err := buildersFrame(builders)
	if err != nil {
		return nil, err
	}
	if p.stmt.distinct {
		out = distinctRows(out)
	}
	if p.stmt.limit >= 0 {
		out = out.Head(p.stmt.limit)
	}
	return out, nil
}

// appendOutputs appends the selected rows of one block to every output
// builder. Computed outputs over a partial selection evaluate on a
// compacted mini-frame so kernels only touch surviving rows — exactly the
// rows the tree-walk engine would evaluate.
func (p *vecPlan) appendOutputs(builders []*colBuilder, b *block, sel []int) error {
	if len(sel) == 0 {
		return nil
	}
	var cb *block
	for i, o := range p.outs {
		if o.node == nil {
			builders[i].appendColumnRows(b.column(o.src), b.lo, sel)
			continue
		}
		if len(sel) == b.n() {
			builders[i].appendVec(o.node.eval(b), b.n())
			continue
		}
		if cb == nil {
			var err error
			cb, err = compactBlock(b, sel, p.computeCols)
			if err != nil {
				return err
			}
		}
		builders[i].appendVec(o.node.eval(cb), cb.n())
	}
	return nil
}

func floatCmpNaNLast(x, y float64) int {
	switch {
	case math.IsNaN(x) && math.IsNaN(y):
		return 0
	case math.IsNaN(x):
		return 1
	case math.IsNaN(y):
		return -1
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}

// runOrdered executes a non-aggregating ORDER BY plan: key kernels evaluate
// per block, survivors are either fully collected and stably sorted, or —
// with a LIMIT and no DISTINCT — fed through a bounded top-k heap. The
// final rows gather from the segments afterwards, so non-key columns are
// only touched for rows that actually appear in the result.
func (p *vecPlan) runOrdered(scan segScan, st *execStats) (*dataframe.Frame, error) {
	nk := len(p.orderNodes)
	useTopK := p.stmt.limit >= 0 && !p.stmt.distinct
	keyF := make([][]float64, nk)
	keyS := make([][]string, nk)
	evalKeys := func(b *block, sel []int) error {
		eb := b
		if len(sel) != b.n() {
			var err error
			eb, err = compactBlock(b, sel, p.orderCols)
			if err != nil {
				return err
			}
		}
		kn := len(sel)
		for oi, nd := range p.orderNodes {
			v := nd.eval(eb)
			if p.orderStr[oi] {
				keyS[oi] = v.strs(kn)
			} else {
				keyF[oi] = v.floats(kn)
			}
		}
		return nil
	}

	var refs []rowRef
	if useTopK {
		h := newTopK(p.stmt.limit, p.orderDesc, p.orderStr)
		rowF := make([]float64, nk)
		rowS := make([]string, nk)
		err := p.scanBlocks(scan, st, func(si int, b *block, sel []int) error {
			if p.stmt.limit == 0 {
				return nil
			}
			if err := evalKeys(b, sel); err != nil {
				return err
			}
			for j := range sel {
				for oi := 0; oi < nk; oi++ {
					if p.orderStr[oi] {
						rowS[oi] = keyS[oi][j]
					} else {
						rowF[oi] = keyF[oi][j]
					}
				}
				h.offer(rowF, rowS, rowRef{seg: int32(si), row: int32(b.lo + sel[j])})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		refs = h.finalize()
	} else {
		accF := make([][]float64, nk)
		accS := make([][]string, nk)
		err := p.scanBlocks(scan, st, func(si int, b *block, sel []int) error {
			if err := evalKeys(b, sel); err != nil {
				return err
			}
			for oi := 0; oi < nk; oi++ {
				if p.orderStr[oi] {
					accS[oi] = append(accS[oi], keyS[oi]...)
				} else {
					accF[oi] = append(accF[oi], keyF[oi]...)
				}
			}
			for j := range sel {
				refs = append(refs, rowRef{seg: int32(si), row: int32(b.lo + sel[j])})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(refs))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ia, ib := idx[a], idx[b]
			for oi := 0; oi < nk; oi++ {
				var cmp int
				if p.orderStr[oi] {
					cmp = strings.Compare(accS[oi][ia], accS[oi][ib])
				} else {
					cmp = floatCmpNaNLast(accF[oi][ia], accF[oi][ib])
				}
				if p.orderDesc[oi] {
					cmp = -cmp
				}
				if cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})
		sorted := make([]rowRef, len(refs))
		for i, j := range idx {
			sorted[i] = refs[j]
		}
		refs = sorted
	}

	out, err := p.buildFromRefs(scan.segs, refs)
	if err != nil {
		return nil, err
	}
	if p.stmt.distinct {
		out = distinctRows(out)
	}
	if p.stmt.limit >= 0 {
		out = out.Head(p.stmt.limit)
	}
	return out, nil
}

// buildFromRefs projects the plan's outputs for an ordered list of row
// references: pass-through columns gather straight from the segments,
// computed outputs evaluate over a frame of gathered source columns.
func (p *vecPlan) buildFromRefs(segs []*dataframe.Frame, refs []rowRef) (*dataframe.Frame, error) {
	needed := map[string]bool{}
	for _, o := range p.outs {
		if o.node == nil {
			needed[o.src] = true
		}
	}
	for _, c := range p.computeCols {
		needed[c] = true
	}
	names := make([]string, 0, len(needed))
	for n := range needed {
		names = append(names, n)
	}
	sort.Strings(names)

	gf := dataframe.New()
	for _, name := range names {
		col, err := gatherRefs(segs, refs, name, p.kinds[name])
		if err != nil {
			return nil, err
		}
		if err := gf.AddColumn(col); err != nil {
			return nil, err
		}
	}

	out := dataframe.New()
	used := map[string]bool{}
	for _, o := range p.outs {
		if o.node == nil {
			c, err := gf.Column(o.src)
			if err != nil {
				return nil, err
			}
			var use *dataframe.Column
			if used[o.src] {
				use = c.Clone()
			} else {
				sh := *c
				use = &sh
				used[o.src] = true
			}
			use.Name = o.name
			if err := out.AddColumn(use); err != nil {
				return nil, err
			}
			continue
		}
		cb := &colBuilder{name: o.name, kind: o.kind, computed: true}
		n := len(refs)
		for lo := 0; lo < n; lo += blockSize {
			hi := lo + blockSize
			if hi > n {
				hi = n
			}
			eb := &block{seg: gf, lo: lo, hi: hi}
			cb.appendVec(o.node.eval(eb), hi-lo)
		}
		if err := out.AddColumn(cb.column()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// gatherRefs copies one source column at the referenced rows, in order.
func gatherRefs(segs []*dataframe.Frame, refs []rowRef, name string, kind dataframe.Kind) (*dataframe.Column, error) {
	cols := make([]*dataframe.Column, len(segs))
	colAt := func(si int32) (*dataframe.Column, error) {
		if cols[si] == nil {
			c, err := segs[si].Column(name)
			if err != nil {
				return nil, err
			}
			cols[si] = c
		}
		return cols[si], nil
	}
	switch kind {
	case dataframe.Float:
		out := make([]float64, len(refs))
		for j, r := range refs {
			c, err := colAt(r.seg)
			if err != nil {
				return nil, err
			}
			out[j] = c.F[r.row]
		}
		return dataframe.NewFloat(name, out), nil
	case dataframe.Int:
		out := make([]int64, len(refs))
		for j, r := range refs {
			c, err := colAt(r.seg)
			if err != nil {
				return nil, err
			}
			out[j] = c.I[r.row]
		}
		return dataframe.NewInt(name, out), nil
	default:
		out := make([]string, len(refs))
		for j, r := range refs {
			c, err := colAt(r.seg)
			if err != nil {
				return nil, err
			}
			out[j] = c.S[r.row]
		}
		return dataframe.NewString(name, out), nil
	}
}

// topK is a bounded max-heap keeping the k rows that sort first; the root
// is the current worst survivor. Ties break by arrival order, which
// reproduces the first k rows of the engine's stable full sort.
type topkCand struct {
	fk  []float64
	sk  []string
	ref rowRef
	pos int64
}

type topK struct {
	k     int
	desc  []bool
	isStr []bool
	cands []*topkCand
	next  int64
}

func newTopK(k int, desc, isStr []bool) *topK {
	return &topK{k: k, desc: desc, isStr: isStr}
}

func (t *topK) cmp(a, b *topkCand) int {
	for oi := range t.desc {
		var c int
		if t.isStr[oi] {
			c = strings.Compare(a.sk[oi], b.sk[oi])
		} else {
			c = floatCmpNaNLast(a.fk[oi], b.fk[oi])
		}
		if t.desc[oi] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	switch {
	case a.pos < b.pos:
		return -1
	case a.pos > b.pos:
		return 1
	}
	return 0
}

// cmpRow compares an incoming row's keys against candidate c without
// allocating; key ties mean the newer row sorts after (stable order).
func (t *topK) cmpRow(fk []float64, sk []string, c *topkCand) int {
	for oi := range t.desc {
		var v int
		if t.isStr[oi] {
			v = strings.Compare(sk[oi], c.sk[oi])
		} else {
			v = floatCmpNaNLast(fk[oi], c.fk[oi])
		}
		if t.desc[oi] {
			v = -v
		}
		if v != 0 {
			return v
		}
	}
	return 1
}

func (t *topK) offer(fk []float64, sk []string, ref rowRef) {
	if t.k == 0 {
		return
	}
	pos := t.next
	t.next++
	if len(t.cands) < t.k {
		cand := &topkCand{
			fk:  append([]float64(nil), fk...),
			sk:  append([]string(nil), sk...),
			ref: ref, pos: pos,
		}
		t.cands = append(t.cands, cand)
		t.siftUp(len(t.cands) - 1)
		return
	}
	if t.cmpRow(fk, sk, t.cands[0]) >= 0 {
		return
	}
	t.cands[0] = &topkCand{
		fk:  append([]float64(nil), fk...),
		sk:  append([]string(nil), sk...),
		ref: ref, pos: pos,
	}
	t.siftDown(0)
}

func (t *topK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.cmp(t.cands[i], t.cands[parent]) <= 0 {
			return
		}
		t.cands[i], t.cands[parent] = t.cands[parent], t.cands[i]
		i = parent
	}
}

func (t *topK) siftDown(i int) {
	n := len(t.cands)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && t.cmp(t.cands[l], t.cands[big]) > 0 {
			big = l
		}
		if r < n && t.cmp(t.cands[r], t.cands[big]) > 0 {
			big = r
		}
		if big == i {
			return
		}
		t.cands[i], t.cands[big] = t.cands[big], t.cands[i]
		i = big
	}
}

// finalize returns the surviving row refs in final sort order.
func (t *topK) finalize() []rowRef {
	sort.Slice(t.cands, func(a, b int) bool { return t.cmp(t.cands[a], t.cands[b]) < 0 })
	refs := make([]rowRef, len(t.cands))
	for i, c := range t.cands {
		refs[i] = c.ref
	}
	return refs
}

// appendDisplay renders element j of a key vector exactly as
// value.display() would (%g floats, %d ints, raw strings) for group-key
// hashing.
func appendDisplay(dst []byte, v vec, j int) []byte {
	if v.cnst {
		j = 0
	}
	switch v.kind {
	case dataframe.Float:
		return strconv.AppendFloat(dst, v.f[j], 'g', -1, 64)
	case dataframe.Int:
		return strconv.AppendInt(dst, v.i[j], 10)
	default:
		return append(dst, v.s[j]...)
	}
}

func newAccs(aggNodes []*aggExpr) []*aggAccumulator {
	accs := make([]*aggAccumulator, len(aggNodes))
	for i, a := range aggNodes {
		accs[i] = newAccumulator(a.fn)
	}
	return accs
}

// runGrouped executes aggregate/GROUP BY plans: group keys and aggregate
// arguments evaluate as vectors per block, accumulation is a single
// streaming pass, and the O(groups)-sized select list renders through the
// shared renderGroups path.
func (p *vecPlan) runGrouped(scan segScan, st *execStats) (*dataframe.Frame, error) {
	var order []*aggGroup
	nKeys := len(p.groupKeys)
	nAggs := len(p.aggNodes)
	keyVecs := make([]vec, nKeys)
	argF := make([][]float64, nAggs)
	keyBuf := make([]byte, 0, 64)

	// Key fast paths: a single Int or String group key needs no rendered
	// composite key — the raw value is an equivalent group identity
	// (display() is injective for int64 and the identity for strings).
	intKey := nKeys == 1 && p.groupKeys[0].kind() == dataframe.Int
	strKey := nKeys == 1 && p.groupKeys[0].kind() == dataframe.String
	groupOf := map[string]*aggGroup{}
	intGroups := map[int64]*aggGroup{}

	err := p.scanBlocks(scan, st, func(si int, b *block, sel []int) error {
		kn := len(sel)
		// Kernels are total functions, so evaluating rows the filter
		// rejected is safe. Unless the filter is highly selective,
		// evaluating the whole block and indexing the survivors beats
		// gathering a compact copy of every referenced column — column
		// references evaluate as zero-copy aliases.
		dense := 4*kn >= b.n()
		eb := b
		if !dense {
			var err error
			eb, err = compactBlock(b, sel, p.groupCols)
			if err != nil {
				return err
			}
		}
		en := eb.n()
		for i, g := range p.groupKeys {
			keyVecs[i] = g.eval(eb)
		}
		var intKeys []int64
		var strKeys []string
		if intKey {
			intKeys = keyVecs[0].ints(en)
		} else if strKey {
			strKeys = keyVecs[0].strs(en)
		}
		for i, a := range p.aggArgs {
			if a != nil {
				argF[i] = a.eval(eb).floats(en)
			}
		}
		for j := 0; j < kn; j++ {
			r := j
			if dense {
				r = sel[j]
			}
			var grp *aggGroup
			var ok bool
			switch {
			case intKey:
				grp, ok = intGroups[intKeys[r]]
			case strKey:
				grp, ok = groupOf[strKeys[r]]
			case nKeys == 0:
				grp, ok = groupOf[""]
			default:
				keyBuf = keyBuf[:0]
				for _, kv := range keyVecs {
					keyBuf = appendDisplay(keyBuf, kv, r)
					keyBuf = append(keyBuf, '\x1f')
				}
				grp, ok = groupOf[string(keyBuf)]
			}
			if !ok {
				grp = &aggGroup{frame: b.seg, row: b.lo + sel[j], accs: newAccs(p.aggNodes)}
				switch {
				case intKey:
					intGroups[intKeys[r]] = grp
				case strKey:
					groupOf[strKeys[r]] = grp
				case nKeys == 0:
					groupOf[""] = grp
				default:
					groupOf[string(keyBuf)] = grp
				}
				order = append(order, grp)
			}
			for i := range p.aggNodes {
				if p.aggArgs[i] == nil {
					grp.accs[i].addFloat(1)
					continue
				}
				grp.accs[i].addFloat(argF[i][r])
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(p.groupKeys) == 0 && len(order) == 0 {
		order = append(order, &aggGroup{row: -1, accs: newAccs(p.aggNodes)})
	}
	out, err := renderGroups(p.stmt, p.aggNodes, order)
	if err != nil {
		return nil, err
	}
	if p.stmt.distinct {
		out = distinctRows(out)
	}
	if len(p.stmt.orderBy) > 0 {
		out, err = orderRows(p.stmt, out)
		if err != nil {
			return nil, err
		}
	}
	if p.stmt.limit >= 0 {
		out = out.Head(p.stmt.limit)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Segment pruning

// tri is a three-valued predicate summary over one whole segment.
type tri int8

const (
	triMaybe tri = iota // some rows may match
	triFalse            // provably no row matches — the segment can be skipped
	triTrue             // provably every row matches
)

// pruneExpr evaluates whether a WHERE expression can be decided for an
// entire segment from per-column min/max/NaN stats. The rules bake in the
// engine's comparison semantics over NaN: NaN < c is false but NaN <= c is
// true (the cmp==0 quirk), NaN never equals anything (so != keeps it), and
// BETWEEN rejects it. stats returns the segment's stats for a column.
func pruneExpr(e expr, stats func(string) (dataframe.Stats, bool)) tri {
	switch v := e.(type) {
	case *binaryExpr:
		switch v.op {
		case "AND":
			l, r := pruneExpr(v.left, stats), pruneExpr(v.right, stats)
			if l == triFalse || r == triFalse {
				return triFalse
			}
			if l == triTrue && r == triTrue {
				return triTrue
			}
			return triMaybe
		case "OR":
			l, r := pruneExpr(v.left, stats), pruneExpr(v.right, stats)
			if l == triTrue || r == triTrue {
				return triTrue
			}
			if l == triFalse && r == triFalse {
				return triFalse
			}
			return triMaybe
		case "=", "!=", "<", "<=", ">", ">=":
			return pruneCmp(v, stats)
		}
		return triMaybe
	case *unaryExpr:
		if v.op == "NOT" {
			switch pruneExpr(v.sub, stats) {
			case triFalse:
				return triTrue
			case triTrue:
				return triFalse
			}
		}
		return triMaybe
	case *inExpr:
		return pruneIn(v, stats)
	case *betweenExpr:
		return pruneBetween(v, stats)
	}
	return triMaybe
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// identStats resolves "column op constant" shapes (either orientation) to
// the column's stats and the constant as float.
func identStats(l, r expr, stats func(string) (dataframe.Stats, bool)) (st dataframe.Stats, c float64, flipped, ok bool) {
	if id, isID := l.(*identExpr); isID {
		if cv, isC := constValue(r); isC && cv.kind != dataframe.String {
			if s, found := stats(id.name); found && s.Valid {
				return s, cv.asFloat(), false, true
			}
		}
		return dataframe.Stats{}, 0, false, false
	}
	if id, isID := r.(*identExpr); isID {
		if cv, isC := constValue(l); isC && cv.kind != dataframe.String {
			if s, found := stats(id.name); found && s.Valid {
				return s, cv.asFloat(), true, true
			}
		}
	}
	return dataframe.Stats{}, 0, false, false
}

func pruneCmp(v *binaryExpr, stats func(string) (dataframe.Stats, bool)) tri {
	st, c, flipped, ok := identStats(v.left, v.right, stats)
	if !ok {
		return triMaybe
	}
	op := v.op
	if flipped {
		op = flipCmp(op)
	}
	switch op {
	case "<": // NaN rows never match
		if st.Min >= c {
			return triFalse
		}
		if st.NaNs == 0 && st.Max < c {
			return triTrue
		}
	case "<=": // NaN rows always match (cmp==0 quirk)
		if st.NaNs == 0 && st.Min > c {
			return triFalse
		}
		if st.Max <= c {
			return triTrue
		}
	case ">": // NaN rows never match
		if st.Max <= c {
			return triFalse
		}
		if st.NaNs == 0 && st.Min > c {
			return triTrue
		}
	case ">=": // NaN rows always match
		if st.NaNs == 0 && st.Max < c {
			return triFalse
		}
		if st.Min >= c {
			return triTrue
		}
	case "=": // NaN rows never match
		if c < st.Min || c > st.Max {
			return triFalse
		}
		if st.NaNs == 0 && st.Min == c && st.Max == c {
			return triTrue
		}
	case "!=": // NaN rows always match
		if st.NaNs == 0 && st.Min == c && st.Max == c {
			return triFalse
		}
		if c < st.Min || c > st.Max {
			return triTrue
		}
	}
	return triMaybe
}

func pruneIn(v *inExpr, stats func(string) (dataframe.Stats, bool)) tri {
	if v.negate {
		return triMaybe
	}
	id, isID := v.sub.(*identExpr)
	if !isID {
		return triMaybe
	}
	st, found := stats(id.name)
	if !found || !st.Valid {
		return triMaybe
	}
	for _, item := range v.list {
		cv, ok := constValue(item)
		if !ok {
			return triMaybe
		}
		if cv.kind == dataframe.String {
			// A string member never equals a numeric column value.
			continue
		}
		c := cv.asFloat()
		if c >= st.Min && c <= st.Max {
			return triMaybe
		}
	}
	return triFalse // every member is outside [min, max]; NaN matches nothing
}

func pruneBetween(v *betweenExpr, stats func(string) (dataframe.Stats, bool)) tri {
	id, isID := v.sub.(*identExpr)
	if !isID {
		return triMaybe
	}
	loV, okLo := constValue(v.lo)
	hiV, okHi := constValue(v.hi)
	if !okLo || !okHi || loV.kind == dataframe.String || hiV.kind == dataframe.String {
		return triMaybe
	}
	st, found := stats(id.name)
	if !found || !st.Valid {
		return triMaybe
	}
	lo, hi := loV.asFloat(), hiV.asFloat()
	allOut := st.Max < lo || st.Min > hi            // no non-NaN row inside; NaN rows are outside too
	allIn := st.NaNs == 0 && st.Min >= lo && st.Max <= hi
	if v.negate {
		if allIn {
			return triFalse
		}
		if allOut {
			return triTrue
		}
		return triMaybe
	}
	if allOut {
		return triFalse
	}
	if allIn {
		return triTrue
	}
	return triMaybe
}
