// Package baselines implements the §4.4 comparison systems: a direct-chat
// LLM fed raw data through its prompt, a PandasAI-like tool requiring full
// in-memory ingestion, and a static linear workflow without supervisor
// routing or QA repair. Each fails on ensemble-scale data in the specific
// way the paper reports.
package baselines

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"infera/internal/dataframe"
	"infera/internal/gio"
	"infera/internal/hacc"
	"infera/internal/llm"
)

// DirectChatResult reports one direct-chat attempt.
type DirectChatResult struct {
	Answered        bool
	Hallucinated    bool // model confabulated values (§4.4: a 20x5 frame already hallucinates)
	ContextExceeded bool // prompt did not fit the model window
	PromptTokens    int
	Rows            int
}

// DirectChat pastes rows of the final-step halo catalog of sim 0 into the
// model prompt and asks the question — the "standard chat model" baseline.
func DirectChat(model llm.Client, cat *hacc.Catalog, question string, maxRows int) (DirectChatResult, error) {
	steps := cat.Steps()
	entry, ok := cat.Find(0, steps[len(steps)-1], hacc.FileHalos)
	if !ok {
		return DirectChatResult{}, fmt.Errorf("baselines: no halo file")
	}
	r, err := gio.Open(cat.AbsPath(entry))
	if err != nil {
		return DirectChatResult{}, err
	}
	defer r.Close()
	f, err := r.ReadAll()
	if err != nil {
		return DirectChatResult{}, err
	}
	f = f.Head(maxRows)
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		return DirectChatResult{}, err
	}
	payload, err := json.Marshal(llm.ChatRequest{Question: question, DataCSV: buf.String()})
	if err != nil {
		return DirectChatResult{}, err
	}
	resp, err := model.Complete(llm.Request{Agent: "direct-chat", Skill: llm.SkillChat, Prompt: string(payload)})
	if err != nil {
		var cwe *llm.ContextWindowError
		if errors.As(err, &cwe) {
			return DirectChatResult{ContextExceeded: true, PromptTokens: cwe.Tokens, Rows: f.NumRows()}, nil
		}
		return DirectChatResult{}, err
	}
	var chat llm.ChatResponse
	if err := json.Unmarshal([]byte(resp.Text), &chat); err != nil {
		return DirectChatResult{}, err
	}
	return DirectChatResult{
		Answered:     true,
		Hallucinated: chat.Hallucinated,
		PromptTokens: resp.Usage.Prompt,
		Rows:         f.NumRows(),
	}, nil
}

// PandasAIResult reports one full-ingestion attempt.
type PandasAIResult struct {
	OK          bool
	Reason      string
	BytesNeeded int64 // what full ingestion would read
	Budget      int64
	Answer      *dataframe.Frame // only for small data
}

// PandasAILike models a tool that "generally require[s] the full dataset to
// be in memory prior to analysis": it must read every file of the involved
// entity across all runs and steps — no column pruning, no file pruning —
// and fails when that exceeds the memory budget.
func PandasAILike(cat *hacc.Catalog, question string, memBudget int64) (PandasAIResult, error) {
	in := llm.ParseIntent(question)
	entity := hacc.FileHalos
	for _, e := range in.Entities {
		entity = e
		break
	}
	files := cat.FilesOf(-1, -1, entity)
	var needed int64
	for _, fe := range files {
		if fe.Step < 0 {
			continue
		}
		needed += fe.Bytes
	}
	res := PandasAIResult{BytesNeeded: needed, Budget: memBudget}
	if needed > memBudget {
		res.Reason = fmt.Sprintf("MemoryError: full ingestion needs %d bytes, budget is %d", needed, memBudget)
		return res, nil
	}
	// Small data: ingest everything and answer a ranking question.
	full := dataframe.New()
	for _, fe := range files {
		if fe.Step < 0 {
			continue
		}
		r, err := gio.Open(cat.AbsPath(fe))
		if err != nil {
			return res, err
		}
		f, err := r.ReadAll()
		r.Close()
		if err != nil {
			return res, err
		}
		if full.NumCols() == 0 {
			full = f
		} else if err := full.Append(f); err != nil {
			return res, err
		}
	}
	if in.RankBy != "" && full.Has(in.RankBy) {
		sorted, err := full.SortBy(dataframe.SortKey{Col: in.RankBy, Desc: true})
		if err != nil {
			return res, err
		}
		n := in.TopN
		if n <= 0 {
			n = 10
		}
		res.Answer = sorted.Head(n)
	} else {
		res.Answer = full.Head(10)
	}
	res.OK = true
	return res, nil
}
