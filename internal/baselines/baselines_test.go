package baselines

import (
	"strings"
	"testing"

	"infera/internal/hacc"
	"infera/internal/llm"
)

func testCatalog(t *testing.T) *hacc.Catalog {
	t.Helper()
	dir := t.TempDir()
	spec := hacc.Spec{Runs: 2, Steps: []int{99, 624}, HalosPerRun: 120, ParticlesPerStep: 50, BoxSize: 128, Seed: 17}
	cat, err := hacc.Generate(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestDirectChatHallucinatesOnModestData(t *testing.T) {
	cat := testCatalog(t)
	model := llm.NewSim(llm.SimConfig{Seed: 1})
	// 20 rows (the paper's toy 20x5 example, ours is wider) is already
	// enough to confabulate.
	res, err := DirectChat(model, cat, "list the halo masses", 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answered || !res.Hallucinated {
		t.Errorf("result = %+v, want answered+hallucinated", res)
	}
}

func TestDirectChatExceedsContextWindow(t *testing.T) {
	cat := testCatalog(t)
	model := llm.NewSim(llm.SimConfig{Seed: 1, Window: 2000})
	res, err := DirectChat(model, cat, "list the halo masses", 120)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ContextExceeded {
		t.Errorf("result = %+v, want context exceeded", res)
	}
}

func TestPandasAILikeFailsAtScale(t *testing.T) {
	cat := testCatalog(t)
	q := "Can you find me the top 20 largest friends-of-friends halos from timestep 624 in simulation 0?"
	// Tight budget: full ingestion impossible.
	res, err := PandasAILike(cat, q, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || !strings.Contains(res.Reason, "MemoryError") {
		t.Errorf("result = %+v, want memory failure", res)
	}
	if res.BytesNeeded <= 0 {
		t.Error("bytes needed not computed")
	}
	// Generous budget: it works, proving the failure is scale, not logic.
	res, err = PandasAILike(cat, q, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Answer == nil || res.Answer.NumRows() != 20 {
		t.Errorf("result = %+v", res)
	}
	masses := res.Answer.MustColumn("fof_halo_mass").Floats()
	for i := 1; i < len(masses); i++ {
		if masses[i] > masses[i-1] {
			t.Error("answer not ranked")
		}
	}
}

func TestCompareArchitectures(t *testing.T) {
	if testing.Short() {
		t.Skip("architecture comparison skipped in -short")
	}
	cat := testCatalog(t)
	questions := []string{
		"At timestep 624, how does the slope and intrinsic scatter of the stellar-to-halo mass (SMHM) relation vary as a function of seed mass? Which seed mass values produce the tightest SMHM correlation?",
		"Find the most unique halos at timestep 624 in simulation 1: using velocity dispersion, mass and kinetic energy, score how atypical each halo is and plot the top 50 as a UMAP plot highlighting the top 10.",
	}
	res, err := CompareArchitectures(cat.Dir, questions, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 8 {
		t.Fatalf("runs = %d", res.Runs)
	}
	if res.StaticCompleted > res.MultiCompleted {
		t.Errorf("static pipeline (%d) should not beat the multi-agent system (%d)",
			res.StaticCompleted, res.MultiCompleted)
	}
}
