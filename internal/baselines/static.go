package baselines

import (
	"os"

	"infera/internal/core"
	"infera/internal/llm"
)

// StaticResult summarizes a multi-agent vs static-linear comparison.
type StaticResult struct {
	Runs            int
	MultiCompleted  int // runs completing under the full architecture
	StaticCompleted int // runs completing under the static pipeline
}

// CompareArchitectures runs each question under (a) the full multi-agent
// system (supervisor routing + QA repair loop) and (b) a static linear
// pipeline that executes each step exactly once with no error-guided
// regeneration — the §4.4.1 architecture comparison. Same model seeds on
// both sides, so the only difference is the architecture.
func CompareArchitectures(ensembleDir string, questions []string, reps int, seed int64) (StaticResult, error) {
	var out StaticResult
	for qi, q := range questions {
		for r := 0; r < reps; r++ {
			runSeed := seed + int64(qi)*100 + int64(r)
			multiOK, err := runOnce(ensembleDir, q, runSeed, 0)
			if err != nil {
				return out, err
			}
			staticOK, err := runOnce(ensembleDir, q, runSeed, -1)
			if err != nil {
				return out, err
			}
			out.Runs++
			if multiOK {
				out.MultiCompleted++
			}
			if staticOK {
				out.StaticCompleted++
			}
		}
	}
	return out, nil
}

// runOnce executes one workflow; maxRevisions -1 disables the QA repair
// loop (the static pipeline), 0 uses the default budget of 5.
func runOnce(ensembleDir, question string, seed int64, maxRevisions int) (bool, error) {
	workDir, err := os.MkdirTemp("", "infera-baseline-*")
	if err != nil {
		return false, err
	}
	defer os.RemoveAll(workDir)
	a, err := core.New(core.Config{
		EnsembleDir:  ensembleDir,
		WorkDir:      workDir,
		Model:        llm.NewSim(llm.SimConfig{Seed: seed}),
		MaxRevisions: maxRevisions,
	})
	if err != nil {
		return false, err
	}
	defer a.Close()
	ans, _ := a.Ask(question)
	return ans != nil && ans.State.Done && !ans.State.Failed, nil
}
