package hacc

// Metadata dictionaries (§3.1 of the paper): one describing the ensemble
// file structure and one mapping terse column labels to context-rich
// natural-language descriptions. In the paper these are LLM-generated and
// expert-refined; here they are curated directly. They are the knowledge
// base the RAG retriever chunks into per-column documents.

// ColumnDoc is one column's dictionary entry.
type ColumnDoc struct {
	Column      string // exact column label
	FileType    string // which file family carries it
	Description string // context-rich natural-language description
	Important   bool   // tagged "[IMPORTANT]" for the extra retrieval prompt
}

// FileDoc describes one file family of the ensemble.
type FileDoc struct {
	FileType    string
	Description string
}

// FileDictionary returns the ensemble file-structure dictionary.
func FileDictionary() []FileDoc {
	return []FileDoc{
		{FileHalos, "Per-snapshot friends-of-friends (FOF) dark matter halo catalog with spherical-overdensity (SOD) profile masses; one row per halo; keyed by fof_halo_tag; available for every simulation and timestep"},
		{FileGalaxies, "Per-snapshot galaxy catalog produced by the hydrodynamics and sub-grid galaxy formation model; one row per galaxy; galaxies link to their host dark matter halo through fof_halo_tag"},
		{FileParticles, "Downsampled raw particle snapshot with positions, velocities and gravitational potential; one row per particle; used for spatial and phase-space analyses"},
		{FileCores, "Halo core particle catalog tracking the dense centers that survive mergers; one row per core; links to halos through fof_halo_tag"},
		{FileMergerTree, "Per-run halo merger tree: rows record a victim halo absorbed by a target halo at a merge step; used by the halo tracking tool to follow halos across timesteps"},
	}
}

// ColumnDictionary returns the column dictionary for every file family.
func ColumnDictionary() []ColumnDoc {
	return []ColumnDoc{
		// haloproperties
		{"fof_halo_tag", FileHalos, "unique identifier tag of the friends-of-friends dark matter halo, stable across timesteps of the same simulation, used to match halos between snapshots and to join galaxies to their host halo", true},
		{"fof_halo_count", FileHalos, "number of N-body particles belonging to the friends-of-friends halo; a proxy for halo size and mass; the largest halos have the highest particle count", true},
		{"fof_halo_mass", FileHalos, "total friends-of-friends halo mass in Msun/h summed over member particles; the primary halo mass measure", true},
		{"fof_halo_center_x", FileHalos, "comoving x coordinate of the halo density center in Mpc/h within the periodic simulation box", false},
		{"fof_halo_center_y", FileHalos, "comoving y coordinate of the halo density center in Mpc/h within the periodic simulation box", false},
		{"fof_halo_center_z", FileHalos, "comoving z coordinate of the halo density center in Mpc/h within the periodic simulation box", false},
		{"fof_halo_mean_vx", FileHalos, "mean peculiar velocity of halo member particles along x in km/s", false},
		{"fof_halo_mean_vy", FileHalos, "mean peculiar velocity of halo member particles along y in km/s", false},
		{"fof_halo_mean_vz", FileHalos, "mean peculiar velocity of halo member particles along z in km/s", false},
		{"fof_halo_vel_disp", FileHalos, "one-dimensional velocity dispersion of halo member particles in km/s; measures the depth of the gravitational potential well", false},
		{"fof_halo_ke", FileHalos, "total kinetic energy of the halo in Msun (km/s)^2 computed from member particle velocities", false},
		{"sod_halo_M500c", FileHalos, "mass enclosed within the radius where the mean density is 500 times the critical density of the universe, in a spherical overdensity halo, in Msun/h", true},
		{"sod_halo_R500c", FileHalos, "radius in Mpc/h enclosing a mean density of 500 times the critical density in the spherical overdensity profile", false},
		{"sod_halo_MGas500c", FileHalos, "hot gas mass enclosed within the radius of density 500 times the critical density in a spherical overdensity halo, in Msun/h; the numerator of the gas-mass fraction", true},
		{"sod_halo_cdelta", FileHalos, "NFW concentration parameter of the spherical overdensity density profile fit", false},
		// galaxyproperties
		{"gal_tag", FileGalaxies, "unique identifier tag of the galaxy within the simulation", true},
		{"fof_halo_tag", FileGalaxies, "identifier tag of the friends-of-friends dark matter halo hosting this galaxy; join key to the halo catalog", true},
		{"gal_is_central", FileGalaxies, "flag equal to 1 for the central galaxy of its host halo and 0 for satellite galaxies", false},
		{"gal_stellar_mass", FileGalaxies, "stellar mass of the galaxy in Msun/h formed by the sub-grid star formation model; the numerator of the stellar-to-halo mass relation", true},
		{"gal_gas_mass", FileGalaxies, "cold gas mass of the galaxy in Msun/h available for star formation, reduced by stellar feedback winds", true},
		{"gal_sfr", FileGalaxies, "instantaneous star formation rate of the galaxy in Msun/yr", false},
		{"gal_bh_mass", FileGalaxies, "mass of the central supermassive black hole in Msun/h grown from the AGN seed mass by density-boosted accretion", false},
		{"gal_x", FileGalaxies, "comoving x coordinate of the galaxy in Mpc/h", false},
		{"gal_y", FileGalaxies, "comoving y coordinate of the galaxy in Mpc/h", false},
		{"gal_z", FileGalaxies, "comoving z coordinate of the galaxy in Mpc/h", false},
		{"gal_vx", FileGalaxies, "peculiar velocity of the galaxy along x in km/s", false},
		{"gal_vy", FileGalaxies, "peculiar velocity of the galaxy along y in km/s", false},
		{"gal_vz", FileGalaxies, "peculiar velocity of the galaxy along z in km/s", false},
		{"gal_kinetic_energy", FileGalaxies, "kinetic energy of the galaxy in Msun (km/s)^2 from its total baryonic mass and peculiar velocity", false},
		// particles
		{"particle_id", FileParticles, "unique identifier of the downsampled N-body particle, stable across timesteps", false},
		{"x", FileParticles, "comoving x coordinate of the particle in Mpc/h", false},
		{"y", FileParticles, "comoving y coordinate of the particle in Mpc/h", false},
		{"z", FileParticles, "comoving z coordinate of the particle in Mpc/h", false},
		{"vx", FileParticles, "peculiar velocity of the particle along x in km/s", false},
		{"vy", FileParticles, "peculiar velocity of the particle along y in km/s", false},
		{"vz", FileParticles, "peculiar velocity of the particle along z in km/s", false},
		{"phi", FileParticles, "gravitational potential at the particle position in (km/s)^2", false},
		// coreproperties
		{"core_tag", FileCores, "unique identifier of the halo core particle", false},
		{"fof_halo_tag", FileCores, "identifier tag of the friends-of-friends halo currently hosting this core; join key to the halo catalog", false},
		{"core_x", FileCores, "comoving x coordinate of the core in Mpc/h", false},
		{"core_y", FileCores, "comoving y coordinate of the core in Mpc/h", false},
		{"core_z", FileCores, "comoving z coordinate of the core in Mpc/h", false},
		{"core_radius", FileCores, "characteristic radius of the core in Mpc/h", false},
		{"core_infall_mass", FileCores, "mass of the core's progenitor halo at infall in Msun/h", false},
		{"core_infall_step", FileCores, "simulation timestep at which the core's progenitor fell into the current host", false},
		// mergertree
		{"victim_tag", FileMergerTree, "halo tag of the smaller halo that merges away and disappears from later snapshots", false},
		{"target_tag", FileMergerTree, "halo tag of the larger halo that absorbs the victim and carries its mass forward", false},
		{"merge_step", FileMergerTree, "simulation timestep at which the merger happens; the victim exists strictly before this step", false},
	}
}

// ColumnsOf returns the exact column labels of a file family, in schema
// order, derived from the dictionary.
func ColumnsOf(fileType string) []string {
	var out []string
	for _, d := range ColumnDictionary() {
		if d.FileType == fileType {
			out = append(out, d.Column)
		}
	}
	return out
}

// LookupColumn returns the dictionary entry for (fileType, column).
func LookupColumn(fileType, column string) (ColumnDoc, bool) {
	for _, d := range ColumnDictionary() {
		if d.FileType == fileType && d.Column == column {
			return d, true
		}
	}
	return ColumnDoc{}, false
}
