package hacc

import (
	"math"
	"testing"
	"testing/quick"

	"infera/internal/dataframe"
	"infera/internal/gio"
)

func tinySpec() Spec {
	return Spec{
		Runs:             2,
		Steps:            []int{99, 350, 624},
		HalosPerRun:      60,
		ParticlesPerStep: 200,
		BoxSize:          128,
		Seed:             7,
	}
}

func TestSpecValidate(t *testing.T) {
	good := tinySpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Spec{
		{Runs: 0, Steps: []int{1}, HalosPerRun: 5, BoxSize: 1},
		{Runs: 1, Steps: nil, HalosPerRun: 5, BoxSize: 1},
		{Runs: 1, Steps: []int{1}, HalosPerRun: 1, BoxSize: 1},
		{Runs: 1, Steps: []int{1}, HalosPerRun: 5, BoxSize: 0},
		{Runs: 1, Steps: []int{700}, HalosPerRun: 5, BoxSize: 1},
		{Runs: 1, Steps: []int{5, 5}, HalosPerRun: 5, BoxSize: 1},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestScaleFactorMonotone(t *testing.T) {
	if a := ScaleFactor(FinalStep); math.Abs(a-1) > 1e-12 {
		t.Errorf("a(final) = %v, want 1", a)
	}
	prev := 0.0
	for s := 0; s <= FinalStep; s += 25 {
		a := ScaleFactor(s)
		if a <= prev {
			t.Fatalf("scale factor not increasing at step %d", s)
		}
		prev = a
	}
	if z := Redshift(FinalStep); math.Abs(z) > 1e-9 {
		t.Errorf("z(final) = %v, want 0", z)
	}
}

func TestSampleParamsInRangeAndDeterministic(t *testing.T) {
	for run := 0; run < 16; run++ {
		p := SampleParams(3, run, 16)
		q := SampleParams(3, run, 16)
		if p != q {
			t.Fatalf("params not deterministic for run %d", run)
		}
		if p.FSN < paramLo.FSN || p.FSN > paramHi.FSN ||
			p.LogVSN < paramLo.LogVSN || p.LogVSN > paramHi.LogVSN ||
			p.LogTAGN < paramLo.LogTAGN || p.LogTAGN > paramHi.LogTAGN ||
			p.BetaBH < paramLo.BetaBH || p.BetaBH > paramHi.BetaBH ||
			p.MSeed < paramLo.MSeed || p.MSeed > paramHi.MSeed {
			t.Errorf("run %d params out of range: %v", run, p)
		}
	}
	if SampleParams(3, 0, 16) == SampleParams(4, 0, 16) {
		t.Error("different seeds should give different params")
	}
}

func TestSnapshotDeterministicAndOrderIndependent(t *testing.T) {
	spec := tinySpec()
	a, err := Snapshot(spec, 1, 350, FileHalos)
	if err != nil {
		t.Fatal(err)
	}
	// Regenerate after touching other steps/runs: must be identical.
	if _, err := Snapshot(spec, 0, 624, FileGalaxies); err != nil {
		t.Fatal(err)
	}
	b, err := Snapshot(spec, 1, 350, FileHalos)
	if err != nil {
		t.Fatal(err)
	}
	if !dataframe.Equal(a, b) {
		t.Error("halo snapshot not deterministic")
	}
}

func TestHaloMassGrowthAndRanking(t *testing.T) {
	spec := tinySpec()
	early, _ := Snapshot(spec, 0, 99, FileHalos)
	late, _ := Snapshot(spec, 0, 624, FileHalos)
	me := early.MustColumn("fof_halo_mass").F
	ml := late.MustColumn("fof_halo_mass").F
	// Tag 0 is the most massive at the final step, and masses grow.
	if late.MustColumn("fof_halo_tag").I[0] != 0 {
		t.Errorf("first halo tag = %d, want 0", late.MustColumn("fof_halo_tag").I[0])
	}
	for i := 1; i < len(ml); i++ {
		if ml[i] > ml[0] {
			t.Fatalf("tag-0 halo is not the most massive at final step")
		}
	}
	var sumE, sumL float64
	for _, v := range me {
		sumE += v
	}
	for _, v := range ml {
		sumL += v
	}
	if sumL <= sumE {
		t.Errorf("total halo mass should grow: early %g, late %g", sumE, sumL)
	}
}

func TestMergersRemoveVictims(t *testing.T) {
	spec := tinySpec()
	tree, _ := Snapshot(spec, 0, 0, FileMergerTree)
	if tree.NumRows() == 0 {
		t.Skip("no mergers sampled in tiny spec (unexpected but possible)")
	}
	victims := tree.MustColumn("victim_tag").I
	steps := tree.MustColumn("merge_step").I
	early, _ := Snapshot(spec, 0, 99, FileHalos)
	late, _ := Snapshot(spec, 0, 624, FileHalos)
	hasTag := func(f *dataframe.Frame, tag int64) bool {
		for _, v := range f.MustColumn("fof_halo_tag").I {
			if v == tag {
				return true
			}
		}
		return false
	}
	for i, v := range victims {
		if int(steps[i]) > 99 && !hasTag(early, v) {
			t.Errorf("victim %d should exist at step 99 (merges at %d)", v, steps[i])
		}
		if hasTag(late, v) {
			t.Errorf("victim %d still present at final step", v)
		}
	}
	if late.NumRows() >= early.NumRows() {
		t.Errorf("halo count should shrink from mergers: %d -> %d", early.NumRows(), late.NumRows())
	}
}

func TestGalaxiesJoinToHalos(t *testing.T) {
	spec := tinySpec()
	halos, _ := Snapshot(spec, 1, 624, FileHalos)
	gals, _ := Snapshot(spec, 1, 624, FileGalaxies)
	htags := map[int64]bool{}
	for _, v := range halos.MustColumn("fof_halo_tag").I {
		htags[v] = true
	}
	centrals := map[int64]int{}
	for i, v := range gals.MustColumn("fof_halo_tag").I {
		if !htags[v] {
			t.Fatalf("galaxy %d references missing halo %d", i, v)
		}
		if gals.MustColumn("gal_is_central").I[i] == 1 {
			centrals[v]++
		}
	}
	for tag, n := range centrals {
		if n != 1 {
			t.Errorf("halo %d has %d central galaxies", tag, n)
		}
	}
	if len(centrals) != halos.NumRows() {
		t.Errorf("central galaxies %d != halos %d", len(centrals), halos.NumRows())
	}
}

func TestSMHMSeedMassEffects(t *testing.T) {
	// Higher seed mass (above threshold) must yield higher stellar-mass
	// efficiency than a far-below-threshold seed, all else equal.
	spec := tinySpec()
	m := newRunModel(spec, 0)
	m.params.MSeed = 1e6
	hi := m.smhm(624)
	m.params.MSeed = 1e5
	lo := m.smhm(624)
	if hi.eps <= lo.eps {
		t.Errorf("eps(high seed) %g should exceed eps(low seed) %g", hi.eps, lo.eps)
	}
	// Scatter is minimized at the optimal seed mass.
	m.params.MSeed = math.Pow(10, smhmOptimalLogMSeed)
	opt := m.smhm(624)
	if opt.sigma >= lo.sigma {
		t.Errorf("sigma at optimum %g not below sigma at low seed %g", opt.sigma, lo.sigma)
	}
}

func TestGasFractionSlopeRespondsToTAGN(t *testing.T) {
	weak := Params{LogTAGN: 7.0}
	strong := Params{LogTAGN: 8.0}
	// Gas fraction at low mass suppressed more by strong AGN.
	lowM, highM := 1e13, 3e14
	rw := gasFraction(lowM, FinalStep, weak) / gasFraction(highM, FinalStep, weak)
	rs := gasFraction(lowM, FinalStep, strong) / gasFraction(highM, FinalStep, strong)
	if rs >= rw {
		t.Errorf("strong AGN should steepen fgas-M relation: ratio %g vs %g", rs, rw)
	}
}

func TestGenerateAndLoadCatalog(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec()
	cat, err := Generate(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	// runs × steps × 4 file types + runs × 1 merger tree.
	wantFiles := spec.Runs*len(spec.Steps)*len(FileTypes) + spec.Runs
	if len(cat.Files) != wantFiles {
		t.Errorf("catalog files = %d, want %d", len(cat.Files), wantFiles)
	}
	if cat.TotalBytes() <= 0 {
		t.Error("TotalBytes should be positive")
	}

	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumRuns() != spec.Runs || len(loaded.Files) != wantFiles {
		t.Errorf("loaded catalog shape wrong: %d runs, %d files", loaded.NumRuns(), len(loaded.Files))
	}
	if loaded.Runs[1].Params != cat.Runs[1].Params {
		t.Error("params not preserved through catalog")
	}

	// A written file must match the in-memory snapshot exactly.
	entry, ok := loaded.Find(1, 350, FileHalos)
	if !ok {
		t.Fatal("missing halo file entry")
	}
	r, err := gio.Open(loaded.AbsPath(entry))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	onDisk, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Snapshot(spec, 1, 350, FileHalos)
	if !dataframe.Equal(onDisk, want) {
		t.Error("on-disk snapshot differs from model snapshot")
	}
	if r.Meta()["simulation"] != "1" || r.Meta()["step"] != "350" {
		t.Errorf("file meta = %v", r.Meta())
	}
}

func TestCatalogQueries(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec()
	cat, err := Generate(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	halosSim0 := cat.FilesOf(0, -1, FileHalos)
	if len(halosSim0) != len(spec.Steps) {
		t.Errorf("FilesOf(0,-1,halos) = %d, want %d", len(halosSim0), len(spec.Steps))
	}
	all624 := cat.FilesOf(-1, 624, "")
	if len(all624) != spec.Runs*len(FileTypes) {
		t.Errorf("FilesOf(-1,624,'') = %d", len(all624))
	}
	if _, ok := cat.Find(0, 99, FileGalaxies); !ok {
		t.Error("Find missed existing file")
	}
	if _, ok := cat.Find(9, 99, FileGalaxies); ok {
		t.Error("Find hit nonexistent run")
	}
	if s := cat.Describe(); len(s) == 0 {
		t.Error("Describe empty")
	}
}

func TestMetadataDictionariesCoverSchemas(t *testing.T) {
	spec := tinySpec()
	for _, typ := range append(append([]string{}, FileTypes...), FileMergerTree) {
		f, err := Snapshot(spec, 0, spec.Steps[0], typ)
		if err != nil {
			t.Fatal(err)
		}
		dictCols := ColumnsOf(typ)
		if len(dictCols) != f.NumCols() {
			t.Errorf("%s: dictionary has %d columns, schema has %d", typ, len(dictCols), f.NumCols())
		}
		for _, name := range f.Names() {
			if _, ok := LookupColumn(typ, name); !ok {
				t.Errorf("%s: column %q missing from dictionary", typ, name)
			}
		}
	}
	if len(FileDictionary()) < 5 {
		t.Error("file dictionary too small")
	}
	// The paper's example label must carry its rich description.
	d, ok := LookupColumn(FileHalos, "sod_halo_MGas500c")
	if !ok || len(d.Description) < 40 || !d.Important {
		t.Errorf("sod_halo_MGas500c dictionary entry wrong: %+v", d)
	}
}

func TestNoiseHelpers(t *testing.T) {
	// uniform01 in (0,1); normal roughly standard over many draws.
	var sum, sumsq float64
	n := 2000
	for i := 0; i < n; i++ {
		u := uniform01(uint64(i), 'q')
		if u <= 0 || u >= 1 {
			t.Fatalf("uniform01 out of range: %v", u)
		}
		x := normal(uint64(i), 'n')
		sum += x
		sumsq += x * x
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.1 || math.Abs(std-1) > 0.1 {
		t.Errorf("normal stats: mean %v std %v", mean, std)
	}
	if poisson(0) != 0 {
		t.Error("poisson(0) != 0")
	}
	big := poisson(100, 1)
	if big < 50 || big > 150 {
		t.Errorf("poisson(100) = %d implausible", big)
	}
}

func TestQuickPositionsInBox(t *testing.T) {
	spec := tinySpec()
	m := newRunModel(spec, 0)
	prop := func(hi uint8, si uint8) bool {
		i := int(hi) % len(m.halos)
		step := int(si) % (FinalStep + 1)
		x, y, z := m.positionAt(i, step)
		return x >= 0 && x < spec.BoxSize && y >= 0 && y < spec.BoxSize && z >= 0 && z < spec.BoxSize
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickMassPositive(t *testing.T) {
	spec := tinySpec()
	m := newRunModel(spec, 1)
	prop := func(hi uint8, si uint8) bool {
		i := int(hi) % len(m.halos)
		step := int(si) % (FinalStep + 1)
		mass := m.massAt(i, step)
		return mass > 0 && !math.IsNaN(mass) && !math.IsInf(mass, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

var benchSink *dataframe.Frame

func BenchmarkHaloSnapshot(b *testing.B) {
	spec := DefaultSpec()
	m := newRunModel(spec, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = m.HaloFrame(624)
	}
}
