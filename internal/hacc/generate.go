package hacc

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"infera/internal/dataframe"
	"infera/internal/gio"
)

// File type names, mirroring HACC data product families.
const (
	FileHalos      = "haloproperties"
	FileGalaxies   = "galaxyproperties"
	FileParticles  = "particles"
	FileCores      = "coreproperties"
	FileMergerTree = "mergertree"
)

// FileTypes lists the per-snapshot file types (the merger tree is per run).
var FileTypes = []string{FileHalos, FileGalaxies, FileParticles, FileCores}

// HaloFrame builds the haloproperties snapshot of one run at one step.
func (m *runModel) HaloFrame(step int) *dataframe.Frame {
	var (
		tags, counts               []int64
		mass, x, y, z, vx, vy, vz  []float64
		vd, ke, m500, r500, mg, cd []float64
	)
	for i := range m.halos {
		if !m.aliveAt(i, step) {
			continue
		}
		h := &m.halos[i]
		hm := m.massAt(i, step)
		px, py, pz := m.positionAt(i, step)
		sigma := velDisp(hm, h.tag, step)
		m5 := 0.72 * hm * (1 + 0.03*normal(uint64(h.tag), uint64(step), '5'))
		tags = append(tags, h.tag)
		counts = append(counts, int64(math.Max(10, math.Round(hm/particleMass))))
		mass = append(mass, hm)
		x = append(x, px)
		y = append(y, py)
		z = append(z, pz)
		vx = append(vx, h.vx)
		vy = append(vy, h.vy)
		vz = append(vz, h.vz)
		vd = append(vd, sigma)
		ke = append(ke, 1.5*hm*sigma*sigma)
		m500 = append(m500, m5)
		r500 = append(r500, 0.62*math.Pow(m5/1e14, 1.0/3.0))
		mg = append(mg, gasFraction(m5, step, m.params)*m5)
		cd = append(cd, h.conc)
	}
	return dataframe.MustFromColumns(
		dataframe.NewInt("fof_halo_tag", tags),
		dataframe.NewInt("fof_halo_count", counts),
		dataframe.NewFloat("fof_halo_mass", mass),
		dataframe.NewFloat("fof_halo_center_x", x),
		dataframe.NewFloat("fof_halo_center_y", y),
		dataframe.NewFloat("fof_halo_center_z", z),
		dataframe.NewFloat("fof_halo_mean_vx", vx),
		dataframe.NewFloat("fof_halo_mean_vy", vy),
		dataframe.NewFloat("fof_halo_mean_vz", vz),
		dataframe.NewFloat("fof_halo_vel_disp", vd),
		dataframe.NewFloat("fof_halo_ke", ke),
		dataframe.NewFloat("sod_halo_M500c", m500),
		dataframe.NewFloat("sod_halo_R500c", r500),
		dataframe.NewFloat("sod_halo_MGas500c", mg),
		dataframe.NewFloat("sod_halo_cdelta", cd),
	)
}

// GalaxyFrame builds the galaxyproperties snapshot: one central galaxy per
// surviving halo plus its satellites.
func (m *runModel) GalaxyFrame(step int) *dataframe.Frame {
	var (
		gtags, htags, central          []int64
		mstar, mgas, sfr, bh           []float64
		gx, gy, gz, gvx, gvy, gvz, gke []float64
	)
	p := m.params
	z := Redshift(step)
	vsnSupp := 1 - 0.5*(p.LogVSN-paramLo.LogVSN)/(paramHi.LogVSN-paramLo.LogVSN)
	for i := range m.halos {
		if !m.aliveAt(i, step) {
			continue
		}
		h := &m.halos[i]
		hm := m.massAt(i, step)
		cx, cy, cz := m.positionAt(i, step)
		sigma := velDisp(hm, h.tag, step)
		rad := r200(hm)
		csm := m.centralStellarMass(hm, h.tag, step)
		for g := 0; g <= h.nSat; g++ {
			gt := uint64(h.tag)<<8 | uint64(g)
			ms := csm
			isCentral := int64(1)
			dx, dy, dz := 0.0, 0.0, 0.0
			if g > 0 {
				isCentral = 0
				ms = csm * 0.25 * math.Pow(uniform01(gt, 's'), 1.5)
				r := rad * math.Pow(uniform01(gt, 'r'), 0.7)
				theta := math.Acos(2*uniform01(gt, 't') - 1)
				phi := 2 * math.Pi * uniform01(gt, 'p')
				dx = r * math.Sin(theta) * math.Cos(phi)
				dy = r * math.Sin(theta) * math.Sin(phi)
				dz = r * math.Cos(theta)
			}
			gasFrac := 0.4 * math.Sqrt(1+z) * vsnSupp *
				math.Exp(0.1*normal(gt, uint64(step), 'G'))
			gm := ms * gasFrac
			rate := ms * 1e-10 * math.Pow(1+z, 1.8) * math.Exp(0.3*normal(gt, uint64(step), 'F'))
			bhm := p.MSeed + 1.5e-3*ms*math.Pow(ms/1e10+1, 0.25*p.BetaBH)
			vgx := h.vx + sigma*normal(gt, 'a')
			vgy := h.vy + sigma*normal(gt, 'b')
			vgz := h.vz + sigma*normal(gt, 'c')
			gtags = append(gtags, int64(gt))
			htags = append(htags, h.tag)
			central = append(central, isCentral)
			mstar = append(mstar, ms)
			mgas = append(mgas, gm)
			sfr = append(sfr, rate)
			bh = append(bh, bhm)
			gx = append(gx, cx+dx)
			gy = append(gy, cy+dy)
			gz = append(gz, cz+dz)
			gvx = append(gvx, vgx)
			gvy = append(gvy, vgy)
			gvz = append(gvz, vgz)
			gke = append(gke, 0.5*(ms+gm)*(vgx*vgx+vgy*vgy+vgz*vgz))
		}
	}
	return dataframe.MustFromColumns(
		dataframe.NewInt("gal_tag", gtags),
		dataframe.NewInt("fof_halo_tag", htags),
		dataframe.NewInt("gal_is_central", central),
		dataframe.NewFloat("gal_stellar_mass", mstar),
		dataframe.NewFloat("gal_gas_mass", mgas),
		dataframe.NewFloat("gal_sfr", sfr),
		dataframe.NewFloat("gal_bh_mass", bh),
		dataframe.NewFloat("gal_x", gx),
		dataframe.NewFloat("gal_y", gy),
		dataframe.NewFloat("gal_z", gz),
		dataframe.NewFloat("gal_vx", gvx),
		dataframe.NewFloat("gal_vy", gvy),
		dataframe.NewFloat("gal_vz", gvz),
		dataframe.NewFloat("gal_kinetic_energy", gke),
	)
}

// ParticleFrame builds a downsampled raw-particle snapshot: most particles
// cluster around halos (mass-weighted toward the most massive ones), the
// rest trace a uniform background.
func (m *runModel) ParticleFrame(step int) *dataframe.Frame {
	n := m.spec.ParticlesPerStep
	alive := make([]int, 0, len(m.halos))
	for i := range m.halos {
		if m.aliveAt(i, step) {
			alive = append(alive, i)
		}
	}
	ids := make([]int64, n)
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	vx := make([]float64, n)
	vy := make([]float64, n)
	vz := make([]float64, n)
	phi := make([]float64, n)
	seed := uint64(m.spec.Seed)
	r := uint64(m.run)
	for k := 0; k < n; k++ {
		pk := uint64(k)
		ids[k] = int64(m.run)*1_000_000_000 + int64(k)
		if uniform01(seed, r, pk, 'B') < 0.3 || len(alive) == 0 {
			x[k] = uniform01(seed, r, pk, 'X') * m.spec.BoxSize
			y[k] = uniform01(seed, r, pk, 'Y') * m.spec.BoxSize
			z[k] = uniform01(seed, r, pk, 'Z') * m.spec.BoxSize
			vx[k] = normal(seed, r, pk, 'U') * 120
			vy[k] = normal(seed, r, pk, 'V') * 120
			vz[k] = normal(seed, r, pk, 'W') * 120
			phi[k] = -1e4 * uniform01(seed, r, pk, 'P')
			continue
		}
		// Quadratic bias toward low index = high mass.
		hi := alive[int(math.Pow(uniform01(seed, r, pk, 'H'), 2)*float64(len(alive)))]
		hm := m.massAt(hi, step)
		cx, cy, cz := m.positionAt(hi, step)
		rad := r200(hm)
		sigma := velDisp(hm, m.halos[hi].tag, step)
		x[k] = cx + normal(seed, r, pk, 'X')*rad/2
		y[k] = cy + normal(seed, r, pk, 'Y')*rad/2
		z[k] = cz + normal(seed, r, pk, 'Z')*rad/2
		vx[k] = m.halos[hi].vx + normal(seed, r, pk, 'U')*sigma
		vy[k] = m.halos[hi].vy + normal(seed, r, pk, 'V')*sigma
		vz[k] = m.halos[hi].vz + normal(seed, r, pk, 'W')*sigma
		phi[k] = -1.5 * sigma * sigma
	}
	return dataframe.MustFromColumns(
		dataframe.NewInt("particle_id", ids),
		dataframe.NewFloat("x", x),
		dataframe.NewFloat("y", y),
		dataframe.NewFloat("z", z),
		dataframe.NewFloat("vx", vx),
		dataframe.NewFloat("vy", vy),
		dataframe.NewFloat("vz", vz),
		dataframe.NewFloat("phi", phi),
	)
}

// CoreFrame builds the coreproperties snapshot: a handful of core particles
// per surviving halo tracking infall history.
func (m *runModel) CoreFrame(step int) *dataframe.Frame {
	var (
		ctags, htags, infallStep []int64
		x, y, z, radius, infallM []float64
	)
	for i := range m.halos {
		if !m.aliveAt(i, step) {
			continue
		}
		h := &m.halos[i]
		hm := m.massAt(i, step)
		cx, cy, cz := m.positionAt(i, step)
		rad := r200(hm)
		ncores := 1 + int(hm/5e13)
		if ncores > 8 {
			ncores = 8
		}
		for c := 0; c < ncores; c++ {
			ck := uint64(h.tag)<<8 | uint64(c) | 0xC0DE<<32
			ctags = append(ctags, int64(ck))
			htags = append(htags, h.tag)
			x = append(x, cx+normal(ck, '1')*rad/4)
			y = append(y, cy+normal(ck, '2')*rad/4)
			z = append(z, cz+normal(ck, '3')*rad/4)
			radius = append(radius, 0.02+0.05*uniform01(ck, '4'))
			infallM = append(infallM, hm*0.01*uniform01(ck, '5'))
			infallStep = append(infallStep, int64(uniform01(ck, '6')*float64(step+1)))
		}
	}
	return dataframe.MustFromColumns(
		dataframe.NewInt("core_tag", ctags),
		dataframe.NewInt("fof_halo_tag", htags),
		dataframe.NewFloat("core_x", x),
		dataframe.NewFloat("core_y", y),
		dataframe.NewFloat("core_z", z),
		dataframe.NewFloat("core_radius", radius),
		dataframe.NewFloat("core_infall_mass", infallM),
		dataframe.NewInt("core_infall_step", infallStep),
	)
}

// MergerTreeFrame builds the per-run merger tree table: each row records a
// victim halo absorbed by a target halo at a step.
func (m *runModel) MergerTreeFrame() *dataframe.Frame {
	var victims, targets, steps []int64
	for i := range m.halos {
		h := &m.halos[i]
		if h.mergeStep >= 0 {
			victims = append(victims, h.tag)
			targets = append(targets, m.halos[h.mergeInto].tag)
			steps = append(steps, int64(h.mergeStep))
		}
	}
	return dataframe.MustFromColumns(
		dataframe.NewInt("victim_tag", victims),
		dataframe.NewInt("target_tag", targets),
		dataframe.NewInt("merge_step", steps),
	)
}

// Snapshot regenerates the frame for (run, step, fileType) directly from
// the model without touching disk. It is the reference against which the
// on-disk files are validated in tests.
func Snapshot(spec Spec, run, step int, fileType string) (*dataframe.Frame, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if run < 0 || run >= spec.Runs {
		return nil, fmt.Errorf("hacc: run %d out of range [0,%d)", run, spec.Runs)
	}
	m := newRunModel(spec, run)
	switch fileType {
	case FileHalos:
		return m.HaloFrame(step), nil
	case FileGalaxies:
		return m.GalaxyFrame(step), nil
	case FileParticles:
		return m.ParticleFrame(step), nil
	case FileCores:
		return m.CoreFrame(step), nil
	case FileMergerTree:
		return m.MergerTreeFrame(), nil
	default:
		return nil, fmt.Errorf("hacc: unknown file type %q", fileType)
	}
}

// RunParams returns the sub-grid parameter vector assigned to a run.
func RunParams(spec Spec, run int) Params {
	return SampleParams(spec.Seed, run, spec.Runs)
}

// Generate writes a full synthetic ensemble under dir and returns its
// catalog. Layout (mirroring the HACC data portal structure):
//
//	dir/ensemble.json
//	dir/sim_00/m000p.mergertree.gio
//	dir/sim_00/step_0099/m000p-99.haloproperties.gio
//	dir/sim_00/step_0099/m000p-99.galaxyproperties.gio
//	...
func Generate(dir string, spec Spec) (*Catalog, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cat := &Catalog{Dir: dir, Spec: spec}

	// Runs are independent (every snapshot is a pure function of the run
	// seed), so generate them in parallel, one worker per core, and stitch
	// the catalog together in run order afterwards for determinism.
	type runOutput struct {
		info  RunInfo
		files []FileEntry
		err   error
	}
	outputs := make([]runOutput, spec.Runs)
	workers := runtime.GOMAXPROCS(0)
	if workers > spec.Runs {
		workers = spec.Runs
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := range next {
				outputs[run] = generateRun(dir, spec, run)
			}
		}()
	}
	for run := 0; run < spec.Runs; run++ {
		next <- run
	}
	close(next)
	wg.Wait()

	for run := 0; run < spec.Runs; run++ {
		out := outputs[run]
		if out.err != nil {
			return nil, out.err
		}
		cat.Runs = append(cat.Runs, out.info)
		cat.Files = append(cat.Files, out.files...)
	}
	if err := cat.save(); err != nil {
		return nil, err
	}
	return cat, nil
}

// generateRun writes every file of one simulation run and returns its
// catalog entries (paths relative to dir).
func generateRun(dir string, spec Spec, run int) (out struct {
	info  RunInfo
	files []FileEntry
	err   error
}) {
	m := newRunModel(spec, run)
	runDir := filepath.Join(dir, fmt.Sprintf("sim_%02d", run))
	if err := os.MkdirAll(runDir, 0o755); err != nil {
		out.err = err
		return out
	}
	out.info = RunInfo{Index: run, Params: m.params, Dir: fmt.Sprintf("sim_%02d", run)}

	record := func(step int, typ, path string, rows int) error {
		var size int64
		if st, err := os.Stat(path); err == nil {
			size = st.Size()
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			rel = path
		}
		out.files = append(out.files, FileEntry{Run: run, Step: step, Type: typ, Path: rel, Bytes: size, Rows: rows})
		return nil
	}

	treePath := filepath.Join(runDir, "m000p.mergertree.gio")
	tree := m.MergerTreeFrame()
	if err := writeSnapshot(treePath, tree, run, -1, FileMergerTree); err != nil {
		out.err = err
		return out
	}
	if err := record(-1, FileMergerTree, treePath, tree.NumRows()); err != nil {
		out.err = err
		return out
	}

	for _, step := range spec.Steps {
		stepDir := filepath.Join(runDir, fmt.Sprintf("step_%04d", step))
		if err := os.MkdirAll(stepDir, 0o755); err != nil {
			out.err = err
			return out
		}
		frames := map[string]*dataframe.Frame{
			FileHalos:     m.HaloFrame(step),
			FileGalaxies:  m.GalaxyFrame(step),
			FileParticles: m.ParticleFrame(step),
			FileCores:     m.CoreFrame(step),
		}
		for _, typ := range FileTypes {
			path := filepath.Join(stepDir, fmt.Sprintf("m000p-%d.%s.gio", step, typ))
			if err := writeSnapshot(path, frames[typ], run, step, typ); err != nil {
				out.err = err
				return out
			}
			if err := record(step, typ, path, frames[typ].NumRows()); err != nil {
				out.err = err
				return out
			}
		}
	}
	return out
}

func writeSnapshot(path string, f *dataframe.Frame, run, step int, typ string) error {
	meta := map[string]string{
		"simulation": fmt.Sprintf("%d", run),
		"type":       typ,
	}
	if step >= 0 {
		meta["step"] = fmt.Sprintf("%d", step)
	}
	return gio.WriteFile(path, f, meta)
}
