package hacc

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// FileEntry describes one data file in the ensemble catalog.
type FileEntry struct {
	Run   int    `json:"run"`
	Step  int    `json:"step"` // -1 for per-run files (merger tree)
	Type  string `json:"type"`
	Path  string `json:"path"` // absolute or catalog-dir-relative
	Bytes int64  `json:"bytes"`
	Rows  int    `json:"rows"`
}

// RunInfo describes one simulation run.
type RunInfo struct {
	Index  int    `json:"index"`
	Params Params `json:"params"`
	Dir    string `json:"dir"`
}

// Catalog is the ensemble index: what runs exist, with what sub-grid
// parameters, and which files hold which snapshot of which entity type.
// The data-loading agent plans its reads from this index alone — the
// ensemble-structure "dictionary" of §3.1 — never by scanning data files.
type Catalog struct {
	Dir   string      `json:"-"`
	Spec  Spec        `json:"spec"`
	Runs  []RunInfo   `json:"runs"`
	Files []FileEntry `json:"files"`
}

const catalogName = "ensemble.json"

func (c *Catalog) addFile(run, step int, typ, path string, rows int) {
	var size int64
	if st, err := os.Stat(path); err == nil {
		size = st.Size()
	}
	rel, err := filepath.Rel(c.Dir, path)
	if err != nil {
		rel = path
	}
	c.Files = append(c.Files, FileEntry{Run: run, Step: step, Type: typ, Path: rel, Bytes: size, Rows: rows})
}

func (c *Catalog) save() error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(c.Dir, catalogName), data, 0o644)
}

// Load reads an ensemble catalog from dir.
func Load(dir string) (*Catalog, error) {
	data, err := os.ReadFile(filepath.Join(dir, catalogName))
	if err != nil {
		return nil, fmt.Errorf("hacc: load catalog: %w", err)
	}
	c := &Catalog{Dir: dir}
	if err := json.Unmarshal(data, c); err != nil {
		return nil, fmt.Errorf("hacc: parse catalog: %w", err)
	}
	return c, nil
}

// AbsPath resolves a catalog file entry to an absolute path.
func (c *Catalog) AbsPath(e FileEntry) string {
	if filepath.IsAbs(e.Path) {
		return e.Path
	}
	return filepath.Join(c.Dir, e.Path)
}

// TotalBytes sums the on-disk size of every data file — the "source
// dataset size" denominator of the paper's storage-overhead metric.
func (c *Catalog) TotalBytes() int64 {
	var total int64
	for _, f := range c.Files {
		total += f.Bytes
	}
	return total
}

// Find returns the file entry for (run, step, typ).
func (c *Catalog) Find(run, step int, typ string) (FileEntry, bool) {
	for _, f := range c.Files {
		if f.Run == run && f.Step == step && f.Type == typ {
			return f, true
		}
	}
	return FileEntry{}, false
}

// FilesOf returns all entries matching the filters; run < 0 or step < -1
// or typ == "" match everything on that axis. Results are ordered by
// (run, step).
func (c *Catalog) FilesOf(run, step int, typ string) []FileEntry {
	var out []FileEntry
	for _, f := range c.Files {
		if run >= 0 && f.Run != run {
			continue
		}
		if step >= 0 && f.Step != step {
			continue
		}
		if typ != "" && f.Type != typ {
			continue
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Run != out[j].Run {
			return out[i].Run < out[j].Run
		}
		return out[i].Step < out[j].Step
	})
	return out
}

// Steps returns the snapshot steps available in the catalog.
func (c *Catalog) Steps() []int {
	return append([]int(nil), c.Spec.Steps...)
}

// NumRuns returns the run count.
func (c *Catalog) NumRuns() int { return len(c.Runs) }

// Describe renders a human-readable summary used by the planning agent's
// context (runs, parameters, steps, file inventory).
func (c *Catalog) Describe() string {
	out := fmt.Sprintf("Ensemble at %s: %d runs, %d timesteps (steps %v), %d files, %.1f MB total\n",
		c.Dir, len(c.Runs), len(c.Spec.Steps), c.Spec.Steps, len(c.Files), float64(c.TotalBytes())/1e6)
	for _, r := range c.Runs {
		out += fmt.Sprintf("  sim %d: %s\n", r.Index, r.Params)
	}
	return out
}
