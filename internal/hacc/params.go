package hacc

import (
	"fmt"
	"math"
)

// Params holds the five varied sub-grid physics parameters of the paper's
// CRK-HACC hydrodynamics ensemble (§1): the stellar feedback energy
// fraction fSN, the log of the stellar feedback kick velocity vSN, the log
// of the AGN feedback temperature jump TAGN, the slope βBH controlling the
// density-dependent boost to black-hole accretion, and the AGN seed mass
// Mseed (Msun/h).
type Params struct {
	FSN     float64 `json:"f_sn"`      // stellar feedback energy fraction, [0.3, 1.0]
	LogVSN  float64 `json:"log_v_sn"`  // log10 kick velocity [km/s], [2.0, 2.7]
	LogTAGN float64 `json:"log_t_agn"` // log10 AGN temperature jump [K], [7.0, 8.0]
	BetaBH  float64 `json:"beta_bh"`   // BH accretion density-boost slope, [0.0, 2.0]
	MSeed   float64 `json:"m_seed"`    // AGN seed mass [Msun/h], [1e5, 1e6.5]
}

// String formats the parameter vector compactly.
func (p Params) String() string {
	return fmt.Sprintf("fSN=%.3f logVSN=%.3f logTAGN=%.3f betaBH=%.3f Mseed=%.3g",
		p.FSN, p.LogVSN, p.LogTAGN, p.BetaBH, p.MSeed)
}

// Parameter ranges for ensemble sampling.
var paramLo = Params{FSN: 0.3, LogVSN: 2.0, LogTAGN: 7.0, BetaBH: 0.0, MSeed: 1e5}
var paramHi = Params{FSN: 1.0, LogVSN: 2.7, LogTAGN: 8.0, BetaBH: 2.0, MSeed: 10 * math.Pow(10, 5.5)}

// SampleParams draws the sub-grid parameter vector for run index run under
// ensemble seed. A stratified (Latin-hypercube-like) rule spreads each
// dimension across runs so small ensembles still span the ranges.
func SampleParams(seed int64, run, totalRuns int) Params {
	if totalRuns < 1 {
		totalRuns = 1
	}
	dim := func(d uint64) float64 {
		// Stratum for this run in dimension d, with jitter inside it, and a
		// per-dimension permutation so dimensions decorrelate.
		perm := int(hash64(uint64(seed), d, uint64(run)*0x9e37) % uint64(totalRuns))
		stratum := (float64(run+perm) + uniform01(uint64(seed), d, uint64(run))) / float64(totalRuns)
		return stratum - math.Floor(stratum)
	}
	lerp := func(lo, hi, t float64) float64 { return lo + (hi-lo)*t }
	logMSeedLo := math.Log10(paramLo.MSeed)
	logMSeedHi := math.Log10(paramHi.MSeed)
	return Params{
		FSN:     lerp(paramLo.FSN, paramHi.FSN, dim(1)),
		LogVSN:  lerp(paramLo.LogVSN, paramHi.LogVSN, dim(2)),
		LogTAGN: lerp(paramLo.LogTAGN, paramHi.LogTAGN, dim(3)),
		BetaBH:  lerp(paramLo.BetaBH, paramHi.BetaBH, dim(4)),
		MSeed:   math.Pow(10, lerp(logMSeedLo, logMSeedHi, dim(5))),
	}
}

// Spec configures a synthetic ensemble. The defaults (see DefaultSpec) are
// laptop-scale; the paper's ensemble (4 runs × 625 steps × 350 GB) maps to
// the same layout with larger counts.
type Spec struct {
	Runs             int     `json:"runs"`               // number of simulation runs
	Steps            []int   `json:"steps"`              // snapshot timestep numbers (subset of 0..624)
	HalosPerRun      int     `json:"halos_per_run"`      // FOF halos at the final step
	ParticlesPerStep int     `json:"particles_per_step"` // downsampled raw particles per snapshot
	BoxSize          float64 `json:"box_size"`           // comoving box edge [Mpc/h]
	Seed             int64   `json:"seed"`               // ensemble master seed
}

// FinalStep is the last snapshot number of a full HACC run in the paper.
const FinalStep = 624

// DefaultSpec returns a small ensemble suitable for tests and examples:
// 4 runs, 8 snapshots ending at step 624, 300 halos per run.
func DefaultSpec() Spec {
	return Spec{
		Runs:             4,
		Steps:            StepRange(99, FinalStep, 75),
		HalosPerRun:      300,
		ParticlesPerStep: 2000,
		BoxSize:          256,
		Seed:             1,
	}
}

// StepRange returns steps lo, lo+stride, ..., and always includes hi.
func StepRange(lo, hi, stride int) []int {
	var out []int
	for s := lo; s < hi; s += stride {
		out = append(out, s)
	}
	return append(out, hi)
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	switch {
	case s.Runs < 1:
		return fmt.Errorf("hacc: spec needs at least 1 run, got %d", s.Runs)
	case len(s.Steps) == 0:
		return fmt.Errorf("hacc: spec needs at least one timestep")
	case s.HalosPerRun < 2:
		return fmt.Errorf("hacc: spec needs at least 2 halos per run, got %d", s.HalosPerRun)
	case s.BoxSize <= 0:
		return fmt.Errorf("hacc: box size must be positive, got %g", s.BoxSize)
	}
	for i, st := range s.Steps {
		if st < 0 || st > FinalStep {
			return fmt.Errorf("hacc: step %d out of range [0,%d]", st, FinalStep)
		}
		if i > 0 && st <= s.Steps[i-1] {
			return fmt.Errorf("hacc: steps must be strictly increasing")
		}
	}
	return nil
}

// ScaleFactor maps a snapshot number to the cosmological scale factor a,
// following HACC's convention of equal steps in a from a_init to 1.
func ScaleFactor(step int) float64 {
	const aInit = 1.0 / (1.0 + 200.0) // z = 200 at step 0
	return aInit + (1.0-aInit)*float64(step+1)/float64(FinalStep+1)
}

// Redshift maps a snapshot number to redshift z = 1/a - 1.
func Redshift(step int) float64 { return 1/ScaleFactor(step) - 1 }
