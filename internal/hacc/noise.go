package hacc

import "math"

// Deterministic hash-based noise. Snapshot generation must be a pure
// function of (run seed, halo tag, timestep) so that any step of any run
// can be produced independently and reproducibly, in any order — mirroring
// how a real simulation's outputs are fixed once written. A splitmix64
// chain hashed over the identifying integers supplies uniform and normal
// variates without any shared RNG state.

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hash64 mixes an arbitrary number of integers into one 64-bit value.
func hash64(parts ...uint64) uint64 {
	h := uint64(0x243f6a8885a308d3) // pi
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return h
}

// uniform01 maps a hash to (0,1), excluding the exact endpoints.
func uniform01(parts ...uint64) float64 {
	h := hash64(parts...)
	return (float64(h>>11) + 0.5) / (1 << 53)
}

// normal returns a standard normal variate derived from the inputs via
// Box–Muller on two decorrelated uniforms.
func normal(parts ...uint64) float64 {
	u1 := uniform01(parts...)
	u2 := uniform01(append(parts, 0x5eed)...)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// poisson returns a Poisson variate with mean lambda (Knuth's method for
// small lambda, normal approximation above 30).
func poisson(lambda float64, parts ...uint64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(lambda + math.Sqrt(lambda)*normal(parts...) + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= uniform01(append(parts, uint64(k)+1)...)
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}
