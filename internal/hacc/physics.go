package hacc

import "math"

// The synthetic physics model. It is not CRK-HACC, but every relation the
// evaluation questions probe is causally present:
//
//   - halo masses follow a truncated power-law mass function and grow along
//     smooth mass-accretion histories, punctuated by mergers recorded in a
//     per-run merger tree (halo tags are stable across snapshots);
//   - SOD gas masses follow a gas-mass-fraction–mass relation whose slope
//     and normalization evolve with redshift and respond to log TAGN;
//   - galaxy stellar masses follow a double-power-law SMHM relation whose
//     efficiency saturates above a threshold AGN seed mass and whose
//     intrinsic scatter is minimized near an optimal seed mass, and which
//     responds to fSN (stellar feedback) and log TAGN;
//   - galaxy gas masses respond to the kick velocity vSN, and black-hole
//     masses respond to βBH and Mseed.
//
// All quantities are pure functions of (ensemble seed, run, halo tag,
// step), so any snapshot can be regenerated independently.

// Physical constants of the toy model.
const (
	particleMass = 2.2e9  // Msun/h per N-body particle
	minHaloMass  = 1.0e12 // Msun/h at the final step
	maxHaloMass  = 4.0e15 // Msun/h truncation
	massFnSlope  = 1.15   // Pareto index of the mass function
)

type halo struct {
	tag        int64
	mFinal     float64 // z=0 mass budget, Msun/h
	x0, y0, z0 float64
	vx, vy, vz float64
	conc       float64
	nSat       int   // satellite galaxy count (fixed per halo)
	mergeStep  int   // step at which this halo merges away; -1 if survivor
	mergeInto  int   // index of the absorbing halo; -1 if survivor
	absorbed   []int // indices of halos that merge into this one
}

// runModel holds the deterministic state of one simulation run.
type runModel struct {
	spec   Spec
	run    int
	params Params
	halos  []halo
}

func newRunModel(spec Spec, run int) *runModel {
	m := &runModel{spec: spec, run: run, params: SampleParams(spec.Seed, run, spec.Runs)}
	seed := uint64(spec.Seed)
	r := uint64(run)
	n := spec.HalosPerRun

	masses := make([]float64, n)
	for i := range masses {
		u := uniform01(seed, r, uint64(i), 'M')
		mass := minHaloMass * math.Pow(u, -1.0/massFnSlope)
		if mass > maxHaloMass {
			mass = maxHaloMass
		}
		masses[i] = mass
	}
	// Rank halos by final mass so tag order is mass order (largest first),
	// which makes "largest halo" questions stable and easy to verify.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort desc; n is modest
		for j := i; j > 0 && masses[idx[j]] > masses[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}

	m.halos = make([]halo, n)
	for rank, orig := range idx {
		tag := int64(run)*1_000_000 + int64(rank)
		t := uint64(tag)
		h := halo{
			tag:       tag,
			mFinal:    masses[orig],
			x0:        uniform01(seed, t, 'x') * spec.BoxSize,
			y0:        uniform01(seed, t, 'y') * spec.BoxSize,
			z0:        uniform01(seed, t, 'z') * spec.BoxSize,
			vx:        normal(seed, t, 'u') * 250,
			vy:        normal(seed, t, 'v') * 250,
			vz:        normal(seed, t, 'w') * 250,
			conc:      5 + 3*uniform01(seed, t, 'c'),
			mergeStep: -1,
			mergeInto: -1,
		}
		h.nSat = poisson(h.mFinal/3.0e13, seed, t, 'g')
		m.halos[rank] = h
	}

	// Mergers: ~12% of the smaller halos (bottom 80% by rank) merge into a
	// larger halo at a mid-run step. Targets are always lower rank (more
	// massive), so the tree is acyclic by construction.
	for i := n / 5; i < n; i++ {
		t := uint64(m.halos[i].tag)
		if uniform01(seed, t, 'm') > 0.12 {
			continue
		}
		target := int(uniform01(seed, t, 'T') * float64(i/2+1))
		step := 150 + int(uniform01(seed, t, 'S')*300) // merge in [150, 450)
		m.halos[i].mergeStep = step
		m.halos[i].mergeInto = target
		m.halos[target].absorbed = append(m.halos[target].absorbed, i)
	}
	return m
}

// aliveAt reports whether halo i exists as an independent FOF object at step.
func (m *runModel) aliveAt(i, step int) bool {
	h := &m.halos[i]
	return h.mergeStep < 0 || step < h.mergeStep
}

// growth is the smooth mass-accretion history factor at scale factor a
// (McBride-like exponential in redshift, equal to 1 at z=0).
func growth(a float64) float64 {
	z := 1/a - 1
	return math.Exp(-1.2 * z)
}

// massAt returns halo i's FOF mass at step, including absorbed victims
// after their merge steps.
func (m *runModel) massAt(i, step int) float64 {
	a := ScaleFactor(step)
	g := growth(a)
	h := &m.halos[i]
	mass := h.mFinal * g
	for _, v := range h.absorbed {
		if step >= m.halos[v].mergeStep {
			mass += m.halos[v].mFinal * g
		}
	}
	return mass
}

// positionAt returns the comoving center of halo i at step with periodic
// wrapping.
func (m *runModel) positionAt(i, step int) (x, y, z float64) {
	h := &m.halos[i]
	// Drift by peculiar velocity; ~1 Mpc-scale motion across the run.
	dt := ScaleFactor(step) - 1.0
	const driftScale = 0.004 // Mpc per (km/s) over the full run
	wrap := func(v float64) float64 {
		v = math.Mod(v, m.spec.BoxSize)
		if v < 0 {
			v += m.spec.BoxSize
		}
		return v
	}
	return wrap(h.x0 + h.vx*dt*driftScale),
		wrap(h.y0 + h.vy*dt*driftScale),
		wrap(h.z0 + h.vz*dt*driftScale)
}

// velDisp returns the 1-D velocity dispersion [km/s] of a halo of mass m
// (Evrard-like scaling) with per-(halo,step) log-normal scatter.
func velDisp(mass float64, tag int64, step int) float64 {
	base := 476 * math.Pow(mass/1e15, 1.0/3.0)
	return base * math.Exp(0.04*normal(uint64(tag), uint64(step), 'd'))
}

// gasFraction returns the hot-gas mass fraction inside R500c. The slope of
// the fgas–M relation steepens with log TAGN and with redshift, and its
// normalization is suppressed by AGN feedback — the relation probed by the
// paper's hard/medium question on slope and normalization evolution.
func gasFraction(m500 float64, step int, p Params) float64 {
	z := Redshift(step)
	slope := 0.08 + 0.10*(p.LogTAGN-7.0) + 0.05*math.Min(z, 3)
	norm := 0.16 * (1 - 0.25*(p.LogTAGN-7.0))
	f := norm * math.Pow(m500/3e14, slope)
	if f > 0.16 {
		f = 0.16
	}
	return f
}

// smhmParams bundles the run-level SMHM controls derived from sub-grid
// parameters.
type smhmParams struct {
	eps   float64 // efficiency normalization
	sigma float64 // intrinsic log-normal scatter, dex
	m1    float64 // characteristic halo mass
	beta  float64 // low-mass slope
	gamma float64 // high-mass slope
}

// smhmThresholdLogMSeed is the log10 seed mass above which stellar-mass
// assembly efficiency saturates (the "threshold seed mass" of Table 1's
// hard/hard question).
const smhmThresholdLogMSeed = 5.5

// smhmOptimalLogMSeed is the log10 seed mass minimizing SMHM scatter
// ("tightest correlation").
const smhmOptimalLogMSeed = 5.75

func (m *runModel) smhm(step int) smhmParams {
	p := m.params
	z := Redshift(step)
	logSeed := math.Log10(p.MSeed)
	// Efficiency saturates above the threshold seed mass; stellar feedback
	// (fSN) suppresses it; AGN temperature mildly suppresses it.
	seedFactor := 0.65 + 0.35/(1+math.Exp(-6*(logSeed-smhmThresholdLogMSeed)))
	fsnFactor := 1 - 0.45*(p.FSN-paramLo.FSN)/(paramHi.FSN-paramLo.FSN)
	agnFactor := 1 - 0.20*(p.LogTAGN-7.0)
	return smhmParams{
		eps:   0.028 * seedFactor * fsnFactor * agnFactor * math.Pow(1+z, -0.35),
		sigma: 0.12 + 0.10*math.Abs(logSeed-smhmOptimalLogMSeed),
		m1:    1.1e12,
		beta:  1.0,
		gamma: 0.65,
	}
}

// centralStellarMass returns the central galaxy stellar mass for a halo of
// given mass at step, including the run's intrinsic scatter.
func (m *runModel) centralStellarMass(haloMass float64, tag int64, step int) float64 {
	s := m.smhm(step)
	ratio := 2 * s.eps / (math.Pow(haloMass/s.m1, -s.beta) + math.Pow(haloMass/s.m1, s.gamma))
	scatter := math.Exp(math.Ln10 * s.sigma * normal(uint64(tag), uint64(step), '*'))
	return haloMass * ratio * scatter
}

// r200 approximates the halo virial radius [Mpc/h].
func r200(mass float64) float64 {
	return 1.0 * math.Pow(mass/1e14, 1.0/3.0)
}
