// Package llm defines the language-model boundary of InferA and provides
// SimModel, a deterministic seeded stand-in for the paper's GPT-4o.
//
// Agents talk to a Client exactly as they would to a hosted model: a string
// prompt goes in (JSON payloads built by the agents' prompt templates), a
// string completion comes out, and token usage is accounted from real token
// counts on both sides. SimModel implements the skills the paper's agents
// rely on — plan generation, SQL generation, analysis/visualization code
// generation, quality scoring, summarization and plain chat — with
// calibrated error injection (column-name corruption, wrong-tool selection)
// so the QA repair loop, failure routing and difficulty gradients of the
// evaluation are genuinely exercised rather than scripted.
package llm

import (
	"fmt"

	"infera/internal/rag"
)

// Skill names routed through Request.Skill.
const (
	SkillPlan    = "plan"
	SkillSQL     = "sql"
	SkillScript  = "script"
	SkillViz     = "viz"
	SkillQA      = "qa"
	SkillSummary = "summary"
	SkillChat    = "chat"
)

// Usage counts tokens for one or more calls.
type Usage struct {
	Prompt     int `json:"prompt"`
	Completion int `json:"completion"`
}

// Total returns prompt + completion tokens.
func (u Usage) Total() int { return u.Prompt + u.Completion }

// Add accumulates v into u.
func (u *Usage) Add(v Usage) {
	u.Prompt += v.Prompt
	u.Completion += v.Completion
}

// Request is one model invocation.
type Request struct {
	Agent  string // calling agent, for telemetry
	Skill  string // which capability is being exercised
	System string // system prompt (agent role + instructions)
	Prompt string // user prompt; JSON payload for structured skills
}

// Response is the model's completion.
type Response struct {
	Text  string
	Usage Usage
}

// Client is the language-model interface.
type Client interface {
	// Name identifies the model (e.g. "sim-gpt-4o").
	Name() string
	// ContextWindow returns the maximum prompt tokens the model accepts.
	ContextWindow() int
	// Complete runs one request.
	Complete(req Request) (Response, error)
}

// ContextWindowError reports a prompt exceeding the model's window — the
// failure mode that makes direct-chat baselines unusable on ensemble data.
type ContextWindowError struct {
	Tokens int
	Window int
}

func (e *ContextWindowError) Error() string {
	return fmt.Sprintf("llm: prompt of %d tokens exceeds the %d-token context window", e.Tokens, e.Window)
}

// CountTokens measures text with the shared tokenizer (the same measure
// the RAG chunker uses), scaled to approximate subword inflation.
func CountTokens(text string) int {
	n := rag.TokenCount(text)
	return n + n/3 // words → subword tokens, ~1.33x
}
