package llm

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"regexp"
	"strings"
	"sync"
	"time"

	"infera/internal/hacc"
)

// SimConfig tunes the simulated model. Zero values take calibrated
// defaults chosen so the evaluation harness reproduces the *shape* of the
// paper's Table 2 (success declining with difficulty, QA redos growing,
// failed runs consuming more tokens).
type SimConfig struct {
	Seed int64
	// ColumnErrorRate is the base probability that one generated code block
	// references a corrupted column name (the paper's most common failure
	// mechanism). Scaled up by question hardness and down by retry.
	ColumnErrorRate float64
	// RetryDecay multiplies the error rate on each QA-guided regeneration;
	// values near 1 make repairs harder.
	RetryDecay float64
	// ToolErrorRate is the probability of a *soft* failure: valid code
	// using an inappropriate technique or chart kind (§4.1.2).
	ToolErrorRate float64
	// Window is the context window in tokens.
	Window int
	// BinaryQA switches the QA skill to binary verdicts (the §4.2.4
	// ablation); default is 1-100 scoring with threshold 50.
	BinaryQA bool
	// QAFalseNegRate is the binary mode's false-negative probability.
	QAFalseNegRate float64
	// Latency, when positive, sleeps this long on every Complete call,
	// modeling the wall-clock cost of a real LLM API round trip. The sim
	// is otherwise pure CPU, which makes ask latency scale with local
	// cores instead of (as in production) with upstream token throughput —
	// fleet benchmarks set this so multi-node capacity measurements
	// reflect the latency-bound regime real deployments live in.
	Latency time.Duration
}

func (c SimConfig) withDefaults() SimConfig {
	if c.ColumnErrorRate == 0 {
		c.ColumnErrorRate = 0.30
	}
	if c.RetryDecay == 0 {
		c.RetryDecay = 0.85
	}
	if c.ToolErrorRate == 0 {
		c.ToolErrorRate = 0.12
	}
	if c.Window == 0 {
		c.Window = 128_000
	}
	if c.QAFalseNegRate == 0 {
		c.QAFalseNegRate = 0.25
	}
	return c
}

// LocalSimConfig returns the error profile of a smaller locally-hosted,
// security-compliant model (the paper's Ollama comparison: GPT-4o
// "significantly outperforms" it): much higher code-error rates, weaker
// repair, and a smaller context window.
func LocalSimConfig(seed int64) SimConfig {
	return SimConfig{
		Seed:            seed,
		ColumnErrorRate: 0.55,
		RetryDecay:      0.93,
		ToolErrorRate:   0.30,
		Window:          32_000,
		QAFalseNegRate:  0.35,
	}
}

// SimModel is the deterministic seeded stand-in for GPT-4o.
type SimModel struct {
	cfg SimConfig

	mu  sync.Mutex
	rng *rand.Rand
}

// NewSim returns a model with the given config (zero fields defaulted).
// The seed is scrambled before use so sequential seeds give decorrelated
// streams.
func NewSim(cfg SimConfig) *SimModel {
	cfg = cfg.withDefaults()
	return &SimModel{cfg: cfg, rng: rand.New(rand.NewSource(scramble(cfg.Seed)))}
}

// scramble applies a splitmix64 finalizer so nearby seeds diverge.
func scramble(seed int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Name identifies the simulated model.
func (m *SimModel) Name() string { return "sim-gpt-4o" }

// ContextWindow returns the prompt token limit.
func (m *SimModel) ContextWindow() int { return m.cfg.Window }

// Complete dispatches on the request skill.
func (m *SimModel) Complete(req Request) (Response, error) {
	if m.cfg.Latency > 0 {
		time.Sleep(m.cfg.Latency)
	}
	promptTokens := CountTokens(req.System) + CountTokens(req.Prompt)
	if promptTokens > m.cfg.Window {
		return Response{}, &ContextWindowError{Tokens: promptTokens, Window: m.cfg.Window}
	}
	var text string
	var err error
	switch req.Skill {
	case SkillPlan:
		text, err = m.completePlan(req.Prompt)
	case SkillSQL:
		text, err = m.completeSQL(req.Prompt)
	case SkillScript:
		text, err = m.completeScript(req.Prompt)
	case SkillViz:
		text, err = m.completeViz(req.Prompt)
	case SkillQA:
		text, err = m.completeQA(req.Prompt)
	case SkillRoute:
		text, err = m.completeRoute(req.Prompt)
	case SkillSummary:
		text, err = m.completeSummary(req.Prompt)
	case SkillChat:
		text, err = m.completeChat(req.Prompt, promptTokens)
	default:
		err = fmt.Errorf("llm: unknown skill %q", req.Skill)
	}
	if err != nil {
		return Response{}, err
	}
	return Response{
		Text:  text,
		Usage: Usage{Prompt: promptTokens, Completion: CountTokens(text)},
	}, nil
}

func (m *SimModel) rand() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rng.Float64()
}

func (m *SimModel) randN(n int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rng.Intn(n)
}

func (m *SimModel) randNorm() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rng.NormFloat64()
}

// Planning ----------------------------------------------------------------

func (m *SimModel) completePlan(prompt string) (string, error) {
	var req PlanRequest
	if err := json.Unmarshal([]byte(prompt), &req); err != nil {
		return "", fmt.Errorf("llm: plan payload: %w", err)
	}
	in := ParseIntent(req.Question)
	// Human feedback refinement: corrections that name exact columns are
	// folded into the intent (the §4.2.2 "directly providing the correct
	// name" pathway).
	for _, fb := range req.Feedback {
		low := strings.ToLower(fb)
		for _, cd := range hacc.ColumnDictionary() {
			if strings.Contains(low, strings.ToLower(cd.Column)) && !containsStr(in.Metrics, cd.Column) {
				in.Metrics = append(in.Metrics, cd.Column)
			}
		}
	}
	plan := buildPlan(in)
	out, err := json.Marshal(plan)
	return string(out), err
}

// Hardness ------------------------------------------------------------------

// hardTerms are domain expressions absent from the metadata dictionaries;
// their presence marks the paper's "hard semantic complexity" axis.
var hardTerms = []string{
	"intrinsic scatter", "velocity dispersion", "assembly efficiency",
	"tightest", "most unique", "interestingness", "aligned", "alignment",
	"direction of", "normalization", "threshold", "characteristics",
	"inference",
}

var reParenCol = regexp.MustCompile(`\([a-z_0-9]+\)`)

// hardness estimates how far the question's wording sits from the metadata
// vocabulary; it scales error injection so semantic difficulty degrades
// reliability organically, as in Table 2.
func hardness(question string) float64 {
	q := strings.ToLower(question)
	h := 1.0
	for _, t := range hardTerms {
		if strings.Contains(q, t) {
			h += 0.45
		}
	}
	// Explicitly named columns anchor the model.
	explicit := 0
	for _, cd := range hacc.ColumnDictionary() {
		if wordMatch(q, strings.ToLower(cd.Column)) {
			explicit++
		}
	}
	h -= 0.25 * float64(explicit)
	if reParenCol.MatchString(q) {
		h -= 0.1
	}
	return math.Min(2.8, math.Max(0.55, h))
}

// Code generation ------------------------------------------------------------

func (m *SimModel) completeSQL(prompt string) (string, error) {
	var req SQLRequest
	if err := json.Unmarshal([]byte(prompt), &req); err != nil {
		return "", fmt.Errorf("llm: sql payload: %w", err)
	}
	sql := genSQL(req)
	// SQL prompts carry the exact staged schema, so the model copies
	// column names rather than recalling them; corruption is rarer than in
	// free-form analysis code (the paper's failures concentrate in the
	// Python and visualization agents).
	sql = m.maybeCorruptScaled(sql, req.Intent.Question, req.Attempt, req.PriorError, 0.35)
	out, err := json.Marshal(SQLResponse{SQL: sql})
	return string(out), err
}

func (m *SimModel) completeScript(prompt string) (string, error) {
	var req ScriptRequest
	if err := json.Unmarshal([]byte(prompt), &req); err != nil {
		return "", fmt.Errorf("llm: script payload: %w", err)
	}
	if req.Strategy < 0 {
		// The request leaves the analytical strategy open; ambiguous
		// questions legitimately admit several (§4.5), so the model picks.
		req.Strategy = m.randN(3)
	}
	wrongTool := req.Attempt == 0 && m.rand() < m.cfg.ToolErrorRate*hardness(req.Intent.Question)/2
	code := genPython(req, wrongTool)
	code = m.maybeCorrupt(code, req.Intent.Question, req.Attempt, req.PriorError)
	out, err := json.Marshal(ScriptResponse{Code: code, Strategy: req.Strategy})
	return string(out), err
}

func (m *SimModel) completeViz(prompt string) (string, error) {
	var req ScriptRequest
	if err := json.Unmarshal([]byte(prompt), &req); err != nil {
		return "", fmt.Errorf("llm: viz payload: %w", err)
	}
	wrongKind := req.Attempt == 0 && m.rand() < m.cfg.ToolErrorRate*hardness(req.Intent.Question)
	code := genViz(req, wrongKind)
	code = m.maybeCorrupt(code, req.Intent.Question, req.Attempt, req.PriorError)
	out, err := json.Marshal(ScriptResponse{Code: code})
	return string(out), err
}

// corruptible matches dictionary column names with at least two
// underscore-separated parts — the names whose prefixes models drop.
func corruptibleColumns(code string) []string {
	var out []string
	seen := map[string]bool{}
	for _, cd := range hacc.ColumnDictionary() {
		if seen[cd.Column] || strings.Count(cd.Column, "_") < 2 {
			continue
		}
		if strings.Contains(code, `"`+cd.Column+`"`) || strings.Contains(code, cd.Column+" ") ||
			strings.Contains(code, cd.Column+",") {
			seen[cd.Column] = true
			out = append(out, cd.Column)
		}
	}
	return out
}

// maybeCorrupt injects the paper's dominant failure mechanism: a slightly
// wrong column name (fof_halo_count -> halo_count). The probability rises
// with question hardness and the number of referenced columns, and decays
// with each QA-guided retry; an error message naming the bad column makes
// the model avoid corrupting that column again.
func (m *SimModel) maybeCorrupt(code, question string, attempt int, priorError string) string {
	return m.maybeCorruptScaled(code, question, attempt, priorError, 1)
}

func (m *SimModel) maybeCorruptScaled(code, question string, attempt int, priorError string, scale float64) string {
	candidates := corruptibleColumns(code)
	if len(candidates) == 0 {
		return code
	}
	h := hardness(question)
	base := scale * m.cfg.ColumnErrorRate * h * math.Pow(m.cfg.RetryDecay, float64(attempt))
	n := len(candidates)
	if n > 5 {
		n = 5
	}
	p := 1 - math.Pow(1-base, float64(n))
	if p > 0.92 {
		p = 0.92
	}
	if m.rand() >= p {
		return code
	}
	// Pick a victim column, avoiding one the prior error already exposed
	// (errors quote the offending name; the available-columns list is
	// unquoted, so exact quoted matching is required).
	var pool []string
	for _, c := range candidates {
		if priorError != "" && strings.Contains(priorError, `"`+corruptName(c)+`"`) {
			continue
		}
		pool = append(pool, c)
	}
	if len(pool) == 0 {
		return code
	}
	victim := pool[m.randN(len(pool))]
	return strings.ReplaceAll(code, victim, corruptName(victim))
}

// corruptName drops the leading underscore segment, the simplification the
// paper highlights (fof_halo_center_x -> halo_center_x).
func corruptName(col string) string {
	i := strings.Index(col, "_")
	if i < 0 {
		return col + "_val"
	}
	return col[i+1:]
}

// QA ---------------------------------------------------------------------

// QARequest asks for a quality judgment of one step's output.
type QARequest struct {
	Task    string `json:"task"`
	Preview string `json:"preview"`
	Error   string `json:"error"`
	Binary  bool   `json:"binary"` // override to binary verdicts
}

// QAResponse is the judgment.
type QAResponse struct {
	Score    int    `json:"score"` // 1-100
	Pass     bool   `json:"pass"`
	Feedback string `json:"feedback"`
}

func (m *SimModel) completeQA(prompt string) (string, error) {
	var req QARequest
	if err := json.Unmarshal([]byte(prompt), &req); err != nil {
		return "", fmt.Errorf("llm: qa payload: %w", err)
	}
	var resp QAResponse
	binary := req.Binary || m.cfg.BinaryQA
	switch {
	case req.Error != "":
		resp.Score = 5 + m.randN(30)
		resp.Pass = false
		resp.Feedback = "execution failed: " + req.Error
	case binary:
		// Binary verdicts without graded criteria produce frequent false
		// negatives on superficially unusual but correct output (§4.2.4).
		resp.Pass = m.rand() >= m.cfg.QAFalseNegRate
		if resp.Pass {
			resp.Score = 100
			resp.Feedback = "output accepted"
		} else {
			resp.Score = 0
			resp.Feedback = "output judged incorrect (binary verdict): result shape looks unusual for the task"
		}
	default:
		score := 75 + int(12*m.randNorm())
		if score > 100 {
			score = 100
		}
		if score < 1 {
			score = 1
		}
		resp.Score = score
		resp.Pass = score >= 50
		if resp.Pass {
			resp.Feedback = "output addresses the delegated task"
		} else {
			resp.Feedback = "output quality below threshold: result does not convincingly address the task"
		}
	}
	out, err := json.Marshal(resp)
	return string(out), err
}

// Routing ---------------------------------------------------------------

// SkillRoute is the supervisor's next-step decision.
const SkillRoute = "route"

// RouteRequest carries the plan and progress; History is the message
// context the supervisor chooses to include (its size drives the token
// ablation of §4.1.4).
type RouteRequest struct {
	Steps     []PlanStep `json:"steps"`
	Completed int        `json:"completed"`
	History   string     `json:"history"`
}

// RouteResponse names the next step, or Done.
type RouteResponse struct {
	Done  bool   `json:"done"`
	Index int    `json:"index"`
	Agent string `json:"agent"`
	Task  string `json:"task"`
}

func (m *SimModel) completeRoute(prompt string) (string, error) {
	var req RouteRequest
	if err := json.Unmarshal([]byte(prompt), &req); err != nil {
		return "", fmt.Errorf("llm: route payload: %w", err)
	}
	var resp RouteResponse
	if req.Completed >= len(req.Steps) {
		resp.Done = true
	} else {
		step := req.Steps[req.Completed]
		resp = RouteResponse{Index: req.Completed, Agent: step.Agent, Task: step.Task}
	}
	out, err := json.Marshal(resp)
	return string(out), err
}

// Summary -----------------------------------------------------------------

// SummaryRequest asks for the documentation agent's workflow record.
type SummaryRequest struct {
	Question string   `json:"question"`
	Steps    []string `json:"steps"`
	Failures []string `json:"failures"`
}

func (m *SimModel) completeSummary(prompt string) (string, error) {
	var req SummaryRequest
	if err := json.Unmarshal([]byte(prompt), &req); err != nil {
		return "", fmt.Errorf("llm: summary payload: %w", err)
	}
	var sb strings.Builder
	sb.WriteString("# Workflow summary\n\n")
	sb.WriteString("Question: " + req.Question + "\n\n## Steps\n")
	for i, s := range req.Steps {
		fmt.Fprintf(&sb, "%d. %s\n", i+1, s)
	}
	if len(req.Failures) > 0 {
		sb.WriteString("\n## Limitations encountered\n")
		for _, f := range req.Failures {
			sb.WriteString("- " + f + "\n")
		}
	}
	return sb.String(), nil
}

// Chat ---------------------------------------------------------------------

// ChatRequest is the direct-LLM baseline payload: a question plus raw data
// pasted into the prompt.
type ChatRequest struct {
	Question string `json:"question"`
	DataCSV  string `json:"data_csv"`
}

// ChatResponse simulates direct chat over in-prompt data: beyond a small
// data volume the model confabulates values — the §4.4 observation that a
// 20x5 dataframe already produced hallucinated values and relationships.
type ChatResponse struct {
	Answer       string    `json:"answer"`
	Values       []float64 `json:"values"`
	Hallucinated bool      `json:"hallucinated"`
}

func (m *SimModel) completeChat(prompt string, promptTokens int) (string, error) {
	var req ChatRequest
	if err := json.Unmarshal([]byte(prompt), &req); err != nil {
		return "", fmt.Errorf("llm: chat payload: %w", err)
	}
	// Echo the first numeric column's values, corrupting with probability
	// growing in the data volume.
	pHall := math.Min(0.95, float64(CountTokens(req.DataCSV))/300.0)
	lines := strings.Split(strings.TrimSpace(req.DataCSV), "\n")
	var vals []float64
	hallucinated := false
	for _, line := range lines[minInt(1, len(lines)):] {
		fields := strings.Split(line, ",")
		if len(fields) == 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(fields[0], "%g", &v); err != nil {
			continue
		}
		if m.rand() < pHall {
			v *= 1 + 0.5*m.randNorm() // confabulated value
			hallucinated = true
		}
		vals = append(vals, v)
	}
	resp := ChatResponse{
		Answer:       "Based on the provided data, here are the requested values.",
		Values:       vals,
		Hallucinated: hallucinated,
	}
	out, err := json.Marshal(resp)
	return string(out), err
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
