package llm

import (
	"fmt"
	"strings"
)

// Agent role names used in plans and routing.
const (
	AgentData   = "dataloader"
	AgentSQL    = "sql"
	AgentPython = "python"
	AgentViz    = "viz"
	AgentQA     = "qa"
	AgentDoc    = "documentation"
)

// PlanStep is one delegated task of the analysis stage.
type PlanStep struct {
	Agent string `json:"agent"`
	Task  string `json:"task"`
}

// Plan is the planning agent's output: an ordered step list plus the
// structured intent that pins down interpretation for downstream agents
// (the role the written plan document plays in the paper).
type Plan struct {
	Steps  []PlanStep `json:"steps"`
	Intent Intent     `json:"intent"`
}

// AnalysisSteps counts the data-phase steps (the paper's analysis-
// complexity measure excludes planning, QA, documentation and summary).
func (p Plan) AnalysisSteps() int { return len(p.Steps) }

// String renders the plan as a numbered list for human review.
func (p Plan) String() string {
	var sb strings.Builder
	for i, s := range p.Steps {
		fmt.Fprintf(&sb, "%d. [%s] %s\n", i+1, s.Agent, s.Task)
	}
	return sb.String()
}

// PlanRequest is the planning skill's payload.
type PlanRequest struct {
	Question string   `json:"question"`
	Context  string   `json:"context"`  // ensemble description
	Feedback []string `json:"feedback"` // human refinement rounds
}

// buildPlan maps intent to the step list. Step counts track the paper's
// difficulty thresholds: simple aggregations take ~4 steps, medium
// questions add a computation or visualization step, hard questions two or
// more.
func buildPlan(in Intent) Plan {
	var steps []PlanStep
	add := func(agent, task string) { steps = append(steps, PlanStep{Agent: agent, Task: task}) }

	scope := describeScope(in)
	add(AgentData, "Load the "+strings.Join(in.Entities, " and ")+" data "+scope+" into the staging database, selecting only the required columns")
	add(AgentSQL, "Filter the staged tables to the rows and columns needed for the analysis")

	switch in.Analysis {
	case "aggregate":
		add(AgentPython, fmt.Sprintf("Compute the %s of %s grouped %s", in.Aggregate, firstMetric(in), groupDesc(in)))
		if in.WantPlot {
			add(AgentViz, "Plot the aggregated values")
		}
	case "topn":
		add(AgentPython, fmt.Sprintf("Select the top %d rows ranked by %s", in.TopN, in.RankBy))
		if in.WantPlot {
			add(AgentViz, "Plot the selected rows")
		}
	case "track":
		add(AgentPython, "Organize the largest-halo metrics by simulation and timestep")
		add(AgentViz, "Plot halo count of the largest halos across timesteps for every simulation")
		add(AgentViz, "Plot halo mass of the largest halos across timesteps for every simulation")
	case "interestingness":
		add(AgentPython, "Compute an interestingness score from velocity, mass and kinetic energy z-scores")
		add(AgentPython, fmt.Sprintf("Embed the top %d halos into 2-D (UMAP)", maxInt(in.TopN, 100)))
		add(AgentViz, fmt.Sprintf("Scatter the embedding, highlighting the top %d halos", maxInt(in.Highlight, 10)))
	case "gasfrac":
		add(AgentPython, "Derive the gas-mass fraction and logarithmic columns")
		add(AgentPython, "Fit slope and normalization of the fgas-mass relation per timestep")
		add(AgentViz, "Plot the evolution of slope and normalization across timesteps")
	case "smhm":
		add(AgentPython, "Join galaxies to halos and derive logarithmic stellar and halo masses")
		add(AgentViz, "Scatter stellar mass against halo mass")
		add(AgentPython, "Fit the SMHM relation per seed mass and rank by intrinsic scatter")
		add(AgentViz, "Plot intrinsic scatter against seed mass to locate the tightest relation")
	case "galhalocompare":
		add(AgentPython, "Find the two largest halos and the top 10 galaxies of each")
		add(AgentPython, "Compare mean stellar mass, gas mass and kinetic energy between the two galaxy groups")
		if in.WantPlot {
			add(AgentViz, "Plot the group comparison")
		}
	case "alignment":
		add(AgentPython, fmt.Sprintf("Select the %d largest halos and galaxies and match them by host halo tag", maxInt(in.TopN, 100)))
		add(AgentViz, "Render the selected halos as a ParaView scene")
		add(AgentPython, "Quantify the halo-galaxy alignment fraction")
	case "neighborhood":
		add(AgentPython, fmt.Sprintf("Find all halos within %.0f Mpc of the target halo", in.Radius))
		add(AgentViz, "Render the target and neighbours as a ParaView scene with the target highlighted")
	case "paramdirection":
		add(AgentPython, "Relate the sub-grid parameters to the halo masses of the largest halos")
		add(AgentViz, "Plot a summary of the differences in halo characteristics")
	case "corrmatrix":
		add(AgentPython, "Compute the correlation matrix of the requested characteristics")
	case "hist":
		add(AgentPython, "Bin the requested column into a histogram")
		add(AgentViz, "Plot the histogram")
	case "relation":
		add(AgentPython, "Derive logarithmic columns and fit the requested relation")
		if in.WantPlot {
			add(AgentViz, "Scatter the relation with the fitted trend")
		}
	default: // inspect
		add(AgentPython, "Inspect the selected rows")
	}
	return Plan{Steps: steps, Intent: in}
}

func describeScope(in Intent) string {
	sim := "for all simulations"
	if len(in.Sims) > 0 {
		sim = fmt.Sprintf("for simulation(s) %v", in.Sims)
	}
	step := "at the final timestep"
	if in.AllSteps {
		step = "across all timesteps"
	} else if len(in.Steps) > 0 {
		step = fmt.Sprintf("at timestep(s) %v", in.Steps)
	}
	return sim + " " + step
}

func groupDesc(in Intent) string {
	switch {
	case in.PerStep && in.PerSim:
		return "by simulation and timestep"
	case in.PerStep:
		return "by timestep"
	case in.PerSim:
		return "by simulation"
	default:
		return "overall"
	}
}

func firstMetric(in Intent) string {
	if len(in.Metrics) > 0 {
		return in.Metrics[0]
	}
	return in.RankBy
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
