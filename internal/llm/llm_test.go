package llm

import (
	"encoding/json"
	"strings"
	"testing"

	"infera/internal/hacc"
	"infera/internal/script"
)

// The paper's Table 1 representative questions.
const (
	qEasyEasy = "Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?"
	qMedEasy  = "Please find the largest 100 galaxies and 100 halos at timestep 498 in simulation 0. I would like to plot all of them in Paraview and also see how well aligned those galaxies and halos are to each other."
	qHardEasy = "Can you plot the change in mass of the largest friends-of-friends halos for all timesteps in all simulations? Provide me two plots using both fof_halo_count and fof_halo_mass as metrics for mass."
	qMedMed   = "I would like to find the most unique halos in simulation 0 at timestep 498. Using velocity, mass, and kinetic energy of the halos, generate an 'interestingness' score and plot the top 1000 halos as a UMAP plot, highlighting the top 20 halos in simulation 0 that are the most interesting."
	qHardMed  = "How does the slope and normalization of the gas-mass fraction-mass relation (sod_halo_MGas500c/sod_halo_M500c) evolve from the earliest timestep to the latest timestep in simulation 0?"
	qMedHard  = "First find the two largest halos by their halo count in timestep 624 of simulation 0. Then find the top 10 galaxies associated to those two halos (related by fof_halo_tag). What are the differences in characteristics of the two groups of galaxies? For example, differences in gas-mass, mass, or kinetic energy?"
	qHardHard = "At timestep 624, how does the slope and intrinsic scatter of the stellar-to-halo mass (SMHM) relation vary as a function of seed mass? Which seed mass values produce the tightest SMHM correlation, and is there a threshold seed mass that maximizes stellar-mass assembly efficiency?"
	qPrecise  = "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?"
	qAmbig    = "Can you make an inference on the direction of the FSN and VEL parameters in order to increase the halo count of the 100 largest halos in timestep 624? Also plot a summary of the differences in halo characteristics between the two simulations."
)

func TestParseIntentTable1(t *testing.T) {
	cases := []struct {
		q        string
		analysis string
		check    func(t *testing.T, in Intent)
	}{
		{qEasyEasy, "aggregate", func(t *testing.T, in Intent) {
			if !in.AllSims || !in.AllSteps || !in.PerStep || in.Aggregate != "avg" {
				t.Errorf("intent = %+v", in)
			}
			if !containsStr(in.Metrics, "fof_halo_count") {
				t.Errorf("metrics = %v", in.Metrics)
			}
		}},
		{qMedEasy, "alignment", func(t *testing.T, in Intent) {
			if in.TopN != 100 || in.Plot != "paraview" || len(in.Sims) != 1 || in.Sims[0] != 0 {
				t.Errorf("intent = %+v", in)
			}
			if in.Steps[0] != 498 {
				t.Errorf("steps = %v", in.Steps)
			}
		}},
		{qHardEasy, "track", func(t *testing.T, in Intent) {
			if !in.AllSims || !in.AllSteps || !in.WantPlot {
				t.Errorf("intent = %+v", in)
			}
		}},
		{qMedMed, "interestingness", func(t *testing.T, in Intent) {
			if in.TopN != 1000 || in.Highlight != 20 || in.Plot != "umap" {
				t.Errorf("intent = %+v", in)
			}
		}},
		{qHardMed, "gasfrac", func(t *testing.T, in Intent) {
			if !in.AllSteps || len(in.Sims) != 1 {
				t.Errorf("intent = %+v", in)
			}
		}},
		{qMedHard, "galhalocompare", func(t *testing.T, in Intent) {
			if in.Steps[0] != 624 || in.RankBy != "fof_halo_count" {
				t.Errorf("intent = %+v", in)
			}
		}},
		{qHardHard, "smhm", func(t *testing.T, in Intent) {
			if !in.ParamCols || in.Steps[0] != 624 {
				t.Errorf("intent = %+v", in)
			}
		}},
		{qPrecise, "topn", func(t *testing.T, in Intent) {
			if in.TopN != 20 || in.Steps[0] != 498 || in.Sims[0] != 0 {
				t.Errorf("intent = %+v", in)
			}
		}},
		{qAmbig, "paramdirection", func(t *testing.T, in Intent) {
			if !in.Ambiguous || !in.ParamCols {
				t.Errorf("intent = %+v", in)
			}
		}},
	}
	for _, c := range cases {
		in := ParseIntent(c.q)
		if in.Analysis != c.analysis {
			t.Errorf("ParseIntent(%.40q).Analysis = %q, want %q", c.q, in.Analysis, c.analysis)
			continue
		}
		c.check(t, in)
	}
}

func TestPlanStepCountsTrackDifficulty(t *testing.T) {
	easy := buildPlan(ParseIntent(qEasyEasy)).AnalysisSteps()
	medium := buildPlan(ParseIntent(qMedMed)).AnalysisSteps()
	hard := buildPlan(ParseIntent(qHardHard)).AnalysisSteps()
	if easy > 4 {
		t.Errorf("easy plan has %d steps, want <= 4", easy)
	}
	if medium < 5 {
		t.Errorf("medium plan has %d steps, want >= 5", medium)
	}
	if hard < 6 {
		t.Errorf("hard plan has %d steps, want >= 6", hard)
	}
	if easy >= medium || medium > hard {
		t.Errorf("step counts not ordered: %d %d %d", easy, medium, hard)
	}
}

func TestHardnessOrdering(t *testing.T) {
	he := hardness(qEasyEasy)
	hm := hardness(qHardMed)
	hh := hardness(qHardHard)
	if !(he < hh) || !(hm < hh) {
		t.Errorf("hardness: easy=%v med=%v hard=%v", he, hm, hh)
	}
}

// allQuestions enumerates the Table 1 set for coverage loops.
var allQuestions = []string{
	qEasyEasy, qMedEasy, qHardEasy, qMedMed, qHardMed, qMedHard, qHardHard, qPrecise, qAmbig,
}

// TestGeneratedCodeParses guarantees every analysis recipe (both python and
// viz, every step index and strategy, with and without tool errors) emits
// syntactically valid DSL.
func TestGeneratedCodeParses(t *testing.T) {
	for _, q := range allQuestions {
		in := ParseIntent(q)
		plan := buildPlan(in)
		pyIdx, vizIdx := 0, 0
		for _, step := range plan.Steps {
			req := ScriptRequest{
				Task: step.Task, Intent: in,
				Sims: []int{0, 1}, Steps: []int{99, 624},
			}
			switch step.Agent {
			case AgentPython:
				req.StepIndex = pyIdx
				pyIdx++
				for _, wrong := range []bool{false, true} {
					for strat := 0; strat < 3; strat++ {
						req.Strategy = strat
						code := genPython(req, wrong)
						if _, err := script.Parse(code); err != nil {
							t.Errorf("python code for %q (step %d wrong=%v strat=%d) does not parse: %v\n%s",
								in.Analysis, req.StepIndex, wrong, strat, err, code)
						}
					}
				}
			case AgentViz:
				req.StepIndex = vizIdx
				vizIdx++
				for _, wrong := range []bool{false, true} {
					code := genViz(req, wrong)
					if _, err := script.Parse(code); err != nil {
						t.Errorf("viz code for %q (step %d wrong=%v) does not parse: %v\n%s",
							in.Analysis, req.StepIndex, wrong, err, code)
					}
				}
			}
		}
	}
}

func TestGenSQLShapes(t *testing.T) {
	in := ParseIntent(qPrecise)
	cols := NeedColumns(in, hacc.FileHalos)
	sql := genSQL(SQLRequest{Intent: in, Table: "halos", Role: hacc.FileHalos, Columns: cols})
	if !strings.HasPrefix(sql, "SELECT ") || !strings.Contains(sql, "FROM halos") {
		t.Errorf("sql = %q", sql)
	}
	if !strings.Contains(sql, "ORDER BY fof_halo_mass DESC LIMIT 20") {
		t.Errorf("topn sql missing order/limit: %q", sql)
	}
	// SMHM galaxies get the centrals filter.
	in2 := ParseIntent(qHardHard)
	sql2 := genSQL(SQLRequest{Intent: in2, Table: "galaxies", Role: hacc.FileGalaxies,
		Columns: NeedColumns(in2, hacc.FileGalaxies)})
	if !strings.Contains(sql2, "gal_is_central = 1") {
		t.Errorf("smhm galaxy sql = %q", sql2)
	}
}

func TestNeedColumnsAlwaysIncludeKeys(t *testing.T) {
	for _, q := range allQuestions {
		in := ParseIntent(q)
		cols := NeedColumns(in, hacc.FileHalos)
		for _, want := range []string{"sim", "step", "fof_halo_tag"} {
			if !contains(cols, want) {
				t.Errorf("%q halos columns missing %s: %v", in.Analysis, want, cols)
			}
		}
		// Never more than the full dictionary.
		if len(cols) > len(hacc.ColumnsOf(hacc.FileHalos))+len(ParamColumns)+2 {
			t.Errorf("%q requests too many columns: %v", in.Analysis, cols)
		}
	}
	in := ParseIntent(qHardHard)
	if cols := NeedColumns(in, hacc.FileHalos); !contains(cols, "m_seed") {
		t.Errorf("smhm halos columns missing m_seed: %v", cols)
	}
}

func completeJSON[T any](t *testing.T, m *SimModel, skill string, payload any, out *T) Usage {
	t.Helper()
	raw, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := m.Complete(Request{Skill: skill, System: "you are " + skill, Prompt: string(raw)})
	if err != nil {
		t.Fatalf("%s: %v", skill, err)
	}
	if err := json.Unmarshal([]byte(resp.Text), out); err != nil {
		t.Fatalf("%s response not JSON: %v\n%s", skill, err, resp.Text)
	}
	return resp.Usage
}

func TestSimPlanSkillAndFeedback(t *testing.T) {
	m := NewSim(SimConfig{Seed: 1})
	var plan Plan
	usage := completeJSON(t, m, SkillPlan, PlanRequest{Question: qPrecise}, &plan)
	if len(plan.Steps) < 3 || plan.Intent.Analysis != "topn" {
		t.Errorf("plan = %+v", plan)
	}
	if usage.Prompt == 0 || usage.Completion == 0 {
		t.Errorf("usage = %+v", usage)
	}
	// Feedback naming a column folds it into the intent.
	var plan2 Plan
	completeJSON(t, m, SkillPlan, PlanRequest{
		Question: qPrecise,
		Feedback: []string{"please also include fof_halo_vel_disp"},
	}, &plan2)
	if !containsStr(plan2.Intent.Metrics, "fof_halo_vel_disp") {
		t.Errorf("feedback not applied: %v", plan2.Intent.Metrics)
	}
}

func TestErrorInjectionDecaysWithAttempts(t *testing.T) {
	in := ParseIntent(qHardHard)
	req := ScriptRequest{Intent: in, StepIndex: 0}
	corruptedAt := func(attempt int, n int) int {
		m := NewSim(SimConfig{Seed: 42})
		bad := 0
		for i := 0; i < n; i++ {
			req.Attempt = attempt
			raw, _ := json.Marshal(req)
			resp, err := m.Complete(Request{Skill: SkillScript, Prompt: string(raw)})
			if err != nil {
				t.Fatal(err)
			}
			var sr ScriptResponse
			if err := json.Unmarshal([]byte(resp.Text), &sr); err != nil {
				t.Fatal(err)
			}
			if strings.Contains(sr.Code, `"stellar_mass"`) || strings.Contains(sr.Code, `"halo_mass"`) ||
				strings.Contains(sr.Code, `"halo_tag"`) {
				bad++
			}
		}
		return bad
	}
	first := corruptedAt(0, 300)
	fourth := corruptedAt(4, 300)
	if first == 0 {
		t.Error("no corruption at attempt 0 for a hard question")
	}
	if fourth >= first {
		t.Errorf("corruption should decay with retries: attempt0=%d attempt4=%d", first, fourth)
	}
}

func TestEasyQuestionsFailLessThanHard(t *testing.T) {
	corrupted := func(q string, n int) int {
		m := NewSim(SimConfig{Seed: 7})
		in := ParseIntent(q)
		bad := 0
		for i := 0; i < n; i++ {
			raw, _ := json.Marshal(ScriptRequest{Intent: in})
			resp, err := m.Complete(Request{Skill: SkillScript, Prompt: string(raw)})
			if err != nil {
				t.Fatal(err)
			}
			var sr ScriptResponse
			_ = json.Unmarshal([]byte(resp.Text), &sr)
			if _, err := script.Parse(sr.Code); err != nil {
				t.Fatalf("generated code unparseable: %v", err)
			}
			code := sr.Code
			clean := genPython(ScriptRequest{Intent: in}, false)
			cleanWrong := genPython(ScriptRequest{Intent: in}, true)
			if code != clean && code != cleanWrong {
				bad++
			}
		}
		return bad
	}
	easy := corrupted(qEasyEasy, 400)
	hard := corrupted(qHardHard, 400)
	if easy >= hard {
		t.Errorf("easy corruption %d should be below hard %d", easy, hard)
	}
}

func TestQASkillScoredVsBinary(t *testing.T) {
	scored := NewSim(SimConfig{Seed: 5})
	binary := NewSim(SimConfig{Seed: 5, BinaryQA: true})
	countFails := func(m *SimModel, n int) int {
		fails := 0
		for i := 0; i < n; i++ {
			var resp QAResponse
			completeJSON(t, m, SkillQA, QARequest{Task: "t", Preview: "result frame: 5 rows"}, &resp)
			if !resp.Pass {
				fails++
			}
		}
		return fails
	}
	scoredFN := countFails(scored, 400)
	binaryFN := countFails(binary, 400)
	if scoredFN >= binaryFN {
		t.Errorf("scored QA false negatives %d should be far below binary %d", scoredFN, binaryFN)
	}
	if binaryFN < 40 {
		t.Errorf("binary QA false negatives %d suspiciously low", binaryFN)
	}
	// Errors always fail in both modes.
	var resp QAResponse
	completeJSON(t, scored, SkillQA, QARequest{Task: "t", Error: "KeyError: column"}, &resp)
	if resp.Pass || resp.Score >= 50 {
		t.Errorf("error should fail QA: %+v", resp)
	}
}

func TestRouteSkillFollowsPlan(t *testing.T) {
	m := NewSim(SimConfig{Seed: 2})
	steps := []PlanStep{{Agent: AgentData, Task: "load"}, {Agent: AgentSQL, Task: "filter"}}
	var r RouteResponse
	completeJSON(t, m, SkillRoute, RouteRequest{Steps: steps, Completed: 1}, &r)
	if r.Done || r.Agent != AgentSQL {
		t.Errorf("route = %+v", r)
	}
	completeJSON(t, m, SkillRoute, RouteRequest{Steps: steps, Completed: 2}, &r)
	if !r.Done {
		t.Errorf("route should be done: %+v", r)
	}
}

func TestRouteHistoryDrivesTokenCost(t *testing.T) {
	m := NewSim(SimConfig{Seed: 2})
	steps := []PlanStep{{Agent: AgentData, Task: "load"}}
	small := RouteRequest{Steps: steps}
	big := RouteRequest{Steps: steps, History: strings.Repeat("previous message content ", 500)}
	var r RouteResponse
	uSmall := completeJSON(t, m, SkillRoute, small, &r)
	uBig := completeJSON(t, m, SkillRoute, big, &r)
	if uBig.Prompt <= uSmall.Prompt+1000 {
		t.Errorf("history should inflate prompt tokens: %d vs %d", uBig.Prompt, uSmall.Prompt)
	}
}

func TestChatSkillHallucinatesAtScale(t *testing.T) {
	m := NewSim(SimConfig{Seed: 3})
	// A 20x5 CSV (the paper's toy example) should already hallucinate.
	var rows []string
	rows = append(rows, "a,b,c,d,e")
	for i := 0; i < 20; i++ {
		rows = append(rows, "1.5,2.5,3.5,4.5,5.5")
	}
	var resp ChatResponse
	completeJSON(t, m, SkillChat, ChatRequest{Question: "list column a", DataCSV: strings.Join(rows, "\n")}, &resp)
	if !resp.Hallucinated {
		t.Error("20x5 frame should trigger hallucination")
	}
	// A 2-row frame should be safe.
	var small ChatResponse
	completeJSON(t, m, SkillChat, ChatRequest{Question: "list", DataCSV: "a\n1.5\n2.5"}, &small)
	if len(small.Values) != 2 {
		t.Errorf("small values = %v", small.Values)
	}
}

func TestContextWindowEnforced(t *testing.T) {
	m := NewSim(SimConfig{Seed: 1, Window: 100})
	_, err := m.Complete(Request{Skill: SkillChat, Prompt: strings.Repeat("tok ", 200)})
	var cwe *ContextWindowError
	if err == nil || !asContextWindow(err, &cwe) {
		t.Errorf("err = %v", err)
	}
}

func asContextWindow(err error, out **ContextWindowError) bool {
	if e, ok := err.(*ContextWindowError); ok {
		*out = e
		return true
	}
	return false
}

func TestSummarySkill(t *testing.T) {
	m := NewSim(SimConfig{Seed: 1})
	raw, _ := json.Marshal(SummaryRequest{
		Question: qPrecise,
		Steps:    []string{"loaded halos", "filtered"},
		Failures: []string{"one redo on sql"},
	})
	resp, err := m.Complete(Request{Skill: SkillSummary, Prompt: string(raw)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "Workflow summary") || !strings.Contains(resp.Text, "one redo") {
		t.Errorf("summary = %q", resp.Text)
	}
}

func TestCorruptName(t *testing.T) {
	if got := corruptName("fof_halo_count"); got != "halo_count" {
		t.Errorf("corruptName = %q", got)
	}
	if got := corruptName("plain"); got != "plain_val" {
		t.Errorf("corruptName = %q", got)
	}
}

func TestUsageAccounting(t *testing.T) {
	var u Usage
	u.Add(Usage{Prompt: 10, Completion: 5})
	u.Add(Usage{Prompt: 1, Completion: 2})
	if u.Total() != 18 || u.Prompt != 11 {
		t.Errorf("usage = %+v", u)
	}
}
