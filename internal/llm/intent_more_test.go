package llm

import (
	"strings"
	"testing"

	"infera/internal/hacc"
)

// Extended intent-parser coverage: phrasing variants, boundaries,
// regressions for bugs found during evaluation bring-up.

func TestWordMatchBoundaries(t *testing.T) {
	cases := []struct {
		text, word string
		want       bool
	}{
		{"the matrix of values", "x", false},    // regression: "x" inside "matrix"
		{"coordinate x of the halo", "x", true}, // standalone letter
		{"fof_halo_count please", "fof_halo_count", true},
		{"fof_halo_counter", "fof_halo_count", false}, // prefix of longer ident
		{"a fof_halo_count", "fof_halo_count", true},
		{"(fof_halo_count)", "fof_halo_count", true}, // parenthesized mention
		{"xx", "x", false},
		{"x", "x", true},
	}
	for _, c := range cases {
		if got := wordMatch(c.text, c.word); got != c.want {
			t.Errorf("wordMatch(%q, %q) = %v, want %v", c.text, c.word, got, c.want)
		}
	}
}

func TestIntentScopePhrasings(t *testing.T) {
	cases := []struct {
		q        string
		allSims  bool
		allSteps bool
	}{
		{"average mass across all simulations at timestep 624", true, false},
		{"average mass across all the simulations at each time step", true, true},
		{"how does halo mass evolve in simulation 0", false, true},
		// Regression: "across all timesteps" must NOT imply all simulations.
		{"intrinsic scatter across all timesteps in simulation 0", false, true},
		{"for 32 simulations over time", true, true},
		{"mass in every simulation at the final snapshot", true, false},
	}
	for _, c := range cases {
		in := ParseIntent(c.q)
		if in.AllSims != c.allSims || in.AllSteps != c.allSteps {
			t.Errorf("ParseIntent(%q): allSims=%v allSteps=%v, want %v %v",
				c.q, in.AllSims, in.AllSteps, c.allSims, c.allSteps)
		}
	}
}

func TestIntentNumbersAndThresholds(t *testing.T) {
	in := ParseIntent("find the two largest halos by their halo count in timestep 624")
	if in.TopN != 2 || in.RankBy != "fof_halo_count" {
		t.Errorf("intent = %+v", in)
	}
	in = ParseIntent("How many halos have a particle count above 500 at timestep 624?")
	if in.Aggregate != "count" || in.Threshold != 500 {
		t.Errorf("intent = %+v", in)
	}
	in = ParseIntent("top fifty halos") // number word not in map for "top fifty "? it is
	if in.TopN != 50 {
		t.Errorf("fifty = %d", in.TopN)
	}
}

func TestIntentEntitiesForcedByAnalysis(t *testing.T) {
	// SMHM questions need both catalogs even when only "halo" words appear.
	in := ParseIntent("slope of the stellar-to-halo mass relation at timestep 624")
	if !containsStr(in.Entities, hacc.FileGalaxies) || !containsStr(in.Entities, hacc.FileHalos) {
		t.Errorf("entities = %v", in.Entities)
	}
	// Galaxies-only question stays galaxies-only.
	in = ParseIntent("median gal_sfr of galaxies at timestep 624")
	if containsStr(in.Entities, hacc.FileHalos) {
		t.Errorf("entities = %v", in.Entities)
	}
}

func TestIntentRadiusAndPlotKinds(t *testing.T) {
	in := ParseIntent("show halos within 20 Mpc of the target in Paraview")
	if in.Radius != 20 || in.Analysis != "neighborhood" || in.Plot != "paraview" {
		t.Errorf("intent = %+v", in)
	}
	in = ParseIntent("histogram of fof_halo_mass at timestep 624")
	if in.Plot != "hist" || in.Analysis != "hist" {
		t.Errorf("intent = %+v", in)
	}
	in = ParseIntent("plot the mass of halos at each time step in simulation 1")
	if in.Plot != "line" {
		t.Errorf("plot = %q", in.Plot)
	}
}

func TestIntentDefaultsAreSane(t *testing.T) {
	in := ParseIntent("tell me something about the data")
	if len(in.Entities) == 0 || in.Analysis != "inspect" {
		t.Errorf("fallback intent = %+v", in)
	}
	if in.RankBy == "" {
		t.Error("rank column should default")
	}
}

func TestPlanCoversEveryAnalysis(t *testing.T) {
	analyses := map[string]bool{}
	for _, q := range allQuestions {
		in := ParseIntent(q)
		plan := buildPlan(in)
		analyses[in.Analysis] = true
		if len(plan.Steps) < 3 {
			t.Errorf("%s plan too short: %d", in.Analysis, len(plan.Steps))
		}
		if plan.Steps[0].Agent != AgentData || plan.Steps[1].Agent != AgentSQL {
			t.Errorf("%s plan must start load->sql: %+v", in.Analysis, plan.Steps[:2])
		}
		// Intent rides along for downstream agents.
		if plan.Intent.Question != q {
			t.Errorf("%s plan lost its intent", in.Analysis)
		}
	}
	if len(analyses) < 7 {
		t.Errorf("representative questions cover only %d analyses", len(analyses))
	}
}

func TestPlanStringNumbering(t *testing.T) {
	plan := buildPlan(ParseIntent(qPrecise))
	s := plan.String()
	if !strings.Contains(s, "1. [dataloader]") || !strings.Contains(s, "2. [sql]") {
		t.Errorf("plan rendering = %q", s)
	}
}

func TestLocalSimConfigWeaker(t *testing.T) {
	local := LocalSimConfig(1)
	remote := SimConfig{Seed: 1}.withDefaults()
	if local.ColumnErrorRate <= remote.ColumnErrorRate {
		t.Error("local model should err more")
	}
	if local.Window >= remote.Window {
		t.Error("local model should have a smaller window")
	}
	if local.RetryDecay <= remote.RetryDecay {
		t.Error("local model should repair more slowly")
	}
}

func TestScrambleDecorrelatesSeeds(t *testing.T) {
	// Sequential seeds must produce diverse first strategy draws.
	seen := map[int]bool{}
	for seed := int64(0); seed < 12; seed++ {
		m := NewSim(SimConfig{Seed: seed})
		seen[m.randN(3)] = true
	}
	if len(seen) < 3 {
		t.Errorf("first draws cover only %d of 3 values", len(seen))
	}
}
