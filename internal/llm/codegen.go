package llm

import (
	"fmt"
	"sort"
	"strings"

	"infera/internal/hacc"
)

// Payload types exchanged (as JSON) between agents and the model for the
// structured skills.

// SQLRequest asks for a staged-table filtering query.
type SQLRequest struct {
	Task       string   `json:"task"`
	Intent     Intent   `json:"intent"`
	Table      string   `json:"table"` // staged table name
	Role       string   `json:"role"`  // file family of the table
	Columns    []string `json:"columns"`
	Context    string   `json:"context"` // retrieved metadata handed to the worker
	Attempt    int      `json:"attempt"`
	PriorError string   `json:"prior_error"`
}

// SQLResponse carries the generated query.
type SQLResponse struct {
	SQL string `json:"sql"`
}

// ScriptRequest asks for analysis (python-analog) or visualization code.
type ScriptRequest struct {
	Task       string              `json:"task"`
	Intent     Intent              `json:"intent"`
	Tables     map[string][]string `json:"tables"`     // staged table -> columns
	Sims       []int               `json:"sims"`       // simulations actually loaded
	Steps      []int               `json:"steps"`      // timesteps actually loaded
	Context    string              `json:"context"`    // retrieved metadata handed to the worker
	StepIndex  int                 `json:"step_index"` // ordinal among this agent's plan steps
	Attempt    int                 `json:"attempt"`
	PriorError string              `json:"prior_error"`
	Strategy   int                 `json:"strategy"` // ambiguous questions: which valid approach
}

// ScriptResponse carries generated code. Strategy echoes the analytical
// strategy the model chose when the request left it open (ambiguous
// questions, §4.5).
type ScriptResponse struct {
	Code     string `json:"code"`
	Strategy int    `json:"strategy"`
}

// NeedColumns returns the columns of fileType an analysis requires,
// including the loader-injected sim/step (and sub-grid parameter) columns.
// This is the knowledge the data-loading agent combines with RAG retrieval
// to prune terabytes to the working set.
func NeedColumns(in Intent, fileType string) []string {
	base := map[string]bool{"sim": true, "step": true}
	addIfKnown := func(names ...string) {
		for _, n := range names {
			if _, ok := hacc.LookupColumn(fileType, n); ok {
				base[n] = true
			}
		}
	}
	switch fileType {
	case hacc.FileHalos:
		addIfKnown("fof_halo_tag")
	case hacc.FileGalaxies:
		addIfKnown("gal_tag", "fof_halo_tag")
	case hacc.FileParticles:
		addIfKnown("particle_id")
	case hacc.FileCores:
		addIfKnown("core_tag", "fof_halo_tag")
	}
	addIfKnown(in.RankBy)
	addIfKnown(in.Metrics...)

	switch in.Analysis {
	case "track":
		addIfKnown("fof_halo_count", "fof_halo_mass")
	case "interestingness":
		addIfKnown("fof_halo_mass", "fof_halo_vel_disp", "fof_halo_ke")
	case "gasfrac":
		addIfKnown("sod_halo_MGas500c", "sod_halo_M500c")
	case "smhm":
		addIfKnown("fof_halo_mass", "gal_stellar_mass", "gal_is_central")
	case "galhalocompare":
		addIfKnown("fof_halo_count", "gal_stellar_mass", "gal_gas_mass", "gal_kinetic_energy")
	case "alignment":
		addIfKnown("fof_halo_count", "fof_halo_mass", "gal_stellar_mass",
			"fof_halo_center_x", "fof_halo_center_y", "fof_halo_center_z",
			"gal_x", "gal_y", "gal_z")
	case "neighborhood":
		addIfKnown("fof_halo_mass", "fof_halo_center_x", "fof_halo_center_y", "fof_halo_center_z")
	case "paramdirection":
		addIfKnown("fof_halo_count", "fof_halo_mass")
	case "corrmatrix":
		addIfKnown("fof_halo_count", "fof_halo_mass", "fof_halo_vel_disp", "fof_halo_ke")
	case "hist", "aggregate", "relation":
		if len(in.Metrics) == 0 {
			addIfKnown("fof_halo_mass", "gal_stellar_mass")
		}
	case "inspect":
		addIfKnown("fof_halo_count", "fof_halo_mass", "gal_stellar_mass")
	}
	if in.ParamCols {
		base["m_seed"] = true
		base["f_sn"] = true
		base["log_v_sn"] = true
		base["log_t_agn"] = true
		base["beta_bh"] = true
	}
	out := make([]string, 0, len(base))
	for c := range base {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ParamColumns are the loader-injected per-run sub-grid parameter columns.
var ParamColumns = []string{"m_seed", "f_sn", "log_v_sn", "log_t_agn", "beta_bh"}

// genSQL produces the filtering query for one staged table.
func genSQL(req SQLRequest) string {
	cols := req.Columns
	var sb strings.Builder
	sb.WriteString("SELECT ")
	sb.WriteString(strings.Join(cols, ", "))
	sb.WriteString(" FROM ")
	sb.WriteString(req.Table)
	var where []string
	if req.Role == hacc.FileGalaxies && req.Intent.Analysis == "smhm" {
		where = append(where, "gal_is_central = 1")
	}
	if len(where) > 0 {
		sb.WriteString(" WHERE " + strings.Join(where, " AND "))
	}
	if req.Intent.Analysis == "topn" && req.Role == primaryEntity(req.Intent) && contains(cols, req.Intent.RankBy) {
		fmt.Fprintf(&sb, " ORDER BY %s DESC LIMIT %d", req.Intent.RankBy, req.Intent.TopN)
	}
	return sb.String()
}

func primaryEntity(in Intent) string {
	for _, e := range in.Entities {
		if e == hacc.FileHalos {
			return e
		}
	}
	if len(in.Entities) > 0 {
		return in.Entities[0]
	}
	return hacc.FileHalos
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// genPython emits the analysis code for the request's python plan step.
// wrongTool simulates the paper's most common *soft* failure: valid code
// applying an inappropriate technique (e.g. tracking coordinates instead
// of the requested characteristic).
func genPython(req ScriptRequest, wrongTool bool) string {
	in := req.Intent
	switch in.Analysis {
	case "aggregate":
		keys := groupKeys(in)
		metric := firstMetric(in)
		pre := ""
		if in.Threshold > 0 {
			pre = fmt.Sprintf("w = filter_gt(w, %q, %g)\n", metric, in.Threshold)
		}
		return fmt.Sprintf(`w = load_table("work")
%sout = groupby(w, %s, %q, %q, %q)
out = sort(out, %q, false)
save_csv(out, "aggregate.csv")
result(out)`, pre, strList(keys), metric, in.Aggregate, in.Aggregate+"_"+metric, keys[len(keys)-1])
	case "topn":
		return fmt.Sprintf(`w = load_table("work")
top = head(sort(w, %q, true), %d)
save_csv(top, "top%d.csv")
result(top)`, in.RankBy, in.TopN, in.TopN)
	case "track":
		colA, colB := "fof_halo_count", "fof_halo_mass"
		if wrongTool {
			// The coordinate-tracking mistake of §4.1.2: valid code, wrong
			// characteristic.
			colA, colB = "fof_halo_center_x", "fof_halo_center_y"
		}
		return fmt.Sprintf(`w = load_table("work")
out = groupby_multi(w, ["sim", "step"], [%q, %q], ["max", "max"], ["max_count", "max_mass"])
out = sort(out, "step", false)
save_csv(out, "largest_by_step.csv")
result(out)`, colA, colB)
	case "interestingness":
		if req.StepIndex == 0 {
			return `w = load_table("work")
w = zscore_sum(w, "interestingness", ["fof_halo_mass", "fof_halo_vel_disp", "fof_halo_ke"])
w = sort(w, "interestingness", true)
save_csv(w, "scored.csv")
result(w)`
		}
		return fmt.Sprintf(`w = load_table("analysis")
top = head(w, %d)
top = umap2d(top, ["fof_halo_mass", "fof_halo_vel_disp", "fof_halo_ke"])
save_csv(top, "umap.csv")
result(top)`, maxInt(in.TopN, 100))
	case "gasfrac":
		if req.StepIndex == 0 {
			return `w = load_table("work")
w = derive_ratio(w, "fgas", "sod_halo_MGas500c", "sod_halo_M500c")
w = derive_log10(w, "log_fgas", "fgas")
w = derive_log10(w, "log_m500", "sod_halo_M500c")
save_csv(w, "fgas_data.csv")
result(w)`
		}
		return fmt.Sprintf(`w = load_table("analysis")
fits = linfit_by(w, %q, "log_m500", "log_fgas")
save_csv(fits, "fgas_fits.csv")
result(fits)`, evolutionGroup(in))
	case "smhm":
		if req.StepIndex == 0 {
			return `g = load_table("work_gal")
h = load_table("work")
j = join(g, h, "fof_halo_tag")
j = filter_gt(j, "gal_stellar_mass", 0)
j = derive_log10(j, "log_mstar", "gal_stellar_mass")
j = derive_log10(j, "log_mhalo", "fof_halo_mass")
save_csv(j, "smhm_data.csv")
result(j)`
		}
		return fmt.Sprintf(`j = load_table("analysis")
fits = linfit_by(j, %q, "log_mhalo", "log_mstar")
fits = sort(fits, "scatter", false)
save_csv(fits, "smhm_fits.csv")
result(fits)`, smhmGroup(in))
	case "galhalocompare":
		if req.StepIndex == 0 {
			return `h = load_table("work")
top2 = head(sort(h, "fof_halo_count", true), 2)
g = load_table("work_gal")
g2 = semi_join(g, top2, "fof_halo_tag")
gtop = top_per_group(g2, "fof_halo_tag", "gal_stellar_mass", 10)
save_csv(gtop, "top_galaxies.csv")
result(gtop)`
		}
		return `g = load_table("analysis")
cmp = groupby_multi(g, ["fof_halo_tag"], ["gal_stellar_mass", "gal_gas_mass", "gal_kinetic_energy"], ["mean", "mean", "mean"], ["mean_stellar", "mean_gas", "mean_ke"])
save_csv(cmp, "group_comparison.csv")
result(cmp)`
	case "alignment":
		n := maxInt(in.TopN, 100)
		if req.StepIndex == 0 {
			return fmt.Sprintf(`h = load_table("work")
toph = head(sort(h, "fof_halo_count", true), %d)
g = load_table("work_gal")
topg = head(sort(g, "gal_stellar_mass", true), %d)
matched = semi_join(topg, toph, "fof_halo_tag")
save_csv(toph, "top_halos.csv")
save_csv(topg, "top_galaxies.csv")
result(matched)`, n, n)
		}
		return fmt.Sprintf(`m = load_table("analysis")
n = nrows(m)
print("galaxies aligned with top halos:", n)
aligned = derive_const(m, "aligned_of_top", %d)
result(aligned)`, n)
	case "neighborhood":
		sim, step := scopeSimStep(req)
		return fmt.Sprintf(`nb = halo_neighborhood_top(%d, %d, 0, %g)
save_csv(nb, "neighborhood.csv")
result(nb)`, sim, step, in.Radius)
	case "paramdirection":
		switch req.Strategy % 3 {
		case 0: // mean characteristics of top halos per simulation + params
			return fmt.Sprintf(`w = load_table("work")
top = top_per_group(w, "sim", "fof_halo_count", %d)
out = groupby_multi(top, ["sim"], ["fof_halo_count", "fof_halo_mass", "f_sn", "log_v_sn"], ["mean", "mean", "first", "first"], ["mean_count", "mean_mass", "f_sn", "log_v_sn"])
save_csv(out, "param_means.csv")
result(out)`, maxInt(in.TopN, 100))
		case 1: // linear correlation between parameters and halo mass
			return fmt.Sprintf(`w = load_table("work")
top = top_per_group(w, "sim", "fof_halo_count", %d)
bysim = groupby_multi(top, ["sim"], ["fof_halo_count", "f_sn", "log_v_sn"], ["mean", "first", "first"], ["mean_count", "f_sn", "log_v_sn"])
fsn = linfit(bysim, "f_sn", "mean_count")
vsn = linfit(bysim, "log_v_sn", "mean_count")
both = concat(fsn, vsn)
save_csv(both, "param_fits.csv")
result(both)`, maxInt(in.TopN, 100))
		default: // correlation matrix across characteristics
			return `w = load_table("work")
m = corr_matrix(w, ["fof_halo_count", "fof_halo_mass", "f_sn", "log_v_sn"])
save_csv(m, "param_corr.csv")
result(m)`
		}
	case "corrmatrix":
		cols := in.Metrics
		if len(cols) < 2 {
			cols = []string{"fof_halo_count", "fof_halo_mass", "fof_halo_vel_disp", "fof_halo_ke"}
		}
		return fmt.Sprintf(`w = load_table("work")
m = corr_matrix(w, %s)
save_csv(m, "corr_matrix.csv")
result(m)`, strList(cols))
	case "hist":
		metric := firstMetric(in)
		return fmt.Sprintf(`w = load_table("work")
h = histogram(w, %q, 20)
save_csv(h, "hist.csv")
result(h)`, metric)
	case "relation":
		x, y := relationCols(in)
		if in.AllSteps || in.PerSim || in.AllSims {
			return fmt.Sprintf(`w = load_table("work")
w = derive_log10(w, "log_x", %q)
w = derive_log10(w, "log_y", %q)
fits = linfit_by(w, %q, "log_x", "log_y")
fits = sort(fits, "scatter", false)
save_csv(fits, "relation_fits.csv")
result(fits)`, x, y, evolutionGroup(in))
		}
		return fmt.Sprintf(`w = load_table("work")
w = derive_log10(w, "log_x", %q)
w = derive_log10(w, "log_y", %q)
fit = linfit(w, "log_x", "log_y")
save_csv(fit, "relation_fit.csv")
result(fit)`, x, y)
	default: // inspect
		return `w = load_table("work")
out = head(w, 20)
result(out)`
	}
}

// genViz emits the visualization code for the request's viz plan step.
func genViz(req ScriptRequest, wrongKind bool) string {
	in := req.Intent
	switch in.Analysis {
	case "track":
		col, name := "max_count", "halo_count"
		if req.StepIndex == 1 {
			col, name = "max_mass", "halo_mass"
		}
		if wrongKind {
			return fmt.Sprintf(`a = load_table("analysis")
scatter_plot(a, "step", %q, "Largest halo %s per timestep", %q)`, col, name, name+".svg")
		}
		return fmt.Sprintf(`a = load_table("analysis")
line_plot_by(a, "step", %q, "sim", "Largest halo %s per timestep", %q)`, col, name, name+".svg")
	case "interestingness":
		return fmt.Sprintf(`a = load_table("analysis")
scatter_plot_highlight(a, "umap_x", "umap_y", %d, "Halo interestingness (UMAP)", "umap.svg")`, maxInt(in.Highlight, 10))
	case "gasfrac":
		if wrongKind {
			return `a = load_table("analysis")
hist_plot(a, "slope", 10, "fgas-mass relation slope", "fgas_evolution.svg")`
		}
		if in.AllSteps {
			return `a = load_table("analysis")
line_plot(a, "step", ["slope", "intercept"], "fgas-mass relation evolution", "fgas_evolution.svg")`
		}
		return `a = load_table("analysis")
scatter_plot(a, "sim", "slope", "fgas-mass relation slope per simulation", "fgas_comparison.svg")`
	case "smhm":
		if req.StepIndex == 0 {
			return `a = load_table("analysis")
scatter_plot(a, "log_mhalo", "log_mstar", "Stellar-to-halo mass relation", "smhm_scatter.svg")`
		}
		return fmt.Sprintf(`a = load_table("analysis")
scatter_plot(a, %q, "scatter", "SMHM intrinsic scatter", "smhm_seed_scatter.svg")`, smhmGroup(in))
	case "galhalocompare":
		return `a = load_table("analysis")
scatter_plot(a, "mean_stellar", "mean_gas", "Galaxy group comparison", "group_compare.svg")`
	case "alignment", "neighborhood":
		table, tag := "analysis", "is_target"
		if in.Analysis == "alignment" {
			return `h = load_table("work")
toph = head(sort(h, "fof_halo_count", true), 100)
toph = derive_const(toph, "is_target", 0)
paraview_scene(toph, "fof_halo_center_x", "fof_halo_center_y", "fof_halo_center_z", "fof_halo_mass", "is_target", "halos_scene.vtk")`
		}
		return fmt.Sprintf(`nb = load_table(%q)
paraview_scene(nb, "fof_halo_center_x", "fof_halo_center_y", "fof_halo_center_z", "fof_halo_mass", %q, "neighborhood.vtk")`, table, tag)
	case "paramdirection":
		// The plot must match the analytical strategy the python step chose
		// (§4.5: several valid pathways, each with its own summary view).
		switch req.Strategy % 3 {
		case 1:
			return `a = load_table("analysis")
scatter_plot(a, "slope", "r", "Parameter-halo count fits", "param_summary.svg")`
		case 2:
			return `a = load_table("analysis")
scatter_plot(a, "corr_f_sn", "corr_log_v_sn", "Characteristic correlations", "param_summary.svg")`
		default:
			return `a = load_table("analysis")
scatter_plot(a, "f_sn", "mean_count", "Halo count vs FSN", "param_summary.svg")`
		}
	case "hist":
		metric := firstMetric(in)
		return fmt.Sprintf(`w = load_table("work")
hist_plot(w, %q, 20, "Distribution of %s", "hist.svg")`, metric, metric)
	case "aggregate":
		keys := groupKeys(in)
		metric := in.Aggregate + "_" + firstMetric(in)
		if wrongKind {
			return fmt.Sprintf(`a = load_table("analysis")
scatter_plot(a, %q, %q, "Aggregate", "aggregate.svg")`, keys[len(keys)-1], metric)
		}
		return fmt.Sprintf(`a = load_table("analysis")
line_plot(a, %q, [%q], "Aggregate over %s", "aggregate.svg")`, keys[len(keys)-1], metric, keys[len(keys)-1])
	case "relation":
		if in.AllSteps || in.PerSim || in.AllSims {
			return fmt.Sprintf(`w = load_table("analysis")
scatter_plot(w, %q, "slope", "Fitted relation slope", "relation.svg")`, evolutionGroup(in))
		}
		return `w = load_table("work")
w = derive_log10(w, "log_x", "` + relX(in) + `")
w = derive_log10(w, "log_y", "` + relY(in) + `")
scatter_plot(w, "log_x", "log_y", "Fitted relation", "relation.svg")`
	default:
		if in.Plot == "paraview" {
			return `w = load_table("work")
w = derive_const(w, "is_target", 0)
paraview_scene(w, "fof_halo_center_x", "fof_halo_center_y", "fof_halo_center_z", "fof_halo_mass", "is_target", "scene.vtk")`
		}
		return fmt.Sprintf(`a = load_table("analysis")
scatter_plot(a, %q, %q, "Result", "plot.svg")`, "sim", firstMetric(in))
	}
}

func groupKeys(in Intent) []string {
	switch {
	case in.PerStep && in.PerSim:
		return []string{"sim", "step"}
	case in.PerStep:
		return []string{"step"}
	case in.PerSim:
		return []string{"sim"}
	default:
		return []string{"sim"}
	}
}

// evolutionGroup picks the grouping column for "how does X evolve/differ"
// fits: by timestep when the question spans steps, else by simulation.
func evolutionGroup(in Intent) string {
	if in.AllSteps {
		return "step"
	}
	return "sim"
}

// smhmGroup fits the SMHM relation per seed mass across the ensemble, or
// per timestep for single-run evolution questions.
func smhmGroup(in Intent) string {
	if in.AllSteps && !in.AllSims {
		return "step"
	}
	return "m_seed"
}

func relX(in Intent) string { x, _ := relationCols(in); return x }
func relY(in Intent) string { _, y := relationCols(in); return y }

func relationCols(in Intent) (x, y string) {
	if len(in.Metrics) >= 2 {
		return in.Metrics[0], in.Metrics[1]
	}
	return "fof_halo_mass", "fof_halo_count"
}

func scopeSimStep(req ScriptRequest) (sim, step int) {
	sim = 0
	if len(req.Sims) > 0 {
		sim = req.Sims[0]
	}
	step = hacc.FinalStep
	if len(req.Steps) > 0 {
		step = req.Steps[len(req.Steps)-1]
	}
	return sim, step
}

func strList(items []string) string {
	quoted := make([]string, len(items))
	for i, s := range items {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return "[" + strings.Join(quoted, ", ") + "]"
}
