package llm

import (
	"regexp"
	"sort"
	"strconv"
	"strings"

	"infera/internal/hacc"
)

// Intent is the model's structured reading of a natural-language question.
// It is produced by the planning skill (embedded in the returned plan, the
// way a real plan document pins down interpretation) and consumed by the
// SQL/script/viz generation skills.
type Intent struct {
	Question string `json:"question"`

	Entities []string `json:"entities"`  // file families involved
	Sims     []int    `json:"sims"`      // explicit simulations; nil with AllSims=false means sim list unknown -> all
	AllSims  bool     `json:"all_sims"`  // "all simulations"
	Steps    []int    `json:"steps"`     // explicit steps
	AllSteps bool     `json:"all_steps"` // full time evolution

	TopN      int      `json:"top_n"`     // "largest 100", 0 = no ranking
	Highlight int      `json:"highlight"` // "highlighting the top 20"
	RankBy    string   `json:"rank_by"`   // ranking column
	Metrics   []string `json:"metrics"`   // metric columns referenced
	Aggregate string   `json:"aggregate"` // avg/sum/median/count/std
	PerStep   bool     `json:"per_step"`  // group results by timestep
	PerSim    bool     `json:"per_sim"`   // group results by simulation

	WantPlot bool   `json:"want_plot"`
	Plot     string `json:"plot"` // line|scatter|hist|umap|paraview

	// Analysis picks the analytical recipe: aggregate, topn, track,
	// interestingness, gasfrac, smhm, galhalocompare, alignment,
	// neighborhood, paramdirection, hist, corrmatrix, relation, inspect.
	Analysis string `json:"analysis"`

	Radius    float64 `json:"radius"`     // Mpc, spatial queries
	Threshold float64 `json:"threshold"`  // "halos above X" filters
	Ambiguous bool    `json:"ambiguous"`  // multiple valid strategies (§4.5)
	ParamCols bool    `json:"param_cols"` // needs per-run sub-grid parameter columns
}

var (
	reSim       = regexp.MustCompile(`(?i)\bsim(?:ulation)?s?\s+(\d+)`)
	reStep      = regexp.MustCompile(`(?i)\b(?:time\s*step|timestep|step)s?\s+(\d+)`)
	reTopN      = regexp.MustCompile(`(?i)\b(?:largest|top|biggest)\s+(\d+)`)
	reNTop      = regexp.MustCompile(`(?i)\b(\d+)\s+(?:largest|most massive|biggest)`)
	reHighlight = regexp.MustCompile(`(?i)highlight(?:ing)?\s+the\s+top\s+(\d+)`)
	reRadius    = regexp.MustCompile(`(?i)within\s+(?:a\s+)?(\d+(?:\.\d+)?)\s*(?:mpc|megaparsec)`)
	reThreshold = regexp.MustCompile(`(?i)(?:above|greater than|more than|exceeding)\s+(\d+(?:\.\d+)?(?:e\d+)?)`)
)

var numberWords = map[string]int{
	"one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
	"ten": 10, "twenty": 20, "fifty": 50, "hundred": 100,
}

// ParseIntent derives the structured intent from a question. It is the
// "chain-of-thought comprehension" step of the planning agent, implemented
// as deterministic keyword and dictionary matching.
func ParseIntent(question string) Intent {
	q := strings.ToLower(question)
	in := Intent{Question: question}

	// Entities from keywords and from explicit column mentions.
	if strings.Contains(q, "galax") {
		in.Entities = append(in.Entities, hacc.FileGalaxies)
	}
	if strings.Contains(q, "halo") {
		in.Entities = append(in.Entities, hacc.FileHalos)
	}
	if strings.Contains(q, "particle") && !strings.Contains(q, "dark matter halo") {
		in.Entities = append(in.Entities, hacc.FileParticles)
	}
	if strings.Contains(q, "core") {
		in.Entities = append(in.Entities, hacc.FileCores)
	}

	// Explicit column mentions (the "(fof_halo_count)" style of Table 1).
	// Word-boundary matching: short labels like particles' "x" must not
	// match inside arbitrary words.
	cols := map[string]bool{}
	for _, cd := range hacc.ColumnDictionary() {
		if wordMatch(q, strings.ToLower(cd.Column)) {
			cols[cd.Column] = true
			if !containsStr(in.Entities, cd.FileType) && (cd.FileType == hacc.FileHalos || cd.FileType == hacc.FileGalaxies) {
				in.Entities = append(in.Entities, cd.FileType)
			}
		}
	}
	for c := range cols {
		in.Metrics = append(in.Metrics, c)
	}
	sort.Strings(in.Metrics)

	// Simulations.
	for _, m := range reSim.FindAllStringSubmatch(q, -1) {
		if n, err := strconv.Atoi(m[1]); err == nil {
			in.Sims = appendUniqueInt(in.Sims, n)
		}
	}
	if strings.Contains(q, "all simulations") || strings.Contains(q, "all the simulations") ||
		strings.Contains(q, "every simulation") || strings.Contains(q, "each simulation") ||
		regexp.MustCompile(`\d+ simulations`).MatchString(q) {
		in.AllSims = true
		in.Sims = nil
	}

	// Steps.
	for _, m := range reStep.FindAllStringSubmatch(q, -1) {
		if n, err := strconv.Atoi(m[1]); err == nil {
			in.Steps = appendUniqueInt(in.Steps, n)
		}
	}
	if strings.Contains(q, "all timesteps") || strings.Contains(q, "all time steps") ||
		strings.Contains(q, "each time step") || strings.Contains(q, "each timestep") ||
		strings.Contains(q, "every timestep") || strings.Contains(q, "over time") ||
		strings.Contains(q, "earliest timestep to the latest") ||
		strings.Contains(q, "all timestep") || strings.Contains(q, "evolve") ||
		strings.Contains(q, "evolution") {
		in.AllSteps = true
		in.Steps = nil
	}

	// Ranking.
	if m := reTopN.FindStringSubmatch(q); m != nil {
		in.TopN, _ = strconv.Atoi(m[1])
	} else if m := reNTop.FindStringSubmatch(q); m != nil {
		in.TopN, _ = strconv.Atoi(m[1])
	} else {
		for word, n := range numberWords {
			if strings.Contains(q, "the "+word+" largest") || strings.Contains(q, "top "+word+" ") ||
				strings.Contains(q, word+" largest") {
				in.TopN = n
				break
			}
		}
	}
	if in.TopN == 0 && (strings.Contains(q, "the largest") || strings.Contains(q, "most massive")) &&
		!strings.Contains(q, "largest halos") && !strings.Contains(q, "largest friends") {
		in.TopN = 1
	}
	if m := reHighlight.FindStringSubmatch(q); m != nil {
		in.Highlight, _ = strconv.Atoi(m[1])
	}

	// Ranking column.
	switch {
	case cols["fof_halo_count"] || strings.Contains(q, "halo count") || strings.Contains(q, "particle count"):
		in.RankBy = "fof_halo_count"
	case strings.Contains(q, "kinetic energy") && strings.Contains(q, "top"):
		in.RankBy = "fof_halo_ke"
	case strings.Contains(q, "largest galax") || (strings.Contains(q, "galax") && !strings.Contains(q, "halo")):
		in.RankBy = "gal_stellar_mass"
	default:
		in.RankBy = "fof_halo_mass"
	}

	// Aggregation.
	switch {
	case strings.Contains(q, "average") || strings.Contains(q, "mean "):
		in.Aggregate = "avg"
	case strings.Contains(q, "median"):
		in.Aggregate = "median"
	case strings.Contains(q, "total ") || strings.Contains(q, "sum of"):
		in.Aggregate = "sum"
	case strings.Contains(q, "how many") || strings.Contains(q, "number of halos") || strings.Contains(q, "count of halos"):
		in.Aggregate = "count"
	case strings.Contains(q, "standard deviation"):
		in.Aggregate = "std"
	}
	in.PerStep = in.AllSteps && (in.Aggregate != "" || strings.Contains(q, "at each time step") || strings.Contains(q, "per timestep"))
	in.PerSim = strings.Contains(q, "per simulation") || strings.Contains(q, "for each simulation") ||
		strings.Contains(q, "by simulation") || strings.Contains(q, "in each simulation")

	// Plot request.
	if strings.Contains(q, "plot") || strings.Contains(q, "visuali") || strings.Contains(q, "graph") ||
		strings.Contains(q, "paraview") || strings.Contains(q, "histogram") {
		in.WantPlot = true
	}
	switch {
	case strings.Contains(q, "paraview") || strings.Contains(q, "3d"):
		in.Plot = "paraview"
	case strings.Contains(q, "umap"):
		in.Plot = "umap"
	case strings.Contains(q, "histogram") || strings.Contains(q, "distribution of"):
		in.Plot = "hist"
	case in.AllSteps && in.WantPlot:
		in.Plot = "line"
	case in.WantPlot:
		in.Plot = "scatter"
	}

	// Radius queries.
	if m := reRadius.FindStringSubmatch(q); m != nil {
		in.Radius, _ = strconv.ParseFloat(m[1], 64)
	}

	// Threshold filters ("halos with count above 500").
	if m := reThreshold.FindStringSubmatch(q); m != nil {
		in.Threshold, _ = strconv.ParseFloat(m[1], 64)
	}

	// Parameter interest.
	if strings.Contains(q, "seed mass") || strings.Contains(q, "fsn") || strings.Contains(q, "agn") ||
		strings.Contains(q, "parameter") || strings.Contains(q, "feedback") {
		in.ParamCols = true
	}

	in.Analysis = classifyAnalysis(q, &in)
	if in.Analysis == "paramdirection" || (strings.Contains(q, "characteristics") && !strings.Contains(q, "for example")) {
		in.Ambiguous = in.Analysis == "paramdirection"
	}

	// Analyses that relate galaxies to their host halos need both catalogs
	// regardless of which words the question used.
	switch in.Analysis {
	case "smhm", "galhalocompare", "alignment":
		for _, ft := range []string{hacc.FileHalos, hacc.FileGalaxies} {
			if !containsStr(in.Entities, ft) {
				in.Entities = append(in.Entities, ft)
			}
		}
	}
	// SMHM as a function of seed mass spans the ensemble.
	if in.Analysis == "smhm" && in.ParamCols {
		in.AllSims = true
		in.Sims = nil
	}

	// Fallback: a question with no recognized entity defaults to halos (the
	// primary catalog), mirroring how a model guesses the main table.
	if len(in.Entities) == 0 {
		in.Entities = []string{hacc.FileHalos}
	}
	return in
}

func classifyAnalysis(q string, in *Intent) string {
	switch {
	case in.Radius > 0:
		return "neighborhood"
	case strings.Contains(q, "interestingness") || strings.Contains(q, "most unique") || strings.Contains(q, "most interesting"):
		return "interestingness"
	case strings.Contains(q, "smhm") || strings.Contains(q, "stellar-to-halo") || strings.Contains(q, "stellar to halo"):
		return "smhm"
	case strings.Contains(q, "gas-mass fraction") || strings.Contains(q, "gas mass fraction") ||
		(strings.Contains(q, "mgas500c") && strings.Contains(q, "slope")):
		return "gasfrac"
	case strings.Contains(q, "align"):
		return "alignment"
	case strings.Contains(q, "galaxies associated") || (strings.Contains(q, "associated") && strings.Contains(q, "galax")):
		return "galhalocompare"
	case strings.Contains(q, "direction of the") && strings.Contains(q, "parameter"):
		return "paramdirection"
	case (strings.Contains(q, "change in mass") || strings.Contains(q, "mass evolution") ||
		(strings.Contains(q, "track") && strings.Contains(q, "halo"))):
		return "track"
	case strings.Contains(q, "correlation matrix") || strings.Contains(q, "correlations between"):
		return "corrmatrix"
	case in.Plot == "hist":
		return "hist"
	case strings.Contains(q, "relation") && len(in.Metrics) >= 2:
		return "relation"
	case in.Aggregate != "":
		return "aggregate"
	case in.TopN > 0:
		return "topn"
	default:
		return "inspect"
	}
}

// wordMatch reports whether word occurs in text delimited by non-identifier
// characters.
func wordMatch(text, word string) bool {
	for i := 0; i+len(word) <= len(text); {
		j := strings.Index(text[i:], word)
		if j < 0 {
			return false
		}
		start := i + j
		end := start + len(word)
		beforeOK := start == 0 || !isIdentChar(text[start-1])
		afterOK := end == len(text) || !isIdentChar(text[end])
		if beforeOK && afterOK {
			return true
		}
		i = start + 1
	}
	return false
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
}

func appendUniqueInt(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
