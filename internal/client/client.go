// Package client is the typed Go client for the inferad daemon's versioned
// /v1/ensembles HTTP API (internal/service): registering ensemble shards,
// routing questions to them, and reading session, provenance and metrics
// state, all over the service package's wire types.
package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"infera/internal/provenance"
	"infera/internal/service"
)

// Client talks to one inferad daemon — or a fleet router, which serves the
// same /v1 surface (see NewRouted). The zero value is not usable; create
// with New.
type Client struct {
	base  string
	http  *http.Client
	retry *RetryPolicy // nil = no retry (the default)
}

// New returns a client for the daemon at base ("host:port" or a full
// "http://host:port" URL). Asks block for the full workflow, so the
// underlying transport has no overall timeout; pass a custom *http.Client
// via WithHTTPClient to change that.
func New(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// WithHTTPClient swaps the underlying HTTP client (timeouts, transports).
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.http = hc
	return c
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status  int    // HTTP status code
	Message string // decoded error body (or raw text)
	// RetryAfter is the response's parsed Retry-After delay (0 if absent)
	// — honored by WithRetry clients before the next attempt.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("inferad: %s (HTTP %d)", e.Message, e.Status)
}

// IsNotFound reports whether err is an APIError with status 404.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusNotFound
}

// do runs one JSON round-trip, transparently retrying idempotent GETs when
// the client opted in via WithRetry. in == nil sends no body; out == nil
// ignores the response body.
func (c *Client) do(method, path string, in, out any) error {
	return c.doRetry(method, path, in, out, method == http.MethodGet)
}

// doRetry runs the round-trip with up to MaxAttempts tries when retryable
// and a RetryPolicy is set; otherwise exactly one.
func (c *Client) doRetry(method, path string, in, out any, retryable bool) error {
	attempts := 1
	if retryable && c.retry != nil {
		attempts = c.retry.MaxAttempts
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(c.retry.backoffDelay(i, lastErr))
		}
		err := c.doOnce(method, path, in, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryableError(err) {
			return err
		}
	}
	return lastErr
}

func (c *Client) doOnce(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeAPIError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeAPIError turns a non-2xx response into an *APIError, preferring
// the daemon's {"error": ...} body over raw text.
func decodeAPIError(resp *http.Response) *APIError {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var eb struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(data))
	if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	ae := &APIError{Status: resp.StatusCode, Message: msg}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

func eidPath(eid string, parts ...string) string {
	p := "/v1/ensembles/" + url.PathEscape(eid)
	for _, part := range parts {
		p += "/" + url.PathEscape(part)
	}
	return p
}

// Healthz checks daemon liveness.
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}

// Ensembles lists every registered shard.
func (c *Client) Ensembles() ([]service.ShardInfo, error) {
	var out []service.ShardInfo
	err := c.do(http.MethodGet, "/v1/ensembles", nil, &out)
	return out, err
}

// Register adds an ensemble shard by name and directory (the daemon-side
// path). Registering the same name+dir again is idempotent.
func (c *Client) Register(name, dir string) (service.ShardInfo, error) {
	return c.RegisterShard(service.RegisterRequest{Name: name, Dir: dir})
}

// RegisterShard adds an ensemble shard with the full request payload,
// including per-shard worker/cache-capacity overrides of the daemon
// defaults. Re-registering the same name+dir updates the overrides, which
// apply at the shard's next spin-up.
func (c *Client) RegisterShard(req service.RegisterRequest) (service.ShardInfo, error) {
	var out service.ShardInfo
	err := c.do(http.MethodPost, "/v1/ensembles", req, &out)
	return out, err
}

// Ensemble fetches one shard's detail (live/cold state, workers, cache
// entries, fingerprint age).
func (c *Client) Ensemble(eid string) (service.ShardInfo, error) {
	var out service.ShardInfo
	err := c.do(http.MethodGet, eidPath(eid), nil, &out)
	return out, err
}

// Ask routes one question to shard eid, blocking until the answer (or a
// cache hit) is ready. With WithRetry enabled, non-interactive asks retry
// on transient failures: they are deterministic and answer-cache-keyed, so
// a replay either hits the cache or recomputes the identical answer —
// interactive asks (live sessions with approval state) never retry.
func (c *Client) Ask(eid string, req service.AskRequest) (*service.AskResult, error) {
	var out service.AskResult
	if err := c.doRetry(http.MethodPost, eidPath(eid, "ask"), req, &out, !req.Interactive); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sessions lists shard eid's session records.
func (c *Client) Sessions(eid string) ([]service.SessionInfo, error) {
	var out []service.SessionInfo
	err := c.do(http.MethodGet, eidPath(eid, "sessions"), nil, &out)
	return out, err
}

// Session fetches one session record.
func (c *Client) Session(eid, id string) (service.SessionInfo, error) {
	var out service.SessionInfo
	err := c.do(http.MethodGet, eidPath(eid, "sessions", id), nil, &out)
	return out, err
}

// Provenance fetches the artifact manifest behind one session record.
func (c *Client) Provenance(eid, id string) ([]provenance.Entry, error) {
	var out []provenance.Entry
	err := c.do(http.MethodGet, eidPath(eid, "sessions", id, "provenance"), nil, &out)
	return out, err
}

// ShardMetrics fetches one shard's metrics snapshot.
func (c *Client) ShardMetrics(eid string) (service.Metrics, error) {
	var out service.Metrics
	err := c.do(http.MethodGet, eidPath(eid, "metrics"), nil, &out)
	return out, err
}

// Metrics fetches the aggregate fleet snapshot.
func (c *Client) Metrics() (service.RegistryMetrics, error) {
	var out service.RegistryMetrics
	err := c.do(http.MethodGet, "/v1/metrics", nil, &out)
	return out, err
}

// PrometheusMetrics fetches /v1/metrics/prometheus and returns the raw
// text-exposition body — latency histograms, counters and gauges for every
// shard, ready to hand to a scraper or grep in a load test.
func (c *Client) PrometheusMetrics() (string, error) {
	resp, err := c.http.Get(c.base + "/v1/metrics/prometheus")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeAPIError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// WaitReady polls /healthz until the daemon answers or the deadline
// elapses — a convenience for scripts that just started the process.
func (c *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := c.Healthz()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("inferad not ready after %s: %w", timeout, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
