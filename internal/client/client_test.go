package client

import (
	"errors"
	"net/http"
	"testing"
	"time"

	"infera/internal/agent"
	"infera/internal/hacc"
	"infera/internal/llm"
	"infera/internal/service"
)

func testEnsemble(t *testing.T, seed int64) string {
	t.Helper()
	dir := t.TempDir()
	spec := hacc.Spec{
		Runs:             2,
		Steps:            []int{99, 498},
		HalosPerRun:      80,
		ParticlesPerStep: 50,
		BoxSize:          128,
		Seed:             seed,
	}
	if _, err := hacc.Generate(dir, spec); err != nil {
		t.Fatal(err)
	}
	return dir
}

func startDaemon(t *testing.T) (*Client, string) {
	t.Helper()
	reg := service.NewRegistry(service.RegistryConfig{
		Defaults: service.Config{
			Workers: 1,
			Seed:    1,
			NewModel: func(seed int64) llm.Client {
				return llm.NewSim(llm.SimConfig{Seed: seed, ColumnErrorRate: 1e-9, ToolErrorRate: 1e-9})
			},
		},
		WorkDir: t.TempDir(),
	})
	if _, err := reg.Register("default", testEnsemble(t, 3)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	srv := service.NewServer(reg)
	if err := srv.Start(""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return New(srv.Addr()), srv.Addr()
}

const topHalosQ = "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?"

func TestClientRoundTrip(t *testing.T) {
	c, _ := startDaemon(t)
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Register a second shard through the API.
	info, err := c.Register("survey-b", testEnsemble(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "survey-b" || info.State != "cold" {
		t.Fatalf("register = %+v", info)
	}
	list, err := c.Ensembles()
	if err != nil || len(list) != 2 {
		t.Fatalf("ensembles = %v (%v)", list, err)
	}

	res, err := c.Ask("survey-b", service.AskRequest{Question: topHalosQ})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != "" || res.Rows != 20 || res.Cached {
		t.Fatalf("ask = %+v", res)
	}
	hit, err := c.Ask("survey-b", service.AskRequest{Question: topHalosQ})
	if err != nil || !hit.Cached {
		t.Fatalf("second ask = %+v (%v)", hit, err)
	}

	sessions, err := c.Sessions("survey-b")
	if err != nil || len(sessions) != 2 {
		t.Fatalf("sessions = %v (%v)", sessions, err)
	}
	one, err := c.Session("survey-b", res.RequestID)
	if err != nil || one.Status != "done" {
		t.Fatalf("session = %+v (%v)", one, err)
	}
	entries, err := c.Provenance("survey-b", res.RequestID)
	if err != nil || len(entries) == 0 {
		t.Fatalf("provenance = %d entries (%v)", len(entries), err)
	}

	detail, err := c.Ensemble("survey-b")
	if err != nil || detail.State != "live" || detail.CacheEntries != 1 {
		t.Fatalf("detail = %+v (%v)", detail, err)
	}
	sm, err := c.ShardMetrics("survey-b")
	if err != nil || sm.Completed != 1 || sm.CachedTotal != 1 {
		t.Fatalf("shard metrics = %+v (%v)", sm, err)
	}
	am, err := c.Metrics()
	if err != nil || am.Shards != 2 || am.Completed != 1 {
		t.Fatalf("aggregate metrics = %+v (%v)", am, err)
	}

	// Typed errors: unknown shard -> 404 APIError.
	_, err = c.Ask("nope", service.AskRequest{Question: topHalosQ})
	if !IsNotFound(err) {
		t.Fatalf("unknown shard err = %v", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound || ae.Message == "" {
		t.Fatalf("error shape = %+v", err)
	}
	// Conflicting registration -> 409.
	_, err = c.Register("survey-b", t.TempDir())
	if !errors.As(err, &ae) || ae.Status != http.StatusConflict {
		t.Fatalf("conflict err = %v", err)
	}
}

// TestClientInteractiveStream is the streaming smoke: an interactive ask
// driven end to end through the typed client — 202 handle, SSE event
// stream, a plan revision, approval, and the stored result. This is the
// same ReviewedAsk path the infera REPL runs.
func TestClientInteractiveStream(t *testing.T) {
	c, _ := startDaemon(t)

	var (
		rounds   int
		kinds    []agent.EventKind
		lastSeq  int
		outOfSeq bool
	)
	res, err := c.ReviewedAsk("default", service.AskRequest{Question: topHalosQ},
		func(ev agent.Event) agent.PlanDecision {
			rounds++
			if ev.Plan == nil || len(ev.Plan.Steps) == 0 {
				t.Errorf("review called without a plan: %+v", ev)
			}
			if rounds == 1 {
				if ev.Kind != agent.EventPlanProposed {
					t.Errorf("round 1 kind = %v", ev.Kind)
				}
				return agent.PlanDecision{Approve: false, Comment: "also include halo mass"}
			}
			if ev.Kind != agent.EventPlanRevised {
				t.Errorf("round %d kind = %v", rounds, ev.Kind)
			}
			return agent.PlanDecision{Approve: true}
		},
		func(ev agent.Event) {
			kinds = append(kinds, ev.Kind)
			if ev.Seq != lastSeq+1 {
				outOfSeq = true
			}
			lastSeq = ev.Seq
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != "" || res.Rows != 20 || res.Cached {
		t.Fatalf("result = %+v", res)
	}
	if rounds != 2 {
		t.Fatalf("review rounds = %d, want 2 (propose + revise)", rounds)
	}
	if outOfSeq {
		t.Fatalf("stream delivered out-of-sequence events: %v", kinds)
	}
	if len(kinds) == 0 || kinds[len(kinds)-1] != agent.EventAnswer {
		t.Fatalf("stream kinds = %v", kinds)
	}

	// Manual resume: replay the finished session's stream from an offset.
	sessions, err := c.Sessions("default")
	if err != nil || len(sessions) == 0 {
		t.Fatalf("sessions = %v (%v)", sessions, err)
	}
	id := sessions[len(sessions)-1].ID
	stream, err := c.StreamEvents("default", id, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	first, err := stream.Next()
	if err != nil || first.Seq != 3 {
		t.Fatalf("resumed stream starts at %d (%v), want 3", first.Seq, err)
	}
	// And the long-poll fallback sees the same completed log.
	events, after, done, err := c.PollEvents("default", id, 0, 0)
	if err != nil || !done || len(events) != lastSeq || after != lastSeq {
		t.Fatalf("poll = %d events after=%d done=%v (%v)", len(events), after, done, err)
	}
}

// TestClientShardAdmin covers the admin wrappers: overrides, warm, delete.
func TestClientShardAdmin(t *testing.T) {
	c, _ := startDaemon(t)
	info, err := c.RegisterShard(service.RegisterRequest{Name: "tuned", Dir: testEnsemble(t, 9), Workers: 1, CacheCapacity: 2})
	if err != nil || info.Overrides == nil || info.Overrides.Workers != 1 {
		t.Fatalf("register shard = %+v (%v)", info, err)
	}
	warmed, err := c.Warm("tuned")
	if err != nil || warmed.State != "live" || warmed.Workers != 1 {
		t.Fatalf("warm = %+v (%v)", warmed, err)
	}
	if err := c.Unregister("tuned", true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ensemble("tuned"); !IsNotFound(err) {
		t.Fatalf("deleted shard err = %v", err)
	}
}
