package client

import (
	"errors"
	"net/http"
	"testing"
	"time"

	"infera/internal/hacc"
	"infera/internal/llm"
	"infera/internal/service"
)

func testEnsemble(t *testing.T, seed int64) string {
	t.Helper()
	dir := t.TempDir()
	spec := hacc.Spec{
		Runs:             2,
		Steps:            []int{99, 498},
		HalosPerRun:      80,
		ParticlesPerStep: 50,
		BoxSize:          128,
		Seed:             seed,
	}
	if _, err := hacc.Generate(dir, spec); err != nil {
		t.Fatal(err)
	}
	return dir
}

func startDaemon(t *testing.T) (*Client, string) {
	t.Helper()
	reg := service.NewRegistry(service.RegistryConfig{
		Defaults: service.Config{
			Workers: 1,
			Seed:    1,
			NewModel: func(seed int64) llm.Client {
				return llm.NewSim(llm.SimConfig{Seed: seed, ColumnErrorRate: 1e-9, ToolErrorRate: 1e-9})
			},
		},
		WorkDir: t.TempDir(),
	})
	if _, err := reg.Register("default", testEnsemble(t, 3)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	srv := service.NewServer(reg)
	if err := srv.Start(""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return New(srv.Addr()), srv.Addr()
}

const topHalosQ = "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?"

func TestClientRoundTrip(t *testing.T) {
	c, _ := startDaemon(t)
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Register a second shard through the API.
	info, err := c.Register("survey-b", testEnsemble(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "survey-b" || info.State != "cold" {
		t.Fatalf("register = %+v", info)
	}
	list, err := c.Ensembles()
	if err != nil || len(list) != 2 {
		t.Fatalf("ensembles = %v (%v)", list, err)
	}

	res, err := c.Ask("survey-b", service.AskRequest{Question: topHalosQ})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != "" || res.Rows != 20 || res.Cached {
		t.Fatalf("ask = %+v", res)
	}
	hit, err := c.Ask("survey-b", service.AskRequest{Question: topHalosQ})
	if err != nil || !hit.Cached {
		t.Fatalf("second ask = %+v (%v)", hit, err)
	}

	sessions, err := c.Sessions("survey-b")
	if err != nil || len(sessions) != 2 {
		t.Fatalf("sessions = %v (%v)", sessions, err)
	}
	one, err := c.Session("survey-b", res.RequestID)
	if err != nil || one.Status != "done" {
		t.Fatalf("session = %+v (%v)", one, err)
	}
	entries, err := c.Provenance("survey-b", res.RequestID)
	if err != nil || len(entries) == 0 {
		t.Fatalf("provenance = %d entries (%v)", len(entries), err)
	}

	detail, err := c.Ensemble("survey-b")
	if err != nil || detail.State != "live" || detail.CacheEntries != 1 {
		t.Fatalf("detail = %+v (%v)", detail, err)
	}
	sm, err := c.ShardMetrics("survey-b")
	if err != nil || sm.Completed != 1 || sm.CachedTotal != 1 {
		t.Fatalf("shard metrics = %+v (%v)", sm, err)
	}
	am, err := c.Metrics()
	if err != nil || am.Shards != 2 || am.Completed != 1 {
		t.Fatalf("aggregate metrics = %+v (%v)", am, err)
	}

	// Typed errors: unknown shard -> 404 APIError.
	_, err = c.Ask("nope", service.AskRequest{Question: topHalosQ})
	if !IsNotFound(err) {
		t.Fatalf("unknown shard err = %v", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound || ae.Message == "" {
		t.Fatalf("error shape = %+v", err)
	}
	// Conflicting registration -> 409.
	_, err = c.Register("survey-b", t.TempDir())
	if !errors.As(err, &ae) || ae.Status != http.StatusConflict {
		t.Fatalf("conflict err = %v", err)
	}
}
