package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"infera/internal/agent"
	"infera/internal/service"
)

// AskInteractive starts a streaming session on shard eid and returns its
// session handle immediately (HTTP 202). Follow the lifecycle with
// StreamEvents (or PollEvents), answer plan proposals with SubmitPlan, and
// fetch the final answer with Result once the stream completes.
func (c *Client) AskInteractive(eid string, req service.AskRequest) (service.SessionInfo, error) {
	req.Interactive = true
	var out service.SessionInfo
	err := c.do(http.MethodPost, eidPath(eid, "ask"), req, &out)
	return out, err
}

// SubmitPlan delivers an approve/revise decision for the plan currently
// awaiting review on session id. A 409 APIError means no plan is pending
// (not proposed yet, already decided, or auto-approved by deadline).
func (c *Client) SubmitPlan(eid, id string, d agent.PlanDecision) error {
	return c.do(http.MethodPost, eidPath(eid, "sessions", id, "plan"), d, nil)
}

// Result fetches the final AskResult of interactive session id. A 409
// APIError means the session has not finished yet.
func (c *Client) Result(eid, id string) (*service.AskResult, error) {
	var out service.AskResult
	if err := c.do(http.MethodGet, eidPath(eid, "sessions", id, "result"), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PollEvents long-polls session id for events past the after cursor,
// waiting up to wait server-side. It returns the page's events, the cursor
// to resume from, and whether the stream is complete.
func (c *Client) PollEvents(eid, id string, after int, wait time.Duration) ([]agent.Event, int, bool, error) {
	var page service.EventsPage
	path := fmt.Sprintf("%s?after=%d&wait=%s", eidPath(eid, "sessions", id, "events"), after, wait)
	if err := c.do(http.MethodGet, path, nil, &page); err != nil {
		return nil, after, false, err
	}
	return page.Events, page.After, page.Done, nil
}

// Unregister removes shard eid from the daemon, closing it first if live.
// purgeProvenance also removes the shard's on-disk trail (provenance
// sessions and persisted answer cache).
func (c *Client) Unregister(eid string, purgeProvenance bool) error {
	path := eidPath(eid)
	if purgeProvenance {
		path += "?purge=provenance"
	}
	return c.do(http.MethodDelete, path, nil, nil)
}

// Warm spins shard eid's pool and fingerprint up ahead of a burst.
func (c *Client) Warm(eid string) (service.ShardInfo, error) {
	var out service.ShardInfo
	err := c.do(http.MethodPost, eidPath(eid, "warm"), nil, &out)
	return out, err
}

// EventStream iterates a session's server-sent event stream. It resumes
// transparently: a dropped connection reconnects with Last-Event-ID set to
// the last sequence number delivered, so no event is lost or duplicated.
type EventStream struct {
	c        *Client
	eid, id  string
	after    int
	resp     *http.Response
	scanner  *bufio.Scanner
	done     bool
	retries  int
	maxRetry int
}

// StreamEvents opens the SSE stream of session id on shard eid, starting
// after sequence number after (0 = from the beginning).
func (c *Client) StreamEvents(eid, id string, after int) (*EventStream, error) {
	s := &EventStream{c: c, eid: eid, id: id, after: after, maxRetry: 5}
	if err := s.connect(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *EventStream) connect() error {
	req, err := http.NewRequest(http.MethodGet, s.c.base+eidPath(s.eid, "sessions", s.id, "events"), nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if s.after > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(s.after))
	}
	resp, err := s.c.http.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return decodeAPIError(resp)
	}
	s.resp = resp
	s.scanner = bufio.NewScanner(resp.Body)
	s.scanner.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return nil
}

// Next returns the next event. It returns io.EOF once the stream has
// delivered its terminal event and the server sent the done sentinel.
// Transport drops reconnect transparently from the last delivered
// sequence; the retry budget counts consecutive drops with no frame
// received (server heartbeats reset it, so a long-lived idle stream
// survives any number of intermediary timeouts).
func (s *EventStream) Next() (agent.Event, error) {
	for {
		ev, err := s.nextFrame()
		if err == nil || err == io.EOF {
			return ev, err
		}
		// Transport hiccup: resume from the last delivered sequence.
		s.Close()
		if s.retries++; s.retries > s.maxRetry {
			return agent.Event{}, fmt.Errorf("inferad: event stream lost after %d reconnects: %w", s.maxRetry, err)
		}
		time.Sleep(time.Duration(s.retries) * 50 * time.Millisecond)
		if cerr := s.connect(); cerr != nil {
			var ae *APIError
			if errors.As(cerr, &ae) {
				return agent.Event{}, cerr // the server answered: not a transport blip
			}
			continue // connect-level transport failure spends another retry
		}
	}
}

// nextFrame parses one SSE frame off the wire.
func (s *EventStream) nextFrame() (agent.Event, error) {
	if s.done {
		return agent.Event{}, io.EOF
	}
	if s.scanner == nil {
		return agent.Event{}, io.ErrUnexpectedEOF
	}
	var (
		eventType string
		data      []byte
	)
	for s.scanner.Scan() {
		line := s.scanner.Text()
		switch {
		case line == "":
			// Frame boundary.
			if eventType == "done" {
				s.done = true
				return agent.Event{}, io.EOF
			}
			if len(data) == 0 {
				// Comment/heartbeat frame: the connection is alive, so the
				// drop budget starts fresh.
				s.retries = 0
				eventType = ""
				continue
			}
			var ev agent.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return agent.Event{}, fmt.Errorf("inferad: bad event frame: %w", err)
			}
			s.retries = 0
			if ev.Seq > s.after {
				s.after = ev.Seq
			}
			return ev, nil
		case len(line) > 6 && line[:7] == "event: ":
			eventType = line[7:]
		case len(line) > 5 && line[:6] == "data: ":
			data = append(data, line[6:]...)
		case len(line) > 3 && line[:4] == "id: ":
			// Seq is also in the payload; the id line drives resume only.
		}
	}
	if err := s.scanner.Err(); err != nil {
		return agent.Event{}, err
	}
	// Body ended without the done sentinel: the connection dropped.
	return agent.Event{}, io.ErrUnexpectedEOF
}

// LastSeq returns the sequence number of the last event delivered — the
// cursor a manual resume would pass to StreamEvents.
func (s *EventStream) LastSeq() int { return s.after }

// Close releases the underlying connection. The stream may be resumed by
// opening a new one from LastSeq.
func (s *EventStream) Close() error {
	if s.resp != nil {
		err := s.resp.Body.Close()
		s.resp, s.scanner = nil, nil
		return err
	}
	return nil
}

// ErrDecisionExpired reports that a reviewer's plan decision could not be
// delivered because the review window had already closed — the server's
// approval deadline auto-approved the plan while the reviewer was
// deciding. ReviewedAsk returns it alongside the (still valid) result so
// callers can tell "answer from the approved plan" from "answer from a
// plan whose rejection was dropped".
var ErrDecisionExpired = errors.New("inferad: plan review window expired; plan was auto-approved")

// ReviewedAsk drives one interactive ask end to end: it starts the
// session, streams events, calls review on every proposed/revised plan
// (submitting the decision), forwards every event to onEvent (when set),
// and returns the final result once the stream completes. This is the one
// code path both the infera REPL and automated smoke tests run, so the
// interactive pipeline is exercised identically everywhere.
//
// If a rejection could not be delivered before the server's approval
// deadline, the session still completes and the result is returned
// together with ErrDecisionExpired.
func (c *Client) ReviewedAsk(eid string, req service.AskRequest,
	review func(ev agent.Event) agent.PlanDecision,
	onEvent func(ev agent.Event)) (*service.AskResult, error) {

	info, err := c.AskInteractive(eid, req)
	if err != nil {
		return nil, err
	}
	stream, err := c.StreamEvents(eid, info.ID, 0)
	if err != nil {
		return nil, err
	}
	defer stream.Close()
	droppedRejection := false
	for {
		ev, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if onEvent != nil {
			onEvent(ev)
		}
		if ev.Kind == agent.EventPlanProposed || ev.Kind == agent.EventPlanRevised {
			if review == nil {
				continue // leave the decision to the approval deadline
			}
			d := review(ev)
			switch err := c.submitDecision(eid, info.ID, d); {
			case errors.Is(err, ErrDecisionExpired):
				// An expired approval is indistinguishable from the
				// auto-approval that replaced it; an expired rejection
				// changed the outcome and must be surfaced.
				if !d.Approve {
					droppedRejection = true
				}
			case err != nil:
				return nil, err
			}
		}
	}
	res, err := c.Result(eid, info.ID)
	if err != nil {
		return nil, err
	}
	if droppedRejection {
		return res, ErrDecisionExpired
	}
	return res, nil
}

// submitDecision delivers a plan decision, retrying briefly on 409: the
// plan event is emitted just before the approval gate arms, so a fast
// client's POST can land in that sliver and see "no plan pending" for a
// plan that is about to block. Retrying for a bounded window closes the
// race; a 409 that persists past it means the window genuinely closed
// (deadline auto-approved while the reviewer was deciding), reported as
// ErrDecisionExpired.
func (c *Client) submitDecision(eid, id string, d agent.PlanDecision) error {
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := c.SubmitPlan(eid, id, d)
		if err == nil {
			return nil
		}
		var ae *APIError
		if !(errors.As(err, &ae) && ae.Status == http.StatusConflict) {
			return err
		}
		if time.Now().After(deadline) {
			return ErrDecisionExpired
		}
		time.Sleep(20 * time.Millisecond)
	}
}
