package client

import (
	"errors"
	"math/rand"
	"net/http"
	"time"
)

// RetryPolicy bounds the client's transparent retry of transient failures.
// Zero fields take the defaults below.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 4).
	MaxAttempts int
	// BaseDelay seeds the jittered exponential backoff between attempts
	// (default 100ms); MaxDelay caps it (default 2s). A Retry-After header
	// on the failed response overrides the computed delay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// WithRetry opts the client into bounded retry with jittered exponential
// backoff for idempotent GETs and non-interactive (cache-hit-eligible)
// asks, on transient transport failures (connection refused, reset) and
// 502/503/504 responses — the failure modes a fleet router surfaces while
// a node crash is being failed over. Off by default: POSTs with side
// effects (plan decisions, registration through code paths that care about
// exactly-once) and interactive asks are never retried.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	pp := p.withDefaults()
	c.retry = &pp
	return c
}

// NewRouted returns a client for a fleet router at base: a regular client
// with the default RetryPolicy enabled, so brief node failovers surface as
// slower answers instead of errors.
func NewRouted(base string) *Client {
	return New(base).WithRetry(RetryPolicy{})
}

// retryableError reports whether err is worth another attempt: transport
// failures (the daemon or router vanished mid-request) and the transient
// gateway statuses. 4xx means the request itself is wrong; 500/501 means a
// non-transient server condition.
func retryableError(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Status {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	// Anything else from do() at this layer is a transport error
	// (connection refused/reset, unexpected EOF) — the class failover
	// produces.
	return err != nil
}

// backoffDelay computes the pause before attempt n (1-based count of
// failures so far): a Retry-After from the server wins, otherwise
// BaseDelay·2^(n-1) capped at MaxDelay, jittered ±50% so a herd of
// retrying clients doesn't re-arrive in lockstep.
func (p RetryPolicy) backoffDelay(n int, lastErr error) time.Duration {
	var ae *APIError
	if errors.As(lastErr, &ae) && ae.RetryAfter > 0 {
		return ae.RetryAfter
	}
	d := p.BaseDelay << (n - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}
