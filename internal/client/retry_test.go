package client

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"infera/internal/service"
)

// flakyHandler fails the first n requests per key with status, then
// succeeds.
type flakyHandler struct {
	failures int32
	status   int
	hits     atomic.Int32
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := h.hits.Add(1)
	if n <= h.failures {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(h.status)
		fmt.Fprintf(w, `{"error":"transient %d"}`, h.status)
		return
	}
	_ = json.NewEncoder(w).Encode(service.AskResult{RequestID: "q-1", Rows: 1})
}

func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func TestRetryOffByDefault(t *testing.T) {
	h := &flakyHandler{failures: 1, status: http.StatusServiceUnavailable}
	srv := httptest.NewServer(h)
	defer srv.Close()
	c := New(srv.URL)
	if err := c.Healthz(); err == nil {
		t.Fatal("expected the 503 to surface without WithRetry")
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("server hit %d times; want exactly 1 without retry", got)
	}
}

func TestRetryGetRecoversTransient5xx(t *testing.T) {
	for _, status := range []int{http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout} {
		h := &flakyHandler{failures: 2, status: status}
		srv := httptest.NewServer(h)
		c := New(srv.URL).WithRetry(fastRetry())
		if err := c.Healthz(); err != nil {
			t.Errorf("status %d: retries did not recover: %v", status, err)
		}
		if got := h.hits.Load(); got != 3 {
			t.Errorf("status %d: %d attempts; want 3", status, got)
		}
		srv.Close()
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	h := &flakyHandler{failures: 100, status: http.StatusServiceUnavailable}
	srv := httptest.NewServer(h)
	defer srv.Close()
	c := New(srv.URL).WithRetry(fastRetry())
	if err := c.Healthz(); err == nil {
		t.Fatal("expected a persistent 503 to fail")
	}
	if got := h.hits.Load(); got != 4 {
		t.Fatalf("%d attempts; want MaxAttempts=4", got)
	}
}

func TestRetryDoesNotTouchNonTransientStatuses(t *testing.T) {
	for _, status := range []int{http.StatusBadRequest, http.StatusNotFound, http.StatusConflict, http.StatusInternalServerError, http.StatusNotImplemented} {
		h := &flakyHandler{failures: 100, status: status}
		srv := httptest.NewServer(h)
		c := New(srv.URL).WithRetry(fastRetry())
		if err := c.Healthz(); err == nil {
			t.Errorf("status %d: expected error", status)
		}
		if got := h.hits.Load(); got != 1 {
			t.Errorf("status %d retried: %d attempts", status, got)
		}
		srv.Close()
	}
}

func TestRetryAskOnlyWhenNotInteractive(t *testing.T) {
	h := &flakyHandler{failures: 1, status: http.StatusServiceUnavailable}
	srv := httptest.NewServer(h)
	defer srv.Close()
	c := New(srv.URL).WithRetry(fastRetry())

	// Non-interactive asks are deterministic and answer-cache-keyed —
	// replays are safe, so the POST retries.
	if _, err := c.Ask("e", service.AskRequest{Question: "q"}); err != nil {
		t.Fatalf("non-interactive ask did not retry: %v", err)
	}
	if got := h.hits.Load(); got != 2 {
		t.Fatalf("%d attempts; want 2", got)
	}

	// Interactive asks carry live approval state — never replayed.
	h.hits.Store(0)
	h.failures = 1
	if _, err := c.Ask("e", service.AskRequest{Question: "q", Interactive: true}); err == nil {
		t.Fatal("interactive ask should have surfaced the 503")
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("interactive ask hit the server %d times; want 1", got)
	}
}

func TestRetryConnectionRefused(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	base := srv.URL
	srv.Close() // nothing listens: connection refused
	c := New(base).WithRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	start := time.Now()
	if err := c.Healthz(); err == nil {
		t.Fatal("expected connection refused to fail after retries")
	}
	// Proves the second attempt happened: at least one backoff pause ran.
	if time.Since(start) < time.Millisecond/2 {
		t.Log("note: refusals resolve fast; timing assertion skipped")
	}
}

func TestRetryAfterHeaderOverridesBackoff(t *testing.T) {
	ae := &APIError{Status: 503, RetryAfter: 123 * time.Second}
	p := fastRetry()
	if d := p.backoffDelay(1, ae); d != 123*time.Second {
		t.Fatalf("backoffDelay with Retry-After = %v; want 123s", d)
	}
	if d := p.backoffDelay(1, &APIError{Status: 503}); d > p.MaxDelay {
		t.Fatalf("computed backoff %v exceeds MaxDelay %v", d, p.MaxDelay)
	}
}

func TestDecodeAPIErrorParsesRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"busy"}`)
	}))
	defer srv.Close()
	err := New(srv.URL).Healthz()
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("err = %T %v", err, err)
	}
	if ae.RetryAfter != 7*time.Second || ae.Message != "busy" {
		t.Fatalf("APIError = %+v", ae)
	}
}
