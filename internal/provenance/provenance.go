// Package provenance implements InferA's audit trail (§4.2.1): every
// intermediate CSV, generated code text, plot, scene and summary is
// recorded as a sequentially numbered artifact with a SHA-256 hash in an
// append-only manifest, and every node transition can checkpoint the full
// workflow state, enabling verification, replay and branch-from-checkpoint
// exploration.
package provenance

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"infera/internal/dataframe"
)

// Entry is one manifest line.
type Entry struct {
	Seq    int    `json:"seq"`
	Agent  string `json:"agent"` // which agent produced the artifact
	Kind   string `json:"kind"`  // "data" | "code" | "plot" | "scene" | "summary" | "checkpoint" | ...
	Name   string `json:"name"`
	File   string `json:"file"` // session-relative path
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// Store manages sessions under a root directory.
type Store struct {
	Root string
}

// NewStore creates (if needed) and returns a store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{Root: dir}, nil
}

// Session is one workflow's provenance record.
type Session struct {
	ID  string
	dir string

	mu      sync.Mutex
	seq     int
	entries []Entry
}

const manifestName = "manifest.jsonl"

// NewSession creates a fresh session directory. Creation is atomic — the
// exclusive os.Mkdir claims the ID — so concurrent callers racing on the
// same ID get exactly one winner instead of two sessions sharing a
// directory.
func (s *Store) NewSession(id string) (*Session, error) {
	dir := filepath.Join(s.Root, id)
	if err := os.Mkdir(dir, 0o755); err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("provenance: session %q already exists", id)
		}
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, "artifacts"), 0o755); err != nil {
		return nil, err
	}
	return &Session{ID: id, dir: dir}, nil
}

// OpenSession loads an existing session and its manifest.
func (s *Store) OpenSession(id string) (*Session, error) {
	dir := filepath.Join(s.Root, id)
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("provenance: open session %q: %w", id, err)
	}
	sess := &Session{ID: id, dir: dir}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("provenance: manifest line: %w", err)
		}
		sess.entries = append(sess.entries, e)
		if e.Seq >= sess.seq {
			sess.seq = e.Seq + 1
		}
	}
	return sess, nil
}

// Sessions lists session IDs in the store.
func (s *Store) Sessions() ([]string, error) {
	entries, err := os.ReadDir(s.Root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// SessionStat reports a session trail's total on-disk footprint and its
// most recent modification time — the inputs retention sweeps rank trails
// by. The size counts every file under the session directory (artifacts,
// manifest, checkpoints), not just manifest-recorded bytes.
func (s *Store) SessionStat(id string) (bytes int64, newest time.Time, err error) {
	root := filepath.Join(s.Root, id)
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return ierr
		}
		bytes += info.Size()
		if info.ModTime().After(newest) {
			newest = info.ModTime()
		}
		return nil
	})
	return bytes, newest, err
}

// RemoveSession deletes a session's directory and everything in it — the
// retention sweep's disposal primitive. Removing a nonexistent session is
// not an error.
func (s *Store) RemoveSession(id string) error {
	return os.RemoveAll(filepath.Join(s.Root, id))
}

// Dir returns the session directory.
func (s *Session) Dir() string { return s.dir }

// Record stores data as the next sequentially numbered artifact.
func (s *Session) Record(agent, kind, name string, data []byte) (Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.seq
	s.seq++
	file := filepath.Join("artifacts", fmt.Sprintf("%03d_%s_%s_%s", seq, sanitize(agent), sanitize(kind), sanitize(name)))
	full := filepath.Join(s.dir, file)
	if err := os.WriteFile(full, data, 0o644); err != nil {
		return Entry{}, err
	}
	sum := sha256.Sum256(data)
	e := Entry{
		Seq:    seq,
		Agent:  agent,
		Kind:   kind,
		Name:   name,
		File:   file,
		SHA256: hex.EncodeToString(sum[:]),
		Bytes:  int64(len(data)),
	}
	line, err := json.Marshal(e)
	if err != nil {
		return Entry{}, err
	}
	mf, err := os.OpenFile(filepath.Join(s.dir, manifestName), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return Entry{}, err
	}
	defer mf.Close()
	if _, err := mf.Write(append(line, '\n')); err != nil {
		return Entry{}, err
	}
	s.entries = append(s.entries, e)
	return e, nil
}

// RecordFrame stores a dataframe as a CSV artifact of kind "data".
func (s *Session) RecordFrame(agent, name string, f *dataframe.Frame) (Entry, error) {
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		return Entry{}, err
	}
	if !strings.HasSuffix(name, ".csv") {
		name += ".csv"
	}
	return s.Record(agent, "data", name, buf.Bytes())
}

// Checkpoint stores a JSON-marshaled workflow state snapshot, enabling the
// stateful branch-and-explore workflow of §4.2.1.
func (s *Session) Checkpoint(label string, state any) (Entry, error) {
	data, err := json.MarshalIndent(state, "", "  ")
	if err != nil {
		return Entry{}, err
	}
	return s.Record("system", "checkpoint", label+".json", data)
}

// Manifest returns the recorded entries in order.
func (s *Session) Manifest() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Entry(nil), s.entries...)
}

// Read returns an artifact's bytes by manifest entry.
func (s *Session) Read(e Entry) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.dir, e.File))
}

// LastCheckpoint returns the most recent checkpoint entry, if any.
func (s *Session) LastCheckpoint() (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.entries) - 1; i >= 0; i-- {
		if s.entries[i].Kind == "checkpoint" {
			return s.entries[i], true
		}
	}
	return Entry{}, false
}

// Verify re-hashes every artifact against the manifest, returning the
// entries that fail (missing or modified files). An empty slice means the
// audit trail is intact.
func (s *Session) Verify() ([]Entry, error) {
	var bad []Entry
	for _, e := range s.Manifest() {
		data, err := os.ReadFile(filepath.Join(s.dir, e.File))
		if err != nil {
			bad = append(bad, e)
			continue
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != e.SHA256 {
			bad = append(bad, e)
		}
	}
	return bad, nil
}

// SizeBytes sums recorded artifact sizes — the storage-overhead numerator
// alongside the staging database.
func (s *Session) SizeBytes() int64 {
	var total int64
	for _, e := range s.Manifest() {
		total += e.Bytes
	}
	return total
}

// Branch creates a new session seeded with this session's artifacts up to
// and including seq upTo (copying files and manifest prefix), so
// alternative follow-up steps can run from an established processing stage
// without recomputing it.
func (s *Store) Branch(from *Session, newID string, upTo int) (*Session, error) {
	dst, err := s.NewSession(newID)
	if err != nil {
		return nil, err
	}
	for _, e := range from.Manifest() {
		if e.Seq > upTo {
			break
		}
		data, err := from.Read(e)
		if err != nil {
			return nil, fmt.Errorf("provenance: branch: %w", err)
		}
		if _, err := dst.Record(e.Agent, e.Kind, e.Name, data); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
