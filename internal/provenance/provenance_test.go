package provenance

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"infera/internal/dataframe"
)

func newSession(t *testing.T) (*Store, *Session) {
	t.Helper()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := store.NewSession("run-001")
	if err != nil {
		t.Fatal(err)
	}
	return store, sess
}

func TestRecordSequencesAndManifest(t *testing.T) {
	_, sess := newSession(t)
	e1, err := sess.Record("sql", "code", "query.sql", []byte("SELECT 1"))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := sess.Record("python", "code", "analysis.py", []byte("x = 1"))
	if err != nil {
		t.Fatal(err)
	}
	if e1.Seq != 0 || e2.Seq != 1 {
		t.Errorf("seqs = %d, %d", e1.Seq, e2.Seq)
	}
	if !strings.HasPrefix(filepath.Base(e1.File), "000_sql_code_") {
		t.Errorf("file name = %s", e1.File)
	}
	m := sess.Manifest()
	if len(m) != 2 || m[1].Agent != "python" {
		t.Errorf("manifest = %+v", m)
	}
	data, err := sess.Read(e1)
	if err != nil || string(data) != "SELECT 1" {
		t.Errorf("read = %q, %v", data, err)
	}
}

func TestRecordFrameAndSize(t *testing.T) {
	_, sess := newSession(t)
	f := dataframe.MustFromColumns(dataframe.NewInt("a", []int64{1, 2}))
	e, err := sess.RecordFrame("loader", "halos", f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(e.Name, ".csv") || e.Kind != "data" {
		t.Errorf("entry = %+v", e)
	}
	if sess.SizeBytes() != e.Bytes {
		t.Errorf("size = %d, want %d", sess.SizeBytes(), e.Bytes)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	_, sess := newSession(t)
	e, err := sess.Record("viz", "plot", "p.svg", []byte("<svg/>"))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := sess.Verify()
	if err != nil || len(bad) != 0 {
		t.Fatalf("fresh session should verify: %v %v", bad, err)
	}
	if err := os.WriteFile(filepath.Join(sess.Dir(), e.File), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad, err = sess.Verify()
	if err != nil || len(bad) != 1 {
		t.Errorf("tampering not detected: %v %v", bad, err)
	}
}

func TestOpenSessionResumesSequence(t *testing.T) {
	store, sess := newSession(t)
	if _, err := sess.Record("a", "k", "x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	re, err := store.OpenSession("run-001")
	if err != nil {
		t.Fatal(err)
	}
	e, err := re.Record("b", "k", "y", []byte("2"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 1 {
		t.Errorf("resumed seq = %d, want 1", e.Seq)
	}
	if len(re.Manifest()) != 2 {
		t.Errorf("manifest = %d entries", len(re.Manifest()))
	}
}

func TestCheckpointAndLast(t *testing.T) {
	_, sess := newSession(t)
	type state struct{ Step int }
	if _, err := sess.Checkpoint("after-load", state{Step: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Record("sql", "code", "q", []byte("SELECT")); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Checkpoint("after-sql", state{Step: 2}); err != nil {
		t.Fatal(err)
	}
	cp, ok := sess.LastCheckpoint()
	if !ok || !strings.Contains(cp.Name, "after-sql") {
		t.Errorf("last checkpoint = %+v, %v", cp, ok)
	}
	data, err := sess.Read(cp)
	if err != nil || !strings.Contains(string(data), "\"Step\": 2") {
		t.Errorf("checkpoint content = %q", data)
	}
}

func TestBranchCopiesPrefix(t *testing.T) {
	store, sess := newSession(t)
	for i, name := range []string{"a", "b", "c"} {
		if _, err := sess.Record("agent", "data", name, []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	branch, err := store.Branch(sess, "run-001-alt", 1)
	if err != nil {
		t.Fatal(err)
	}
	m := branch.Manifest()
	if len(m) != 2 || m[1].Name != "b" {
		t.Errorf("branch manifest = %+v", m)
	}
	// The branch continues independently.
	if _, err := branch.Record("agent", "data", "d", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if len(sess.Manifest()) != 3 {
		t.Error("branching mutated the source session")
	}
	bad, _ := branch.Verify()
	if len(bad) != 0 {
		t.Errorf("branch does not verify: %v", bad)
	}
}

func TestDuplicateSessionRejected(t *testing.T) {
	store, _ := newSession(t)
	if _, err := store.NewSession("run-001"); err == nil {
		t.Error("duplicate session should fail")
	}
	ids, err := store.Sessions()
	if err != nil || len(ids) != 1 || ids[0] != "run-001" {
		t.Errorf("sessions = %v, %v", ids, err)
	}
}

func TestSanitizeNames(t *testing.T) {
	_, sess := newSession(t)
	e, err := sess.Record("ag ent", "co/de", "../weird name.sql", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(e.File)
	if strings.ContainsAny(base, "/ ") {
		t.Errorf("unsanitized artifact name: %s", e.File)
	}
	// The file must stay inside the session's artifacts directory.
	if filepath.Dir(e.File) != "artifacts" {
		t.Errorf("artifact escaped artifacts dir: %s", e.File)
	}
	if _, err := os.Stat(filepath.Join(sess.Dir(), e.File)); err != nil {
		t.Errorf("artifact not written: %v", err)
	}
}
