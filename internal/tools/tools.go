// Package tools implements the domain-specific custom tools of §3 — the
// capabilities "too specialized and complex for an agent to develop":
// merger-tree-aware halo tracking across timesteps and ParaView 3-D scene
// generation. Tools register into the script DSL so the code-generating
// agents can call them like any other function, mirroring the paper's
// multi-tool selection mechanism.
package tools

import (
	"fmt"
	"math"

	"infera/internal/dataframe"
	"infera/internal/hacc"
	"infera/internal/script"
	"infera/internal/stage"
	"infera/internal/viz"
)

// Raw snapshot reads go through a staging cache keyed per (file, column),
// so a tool invocation and a concurrent data-loader session touching the
// same (sim, step) slice share decodes column by column — TrackHalo's
// narrow (tag, metric) selection rides on the tag column a loader already
// staged, paying only for the metric block — and repeated tool calls
// (e.g. a tracked halo re-examined across questions) are served from
// memory. Each tool takes the cache explicitly (nil means the
// process-wide stage.Shared()), so a pool configured with an isolated
// cache keeps tool decodes in it too.

// stageOr resolves a possibly-nil cache to the process-wide default.
func stageOr(sc *stage.Cache) *stage.Cache {
	if sc == nil {
		return stage.Shared()
	}
	return sc
}

// TrackResult is one tracked snapshot of a halo.
type TrackResult struct {
	Step   int
	Tag    int64 // tag carrying the halo (target tag after mergers)
	Merged bool  // true once tracking follows a merger target
	Value  float64
}

// TrackHalo follows a halo across the catalog's timesteps by tag, reading
// only the tag and metric columns of each snapshot. When the halo merges
// away (per the run's merger tree), tracking continues on the absorbing
// halo, flagged Merged — the paper's custom "halo tracking across time
// steps" tool.
func TrackHalo(sc *stage.Cache, cat *hacc.Catalog, sim int, tag int64, metric string) ([]TrackResult, error) {
	sc = stageOr(sc)
	treeEntry, ok := cat.Find(sim, -1, hacc.FileMergerTree)
	if !ok {
		return nil, fmt.Errorf("tools: no merger tree for sim %d", sim)
	}
	tree, _, err := sc.Columns(cat.AbsPath(treeEntry), "victim_tag", "target_tag", "merge_step")
	if err != nil {
		return nil, err
	}
	mergeInto := map[int64]int64{}
	mergeStep := map[int64]int64{}
	for i := 0; i < tree.NumRows(); i++ {
		v := tree.MustColumn("victim_tag").I[i]
		mergeInto[v] = tree.MustColumn("target_tag").I[i]
		mergeStep[v] = tree.MustColumn("merge_step").I[i]
	}

	// Resolve every step's snapshot up front and fan the (tag, metric)
	// column loads out over the cache's worker pool; the merger-chain walk
	// below only needs the results in step order, not sequential I/O.
	var (
		trackSteps []int
		reqs       []stage.Request
	)
	for _, step := range cat.Steps() {
		entry, ok := cat.Find(sim, step, hacc.FileHalos)
		if !ok {
			continue
		}
		trackSteps = append(trackSteps, step)
		reqs = append(reqs, stage.Request{Path: cat.AbsPath(entry), Columns: []string{"fof_halo_tag", metric}})
	}
	results := sc.LoadAll(reqs)

	var out []TrackResult
	current := tag
	merged := false
	for ri, step := range trackSteps {
		// Follow merger chain: the current tag may itself merge before this
		// step.
		for {
			ms, has := mergeStep[current]
			if has && int64(step) >= ms {
				current = mergeInto[current]
				merged = true
				continue
			}
			break
		}
		if results[ri].Err != nil {
			return nil, results[ri].Err
		}
		f := results[ri].Frame
		tags := f.MustColumn("fof_halo_tag").I
		vals := f.MustColumn(metric)
		for i, t := range tags {
			if t == current {
				out = append(out, TrackResult{Step: step, Tag: current, Merged: merged, Value: vals.FloatAt(i)})
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tools: halo %d not found in sim %d at any step", tag, sim)
	}
	return out, nil
}

// TrackFrame renders track results as a dataframe (step, tag, merged,
// value-named-by-metric).
func TrackFrame(results []TrackResult, metric string) *dataframe.Frame {
	steps := make([]int64, len(results))
	tags := make([]int64, len(results))
	merged := make([]int64, len(results))
	vals := make([]float64, len(results))
	for i, r := range results {
		steps[i] = int64(r.Step)
		tags[i] = r.Tag
		if r.Merged {
			merged[i] = 1
		}
		vals[i] = r.Value
	}
	return dataframe.MustFromColumns(
		dataframe.NewInt("step", steps),
		dataframe.NewInt("fof_halo_tag", tags),
		dataframe.NewInt("merged", merged),
		dataframe.NewFloat(metric, vals),
	)
}

// Neighborhood returns the halos within radius Mpc/h of the target halo
// (periodic box distance) at (sim, step), target first.
func Neighborhood(sc *stage.Cache, cat *hacc.Catalog, sim, step int, targetTag int64, radius float64) (*dataframe.Frame, error) {
	entry, ok := cat.Find(sim, step, hacc.FileHalos)
	if !ok {
		return nil, fmt.Errorf("tools: no halo file for sim %d step %d", sim, step)
	}
	f, _, err := stageOr(sc).Columns(cat.AbsPath(entry), "fof_halo_tag", "fof_halo_mass",
		"fof_halo_center_x", "fof_halo_center_y", "fof_halo_center_z")
	if err != nil {
		return nil, err
	}
	tags := f.MustColumn("fof_halo_tag").I
	xs := f.MustColumn("fof_halo_center_x").F
	ys := f.MustColumn("fof_halo_center_y").F
	zs := f.MustColumn("fof_halo_center_z").F
	ti := -1
	for i, t := range tags {
		if t == targetTag {
			ti = i
			break
		}
	}
	if ti < 0 {
		return nil, fmt.Errorf("tools: halo %d not found in sim %d step %d", targetTag, sim, step)
	}
	box := cat.Spec.BoxSize
	dist := func(i int) float64 {
		dx := pbc(xs[i]-xs[ti], box)
		dy := pbc(ys[i]-ys[ti], box)
		dz := pbc(zs[i]-zs[ti], box)
		return math.Sqrt(dx*dx + dy*dy + dz*dz)
	}
	idx := []int{ti}
	for i := range tags {
		if i != ti && dist(i) <= radius {
			idx = append(idx, i)
		}
	}
	out := f.Gather(idx)
	isTarget := make([]int64, out.NumRows())
	isTarget[0] = 1
	if err := out.AddColumn(dataframe.NewInt("is_target", isTarget)); err != nil {
		return nil, err
	}
	return out, nil
}

// NthMostMassiveTag returns the tag of the rank'th most massive halo
// (rank 0 = most massive) at (sim, step).
func NthMostMassiveTag(sc *stage.Cache, cat *hacc.Catalog, sim, step, rank int) (int64, error) {
	entry, ok := cat.Find(sim, step, hacc.FileHalos)
	if !ok {
		return 0, fmt.Errorf("tools: no halo file for sim %d step %d", sim, step)
	}
	f, _, err := stageOr(sc).Columns(cat.AbsPath(entry), "fof_halo_tag", "fof_halo_mass")
	if err != nil {
		return 0, err
	}
	sorted, err := f.SortBy(dataframe.SortKey{Col: "fof_halo_mass", Desc: true})
	if err != nil {
		return 0, err
	}
	if rank < 0 || rank >= sorted.NumRows() {
		return 0, fmt.Errorf("tools: rank %d out of range (%d halos)", rank, sorted.NumRows())
	}
	return sorted.MustColumn("fof_halo_tag").I[rank], nil
}

// pbc wraps a separation into the minimum-image convention.
func pbc(d, box float64) float64 {
	d = math.Mod(d, box)
	switch {
	case d > box/2:
		d -= box
	case d < -box/2:
		d += box
	}
	return d
}

// SceneFromFrame converts a frame with position columns into VTK points;
// rows where highlightCol is nonzero are highlighted.
func SceneFromFrame(f *dataframe.Frame, xcol, ycol, zcol, scalarCol, highlightCol string) ([]viz.Point3, error) {
	cx, err := f.Column(xcol)
	if err != nil {
		return nil, err
	}
	cy, err := f.Column(ycol)
	if err != nil {
		return nil, err
	}
	cz, err := f.Column(zcol)
	if err != nil {
		return nil, err
	}
	cs, err := f.Column(scalarCol)
	if err != nil {
		return nil, err
	}
	var ch *dataframe.Column
	if highlightCol != "" {
		ch, err = f.Column(highlightCol)
		if err != nil {
			return nil, err
		}
	}
	pts := make([]viz.Point3, f.NumRows())
	for i := range pts {
		pts[i] = viz.Point3{
			X: cx.FloatAt(i), Y: cy.FloatAt(i), Z: cz.FloatAt(i),
			Scalar: cs.FloatAt(i),
		}
		if ch != nil && ch.FloatAt(i) != 0 {
			pts[i].Highlight = true
		}
	}
	return pts, nil
}

// Register adds the domain tools to a script registry, closing over the
// ensemble catalog in read-only mode and the staging cache snapshot reads
// go through (nil uses stage.Shared()). Registered functions:
//
//	track_halo(sim, tag, metric) -> frame(step, fof_halo_tag, merged, metric)
//	halo_neighborhood(sim, step, tag, radius) -> frame
//	paraview_scene(df, xcol, ycol, zcol, scalarcol, highlightcol, out)
func Register(reg script.Registry, cat *hacc.Catalog, sc *stage.Cache) {
	sc = stageOr(sc)
	reg["track_halo"] = func(_ *script.Env, args []script.Value) (script.Value, error) {
		if len(args) != 3 {
			return script.Value{}, fmt.Errorf("TypeError: track_halo() takes 3 arguments, got %d", len(args))
		}
		if args[0].Kind != script.KindNum || args[1].Kind != script.KindNum || args[2].Kind != script.KindStr {
			return script.Value{}, fmt.Errorf("TypeError: track_halo(sim, tag, metric)")
		}
		results, err := TrackHalo(sc, cat, int(args[0].Num), int64(args[1].Num), args[2].Str)
		if err != nil {
			return script.Value{}, err
		}
		return script.FrameValue(TrackFrame(results, args[2].Str)), nil
	}
	reg["halo_neighborhood"] = func(_ *script.Env, args []script.Value) (script.Value, error) {
		if len(args) != 4 {
			return script.Value{}, fmt.Errorf("TypeError: halo_neighborhood() takes 4 arguments, got %d", len(args))
		}
		for _, a := range args {
			if a.Kind != script.KindNum {
				return script.Value{}, fmt.Errorf("TypeError: halo_neighborhood(sim, step, tag, radius)")
			}
		}
		f, err := Neighborhood(sc, cat, int(args[0].Num), int(args[1].Num), int64(args[2].Num), args[3].Num)
		if err != nil {
			return script.Value{}, err
		}
		return script.FrameValue(f), nil
	}
	reg["halo_neighborhood_top"] = func(_ *script.Env, args []script.Value) (script.Value, error) {
		if len(args) != 4 {
			return script.Value{}, fmt.Errorf("TypeError: halo_neighborhood_top() takes 4 arguments, got %d", len(args))
		}
		for _, a := range args {
			if a.Kind != script.KindNum {
				return script.Value{}, fmt.Errorf("TypeError: halo_neighborhood_top(sim, step, rank, radius)")
			}
		}
		sim, step, rank := int(args[0].Num), int(args[1].Num), int(args[2].Num)
		tag, err := NthMostMassiveTag(sc, cat, sim, step, rank)
		if err != nil {
			return script.Value{}, err
		}
		f, err := Neighborhood(sc, cat, sim, step, tag, args[3].Num)
		if err != nil {
			return script.Value{}, err
		}
		return script.FrameValue(f), nil
	}
	reg["paraview_scene"] = func(env *script.Env, args []script.Value) (script.Value, error) {
		if len(args) != 7 {
			return script.Value{}, fmt.Errorf("TypeError: paraview_scene() takes 7 arguments, got %d", len(args))
		}
		if args[0].Kind != script.KindFrame {
			return script.Value{}, fmt.Errorf("TypeError: paraview_scene() first argument must be a dataframe")
		}
		names := make([]string, 6)
		for i := 1; i < 7; i++ {
			if args[i].Kind != script.KindStr {
				return script.Value{}, fmt.Errorf("TypeError: paraview_scene() argument %d must be a string", i+1)
			}
			names[i-1] = args[i].Str
		}
		pts, err := SceneFromFrame(args[0].Frame, names[0], names[1], names[2], names[3], names[4])
		if err != nil {
			return script.Value{}, err
		}
		data := viz.WriteVTK("InferA halo scene", pts)
		if err := env.AddArtifact(names[5], data); err != nil {
			return script.Value{}, err
		}
		return script.NullValue(), nil
	}
}
