package tools

import (
	"math"
	"strings"
	"testing"

	"infera/internal/hacc"
	"infera/internal/sandbox"
	"infera/internal/script"
	"infera/internal/viz"
)

func testCatalog(t *testing.T) *hacc.Catalog {
	t.Helper()
	spec := hacc.Spec{
		Runs:             2,
		Steps:            []int{99, 250, 450, 624},
		HalosPerRun:      80,
		ParticlesPerStep: 100,
		BoxSize:          128,
		Seed:             11,
	}
	cat, err := hacc.Generate(t.TempDir(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestTrackHaloSurvivor(t *testing.T) {
	cat := testCatalog(t)
	// Tag 0 is the most massive halo of sim 0 and never merges away.
	results, err := TrackHalo(nil, cat, 0, 0, "fof_halo_mass")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cat.Steps()) {
		t.Fatalf("tracked %d steps, want %d", len(results), len(cat.Steps()))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Value < results[i-1].Value {
			t.Errorf("mass decreased at step %d (mergers only add)", results[i].Step)
		}
		if results[i].Merged {
			t.Errorf("survivor marked merged at step %d", results[i].Step)
		}
	}
	f := TrackFrame(results, "fof_halo_mass")
	if !f.Has("step") || !f.Has("fof_halo_mass") || f.NumRows() != len(results) {
		t.Errorf("track frame = %v", f.Names())
	}
}

func TestTrackHaloThroughMerger(t *testing.T) {
	cat := testCatalog(t)
	tree, err := hacc.Snapshot(cat.Spec, 0, 0, hacc.FileMergerTree)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumRows() == 0 {
		t.Skip("no mergers in this spec")
	}
	victim := tree.MustColumn("victim_tag").I[0]
	target := tree.MustColumn("target_tag").I[0]
	mergeStep := tree.MustColumn("merge_step").I[0]
	results, err := TrackHalo(nil, cat, 0, victim, "fof_halo_mass")
	if err != nil {
		t.Fatal(err)
	}
	sawMerged := false
	for _, r := range results {
		if int64(r.Step) >= mergeStep {
			if !r.Merged || r.Tag != target {
				t.Errorf("step %d: tracking should follow target %d (got tag %d merged=%v)", r.Step, target, r.Tag, r.Merged)
			}
			sawMerged = true
		} else if r.Tag != victim {
			t.Errorf("step %d: expected victim tag %d, got %d", r.Step, victim, r.Tag)
		}
	}
	if !sawMerged {
		t.Error("merger never followed (no step after merge step?)")
	}
}

func TestTrackHaloMissing(t *testing.T) {
	cat := testCatalog(t)
	if _, err := TrackHalo(nil, cat, 0, 999999999, "fof_halo_mass"); err == nil {
		t.Error("unknown halo should fail")
	}
}

func TestNeighborhood(t *testing.T) {
	cat := testCatalog(t)
	f, err := Neighborhood(nil, cat, 0, 624, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() < 1 {
		t.Fatal("neighborhood empty")
	}
	if f.MustColumn("is_target").I[0] != 1 || f.MustColumn("fof_halo_tag").I[0] != 0 {
		t.Error("target not first/flagged")
	}
	// All neighbours within radius (periodic distance).
	xs := f.MustColumn("fof_halo_center_x").F
	ys := f.MustColumn("fof_halo_center_y").F
	zs := f.MustColumn("fof_halo_center_z").F
	for i := 1; i < f.NumRows(); i++ {
		dx := pbc(xs[i]-xs[0], cat.Spec.BoxSize)
		dy := pbc(ys[i]-ys[0], cat.Spec.BoxSize)
		dz := pbc(zs[i]-zs[0], cat.Spec.BoxSize)
		if d := math.Sqrt(dx*dx + dy*dy + dz*dz); d > 20 {
			t.Errorf("neighbour %d at distance %.1f > 20", i, d)
		}
	}
	if _, err := Neighborhood(nil, cat, 0, 624, 999999999, 20); err == nil {
		t.Error("unknown target should fail")
	}
}

func TestPBC(t *testing.T) {
	if d := pbc(120, 128); d != -8 {
		t.Errorf("pbc(120,128) = %v", d)
	}
	if d := pbc(-120, 128); d != 8 {
		t.Errorf("pbc(-120,128) = %v", d)
	}
	if d := pbc(5, 128); d != 5 {
		t.Errorf("pbc(5,128) = %v", d)
	}
}

func TestRegisteredToolsInSandbox(t *testing.T) {
	cat := testCatalog(t)
	reg := script.DefaultRegistry()
	Register(reg, cat, nil)
	ex := &sandbox.Executor{Registry: reg}
	res := ex.Exec(`
tracked = track_halo(0, 0, "fof_halo_count")
line_plot(tracked, "step", ["fof_halo_count"], "largest halo growth", "growth.svg")
nb = halo_neighborhood(0, 624, 0, 20)
paraview_scene(nb, "fof_halo_center_x", "fof_halo_center_y", "fof_halo_center_z", "fof_halo_mass", "is_target", "scene.vtk")
result(tracked)
`, nil)
	if !res.OK {
		t.Fatalf("exec failed: %s", res.Error)
	}
	if _, ok := res.Artifacts["growth.svg"]; !ok {
		t.Error("growth.svg missing")
	}
	vtk, ok := res.Artifacts["scene.vtk"]
	if !ok {
		t.Fatal("scene.vtk missing")
	}
	if !strings.Contains(string(vtk), "DATASET POLYDATA") {
		t.Error("scene.vtk is not VTK polydata")
	}
	if !strings.Contains(string(vtk), "SCALARS highlight") {
		t.Error("scene.vtk missing highlight array")
	}
}

func TestSceneFromFrameErrors(t *testing.T) {
	cat := testCatalog(t)
	f, err := Neighborhood(nil, cat, 0, 624, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SceneFromFrame(f, "nope", "fof_halo_center_y", "fof_halo_center_z", "fof_halo_mass", ""); err == nil {
		t.Error("bad column should fail")
	}
	pts, err := SceneFromFrame(f, "fof_halo_center_x", "fof_halo_center_y", "fof_halo_center_z", "fof_halo_mass", "")
	if err != nil || len(pts) != f.NumRows() {
		t.Errorf("scene points = %d, %v", len(pts), err)
	}
	_ = viz.WriteVTK("t", pts)
}
