package gio

import (
	"path/filepath"
	"sync"
	"testing"

	"infera/internal/dataframe"
)

// Concurrent readers over one file: ReadAt-based block access means many
// goroutines can pull different columns from the same reader-per-goroutine
// without coordination — the access pattern of parallel evaluation runs.
func TestConcurrentReaders(t *testing.T) {
	f := dataframe.MustFromColumns(
		dataframe.NewInt("a", []int64{1, 2, 3, 4, 5, 6, 7, 8}),
		dataframe.NewFloat("b", []float64{1, 2, 3, 4, 5, 6, 7, 8}),
		dataframe.NewString("c", []string{"x", "y", "z", "w", "x", "y", "z", "w"}),
	)
	path := filepath.Join(t.TempDir(), "shared.gio")
	if err := WriteFile(path, f, nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := Open(path)
			if err != nil {
				errs <- err
				return
			}
			defer r.Close()
			col := []string{"a", "b", "c"}[i%3]
			got, err := r.ReadColumns(col)
			if err != nil {
				errs <- err
				return
			}
			if got.NumRows() != 8 {
				errs <- &dataframe.ColumnError{Name: "rows"}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// One shared Reader serving parallel column selections: ReadAt-based block
// access plus atomic byte accounting mean a cached open reader needs no
// external locking. Run under -race.
func TestSharedReaderParallelReads(t *testing.T) {
	f := dataframe.MustFromColumns(
		dataframe.NewInt("a", []int64{1, 2, 3, 4}),
		dataframe.NewFloat("b", []float64{1, 2, 3, 4}),
		dataframe.NewString("c", []string{"x", "y", "z", "w"}),
	)
	path := filepath.Join(t.TempDir(), "one-reader.gio")
	if err := WriteFile(path, f, nil); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			col := []string{"a", "b", "c"}[i%3]
			got, err := r.ReadColumns(col)
			if err != nil {
				errs <- err
				return
			}
			if got.NumRows() != 4 {
				errs <- &dataframe.ColumnError{Name: "rows"}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// 24 reads over blocks of 32 (a), 32 (b) and 8 (c) bytes.
	if got, want := r.BytesRead(), int64(8*(32+32+8)); got != want {
		t.Errorf("BytesRead = %d, want %d", got, want)
	}
}

// A single reader serving multiple sequential selections accumulates
// BytesRead correctly.
func TestBytesReadAccumulates(t *testing.T) {
	f := dataframe.MustFromColumns(
		dataframe.NewFloat("a", make([]float64, 100)),
		dataframe.NewFloat("b", make([]float64, 100)),
	)
	path := filepath.Join(t.TempDir(), "acc.gio")
	if err := WriteFile(path, f, nil); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadColumns("a"); err != nil {
		t.Fatal(err)
	}
	if got := r.BytesRead(); got != 800 {
		t.Errorf("after one column: %d", got)
	}
	if _, err := r.ReadColumns("a", "b"); err != nil {
		t.Fatal(err)
	}
	if got := r.BytesRead(); got != 800+1600 {
		t.Errorf("after three blocks: %d", got)
	}
}

// Zero-row frames round-trip.
func TestEmptyFrameRoundTrip(t *testing.T) {
	f := dataframe.MustFromColumns(
		dataframe.NewInt("a", nil),
		dataframe.NewString("s", nil),
	)
	path := filepath.Join(t.TempDir(), "empty.gio")
	if err := WriteFile(path, f, nil); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	back, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 0 || back.NumCols() != 2 {
		t.Errorf("shape = %dx%d", back.NumRows(), back.NumCols())
	}
}
