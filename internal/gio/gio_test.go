package gio

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"infera/internal/dataframe"
)

func writeSample(t *testing.T) (string, *dataframe.Frame) {
	t.Helper()
	f := dataframe.MustFromColumns(
		dataframe.NewInt("fof_halo_tag", []int64{1, 2, 3, 4}),
		dataframe.NewFloat("fof_halo_mass", []float64{1.25, math.NaN(), -3.5, 1e12}),
		dataframe.NewString("label", []string{"a", "", "ccc", "dd"}),
	)
	path := filepath.Join(t.TempDir(), "halos.gio")
	if err := WriteFile(path, f, map[string]string{"sim": "0", "step": "498"}); err != nil {
		t.Fatal(err)
	}
	return path, f
}

func TestRoundTrip(t *testing.T) {
	path, f := writeSample(t)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumRows() != 4 {
		t.Errorf("NumRows = %d", r.NumRows())
	}
	if got := r.Meta()["step"]; got != "498" {
		t.Errorf("meta step = %q", got)
	}
	back, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !dataframe.Equal(f, back) {
		t.Errorf("round trip mismatch:\n%v\nvs\n%v", f, back)
	}
}

func TestSelectiveReadCostsLessIO(t *testing.T) {
	// A wide file: reading one column must touch only that column's block.
	cols := make([]*dataframe.Column, 0, 20)
	n := 1000
	for i := 0; i < 20; i++ {
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = float64(i*n + j)
		}
		cols = append(cols, dataframe.NewFloat(colName(i), vals))
	}
	f := dataframe.MustFromColumns(cols...)
	path := filepath.Join(t.TempDir(), "wide.gio")
	if err := WriteFile(path, f, nil); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	one, err := r.ReadColumns(colName(7))
	if err != nil {
		t.Fatal(err)
	}
	if one.NumCols() != 1 || one.NumRows() != n {
		t.Fatalf("selective read shape = %dx%d", one.NumRows(), one.NumCols())
	}
	wantBlock := int64(8 * n)
	if r.BytesRead() != wantBlock {
		t.Errorf("BytesRead = %d, want exactly one block %d", r.BytesRead(), wantBlock)
	}
	if r.Size() < 20*wantBlock {
		t.Errorf("file size %d suspiciously small", r.Size())
	}
}

func colName(i int) string { return "col_" + string(rune('a'+i)) }

func TestMissingColumn(t *testing.T) {
	path, _ := writeSample(t)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = r.ReadColumns("halo_mass")
	if err == nil || !strings.Contains(err.Error(), "KeyError") {
		t.Errorf("want KeyError-shaped error, got %v", err)
	}
	if r.Has("halo_mass") || !r.Has("fof_halo_mass") {
		t.Error("Has() wrong")
	}
}

func TestCorruptionDetected(t *testing.T) {
	path, _ := writeSample(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte near the end (inside the last data block).
	raw[len(raw)-3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadColumns("label"); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("want CRC error, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gio")
	if err := os.WriteFile(path, []byte("not a gio file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("bad magic should fail to open")
	}
}

func TestColumnNamesAndInfo(t *testing.T) {
	path, _ := writeSample(t)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	want := []string{"fof_halo_tag", "fof_halo_mass", "label"}
	if got := r.ColumnNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("ColumnNames = %v", got)
	}
	infos := r.Columns()
	if len(infos) != 3 || infos[1].Kind != dataframe.Float || infos[0].Size != 32 {
		t.Errorf("Columns() = %+v", infos)
	}
	// Offsets must be contiguous and inside the file.
	for i := 1; i < len(infos); i++ {
		if infos[i].Offset != infos[i-1].Offset+infos[i-1].Size {
			t.Errorf("block %d not contiguous", i)
		}
	}
	last := infos[len(infos)-1]
	if last.Offset+last.Size != r.Size() {
		t.Errorf("blocks do not end at file end: %d vs %d", last.Offset+last.Size, r.Size())
	}
}

func TestQuickRoundTrip(t *testing.T) {
	dir := t.TempDir()
	i := 0
	prop := func(seed int64, n uint8) bool {
		i++
		rng := rand.New(rand.NewSource(seed))
		rows := int(n%100) + 1
		fv := make([]float64, rows)
		iv := make([]int64, rows)
		sv := make([]string, rows)
		for j := 0; j < rows; j++ {
			fv[j] = rng.NormFloat64()
			iv[j] = rng.Int63() - rng.Int63()
			sv[j] = strings.Repeat("x", rng.Intn(10))
		}
		f := dataframe.MustFromColumns(
			dataframe.NewFloat("f", fv),
			dataframe.NewInt("i", iv),
			dataframe.NewString("s", sv),
		)
		path := filepath.Join(dir, "q"+string(rune('0'+i%10))+".gio")
		if err := WriteFile(path, f, nil); err != nil {
			return false
		}
		r, err := Open(path)
		if err != nil {
			return false
		}
		defer r.Close()
		back, err := r.ReadAll()
		if err != nil {
			return false
		}
		return dataframe.Equal(f, back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
