// Package gio implements a binary columnar file format modeled on HACC's
// GenericIO output files.
//
// Each file stores a JSON header describing named, typed columns plus one
// contiguous block per column, each protected by a CRC-32C checksum. The
// point of the format — and the reason the paper's data-loading agent can
// reduce terabytes to gigabytes — is selective reading: Reader.ReadColumns
// seeks to and decodes only the requested column blocks, so unread columns
// cost no I/O beyond the header. Readers track bytes actually read so the
// evaluation harness can report true I/O volumes.
package gio

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync/atomic"

	"infera/internal/dataframe"
)

// magic identifies a gio file; the trailing byte versions the format.
var magic = [8]byte{'I', 'G', 'I', 'O', '\n', 0, 0, 1}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ColumnInfo describes one column block in the file header.
type ColumnInfo struct {
	Name   string         `json:"name"`
	Kind   dataframe.Kind `json:"kind"`
	Offset int64          `json:"offset"` // from start of file
	Size   int64          `json:"size"`   // encoded block size in bytes
	CRC    uint32         `json:"crc"`    // CRC-32C of the encoded block
}

type header struct {
	NumRows int               `json:"num_rows"`
	Columns []ColumnInfo      `json:"columns"`
	Meta    map[string]string `json:"meta,omitempty"`
}

// WriteFile writes frame to path in gio format with optional metadata
// key/values (simulation id, timestep, file type, ...).
func WriteFile(path string, f *dataframe.Frame, meta map[string]string) (err error) {
	blocks := make([][]byte, f.NumCols())
	h := header{NumRows: f.NumRows(), Meta: meta, Columns: make([]ColumnInfo, f.NumCols())}
	for i := 0; i < f.NumCols(); i++ {
		c := f.ColumnAt(i)
		blk, encErr := encodeColumn(c)
		if encErr != nil {
			return fmt.Errorf("gio: encode %q: %w", c.Name, encErr)
		}
		blocks[i] = blk
		h.Columns[i] = ColumnInfo{
			Name: c.Name,
			Kind: c.Kind,
			Size: int64(len(blk)),
			CRC:  crc32.Checksum(blk, castagnoli),
		}
	}
	hdrJSON, err := json.Marshal(&h)
	if err != nil {
		return fmt.Errorf("gio: marshal header: %w", err)
	}
	// Header layout: magic | uint32 header length | header JSON | blocks.
	// Offsets are known once the header length is fixed; the JSON length
	// would change if offsets were embedded before sizing, so offsets are
	// assigned relative to a fixed preamble and re-marshaled once.
	preamble := int64(len(magic)) + 4 + int64(len(hdrJSON))
	off := preamble
	for i := range h.Columns {
		h.Columns[i].Offset = off
		off += h.Columns[i].Size
	}
	hdrJSON2, err := json.Marshal(&h)
	if err != nil {
		return fmt.Errorf("gio: marshal header: %w", err)
	}
	// Offsets add digits; pad the first marshal estimate by re-deriving
	// until stable (at most a few iterations since lengths are monotone).
	for int64(len(hdrJSON2)) != int64(len(hdrJSON)) {
		hdrJSON = hdrJSON2
		preamble = int64(len(magic)) + 4 + int64(len(hdrJSON))
		off = preamble
		for i := range h.Columns {
			h.Columns[i].Offset = off
			off += h.Columns[i].Size
		}
		hdrJSON2, err = json.Marshal(&h)
		if err != nil {
			return fmt.Errorf("gio: marshal header: %w", err)
		}
	}

	w, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := w.Close(); err == nil {
			err = cerr
		}
	}()
	if _, err = w.Write(magic[:]); err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(hdrJSON2)))
	if _, err = w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err = w.Write(hdrJSON2); err != nil {
		return err
	}
	for _, blk := range blocks {
		if _, err = w.Write(blk); err != nil {
			return err
		}
	}
	return nil
}

// EncodedSize returns the exact encoded block size of c under this
// package's on-disk layout — 8 bytes per numeric element, uvarint length
// prefix plus bytes per string — without encoding anything. Callers that
// price tables by their gio footprint (e.g. sqldb's staged-table size and
// scan accounting) use this so the layout knowledge lives in one place,
// beside encodeColumn.
func EncodedSize(c *dataframe.Column) int64 {
	switch c.Kind {
	case dataframe.Float, dataframe.Int:
		return 8 * int64(c.Len())
	default:
		var tmp [binary.MaxVarintLen64]byte
		var total int64
		for _, s := range c.S {
			total += int64(binary.PutUvarint(tmp[:], uint64(len(s)))) + int64(len(s))
		}
		return total
	}
}

// EncodeBlock returns c's encoded on-disk block — byte-identical to what
// WriteFile stores for the column — so callers that persist column blocks
// outside a full gio file (the stage cache's disk tier) reuse this
// package's layout instead of inventing a second serialization.
func EncodeBlock(c *dataframe.Column) ([]byte, error) {
	return encodeColumn(c)
}

// DecodeBlock decodes an encoded column block (EncodeBlock, or a raw block
// lifted from a gio file via ReadBlock) back into a column. rows must be
// the row count the block was encoded with.
func DecodeBlock(name string, kind dataframe.Kind, blk []byte, rows int) (*dataframe.Column, error) {
	return decodeColumn(ColumnInfo{Name: name, Kind: kind, Size: int64(len(blk))}, blk, rows)
}

func encodeColumn(c *dataframe.Column) ([]byte, error) {
	var buf bytes.Buffer
	switch c.Kind {
	case dataframe.Float:
		b := make([]byte, 8*len(c.F))
		for i, v := range c.F {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		buf.Write(b)
	case dataframe.Int:
		b := make([]byte, 8*len(c.I))
		for i, v := range c.I {
			binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
		}
		buf.Write(b)
	case dataframe.String:
		var tmp [binary.MaxVarintLen64]byte
		for _, s := range c.S {
			n := binary.PutUvarint(tmp[:], uint64(len(s)))
			buf.Write(tmp[:n])
			buf.WriteString(s)
		}
	default:
		return nil, fmt.Errorf("unsupported kind %v", c.Kind)
	}
	return buf.Bytes(), nil
}

// Reader provides selective column access to a gio file. It is safe for
// concurrent use: column blocks are fetched with positionless ReadAt and
// the byte accounting is atomic, so one cached open reader can serve
// parallel loaders (header state is immutable after Open).
type Reader struct {
	f         *os.File
	hdr       header
	byName    map[string]int
	fileSize  int64
	bytesRead atomic.Int64 // data-block bytes read so far (excludes header)
}

// Open opens a gio file and parses its header.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &Reader{f: f, byName: map[string]int{}}
	var m [8]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("gio: %s: short magic: %w", path, err)
	}
	if m != magic {
		f.Close()
		return nil, fmt.Errorf("gio: %s: bad magic", path)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("gio: %s: short header length: %w", path, err)
	}
	if st, err := f.Stat(); err == nil {
		r.fileSize = st.Size()
	}
	// The declared header length cannot exceed what the file actually
	// holds; allocating it unchecked would let a 12-byte forgery claim a
	// 4 GB header.
	hdrLen := int64(binary.LittleEndian.Uint32(lenBuf[:]))
	if r.fileSize > 0 && hdrLen > r.fileSize-int64(len(magic))-int64(len(lenBuf)) {
		f.Close()
		return nil, fmt.Errorf("gio: %s: header length %d exceeds file size %d", path, hdrLen, r.fileSize)
	}
	hdrJSON := make([]byte, hdrLen)
	if _, err := io.ReadFull(f, hdrJSON); err != nil {
		f.Close()
		return nil, fmt.Errorf("gio: %s: short header: %w", path, err)
	}
	if err := json.Unmarshal(hdrJSON, &r.hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("gio: %s: header: %w", path, err)
	}
	// Column extents from the header are untrusted until checked against
	// the file: a negative or out-of-range (Offset, Size) would otherwise
	// panic or over-allocate in ReadColumn/ReadBlock.
	for i, c := range r.hdr.Columns {
		if c.Size < 0 || c.Offset < 0 || (r.fileSize > 0 && c.Offset+c.Size > r.fileSize) {
			f.Close()
			return nil, fmt.Errorf("gio: %s: column %q extent [%d,+%d) outside file of %d bytes",
				path, c.Name, c.Offset, c.Size, r.fileSize)
		}
		r.byName[c.Name] = i
	}
	return r, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// NumRows returns the row count recorded in the header.
func (r *Reader) NumRows() int { return r.hdr.NumRows }

// Size returns the total file size in bytes.
func (r *Reader) Size() int64 { return r.fileSize }

// BytesRead returns the data-block bytes this reader has decoded so far;
// it is the measure behind the paper's "terabytes to gigabytes" claim.
func (r *Reader) BytesRead() int64 { return r.bytesRead.Load() }

// Meta returns the metadata map stored at write time.
func (r *Reader) Meta() map[string]string { return r.hdr.Meta }

// Columns lists the column descriptors in file order.
func (r *Reader) Columns() []ColumnInfo {
	return append([]ColumnInfo(nil), r.hdr.Columns...)
}

// ColumnNames lists the column names in file order.
func (r *Reader) ColumnNames() []string {
	out := make([]string, len(r.hdr.Columns))
	for i, c := range r.hdr.Columns {
		out[i] = c.Name
	}
	return out
}

// Has reports whether the file contains a column named name.
func (r *Reader) Has(name string) bool {
	_, ok := r.byName[name]
	return ok
}

// ColumnInfoOf returns the descriptor of the named column, reporting its
// encoded block size (and offset/CRC) without touching the block — how a
// caller prices a column read before performing it, e.g. the staging
// benchmarks computing expected decode volumes from headers alone.
func (r *Reader) ColumnInfoOf(name string) (ColumnInfo, bool) {
	i, ok := r.byName[name]
	if !ok {
		return ColumnInfo{}, false
	}
	return r.hdr.Columns[i], true
}

// ReadColumn seeks to, verifies and decodes exactly one column block,
// returning the column and the encoded block bytes read. It is the
// per-column partial-read primitive the staging cache builds on: a cache
// that already holds some of a file's columns fetches only the absent ones,
// never the whole file. Safe for concurrent use with other reads on the
// same Reader.
func (r *Reader) ReadColumn(name string) (*dataframe.Column, int64, error) {
	i, ok := r.byName[name]
	if !ok {
		return nil, 0, &dataframe.ColumnError{Name: name, Available: r.ColumnNames()}
	}
	info := r.hdr.Columns[i]
	blk := make([]byte, info.Size)
	if _, err := r.f.ReadAt(blk, info.Offset); err != nil {
		return nil, 0, fmt.Errorf("gio: read block %q: %w", name, err)
	}
	r.bytesRead.Add(info.Size)
	if got := crc32.Checksum(blk, castagnoli); got != info.CRC {
		return nil, 0, fmt.Errorf("gio: column %q: CRC mismatch (file corrupt): got %08x want %08x", name, got, info.CRC)
	}
	col, err := decodeColumn(info, blk, r.hdr.NumRows)
	if err != nil {
		return nil, 0, fmt.Errorf("gio: decode %q: %w", name, err)
	}
	return col, info.Size, nil
}

// ReadBlock fetches the named column's raw encoded block, CRC-verified but
// not decoded. It is the transfer primitive for callers that move blocks
// between stores without materializing columns — the stage cache's disk
// tier prefetches sibling columns this way, paying the read but deferring
// the decode until (unless) the column is actually requested. The bytes
// count toward BytesRead like any other block fetch. Safe for concurrent
// use with other reads on the same Reader.
func (r *Reader) ReadBlock(name string) (ColumnInfo, []byte, error) {
	i, ok := r.byName[name]
	if !ok {
		return ColumnInfo{}, nil, &dataframe.ColumnError{Name: name, Available: r.ColumnNames()}
	}
	info := r.hdr.Columns[i]
	blk := make([]byte, info.Size)
	if _, err := r.f.ReadAt(blk, info.Offset); err != nil {
		return ColumnInfo{}, nil, fmt.Errorf("gio: read block %q: %w", name, err)
	}
	r.bytesRead.Add(info.Size)
	if got := crc32.Checksum(blk, castagnoli); got != info.CRC {
		return ColumnInfo{}, nil, fmt.Errorf("gio: column %q: CRC mismatch (file corrupt): got %08x want %08x", name, got, info.CRC)
	}
	return info, blk, nil
}

// ReadColumns reads only the named columns into a frame, verifying each
// block's CRC. Unrequested columns are not touched on disk.
func (r *Reader) ReadColumns(names ...string) (*dataframe.Frame, error) {
	out := dataframe.New()
	for _, name := range names {
		col, _, err := r.ReadColumn(name)
		if err != nil {
			return nil, err
		}
		if err := out.AddColumn(col); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ReadAll reads every column in file order.
func (r *Reader) ReadAll() (*dataframe.Frame, error) {
	return r.ReadColumns(r.ColumnNames()...)
}

func decodeColumn(info ColumnInfo, blk []byte, nrows int) (*dataframe.Column, error) {
	switch info.Kind {
	case dataframe.Float:
		if nrows < 0 || len(blk) != 8*nrows {
			return nil, fmt.Errorf("float block size %d != 8*%d", len(blk), nrows)
		}
		vals := make([]float64, nrows)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(blk[8*i:]))
		}
		return dataframe.NewFloat(info.Name, vals), nil
	case dataframe.Int:
		if nrows < 0 || len(blk) != 8*nrows {
			return nil, fmt.Errorf("int block size %d != 8*%d", len(blk), nrows)
		}
		vals := make([]int64, nrows)
		for i := range vals {
			vals[i] = int64(binary.LittleEndian.Uint64(blk[8*i:]))
		}
		return dataframe.NewInt(info.Name, vals), nil
	case dataframe.String:
		if nrows < 0 {
			return nil, fmt.Errorf("negative row count %d", nrows)
		}
		// Every encoded string row costs at least one byte (its uvarint
		// length), so a header claiming more rows than the block has bytes
		// is corrupt; bounding the initial capacity keeps a forged row
		// count from allocating unbounded memory up front.
		capHint := nrows
		if capHint > len(blk) {
			capHint = len(blk)
		}
		vals := make([]string, 0, capHint)
		rest := blk
		for len(vals) < nrows {
			n, w := binary.Uvarint(rest)
			if w <= 0 || uint64(len(rest)-w) < n {
				return nil, fmt.Errorf("string block truncated at row %d", len(vals))
			}
			vals = append(vals, string(rest[w:w+int(n)]))
			rest = rest[w+int(n):]
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("string block has %d trailing bytes", len(rest))
		}
		return dataframe.NewString(info.Name, vals), nil
	default:
		return nil, fmt.Errorf("unsupported kind %v", info.Kind)
	}
}
