package gio

import (
	"os"
	"path/filepath"
	"testing"

	"infera/internal/dataframe"
)

func fuzzSeedColumns() []*dataframe.Column {
	return []*dataframe.Column{
		dataframe.NewFloat("f", []float64{1.5, -2.25, 0, 1e300}),
		dataframe.NewInt("i", []int64{0, -1, 1 << 40, 42}),
		dataframe.NewString("s", []string{"", "a", "long string value", "x\ny"}),
	}
}

// FuzzGioDecode throws arbitrary bytes at both decode surfaces: the raw
// column-block decoder and the full file Reader. Neither may panic or
// over-allocate, whatever the input claims about sizes.
func FuzzGioDecode(f *testing.F) {
	for _, c := range fuzzSeedColumns() {
		blk, err := EncodeBlock(c)
		if err != nil {
			f.Fatal(err)
		}
		n := 0
		switch c.Kind {
		case dataframe.Float:
			n = len(c.F)
		case dataframe.Int:
			n = len(c.I)
		case dataframe.String:
			n = len(c.S)
		}
		f.Add(blk, uint8(c.Kind), n)
	}
	// A whole well-formed file as a seed so the fuzzer learns the header
	// shape for the Open path below.
	dir := f.TempDir()
	fr := dataframe.New()
	for _, c := range fuzzSeedColumns() {
		if err := fr.AddColumn(c); err != nil {
			f.Fatal(err)
		}
	}
	path := filepath.Join(dir, "seed.gio")
	if err := WriteFile(path, fr, map[string]string{"k": "v"}); err != nil {
		f.Fatal(err)
	}
	fileBytes, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(fileBytes, uint8(0), 4)

	f.Fuzz(func(t *testing.T, data []byte, kindRaw uint8, rows int) {
		if len(data) > 1<<20 || rows > 1<<24 {
			return
		}
		kind := dataframe.Kind(kindRaw % 3)
		col, err := DecodeBlock("fuzz", kind, data, rows)
		if err == nil {
			// A successful decode must honour its row-count contract.
			got := 0
			switch col.Kind {
			case dataframe.Float:
				got = len(col.F)
			case dataframe.Int:
				got = len(col.I)
			case dataframe.String:
				got = len(col.S)
			}
			if got != rows {
				t.Fatalf("DecodeBlock returned %d rows, want %d", got, rows)
			}
		}

		// Same bytes as a whole file through the Reader path.
		p := filepath.Join(t.TempDir(), "in.gio")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(p)
		if err != nil {
			return
		}
		defer r.Close()
		if _, err := r.ReadAll(); err != nil {
			return
		}
		for _, name := range r.ColumnNames() {
			if _, _, err := r.ReadColumn(name); err != nil {
				return
			}
		}
	})
}

// TestGioRoundTripAfterHardening proves the legitimate encode/decode path
// still works with the new header and extent validation in place.
func TestGioRoundTripAfterHardening(t *testing.T) {
	fr := dataframe.New()
	for _, c := range fuzzSeedColumns() {
		if err := fr.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "rt.gio")
	if err := WriteFile(path, fr, nil); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !dataframe.Equal(fr, got) {
		t.Fatalf("round trip diverged:\n%v\nvs\n%v", fr, got)
	}
}

// TestGioRejectsCorruptHeaders locks in the pre-allocation validation:
// truncated files, oversized header claims and out-of-range column
// extents must error instead of allocating or panicking.
func TestGioRejectsCorruptHeaders(t *testing.T) {
	fr := dataframe.New()
	if err := fr.AddColumn(dataframe.NewFloat("f", []float64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	good := filepath.Join(dir, "good.gio")
	if err := WriteFile(good, fr, nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":             {},
		"magic only":        raw[:8],
		"truncated header":  raw[:14],
		"huge header claim": append(append([]byte{}, raw[:8]...), 0xff, 0xff, 0xff, 0x7f),
	}
	for name, data := range cases {
		p := filepath.Join(dir, name+".gio")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Open(p); err == nil {
			r.Close()
			t.Fatalf("%s: Open succeeded, want error", name)
		}
	}
}
