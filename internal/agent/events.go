package agent

import (
	"context"
	"errors"
	"sync"
	"time"

	"infera/internal/llm"
)

// EventKind names one lifecycle event of a workflow run.
type EventKind string

// The lifecycle events a Runtime emits onto its EventLog.
const (
	// EventPlanProposed carries the first plan of a run, before review.
	EventPlanProposed EventKind = "plan_proposed"
	// EventPlanRevised carries a plan regenerated after review feedback.
	EventPlanRevised EventKind = "plan_revised"
	// EventStepStarted marks a worker agent picking up a plan step.
	EventStepStarted EventKind = "step_started"
	// EventStepFinished marks a plan step completing (OK) or aborting.
	EventStepFinished EventKind = "step_finished"
	// EventQAVerdict carries the QA agent's pass/fail for a step output.
	EventQAVerdict EventKind = "qa_verdict"
	// EventErrorHint marks the feedback hook being consulted on a step
	// error; Hint carries the supplied correction, if any.
	EventErrorHint EventKind = "error_hint_requested"
	// EventAnswer is the terminal event of every run, carrying the outcome.
	EventAnswer EventKind = "answer"
	// EventQueuePosition reports where a queued ask currently sits in the
	// service's bounded worker queue (Position, 1-based; 1 = next to be
	// picked up). Emitted by the serving layer, not the workflow: once on
	// enqueue and again whenever the ask moves up.
	EventQueuePosition EventKind = "queue_position"
)

// Event is one entry of a run's lifecycle stream. Seq is a contiguous,
// 1-based sequence number assigned by the log — consumers resume a dropped
// stream by asking for everything after the last Seq they saw.
type Event struct {
	Seq  int       `json:"seq"`
	Time time.Time `json:"time"`
	Kind EventKind `json:"kind"`

	// Plan events.
	Round int       `json:"round,omitempty"`
	Plan  *llm.Plan `json:"plan,omitempty"`

	// Step / QA / hint events. OK and Step serialize unconditionally:
	// ok=false is the failure verdict consumers key on, and step=0 is the
	// first plan step's index — omitempty would drop both exactly when
	// they matter.
	Agent string `json:"agent,omitempty"`
	Task  string `json:"task,omitempty"`
	Step  int    `json:"step"` // plan step index

	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
	Hint   string `json:"hint,omitempty"`

	// Position is the 1-based queue slot on EventQueuePosition events.
	Position int `json:"position,omitempty"`

	// ElapsedNS is the wall-clock duration of the work the event reports:
	// the planning round on plan events, the whole step on step_finished,
	// the QA model call on qa_verdict. Zero on events that mark an instant
	// rather than a span (step_started, queue_position).
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`

	// FuelUsed is the script instruction budget the step consumed across
	// all sandbox attempts, stamped on step_finished events of code-running
	// steps (python, viz) — the per-step CPU accounting unit for future
	// fair scheduling. Zero for steps that run no sandboxed code.
	FuelUsed int64 `json:"fuel_used,omitempty"`

	// Answer is set on the terminal EventAnswer.
	Answer *AnswerEvent `json:"answer,omitempty"`
}

// AnswerEvent is the payload of the terminal answer event.
type AnswerEvent struct {
	Summary    string `json:"summary,omitempty"`
	Rows       int    `json:"rows"`
	PlanSteps  int    `json:"plan_steps"`
	Tokens     int    `json:"tokens"`
	RedoCount  int    `json:"redo_count"`
	Failed     bool   `json:"failed,omitempty"`
	Error      string `json:"error,omitempty"`
	DurationNS int64  `json:"duration_ns"`
	// PhasesNS breaks DurationNS down by workflow phase (plan, stage,
	// query, qa, python, viz, total) in nanoseconds. Phases the run never
	// entered are absent.
	PhasesNS map[string]int64 `json:"phases_ns,omitempty"`
	// FuelUsed is the total script instruction budget the run's sandboxed
	// executions consumed.
	FuelUsed int64 `json:"fuel_used,omitempty"`
}

// DefaultEventCapacity bounds an EventLog when NewEventLog is given no
// capacity. A full two-stage run emits a few dozen events; 512 leaves room
// for pathological retry loops without unbounded memory per session.
const DefaultEventCapacity = 512

// EventLog is a bounded, append-only event log for one session. Appends
// never block; past the capacity the oldest events are dropped (readers
// detect the gap by a jump in Seq). Readers poll with Since or block with
// Wait, resuming from any sequence number — the substrate for server-sent
// events with Last-Event-ID resume.
type EventLog struct {
	mu       sync.Mutex
	capacity int
	start    int // Seq of buf[0]; events hold seqs start..start+len(buf)-1
	buf      []Event
	next     int // next Seq to assign (1-based)
	closed   bool
	notify   chan struct{} // closed and replaced on every append/close
}

// NewEventLog returns an empty log holding at most capacity events
// (DefaultEventCapacity when capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventLog{capacity: capacity, start: 1, next: 1, notify: make(chan struct{})}
}

// Append stamps ev with the next sequence number and current time, appends
// it and wakes all waiting readers. Appending to a closed log is a no-op
// returning 0.
func (l *EventLog) Append(ev Event) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0
	}
	ev.Seq = l.next
	ev.Time = time.Now()
	l.next++
	l.buf = append(l.buf, ev)
	if len(l.buf) > l.capacity {
		drop := len(l.buf) - l.capacity
		l.buf = append(l.buf[:0], l.buf[drop:]...)
		l.start += drop
	}
	close(l.notify)
	l.notify = make(chan struct{})
	return ev.Seq
}

// Close marks the log complete: no further events will arrive. Waiting
// readers wake immediately; Since keeps serving the retained events.
func (l *EventLog) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.notify)
	l.notify = make(chan struct{})
}

// Since returns every retained event with Seq > after, plus whether the log
// is closed (no more events will ever arrive).
func (l *EventLog) Since(after int) ([]Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	events, closed, _ := l.sinceLocked(after)
	return events, closed
}

func (l *EventLog) sinceLocked(after int) ([]Event, bool, chan struct{}) {
	if after < l.start-1 {
		after = l.start - 1 // events before the retention window are gone
	}
	idx := after - (l.start - 1)
	if idx >= len(l.buf) {
		return nil, l.closed, l.notify
	}
	out := make([]Event, len(l.buf)-idx)
	copy(out, l.buf[idx:])
	return out, l.closed, l.notify
}

// Wait blocks until at least one event with Seq > after exists (returning
// all of them), the log closes (returning nil, true), or ctx is done.
func (l *EventLog) Wait(ctx context.Context, after int) ([]Event, bool, error) {
	for {
		// The read and the notify-channel capture are one atomic step: an
		// Append landing between them would otherwise go unnoticed and the
		// waiter would sleep on the post-append channel (lost wakeup).
		l.mu.Lock()
		events, closed, ch := l.sinceLocked(after)
		l.mu.Unlock()
		if len(events) > 0 || closed {
			return events, closed, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// PlanDecision is one reviewer verdict on a proposed plan: approve as-is,
// or reject with a comment that seeds the next planning round.
type PlanDecision struct {
	Approve bool   `json:"approve"`
	Comment string `json:"comment,omitempty"`
}

// ErrNoPendingPlan reports a decision submitted while no plan was awaiting
// review (not yet proposed, already decided, or auto-approved by deadline).
var ErrNoPendingPlan = errors.New("agent: no plan awaiting review")

// DefaultAutoApprove is the AsyncFeedback review deadline when none is
// configured: an abandoned interactive session stops blocking a worker
// after this long and proceeds as if approved.
const DefaultAutoApprove = 60 * time.Second

// AsyncFeedback satisfies Feedback asynchronously: ReviewPlan blocks the
// planner until a decision arrives through Submit — from another goroutine,
// typically an HTTP approval endpoint — or the AutoApprove deadline passes,
// which approves the plan as-is (the expiry path for abandoned sessions).
// Error hints delegate to Hinter so interactive sessions keep the scripted
// column-correction behavior of §4.2.2.
type AsyncFeedback struct {
	// AutoApprove is the per-review deadline; <= 0 uses DefaultAutoApprove.
	AutoApprove time.Duration
	// Hinter answers OnError; nil supplies no hints.
	Hinter Feedback
	// OnAwait/OnResolve, when set, observe the review window opening and
	// closing (auto reports a deadline or abort resolution) — the serving
	// layer uses them to expose an "awaiting_approval" session status.
	OnAwait   func(plan llm.Plan)
	OnResolve func(auto bool)

	mu      sync.Mutex
	waiting chan PlanDecision
	aborted bool
	abortCh chan struct{}
}

var _ Feedback = (*AsyncFeedback)(nil)

// NewAsyncFeedback returns an AsyncFeedback with the given review deadline
// (<= 0 uses DefaultAutoApprove) delegating error hints to hinter.
func NewAsyncFeedback(deadline time.Duration, hinter Feedback) *AsyncFeedback {
	return &AsyncFeedback{AutoApprove: deadline, Hinter: hinter}
}

func (f *AsyncFeedback) abortChan() chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.abortCh == nil {
		f.abortCh = make(chan struct{})
		if f.aborted {
			close(f.abortCh)
		}
	}
	return f.abortCh
}

// ReviewPlan blocks until Submit delivers a decision, the deadline passes
// (approve as-is), or Abort has been called (approve immediately).
func (f *AsyncFeedback) ReviewPlan(plan llm.Plan) (bool, string) {
	deadline := f.AutoApprove
	if deadline <= 0 {
		deadline = DefaultAutoApprove
	}
	ch := make(chan PlanDecision, 1)
	abort := f.abortChan()
	f.mu.Lock()
	if f.aborted {
		f.mu.Unlock()
		return true, ""
	}
	f.waiting = ch
	f.mu.Unlock()
	if f.OnAwait != nil {
		f.OnAwait(plan)
	}

	timer := time.NewTimer(deadline)
	defer timer.Stop()
	auto := false
	var d PlanDecision
	select {
	case d = <-ch:
	case <-timer.C:
		auto = true
	case <-abort:
		auto = true
	}
	f.mu.Lock()
	f.waiting = nil
	f.mu.Unlock()
	if auto {
		// A Submit may have raced the deadline and won the channel send just
		// before the window closed; honor it rather than dropping it.
		select {
		case d = <-ch:
			auto = false
		default:
			d = PlanDecision{Approve: true}
		}
	}
	if f.OnResolve != nil {
		f.OnResolve(auto)
	}
	return d.Approve, d.Comment
}

// Submit delivers a decision to the blocked ReviewPlan. It fails with
// ErrNoPendingPlan when no plan is currently awaiting review.
func (f *AsyncFeedback) Submit(d PlanDecision) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.waiting == nil {
		return ErrNoPendingPlan
	}
	select {
	case f.waiting <- d:
		f.waiting = nil
		return nil
	default:
		return ErrNoPendingPlan // window already consumed
	}
}

// Pending reports whether a plan is currently awaiting review.
func (f *AsyncFeedback) Pending() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.waiting != nil
}

// Abort unblocks the current and all future reviews with immediate
// auto-approval — the shutdown path, so draining a service is never held
// back by a full review deadline.
func (f *AsyncFeedback) Abort() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.aborted {
		return
	}
	f.aborted = true
	if f.abortCh != nil {
		close(f.abortCh)
	}
}

// OnError delegates to Hinter.
func (f *AsyncFeedback) OnError(step llm.PlanStep, errMsg string) (string, bool) {
	if f.Hinter == nil {
		return "", false
	}
	return f.Hinter.OnError(step, errMsg)
}
