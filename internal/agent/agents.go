package agent

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"infera/internal/dataframe"
	"infera/internal/hacc"
	"infera/internal/llm"
	"infera/internal/sqldb"
	"infera/internal/stage"
)

// Node names.
const (
	nodePlanner    = "planner"
	nodeSupervisor = "supervisor"
	nodeData       = "dataloader"
	nodeSQL        = "sql"
	nodePython     = "python"
	nodeViz        = "viz"
	nodeDoc        = "documentation"
)

// Run executes the full two-stage workflow for a question.
func Run(rt *Runtime, question string) (*Result, error) {
	rt = rt.withDefaults()
	st := &State{Question: question, Staged: map[string][]string{}, Strategy: -1}
	g := NewGraph(nodePlanner)
	g.AddNode(nodePlanner, plannerNode)
	g.AddNode(nodeSupervisor, supervisorNode)
	g.AddNode(nodeData, dataLoaderNode)
	g.AddNode(nodeSQL, sqlNode)
	g.AddNode(nodePython, pythonNode)
	g.AddNode(nodeViz, vizNode)
	g.AddNode(nodeDoc, docNode)

	start := time.Now()
	err := g.Run(rt, st)
	res := &Result{State: *st, Duration: time.Since(start)}
	rt.spans.add(PhaseTotal, res.Duration)
	if rt.Session != nil {
		res.Artifacts = rt.Session.Manifest()
		for _, e := range res.Artifacts {
			if e.Kind == "summary" {
				if data, rerr := rt.Session.Read(e); rerr == nil {
					res.Summary = string(data)
				}
			}
		}
	}
	if f, rerr := rt.DB.ReadTable("analysis"); rerr == nil {
		res.Answer = f
	}
	ans := &AnswerEvent{
		Summary:    res.Summary,
		PlanSteps:  len(st.Plan.Steps),
		Tokens:     st.Usage.Total(),
		RedoCount:  st.RedoCount,
		Failed:     st.Failed || err != nil,
		Error:      st.FailReason,
		DurationNS: res.Duration.Nanoseconds(),
		PhasesNS:   rt.spans.snapshot(),
		FuelUsed:   st.FuelUsed,
	}
	rt.spans.observe(rt.Metrics, rt.MetricLabels)
	if err != nil {
		ans.Error = err.Error()
	}
	if res.Answer != nil {
		ans.Rows = res.Answer.NumRows()
	}
	rt.emit(Event{Kind: EventAnswer, OK: !ans.Failed, Answer: ans})
	if err != nil {
		return res, err
	}
	if st.Failed {
		return res, &ErrFailed{Reason: st.FailReason}
	}
	return res, nil
}

// callModel performs one model invocation, accumulating usage and history.
func callModel(rt *Runtime, st *State, agentName, skill, system string, payload, out any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	resp, err := rt.Model.Complete(llm.Request{Agent: agentName, Skill: skill, System: system, Prompt: string(raw)})
	if err != nil {
		return err
	}
	st.Usage.Add(resp.Usage)
	st.History = append(st.History, fmt.Sprintf("[%s/%s] %s", agentName, skill, resp.Text))
	if out != nil {
		if err := json.Unmarshal([]byte(resp.Text), out); err != nil {
			return fmt.Errorf("agent: %s %s response: %w", agentName, skill, err)
		}
	}
	return nil
}

// plannerNode runs the planning stage: generate, present for human
// feedback, refine, repeat until approval (or immediately in automated
// mode).
func plannerNode(rt *Runtime, st *State) (string, error) {
	var feedback []string
	for round := 0; ; round++ {
		req := llm.PlanRequest{Question: st.Question, Feedback: feedback}
		if rt.Catalog != nil {
			req.Context = rt.Catalog.Describe()
		}
		var plan llm.Plan
		// The plan phase counts model time only: the ReviewPlan wait below
		// is human (or approval-deadline) latency and would drown the
		// planner's own latency signal if folded in.
		roundStart := time.Now()
		if err := callModel(rt, st, "planner", llm.SkillPlan, "You are the planning agent. Decompose the question into executable steps.", req, &plan); err != nil {
			return "", err
		}
		roundElapsed := rt.span(PhasePlan, roundStart)
		st.Plan = plan
		st.PlanRounds = round + 1
		kind := EventPlanProposed
		if round > 0 {
			kind = EventPlanRevised
		}
		rt.emit(Event{Kind: kind, Round: round, Plan: &plan, ElapsedNS: roundElapsed.Nanoseconds()})
		if rt.Feedback == nil {
			break
		}
		approved, comment := rt.Feedback.ReviewPlan(plan)
		if approved || round+1 >= rt.MaxPlanRounds {
			break
		}
		feedback = append(feedback, comment)
	}
	if rt.Session != nil {
		if _, err := rt.Session.Record("planner", "plan", "plan.txt", []byte(st.Plan.String())); err != nil {
			return "", err
		}
	}
	rt.logf("plan (%d steps):\n%s", len(st.Plan.Steps), st.Plan)
	return nodeSupervisor, nil
}

// supervisorNode asks the model which step runs next, passing either the
// full message history or only the last message (TrimHistory, §4.1.4).
func supervisorNode(rt *Runtime, st *State) (string, error) {
	if st.Failed {
		return nodeDoc, nil
	}
	history := strings.Join(st.History, "\n")
	if rt.TrimHistory && len(st.History) > 0 {
		history = st.History[len(st.History)-1]
	}
	var route llm.RouteResponse
	err := callModel(rt, st, "supervisor", llm.SkillRoute,
		"You are the supervisor agent. Decide the next step of the approved plan.",
		llm.RouteRequest{Steps: st.Plan.Steps, Completed: st.StepIdx, History: history}, &route)
	if err != nil {
		return "", err
	}
	if route.Done {
		return nodeDoc, nil
	}
	switch route.Agent {
	case llm.AgentData:
		return nodeData, nil
	case llm.AgentSQL:
		return nodeSQL, nil
	case llm.AgentPython:
		return nodePython, nil
	case llm.AgentViz:
		return nodeViz, nil
	default:
		return "", fmt.Errorf("agent: supervisor routed to unknown agent %q", route.Agent)
	}
}

// stepStarted announces a worker agent picking up the current plan step
// and returns the step's start instant for the finish event's ElapsedNS.
func stepStarted(rt *Runtime, st *State, agentName string) time.Time {
	rt.emit(Event{Kind: EventStepStarted, Agent: agentName, Task: currentTask(st), Step: st.StepIdx})
	return time.Now()
}

// stepDone marks the current plan step complete, stamping the wall-clock
// duration since stepStarted and the sandbox fuel the step consumed onto
// the finish event.
func stepDone(rt *Runtime, st *State, agentName, note string, started time.Time, fuel int64) {
	rt.emit(Event{Kind: EventStepFinished, Agent: agentName, Task: currentTask(st), Step: st.StepIdx,
		OK: true, Detail: note, ElapsedNS: time.Since(started).Nanoseconds(), FuelUsed: fuel})
	st.Completed = append(st.Completed, note)
	st.StepIdx++
}

// stepFailed aborts the run at the current step.
func stepFailed(rt *Runtime, st *State, agentName, reason string, started time.Time, fuel int64) {
	rt.emit(Event{Kind: EventStepFinished, Agent: agentName, Task: currentTask(st), Step: st.StepIdx,
		OK: false, Detail: reason, ElapsedNS: time.Since(started).Nanoseconds(), FuelUsed: fuel})
	st.Failed = true
	st.FailReason = reason
	st.Failures = append(st.Failures, reason)
}

// dataLoaderNode resolves which files and columns to load (intent +
// retrieval), reads only those column blocks from the ensemble, injects
// sim/step (and per-run parameter) columns, and stages raw tables in the
// database.
func dataLoaderNode(rt *Runtime, st *State) (string, error) {
	in := st.Plan.Intent
	task := currentTask(st)
	started := stepStarted(rt, st, "dataloader")

	// RAG retrieval provides the metadata context; record it so the
	// provenance trail shows why these columns were chosen.
	if rt.Retriever != nil {
		docs := rt.Retriever.Retrieve(st.Question, task, st.Plan.String())
		var ids, full strings.Builder
		for _, d := range docs {
			ids.WriteString(d.ID + "\n")
			full.WriteString(d.Text + "\n")
		}
		st.RetrievedContext = full.String()
		if rt.Session != nil {
			if _, err := rt.Session.Record("dataloader", "retrieval", "retrieved_docs.txt", []byte(ids.String())); err != nil {
				return "", err
			}
		}
	}

	sims := resolveSims(in, rt.Catalog)
	steps := resolveSteps(in, rt.Catalog)
	st.LoadedSims = sims
	st.LoadedSteps = steps

	var report strings.Builder
	for _, entity := range in.Entities {
		if entity != hacc.FileHalos && entity != hacc.FileGalaxies {
			continue // particles/cores load on demand via tools
		}
		needed := llm.NeedColumns(in, entity)
		fileCols := fileColumns(needed, entity)
		table := tableNameOf(entity)

		// Resolve every (sim, step) slice up front, then fan the decode out
		// over the shared staging cache's worker pool: concurrent sessions
		// staging overlapping slices share one decode per (file, column) —
		// a session needing a superset of an already-staged selection pays
		// only for its absent columns — and a k-snapshot load runs in
		// parallel instead of sequentially.
		type slice struct {
			sim, step int
			params    hacc.Params
		}
		var (
			slices []slice
			reqs   []stage.Request
		)
		for _, sim := range sims {
			params := rt.Catalog.Runs[sim].Params
			for _, step := range steps {
				entry, ok := rt.Catalog.Find(sim, step, entity)
				if !ok {
					return "", fmt.Errorf("agent: missing %s file for sim %d step %d", entity, sim, step)
				}
				slices = append(slices, slice{sim: sim, step: step, params: params})
				reqs = append(reqs, stage.Request{Path: rt.Catalog.AbsPath(entry), Columns: fileCols})
			}
		}
		var total int64
		frames := make([]*dataframe.Frame, len(slices))
		var results []stage.Result
		if len(fileCols) > 0 {
			results = rt.Stage.LoadAll(reqs)
		} else {
			// Degenerate intent (only injected columns requested): stage
			// zero-row slices rather than asking the cache for zero columns.
			results = make([]stage.Result, len(slices))
			for i := range results {
				results[i].Frame = dataframe.New()
			}
		}
		for i, res := range results {
			sl := slices[i]
			if res.Err != nil {
				return "", fmt.Errorf("agent: load %s sim %d step %d: %w", entity, sl.sim, sl.step, res.Err)
			}
			total += res.BytesRead
			if err := injectContextColumns(res.Frame, sl.sim, sl.step, sl.params, needed); err != nil {
				return "", err
			}
			frames[i] = res.Frame
		}
		// One bulk build stages the table once, not once per snapshot — and
		// into a staged DB it is zero-copy: the cached column vectors are
		// appended by reference (copy-on-write guarded), not cell by cell.
		if err := rt.DB.BulkAppend(table, frames...); err != nil {
			return "", err
		}
		ti, _ := rt.DB.Table(table)
		st.Staged[table] = columnNames(ti)
		fmt.Fprintf(&report, "%s: %d sims x %d steps -> table %q, %d rows, %d bytes read (columns: %v)\n",
			entity, len(sims), len(steps), table, ti.Rows, total, fileCols)
	}
	if rt.Session != nil {
		if _, err := rt.Session.Record("dataloader", "report", "load_report.txt", []byte(report.String())); err != nil {
			return "", err
		}
	}
	rt.logf("loaded: %s", strings.TrimSpace(report.String()))
	rt.span(PhaseStage, started)
	stepDone(rt, st, "dataloader", "data loading: "+task, started, 0)
	return nodeSupervisor, nil
}

func currentTask(st *State) string {
	if st.StepIdx < len(st.Plan.Steps) {
		return st.Plan.Steps[st.StepIdx].Task
	}
	return ""
}

func currentStep(st *State) llm.PlanStep {
	if st.StepIdx < len(st.Plan.Steps) {
		return st.Plan.Steps[st.StepIdx]
	}
	return llm.PlanStep{}
}

func resolveSims(in llm.Intent, cat *hacc.Catalog) []int {
	if len(in.Sims) > 0 {
		var out []int
		for _, s := range in.Sims {
			if s >= 0 && s < cat.NumRuns() {
				out = append(out, s)
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	out := make([]int, cat.NumRuns())
	for i := range out {
		out[i] = i
	}
	return out
}

func resolveSteps(in llm.Intent, cat *hacc.Catalog) []int {
	available := cat.Steps()
	if in.AllSteps {
		return available
	}
	if len(in.Steps) > 0 {
		var out []int
		for _, want := range in.Steps {
			out = append(out, nearestStep(available, want))
		}
		return dedupInts(out)
	}
	return []int{available[len(available)-1]}
}

func nearestStep(available []int, want int) int {
	best := available[0]
	for _, s := range available {
		if abs(s-want) < abs(best-want) {
			best = s
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func dedupInts(s []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range s {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// fileColumns strips the loader-injected names, leaving what must be read
// from disk.
func fileColumns(needed []string, entity string) []string {
	var out []string
	for _, c := range needed {
		if c == "sim" || c == "step" {
			continue
		}
		if isParamColumn(c) {
			continue
		}
		if _, ok := hacc.LookupColumn(entity, c); ok {
			out = append(out, c)
		}
	}
	return out
}

func isParamColumn(c string) bool {
	for _, p := range llm.ParamColumns {
		if c == p {
			return true
		}
	}
	return false
}

// injectContextColumns adds sim, step and (when requested) the run's
// sub-grid parameters as constant columns.
func injectContextColumns(f *dataframe.Frame, sim, step int, params hacc.Params, needed []string) error {
	n := f.NumRows()
	constInt := func(v int64) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = v
		}
		return out
	}
	constFloat := func(v float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = v
		}
		return out
	}
	if err := f.AddColumn(dataframe.NewInt("sim", constInt(int64(sim)))); err != nil {
		return err
	}
	if err := f.AddColumn(dataframe.NewInt("step", constInt(int64(step)))); err != nil {
		return err
	}
	paramVals := map[string]float64{
		"m_seed": params.MSeed, "f_sn": params.FSN, "log_v_sn": params.LogVSN,
		"log_t_agn": params.LogTAGN, "beta_bh": params.BetaBH,
	}
	for _, c := range needed {
		if v, ok := paramVals[c]; ok && isParamColumn(c) {
			if err := f.AddColumn(dataframe.NewFloat(c, constFloat(v))); err != nil {
				return err
			}
		}
	}
	return nil
}

func tableNameOf(entity string) string {
	switch entity {
	case hacc.FileHalos:
		return "halos"
	case hacc.FileGalaxies:
		return "galaxies"
	default:
		return entity
	}
}

func columnNames(ti sqldb.TableInfo) []string {
	out := make([]string, len(ti.Columns))
	for i, c := range ti.Columns {
		out[i] = c.Name
	}
	return out
}

// qaAssess asks the QA agent to judge a step outcome; it returns pass and
// the feedback text.
func qaAssess(rt *Runtime, st *State, agentName, task, preview, errMsg string) (bool, string, error) {
	var resp llm.QAResponse
	qaStart := time.Now()
	err := callModel(rt, st, "qa", llm.SkillQA,
		"You are the quality assurance agent. Score the output 1-100 for whether it satisfactorily completes the delegated task.",
		llm.QARequest{Task: task, Preview: preview, Error: errMsg}, &resp)
	if err != nil {
		return false, "", err
	}
	elapsed := rt.span(PhaseQA, qaStart)
	rt.emit(Event{Kind: EventQAVerdict, Agent: agentName, Task: task, Step: st.StepIdx,
		OK: resp.Pass, Detail: resp.Feedback, ElapsedNS: elapsed.Nanoseconds()})
	return resp.Pass, resp.Feedback, nil
}

// humanHint consults the feedback hook on an error (§4.2.2: directly
// providing the correct name resolves the issue).
func humanHint(rt *Runtime, st *State, errMsg string) string {
	if rt.Feedback == nil {
		return ""
	}
	step := currentStep(st)
	hint, ok := rt.Feedback.OnError(step, errMsg)
	rt.emit(Event{Kind: EventErrorHint, Agent: step.Agent, Task: step.Task, Step: st.StepIdx, OK: ok, Detail: errMsg, Hint: hint})
	if ok {
		return " [human hint: " + hint + "]"
	}
	return ""
}

// sqlNode generates and executes the filtering queries, staging "work"
// (and "work_gal") tables, with the QA-guided retry loop of §3.2.
func sqlNode(rt *Runtime, st *State) (string, error) {
	in := st.Plan.Intent
	task := currentTask(st)
	started := stepStarted(rt, st, "sql")
	type target struct {
		src, dst, role string
	}
	// The primary staged table filters into "work"; when both catalogs are
	// staged the galaxy table becomes "work_gal". A galaxies-only question
	// makes the galaxy table primary.
	var targets []target
	_, hasHalos := st.Staged["halos"]
	_, hasGals := st.Staged["galaxies"]
	switch {
	case hasHalos && hasGals:
		targets = append(targets,
			target{"halos", "work", hacc.FileHalos},
			target{"galaxies", "work_gal", hacc.FileGalaxies})
	case hasHalos:
		targets = append(targets, target{"halos", "work", hacc.FileHalos})
	case hasGals:
		targets = append(targets, target{"galaxies", "work", hacc.FileGalaxies})
	}
	if len(targets) == 0 {
		stepFailed(rt, st, "sql", "sql: no staged tables to filter", started, 0)
		return nodeSupervisor, nil
	}
	for _, tgt := range targets {
		cols := llm.NeedColumns(in, tgt.role)
		priorError := ""
		ok := false
		for attempt := 0; attempt <= rt.MaxRevisions; attempt++ {
			var resp llm.SQLResponse
			err := callModel(rt, st, "sql", llm.SkillSQL,
				"You are the SQL programming agent. Generate one SELECT over the staged table.",
				llm.SQLRequest{Task: task, Intent: in, Table: tgt.src, Role: tgt.role, Columns: cols,
					Context: st.RetrievedContext, Attempt: attempt, PriorError: priorError}, &resp)
			if err != nil {
				return "", err
			}
			if rt.Session != nil {
				if _, err := rt.Session.Record("sql", "code", tgt.dst+".sql", []byte(resp.SQL)); err != nil {
					return "", err
				}
			}
			queryStart := time.Now()
			frame, qerr := rt.DB.Query(resp.SQL)
			rt.span(PhaseQuery, queryStart)
			if qerr != nil {
				st.RedoCount++
				priorError = qerr.Error() + humanHint(rt, st, qerr.Error())
				continue
			}
			pass, feedback, aerr := qaAssess(rt, st, "sql", task, fmt.Sprintf("query returned %d rows x %d cols", frame.NumRows(), frame.NumCols()), "")
			if aerr != nil {
				return "", aerr
			}
			if !pass {
				st.RedoCount++
				priorError = feedback
				continue
			}
			if err := rt.DB.CreateOrReplaceTable(tgt.dst, frame); err != nil {
				return "", err
			}
			if rt.Session != nil {
				if _, err := rt.Session.RecordFrame("sql", tgt.dst, frame); err != nil {
					return "", err
				}
			}
			st.Staged[tgt.dst] = frame.Names()
			ok = true
			break
		}
		if !ok {
			stepFailed(rt, st, "sql", fmt.Sprintf("sql step exhausted %d revisions: %s", rt.MaxRevisions, priorError), started, 0)
			return nodeSupervisor, nil
		}
	}
	stepDone(rt, st, "sql", "sql filtering: "+task, started, 0)
	return nodeSupervisor, nil
}

// workTables builds the sandbox input set from the staged tables. The
// frames are shells over the DB's resident shared vectors (zero-copy;
// ReadTable's immutability contract), built once per code step rather
// than per QA retry.
func workTables(rt *Runtime, st *State) (map[string]*dataframe.Frame, error) {
	out := map[string]*dataframe.Frame{}
	for _, name := range []string{"work", "work_gal", "analysis"} {
		if _, ok := st.Staged[name]; !ok {
			continue
		}
		f, err := rt.DB.ReadTable(name)
		if err != nil {
			return nil, err
		}
		out[name] = f
	}
	return out, nil
}

func scriptTables(st *State) map[string][]string {
	out := map[string][]string{}
	for name, cols := range st.Staged {
		if name == "work" || name == "work_gal" || name == "analysis" {
			out[name] = cols
		}
	}
	return out
}

// runCodeStep is the shared python/viz execution loop: generate code,
// execute in the sandbox, QA-assess, retry with the error message up to
// MaxRevisions.
func runCodeStep(rt *Runtime, st *State, agentName, skill string, stepIndex int) (string, error) {
	in := st.Plan.Intent
	task := currentTask(st)
	started := stepStarted(rt, st, agentName)
	// The sandbox input set is invariant across QA retries (the DB only
	// changes after a step succeeds), so build it once per step instead of
	// re-reading every table per attempt. The frames are shells over the
	// DB's resident shared vectors, which scripts never mutate in place.
	tables, err := workTables(rt, st)
	if err != nil {
		return "", err
	}
	priorError := ""
	var stepFuel int64 // sandbox fuel across all attempts of this step
	for attempt := 0; attempt <= rt.MaxRevisions; attempt++ {
		req := llm.ScriptRequest{
			Task: task, Intent: in, Tables: scriptTables(st),
			Sims: st.LoadedSims, Steps: st.LoadedSteps,
			Context:   st.RetrievedContext,
			StepIndex: stepIndex, Attempt: attempt, PriorError: priorError,
			Strategy: st.Strategy,
		}
		var resp llm.ScriptResponse
		err := callModel(rt, st, agentName, skill,
			"You are the "+agentName+" agent. Generate analysis code for the delegated task.",
			req, &resp)
		if err != nil {
			return "", err
		}
		if st.Strategy < 0 && resp.Strategy >= 0 && in.Ambiguous {
			st.Strategy = resp.Strategy
		}
		if rt.Session != nil {
			name := fmt.Sprintf("%s_step%d.isc", agentName, stepIndex)
			if _, err := rt.Session.Record(agentName, "code", name, []byte(resp.Code)); err != nil {
				return "", err
			}
		}
		res := rt.Sandbox.Exec(resp.Code, tables)
		stepFuel += res.FuelUsed
		st.FuelUsed += res.FuelUsed
		if !res.OK {
			st.RedoCount++
			priorError = res.Error + humanHint(rt, st, res.Error)
			continue
		}
		pass, feedback, aerr := qaAssess(rt, st, agentName, task, res.Preview(), "")
		if aerr != nil {
			return "", aerr
		}
		if !pass {
			st.RedoCount++
			priorError = feedback
			continue
		}
		// Persist outputs: artifacts to provenance, frame to the DB.
		if rt.Session != nil {
			for name, data := range res.Artifacts {
				kind := "plot"
				if strings.HasSuffix(name, ".csv") {
					kind = "data"
				} else if strings.HasSuffix(name, ".vtk") {
					kind = "scene"
				}
				if _, err := rt.Session.Record(agentName, kind, name, data); err != nil {
					return "", err
				}
			}
		}
		if res.Frame != nil {
			if err := rt.DB.CreateOrReplaceTable("analysis", res.Frame); err != nil {
				return "", err
			}
			st.Staged["analysis"] = res.Frame.Names()
			if rt.Session != nil {
				if _, err := rt.Session.RecordFrame(agentName, "analysis_step", res.Frame.Head(1000)); err != nil {
					return "", err
				}
			}
		}
		rt.span(agentName, started) // PhasePython / PhaseViz
		stepDone(rt, st, agentName, agentName+": "+task, started, stepFuel)
		return nodeSupervisor, nil
	}
	rt.span(agentName, started)
	stepFailed(rt, st, agentName, fmt.Sprintf("%s step exhausted %d revisions: %s", agentName, rt.MaxRevisions, priorError), started, stepFuel)
	return nodeSupervisor, nil
}

func pythonNode(rt *Runtime, st *State) (string, error) {
	next, err := runCodeStep(rt, st, "python", llm.SkillScript, st.PyCount)
	if err == nil && !st.Failed {
		st.PyCount++
	}
	return next, err
}

func vizNode(rt *Runtime, st *State) (string, error) {
	next, err := runCodeStep(rt, st, "viz", llm.SkillViz, st.VizCount)
	if err == nil && !st.Failed {
		st.VizCount++
	}
	return next, err
}

// docNode writes the documentation agent's workflow summary and ends the
// run.
func docNode(rt *Runtime, st *State) (string, error) {
	if rt.SkipDocumentation {
		if !st.Failed {
			st.Done = true
		}
		return "", nil
	}
	req := llm.SummaryRequest{Question: st.Question, Steps: st.Completed, Failures: st.Failures}
	raw, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	resp, err := rt.Model.Complete(llm.Request{Agent: "documentation", Skill: llm.SkillSummary,
		System: "You are the documentation agent. Record the workflow.", Prompt: string(raw)})
	if err != nil {
		return "", err
	}
	st.Usage.Add(resp.Usage)
	if rt.Session != nil {
		if _, err := rt.Session.Record("documentation", "summary", "summary.md", []byte(resp.Text)); err != nil {
			return "", err
		}
	}
	if !st.Failed {
		st.Done = true
	}
	return "", nil
}
