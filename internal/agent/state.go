// Package agent implements InferA's multi-agent architecture (§3, Fig. 3):
// a planning stage with human-in-the-loop refinement, and an analysis stage
// in which a supervisor routes work through the data-loading, SQL, Python,
// visualization, quality-assurance and documentation agents over a state
// graph with per-transition provenance checkpoints.
package agent

import (
	"fmt"
	"time"

	"infera/internal/dataframe"
	"infera/internal/hacc"
	"infera/internal/llm"
	"infera/internal/provenance"
	"infera/internal/rag"
	"infera/internal/sandbox"
	"infera/internal/sqldb"
	"infera/internal/stage"
	"infera/internal/telemetry"
)

// State is the shared workflow state threaded through the graph. It holds
// only metadata and references — data lives in the staging database and the
// provenance store — so every node transition can checkpoint it as JSON.
type State struct {
	Question string   `json:"question"`
	Plan     llm.Plan `json:"plan"`

	StepIdx   int  `json:"step_idx"`   // next plan step to execute
	PyCount   int  `json:"py_count"`   // python steps completed
	VizCount  int  `json:"viz_count"`  // viz steps completed
	RedoCount int  `json:"redo_count"` // QA-requested regenerations
	Done      bool `json:"done"`
	Failed    bool `json:"failed"`

	FailReason string   `json:"fail_reason,omitempty"`
	Failures   []string `json:"failures,omitempty"`
	Completed  []string `json:"completed,omitempty"`
	// History is the supervisor message log. It is excluded from state
	// checkpoints (json "-") so provenance storage reflects data and code
	// artifacts, not model transcripts.
	History []string `json:"-"`

	// RetrievedContext is the metadata text the RAG retriever assembled;
	// worker agents receive it with every delegated task (so regeneration
	// retries pay its token cost again, as real prompts would). Excluded
	// from checkpoints like History.
	RetrievedContext string `json:"-"`

	LoadedSims  []int               `json:"loaded_sims,omitempty"`
	LoadedSteps []int               `json:"loaded_steps,omitempty"`
	Staged      map[string][]string `json:"staged,omitempty"` // table -> columns

	Usage      llm.Usage `json:"usage"`
	PlanRounds int       `json:"plan_rounds"` // human feedback iterations
	Strategy   int       `json:"strategy"`    // ambiguous-question strategy actually used
	// FuelUsed is the total script instruction budget consumed by this
	// run's sandboxed executions, across all steps and QA retries.
	FuelUsed int64 `json:"fuel_used,omitempty"`
}

// Feedback is the human-in-the-loop hook. A nil Feedback runs fully
// automated (the paper's evaluation condition: "skipping human feedback
// provides a lower bound").
type Feedback interface {
	// ReviewPlan shows the plan; returning approved=false with a comment
	// triggers another planning round with the comment folded in.
	ReviewPlan(plan llm.Plan) (approved bool, comment string)
	// OnError may supply a hint (e.g. the correct column name) when a step
	// fails; returning ok=false gives no hint.
	OnError(step llm.PlanStep, errMsg string) (hint string, ok bool)
}

// Runtime bundles the model, substrates and policies for one workflow run.
type Runtime struct {
	Model     llm.Client
	Catalog   *hacc.Catalog
	DB        *sqldb.DB
	Sandbox   sandbox.Runner
	Session   *provenance.Session
	Retriever *rag.Retriever
	Feedback  Feedback

	// Stage is the shared staging cache raw snapshot reads go through, so
	// concurrent workflows over overlapping (sim, step) slices decode each
	// gio file once. Nil uses the process-wide stage.Shared() cache.
	Stage *stage.Cache

	// Events, when set, receives the run's typed lifecycle stream
	// (plan_proposed ... answer) — the substrate the serving layer streams
	// to clients. Nil emits nothing; the workflow is unaffected either way.
	Events *EventLog

	// MaxRevisions caps QA-guided regenerations per step (paper: 5).
	// Zero takes the default; a negative value disables retries entirely
	// (the static-pipeline baseline of §4.4.1).
	MaxRevisions int
	// TrimHistory limits the supervisor's routing context to the last
	// message instead of the full log — the §4.1.4 token optimization.
	TrimHistory bool
	// SkipDocumentation drops the documentation agent's summary call —
	// "not strictly necessary for core analysis" (§4.1.4), the other
	// token-saving lever.
	SkipDocumentation bool
	// MaxPlanRounds caps human plan-refinement iterations.
	MaxPlanRounds int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)

	// Metrics, when set, receives per-phase span histograms
	// (infera_ask_phase_seconds) for every run. Nil records nothing.
	Metrics *telemetry.Registry
	// MetricLabels are attached to every series this runtime records —
	// the serving layer sets ensemble=<shard> here.
	MetricLabels []telemetry.Label

	// spans accumulates this run's phase durations. Created per run by
	// withDefaults, so a shared Runtime template stays reusable.
	spans *spanSet
}

func (rt *Runtime) logf(format string, args ...any) {
	if rt.Logf != nil {
		rt.Logf(format, args...)
	}
}

// emit appends a lifecycle event when a log is attached.
func (rt *Runtime) emit(ev Event) {
	if rt.Events != nil {
		rt.Events.Append(ev)
	}
}

func (rt *Runtime) withDefaults() *Runtime {
	out := *rt
	switch {
	case out.MaxRevisions == 0:
		out.MaxRevisions = 5
	case out.MaxRevisions < 0:
		out.MaxRevisions = 0
	}
	if out.MaxPlanRounds == 0 {
		out.MaxPlanRounds = 3
	}
	if out.Stage == nil {
		out.Stage = stage.Shared()
	}
	out.spans = newSpanSet()
	return &out
}

// Result is the outcome of one full workflow.
type Result struct {
	State     State
	Answer    *dataframe.Frame // final analysis frame (may be nil on failure)
	Summary   string
	Artifacts []provenance.Entry
	Duration  time.Duration
}

// ArtifactsOfKind filters the provenance trail by artifact kind ("plot",
// "scene", "data", ...), preserving manifest order — the shared plumbing the
// CLI and the serving layer use to surface renderable outputs.
func (r *Result) ArtifactsOfKind(kinds ...string) []provenance.Entry {
	want := map[string]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	var out []provenance.Entry
	for _, e := range r.Artifacts {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// TaskCompleteness returns the fraction of planned steps completed.
func (r *Result) TaskCompleteness() float64 {
	if len(r.State.Plan.Steps) == 0 {
		return 0
	}
	return float64(r.State.StepIdx) / float64(len(r.State.Plan.Steps))
}

// ErrFailed marks a run that terminated before completing its plan.
type ErrFailed struct{ Reason string }

func (e *ErrFailed) Error() string { return fmt.Sprintf("agent: run failed: %s", e.Reason) }
