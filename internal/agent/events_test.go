package agent

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"infera/internal/llm"
)

func TestEventLogAppendSinceWait(t *testing.T) {
	l := NewEventLog(0)
	if seq := l.Append(Event{Kind: EventPlanProposed}); seq != 1 {
		t.Fatalf("first seq = %d", seq)
	}
	l.Append(Event{Kind: EventStepStarted})

	events, closed := l.Since(0)
	if len(events) != 2 || closed {
		t.Fatalf("since(0) = %d events closed=%v", len(events), closed)
	}
	if events[0].Seq != 1 || events[1].Seq != 2 || events[0].Time.IsZero() {
		t.Fatalf("events = %+v", events)
	}
	events, _ = l.Since(1)
	if len(events) != 1 || events[0].Kind != EventStepStarted {
		t.Fatalf("since(1) = %+v", events)
	}
	if events, _ := l.Since(2); len(events) != 0 {
		t.Fatalf("since(2) = %+v", events)
	}

	// Wait wakes on append.
	done := make(chan []Event, 1)
	go func() {
		evs, _, _ := l.Wait(context.Background(), 2)
		done <- evs
	}()
	time.Sleep(10 * time.Millisecond)
	l.Append(Event{Kind: EventAnswer})
	select {
	case evs := <-done:
		if len(evs) != 1 || evs[0].Kind != EventAnswer {
			t.Fatalf("waited events = %+v", evs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait never woke")
	}

	// Wait wakes on close; appends after close are dropped.
	l.Close()
	if seq := l.Append(Event{Kind: EventAnswer}); seq != 0 {
		t.Fatalf("append after close = %d", seq)
	}
	evs, closed, err := l.Wait(context.Background(), 3)
	if err != nil || len(evs) != 0 || !closed {
		t.Fatalf("wait after close = %v %v %v", evs, closed, err)
	}

	// Wait honors context cancellation.
	l2 := NewEventLog(4)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := l2.Wait(ctx, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait err = %v", err)
	}
}

func TestEventLogBounded(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		l.Append(Event{Kind: EventStepStarted})
	}
	events, _ := l.Since(0)
	if len(events) != 3 || events[0].Seq != 3 || events[2].Seq != 5 {
		t.Fatalf("bounded log = %+v", events)
	}
	// A cursor inside the dropped range clamps to the retention window.
	events, _ = l.Since(1)
	if len(events) != 3 || events[0].Seq != 3 {
		t.Fatalf("clamped read = %+v", events)
	}
}

func TestAsyncFeedbackSubmitAndDeadline(t *testing.T) {
	f := NewAsyncFeedback(5*time.Second, nil)
	if err := f.Submit(PlanDecision{Approve: true}); !errors.Is(err, ErrNoPendingPlan) {
		t.Fatalf("submit without review = %v", err)
	}

	type verdict struct {
		approved bool
		comment  string
	}
	got := make(chan verdict, 1)
	go func() {
		a, c := f.ReviewPlan(llm.Plan{})
		got <- verdict{a, c}
	}()
	waitPending(t, f)
	if err := f.Submit(PlanDecision{Approve: false, Comment: "add a plot"}); err != nil {
		t.Fatal(err)
	}
	v := <-got
	if v.approved || v.comment != "add a plot" {
		t.Fatalf("verdict = %+v", v)
	}
	// The window is consumed: a second submit has nothing to answer.
	if err := f.Submit(PlanDecision{Approve: true}); !errors.Is(err, ErrNoPendingPlan) {
		t.Fatalf("stale submit = %v", err)
	}

	// Deadline auto-approves.
	fast := NewAsyncFeedback(30*time.Millisecond, nil)
	var autoSeen bool
	fast.OnResolve = func(auto bool) { autoSeen = auto }
	a, c := fast.ReviewPlan(llm.Plan{})
	if !a || c != "" || !autoSeen {
		t.Fatalf("deadline verdict = %v %q auto=%v", a, c, autoSeen)
	}

	// Abort unblocks current and future reviews immediately.
	ab := NewAsyncFeedback(time.Hour, nil)
	res := make(chan bool, 1)
	go func() {
		a, _ := ab.ReviewPlan(llm.Plan{})
		res <- a
	}()
	waitPending(t, ab)
	ab.Abort()
	select {
	case a := <-res:
		if !a {
			t.Fatal("abort must auto-approve")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abort did not unblock review")
	}
	if a, _ := ab.ReviewPlan(llm.Plan{}); !a {
		t.Fatal("post-abort review must auto-approve")
	}
}

func waitPending(t *testing.T, f *AsyncFeedback) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !f.Pending() {
		if time.Now().After(deadline) {
			t.Fatal("review never became pending")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRunEmitsLifecycleEvents runs the full workflow with an event log and
// an async reviewer attached and audits the stream: plan_proposed first, a
// revision round producing plan_revised, step started/finished pairs, and
// the terminal answer event.
func TestRunEmitsLifecycleEvents(t *testing.T) {
	rt := testRuntime(t, nil)
	rt.Events = NewEventLog(0)
	fb := NewAsyncFeedback(30*time.Second, AutoHinter{})
	rt.Feedback = fb

	// Reviewer goroutine: reject round 0 with a comment, approve round 1.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		waitPending(t, fb)
		if err := fb.Submit(PlanDecision{Approve: false, Comment: "please revise the plan"}); err != nil {
			t.Error(err)
			return
		}
		waitPending(t, fb)
		if err := fb.Submit(PlanDecision{Approve: true}); err != nil {
			t.Error(err)
		}
	}()

	res, err := Run(rt, "Can you find me the top 5 largest friends-of-friends halos from timestep 624 in simulation 1?")
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.State.PlanRounds != 2 {
		t.Fatalf("plan rounds = %d, want 2", res.State.PlanRounds)
	}

	events, closed := rt.Events.Since(0)
	if closed {
		t.Fatal("run does not close the log; its owner does")
	}
	if len(events) == 0 || events[0].Kind != EventPlanProposed || events[0].Plan == nil {
		t.Fatalf("first event = %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Kind != EventAnswer || last.Answer == nil || last.Answer.Failed || last.Answer.Rows != 5 {
		t.Fatalf("last event = %+v (answer %+v)", last, last.Answer)
	}
	counts := map[EventKind]int{}
	var started, finished int
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d (not contiguous)", i, ev.Seq)
		}
		counts[ev.Kind]++
		switch ev.Kind {
		case EventStepStarted:
			started++
		case EventStepFinished:
			finished++
			if !ev.OK {
				t.Fatalf("step failed: %+v", ev)
			}
		}
	}
	if counts[EventPlanRevised] != 1 {
		t.Fatalf("plan_revised count = %d, want 1 (events %v)", counts[EventPlanRevised], counts)
	}
	if started == 0 || started != finished {
		t.Fatalf("step events unbalanced: %d started, %d finished", started, finished)
	}
	if counts[EventQAVerdict] == 0 {
		t.Fatal("no qa_verdict events")
	}
	if counts[EventAnswer] != 1 {
		t.Fatalf("answer count = %d", counts[EventAnswer])
	}
}
