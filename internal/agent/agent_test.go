package agent

import (
	"encoding/json"
	"errors"
	"testing"

	"infera/internal/hacc"
	"infera/internal/llm"
	"infera/internal/provenance"
	"infera/internal/rag"
	"infera/internal/sandbox"
	"infera/internal/script"
	"infera/internal/sqldb"
	"infera/internal/tools"
)

func testRuntime(t *testing.T, model llm.Client) *Runtime {
	t.Helper()
	dir := t.TempDir()
	spec := hacc.Spec{Runs: 2, Steps: []int{99, 624}, HalosPerRun: 50, ParticlesPerStep: 50, BoxSize: 128, Seed: 5}
	cat, err := hacc.Generate(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	db, err := sqldb.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store, err := provenance.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := store.NewSession("s1")
	if err != nil {
		t.Fatal(err)
	}
	reg := script.DefaultRegistry()
	tools.Register(reg, cat, nil)
	if model == nil {
		model = llm.NewSim(llm.SimConfig{Seed: 2, ColumnErrorRate: 1e-9, ToolErrorRate: 1e-9})
	}
	return &Runtime{
		Model:     model,
		Catalog:   cat,
		DB:        db,
		Sandbox:   &sandbox.Executor{Registry: reg},
		Session:   sess,
		Retriever: rag.NewRetriever(rag.BuildHACCIndex()),
	}
}

func TestGraphEngine(t *testing.T) {
	g := NewGraph("a")
	var order []string
	g.AddNode("a", func(rt *Runtime, st *State) (string, error) {
		order = append(order, "a")
		return "b", nil
	})
	g.AddNode("b", func(rt *Runtime, st *State) (string, error) {
		order = append(order, "b")
		return "", nil
	})
	if err := g.Run(&Runtime{}, &State{}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("order = %v", order)
	}
}

func TestGraphLoopGuardAndUnknownNode(t *testing.T) {
	g := NewGraph("a")
	g.AddNode("a", func(rt *Runtime, st *State) (string, error) { return "a", nil })
	g.MaxTransitions = 5
	if err := g.Run(&Runtime{}, &State{}); err == nil {
		t.Error("routing loop should error")
	}
	g2 := NewGraph("missing")
	if err := g2.Run(&Runtime{}, &State{}); err == nil {
		t.Error("unknown node should error")
	}
}

func TestRunEndToEnd(t *testing.T) {
	rt := testRuntime(t, nil)
	res, err := Run(rt, "Can you find me the top 5 largest friends-of-friends halos from timestep 624 in simulation 1?")
	if err != nil {
		t.Fatal(err)
	}
	if !res.State.Done || res.Answer == nil || res.Answer.NumRows() != 5 {
		t.Fatalf("result = %+v", res.State)
	}
	// The answer holds sim-1 halos only.
	for _, v := range res.Answer.MustColumn("sim").I {
		if v != 1 {
			t.Errorf("answer contains sim %d", v)
		}
	}
	if res.Duration <= 0 {
		t.Error("duration not measured")
	}
}

func TestResolveSimsSteps(t *testing.T) {
	rt := testRuntime(t, nil)
	in := llm.ParseIntent("average fof_halo_mass in simulation 1 at timestep 600 please")
	sims := resolveSims(in, rt.Catalog)
	if len(sims) != 1 || sims[0] != 1 {
		t.Errorf("sims = %v", sims)
	}
	// Step 600 is absent; the nearest available (624) is used.
	steps := resolveSteps(in, rt.Catalog)
	if len(steps) != 1 || steps[0] != 624 {
		t.Errorf("steps = %v", steps)
	}
	// Out-of-range sims fall back to all.
	in2 := llm.ParseIntent("halos in simulation 99")
	if got := resolveSims(in2, rt.Catalog); len(got) != 2 {
		t.Errorf("fallback sims = %v", got)
	}
}

func TestRestoreStateRoundTrip(t *testing.T) {
	st := &State{Question: "q", StepIdx: 3, RedoCount: 2, Staged: map[string][]string{"work": {"a"}}}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	back, err := RestoreState(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.StepIdx != 3 || back.Staged["work"][0] != "a" {
		t.Errorf("restored = %+v", back)
	}
	if _, err := RestoreState([]byte("{bad")); err == nil {
		t.Error("bad state should fail")
	}
}

func TestCorrectColumnFor(t *testing.T) {
	col, ok := CorrectColumnFor(`KeyError: column "halo_count" not found`)
	if !ok || col != "fof_halo_count" {
		t.Errorf("hint = %q %v", col, ok)
	}
	col, ok = CorrectColumnFor(`KeyError: column "stellar_mass" not found`)
	if !ok || col != "gal_stellar_mass" {
		t.Errorf("hint = %q %v", col, ok)
	}
	if _, ok := CorrectColumnFor("no quoted identifier here"); ok {
		t.Error("should not hint without identifier")
	}
	// Exact dictionary names are not "truncations".
	if _, ok := CorrectColumnFor(`column "fof_halo_count" broken`); ok {
		t.Error("full name should not produce a hint")
	}
}

func TestFailedRunRoutesToDocumentation(t *testing.T) {
	model := llm.NewSim(llm.SimConfig{Seed: 3, BinaryQA: true, QAFalseNegRate: 0.9999})
	rt := testRuntime(t, model)
	res, err := Run(rt, "Top 5 largest halos at timestep 624 in simulation 0 please")
	var fe *ErrFailed
	if !errors.As(err, &fe) {
		t.Fatalf("want ErrFailed, got %v", err)
	}
	if res.Summary == "" {
		t.Error("failed run should still produce a summary")
	}
	if res.State.RedoCount == 0 {
		t.Error("redo count should reflect QA rejections")
	}
}

func TestInjectContextColumns(t *testing.T) {
	rt := testRuntime(t, nil)
	in := llm.ParseIntent("At timestep 624, slope of stellar-to-halo mass relation as a function of seed mass")
	if !in.ParamCols {
		t.Fatal("intent should request parameter columns")
	}
	res, err := Run(rt, "At timestep 624, slope of the stellar-to-halo mass (SMHM) relation as a function of seed mass?")
	if err != nil {
		t.Fatal(err)
	}
	work, err := rt.DB.ReadTable("work")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sim", "step", "m_seed"} {
		if !work.Has(want) {
			t.Errorf("work table missing %s: %v", want, work.Names())
		}
	}
	// m_seed must differ between simulations (it is the run parameter).
	seeds := map[string]bool{}
	ms := work.MustColumn("m_seed")
	sims := work.MustColumn("sim")
	for i := 0; i < work.NumRows(); i++ {
		seeds[sims.StringAt(i)+"/"+ms.StringAt(i)] = true
	}
	if len(seeds) != 2 {
		t.Errorf("seed/sim pairs = %v", seeds)
	}
	_ = res
}
