package agent

import (
	"strings"

	"infera/internal/hacc"
	"infera/internal/llm"
)

// AutoHinter is a scripted stand-in for the attentive human of §4.2.2: it
// approves plans as-is, and on errors that name a near-miss column it
// supplies the correct dictionary name ("using halo_count instead of
// fof_halo_count, directly providing the correct name resolves the issue").
type AutoHinter struct{}

var _ Feedback = AutoHinter{}

// ReviewPlan approves every plan without comment.
func (AutoHinter) ReviewPlan(llm.Plan) (bool, string) { return true, "" }

// OnError suggests the dictionary column whose suffix matches a name quoted
// in the error message.
func (AutoHinter) OnError(_ llm.PlanStep, errMsg string) (string, bool) {
	if col, ok := CorrectColumnFor(errMsg); ok {
		return "use column " + col, true
	}
	return "", false
}

// CorrectColumnFor scans an error message for a quoted identifier and
// returns the dictionary column it is a truncation of, if any.
func CorrectColumnFor(errMsg string) (string, bool) {
	for _, quote := range []string{`"`, `'`} {
		parts := strings.Split(errMsg, quote)
		for i := 1; i < len(parts); i += 2 {
			candidate := parts[i]
			if candidate == "" || strings.ContainsAny(candidate, " \n") {
				continue
			}
			for _, cd := range hacc.ColumnDictionary() {
				if cd.Column != candidate && strings.HasSuffix(cd.Column, candidate) {
					return cd.Column, true
				}
			}
		}
	}
	return "", false
}
