package agent

import (
	"testing"
	"time"

	"infera/internal/telemetry"
)

// TestAskSpanSet is the span-timing acceptance check: one full ask must
// produce a complete plan/stage/query/qa/total span set, stamped on the
// terminal answer event and recorded into the telemetry registry under
// infera_ask_phase_seconds with the runtime's base labels.
func TestAskSpanSet(t *testing.T) {
	rt := testRuntime(t, nil)
	reg := telemetry.NewRegistry()
	rt.Metrics = reg
	rt.MetricLabels = []telemetry.Label{telemetry.L("ensemble", "test")}
	events := NewEventLog(64)
	rt.Events = events

	res, err := Run(rt, "Top 5 largest halos at timestep 624 in simulation 0 please")
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer == nil || res.Answer.NumRows() == 0 {
		t.Fatalf("result = %+v", res)
	}

	// Every core phase of this SQL-only ask must have a span; python/viz
	// only appear when the plan routes through a code step.
	all, _ := events.Since(0)
	last := all[len(all)-1]
	if last.Kind != EventAnswer || last.Answer == nil {
		t.Fatalf("last event = %+v", last)
	}
	phases := last.Answer.PhasesNS
	for _, phase := range []string{PhasePlan, PhaseStage, PhaseQuery, PhaseQA, PhaseTotal} {
		if phases[phase] <= 0 {
			t.Errorf("phase %q missing from answer span set %v", phase, phases)
		}
	}
	if phases[PhaseTotal] != res.Duration.Nanoseconds() {
		t.Errorf("total span %d != result duration %d", phases[PhaseTotal], res.Duration.Nanoseconds())
	}
	// Spans are wall-clock fragments of the run: none may exceed the total.
	for phase, ns := range phases {
		if ns > phases[PhaseTotal] {
			t.Errorf("phase %q span %d exceeds total %d", phase, ns, phases[PhaseTotal])
		}
	}

	// The same spans land in the registry, keyed by the base labels plus
	// phase — one observation per phase for a single ask.
	for phase, ns := range phases {
		h := reg.Histogram(MetricAskPhaseSeconds, nil,
			telemetry.L("ensemble", "test"), telemetry.L("phase", phase))
		if h.Count() != 1 {
			t.Errorf("phase %q histogram count = %d, want 1", phase, h.Count())
		}
		want := time.Duration(ns).Seconds()
		if got := h.Sum(); got < want*0.999 || got > want*1.001 {
			t.Errorf("phase %q histogram sum = %g, want ~%g", phase, got, want)
		}
	}

	// Timed lifecycle events carry their elapsed stamp.
	var planElapsed, stepElapsed, qaElapsed bool
	for _, ev := range all {
		switch ev.Kind {
		case EventPlanProposed, EventPlanRevised:
			planElapsed = planElapsed || ev.ElapsedNS > 0
		case EventStepFinished:
			stepElapsed = stepElapsed || ev.ElapsedNS > 0
		case EventQAVerdict:
			qaElapsed = qaElapsed || ev.ElapsedNS > 0
		}
	}
	if !planElapsed || !stepElapsed || !qaElapsed {
		t.Errorf("elapsed stamps: plan=%v step=%v qa=%v", planElapsed, stepElapsed, qaElapsed)
	}
}

// TestSpanSetNilSafety: a runtime with no registry must run identically and
// the nil-safe span helpers must not panic.
func TestSpanSetNilSafety(t *testing.T) {
	var s *spanSet
	s.add(PhasePlan, time.Second) // no-op, no panic
	if snap := s.snapshot(); snap != nil {
		t.Fatalf("nil spanSet snapshot = %v", snap)
	}
	s.observe(nil, nil)

	fresh := newSpanSet()
	fresh.add(PhaseQA, -time.Second) // negative clamps to zero
	if got := fresh.ns[PhaseQA]; got != 0 {
		t.Fatalf("negative duration recorded as %d", got)
	}
	fresh.observe(nil, nil) // nil registry is a no-op
}
