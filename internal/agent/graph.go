package agent

import (
	"encoding/json"
	"fmt"
)

// NodeFunc executes one graph node, mutating state and naming the next
// node ("" ends the run).
type NodeFunc func(rt *Runtime, st *State) (next string, err error)

// Graph is a LangGraph-style state machine: named nodes with dynamic
// routing, checkpointing state after every transition.
type Graph struct {
	nodes map[string]NodeFunc
	start string
	// MaxTransitions guards against routing loops.
	MaxTransitions int
}

// NewGraph returns a graph starting at start.
func NewGraph(start string) *Graph {
	return &Graph{nodes: map[string]NodeFunc{}, start: start, MaxTransitions: 200}
}

// AddNode registers a node.
func (g *Graph) AddNode(name string, fn NodeFunc) { g.nodes[name] = fn }

// Run drives the graph to completion, checkpointing state into the
// session after each node when a session is attached.
func (g *Graph) Run(rt *Runtime, st *State) error {
	cur := g.start
	for i := 0; cur != ""; i++ {
		if i >= g.MaxTransitions {
			return fmt.Errorf("agent: graph exceeded %d transitions (routing loop?)", g.MaxTransitions)
		}
		fn, ok := g.nodes[cur]
		if !ok {
			return fmt.Errorf("agent: unknown node %q", cur)
		}
		next, err := fn(rt, st)
		if err != nil {
			return err
		}
		if rt.Session != nil {
			if _, err := rt.Session.Checkpoint(fmt.Sprintf("%02d-%s", i, cur), st); err != nil {
				return fmt.Errorf("agent: checkpoint after %s: %w", cur, err)
			}
		}
		cur = next
	}
	return nil
}

// RestoreState loads a checkpointed state (for branch-and-continue
// workflows, §4.2.1).
func RestoreState(data []byte) (*State, error) {
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("agent: restore state: %w", err)
	}
	return &st, nil
}
