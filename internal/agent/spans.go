package agent

import (
	"time"

	"infera/internal/telemetry"
)

// Workflow phase names used for span aggregation. Every ask that reaches
// the analysis stage produces at least the plan, stage, query, qa and
// total phases; python/viz appear when the plan includes code steps.
const (
	PhasePlan   = "plan"   // planner model rounds (review wait excluded)
	PhaseStage  = "stage"  // dataloader: retrieval + decode + staging
	PhaseQuery  = "query"  // SQL execution against the staging DB
	PhaseQA     = "qa"     // QA agent verdict calls
	PhasePython = "python" // python code steps (includes their QA retries)
	PhaseViz    = "viz"    // visualization code steps
	PhaseTotal  = "total"  // whole run, planning through documentation
)

// MetricAskPhaseSeconds is the histogram family per-phase ask spans are
// observed into, labeled {phase, ...Runtime.MetricLabels}.
const MetricAskPhaseSeconds = "infera_ask_phase_seconds"

// spanSet accumulates per-phase wall-clock time for one run. A run
// executes on a single goroutine (graph nodes run sequentially), so no
// locking is needed; the set lives on the per-run Runtime copy made by
// withDefaults.
type spanSet struct {
	ns map[string]int64
}

func newSpanSet() *spanSet { return &spanSet{ns: map[string]int64{}} }

// add charges d to phase. Zero and negative durations still mark the
// phase as entered so a fast phase is never reported as missing.
func (s *spanSet) add(phase string, d time.Duration) {
	if s == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s.ns[phase] += d.Nanoseconds()
}

// snapshot returns a copy of the accumulated phase durations.
func (s *spanSet) snapshot() map[string]int64 {
	if s == nil || len(s.ns) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s.ns))
	for k, v := range s.ns {
		out[k] = v
	}
	return out
}

// observe records every accumulated phase into the registry's
// infera_ask_phase_seconds histogram, one observation per phase per run,
// with a phase label joined to the runtime's static labels.
func (s *spanSet) observe(r *telemetry.Registry, base []telemetry.Label) {
	if s == nil || r == nil {
		return
	}
	for phase, ns := range s.ns {
		labels := make([]telemetry.Label, 0, len(base)+1)
		labels = append(labels, base...)
		labels = append(labels, telemetry.L("phase", phase))
		r.Histogram(MetricAskPhaseSeconds, nil, labels...).Observe(float64(ns) / 1e9)
	}
}

// span charges phase with the time since start and returns the elapsed
// duration, for stamping Event.ElapsedNS alongside the histogram record.
func (rt *Runtime) span(phase string, start time.Time) time.Duration {
	d := time.Since(start)
	rt.spans.add(phase, d)
	return d
}
