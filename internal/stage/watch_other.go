//go:build !linux

package stage

import (
	"os"
	"sync"
	"time"
)

// pollInterval is the non-Linux fallback's change-detection latency: each
// registered file is statted once per interval from a single background
// goroutine. Hot-path behavior is identical to inotify — lookups serve
// the pinned stamp with zero syscalls — only the invalidation latency
// differs.
const pollInterval = 500 * time.Millisecond

// pollWatcher stat-polls registered paths and fires the callback when a
// file's (mtime, size) changes, it disappears, or it reappears.
type pollWatcher struct {
	onEvent func(path string)
	stop    chan struct{}
	mu      sync.Mutex
	seen    map[string]pollState
}

type pollState struct {
	st  stamp
	err bool
}

func newWatcher(onEvent func(path string)) (watcher, error) {
	w := &pollWatcher{
		onEvent: onEvent,
		stop:    make(chan struct{}),
		seen:    map[string]pollState{},
	}
	go w.loop()
	return w, nil
}

func (w *pollWatcher) add(path string) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.seen[path] = pollState{st: stamp{mtime: st.ModTime().UnixNano(), size: st.Size()}}
	w.mu.Unlock()
	return nil
}

func (w *pollWatcher) close() error {
	close(w.stop)
	return nil
}

func (w *pollWatcher) loop() {
	t := time.NewTicker(pollInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
		}
		w.mu.Lock()
		paths := make([]string, 0, len(w.seen))
		for p := range w.seen {
			paths = append(paths, p)
		}
		w.mu.Unlock()
		for _, p := range paths {
			st, err := os.Stat(p)
			var cur pollState
			if err != nil {
				cur = pollState{err: true}
			} else {
				cur = pollState{st: stamp{mtime: st.ModTime().UnixNano(), size: st.Size()}}
			}
			w.mu.Lock()
			prev, ok := w.seen[p]
			changed := ok && prev != cur
			if ok {
				w.seen[p] = cur
			}
			w.mu.Unlock()
			if changed {
				w.onEvent(p)
			}
		}
	}
}
