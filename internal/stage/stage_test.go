package stage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"infera/internal/dataframe"
	"infera/internal/gio"
)

// writeSnapshot writes a small gio file with deterministic int/float
// columns and returns its path and per-column block size.
func writeSnapshot(t *testing.T, dir, name string, rows int, fill int64) string {
	t.Helper()
	ints := make([]int64, rows)
	floats := make([]float64, rows)
	for i := range ints {
		ints[i] = fill + int64(i)
		floats[i] = float64(fill) + float64(i)/2
	}
	f := dataframe.MustFromColumns(
		dataframe.NewInt("fof_halo_tag", ints),
		dataframe.NewFloat("fof_halo_mass", floats),
		dataframe.NewFloat("fof_halo_count", floats),
	)
	path := filepath.Join(dir, name)
	if err := gio.WriteFile(path, f, nil); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSingleFlightDedupe stages overlapping slices from 8 concurrent
// sessions and proves each file is opened and decoded exactly once.
func TestSingleFlightDedupe(t *testing.T) {
	dir := t.TempDir()
	const nfiles = 5
	paths := make([]string, nfiles)
	for i := range paths {
		paths[i] = writeSnapshot(t, dir, fmt.Sprintf("s%d.gio", i), 64, int64(i*1000))
	}
	c := New(1<<30, 4)

	const sessions = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			<-start
			// Every session loads every file — maximal overlap.
			reqs := make([]Request, nfiles)
			for i, p := range paths {
				reqs[i] = Request{Path: p, Columns: []string{"fof_halo_tag", "fof_halo_mass"}}
			}
			for _, res := range c.LoadAll(reqs) {
				if res.Err != nil {
					errs <- res.Err
					return
				}
				if res.Frame.NumRows() != 64 || res.Frame.NumCols() != 2 {
					errs <- fmt.Errorf("bad shape %dx%d", res.Frame.NumRows(), res.Frame.NumCols())
					return
				}
			}
		}(s)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Opens != nfiles {
		t.Fatalf("each file must decode exactly once: opens = %d, want %d", st.Opens, nfiles)
	}
	if st.Misses != nfiles {
		t.Fatalf("misses = %d, want %d", st.Misses, nfiles)
	}
	if want := int64(sessions*nfiles) - nfiles; st.Hits != want {
		t.Fatalf("hits = %d, want %d", st.Hits, want)
	}
}

// TestColumnSetCanonicalization: order and duplicates must not split
// entries, and the returned frame follows the requested order.
func TestColumnSetCanonicalization(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 16, 7)
	c := New(1<<30, 2)

	f1, n1, err := c.Columns(path, "fof_halo_mass", "fof_halo_tag")
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 {
		t.Fatal("first read must report bytes read")
	}
	f2, n2, err := c.Columns(path, "fof_halo_tag", "fof_halo_mass", "fof_halo_tag")
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Fatalf("cache hit must report 0 bytes read, got %d", n2)
	}
	if got := c.Stats().Opens; got != 1 {
		t.Fatalf("opens = %d, want 1 (same column set, different order)", got)
	}
	if f1.Names()[0] != "fof_halo_mass" || f2.Names()[0] != "fof_halo_tag" {
		t.Fatalf("column order must follow the request: %v / %v", f1.Names(), f2.Names())
	}
	// Shells are independent: adding a column to one must not leak.
	if err := f2.AddColumn(dataframe.NewInt("sim", make([]int64, 16))); err != nil {
		t.Fatal(err)
	}
	if f1.Has("sim") {
		t.Fatal("frame shells must be independent per call")
	}
}

// TestLRUEvictionAtBudget inserts three entries under a budget sized for
// two and checks the least-recently-used one is evicted.
func TestLRUEvictionAtBudget(t *testing.T) {
	dir := t.TempDir()
	a := writeSnapshot(t, dir, "a.gio", 64, 0)
	b := writeSnapshot(t, dir, "b.gio", 64, 1)
	d := writeSnapshot(t, dir, "c.gio", 64, 2)

	c := New(1, 2) // probe entry size first
	if _, n, err := c.Columns(a, "fof_halo_tag"); err != nil || n == 0 {
		t.Fatalf("probe: %v %d", err, n)
	}
	entryBytes := c.Stats().EvictedBytes // budget 1 evicts the probe immediately
	if entryBytes == 0 {
		t.Fatal("probe entry was not measured")
	}

	c = New(2*entryBytes, 2)
	for _, p := range []string{a, b} {
		if _, _, err := c.Columns(p, "fof_halo_tag"); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b is LRU, then insert the third entry.
	if _, _, err := c.Columns(a, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Columns(d, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.EvictedBytes != entryBytes {
		t.Fatalf("evictions = %d (%d bytes), want 1 (%d bytes)", st.Evictions, st.EvictedBytes, entryBytes)
	}
	if st.UsedBytes > 2*entryBytes {
		t.Fatalf("used %d exceeds budget %d", st.UsedBytes, 2*entryBytes)
	}
	// a stayed resident (hit), b was evicted (re-decodes).
	before := c.Stats().Opens
	if _, _, err := c.Columns(a, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Opens; got != before {
		t.Fatal("recently-used entry must stay resident")
	}
	if _, _, err := c.Columns(b, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Opens; got != before+1 {
		t.Fatal("evicted entry must re-decode")
	}
}

// TestOversizedEntryBypassesCache: an entry bigger than the whole budget
// must not flush resident entries on its way through.
func TestOversizedEntryBypassesCache(t *testing.T) {
	dir := t.TempDir()
	small := writeSnapshot(t, dir, "small.gio", 8, 0)
	big := writeSnapshot(t, dir, "big.gio", 4096, 1)

	c := New(1<<30, 2)
	if _, _, err := c.Columns(small, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	smallBytes := c.Stats().UsedBytes

	c = New(smallBytes+16, 2) // fits the small entry, not the big one
	if _, _, err := c.Columns(small, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	f, _, err := c.Columns(big, "fof_halo_tag", "fof_halo_mass")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 4096 {
		t.Fatalf("oversized load must still be served: %d rows", f.NumRows())
	}
	st := c.Stats()
	if st.Entries != 1 || st.UsedBytes != smallBytes {
		t.Fatalf("oversized entry must not disturb residents: %+v", st)
	}
	// The small entry is still a hit.
	before := st.Opens
	if _, _, err := c.Columns(small, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Opens != before {
		t.Fatal("resident entry was flushed by an oversized insert")
	}
}

// TestInvalidationOnFileChange rewrites a cached file and checks the stale
// entry is dropped and fresh data is served.
func TestInvalidationOnFileChange(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 8, 100)
	c := New(1<<30, 2)

	f, _, err := c.Columns(path, "fof_halo_tag")
	if err != nil {
		t.Fatal(err)
	}
	if f.MustColumn("fof_halo_tag").I[0] != 100 {
		t.Fatal("unexpected seed data")
	}

	// Regenerate with different content; force a distinct mtime in case the
	// filesystem's timestamp granularity is coarse.
	writeSnapshot(t, dir, "s.gio", 8, 500)
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}

	f2, n, err := c.Columns(path, "fof_halo_tag")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("changed file must re-decode, not hit")
	}
	if f2.MustColumn("fof_halo_tag").I[0] != 500 {
		t.Fatalf("stale data served: %d", f2.MustColumn("fof_halo_tag").I[0])
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	// Same-size rewrite invalidates too (mtime alone distinguishes).
	if st.Opens != 2 {
		t.Fatalf("opens = %d, want 2", st.Opens)
	}
}

// TestSetBudgetEvicts shrinks the budget below residency and checks
// immediate eviction.
func TestSetBudgetEvicts(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 64, 0)
	c := New(1<<30, 2)
	if _, _, err := c.Columns(path, "fof_halo_tag", "fof_halo_mass"); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Entries != 1 {
		t.Fatal("entry not resident")
	}
	c.SetBudget(0)
	st := c.Stats()
	if st.Entries != 0 || st.UsedBytes != 0 || st.Evictions != 1 {
		t.Fatalf("shrinking budget must evict: %+v", st)
	}
}

// TestErrorPropagation: missing columns and missing files fail without
// caching the failure.
func TestErrorPropagation(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 8, 0)
	c := New(1<<30, 2)
	if _, _, err := c.Columns(path, "no_such_column"); err == nil {
		t.Fatal("want column error")
	}
	if _, _, err := c.Columns(filepath.Join(dir, "missing.gio"), "a"); err == nil {
		t.Fatal("want stat error")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed decodes must not cache: %+v", st)
	}
	// The file is still loadable after a failed column request.
	if _, _, err := c.Columns(path, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentChurn hammers one cache with overlapping loads, column-set
// variations and budget changes under -race.
func TestConcurrentChurn(t *testing.T) {
	dir := t.TempDir()
	const nfiles = 4
	paths := make([]string, nfiles)
	for i := range paths {
		paths[i] = writeSnapshot(t, dir, fmt.Sprintf("s%d.gio", i), 32, int64(i))
	}
	c := New(1<<20, 4)
	colsets := [][]string{
		{"fof_halo_tag"},
		{"fof_halo_tag", "fof_halo_mass"},
		{"fof_halo_mass", "fof_halo_count", "fof_halo_tag"},
	}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				p := paths[(g+i)%nfiles]
				cs := colsets[(g+i)%len(colsets)]
				f, _, err := c.Columns(p, cs...)
				if err != nil {
					t.Error(err)
					return
				}
				if f.NumRows() != 32 {
					t.Errorf("rows = %d", f.NumRows())
					return
				}
				if g == 0 && i%10 == 0 {
					c.SetBudget(int64(1<<20) + int64(i))
				}
			}
		}(g)
	}
	wg.Wait()
}
