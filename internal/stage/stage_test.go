package stage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"infera/internal/dataframe"
	"infera/internal/gio"
)

// writeSnapshot writes a small gio file with deterministic int/float
// columns and returns its path.
func writeSnapshot(t *testing.T, dir, name string, rows int, fill int64) string {
	t.Helper()
	ints := make([]int64, rows)
	floats := make([]float64, rows)
	for i := range ints {
		ints[i] = fill + int64(i)
		floats[i] = float64(fill) + float64(i)/2
	}
	f := dataframe.MustFromColumns(
		dataframe.NewInt("fof_halo_tag", ints),
		dataframe.NewFloat("fof_halo_mass", floats),
		dataframe.NewFloat("fof_halo_count", floats),
	)
	path := filepath.Join(dir, name)
	if err := gio.WriteFile(path, f, nil); err != nil {
		t.Fatal(err)
	}
	return path
}

// blockSizes reads the per-column encoded block sizes from a file header.
func blockSizes(t *testing.T, path string) map[string]int64 {
	t.Helper()
	r, err := gio.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	out := map[string]int64{}
	for _, name := range r.ColumnNames() {
		ci, ok := r.ColumnInfoOf(name)
		if !ok {
			t.Fatalf("column %q missing from header", name)
		}
		out[name] = ci.Size
	}
	return out
}

// TestSingleFlightDedupe stages overlapping slices from 8 concurrent
// sessions and proves each file is opened once and each column decoded
// exactly once.
func TestSingleFlightDedupe(t *testing.T) {
	dir := t.TempDir()
	const nfiles = 5
	paths := make([]string, nfiles)
	for i := range paths {
		paths[i] = writeSnapshot(t, dir, fmt.Sprintf("s%d.gio", i), 64, int64(i*1000))
	}
	c := New(1<<30, 4)

	const sessions = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			<-start
			// Every session loads every file — maximal overlap.
			reqs := make([]Request, nfiles)
			for i, p := range paths {
				reqs[i] = Request{Path: p, Columns: []string{"fof_halo_tag", "fof_halo_mass"}}
			}
			for _, res := range c.LoadAll(reqs) {
				if res.Err != nil {
					errs <- res.Err
					return
				}
				if res.Frame.NumRows() != 64 || res.Frame.NumCols() != 2 {
					errs <- fmt.Errorf("bad shape %dx%d", res.Frame.NumRows(), res.Frame.NumCols())
					return
				}
			}
		}(s)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := c.Stats()
	const cols = 2
	if st.Opens != nfiles {
		t.Fatalf("each file must open exactly once: opens = %d, want %d", st.Opens, nfiles)
	}
	if st.Misses != nfiles*cols {
		t.Fatalf("each column must decode exactly once: misses = %d, want %d", st.Misses, nfiles*cols)
	}
	if want := int64(sessions*nfiles*cols) - nfiles*cols; st.Hits != want {
		t.Fatalf("hits = %d, want %d", st.Hits, want)
	}
}

// TestPerColumnDecodeOnce is the overlapping-subset property the
// per-column keying exists for: two concurrent sessions requesting
// different column subsets of one file decode each *column* exactly once,
// sharing the overlap. Run under -race.
func TestPerColumnDecodeOnce(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 128, 0)
	sizes := blockSizes(t, path)
	c := New(1<<30, 4)

	start := make(chan struct{})
	subsets := [][]string{
		{"fof_halo_tag", "fof_halo_mass"},
		{"fof_halo_mass", "fof_halo_count"},
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(subsets))
	for _, cols := range subsets {
		wg.Add(1)
		go func(cols []string) {
			defer wg.Done()
			<-start
			f, _, err := c.Columns(path, cols...)
			if err != nil {
				errs <- err
				return
			}
			if f.NumCols() != 2 || f.NumRows() != 128 {
				errs <- fmt.Errorf("bad shape %dx%d for %v", f.NumRows(), f.NumCols(), cols)
			}
		}(cols)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := c.Stats()
	// 4 column lookups over 3 distinct columns: 3 decodes, 1 shared hit on
	// the overlap (fof_halo_mass) regardless of which session led it.
	if st.Misses != 3 {
		t.Fatalf("each distinct column must decode exactly once: misses = %d, want 3 (stats %+v)", st.Misses, st)
	}
	if st.Hits != 1 {
		t.Fatalf("the overlapping column must be shared: hits = %d, want 1", st.Hits)
	}
	if want := sizes["fof_halo_tag"] + sizes["fof_halo_mass"] + sizes["fof_halo_count"]; st.BytesDecoded != want {
		t.Fatalf("bytes decoded = %d, want %d (one block per distinct column)", st.BytesDecoded, want)
	}
	if st.Entries != 3 || st.Files != 1 {
		t.Fatalf("residency = %d entries / %d files, want 3 / 1", st.Entries, st.Files)
	}
}

// TestPartialHitDecodesOnlyMissing: a request overlapping a resident set
// must decode only its absent columns, and report only those bytes read.
func TestPartialHitDecodesOnlyMissing(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 64, 7)
	sizes := blockSizes(t, path)
	c := New(1<<30, 2)

	if _, n, err := c.Columns(path, "fof_halo_tag", "fof_halo_mass"); err != nil || n == 0 {
		t.Fatalf("seed decode: %v (%d bytes)", err, n)
	}
	f, n, err := c.Columns(path, "fof_halo_mass", "fof_halo_count")
	if err != nil {
		t.Fatal(err)
	}
	if want := sizes["fof_halo_count"]; n != want {
		t.Fatalf("partial hit read %d bytes, want only the absent column's %d", n, want)
	}
	if f.Names()[0] != "fof_halo_mass" || f.NumCols() != 2 {
		t.Fatalf("frame = %v", f.Names())
	}
	st := c.Stats()
	if st.PartialHits != 1 {
		t.Fatalf("partial hits = %d, want 1", st.PartialHits)
	}
	if st.Opens != 2 || st.Misses != 3 || st.Hits != 1 {
		t.Fatalf("opens/misses/hits = %d/%d/%d, want 2/3/1", st.Opens, st.Misses, st.Hits)
	}
	// A fully resident request opens nothing and reports zero bytes.
	if _, n, err := c.Columns(path, "fof_halo_tag", "fof_halo_count"); err != nil || n != 0 {
		t.Fatalf("resident request: %v (%d bytes)", err, n)
	}
	if got := c.Stats().Opens; got != 2 {
		t.Fatalf("resident request must not open: opens = %d", got)
	}
}

// TestColumnOrderAndDuplicates: request order and duplicates must not
// split entries, and the returned frame follows the requested order with
// an independent shell per call.
func TestColumnOrderAndDuplicates(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 16, 7)
	c := New(1<<30, 2)

	f1, n1, err := c.Columns(path, "fof_halo_mass", "fof_halo_tag")
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 {
		t.Fatal("first read must report bytes read")
	}
	f2, n2, err := c.Columns(path, "fof_halo_tag", "fof_halo_mass", "fof_halo_tag")
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Fatalf("cache hit must report 0 bytes read, got %d", n2)
	}
	if got := c.Stats().Opens; got != 1 {
		t.Fatalf("opens = %d, want 1 (same columns, different order)", got)
	}
	if f1.Names()[0] != "fof_halo_mass" || f2.Names()[0] != "fof_halo_tag" {
		t.Fatalf("column order must follow the request: %v / %v", f1.Names(), f2.Names())
	}
	// Shells are independent: adding a column to one must not leak.
	if err := f2.AddColumn(dataframe.NewInt("sim", make([]int64, 16))); err != nil {
		t.Fatal(err)
	}
	if f1.Has("sim") {
		t.Fatal("frame shells must be independent per call")
	}
	// Cached vectors are marked shared, so downstream growth is COW.
	if !f1.MustColumn("fof_halo_tag").IsShared() {
		t.Fatal("cached columns must be marked shared")
	}
}

// TestLRUEvictionAtBudget inserts three single-column blocks under a
// budget sized for two and checks the least-recently-used one is evicted.
func TestLRUEvictionAtBudget(t *testing.T) {
	dir := t.TempDir()
	a := writeSnapshot(t, dir, "a.gio", 64, 0)
	b := writeSnapshot(t, dir, "b.gio", 64, 1)
	d := writeSnapshot(t, dir, "c.gio", 64, 2)
	blockBytes := blockSizes(t, a)["fof_halo_tag"]

	c := New(2*blockBytes, 2)
	for _, p := range []string{a, b} {
		if _, _, err := c.Columns(p, "fof_halo_tag"); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b is LRU, then insert the third block.
	if _, _, err := c.Columns(a, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Columns(d, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.EvictedBytes != blockBytes {
		t.Fatalf("evictions = %d (%d bytes), want 1 (%d bytes)", st.Evictions, st.EvictedBytes, blockBytes)
	}
	if st.UsedBytes > 2*blockBytes {
		t.Fatalf("used %d exceeds budget %d", st.UsedBytes, 2*blockBytes)
	}
	// a stayed resident (hit), b was evicted (re-decodes).
	before := c.Stats().Opens
	if _, _, err := c.Columns(a, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Opens; got != before {
		t.Fatal("recently-used block must stay resident")
	}
	if _, _, err := c.Columns(b, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Opens; got != before+1 {
		t.Fatal("evicted block must re-decode")
	}
}

// TestPerColumnEviction: eviction displaces individual columns, not whole
// files — a file's cold column can leave while its hot sibling stays.
func TestPerColumnEviction(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 64, 0)
	sizes := blockSizes(t, path)
	tagBytes := sizes["fof_halo_tag"]

	// Budget fits exactly two blocks of this file.
	c := New(2*tagBytes, 2)
	if _, _, err := c.Columns(path, "fof_halo_tag", "fof_halo_mass"); err != nil {
		t.Fatal(err)
	}
	// Touch tag so mass is LRU, then pull in count: mass must go, tag stay.
	if _, _, err := c.Columns(path, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Columns(path, "fof_halo_count"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Files != 1 {
		t.Fatalf("per-column eviction: %+v", st)
	}
	before := st.Opens
	if _, n, err := c.Columns(path, "fof_halo_tag", "fof_halo_count"); err != nil || n != 0 {
		t.Fatalf("surviving columns must both be resident: %v (%d bytes)", err, n)
	}
	if c.Stats().Opens != before {
		t.Fatal("surviving columns re-opened the file")
	}
	if _, n, err := c.Columns(path, "fof_halo_mass"); err != nil || n != sizes["fof_halo_mass"] {
		t.Fatalf("evicted column must re-decode alone: %v (%d bytes)", err, n)
	}
}

// TestOversizedEntryBypassesCache: a column bigger than the whole budget
// must not flush resident blocks on its way through.
func TestOversizedEntryBypassesCache(t *testing.T) {
	dir := t.TempDir()
	small := writeSnapshot(t, dir, "small.gio", 8, 0)
	big := writeSnapshot(t, dir, "big.gio", 4096, 1)
	smallBytes := blockSizes(t, small)["fof_halo_tag"]

	c := New(smallBytes+16, 2) // fits the small block, not the big one
	if _, _, err := c.Columns(small, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	f, _, err := c.Columns(big, "fof_halo_tag", "fof_halo_mass")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 4096 {
		t.Fatalf("oversized load must still be served: %d rows", f.NumRows())
	}
	st := c.Stats()
	if st.Entries != 1 || st.UsedBytes != smallBytes {
		t.Fatalf("oversized blocks must not disturb residents: %+v", st)
	}
	// The small block is still a hit.
	before := st.Opens
	if _, _, err := c.Columns(small, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Opens != before {
		t.Fatal("resident block was flushed by an oversized insert")
	}
}

// TestInvalidationOnFileChange rewrites a cached file and checks every
// stale column block is dropped and fresh data is served.
func TestInvalidationOnFileChange(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 8, 100)
	c := New(1<<30, 2)
	// Immediate cross-generation visibility: disable the stat memo, which
	// otherwise bounds (not breaks) invalidation latency by its TTL.
	c.SetStatTTL(0)

	f, _, err := c.Columns(path, "fof_halo_tag", "fof_halo_mass")
	if err != nil {
		t.Fatal(err)
	}
	if f.MustColumn("fof_halo_tag").I[0] != 100 {
		t.Fatal("unexpected seed data")
	}

	// Regenerate with different content; force a distinct mtime in case the
	// filesystem's timestamp granularity is coarse.
	writeSnapshot(t, dir, "s.gio", 8, 500)
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}

	f2, n, err := c.Columns(path, "fof_halo_tag", "fof_halo_mass")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("changed file must re-decode, not hit")
	}
	if f2.MustColumn("fof_halo_tag").I[0] != 500 {
		t.Fatalf("stale data served: %d", f2.MustColumn("fof_halo_tag").I[0])
	}
	st := c.Stats()
	// Both of the file's resident columns were stamped by the old
	// generation, so both invalidate.
	if st.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2 (one per stale column)", st.Invalidations)
	}
	// Same-size rewrite invalidates too (mtime alone distinguishes).
	if st.Opens != 2 {
		t.Fatalf("opens = %d, want 2", st.Opens)
	}
}

// TestStatMemoSavesSyscalls: repeated lookups within the TTL serve their
// freshness check from the memo.
func TestStatMemoSavesSyscalls(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 8, 0)
	c := New(1<<30, 2)
	c.SetStatTTL(time.Hour) // never expires within the test

	if _, _, err := c.Columns(path, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := c.Columns(path, "fof_halo_tag"); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.StatSaves < 10 {
		t.Fatalf("stat saves = %d, want >= 10 (hot lookups must skip the syscall)", st.StatSaves)
	}
	// Disabling the memo clears it: the next lookup stats for real.
	c.SetStatTTL(0)
	before := c.Stats().StatSaves
	if _, _, err := c.Columns(path, "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	if c.Stats().StatSaves != before {
		t.Fatal("disabled memo must not serve stat checks")
	}
}

// TestSetBudgetEvicts shrinks the budget below residency and checks
// immediate eviction.
func TestSetBudgetEvicts(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 64, 0)
	c := New(1<<30, 2)
	if _, _, err := c.Columns(path, "fof_halo_tag", "fof_halo_mass"); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Entries != 2 {
		t.Fatal("blocks not resident")
	}
	c.SetBudget(0)
	st := c.Stats()
	if st.Entries != 0 || st.UsedBytes != 0 || st.Evictions != 2 || st.Files != 0 {
		t.Fatalf("shrinking budget must evict every block: %+v", st)
	}
}

// TestErrorPropagation: missing columns and missing files fail without
// caching the failure, and without poisoning valid sibling columns.
func TestErrorPropagation(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 8, 0)
	c := New(1<<30, 2)
	if _, _, err := c.Columns(path, "no_such_column"); err == nil {
		t.Fatal("want column error")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed decodes must not cache: %+v", st)
	}
	if _, _, err := c.Columns(filepath.Join(dir, "missing.gio"), "a"); err == nil {
		t.Fatal("want stat error")
	}
	// A mixed request fails as a whole, but its valid columns decode,
	// cache, and serve later requests — errors attribute per column.
	if _, _, err := c.Columns(path, "fof_halo_tag", "no_such_column"); err == nil {
		t.Fatal("want column error on mixed request")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("the valid sibling column must cache: %+v", st)
	}
	before := c.Stats().Opens
	if _, n, err := c.Columns(path, "fof_halo_tag"); err != nil || n != 0 {
		t.Fatalf("valid sibling must be resident after a mixed failure: %v (%d bytes)", err, n)
	}
	if c.Stats().Opens != before {
		t.Fatal("valid sibling re-decoded after a mixed failure")
	}
}

// TestBadColumnDoesNotPoisonConcurrentRequest: a request including a
// nonexistent column must not fail a concurrent single-flight follower
// that only wants the valid overlap.
func TestBadColumnDoesNotPoisonConcurrentRequest(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 64, 0)
	for round := 0; round < 20; round++ {
		c := New(1<<30, 4)
		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			// Mixed request: must fail, but only because of its own column.
			if _, _, err := c.Columns(path, "fof_halo_tag", "no_such_column"); err == nil {
				t.Error("mixed request must fail")
			}
		}()
		var validErr error
		go func() {
			defer wg.Done()
			<-start
			_, _, validErr = c.Columns(path, "fof_halo_tag")
		}()
		close(start)
		wg.Wait()
		if validErr != nil {
			t.Fatalf("round %d: valid request poisoned by sibling's bad column: %v", round, validErr)
		}
	}
}

// TestConcurrentChurn hammers one cache with overlapping loads, column-set
// variations and budget changes under -race.
func TestConcurrentChurn(t *testing.T) {
	dir := t.TempDir()
	const nfiles = 4
	paths := make([]string, nfiles)
	for i := range paths {
		paths[i] = writeSnapshot(t, dir, fmt.Sprintf("s%d.gio", i), 32, int64(i))
	}
	c := New(1<<20, 4)
	colsets := [][]string{
		{"fof_halo_tag"},
		{"fof_halo_tag", "fof_halo_mass"},
		{"fof_halo_mass", "fof_halo_count", "fof_halo_tag"},
	}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				p := paths[(g+i)%nfiles]
				cs := colsets[(g+i)%len(colsets)]
				f, _, err := c.Columns(p, cs...)
				if err != nil {
					t.Error(err)
					return
				}
				if f.NumRows() != 32 {
					t.Errorf("rows = %d", f.NumRows())
					return
				}
				if g == 0 && i%10 == 0 {
					c.SetBudget(int64(1<<20) + int64(i))
				}
			}
		}(g)
	}
	wg.Wait()
}
