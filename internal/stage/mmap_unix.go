//go:build unix

package stage

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can map block files for the
// cast promotion path.
const mmapSupported = true

// mmapFile maps the first size bytes of f read-only and shared. The
// mapping is deliberately never unmapped (see diskTier): promoted column
// vectors alias it with unbounded lifetime, and a read-only file-backed
// mapping consumes address space, not resident memory, until its pages
// are actually touched.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return []byte{}, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}
