//go:build linux

package stage

import (
	"encoding/binary"
	"errors"
	"io"
	"os"
	"sync"
	"syscall"
)

// inotifyWatcher is the Linux watcher: one inotify instance, one reader
// goroutine. The inotify fd is wrapped in an *os.File with O_NONBLOCK so
// reads park on the runtime poller (goroutine-cheap) and Close unblocks
// the reader — the stdlib-only equivalent of what fsnotify does.
type inotifyWatcher struct {
	f       *os.File
	onEvent func(path string)

	mu    sync.Mutex
	byWD  map[int32]string
	byPat map[string]int32
}

const inotifyMask = syscall.IN_MODIFY | syscall.IN_ATTRIB | syscall.IN_CLOSE_WRITE |
	syscall.IN_MOVE_SELF | syscall.IN_DELETE_SELF

func newWatcher(onEvent func(path string)) (watcher, error) {
	fd, err := syscall.InotifyInit1(syscall.IN_CLOEXEC | syscall.IN_NONBLOCK)
	if err != nil {
		return nil, err
	}
	w := &inotifyWatcher{
		f:       os.NewFile(uintptr(fd), "inotify"),
		onEvent: onEvent,
		byWD:    map[int32]string{},
		byPat:   map[string]int32{},
	}
	go w.loop()
	return w, nil
}

func (w *inotifyWatcher) add(path string) error {
	wd, err := syscall.InotifyAddWatch(int(w.f.Fd()), path, inotifyMask)
	if err != nil {
		return err
	}
	w.mu.Lock()
	// Re-adding a watched path returns its existing wd; a re-created file
	// gets a fresh one — drop any stale reverse mapping either way.
	if old, ok := w.byPat[path]; ok && old != int32(wd) {
		delete(w.byWD, old)
	}
	w.byWD[int32(wd)] = path
	w.byPat[path] = int32(wd)
	w.mu.Unlock()
	return nil
}

func (w *inotifyWatcher) close() error {
	// Closing the file both releases every watch and unblocks the reader.
	return w.f.Close()
}

// loop parses the inotify event stream and fires the callback per event.
// Event records are variable length: a fixed syscall.InotifyEvent header
// (wd, mask, cookie, len) followed by len bytes of name — always empty
// here, since only files (not directories) are watched.
func (w *inotifyWatcher) loop() {
	const evHdr = syscall.SizeofInotifyEvent
	buf := make([]byte, 64*(evHdr+syscall.NAME_MAX+1))
	for {
		n, err := w.f.Read(buf)
		if err != nil {
			if errors.Is(err, os.ErrClosed) || errors.Is(err, io.EOF) {
				return
			}
			if errors.Is(err, syscall.EINTR) {
				continue
			}
			return
		}
		for off := 0; off+evHdr <= n; {
			wd := int32(binary.LittleEndian.Uint32(buf[off:]))
			mask := binary.LittleEndian.Uint32(buf[off+4:])
			nameLen := int(binary.LittleEndian.Uint32(buf[off+12:]))
			w.mu.Lock()
			path, ok := w.byWD[wd]
			if ok && mask&syscall.IN_IGNORED != 0 {
				// Kernel dropped the watch (file deleted / fs unmounted);
				// the next pin re-arms it.
				delete(w.byWD, wd)
				if w.byPat[path] == wd {
					delete(w.byPat, path)
				}
			}
			w.mu.Unlock()
			if ok && mask&inotifyMask != 0 {
				w.onEvent(path)
			}
			off += evHdr + nameLen
		}
	}
}
