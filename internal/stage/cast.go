package stage

import (
	"fmt"
	"unsafe"

	"infera/internal/dataframe"
)

// hostLittleEndian gates the mmap-cast promotion path: the gio block
// encoding is 8-byte little-endian, so only on a little-endian host is an
// encoded numeric payload bit-identical to the in-memory vector.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// castColumn views an 8-aligned little-endian numeric payload as a column
// vector without copying or decoding — the zero-cost half of promotion.
// The payload must stay immutable and mapped for the process lifetime
// (the disk tier never unmaps), which is exactly the contract shared
// cache vectors already carry via MarkShared.
func castColumn(name string, kind dataframe.Kind, payload []byte, rows int) (*dataframe.Column, error) {
	if len(payload) != 8*rows {
		return nil, fmt.Errorf("stage: %s block size %d != 8*%d", kind, len(payload), rows)
	}
	if uintptr(unsafe.Pointer(unsafe.SliceData(payload)))%8 != 0 {
		return nil, fmt.Errorf("stage: block payload misaligned")
	}
	if rows == 0 {
		switch kind {
		case dataframe.Float:
			return dataframe.NewFloat(name, nil), nil
		case dataframe.Int:
			return dataframe.NewInt(name, nil), nil
		}
	}
	switch kind {
	case dataframe.Float:
		return dataframe.NewFloat(name, unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(payload))), rows)), nil
	case dataframe.Int:
		return dataframe.NewInt(name, unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(payload))), rows)), nil
	default:
		return nil, fmt.Errorf("stage: kind %s not castable", kind)
	}
}
