package stage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"infera/internal/dataframe"
	"infera/internal/gio"
)

// dataframeWithStrings builds a frame with a string column alongside an
// int column, to exercise the non-castable promotion path.
func dataframeWithStrings(rows int) *dataframe.Frame {
	names := make([]string, rows)
	ints := make([]int64, rows)
	for i := range names {
		names[i] = fmt.Sprintf("obj-%04d", i)
		ints[i] = int64(i)
	}
	return dataframe.MustFromColumns(
		dataframe.NewString("name", names),
		dataframe.NewInt("fof_halo_tag", ints),
	)
}

// newTiered builds an isolated cache with a disk tier over its own
// directory; the caller owns Close.
func newTiered(t *testing.T, memBudget int64, dir string) *Cache {
	t.Helper()
	c := New(memBudget, 4)
	if err := c.SetDiskTier(dir, 0); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestColdRestartRevival is the tentpole property: a fresh cache (a
// restarted process) over a populated stage dir serves a staging pass
// entirely from the disk tier — zero gio opens, zero bytes decoded.
func TestColdRestartRevival(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 256, 7)
	stageDir := filepath.Join(dir, "stage")

	c1 := newTiered(t, 1<<30, stageDir)
	want, _, err := c1.Columns(path, "fof_halo_tag", "fof_halo_mass")
	if err != nil {
		t.Fatal(err)
	}
	c1.WaitPending() // drain write-through persists
	if st := c1.Stats(); st.DiskWrites < 2 {
		t.Fatalf("write-through should have persisted both blocks: disk_writes = %d", st.DiskWrites)
	}
	c1.Close()

	// "Restart": a brand-new cache over the same stage dir.
	c2 := newTiered(t, 1<<30, stageDir)
	defer c2.Close()
	got, bytesRead, err := c2.Columns(path, "fof_halo_tag", "fof_halo_mass")
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.Opens != 0 {
		t.Fatalf("warm restart must not open the source file: opens = %d", st.Opens)
	}
	if st.BytesDecoded != 0 {
		t.Fatalf("warm restart must not decode: bytes_decoded = %d", st.BytesDecoded)
	}
	if st.DiskHits != 2 {
		t.Fatalf("disk_hits = %d, want 2", st.DiskHits)
	}
	if bytesRead != 0 {
		t.Fatalf("promoted bytes must not count as source I/O: bytesRead = %d", bytesRead)
	}
	if st.PromotedBytes == 0 {
		t.Fatal("promoted_bytes should be nonzero")
	}
	for _, col := range []string{"fof_halo_tag", "fof_halo_mass"} {
		w, _ := want.Column(col)
		g, _ := got.Column(col)
		for i := 0; i < 256; i++ {
			if w.Value(i) != g.Value(i) {
				t.Fatalf("column %s row %d: got %v want %v", col, i, g.Value(i), w.Value(i))
			}
		}
	}
}

// TestPromotionFailureFallsThrough truncates a resident block file and
// proves the next promotion evicts exactly that entry and falls through
// to the gio decoder — per-column attribution, the staging pass succeeds.
func TestPromotionFailureFallsThrough(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 128, 3)
	stageDir := filepath.Join(dir, "stage")

	c := newTiered(t, 1<<30, stageDir)
	defer c.Close()
	if _, _, err := c.Columns(path, "fof_halo_tag", "fof_halo_mass"); err != nil {
		t.Fatal(err)
	}
	c.WaitPending()

	// Push both blocks out of memory so the next pass must promote.
	c.SetBudget(1)
	c.SetBudget(1 << 30)

	// Truncate the tag block's store file mid-payload.
	blk := filepath.Join(stageDir, blkFileName(key{path: path, col: "fof_halo_tag"}))
	fi, err := os.Stat(blk)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(blk, fi.Size()-64); err != nil {
		t.Fatal(err)
	}

	f, _, err := c.Columns(path, "fof_halo_tag", "fof_halo_mass")
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DiskPromoteFailures != 1 {
		t.Fatalf("disk_promote_failures = %d, want 1", st.DiskPromoteFailures)
	}
	if st.DiskHits != 1 {
		t.Fatalf("the intact sibling must still promote: disk_hits = %d, want 1", st.DiskHits)
	}
	if st.Opens != 2 { // initial decode + the fall-through re-decode
		t.Fatalf("opens = %d, want 2", st.Opens)
	}
	tag, _ := f.Column("fof_halo_tag")
	if tag.Value(0) != int64(3) || tag.Value(127) != int64(130) {
		t.Fatalf("fallen-through column has wrong data: %v, %v", tag.Value(0), tag.Value(127))
	}
	if _, err := os.Stat(blk); !os.IsNotExist(err) {
		t.Fatalf("bad block file should have been evicted, stat err = %v", err)
	}

	// A fresh cache over the same dir must also survive: the startup scan
	// skips unreadable blocks, so the column simply decodes from source.
	blk2 := filepath.Join(stageDir, blkFileName(key{path: path, col: "fof_halo_mass"}))
	if err := os.Truncate(blk2, 32); err != nil {
		t.Fatal(err)
	}
	c2 := newTiered(t, 1<<30, stageDir)
	defer c2.Close()
	if _, _, err := c2.Columns(path, "fof_halo_mass"); err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Misses != 1 {
		t.Fatalf("truncated block must decode from source after restart: misses = %d", st.Misses)
	}
}

// TestConcurrentDemotePromote hammers a tiered cache whose memory budget
// holds about one file's worth of blocks, so concurrent sessions force a
// continuous demote/promote churn. Run under -race; the assertions are a
// sanity floor, the race detector is the real check.
func TestConcurrentDemotePromote(t *testing.T) {
	dir := t.TempDir()
	const nfiles = 4
	paths := make([]string, nfiles)
	for i := range paths {
		paths[i] = writeSnapshot(t, dir, fmt.Sprintf("s%d.gio", i), 512, int64(i*1000))
	}
	sizes := blockSizes(t, paths[0])
	memBudget := sizes["fof_halo_tag"] + sizes["fof_halo_mass"] + 1
	c := newTiered(t, memBudget, filepath.Join(dir, "stage"))
	defer c.Close()

	// Prime the disk tier so the churn phase promotes rather than decodes.
	for _, p := range paths {
		if _, _, err := c.Columns(p, "fof_halo_tag", "fof_halo_mass", "fof_halo_count"); err != nil {
			t.Fatal(err)
		}
	}
	c.WaitPending()

	subsets := [][]string{
		{"fof_halo_tag", "fof_halo_mass"},
		{"fof_halo_mass", "fof_halo_count"},
		{"fof_halo_count", "fof_halo_tag"},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				p := paths[(g+i)%nfiles]
				cols := subsets[(g*7+i)%len(subsets)]
				f, _, err := c.Columns(p, cols...)
				if err != nil {
					errs <- err
					return
				}
				if f.NumRows() != 512 {
					errs <- fmt.Errorf("bad rows %d", f.NumRows())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Demotions == 0 {
		t.Fatal("eviction pressure should have demoted blocks")
	}
	if st.DiskHits == 0 {
		t.Fatal("memory misses should have promoted from disk")
	}
}

// waitForStats polls the cache until cond holds or the deadline passes.
func waitForStats(t *testing.T, c *Cache, what string, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(c.Stats()) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s; stats = %+v", what, c.Stats())
}

// TestWatchExactInvalidation proves the watch replaces stat-TTL
// freshness: a steady-state hot path performs zero stat syscalls, and a
// file rewrite invalidates exactly the touched file's entries in both
// tiers while an untouched sibling file keeps serving stat-free.
func TestWatchExactInvalidation(t *testing.T) {
	dir := t.TempDir()
	hot := writeSnapshot(t, dir, "hot.gio", 64, 10)
	cold := writeSnapshot(t, dir, "cold.gio", 64, 20)
	stageDir := filepath.Join(dir, "stage")

	c := newTiered(t, 1<<30, stageDir)
	defer c.Close()
	if err := c.SetWatch(true); err != nil {
		t.Fatalf("SetWatch: %v", err)
	}
	for _, p := range []string{hot, cold} {
		if _, _, err := c.Columns(p, "fof_halo_tag", "fof_halo_mass"); err != nil {
			t.Fatal(err)
		}
	}
	c.WaitPending()
	calls0 := c.Stats().StatCalls

	// Steady state: repeated staging passes must not stat at all.
	for i := 0; i < 10; i++ {
		for _, p := range []string{hot, cold} {
			if _, _, err := c.Columns(p, "fof_halo_tag", "fof_halo_mass"); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := c.Stats()
	if st.StatCalls != calls0 {
		t.Fatalf("steady-state hot path must do zero stat syscalls: stat_calls %d -> %d", calls0, st.StatCalls)
	}
	if st.StatSaves < 20 {
		t.Fatalf("stat_saves = %d, want >= 20", st.StatSaves)
	}

	// Rewrite the hot file; coarse-mtime filesystems need the nudge.
	writeSnapshot(t, dir, "hot.gio", 64, 99)
	if fi, err := os.Stat(hot); err == nil {
		os.Chtimes(hot, fi.ModTime().Add(2*time.Second), fi.ModTime().Add(2*time.Second))
	}
	waitForStats(t, c, "watch event", func(s Stats) bool { return s.WatchEvents > 0 })
	waitForStats(t, c, "memory invalidation", func(s Stats) bool { return s.Invalidations >= 2 })

	invalidatedDisk := c.Stats().DiskInvalidations
	if invalidatedDisk < 2 {
		t.Fatalf("disk tier should have dropped the rewritten file's blocks: disk_invalidations = %d", invalidatedDisk)
	}

	// The touched file re-decodes with fresh data...
	f, _, err := c.Columns(hot, "fof_halo_tag")
	if err != nil {
		t.Fatal(err)
	}
	tag, _ := f.Column("fof_halo_tag")
	if tag.Value(0) != int64(99) {
		t.Fatalf("stale data after invalidation: %v", tag.Value(0))
	}
	// ...while the untouched file's entries survived both tiers.
	before := c.Stats()
	if _, _, err := c.Columns(cold, "fof_halo_tag", "fof_halo_mass"); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Opens != before.Opens || after.DiskHits != before.DiskHits {
		t.Fatalf("untouched file must stay resident: opens %d->%d disk_hits %d->%d",
			before.Opens, after.Opens, before.DiskHits, after.DiskHits)
	}
}

// TestWatchInvalidationRacingDecode rewrites a file repeatedly while
// concurrent sessions stage it. Mid-rewrite reads may error (torn file on
// disk); the properties under test are that the race detector stays
// quiet and the cache converges to the final generation.
func TestWatchInvalidationRacingDecode(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 64, 0)
	c := newTiered(t, 1<<30, filepath.Join(dir, "stage"))
	defer c.Close()
	if err := c.SetWatch(true); err != nil {
		t.Fatalf("SetWatch: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are acceptable while the writer tears the file.
				c.Columns(path, "fof_halo_tag", "fof_halo_mass")
			}
		}()
	}
	for i := 1; i <= 5; i++ {
		writeSnapshot(t, dir, "s.gio", 64, int64(i*100))
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if fi, err := os.Stat(path); err == nil {
		os.Chtimes(path, fi.ModTime().Add(2*time.Second), fi.ModTime().Add(2*time.Second))
	}
	waitForStats(t, c, "convergence", func(Stats) bool {
		f, _, err := c.Columns(path, "fof_halo_tag")
		if err != nil {
			return false
		}
		tag, _ := f.Column("fof_halo_tag")
		return tag.Value(0) == int64(500)
	})
}

// TestSiblingPrefetch requests a subset of a file's columns and proves
// the unrequested sibling lands in the disk tier in the background, so
// its later first request promotes instead of decoding.
func TestSiblingPrefetch(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 128, 5)
	c := newTiered(t, 1<<30, filepath.Join(dir, "stage"))
	defer c.Close()

	if _, _, err := c.Columns(path, "fof_halo_tag", "fof_halo_mass"); err != nil {
		t.Fatal(err)
	}
	c.WaitPending()
	st := c.Stats()
	if st.PrefetchIssued != 1 {
		t.Fatalf("prefetch_issued = %d, want 1 (fof_halo_count)", st.PrefetchIssued)
	}

	opens0, decoded0 := st.Opens, st.BytesDecoded
	f, _, err := c.Columns(path, "fof_halo_count")
	if err != nil {
		t.Fatal(err)
	}
	cnt, _ := f.Column("fof_halo_count")
	if cnt.Value(2) != float64(6) {
		t.Fatalf("prefetched column data wrong: %v", cnt.Value(2))
	}
	st = c.Stats()
	if st.Opens != opens0 || st.BytesDecoded != decoded0 {
		t.Fatalf("prefetched sibling must serve without source I/O: opens %d->%d bytes %d->%d",
			opens0, st.Opens, decoded0, st.BytesDecoded)
	}
	if st.PrefetchUsed != 1 {
		t.Fatalf("prefetch_used = %d, want 1", st.PrefetchUsed)
	}
}

// TestNeighborPrefetch registers a next-step hint and proves the hinted
// file's requested column set is pulled into the disk tier ahead of its
// first request.
func TestNeighborPrefetch(t *testing.T) {
	dir := t.TempDir()
	step1 := writeSnapshot(t, dir, "step1.gio", 128, 1)
	step2 := writeSnapshot(t, dir, "step2.gio", 128, 2)
	c := newTiered(t, 1<<30, filepath.Join(dir, "stage"))
	defer c.Close()
	c.RegisterNeighbors(dir, func(p string) []string {
		if p == step1 {
			return []string{step2}
		}
		return nil
	})

	if _, _, err := c.Columns(step1, "fof_halo_tag", "fof_halo_mass"); err != nil {
		t.Fatal(err)
	}
	c.WaitPending()
	st := c.Stats()
	// 1 sibling of step1 + 2 requested columns of step2.
	if st.PrefetchIssued != 3 {
		t.Fatalf("prefetch_issued = %d, want 3", st.PrefetchIssued)
	}

	opens0 := st.Opens
	f, _, err := c.Columns(step2, "fof_halo_tag", "fof_halo_mass")
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Opens != opens0 {
		t.Fatalf("hinted next-step file must stage without a gio open: opens %d->%d", opens0, c.Stats().Opens)
	}
	tag, _ := f.Column("fof_halo_tag")
	if tag.Value(0) != int64(2) {
		t.Fatalf("neighbor data wrong: %v", tag.Value(0))
	}
}

// TestDemotionKeepsBlocksPromotable shrinks the memory budget to zero,
// proving budget evictions count as demotions and the demoted blocks
// come back from disk without re-decoding.
func TestDemotionKeepsBlocksPromotable(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 256, 11)
	c := newTiered(t, 1<<30, filepath.Join(dir, "stage"))
	defer c.Close()

	if _, _, err := c.Columns(path, "fof_halo_tag", "fof_halo_mass"); err != nil {
		t.Fatal(err)
	}
	c.WaitPending()
	c.SetBudget(1) // evict everything
	st := c.Stats()
	if st.Demotions != 2 {
		t.Fatalf("demotions = %d, want 2", st.Demotions)
	}
	c.SetBudget(1 << 30)

	if _, _, err := c.Columns(path, "fof_halo_tag", "fof_halo_mass"); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.DiskHits != 2 {
		t.Fatalf("demoted blocks must promote back: disk_hits = %d", st.DiskHits)
	}
	if st.Opens != 1 {
		t.Fatalf("no re-decode expected: opens = %d", st.Opens)
	}
}

// TestDiskTierBudgetSweep proves the block store enforces its own byte
// budget with LRU eviction.
func TestDiskTierBudgetSweep(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "s.gio", 256, 0)
	sizes := blockSizes(t, path)
	budget := sizes["fof_halo_tag"] + sizes["fof_halo_mass"] + 1

	c := New(1<<30, 2)
	defer c.Close()
	if err := c.SetDiskTier(filepath.Join(dir, "stage"), budget); err != nil {
		t.Fatal(err)
	}
	c.SetPrefetch(false) // deterministic write set
	if _, _, err := c.Columns(path, "fof_halo_tag", "fof_halo_mass", "fof_halo_count"); err != nil {
		t.Fatal(err)
	}
	c.WaitPending()
	st := c.Stats()
	if st.DiskEvictions == 0 {
		t.Fatalf("three blocks into a two-block budget must evict: %+v", st)
	}
	if st.DiskUsedBytes > budget {
		t.Fatalf("disk_used_bytes %d over budget %d", st.DiskUsedBytes, budget)
	}
	if st.DiskEntries != 2 {
		t.Fatalf("disk_entries = %d, want 2", st.DiskEntries)
	}
}

// TestBlockStoreRoundTripString forces the copy-decode promotion path
// (string columns are not castable) end to end through a restart.
func TestBlockStoreRoundTripString(t *testing.T) {
	dir := t.TempDir()
	f := dataframeWithStrings(128)
	path := filepath.Join(dir, "s.gio")
	if err := gio.WriteFile(path, f, nil); err != nil {
		t.Fatal(err)
	}
	stageDir := filepath.Join(dir, "stage")
	c1 := newTiered(t, 1<<30, stageDir)
	if _, _, err := c1.Columns(path, "name", "fof_halo_tag"); err != nil {
		t.Fatal(err)
	}
	c1.WaitPending()
	c1.Close()

	c2 := newTiered(t, 1<<30, stageDir)
	defer c2.Close()
	got, _, err := c2.Columns(path, "name", "fof_halo_tag")
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.Opens != 0 || st.DiskHits != 2 {
		t.Fatalf("restart should promote both kinds: opens = %d, disk_hits = %d", st.Opens, st.DiskHits)
	}
	name, _ := got.Column("name")
	if name.Value(3) != "obj-0003" {
		t.Fatalf("string column corrupted: %v", name.Value(3))
	}
}
