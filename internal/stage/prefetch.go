// Prefetch: while a gio file is open for a demand decode, the access
// pattern has just told us two cheap-to-act-on facts — which file is hot
// (its unrequested sibling columns are likely next, per-column keying
// means they were NOT fetched) and which columns of it matter (the
// ensemble's next timestep file will be asked for the same set). Both
// are pulled into the DISK tier only, on a small bounded background
// pool: raw CRC-verified blocks via gio.ReadBlock, never decoded — the
// decode (or mmap cast) is deferred until the column is actually
// requested, so a wrong guess costs one background block read and some
// stage-dir bytes, not memory-budget residency. Accounting closes the
// loop: a prefetched block's first promotion counts prefetch_used; one
// evicted or invalidated untouched counts prefetch_wasted.
//
// Next-step neighbor hints come from whoever understands file layout —
// the catalog owner (internal/core) registers a path→successors map at
// startup (RegisterNeighbors); the cache itself stays layout-agnostic.
package stage

import (
	"os"
	"strings"

	"infera/internal/gio"
)

// SetPrefetch enables or disables sibling/next-step prefetching into the
// disk tier. On by default once a disk tier is attached; a no-op without
// one (there is nowhere to prefetch into).
func (c *Cache) SetPrefetch(on bool) {
	c.mu.Lock()
	c.prefetchOn = on
	c.mu.Unlock()
}

// RegisterNeighbors installs a next-file hint for paths under root: fn
// maps a staged file to the files likely staged next (e.g. the same
// run/type at the following timestep). Re-registering a root replaces
// its hint, so catalog reloads stay idempotent. fn must be safe for
// concurrent use and is called off the hot path.
func (c *Cache) RegisterNeighbors(root string, fn func(path string) []string) {
	c.mu.Lock()
	if c.neighborHints == nil {
		c.neighborHints = map[string]func(string) []string{}
	}
	c.neighborHints[root] = fn
	c.mu.Unlock()
}

// neighborsOf resolves the hint for path (longest registered root prefix
// wins) and returns its successor paths.
func (c *Cache) neighborsOf(path string) []string {
	c.mu.Lock()
	var best string
	var fn func(string) []string
	for root, f := range c.neighborHints {
		if strings.HasPrefix(path, root) && len(root) >= len(best) {
			best, fn = root, f
		}
	}
	c.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(path)
}

// maybePrefetch schedules one background prefetch pass for a file a
// demand decode just opened. Non-blocking: if the pool's queue is full
// or a pass for this path is already in flight, the opportunity is
// simply dropped.
func (c *Cache) maybePrefetch(path string, requested []string, st stamp) {
	c.mu.Lock()
	dt := c.disk
	if dt == nil || !c.prefetchOn || c.prefetchBusy[path] {
		c.mu.Unlock()
		return
	}
	if c.prefetchBusy == nil {
		c.prefetchBusy = map[string]bool{}
	}
	c.prefetchBusy[path] = true
	c.mu.Unlock()
	cols := append([]string(nil), requested...)
	ok := c.enqueueBG(func() {
		defer func() {
			c.mu.Lock()
			delete(c.prefetchBusy, path)
			c.mu.Unlock()
		}()
		c.prefetchPass(dt, path, cols, st)
	})
	if !ok {
		c.mu.Lock()
		delete(c.prefetchBusy, path)
		c.mu.Unlock()
	}
}

// prefetchPass pulls path's sibling columns, then the requested column
// set of each hinted next file, into the disk tier as raw blocks.
func (c *Cache) prefetchPass(dt *diskTier, path string, requested []string, st stamp) {
	reqSet := map[string]bool{}
	for _, n := range requested {
		reqSet[n] = true
	}
	c.prefetchBlocks(dt, path, st, func(name string) bool { return !reqSet[name] })
	for _, np := range c.neighborsOf(path) {
		if np == path {
			continue
		}
		fi, err := os.Stat(np)
		if err != nil {
			continue
		}
		nst := stamp{mtime: fi.ModTime().UnixNano(), size: fi.Size()}
		c.prefetchBlocks(dt, np, nst, func(name string) bool { return reqSet[name] })
	}
}

// prefetchBlocks copies the block of every column of path selected by
// want into the disk tier, skipping blocks already resident for this
// file generation. The stamp is re-validated against the live file so a
// rewrite between scheduling and execution aborts instead of storing a
// mixed-generation block.
func (c *Cache) prefetchBlocks(dt *diskTier, path string, st stamp, want func(name string) bool) {
	fi, err := os.Stat(path)
	if err != nil || (stamp{mtime: fi.ModTime().UnixNano(), size: fi.Size()}) != st {
		return
	}
	r, err := gio.Open(path)
	if err != nil {
		return
	}
	defer r.Close()
	for _, name := range r.ColumnNames() {
		if !want(name) || dt.has(key{path: path, col: name}, st) {
			continue
		}
		info, blk, err := r.ReadBlock(name)
		if err != nil {
			continue
		}
		dt.put(key{path: path, col: name}, st, info.Kind, r.NumRows(), blk, true)
	}
}
