//go:build !unix

package stage

import (
	"fmt"
	"os"
)

// mmapSupported reports whether this platform can map block files for the
// cast promotion path; without it every promotion takes the copy-decode
// fallback, which is still far cheaper than re-staging from the source
// gio file.
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, fmt.Errorf("stage: mmap unsupported on this platform")
}
