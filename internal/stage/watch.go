// Filesystem watch: the replacement for stat-TTL freshness. With a watch
// active the cache pins each file's (mtime, size) stamp the first time it
// is statted and serves every later freshness check from the pin — zero
// syscalls on the hot path — until the watcher reports the file changed,
// which unpins it and invalidates exactly the touched file's entries in
// both tiers. Invalidation becomes exact (event-driven) instead of
// bounded-staleness (TTL), and stat_saves goes to ~100% at steady state.
//
// Two implementations sit behind one interface: inotify on Linux
// (watch_linux.go, stdlib syscall only — no fsnotify dependency) and a
// coarse stat-poll loop everywhere else (watch_other.go). The poll
// fallback keeps the same exact-invalidation semantics with a
// pollInterval detection latency; hot-path stat elision is identical.
package stage

// watcher is the platform-neutral file-watch interface. add registers one
// file (idempotent; re-adding after a rename/delete re-arms it); events
// are delivered to the constructor's callback from a dedicated goroutine.
type watcher interface {
	add(path string) error
	close() error
}
