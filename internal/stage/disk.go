// Disk tier: a persistent block store under the in-memory LRU.
//
// Each resident entry is one decoded column block written back out in the
// gio block encoding (gio.EncodeBlock — byte-identical to the source
// file's block), one file per (source path, column) under the tier's
// directory. The store has its own byte budget and LRU sweep, so the
// memory budget stops being the residency ceiling: in-memory eviction
// demotes instead of discards, a memory miss promotes from disk without
// touching the gio decoder, and hot columns survive restarts — a fresh
// process over a populated stage dir rebuilds its index from block-file
// headers alone.
//
// Promotion is where the tier earns its latency budget. Float and Int
// payloads are stored 8-byte little-endian — the same bit layout as the
// in-memory vectors on little-endian hosts — so promotion mmaps the block
// file and casts the (8-aligned) payload into the column vector directly:
// no read, no per-element decode, pages fault in lazily as the column is
// actually scanned. String columns (variable-width) and non-little-endian
// hosts take a copy-decode fallback through gio.DecodeBlock. Mappings are
// never unmapped: promoted vectors alias the pages from frames, SQL
// segments and answer caches with unbounded lifetime, and a read-only
// file-backed mapping costs address space, not resident memory. Truncated
// or corrupt block files are detected by header validation and size
// bounds checks before any cast; a failed promotion evicts exactly that
// block file and falls through to the real decoder (per-column error
// attribution, as in the memory tier).
package stage

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"infera/internal/dataframe"
	"infera/internal/gio"
	"infera/internal/telemetry"
)

// DefaultDiskBudgetBytes is the disk tier's block-store budget when a
// stage dir is attached without an explicit budget.
const DefaultDiskBudgetBytes = 1 << 30

// blkMagic identifies a stage block-store file; the trailing byte versions
// the layout.
var blkMagic = [8]byte{'I', 'S', 'T', 'B', '\n', 0, 0, 1}

// blkHeaderSize is the fixed header prefix of every block file. The
// variable-length source path and column name follow it; the payload
// starts at the 8-aligned offset recorded in the header (alignment is
// what makes the mmap-cast promotion path legal).
const blkHeaderSize = 64

var blkCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// blkHeader is the decoded fixed header of one block file.
type blkHeader struct {
	kind       dataframe.Kind
	rows       int64
	srcMtimeNS int64
	srcSize    int64
	payloadLen int64
	payloadOff int64
	crc        uint32
	pathLen    int
	colLen     int
}

func encodeBlkHeader(h blkHeader) []byte {
	b := make([]byte, blkHeaderSize)
	copy(b, blkMagic[:])
	binary.LittleEndian.PutUint32(b[8:], uint32(h.kind))
	binary.LittleEndian.PutUint32(b[12:], uint32(h.pathLen))
	binary.LittleEndian.PutUint32(b[16:], uint32(h.colLen))
	binary.LittleEndian.PutUint32(b[20:], h.crc)
	binary.LittleEndian.PutUint64(b[24:], uint64(h.rows))
	binary.LittleEndian.PutUint64(b[32:], uint64(h.srcMtimeNS))
	binary.LittleEndian.PutUint64(b[40:], uint64(h.srcSize))
	binary.LittleEndian.PutUint64(b[48:], uint64(h.payloadLen))
	binary.LittleEndian.PutUint64(b[56:], uint64(h.payloadOff))
	return b
}

func decodeBlkHeader(b []byte) (blkHeader, error) {
	if len(b) < blkHeaderSize {
		return blkHeader{}, fmt.Errorf("stage: block header truncated (%d bytes)", len(b))
	}
	if [8]byte(b[:8]) != blkMagic {
		return blkHeader{}, fmt.Errorf("stage: bad block magic")
	}
	h := blkHeader{
		kind:       dataframe.Kind(binary.LittleEndian.Uint32(b[8:])),
		pathLen:    int(binary.LittleEndian.Uint32(b[12:])),
		colLen:     int(binary.LittleEndian.Uint32(b[16:])),
		crc:        binary.LittleEndian.Uint32(b[20:]),
		rows:       int64(binary.LittleEndian.Uint64(b[24:])),
		srcMtimeNS: int64(binary.LittleEndian.Uint64(b[32:])),
		srcSize:    int64(binary.LittleEndian.Uint64(b[40:])),
		payloadLen: int64(binary.LittleEndian.Uint64(b[48:])),
		payloadOff: int64(binary.LittleEndian.Uint64(b[56:])),
	}
	if h.rows < 0 || h.payloadLen < 0 || h.pathLen < 0 || h.colLen < 0 ||
		h.pathLen > 1<<20 || h.colLen > 1<<20 ||
		h.payloadOff != align8(int64(blkHeaderSize+h.pathLen+h.colLen)) {
		return blkHeader{}, fmt.Errorf("stage: block header fields out of range")
	}
	return h, nil
}

func align8(n int64) int64 { return (n + 7) &^ 7 }

// blkFileName derives the tier-local filename of a (path, col) block. The
// fnv64a digest keeps names flat and filesystem-safe; collisions are
// healed at promote time by validating the key strings stored in the
// header.
func blkFileName(k key) string {
	h := fnv.New64a()
	h.Write([]byte(k.path))
	h.Write([]byte{0})
	h.Write([]byte(k.col))
	return fmt.Sprintf("%016x.blk", h.Sum64())
}

// diskEntry is one resident block in the tier's index. mapped retains the
// promotion mapping so a later re-promotion (after the memory tier evicted
// the column again) is a pointer copy, not another open.
type diskEntry struct {
	key        key
	stamp      stamp
	kind       dataframe.Kind
	rows       int64
	bytes      int64 // payload length — the budget accounting unit
	file       string
	prefetched bool // written by the prefetcher, not by a demand decode
	hit        bool // promoted at least once (prefetch used/wasted accounting)
	mapped     []byte
	payloadOff int64
}

// diskStats are the tier-owned counters, merged into Stats snapshots.
type diskStats struct {
	writes         int64
	evictions      int64
	evictedBytes   int64
	invalidations  int64
	prefetchIssued int64
	prefetchUsed   int64
	prefetchWasted int64
	usedBytes      int64
}

// diskTier is the persistent block store. All methods are safe for
// concurrent use; file I/O happens outside the index lock, so a promotion
// racing an eviction resolves as a promote failure (open of a deleted
// file) and falls through to the decoder.
type diskTier struct {
	dir    string
	mu     sync.Mutex
	budget int64
	ll     *list.List // front = most recently used
	items  map[key]*list.Element
	stats  diskStats

	// Pre-resolved prefetch-outcome instruments (nil-safe; set by the
	// owning Cache's SetMetrics) — used/wasted are decided inside the
	// tier, so the tier increments them.
	tPrefetchIssued *telemetry.Counter
	tPrefetchUsed   *telemetry.Counter
	tPrefetchWasted *telemetry.Counter
}

// setPrefetchCounters installs (or clears) the prefetch telemetry
// instruments.
func (dt *diskTier) setPrefetchCounters(issued, used, wasted *telemetry.Counter) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.tPrefetchIssued, dt.tPrefetchUsed, dt.tPrefetchWasted = issued, used, wasted
}

// newDiskTier opens (creating if needed) a block store rooted at dir and
// rebuilds its index from the resident block files' headers — header-only
// reads, so a large store reopens in milliseconds. Unreadable or foreign
// files are skipped, not deleted: a half-written temp file from a crashed
// process is invisible (put renames atomically) and anything else in the
// directory is not ours to remove. LRU order is seeded by block-file
// mtime, oldest first.
func newDiskTier(dir string, budget int64) (*diskTier, error) {
	if budget <= 0 {
		budget = DefaultDiskBudgetBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	dt := &diskTier{
		dir:    dir,
		budget: budget,
		ll:     list.New(),
		items:  map[key]*list.Element{},
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type scanned struct {
		e     *diskEntry
		mtime int64
	}
	var found []scanned
	for _, de := range ents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".blk") {
			continue
		}
		full := filepath.Join(dir, de.Name())
		e, err := readBlkEntry(full)
		if err != nil {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, scanned{e: e, mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	for _, s := range found {
		if prev, ok := dt.items[s.e.key]; ok {
			// Two files claiming one key (shouldn't happen — names are
			// deterministic — but a hand-copied store could): keep the newer.
			dt.removeLocked(prev, false)
		}
		dt.items[s.e.key] = dt.ll.PushFront(s.e)
		dt.stats.usedBytes += s.e.bytes
	}
	dt.mu.Lock()
	dt.sweepLocked()
	dt.mu.Unlock()
	return dt, nil
}

// readBlkEntry reads one block file's header (never its payload) into an
// index entry.
func readBlkEntry(full string) (*diskEntry, error) {
	f, err := os.Open(full)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr := make([]byte, blkHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, err
	}
	h, err := decodeBlkHeader(hdr)
	if err != nil {
		return nil, err
	}
	keyBuf := make([]byte, h.pathLen+h.colLen)
	if _, err := f.ReadAt(keyBuf, blkHeaderSize); err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < h.payloadOff+h.payloadLen {
		return nil, fmt.Errorf("stage: block file truncated")
	}
	return &diskEntry{
		key:        key{path: string(keyBuf[:h.pathLen]), col: string(keyBuf[h.pathLen:])},
		stamp:      stamp{mtime: h.srcMtimeNS, size: h.srcSize},
		kind:       h.kind,
		rows:       h.rows,
		bytes:      h.payloadLen,
		file:       full,
		payloadOff: h.payloadOff,
	}, nil
}

// budgetBytes returns the tier's byte budget.
func (dt *diskTier) budgetBytes() int64 {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.budget
}

// snapshot returns the tier counters plus the resident entry count.
func (dt *diskTier) snapshot() (diskStats, int) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.stats, dt.ll.Len()
}

// has reports whether the tier holds (k, st) — the prefetcher's
// already-resident check.
func (dt *diskTier) has(k key, st stamp) bool {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	el, ok := dt.items[k]
	return ok && el.Value.(*diskEntry).stamp == st
}

// put persists one encoded payload for (k, st), replacing any prior
// generation, and sweeps the budget. The write is atomic (temp + rename),
// so a reader never observes a partial block and a crash leaves at worst
// an orphan temp file the next scan ignores. A payload alone over budget
// is not stored (mirrors the memory tier's oversized-entry rule).
func (dt *diskTier) put(k key, st stamp, kind dataframe.Kind, rows int, payload []byte, prefetched bool) error {
	dt.mu.Lock()
	over := int64(len(payload)) > dt.budget
	dt.mu.Unlock()
	if over {
		return nil
	}
	full := filepath.Join(dt.dir, blkFileName(k))
	h := blkHeader{
		kind:       kind,
		rows:       int64(rows),
		srcMtimeNS: st.mtime,
		srcSize:    st.size,
		payloadLen: int64(len(payload)),
		crc:        crc32.Checksum(payload, blkCastagnoli),
		pathLen:    len(k.path),
		colLen:     len(k.col),
	}
	h.payloadOff = align8(int64(blkHeaderSize + h.pathLen + h.colLen))
	buf := make([]byte, 0, h.payloadOff+h.payloadLen)
	buf = append(buf, encodeBlkHeader(h)...)
	buf = append(buf, k.path...)
	buf = append(buf, k.col...)
	buf = append(buf, make([]byte, h.payloadOff-int64(blkHeaderSize+h.pathLen+h.colLen))...)
	buf = append(buf, payload...)
	tmp, err := os.CreateTemp(dt.dir, ".blk-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), full); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	e := &diskEntry{
		key:        k,
		stamp:      st,
		kind:       kind,
		rows:       int64(rows),
		bytes:      h.payloadLen,
		file:       full,
		prefetched: prefetched,
		payloadOff: h.payloadOff,
	}
	dt.mu.Lock()
	if prev, ok := dt.items[k]; ok {
		dt.removeLocked(prev, false)
	}
	dt.items[k] = dt.ll.PushFront(e)
	dt.stats.usedBytes += e.bytes
	dt.stats.writes++
	if prefetched {
		dt.stats.prefetchIssued++
		dt.tPrefetchIssued.Inc()
	}
	dt.sweepLocked()
	dt.mu.Unlock()
	return nil
}

// promote serves (k, now) from the block store as a ready-to-share column
// vector. ok is false on a plain miss (absent, or resident for a different
// file generation — which also drops the stale block). A non-nil err means
// the block was resident and claimed to match but could not be loaded
// (truncated, corrupt, raced with eviction); the bad block has been
// dropped and the caller should fall through to the real decoder.
func (dt *diskTier) promote(k key, now stamp) (col *dataframe.Column, bytes int64, ok bool, err error) {
	dt.mu.Lock()
	el, found := dt.items[k]
	if !found {
		dt.mu.Unlock()
		return nil, 0, false, nil
	}
	e := el.Value.(*diskEntry)
	if e.stamp != now {
		dt.removeLocked(el, true)
		dt.stats.invalidations++
		dt.mu.Unlock()
		return nil, 0, false, nil
	}
	dt.ll.MoveToFront(el)
	if e.prefetched && !e.hit {
		dt.stats.prefetchUsed++
		dt.tPrefetchUsed.Inc()
	}
	e.hit = true
	mapped, payloadOff := e.mapped, e.payloadOff
	kind, rows, payloadLen := e.kind, e.rows, e.bytes
	file := e.file
	dt.mu.Unlock()

	if mapped == nil {
		mapped, err = dt.load(k, file, payloadOff, payloadLen, kind)
		if err != nil {
			dt.drop(k, now)
			return nil, 0, false, err
		}
		if mapped != nil {
			dt.mu.Lock()
			if el, found := dt.items[k]; found {
				cur := el.Value.(*diskEntry)
				if cur.mapped == nil {
					cur.mapped = mapped
				} else {
					// Two concurrent promotions mapped the file twice; both
					// mappings are valid forever (never unmapped) — keep the
					// first, use ours for this call.
				}
			}
			dt.mu.Unlock()
		}
	}

	payload := mapped
	if payload != nil {
		col, err = castColumn(k.col, kind, payload, int(rows))
	} else {
		col, err = dt.decodeCopy(k, file, payloadOff, payloadLen, kind, int(rows))
	}
	if err != nil {
		dt.drop(k, now)
		return nil, 0, false, err
	}
	return col.MarkShared(), payloadLen, true, nil
}

// load validates the block file and returns its mmapped payload for kinds
// eligible for the cast fast path, or (nil, nil) to request the
// copy-decode fallback.
func (dt *diskTier) load(k key, file string, payloadOff, payloadLen int64, kind dataframe.Kind) ([]byte, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := validateBlk(f, k, payloadOff, payloadLen); err != nil {
		return nil, err
	}
	if kind != dataframe.Float && kind != dataframe.Int || !hostLittleEndian || !mmapSupported {
		return nil, nil
	}
	whole, err := mmapFile(f, payloadOff+payloadLen)
	if err != nil {
		// mmap can fail on exotic filesystems; fall back to copy-decode
		// rather than failing the promotion.
		return nil, nil
	}
	return whole[payloadOff : payloadOff+payloadLen], nil
}

// validateBlk re-checks a block file against the index entry it claims to
// back: magic, key strings (heals fnv filename collisions), and size
// bounds (a truncated file must fail here, before any mmap cast could
// fault past EOF).
func validateBlk(f *os.File, k key, payloadOff, payloadLen int64) error {
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < payloadOff+payloadLen {
		return fmt.Errorf("stage: block file %s truncated: %d < %d", f.Name(), st.Size(), payloadOff+payloadLen)
	}
	hdr := make([]byte, blkHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return err
	}
	h, err := decodeBlkHeader(hdr)
	if err != nil {
		return err
	}
	if h.pathLen != len(k.path) || h.colLen != len(k.col) {
		return fmt.Errorf("stage: block file %s keyed to another entry", f.Name())
	}
	keyBuf := make([]byte, h.pathLen+h.colLen)
	if _, err := f.ReadAt(keyBuf, blkHeaderSize); err != nil {
		return err
	}
	if string(keyBuf[:h.pathLen]) != k.path || string(keyBuf[h.pathLen:]) != k.col {
		return fmt.Errorf("stage: block file %s keyed to another entry", f.Name())
	}
	return nil
}

// decodeCopy is the promotion fallback: read the payload, verify its CRC,
// decode through the gio block decoder. Used for String columns (variable
// width — no cast possible), big-endian hosts, and mmap failures.
func (dt *diskTier) decodeCopy(k key, file string, payloadOff, payloadLen int64, kind dataframe.Kind, rows int) (*dataframe.Column, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr := make([]byte, blkHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, err
	}
	h, err := decodeBlkHeader(hdr)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, payloadLen)
	if _, err := f.ReadAt(payload, payloadOff); err != nil {
		return nil, err
	}
	if got := crc32.Checksum(payload, blkCastagnoli); got != h.crc {
		return nil, fmt.Errorf("stage: block %s/%s CRC mismatch: got %08x want %08x", k.path, k.col, got, h.crc)
	}
	return gio.DecodeBlock(k.col, kind, payload, rows)
}

// drop removes (k, now) from the index and disk — promote's error path,
// scoped to exactly the failing generation so a concurrent put of a fresh
// block is not clobbered.
func (dt *diskTier) drop(k key, now stamp) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if el, ok := dt.items[k]; ok && el.Value.(*diskEntry).stamp == now {
		dt.removeLocked(el, true)
	}
}

// invalidatePath drops every block decoded from path (watcher event or
// stamp-mismatch invalidation), returning how many were removed.
func (dt *diskTier) invalidatePath(path string) int {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	var doomed []*list.Element
	for k, el := range dt.items {
		if k.path == path {
			doomed = append(doomed, el)
		}
	}
	for _, el := range doomed {
		dt.removeLocked(el, true)
		dt.stats.invalidations++
	}
	return len(doomed)
}

// sweepLocked enforces the byte budget, evicting least-recently-used
// blocks. Caller holds mu.
func (dt *diskTier) sweepLocked() {
	for dt.stats.usedBytes > dt.budget && dt.ll.Len() > 0 {
		oldest := dt.ll.Back()
		e := oldest.Value.(*diskEntry)
		dt.removeLocked(oldest, true)
		dt.stats.evictions++
		dt.stats.evictedBytes += e.bytes
	}
}

// removeLocked unlinks an entry and (when unlink is set) deletes its
// block file. Caller holds mu. Never unmaps: promoted vectors may alias
// the mapping with unbounded lifetime, and on POSIX the pages stay valid
// after the file is unlinked.
func (dt *diskTier) removeLocked(el *list.Element, unlink bool) {
	e := el.Value.(*diskEntry)
	dt.ll.Remove(el)
	delete(dt.items, e.key)
	dt.stats.usedBytes -= e.bytes
	if e.prefetched && !e.hit {
		dt.stats.prefetchWasted++
		dt.tPrefetchWasted.Inc()
	}
	if unlink {
		os.Remove(e.file)
	}
}
