// Package stage implements a process-wide, byte-budgeted staging cache of
// decoded gio column blocks, shared by every reader of raw ensemble
// snapshots (the agent data loader, the domain tools, the serving layer).
//
// Motivation: the two-stage workflow stages raw (sim, step) catalog slices
// into a per-session analytical database before any SQL runs. Under a
// concurrent serving layer, N sessions touching overlapping slices would
// each re-open, re-decode and re-append the same files from scratch, so
// staging dominates every cache-miss request. This cache makes the decode
// step shared — and shared at the finest useful grain: N concurrent
// sessions over overlapping ensembles cost exactly one decode per distinct
// (file, column).
//
// # Keys and invalidation
//
// An entry is one column block, keyed by (absolute path, column name); its
// validity is stamped with the file's (mtime, size) at decode time.
// Per-column keying is what lets overlapping-but-unequal requests share:
// a session asking for {tag, mass} and another asking for {mass, count}
// decode mass once between them, where a column-set key would have decoded
// the whole of both sets. Columns assembles the requested frame from
// whichever columns are resident and decodes only the absent ones — one
// partial read per absent column, never a whole-file read (gio.ReadColumn).
//
// Lookups validate entries against the file's current (mtime, size), so
// rewriting or regenerating a file invalidates its columns on the next
// access without any watcher — the same stat-based freshness rule the
// service's ensemble fingerprint uses. The stat itself is memoized for a
// short TTL (SetStatTTL, default DefaultStatTTL), so a hot path resolving
// many columns of one file pays one syscall per TTL window instead of one
// per block; like the fingerprint memo, the TTL bounds how long a changed
// file can keep serving its previous generation.
//
// # Budget and eviction
//
// The cache holds at most BudgetBytes() of decoded blocks (measured as the
// encoded block bytes read from disk, a close proxy for resident column
// size). Accounting and LRU eviction are per column: inserting past the
// budget evicts least-recently-used column blocks, so one giant unused
// column can be displaced while its siblings stay hot. A single column
// that alone exceeds the budget is served uncached without disturbing
// resident entries. EvictedBytes is surfaced on the service's /metrics
// endpoint.
//
// # Sharing and immutability
//
// Cached column vectors are immutable and marked shared
// (dataframe.Column.MarkShared), so in-place growth anywhere downstream
// copies first (copy-on-write). Columns returns a fresh Frame shell per
// call that shares the cached vectors; callers may add columns (e.g. the
// loader's injected sim/step constants) but must never mutate the returned
// column data in place. Frame verbs used downstream (Gather, SortBy,
// Select, Concat) all allocate fresh vectors or honor the shared mark, so
// staged frames flow into sqldb.BulkAppend by reference.
//
// # Tiers
//
// An optional disk tier (SetDiskTier, -stage-dir) persists decoded blocks
// under the memory LRU: decodes write through to a compact block store
// (disk.go), memory eviction demotes instead of discards, and a memory
// miss promotes from disk — an mmap cast for numeric columns — without
// touching the gio decoder, so hot columns survive restarts and the
// memory budget stops being the residency ceiling. With a tier attached,
// sibling columns and hinted next-step files are opportunistically
// prefetched while a source file is open (prefetch.go).
//
// # Freshness
//
// With a filesystem watch active (SetWatch, inotify on Linux), each
// file's stamp is pinned after one stat and every later freshness check
// is served from the pin with zero syscalls; a watch event unpins and
// invalidates exactly the touched file's entries in both tiers
// (watch.go). Without a watch, the stat-TTL memo below applies.
//
// # Concurrency
//
// All methods are safe for concurrent use. Concurrent misses single-flight
// per column: the first request to want an absent column decodes it, the
// rest wait and share the result — two sessions requesting different
// subsets of one file lead disjoint column flights and wait on each
// other's overlap. LoadAll fans a request list out over a bounded worker
// pool, so a k-snapshot load decodes in parallel instead of sequentially,
// and a multi-column miss decodes its absent blocks concurrently.
package stage

import (
	"container/list"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"infera/internal/dataframe"
	"infera/internal/gio"
	"infera/internal/telemetry"
)

// DefaultBudgetBytes is the Shared cache's decoded-block budget.
const DefaultBudgetBytes = 256 << 20

// DefaultStatTTL is the freshness-check memoization window: lookups within
// it reuse the file's last observed (mtime, size) instead of re-statting.
// It bounds the staleness window after an in-place file rewrite, so it
// stays deliberately short — the point is only to take the per-block
// syscall off hot lookups, not to stop re-validating.
const DefaultStatTTL = 100 * time.Millisecond

// Stats is a point-in-time snapshot of the cache counters, surfaced on the
// service's /metrics endpoint. Hit/miss accounting is per column block —
// the cache's unit of residency — so one Columns call over k columns moves
// the counters by k.
type Stats struct {
	// Hits counts column lookups served from resident blocks, including
	// requests that waited on another request's in-flight decode
	// (single-flight followers).
	Hits int64 `json:"hits"`
	// Misses counts column blocks that had to decode (single-flight
	// leaders).
	Misses int64 `json:"misses"`
	// PartialHits counts Columns calls that found some of their columns
	// resident (or in flight) and decoded only the rest — the
	// overlapping-column-set sharing that per-column keying buys.
	PartialHits int64 `json:"partial_hits"`
	// Opens counts underlying gio file opens — one per miss batch, however
	// many absent columns it decodes.
	Opens int64 `json:"opens"`
	// BytesDecoded is the cumulative encoded block bytes read from disk by
	// decodes — the I/O-volume measure benchmarks assert on.
	BytesDecoded int64 `json:"bytes_decoded"`
	// StatSaves counts freshness checks served from the stat memo instead
	// of a syscall.
	StatSaves int64 `json:"stat_saves"`
	// Invalidations counts column blocks dropped because the backing
	// file's mtime or size changed.
	Invalidations int64 `json:"invalidations"`
	// Evictions / EvictedBytes count blocks pushed out by the byte budget.
	Evictions    int64 `json:"evictions"`
	EvictedBytes int64 `json:"evicted_bytes"`
	// UsedBytes / BudgetBytes describe the current residency.
	UsedBytes   int64 `json:"used_bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
	// Entries is the resident column-block count; Files the distinct
	// backing files they span.
	Entries int `json:"entries"`
	Files   int `json:"files"`

	// StatCalls counts real stat syscalls performed by freshness checks —
	// the denominator (with StatSaves) behind the watch mode's
	// zero-syscall claim.
	StatCalls int64 `json:"stat_calls"`

	// DiskHits counts memory misses served by promoting a block from the
	// disk tier instead of decoding; PromotedBytes is their cumulative
	// payload volume (tier I/O, deliberately not part of bytes_decoded —
	// that counter keeps measuring source-file decode I/O only).
	DiskHits      int64 `json:"disk_hits"`
	PromotedBytes int64 `json:"promoted_bytes"`
	// DiskPromoteFailures counts promotions that found a resident block
	// unusable (truncated, corrupt, raced with eviction); each evicted
	// exactly the bad block and fell through to the decoder.
	DiskPromoteFailures int64 `json:"disk_promote_failures"`
	// Demotions / DemotedBytes count memory-budget evictions that kept
	// (or wrote) a disk-tier copy instead of discarding the block.
	Demotions    int64 `json:"demotions"`
	DemotedBytes int64 `json:"demoted_bytes"`
	// DiskWrites counts block files written (write-through, demotion and
	// prefetch alike); the remaining disk_* fields mirror the memory
	// tier's accounting for the block store.
	DiskWrites        int64 `json:"disk_writes"`
	DiskEvictions     int64 `json:"disk_evictions"`
	DiskEvictedBytes  int64 `json:"disk_evicted_bytes"`
	DiskInvalidations int64 `json:"disk_invalidations"`
	DiskUsedBytes     int64 `json:"disk_used_bytes"`
	DiskBudgetBytes   int64 `json:"disk_budget_bytes"`
	DiskEntries       int   `json:"disk_entries"`

	// PrefetchIssued counts blocks pulled into the disk tier
	// speculatively; Used counts those later promoted at least once,
	// Wasted those evicted or invalidated untouched.
	PrefetchIssued int64 `json:"prefetch_issued"`
	PrefetchUsed   int64 `json:"prefetch_used"`
	PrefetchWasted int64 `json:"prefetch_wasted"`

	// WatchEvents counts filesystem change notifications handled;
	// WatchedFiles is the number of files currently pinned stat-free.
	WatchEvents  int64 `json:"watch_events"`
	WatchedFiles int   `json:"watched_files"`
}

// key identifies one cached column block. Freshness is checked against the
// entry's stamp, not the key, so a regenerated file replaces its stale
// blocks in place.
type key struct {
	path string
	col  string
}

// stamp is the file identity an entry was decoded from.
type stamp struct {
	mtime int64 // ns
	size  int64
}

type entry struct {
	key   key
	stamp stamp
	// col is the decoded immutable (shared-marked) column vector.
	col   *dataframe.Column
	bytes int64
	// persisted marks the block as already (or about to be) resident in
	// the disk tier, so eviction-time demotion can skip the write.
	persisted bool
}

type flight struct {
	done chan struct{}
	e    *entry
	err  error
}

// statEntry is one memoized freshness check.
type statEntry struct {
	st stamp
	at time.Time
}

// Cache is the staging cache. Create with New or use the process-wide
// Shared instance.
type Cache struct {
	workers int
	sem     chan struct{}

	mu       sync.Mutex
	budget   int64
	statTTL  time.Duration
	ll       *list.List // front = most recently used
	items    map[key]*list.Element
	inflight map[key]*flight
	statMemo map[string]statEntry
	// paths refcounts resident blocks per file for the Files gauge.
	paths map[string]int
	stats Stats

	// disk is the optional persistent tier (SetDiskTier); nil = memory only.
	disk *diskTier
	// prefetchOn gates sibling/next-step prefetching; prefetchBusy
	// dedupes in-flight passes per source file.
	prefetchOn    bool
	prefetchBusy  map[string]bool
	neighborHints map[string]func(string) []string

	// watch-mode freshness state: pinned holds the stat-free stamp per
	// file, pinEpoch fences a pin against an event that raced the stat
	// that produced it (see statPath).
	watch    watcher
	watchOn  bool
	pinned   map[string]stamp
	pinEpoch map[string]uint64

	// bg is the bounded background pool shared by write-through persists
	// and prefetch passes; created in New, workers started lazily by the
	// first SetDiskTier. bgWG tracks queued-but-unfinished tasks for
	// WaitPending.
	bg        chan func()
	bgOnce    sync.Once
	bgWG      sync.WaitGroup
	bgStarted atomic.Bool

	// Pre-resolved telemetry instruments (SetMetrics); nil records nothing.
	// Pre-resolving keeps the decode path free of registry lookups.
	decodeSeconds  *telemetry.Histogram
	decodedBytes   *telemetry.Counter
	tierHitsMem    *telemetry.Counter
	tierHitsDisk   *telemetry.Counter
	promotionsCtr  *telemetry.Counter
	demotionsCtr   *telemetry.Counter
	prefIssuedCtr  *telemetry.Counter
	prefUsedCtr    *telemetry.Counter
	prefWastedCtr  *telemetry.Counter
	watchEventsCtr *telemetry.Counter
	statSavesCtr   *telemetry.Counter
	statCallsCtr   *telemetry.Counter
}

// New returns a cache holding at most budgetBytes of decoded column
// blocks, with loads fanned out over at most workers goroutines (0 picks a
// default of min(8, GOMAXPROCS)). Freshness checks are memoized for
// DefaultStatTTL; adjust with SetStatTTL.
func New(budgetBytes int64, workers int) *Cache {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	return &Cache{
		workers:      workers,
		sem:          make(chan struct{}, workers),
		budget:       budgetBytes,
		statTTL:      DefaultStatTTL,
		ll:           list.New(),
		items:        map[key]*list.Element{},
		inflight:     map[key]*flight{},
		statMemo:     map[string]statEntry{},
		paths:        map[string]int{},
		prefetchOn:   true,
		prefetchBusy: map[string]bool{},
		pinned:       map[string]stamp{},
		pinEpoch:     map[string]uint64{},
		bg:           make(chan func(), 256),
	}
}

// SetDiskTier attaches (or, with dir == "", detaches) the persistent
// block store rooted at dir with the given byte budget (<= 0 picks
// DefaultDiskBudgetBytes). Attaching scans resident block files and
// starts the background persist/prefetch pool; blocks persisted by a
// previous process become promotable immediately. Replacing an attached
// tier leaves the old directory's files on disk.
func (c *Cache) SetDiskTier(dir string, budgetBytes int64) error {
	if dir == "" {
		c.mu.Lock()
		c.disk = nil
		c.mu.Unlock()
		return nil
	}
	dt, err := newDiskTier(dir, budgetBytes)
	if err != nil {
		return err
	}
	c.startBG()
	c.mu.Lock()
	dt.setPrefetchCounters(c.prefIssuedCtr, c.prefUsedCtr, c.prefWastedCtr)
	c.disk = dt
	c.mu.Unlock()
	return nil
}

// SetWatch turns filesystem-watch freshness on or off. While on, files
// are pinned after their first stat and freshness checks cost zero
// syscalls until the watcher reports a change (exact invalidation); the
// stat-TTL memo is bypassed. Turning it off (or a constructor error on
// platforms without a working backend) reverts to TTL mode.
func (c *Cache) SetWatch(on bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if on {
		if c.watch != nil {
			c.watchOn = true
			return nil
		}
		w, err := newWatcher(c.onFileEvent)
		if err != nil {
			return err
		}
		c.watch = w
		c.watchOn = true
		return nil
	}
	if c.watch != nil {
		c.watch.close()
		c.watch = nil
	}
	c.watchOn = false
	c.pinned = map[string]stamp{}
	return nil
}

// onFileEvent is the watcher callback: the file changed (or vanished), so
// unpin its stamp and drop its entries from both tiers — the exact,
// event-driven replacement for TTL expiry. An in-flight decode of the old
// generation is harmless: its entries carry the old stamp and fail the
// next lookup's freshness comparison.
func (c *Cache) onFileEvent(path string) {
	c.mu.Lock()
	c.pinEpoch[path]++
	delete(c.pinned, path)
	delete(c.statMemo, path)
	c.stats.WatchEvents++
	c.watchEventsCtr.Inc()
	var doomed []*list.Element
	for k, el := range c.items {
		if k.path == path {
			doomed = append(doomed, el)
		}
	}
	for _, el := range doomed {
		c.removeLocked(el)
		c.stats.Invalidations++
	}
	dt := c.disk
	c.mu.Unlock()
	if dt != nil {
		dt.invalidatePath(path)
	}
}

// startBG launches the background pool (2 workers — persist and prefetch
// are I/O-bound housekeeping; the point is bounding, not throughput).
func (c *Cache) startBG() {
	c.bgOnce.Do(func() {
		for i := 0; i < 2; i++ {
			go func() {
				for fn := range c.bg {
					fn()
				}
			}()
		}
		c.bgStarted.Store(true)
	})
}

// enqueueBG submits a task to the pool without blocking; a full queue —
// or a pool that was never started because no disk tier is attached —
// drops the task (persist and prefetch are both best-effort). Safe to
// call while holding c.mu.
func (c *Cache) enqueueBG(fn func()) bool {
	if !c.bgStarted.Load() {
		return false
	}
	c.bgWG.Add(1)
	wrapped := func() { defer c.bgWG.Done(); fn() }
	select {
	case c.bg <- wrapped:
		return true
	default:
		c.bgWG.Done()
		return false
	}
}

// WaitPending blocks until every queued background persist/prefetch task
// has finished — how tests and benchmarks make the asynchronous tier
// deterministic before asserting on disk state.
func (c *Cache) WaitPending() { c.bgWG.Wait() }

// Close stops the watcher and drains the background pool. Resident state
// (both tiers) is left intact; mmapped promotion pages stay valid for
// the process lifetime by design. The Shared cache is never closed.
func (c *Cache) Close() error {
	c.mu.Lock()
	if c.watch != nil {
		c.watch.close()
		c.watch = nil
	}
	c.watchOn = false
	c.mu.Unlock()
	c.bgWG.Wait()
	return nil
}

var (
	sharedOnce sync.Once
	shared     *Cache
)

// Shared returns the process-wide cache every snapshot reader defaults to.
// One instance per process is the point: sessions, tools and services
// dedupe against each other only when they share it.
func Shared() *Cache {
	sharedOnce.Do(func() { shared = New(DefaultBudgetBytes, 0) })
	return shared
}

// SetBudget adjusts the byte budget (e.g. from a daemon flag), evicting
// immediately if the cache is over the new bound.
func (c *Cache) SetBudget(budgetBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = budgetBytes
	c.evictOverBudgetLocked()
}

// SetStatTTL adjusts the freshness-check memoization window. ttl <= 0
// disables memoization entirely: every lookup stats the file, the
// pre-memoization behavior tests of immediate invalidation rely on.
func (c *Cache) SetStatTTL(ttl time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.statTTL = ttl
	if ttl <= 0 {
		c.statMemo = map[string]statEntry{}
	}
}

// SetMetrics points the cache at a telemetry registry: every decode batch
// observes its wall-clock duration into infera_stage_decode_seconds and
// its block bytes into infera_stage_decoded_bytes_total. A nil registry
// (the default) records nothing. Instruments are resolved once here so
// the decode path stays lookup-free.
func (c *Cache) SetMetrics(r *telemetry.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r == nil {
		c.decodeSeconds, c.decodedBytes = nil, nil
		c.tierHitsMem, c.tierHitsDisk, c.promotionsCtr, c.demotionsCtr = nil, nil, nil, nil
		c.prefIssuedCtr, c.prefUsedCtr, c.prefWastedCtr = nil, nil, nil
		c.watchEventsCtr, c.statSavesCtr, c.statCallsCtr = nil, nil, nil
		if c.disk != nil {
			c.disk.setPrefetchCounters(nil, nil, nil)
		}
		return
	}
	r.SetHelp("infera_stage_decode_seconds", "Wall-clock duration of one gio column decode batch.")
	r.SetHelp("infera_stage_decoded_bytes_total", "Cumulative encoded block bytes read from disk by stage-cache decodes.")
	r.SetHelp("infera_stage_tier_hits_total", "Column lookups served per cache tier (mem = resident block, disk = promoted from the block store).")
	r.SetHelp("infera_stage_tier_promotions_total", "Blocks promoted disk -> memory without touching the gio decoder.")
	r.SetHelp("infera_stage_tier_demotions_total", "Memory-budget evictions that kept a disk-tier copy instead of discarding.")
	r.SetHelp("infera_stage_prefetch_issued_total", "Blocks speculatively pulled into the disk tier (siblings and next-step files).")
	r.SetHelp("infera_stage_prefetch_total", "Prefetched blocks by outcome: used (promoted at least once) or wasted (evicted untouched).")
	r.SetHelp("infera_stage_watch_events_total", "Filesystem change notifications handled by the stage watcher.")
	r.SetHelp("infera_stage_stat_saves_total", "Freshness checks served without a stat syscall (watch pin or TTL memo).")
	r.SetHelp("infera_stage_stat_calls_total", "Real stat syscalls performed by freshness checks.")
	c.decodeSeconds = r.Histogram("infera_stage_decode_seconds", nil)
	c.decodedBytes = r.Counter("infera_stage_decoded_bytes_total")
	c.tierHitsMem = r.Counter("infera_stage_tier_hits_total", telemetry.L("tier", "mem"))
	c.tierHitsDisk = r.Counter("infera_stage_tier_hits_total", telemetry.L("tier", "disk"))
	c.promotionsCtr = r.Counter("infera_stage_tier_promotions_total")
	c.demotionsCtr = r.Counter("infera_stage_tier_demotions_total")
	c.prefIssuedCtr = r.Counter("infera_stage_prefetch_issued_total")
	c.prefUsedCtr = r.Counter("infera_stage_prefetch_total", telemetry.L("outcome", "used"))
	c.prefWastedCtr = r.Counter("infera_stage_prefetch_total", telemetry.L("outcome", "wasted"))
	c.watchEventsCtr = r.Counter("infera_stage_watch_events_total")
	c.statSavesCtr = r.Counter("infera_stage_stat_saves_total")
	c.statCallsCtr = r.Counter("infera_stage_stat_calls_total")
	if c.disk != nil {
		c.disk.setPrefetchCounters(c.prefIssuedCtr, c.prefUsedCtr, c.prefWastedCtr)
	}
}

// Stats returns a snapshot of the counters, merging in the disk tier's.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	st := c.stats
	st.BudgetBytes = c.budget
	st.Entries = c.ll.Len()
	st.Files = len(c.paths)
	st.WatchedFiles = len(c.pinned)
	dt := c.disk
	c.mu.Unlock()
	if dt != nil {
		ds, entries := dt.snapshot()
		st.DiskWrites = ds.writes
		st.DiskEvictions = ds.evictions
		st.DiskEvictedBytes = ds.evictedBytes
		st.DiskInvalidations = ds.invalidations
		st.DiskUsedBytes = ds.usedBytes
		st.DiskBudgetBytes = dt.budgetBytes()
		st.DiskEntries = entries
		st.PrefetchIssued = ds.prefetchIssued
		st.PrefetchUsed = ds.prefetchUsed
		st.PrefetchWasted = ds.prefetchWasted
	}
	return st
}

// canonicalCols deduplicates and sorts names into the decode-order list;
// per-column keying makes request order irrelevant by construction.
func canonicalCols(names []string) []string {
	uniq := make([]string, 0, len(names))
	seen := map[string]bool{}
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	return uniq
}

// statPath resolves the file's current identity. In watch mode a pinned
// stamp is served with zero syscalls until a change event unpins it; in
// TTL mode the memo serves lookups within the window. bypass forces a
// real stat (used on generation-mismatch retries, where the cached stamp
// is exactly what must not be trusted).
func (c *Cache) statPath(path string, bypass bool) (stamp, error) {
	c.mu.Lock()
	if !bypass {
		if c.watchOn {
			if st, ok := c.pinned[path]; ok {
				c.stats.StatSaves++
				c.statSavesCtr.Inc()
				c.mu.Unlock()
				return st, nil
			}
		} else if c.statTTL > 0 {
			if e, ok := c.statMemo[path]; ok && time.Since(e.at) < c.statTTL {
				c.stats.StatSaves++
				c.statSavesCtr.Inc()
				c.mu.Unlock()
				return e.st, nil
			}
		}
	}
	watchOn, w := c.watchOn, c.watch
	epoch0 := c.pinEpoch[path]
	c.mu.Unlock()
	// Pin protocol: arm the watch BEFORE statting, and pin only if no
	// event arrived in between (epoch fence). Stat-then-watch would lose
	// a change landing in the gap and pin a stale stamp forever; with
	// this order such a change fires an event that bumps the epoch and
	// the pin is refused — the next lookup stats again.
	var watchArmed bool
	if watchOn && w != nil {
		watchArmed = w.add(path) == nil
	}
	st, err := os.Stat(path)
	c.mu.Lock()
	c.stats.StatCalls++
	c.statCallsCtr.Inc()
	if err != nil {
		delete(c.statMemo, path)
		delete(c.pinned, path)
		c.mu.Unlock()
		return stamp{}, err
	}
	now := stamp{mtime: st.ModTime().UnixNano(), size: st.Size()}
	if c.watchOn {
		if watchArmed && c.pinEpoch[path] == epoch0 {
			c.pinned[path] = now
		}
	} else if c.statTTL > 0 {
		c.statMemo[path] = statEntry{st: now, at: time.Now()}
	}
	c.mu.Unlock()
	return now, nil
}

// Columns returns the requested columns of the gio file at path as a fresh
// frame shell over cached immutable vectors, decoding each absent column
// at most once per file generation. bytesRead is the data-block bytes this
// call actually read from disk: the block sizes of the columns it decoded,
// 0 when fully served from cache — so callers' I/O accounting stays
// truthful under sharing. The frame's column order follows the request.
func (c *Cache) Columns(path string, names ...string) (f *dataframe.Frame, bytesRead int64, err error) {
	if len(names) == 0 {
		return nil, 0, fmt.Errorf("stage: no columns requested for %s", path)
	}
	uniq := canonicalCols(names)
	fresh := false
	for {
		// A generation-mismatch retry bypasses the stat memo: the memoized
		// stamp is the thing that just disagreed with reality.
		now, err := c.statPath(path, fresh)
		if err != nil {
			return nil, bytesRead, err
		}
		resolved := make(map[string]*dataframe.Column, len(uniq))
		var (
			missing []string  // columns this call must decode (it leads their flights)
			lead    []*flight // flights registered for missing, aligned by index
			waits   []struct {
				col string
				fl  *flight
			}
		)
		c.mu.Lock()
		hits := 0
		for _, name := range uniq {
			k := key{path: path, col: name}
			if el, ok := c.items[k]; ok {
				e := el.Value.(*entry)
				if e.stamp == now {
					hits++
					c.ll.MoveToFront(el)
					resolved[name] = e.col
					continue
				}
				// The backing file changed since this block was decoded.
				c.removeLocked(el)
				c.stats.Invalidations++
			}
			if fl := c.inflight[k]; fl != nil {
				waits = append(waits, struct {
					col string
					fl  *flight
				}{name, fl})
				continue
			}
			fl := &flight{done: make(chan struct{})}
			c.inflight[k] = fl
			lead = append(lead, fl)
			missing = append(missing, name)
		}
		c.stats.Hits += int64(hits)
		c.tierHitsMem.Add(int64(hits))
		dt := c.disk
		c.mu.Unlock()

		var (
			decoded  []*entry
			fromDisk []bool
		)
		if len(missing) > 0 {
			decoded = make([]*entry, len(missing))
			errs := make([]error, len(missing))
			fromDisk = make([]bool, len(missing))
			// This call leads the flights for every missing column. Try the
			// disk tier first: a promotion serves the block without touching
			// the gio decoder (mmap cast for numeric columns), and a
			// resident-but-unusable block — truncated, corrupt, raced with
			// eviction — evicts exactly that block and falls through to the
			// decoder, mirroring the per-column error attribution below.
			toDecode := make([]int, 0, len(missing))
			var promoted, promoteFails int64
			var promotedBytes int64
			for i, name := range missing {
				if dt == nil {
					toDecode = append(toDecode, i)
					continue
				}
				col, n, ok, perr := dt.promote(key{path: path, col: name}, now)
				if ok {
					decoded[i] = &entry{
						key:       key{path: path, col: name},
						stamp:     now,
						col:       col,
						bytes:     n,
						persisted: true,
					}
					fromDisk[i] = true
					promoted++
					promotedBytes += n
					continue
				}
				if perr != nil {
					promoteFails++
				}
				toDecode = append(toDecode, i)
			}
			c.mu.Lock()
			c.stats.DiskHits += promoted
			c.stats.PromotedBytes += promotedBytes
			c.stats.DiskPromoteFailures += promoteFails
			c.tierHitsDisk.Add(promoted)
			c.promotionsCtr.Add(promoted)
			if len(toDecode) > 0 {
				c.stats.Misses += int64(len(toDecode))
				c.stats.Opens++
				if hits > 0 || len(waits) > 0 || promoted > 0 {
					c.stats.PartialHits++
				}
			}
			c.mu.Unlock()
			if len(toDecode) > 0 {
				cols := make([]string, len(toDecode))
				for j, i := range toDecode {
					cols[j] = missing[i]
				}
				dentries, derrs := c.decode(path, cols)
				for j, i := range toDecode {
					decoded[i], errs[i] = dentries[j], derrs[j]
				}
			}
			var firstErr error
			var toPersist []*entry
			c.mu.Lock()
			for i, fl := range lead {
				delete(c.inflight, key{path: path, col: missing[i]})
				// Errors are attributed per column: a bad column name in this
				// request must not poison a concurrent request waiting on a
				// sibling column that decoded fine.
				if errs[i] != nil {
					fl.err = errs[i]
					if firstErr == nil {
						firstErr = errs[i]
					}
					continue
				}
				fl.e = decoded[i]
				// Write a freshly decoded block through to the disk tier
				// before inserting: insertion may evict it from memory
				// immediately (oversized, or budget pressure), and the disk
				// copy is what makes the memory budget a performance knob
				// rather than the residency ceiling.
				if dt != nil && !decoded[i].persisted {
					decoded[i].persisted = true
					toPersist = append(toPersist, decoded[i])
				}
				c.insertLocked(decoded[i])
			}
			c.mu.Unlock()
			for _, e := range toPersist {
				c.persistAsync(dt, e)
			}
			for _, fl := range lead {
				close(fl.done)
			}
			for i, e := range decoded {
				if errs[i] != nil {
					continue
				}
				resolved[missing[i]] = e.col
				// Promoted bytes are tier I/O, not source-file I/O — callers'
				// decode-volume accounting must stay truthful about what was
				// NOT re-read from the source.
				if !fromDisk[i] {
					bytesRead += e.bytes
				}
			}
			if firstErr != nil {
				return nil, bytesRead, firstErr
			}
			if len(toDecode) > 0 {
				// A demand decode just had the file open: pull its sibling
				// columns (and hinted next-step files) into the disk tier in
				// the background.
				c.maybePrefetch(path, uniq, now)
			}
		}

		stale := false
		for _, w := range waits {
			<-w.fl.done
			// The leader may have decoded a different file generation (file
			// replaced mid-flight) or failed.
			if w.fl.err != nil {
				return nil, bytesRead, w.fl.err
			}
			if w.fl.e.stamp != now {
				stale = true
				continue
			}
			resolved[w.col] = w.fl.e.col
			c.mu.Lock()
			c.stats.Hits++
			c.tierHitsMem.Inc()
			c.mu.Unlock()
		}
		// A decode that observed a different identity than our freshness
		// check means the file changed underfoot (or the memo was stale);
		// re-validate everything against a real stat rather than assembling
		// a torn frame from mixed generations. (Promoted entries carry now's
		// stamp by construction; only decoder-sourced entries can disagree.)
		for _, e := range decoded {
			if e != nil && e.stamp != now {
				stale = true
				break
			}
		}
		if stale {
			fresh = true
			continue
		}
		return assemble(resolved, names, bytesRead)
	}
}

// decode opens the file once and reads the absent columns, fanning
// multi-column misses out over per-column goroutines (gio readers support
// concurrent positionless reads). Errors come back aligned per column —
// one request's nonexistent column must not fail siblings that decoded
// fine — with whole-file failures (stat, open) replicated to every
// column. Entries are stamped with the pre-open stat so a mid-decode
// rewrite yields a stale stamp and re-decodes on the next access rather
// than serving torn data.
func (c *Cache) decode(path string, cols []string) ([]*entry, []error) {
	start := time.Now()
	entries := make([]*entry, len(cols))
	errs := make([]error, len(cols))
	failAll := func(err error) ([]*entry, []error) {
		for i := range errs {
			errs[i] = err
		}
		return entries, errs
	}
	st, err := os.Stat(path)
	if err != nil {
		return failAll(err)
	}
	stp := stamp{mtime: st.ModTime().UnixNano(), size: st.Size()}
	r, err := gio.Open(path)
	if err != nil {
		return failAll(err)
	}
	defer r.Close()
	read := func(i int) {
		col, n, rerr := r.ReadColumn(cols[i])
		if rerr != nil {
			errs[i] = rerr
			return
		}
		entries[i] = &entry{
			key:   key{path: path, col: cols[i]},
			stamp: stp,
			col:   col.MarkShared(),
			bytes: n,
		}
	}
	if len(cols) == 1 {
		read(0)
	} else {
		var wg sync.WaitGroup
		for i := range cols {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				read(i)
			}(i)
		}
		wg.Wait()
	}
	var total int64
	for i := range cols {
		if errs[i] == nil {
			total += entries[i].bytes
		}
	}
	c.mu.Lock()
	c.stats.BytesDecoded += total
	hist, ctr := c.decodeSeconds, c.decodedBytes
	c.mu.Unlock()
	hist.ObserveDuration(time.Since(start))
	ctr.Add(total)
	// Deliberately no stat-memo refresh here: the caller's statPath already
	// memoized the pre-decode identity, and re-stamping it at post-decode
	// time could both clobber a newer generation another goroutine observed
	// mid-decode and stretch the staleness window past the documented TTL.
	return entries, errs
}

// assemble builds a fresh frame shell over the resolved vectors in
// requested order.
func assemble(resolved map[string]*dataframe.Column, names []string, bytesRead int64) (*dataframe.Frame, int64, error) {
	out := dataframe.New()
	added := map[string]bool{}
	for _, n := range names {
		if added[n] {
			continue
		}
		added[n] = true
		col, ok := resolved[n]
		if !ok {
			// Cannot happen once every column resolved, but guard it.
			return nil, 0, fmt.Errorf("stage: column %q missing from resolved set", n)
		}
		if err := out.AddColumn(col); err != nil {
			return nil, 0, err
		}
	}
	return out, bytesRead, nil
}

// insertLocked adds e (replacing any same-key entry) and enforces the
// budget. Caller holds mu.
func (c *Cache) insertLocked(e *entry) {
	if el, ok := c.items[e.key]; ok {
		c.removeLocked(el)
	}
	if e.bytes > c.budget {
		// A column that alone exceeds the budget would flush every other
		// resident block and still be evicted last; serve it uncached and
		// leave the rest of the cache intact.
		c.stats.Evictions++
		c.stats.EvictedBytes += e.bytes
		return
	}
	c.items[e.key] = c.ll.PushFront(e)
	c.paths[e.key.path]++
	c.stats.UsedBytes += e.bytes
	c.evictOverBudgetLocked()
}

func (c *Cache) evictOverBudgetLocked() {
	for c.stats.UsedBytes > c.budget && c.ll.Len() > 0 {
		oldest := c.ll.Back()
		e := oldest.Value.(*entry)
		c.removeLocked(oldest)
		c.stats.Evictions++
		c.stats.EvictedBytes += e.bytes
		// With a disk tier attached, a budget eviction is a demotion: the
		// block stays promotable from the store. Most blocks were already
		// written through at decode time; one that wasn't (write-through
		// dropped on a full queue) is persisted now, best-effort.
		if c.disk != nil {
			c.stats.Demotions++
			c.stats.DemotedBytes += e.bytes
			c.demotionsCtr.Inc()
			if !e.persisted {
				e.persisted = true
				c.persistAsync(c.disk, e)
			}
		}
	}
}

// persistAsync queues one block's write-through to the disk tier. The
// encode (and file write) happen on the background pool, off the decode
// path; the entry's column vector is immutable so capturing it is safe.
func (c *Cache) persistAsync(dt *diskTier, e *entry) {
	k, st, col := e.key, e.stamp, e.col
	c.enqueueBG(func() {
		payload, err := gio.EncodeBlock(col)
		if err != nil {
			return
		}
		dt.put(k, st, col.Kind, col.Len(), payload, false)
	})
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	if c.paths[e.key.path]--; c.paths[e.key.path] <= 0 {
		delete(c.paths, e.key.path)
	}
	c.stats.UsedBytes -= e.bytes
}

// Request names one file's column selection for LoadAll.
type Request struct {
	Path    string
	Columns []string
}

// Result is one LoadAll outcome, aligned with the request slice.
type Result struct {
	Frame     *dataframe.Frame
	BytesRead int64
	Err       error
}

// LoadAll resolves every request through the cache, fanning misses out
// over the worker pool — the parallel replacement for the loader's
// sequential open→decode→append loop. Results align with reqs; each
// carries its own error so callers keep per-snapshot error context.
func (c *Cache) LoadAll(reqs []Request) []Result {
	out := make([]Result, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		c.sem <- struct{}{}
		go func(i int, req Request) {
			defer func() { <-c.sem; wg.Done() }()
			out[i].Frame, out[i].BytesRead, out[i].Err = c.Columns(req.Path, req.Columns...)
		}(i, req)
	}
	wg.Wait()
	return out
}
