// Package stage implements a process-wide, byte-budgeted staging cache of
// decoded gio column blocks, shared by every reader of raw ensemble
// snapshots (the agent data loader, the domain tools, the serving layer).
//
// Motivation: the two-stage workflow stages raw (sim, step) catalog slices
// into a per-session analytical database before any SQL runs. Under a
// concurrent serving layer, N sessions touching overlapping slices would
// each re-open, re-decode and re-append the same files from scratch, so
// staging dominates every cache-miss request. This cache makes the decode
// step shared: N concurrent sessions over overlapping ensembles cost
// exactly one decode per distinct (file, column set).
//
// # Keys and invalidation
//
// An entry is keyed by (absolute path, requested column set); its validity
// is stamped with the file's (mtime, size) at decode time. Every lookup
// stats the file and compares stamps, so rewriting or regenerating a file
// invalidates its entries on the next access without any watcher — the
// same stat-based freshness rule the service's ensemble fingerprint uses.
// Column sets are canonicalized (sorted, deduplicated) before keying, so
// request order never splits entries.
//
// # Budget and eviction
//
// The cache holds at most BudgetBytes() of decoded blocks (measured as the
// encoded block bytes read from disk, a close proxy for resident column
// size). Insertion past the budget evicts least-recently-used entries; an
// entry that alone exceeds the budget is served uncached without disturbing
// resident entries. EvictedBytes is surfaced on the service's /metrics
// endpoint.
//
// # Sharing and immutability
//
// Cached column vectors are immutable. Columns returns a fresh Frame shell
// per call that shares the cached vectors, so callers may add columns
// (e.g. the loader's injected sim/step constants) but must never mutate
// the returned column data in place. Frame verbs used downstream (Gather,
// SortBy, Select, Concat) all allocate fresh vectors, so this holds
// naturally; bulk table writes copy via dataframe.Concat.
//
// # Concurrency
//
// All methods are safe for concurrent use. Concurrent misses on one key
// single-flight: the first request decodes, the rest wait and share the
// result. LoadAll fans a request list out over a bounded worker pool, so a
// k-snapshot load decodes in parallel instead of sequentially.
package stage

import (
	"container/list"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"infera/internal/dataframe"
	"infera/internal/gio"
)

// DefaultBudgetBytes is the Shared cache's decoded-block budget.
const DefaultBudgetBytes = 256 << 20

// Stats is a point-in-time snapshot of the cache counters, surfaced on the
// service's /metrics endpoint.
type Stats struct {
	// Hits counts lookups served from resident entries, including requests
	// that waited on another request's in-flight decode (single-flight
	// followers).
	Hits int64 `json:"hits"`
	// Misses counts lookups that had to decode (single-flight leaders).
	Misses int64 `json:"misses"`
	// Opens counts underlying gio file opens — exactly one per miss, the
	// dedupe measure benchmarks assert on.
	Opens int64 `json:"opens"`
	// Invalidations counts entries dropped because the backing file's
	// mtime or size changed.
	Invalidations int64 `json:"invalidations"`
	// Evictions / EvictedBytes count entries pushed out by the byte budget.
	Evictions    int64 `json:"evictions"`
	EvictedBytes int64 `json:"evicted_bytes"`
	// UsedBytes / BudgetBytes describe the current residency.
	UsedBytes   int64 `json:"used_bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
	// Entries is the resident entry count.
	Entries int `json:"entries"`
}

// key identifies one cached decode: a file path plus the canonical column
// set. Freshness is checked against the entry's stamp, not the key, so a
// regenerated file replaces its stale entry in place.
type key struct {
	path string
	cols string
}

// stamp is the file identity an entry was decoded from.
type stamp struct {
	mtime int64 // ns
	size  int64
}

type entry struct {
	key   key
	stamp stamp
	// cols holds the decoded immutable column vectors by name.
	cols  map[string]*dataframe.Column
	bytes int64
}

type flight struct {
	done chan struct{}
	e    *entry
	err  error
}

// Cache is the staging cache. Create with New or use the process-wide
// Shared instance.
type Cache struct {
	workers int
	sem     chan struct{}

	mu       sync.Mutex
	budget   int64
	ll       *list.List // front = most recently used
	items    map[key]*list.Element
	inflight map[key]*flight
	stats    Stats
}

// New returns a cache holding at most budgetBytes of decoded blocks, with
// loads fanned out over at most workers goroutines (0 picks a default of
// min(8, GOMAXPROCS)).
func New(budgetBytes int64, workers int) *Cache {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	return &Cache{
		workers:  workers,
		sem:      make(chan struct{}, workers),
		budget:   budgetBytes,
		ll:       list.New(),
		items:    map[key]*list.Element{},
		inflight: map[key]*flight{},
	}
}

var (
	sharedOnce sync.Once
	shared     *Cache
)

// Shared returns the process-wide cache every snapshot reader defaults to.
// One instance per process is the point: sessions, tools and services
// dedupe against each other only when they share it.
func Shared() *Cache {
	sharedOnce.Do(func() { shared = New(DefaultBudgetBytes, 0) })
	return shared
}

// SetBudget adjusts the byte budget (e.g. from a daemon flag), evicting
// immediately if the cache is over the new bound.
func (c *Cache) SetBudget(budgetBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = budgetBytes
	c.evictOverBudgetLocked()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.BudgetBytes = c.budget
	st.Entries = c.ll.Len()
	return st
}

// canonicalCols sorts and deduplicates names into the key form plus the
// decode list.
func canonicalCols(names []string) (string, []string) {
	uniq := make([]string, 0, len(names))
	seen := map[string]bool{}
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	return strings.Join(uniq, ","), uniq
}

// Columns returns the requested columns of the gio file at path as a fresh
// frame shell over cached immutable vectors, decoding at most once per
// (path, column set, file stamp). bytesRead is the data-block bytes this
// call actually read from disk: the full block size on a decode, 0 when
// served from cache — so callers' I/O accounting stays truthful under
// sharing. The frame's column order follows the request.
func (c *Cache) Columns(path string, names ...string) (f *dataframe.Frame, bytesRead int64, err error) {
	if len(names) == 0 {
		return nil, 0, fmt.Errorf("stage: no columns requested for %s", path)
	}
	colKey, decodeCols := canonicalCols(names)
	k := key{path: path, cols: colKey}

	for {
		// Stat inside the loop: a single-flight follower whose leader decoded
		// a different file generation re-checks against the current identity.
		st, err := os.Stat(path)
		if err != nil {
			return nil, 0, err
		}
		now := stamp{mtime: st.ModTime().UnixNano(), size: st.Size()}
		c.mu.Lock()
		if el, ok := c.items[k]; ok {
			e := el.Value.(*entry)
			if e.stamp == now {
				c.stats.Hits++
				c.ll.MoveToFront(el)
				c.mu.Unlock()
				return assemble(e, names)
			}
			// The backing file changed since this entry was decoded.
			c.removeLocked(el)
			c.stats.Invalidations++
		}
		if fl := c.inflight[k]; fl != nil {
			c.mu.Unlock()
			<-fl.done
			// The leader may have decoded a different stamp (file replaced
			// mid-flight) or failed; loop to re-check against the cache.
			if fl.err != nil {
				return nil, 0, fl.err
			}
			if fl.e.stamp == now {
				c.mu.Lock()
				c.stats.Hits++
				c.mu.Unlock()
				return assemble(fl.e, names)
			}
			continue
		}
		fl := &flight{done: make(chan struct{})}
		c.inflight[k] = fl
		c.stats.Misses++
		c.stats.Opens++
		c.mu.Unlock()

		fl.e, fl.err = decode(path, k, decodeCols)
		c.mu.Lock()
		delete(c.inflight, k)
		if fl.err == nil {
			c.insertLocked(fl.e)
		}
		c.mu.Unlock()
		close(fl.done)
		if fl.err != nil {
			return nil, 0, fl.err
		}
		return assembleRead(fl.e, names)
	}
}

// decode opens the file once and reads the canonical column set.
func decode(path string, k key, cols []string) (*entry, error) {
	// Stamp with the pre-open stat so a mid-decode rewrite yields a stale
	// stamp and re-decodes on the next access rather than serving torn data.
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	r, err := gio.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	f, err := r.ReadColumns(cols...)
	if err != nil {
		return nil, err
	}
	e := &entry{
		key:   k,
		stamp: stamp{mtime: st.ModTime().UnixNano(), size: st.Size()},
		cols:  map[string]*dataframe.Column{},
		bytes: r.BytesRead(),
	}
	for i := 0; i < f.NumCols(); i++ {
		col := f.ColumnAt(i)
		e.cols[col.Name] = col
	}
	return e, nil
}

// assemble builds a fresh frame shell over e's vectors in requested order.
func assemble(e *entry, names []string) (*dataframe.Frame, int64, error) {
	out := dataframe.New()
	added := map[string]bool{}
	for _, n := range names {
		if added[n] {
			continue
		}
		added[n] = true
		col, ok := e.cols[n]
		if !ok {
			// Cannot happen for entries decoded from this key, but guard it.
			return nil, 0, fmt.Errorf("stage: column %q missing from cached entry", n)
		}
		if err := out.AddColumn(col); err != nil {
			return nil, 0, err
		}
	}
	return out, 0, nil
}

// assembleRead is assemble for the decoding request, which reports the
// bytes it actually read.
func assembleRead(e *entry, names []string) (*dataframe.Frame, int64, error) {
	f, _, err := assemble(e, names)
	return f, e.bytes, err
}

// insertLocked adds e (replacing any same-key entry) and enforces the
// budget. Caller holds mu.
func (c *Cache) insertLocked(e *entry) {
	if el, ok := c.items[e.key]; ok {
		c.removeLocked(el)
	}
	if e.bytes > c.budget {
		// An entry that alone exceeds the budget would flush every other
		// resident entry and still be evicted last; serve it uncached and
		// leave the rest of the cache intact.
		c.stats.Evictions++
		c.stats.EvictedBytes += e.bytes
		return
	}
	c.items[e.key] = c.ll.PushFront(e)
	c.stats.UsedBytes += e.bytes
	c.evictOverBudgetLocked()
}

func (c *Cache) evictOverBudgetLocked() {
	for c.stats.UsedBytes > c.budget && c.ll.Len() > 0 {
		oldest := c.ll.Back()
		e := oldest.Value.(*entry)
		c.removeLocked(oldest)
		c.stats.Evictions++
		c.stats.EvictedBytes += e.bytes
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.stats.UsedBytes -= e.bytes
}

// Request names one file's column selection for LoadAll.
type Request struct {
	Path    string
	Columns []string
}

// Result is one LoadAll outcome, aligned with the request slice.
type Result struct {
	Frame     *dataframe.Frame
	BytesRead int64
	Err       error
}

// LoadAll resolves every request through the cache, fanning misses out
// over the worker pool — the parallel replacement for the loader's
// sequential open→decode→append loop. Results align with reqs; each
// carries its own error so callers keep per-snapshot error context.
func (c *Cache) LoadAll(reqs []Request) []Result {
	out := make([]Result, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		c.sem <- struct{}{}
		go func(i int, req Request) {
			defer func() { <-c.sem; wg.Done() }()
			out[i].Frame, out[i].BytesRead, out[i].Err = c.Columns(req.Path, req.Columns...)
		}(i, req)
	}
	wg.Wait()
	return out
}
