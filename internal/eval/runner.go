package eval

import (
	"fmt"
	"os"
	"sync"
	"time"

	"infera/internal/agent"
	"infera/internal/core"
	"infera/internal/llm"
	"infera/internal/sandbox"
)

// RunRecord is the outcome of one evaluated run.
type RunRecord struct {
	Question     Question
	Rep          int
	Completed    bool    // finished without failure (reliability)
	Completeness float64 // fraction of planned tasks completed
	Tokens       int
	StorageBytes int64 // staging DB + provenance artifacts
	Duration     time.Duration
	Redo         int // QA-requested regenerations
	PlanSteps    int
	Strategy     int // ambiguous-question strategy chosen (-1 otherwise)
	Judgment     Judgment
}

// Config drives an evaluation campaign.
type Config struct {
	EnsembleDir string
	Questions   []Question // default Bank()
	Reps        int        // runs per question (paper: 10)
	Seed        int64
	Sim         llm.SimConfig // base model config; seed varies per run
	TrimHistory bool
	Feedback    bool // enable the scripted human-in-the-loop hinter
	// ScriptLimits budgets every sandboxed script execution in the campaign
	// (zero value = unrestricted, the historical behavior).
	ScriptLimits sandbox.Limits
	// Workers sets the number of runs executed concurrently (the paper's
	// "parallelized workflow execution" future work); <=1 runs serially.
	Workers int
	Logf    func(format string, args ...any)
}

// Run executes the evaluation campaign: Reps runs of every question, each
// with a fresh model seed and isolated working directory, judged by the
// rule-based assessor.
func Run(cfg Config) (*Report, error) {
	if cfg.Reps <= 0 {
		cfg.Reps = 10
	}
	qs := cfg.Questions
	if qs == nil {
		qs = Bank()
	}
	rep := &Report{Reps: cfg.Reps}
	type job struct {
		q     Question
		qi, r int
	}
	var jobs []job
	for qi, q := range qs {
		for r := 0; r < cfg.Reps; r++ {
			jobs = append(jobs, job{q, qi, r})
		}
	}

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	records := make([]RunRecord, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				j := jobs[i]
				rec, err := runOne(cfg, j.q, j.qi, j.r)
				records[i], errs[i] = rec, err
				if err == nil && cfg.Logf != nil {
					cfg.Logf("%s rep %d: completed=%v data=%v viz=%v tokens=%d redo=%d",
						j.q.ID, j.r, rec.Completed, rec.Judgment.DataSatisfactory, rec.Judgment.VizSatisfactory, rec.Tokens, rec.Redo)
				}
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rep.Records = records
	return rep, nil
}

func runOne(cfg Config, q Question, qi, r int) (RunRecord, error) {
	workDir, err := os.MkdirTemp("", "infera-eval-*")
	if err != nil {
		return RunRecord{}, err
	}
	defer os.RemoveAll(workDir)

	sim := cfg.Sim
	sim.Seed = cfg.Seed + int64(qi)*1000 + int64(r)
	acfg := core.Config{
		EnsembleDir:  cfg.EnsembleDir,
		WorkDir:      workDir,
		Model:        llm.NewSim(sim),
		TrimHistory:  cfg.TrimHistory,
		ScriptLimits: cfg.ScriptLimits,
	}
	if cfg.Feedback {
		acfg.Feedback = hinter{}
	}
	assistant, err := core.New(acfg)
	if err != nil {
		return RunRecord{}, err
	}
	defer assistant.Close()

	ans, askErr := assistant.Ask(q.Text)
	if ans == nil {
		return RunRecord{}, fmt.Errorf("eval: %s rep %d: %w", q.ID, r, askErr)
	}
	session, err := assistant.Store().OpenSession(ans.SessionID)
	if err != nil {
		return RunRecord{}, err
	}
	j := Judge(ans, session)
	return RunRecord{
		Question:     q,
		Rep:          r,
		Completed:    !ans.State.Failed && ans.State.Done,
		Completeness: ans.TaskCompleteness(),
		Tokens:       ans.State.Usage.Total(),
		StorageBytes: ans.DBBytes + ans.ProvenanceBytes,
		Duration:     ans.Duration,
		Redo:         ans.State.RedoCount,
		PlanSteps:    len(ans.State.Plan.Steps),
		Strategy:     ans.State.Strategy,
		Judgment:     j,
	}, nil
}

// hinter is the scripted human of §4.2.2.
type hinter = agent.AutoHinter
