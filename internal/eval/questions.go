// Package eval implements the paper's evaluation procedure (§3.3): a
// 20-question bank labelled on the analysis-difficulty and semantic-
// complexity axes (Table 1), a rule-based judge for the data/visualization
// satisfaction metrics, a 10-runs-per-question harness, and the Table 2
// report generator.
package eval

// Difficulty levels on both axes.
type Difficulty string

// Levels.
const (
	Easy   Difficulty = "easy"
	Medium Difficulty = "medium"
	Hard   Difficulty = "hard"
)

// Question is one evaluation item with its ground-truth labels.
type Question struct {
	ID       string
	Text     string
	Analysis Difficulty // analysis complexity (plan-step count axis)
	Semantic Difficulty // semantic complexity (metadata-alignment axis)
	// MultiSim / MultiStep give the #simulation/#timestep category of
	// Table 2's third grouping.
	MultiSim  bool
	MultiStep bool
	// WantsViz marks questions whose plan includes visualization steps.
	WantsViz bool
}

// Bank returns the 20-question evaluation set. The seven Table 1
// representative questions appear verbatim; the remainder fill the paper's
// marginal counts: analysis difficulty 6/6/8, semantic complexity 8/5/7,
// and sim/timestep span 7/5/5/3 (single-single, single-multi,
// multi-single, multi-multi).
func Bank() []Question {
	return []Question{
		// --- analysis easy / semantic easy (6) ---
		{ID: "q01", Text: "Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?",
			Analysis: Easy, Semantic: Easy, MultiSim: true, MultiStep: true},
		{ID: "q02", Text: "What is the average gas mass (sod_halo_MGas500c) of halos at timestep 498 in simulation 0?",
			Analysis: Easy, Semantic: Easy},
		{ID: "q03", Text: "How many halos have a particle count (fof_halo_count) above 500 at timestep 624 in simulation 1?",
			Analysis: Easy, Semantic: Easy},
		{ID: "q04", Text: "What is the median star formation rate (gal_sfr) of galaxies in simulation 0 at each time step? Please plot it.",
			Analysis: Easy, Semantic: Easy, MultiStep: true, WantsViz: true},
		{ID: "q05", Text: "What is the total halo mass (sum of fof_halo_mass) in each simulation at timestep 624?",
			Analysis: Easy, Semantic: Easy, MultiSim: true},
		{ID: "q06", Text: "What is the average velocity dispersion (fof_halo_vel_disp) of halos in simulation 0 at each time step? Plot the evolution.",
			Analysis: Easy, Semantic: Easy, MultiStep: true, WantsViz: true},

		// --- analysis medium / semantic easy (1) ---
		{ID: "q07", Text: "Please find the largest 100 galaxies and 100 halos at timestep 498 in simulation 0. I would like to plot all of them in Paraview and also see how well aligned those galaxies and halos are to each other.",
			Analysis: Medium, Semantic: Easy, WantsViz: true},

		// --- analysis hard / semantic easy (1) ---
		{ID: "q08", Text: "Can you plot the change in mass of the largest friends-of-friends halos for all timesteps in all simulations? Provide me two plots using both fof_halo_count and fof_halo_mass as metrics for mass.",
			Analysis: Hard, Semantic: Easy, MultiSim: true, MultiStep: true, WantsViz: true},

		// --- analysis medium / semantic medium (2) ---
		{ID: "q09", Text: "I would like to find the most unique halos in simulation 0 at timestep 498. Using velocity, mass, and kinetic energy of the halos, generate an 'interestingness' score and plot the top 1000 halos as a UMAP plot, highlighting the top 20 halos in simulation 0 that are the most interesting.",
			Analysis: Medium, Semantic: Medium, WantsViz: true},
		{ID: "q10", Text: "Compute the correlation matrix between fof_halo_count, fof_halo_mass, fof_halo_vel_disp and fof_halo_ke for halos at timestep 624 in simulation 1.",
			Analysis: Medium, Semantic: Medium},

		// --- analysis hard / semantic medium (3) ---
		{ID: "q11", Text: "How does the slope and normalization of the gas-mass fraction-mass relation (sod_halo_MGas500c/sod_halo_M500c) evolve from the earliest timestep to the latest timestep in simulation 0?",
			Analysis: Hard, Semantic: Medium, MultiStep: true, WantsViz: true},
		{ID: "q12", Text: "How does the slope of the relation between gal_stellar_mass and gal_gas_mass evolve from the earliest timestep to the latest timestep in simulation 1? Plot the slope over time.",
			Analysis: Hard, Semantic: Medium, MultiStep: true, WantsViz: true},
		{ID: "q13", Text: "At timestep 624, what are the slope and normalization of the gas-mass fraction-mass relation (sod_halo_MGas500c/sod_halo_M500c) in each simulation, and how do they differ across all simulations? Plot the comparison.",
			Analysis: Hard, Semantic: Medium, MultiSim: true, WantsViz: true},

		// --- analysis medium / semantic hard (3) ---
		{ID: "q14", Text: "First find the two largest halos by their halo count in timestep 624 of simulation 0. Then find the top 10 galaxies associated to those two halos (related by fof_halo_tag). What are the differences in characteristics of the two groups of galaxies? For example, differences in gas-mass, mass, or kinetic energy?",
			Analysis: Medium, Semantic: Hard},
		{ID: "q15", Text: "Find the most unique halos at timestep 624 in simulation 1: using velocity dispersion, mass and kinetic energy, score how atypical each halo is and plot the top 50 as a UMAP plot highlighting the top 10.",
			Analysis: Medium, Semantic: Hard, WantsViz: true},
		{ID: "q16", Text: "At timestep 624, which simulation shows the tightest correlation in the relation between fof_halo_mass and fof_halo_vel_disp? Report the intrinsic scatter for each simulation.",
			Analysis: Medium, Semantic: Hard, MultiSim: true},

		// --- analysis hard / semantic hard (4) ---
		{ID: "q17", Text: "At timestep 624, how does the slope and intrinsic scatter of the stellar-to-halo mass (SMHM) relation vary as a function of seed mass? Which seed mass values produce the tightest SMHM correlation, and is there a threshold seed mass that maximizes stellar-mass assembly efficiency?",
			Analysis: Hard, Semantic: Hard, MultiSim: true, WantsViz: true},
		{ID: "q18", Text: "Can you make an inference on the direction of the FSN and VEL parameters in order to increase the halo count of the 100 largest halos in timestep 624? Also plot a summary of the differences in halo characteristics between the two simulations.",
			Analysis: Hard, Semantic: Hard, MultiSim: true, WantsViz: true},
		{ID: "q19", Text: "How does the intrinsic scatter of the stellar-to-halo mass (SMHM) relation evolve across all timesteps in simulation 0, and at which timestep is the correlation tightest? Plot the evolution.",
			Analysis: Hard, Semantic: Hard, MultiStep: true, WantsViz: true},
		{ID: "q20", Text: "Make an inference on the direction of the FSN and TAGN parameters with respect to the halo characteristics of the 100 largest halos across all timesteps and all simulations, and plot a summary of the differences in halo characteristics.",
			Analysis: Hard, Semantic: Hard, MultiSim: true, MultiStep: true, WantsViz: true},
	}
}

// CountBy tallies the bank along one labelling axis; used by the Table 1
// regeneration bench and the bank's own consistency tests.
func CountBy(qs []Question, axis func(Question) Difficulty) map[Difficulty]int {
	out := map[Difficulty]int{}
	for _, q := range qs {
		out[axis(q)]++
	}
	return out
}
