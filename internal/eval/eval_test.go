package eval

import (
	"strings"
	"testing"

	"infera/internal/hacc"
)

func TestBankMarginalsMatchPaper(t *testing.T) {
	qs := Bank()
	if len(qs) != 20 {
		t.Fatalf("bank has %d questions, want 20", len(qs))
	}
	ana := CountBy(qs, func(q Question) Difficulty { return q.Analysis })
	if ana[Easy] != 6 || ana[Medium] != 6 || ana[Hard] != 8 {
		t.Errorf("analysis marginals = %v, want 6/6/8", ana)
	}
	sem := CountBy(qs, func(q Question) Difficulty { return q.Semantic })
	if sem[Easy] != 8 || sem[Medium] != 5 || sem[Hard] != 7 {
		t.Errorf("semantic marginals = %v, want 8/5/7", sem)
	}
	spans := map[string]int{}
	for _, q := range qs {
		key := ""
		if q.MultiSim {
			key = "M"
		} else {
			key = "S"
		}
		if q.MultiStep {
			key += "M"
		} else {
			key += "S"
		}
		spans[key]++
	}
	if spans["SS"] != 7 || spans["SM"] != 5 || spans["MS"] != 5 || spans["MM"] != 3 {
		t.Errorf("span marginals = %v, want 7/5/5/3", spans)
	}
	// Analysis-easy implies semantic-easy (paper: no Easy-Medium or
	// Easy-Hard combinations).
	for _, q := range qs {
		if q.Analysis == Easy && q.Semantic != Easy {
			t.Errorf("%s: easy analysis with %s semantic", q.ID, q.Semantic)
		}
	}
	ids := map[string]bool{}
	for _, q := range qs {
		if ids[q.ID] {
			t.Errorf("duplicate id %s", q.ID)
		}
		ids[q.ID] = true
	}
}

func TestFormatTable1(t *testing.T) {
	s := FormatTable1(Bank())
	if !strings.Contains(s, "n/a") {
		t.Error("matrix should mark empty easy-analysis cells n/a")
	}
	if !strings.Contains(s, "fof_halo_count") {
		t.Error("representative questions missing")
	}
}

func evalEnsemble(t testing.TB) string {
	t.Helper()
	dir := t.TempDir()
	spec := hacc.Spec{
		Runs:             2,
		Steps:            []int{99, 350, 498, 624},
		HalosPerRun:      80,
		ParticlesPerStep: 50,
		BoxSize:          128,
		Seed:             13,
	}
	if _, err := hacc.Generate(dir, spec); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSmallCampaignProducesSaneMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short")
	}
	dir := evalEnsemble(t)
	rep, err := Run(Config{
		EnsembleDir: dir,
		Questions:   Bank()[:6], // the six easy questions
		Reps:        2,
		Seed:        21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 12 {
		t.Fatalf("records = %d", len(rep.Records))
	}
	total := rep.Total()
	if total.Runs != 12 {
		t.Errorf("total runs = %d", total.Runs)
	}
	if total.Completed < 50 {
		t.Errorf("easy questions completing only %.0f%%", total.Completed)
	}
	if total.Tokens <= 0 || total.StorageMB <= 0 {
		t.Errorf("resource metrics empty: %+v", total)
	}
	out := rep.Format()
	for _, want := range []string{"Analysis Difficulty", "Semantic Complexity", "Total", "Unsuccessful"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q", want)
		}
	}
}

func TestRowsCoverAllSections(t *testing.T) {
	rep := &Report{Reps: 1}
	rep.Records = append(rep.Records, RunRecord{
		Question:  Bank()[0],
		Completed: true, Completeness: 1, Tokens: 100,
		Judgment: Judgment{DataSatisfactory: true},
	})
	rows := rep.Rows()
	if len(rows) != 13 { // 3 + 3 + 4 + 3
		t.Errorf("rows = %d, want 13", len(rows))
	}
	// The easy/analysis row carries the record.
	if rows[0].Runs != 1 || rows[0].SatData != 100 {
		t.Errorf("row0 = %+v", rows[0])
	}
	// Empty category rows stay zero without dividing by zero.
	if rows[2].Runs != 0 || rows[2].Tokens != 0 {
		t.Errorf("hard row = %+v", rows[2])
	}
}
