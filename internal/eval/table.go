package eval

import (
	"fmt"
	"strings"
)

// Report holds all run records plus the aggregation logic producing the
// paper's Table 2.
type Report struct {
	Reps    int
	Records []RunRecord
}

// Row is one aggregated line of Table 2.
type Row struct {
	Group     string  // section label
	Label     string  // row label
	Questions int     // distinct questions in the category
	Runs      int     // total runs aggregated
	SatData   float64 // % satisfactory data outcomes
	SatViz    float64 // % satisfactory visualization outcomes (viz-applicable runs)
	Completed float64 // % of runs completing without failure
	Complete  float64 // average % of planned tasks completed
	Tokens    float64 // average token usage
	StorageMB float64 // average storage overhead in MB
	TimeSec   float64 // average runtime in seconds
	Redo      float64 // average QA redo iterations
}

func (rep *Report) aggregate(group, label string, match func(RunRecord) bool) Row {
	row := Row{Group: group, Label: label}
	qset := map[string]bool{}
	var vizRuns, vizOK int
	for _, r := range rep.Records {
		if !match(r) {
			continue
		}
		row.Runs++
		qset[r.Question.ID] = true
		if r.Judgment.DataSatisfactory {
			row.SatData++
		}
		if r.Judgment.VizApplicable {
			vizRuns++
			if r.Judgment.VizSatisfactory {
				vizOK++
			}
		}
		if r.Completed {
			row.Completed++
		}
		row.Complete += r.Completeness
		row.Tokens += float64(r.Tokens)
		row.StorageMB += float64(r.StorageBytes) / 1e6
		row.TimeSec += r.Duration.Seconds()
		row.Redo += float64(r.Redo)
	}
	row.Questions = len(qset)
	if row.Runs == 0 {
		return row
	}
	n := float64(row.Runs)
	row.SatData = 100 * row.SatData / n
	if vizRuns > 0 {
		row.SatViz = 100 * float64(vizOK) / float64(vizRuns)
	}
	row.Completed = 100 * row.Completed / n
	row.Complete = 100 * row.Complete / n
	row.Tokens /= n
	row.StorageMB /= n
	row.TimeSec /= n
	row.Redo /= n
	return row
}

// Rows computes every Table 2 row: by analysis difficulty, by semantic
// complexity, by sim/timestep span, the total, and the success split.
func (rep *Report) Rows() []Row {
	var rows []Row
	for _, d := range []Difficulty{Easy, Medium, Hard} {
		d := d
		rows = append(rows, rep.aggregate("Analysis Difficulty", titled(d),
			func(r RunRecord) bool { return r.Question.Analysis == d }))
	}
	for _, d := range []Difficulty{Easy, Medium, Hard} {
		d := d
		rows = append(rows, rep.aggregate("Semantic Complexity", titled(d),
			func(r RunRecord) bool { return r.Question.Semantic == d }))
	}
	spans := []struct {
		label               string
		multiSim, multiStep bool
	}{
		{"Single sim / Single step", false, false},
		{"Single sim / Multi step", false, true},
		{"Multi sim / Single step", true, false},
		{"Multi sim / Multi step", true, true},
	}
	for _, s := range spans {
		s := s
		rows = append(rows, rep.aggregate("# Simulation x Timestep", s.label,
			func(r RunRecord) bool {
				return r.Question.MultiSim == s.multiSim && r.Question.MultiStep == s.multiStep
			}))
	}
	rows = append(rows, rep.aggregate("Overall", "Total", func(RunRecord) bool { return true }))
	rows = append(rows, rep.aggregate("Overall", "Successful runs", func(r RunRecord) bool { return r.Completed }))
	rows = append(rows, rep.aggregate("Overall", "Unsuccessful runs", func(r RunRecord) bool { return !r.Completed }))
	return rows
}

// Total returns the all-runs aggregate row.
func (rep *Report) Total() Row {
	return rep.aggregate("Overall", "Total", func(RunRecord) bool { return true })
}

func titled(d Difficulty) string {
	return strings.ToUpper(string(d[0])) + string(d[1:])
}

// Format renders the rows in the layout of the paper's Table 2.
func (rep *Report) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Performance evaluation across %d runs (%d questions, %d runs each)\n\n",
		len(rep.Records), len(rep.Records)/max(1, rep.Reps), rep.Reps)
	fmt.Fprintf(&sb, "%-24s %-26s %5s  %7s %7s %9s %9s %9s %9s %7s %6s\n",
		"", "Difficulty (count)", "", "%SatDat", "%SatVis", "%RunsCompl", "%Complete", "Tokens", "Storage", "Time", "Redo")
	lastGroup := ""
	for _, row := range rep.Rows() {
		group := row.Group
		if group == lastGroup {
			group = ""
		} else {
			lastGroup = row.Group
		}
		fmt.Fprintf(&sb, "%-24s %-26s (%2d)  %6.0f%% %6.0f%% %8.0f%% %8.0f%% %9.0f %7.2fMB %6.2fs %6.2f\n",
			group, row.Label, row.Questions,
			row.SatData, row.SatViz, row.Completed, row.Complete,
			row.Tokens, row.StorageMB, row.TimeSec, row.Redo)
	}
	return sb.String()
}

// FormatTable1 renders the difficulty matrix (Table 1): question counts and
// representative texts per (analysis, semantic) cell.
func FormatTable1(qs []Question) string {
	var sb strings.Builder
	sb.WriteString("Difficulty matrix (analysis difficulty x semantic complexity)\n\n")
	levels := []Difficulty{Easy, Medium, Hard}
	fmt.Fprintf(&sb, "%-10s", "sem\\ana")
	for _, a := range levels {
		fmt.Fprintf(&sb, " %-8s", titled(a))
	}
	sb.WriteString("\n")
	for _, s := range levels {
		fmt.Fprintf(&sb, "%-10s", titled(s))
		for _, a := range levels {
			n := 0
			for _, q := range qs {
				if q.Analysis == a && q.Semantic == s {
					n++
				}
			}
			if n == 0 {
				fmt.Fprintf(&sb, " %-8s", "n/a")
			} else {
				fmt.Fprintf(&sb, " %-8d", n)
			}
		}
		sb.WriteString("\n")
	}
	sb.WriteString("\nRepresentative questions:\n")
	seen := map[string]bool{}
	for _, q := range qs {
		key := string(q.Analysis) + "/" + string(q.Semantic)
		if seen[key] {
			continue
		}
		seen[key] = true
		text := q.Text
		if len(text) > 110 {
			text = text[:107] + "..."
		}
		fmt.Fprintf(&sb, "  [%s analysis / %s semantic] %s\n", q.Analysis, q.Semantic, text)
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
