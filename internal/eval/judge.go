package eval

import (
	"strings"

	"infera/internal/core"
	"infera/internal/llm"
	"infera/internal/provenance"
)

// Judgment is the rule-based assessment of one run, following §3.3: data
// and visualization success are measured against the explicit tasks the
// plan assigned, not against latent user intent.
type Judgment struct {
	DataSatisfactory bool
	VizSatisfactory  bool // meaningful only when the plan contained viz steps
	VizApplicable    bool
}

// Judge scores a completed (or failed) run. session gives access to the
// recorded artifacts.
func Judge(ans *core.Answer, session *provenance.Session) Judgment {
	var j Judgment
	j.VizApplicable = planHasViz(ans)
	if ans == nil || ans.Result == nil {
		return j
	}
	j.DataSatisfactory = judgeData(ans)
	if j.VizApplicable {
		j.VizSatisfactory = judgeViz(ans, session)
	}
	return j
}

func planHasViz(ans *core.Answer) bool {
	for _, s := range ans.State.Plan.Steps {
		if s.Agent == llm.AgentViz {
			return true
		}
	}
	return false
}

// judgeData checks that the final analysis frame exists, is on-topic
// (expected columns for the question's analysis recipe) and passes value
// sanity checks that expose "valid but wrong technique" outputs.
func judgeData(ans *core.Answer) bool {
	if ans.State.Failed || ans.Answer == nil || ans.Answer.NumRows() == 0 {
		return false
	}
	f := ans.Answer
	in := ans.State.Plan.Intent
	switch in.Analysis {
	case "aggregate":
		return f.Has(in.Aggregate + "_" + firstMetric(in))
	case "topn":
		if !f.Has(in.RankBy) || f.NumRows() > in.TopN {
			return false
		}
		// Ranked output must descend.
		vals := f.MustColumn(in.RankBy).Floats()
		for i := 1; i < len(vals); i++ {
			if vals[i] > vals[i-1] {
				return false
			}
		}
		return true
	case "track":
		if !f.Has("max_count") || !f.Has("max_mass") {
			return false
		}
		// The coordinate-tracking mistake yields box-coordinate magnitudes;
		// real halo masses exceed 1e11 Msun/h.
		maxMass := 0.0
		for _, v := range f.MustColumn("max_mass").Floats() {
			if v > maxMass {
				maxMass = v
			}
		}
		return maxMass > 1e11
	case "interestingness":
		return f.Has("umap_x") && f.Has("umap_y") && f.Has("interestingness")
	case "gasfrac", "relation":
		return f.Has("slope") && f.Has("scatter")
	case "smhm":
		return f.Has("slope") && f.Has("scatter") && (f.Has("m_seed") || f.Has("step"))
	case "galhalocompare":
		return f.Has("mean_stellar") && f.NumRows() == 2
	case "alignment":
		return f.Has("fof_halo_tag")
	case "neighborhood":
		return f.Has("is_target")
	case "paramdirection":
		// Several strategies are valid (§4.5): group means, fits, or a
		// correlation matrix all address the task.
		return f.Has("mean_count") || f.Has("slope") || f.Has("variable")
	case "corrmatrix":
		return f.Has("variable")
	case "hist":
		return f.Has("bin_center") && f.Has("count")
	default:
		return true
	}
}

// judgeViz checks that the recorded visualization artifacts are the
// reasonable form for the question (line charts for time series, scatter
// for embeddings/relations, VTK scenes for spatial requests) — the §3.3
// criterion that "the chosen form of visualization is reasonable".
func judgeViz(ans *core.Answer, session *provenance.Session) bool {
	if ans.State.Failed || session == nil {
		return false
	}
	in := ans.State.Plan.Intent
	type artifact struct {
		name string
		data []byte
	}
	var arts []artifact
	for _, e := range ans.Artifacts {
		if e.Kind != "plot" && e.Kind != "scene" {
			continue
		}
		data, err := session.Read(e)
		if err != nil {
			return false
		}
		arts = append(arts, artifact{e.Name, data})
	}
	if len(arts) == 0 {
		return false
	}
	wantKind := expectedVizKind(in)
	ok := 0
	for _, a := range arts {
		s := string(a.data)
		switch wantKind {
		case "line":
			if strings.Contains(s, "<polyline") {
				ok++
			}
		case "scatter":
			if strings.Contains(s, "<circle") {
				ok++
			}
		case "hist":
			if strings.Contains(s, "<rect") && strings.Contains(s, "<svg") {
				ok++
			}
		case "paraview":
			if strings.Contains(s, "DATASET POLYDATA") {
				ok++
			}
		}
	}
	// Every produced artifact of the expected family counts; at least one
	// must match the expected form.
	return ok > 0
}

func expectedVizKind(in llm.Intent) string {
	switch in.Analysis {
	case "track":
		return "line"
	case "gasfrac":
		if in.AllSteps {
			return "line"
		}
		return "scatter"
	case "interestingness", "smhm", "relation", "galhalocompare", "paramdirection", "corrmatrix":
		return "scatter"
	case "alignment", "neighborhood":
		return "paraview"
	case "hist":
		return "hist"
	case "aggregate":
		if in.AllSteps {
			return "line"
		}
		return "scatter"
	default:
		switch in.Plot {
		case "umap":
			return "scatter" // UMAP embeddings render as scatter charts
		case "":
			return "scatter"
		default:
			return in.Plot
		}
	}
}

func firstMetric(in llm.Intent) string {
	if len(in.Metrics) > 0 {
		return in.Metrics[0]
	}
	return in.RankBy
}
